package repro

import (
	"fmt"

	"repro/internal/registry"
	"repro/internal/simul"
)

// Model selects the communication model an execution is validated against.
type Model = simul.Model

// Communication models (re-exported).
const (
	CONGEST = simul.CONGEST
	LOCAL   = simul.LOCAL
)

// MIS black-box names for WithMIS.
const (
	MISLuby     = "luby"
	MISGhaffari = "ghaffari"
	MISGreedyID = "greedyid"
)

type config struct {
	sim         simul.Config
	misName     string
	k           int
	eps         float64
	delta       float64
	detColoring bool
	// *Set record that the caller passed the value explicitly, so invalid
	// explicit values (e.g. WithEps(0)) are rejected instead of being
	// absorbed by the registry's zero-means-default normalization.
	epsSet, kSet, deltaSet bool
}

// validateExplicit rejects explicitly-set invalid parameter values using the
// registry's shared bounds.
func (c config) validateExplicit() error {
	if c.epsSet {
		if err := registry.ValidEps(c.eps); err != nil {
			return fmt.Errorf("repro: %w", err)
		}
	}
	if c.kSet {
		if err := registry.ValidK(c.k); err != nil {
			return fmt.Errorf("repro: %w", err)
		}
	}
	if c.deltaSet {
		if err := registry.ValidDelta(c.delta); err != nil {
			return fmt.Errorf("repro: %w", err)
		}
	}
	return nil
}

// Option configures an algorithm invocation.
type Option func(*config)

func buildConfig(opts []Option) config {
	// Parameter fields stay zero unless an option sets them: the registry's
	// Params.Normalized is the single source of default values (eps 0.5,
	// k 2, delta 0.1, MIS luby).
	cfg := config{sim: simul.Config{Model: simul.CONGEST}}
	for _, o := range opts {
		o(&cfg)
	}
	return cfg
}

// params maps the facade configuration onto the registry's uniform Params,
// the single dispatch currency shared with cmd/* and internal/service.
func (c config) params() registry.Params {
	return registry.Params{
		Eps:                   c.eps,
		K:                     c.k,
		Delta:                 c.delta,
		MIS:                   c.misName,
		Model:                 c.sim.Model,
		Seed:                  c.sim.Seed,
		MaxRounds:             c.sim.MaxRounds,
		BitsFactor:            c.sim.BitsFactor,
		Parallel:              c.sim.Parallel,
		CompressedNeighbors:   c.sim.CompressedNeighbors,
		DeterministicColoring: c.detColoring,
	}
}

// WithSeed fixes the randomness seed; equal seeds reproduce executions
// exactly, including across the sequential and parallel engines.
func WithSeed(seed uint64) Option {
	return func(c *config) { c.sim.Seed = seed }
}

// WithModel selects CONGEST (default; message sizes are enforced) or LOCAL.
func WithModel(m Model) Option {
	return func(c *config) { c.sim.Model = m }
}

// WithMIS selects the MIS black box for Algorithm 2 (MISLuby, MISGhaffari or
// MISGreedyID).
func WithMIS(name string) Option {
	return func(c *config) { c.misName = name }
}

// WithK sets the probability factor K of the §3/§B algorithms (default 2;
// the paper's Θ(log^0.1 ∆)).
func WithK(k int) Option {
	return func(c *config) { c.k, c.kSet = k, true }
}

// WithEps sets the ε of the (1+ε)/(2+ε) algorithms for Run (default 0.5).
// The typed facade functions (FastMCM, OneEpsMCM, …) take ε directly and
// ignore this option.
func WithEps(eps float64) Option {
	return func(c *config) { c.eps, c.epsSet = eps, true }
}

// WithDelta sets the failure target δ of the nearly-maximal independent set
// for Run (default 0.1). NearlyMaximalIS takes δ directly.
func WithDelta(delta float64) Option {
	return func(c *config) { c.delta, c.deltaSet = delta, true }
}

// WithParallel runs node automata on a goroutine worker pool; results are
// identical to the sequential engine for the same seed.
func WithParallel() Option {
	return func(c *config) { c.sim.Parallel = true }
}

// WithCompressedNeighbors makes the engine read adjacency from a delta-varint
// compressed copy instead of the raw CSR neighbor array — fewer bytes
// streamed per round on memory-bound graphs ≫ cache, at the cost of decode
// CPU. Results are identical either way.
func WithCompressedNeighbors() Option {
	return func(c *config) { c.sim.CompressedNeighbors = true }
}

// WithMaxRounds overrides the engine's round-limit failsafe.
func WithMaxRounds(r int) Option {
	return func(c *config) { c.sim.MaxRounds = r }
}

// WithBitsFactor overrides the CONGEST per-message budget factor c in
// c·⌈log₂(n+1)⌉ (default 16).
func WithBitsFactor(f int) Option {
	return func(c *config) { c.sim.BitsFactor = f }
}

// WithDeterministicColoring makes MaxISDeterministic use the Linial color
// reduction instead of the randomized palette coloring, yielding a fully
// deterministic pipeline (at O(∆² log² ∆) extra rounds; see DESIGN.md §3).
func WithDeterministicColoring() Option {
	return func(c *config) { c.detColoring = true }
}
