package repro

import "repro/internal/simul"

// Model selects the communication model an execution is validated against.
type Model = simul.Model

// Communication models (re-exported).
const (
	CONGEST = simul.CONGEST
	LOCAL   = simul.LOCAL
)

// MIS black-box names for WithMIS.
const (
	MISLuby     = "luby"
	MISGhaffari = "ghaffari"
	MISGreedyID = "greedyid"
)

type config struct {
	sim         simul.Config
	misName     string
	k           int
	detColoring bool
}

// Option configures an algorithm invocation.
type Option func(*config)

func buildConfig(opts []Option) config {
	cfg := config{
		sim:     simul.Config{Model: simul.CONGEST},
		misName: MISLuby,
		k:       2,
	}
	for _, o := range opts {
		o(&cfg)
	}
	return cfg
}

// WithSeed fixes the randomness seed; equal seeds reproduce executions
// exactly, including across the sequential and parallel engines.
func WithSeed(seed uint64) Option {
	return func(c *config) { c.sim.Seed = seed }
}

// WithModel selects CONGEST (default; message sizes are enforced) or LOCAL.
func WithModel(m Model) Option {
	return func(c *config) { c.sim.Model = m }
}

// WithMIS selects the MIS black box for Algorithm 2 (MISLuby, MISGhaffari or
// MISGreedyID).
func WithMIS(name string) Option {
	return func(c *config) { c.misName = name }
}

// WithK sets the probability factor K of the §3/§B algorithms (default 2;
// the paper's Θ(log^0.1 ∆)).
func WithK(k int) Option {
	return func(c *config) { c.k = k }
}

// WithParallel runs node automata on a goroutine worker pool; results are
// identical to the sequential engine for the same seed.
func WithParallel() Option {
	return func(c *config) { c.sim.Parallel = true }
}

// WithMaxRounds overrides the engine's round-limit failsafe.
func WithMaxRounds(r int) Option {
	return func(c *config) { c.sim.MaxRounds = r }
}

// WithBitsFactor overrides the CONGEST per-message budget factor c in
// c·⌈log₂(n+1)⌉ (default 16).
func WithBitsFactor(f int) Option {
	return func(c *config) { c.sim.BitsFactor = f }
}

// WithDeterministicColoring makes MaxISDeterministic use the Linial color
// reduction instead of the randomized palette coloring, yielding a fully
// deterministic pipeline (at O(∆² log² ∆) extra rounds; see DESIGN.md §3).
func WithDeterministicColoring() Option {
	return func(c *config) { c.detColoring = true }
}
