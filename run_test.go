package repro

import (
	"reflect"
	"testing"
)

// TestRunMatchesTypedFacade pins the acceptance criterion that the string-
// keyed Run dispatch reproduces the typed facade exactly for a fixed seed.
func TestRunMatchesTypedFacade(t *testing.T) {
	g := GNP(24, 0.2, 13)
	AssignUniformNodeWeights(g, 80, 14)
	AssignUniformEdgeWeights(g, 80, 15)

	mwm, err := MWM2(g, WithSeed(21))
	if err != nil {
		t.Fatal(err)
	}
	run, err := Run("mwm2", g, WithSeed(21))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(run.Edges, mwm.Edges) || run.Weight != mwm.Weight {
		t.Fatalf("Run(mwm2) = %v/%d, MWM2 = %v/%d",
			run.Edges, run.Weight, mwm.Edges, mwm.Weight)
	}
	if run.Cost != mwm.Cost {
		t.Fatalf("Run(mwm2) cost %+v, MWM2 cost %+v", run.Cost, mwm.Cost)
	}

	is, err := MaxIS(g, WithSeed(22))
	if err != nil {
		t.Fatal(err)
	}
	runIS, err := Run("maxis", g, WithSeed(22))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(runIS.InSet, is.InSet) || runIS.Weight != is.Weight {
		t.Fatal("Run(maxis) disagrees with MaxIS for equal seeds")
	}

	fm, err := FastMCM(g, 0.5, WithSeed(23))
	if err != nil {
		t.Fatal(err)
	}
	runFM, err := Run("fastmcm", g, WithEps(0.5), WithSeed(23))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(runFM.Edges, fm.Edges) {
		t.Fatal("Run(fastmcm) disagrees with FastMCM for equal seeds")
	}
}

func TestRunUnknownAlgorithm(t *testing.T) {
	if _, err := Run("frobnicate", Path(4)); err == nil {
		t.Fatal("unknown algorithm accepted")
	}
}

// TestExplicitInvalidParamsRejected pins that the typed facade rejects
// explicit invalid arguments instead of letting the registry's
// zero-means-default normalization reinterpret them.
func TestExplicitInvalidParamsRejected(t *testing.T) {
	g := GNP(12, 0.3, 1)
	if _, err := FastMCM(g, 0); err == nil {
		t.Fatal("FastMCM(eps=0) accepted")
	}
	if _, err := FastMWM(g, -0.5); err == nil {
		t.Fatal("FastMWM(eps=-0.5) accepted")
	}
	if _, err := OneEpsMCM(g, 0); err == nil {
		t.Fatal("OneEpsMCM(eps=0) accepted")
	}
	if _, err := NearlyMaximalIS(g, 0, 0.1); err == nil {
		t.Fatal("NearlyMaximalIS(k=0) accepted")
	}
	if _, err := NearlyMaximalIS(g, 2, 0); err == nil {
		t.Fatal("NearlyMaximalIS(delta=0) accepted")
	}
	// The option path must behave like the typed facade.
	if _, err := Run("fastmcm", g, WithEps(0)); err == nil {
		t.Fatal("Run with WithEps(0) accepted")
	}
	if _, err := Run("nmis", g, WithK(1)); err == nil {
		t.Fatal("Run with WithK(1) accepted")
	}
	if _, err := Run("nmis", g, WithDelta(2)); err == nil {
		t.Fatal("Run with WithDelta(2) accepted")
	}
}

func TestAlgorithmsListing(t *testing.T) {
	infos := Algorithms()
	if len(infos) != 11 {
		t.Fatalf("listed %d algorithms, want 11", len(infos))
	}
	kinds := map[string]bool{}
	byName := map[string]AlgorithmInfo{}
	for _, in := range infos {
		kinds[in.Kind] = true
		byName[in.Name] = in
		if in.Summary == "" {
			t.Fatalf("%s: empty summary", in.Name)
		}
	}
	for _, k := range []string{"is", "matching", "nmis"} {
		if !kinds[k] {
			t.Fatalf("no algorithm of kind %q listed", k)
		}
	}
	for _, name := range []string{"maxis", "mwm2", "nmis", "oneeps", "fastmwm"} {
		if _, ok := byName[name]; !ok {
			t.Fatalf("%s missing from listing", name)
		}
	}
}
