//go:build largegraph

package repro

import (
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"time"

	"repro/internal/graph"
	"repro/internal/registry"
	"repro/internal/stats"
)

// The largegraph suite is the million-node smoke check from the scale-up
// work: one worker must ingest a 10⁶-node graph through the streaming
// edge-list path, round-trip it through the RGD1 on-disk CSR without
// rebuilding the arrays, and run maxis on it inside fixed wall-clock and
// peak-RSS ceilings with the sequential and parallel engines bit-identical.
// It is deliberately excluded from the default build (`-tags largegraph`)
// so `go test ./...` stays fast on laptops.
const (
	largeN       = 1_000_000
	largeWallMax = 10 * time.Minute
	largeRSSMax  = 2 << 30 // 2 GiB peak for the whole process
)

func TestLargeGraphPipeline(t *testing.T) {
	dir := t.TempDir()
	ring := Cycle(largeN)
	fp := registry.Fingerprint(ring)

	// Streaming ingestion: the ring must survive the same edge-list file
	// path `reprod -load ring.el` uses, without content drift.
	elPath := filepath.Join(dir, "ring.el")
	f, err := os.Create(elPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := graph.WriteEdgeList(f, ring); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	loaded, err := graph.ReadFile(elPath, graph.ReadOptions{})
	if err != nil {
		t.Fatalf("streaming edge-list read: %v", err)
	}
	if registry.Fingerprint(loaded) != fp {
		t.Fatal("edge-list round trip changed the graph")
	}

	// RGD1 round trip: OpenDisk maps the prebuilt CSR arrays directly; the
	// graph it exposes must be fingerprint-identical to the original.
	rgdPath := filepath.Join(dir, "ring.rgd1")
	if err := graph.WriteDisk(rgdPath, loaded, graph.DiskOptions{}); err != nil {
		t.Fatal(err)
	}
	loaded = nil
	d, err := graph.OpenDisk(rgdPath)
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	if registry.Fingerprint(d.Graph) != fp {
		t.Fatal("RGD1 round trip changed the graph")
	}

	// maxis on the disk-backed graph, inside the ceilings.
	start := time.Now()
	seq, err := MaxIS(d.Graph, WithSeed(11))
	wall := time.Since(start)
	if err != nil {
		t.Fatal(err)
	}
	if err := CheckIndependentSet(d.Graph, seq.InSet); err != nil {
		t.Fatal(err)
	}
	t.Logf("maxis n=%d: %d rounds, weight %d, wall %s", largeN, seq.Cost.Rounds, seq.Weight, wall)
	if wall > largeWallMax {
		t.Fatalf("maxis took %s, ceiling %s", wall, largeWallMax)
	}
	if rss := stats.PeakRSS(); rss > largeRSSMax {
		t.Fatalf("peak RSS %d MiB, ceiling %d MiB", rss>>20, int64(largeRSSMax)>>20)
	} else if rss >= 0 {
		t.Logf("peak RSS %d MiB", rss>>20)
	}

	// Engine bit-identity at full size: the parallel tiled engine must
	// reproduce the sequential run exactly for the same seed.
	par, err := MaxIS(d.Graph, WithSeed(11), WithParallel())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(par.InSet, seq.InSet) || par.Weight != seq.Weight || par.Cost != seq.Cost {
		t.Fatal("parallel maxis diverged from sequential at n=1M")
	}
}
