package repro

import (
	"fmt"
	"strings"

	"repro/internal/obs"
	"repro/internal/registry"
)

// RunResult is the uniform answer of Run: InSet is populated for
// independent-set kinds ("is", "nmis"), Edges for "matching", and Uncovered
// only for "nmis".
type RunResult struct {
	Algo      string
	Kind      string
	InSet     []bool
	Edges     []int
	Weight    int64
	Size      int
	Uncovered int
	Cost      CostStats
	// Trace is the run's round-telemetry summary (rounds, messages, peaks,
	// memo traffic); nil when telemetry attachment is disabled.
	Trace *obs.RoundTrace
}

// Run executes the named algorithm on g. It is the string-keyed twin of the
// typed facade functions and dispatches through the same internal registry
// used by cmd/distmatch, cmd/sweep, cmd/benchtab and the job service, so
// Run("mwm2", g, WithSeed(s)) reproduces MWM2(g, WithSeed(s)) exactly.
// See Algorithms for the available names.
func Run(algo string, g *Graph, opts ...Option) (*RunResult, error) {
	spec, ok := registry.Get(algo)
	if !ok {
		return nil, fmt.Errorf("repro: unknown algorithm %q (have: %s)",
			algo, strings.Join(registry.Names(), ", "))
	}
	cfg := buildConfig(opts)
	if err := cfg.validateExplicit(); err != nil {
		return nil, err
	}
	res, err := spec.Run(g, cfg.params())
	if err != nil {
		return nil, err
	}
	return &RunResult{
		Algo:      algo,
		Kind:      res.Kind.String(),
		InSet:     res.InSet,
		Edges:     res.Edges,
		Weight:    res.Weight,
		Size:      res.Size(),
		Uncovered: res.Uncovered,
		Cost:      costFromRegistry(res.Cost),
		Trace:     res.Trace,
	}, nil
}

// AlgorithmInfo describes one registered algorithm for listings.
type AlgorithmInfo struct {
	Name    string
	Kind    string
	Summary string
	// Params names the options the algorithm reads (eps, k, delta, mis,
	// model, seed, det_coloring).
	Params []string
}

// Algorithms lists every algorithm Run accepts, sorted by name.
func Algorithms() []AlgorithmInfo {
	specs := registry.All()
	out := make([]AlgorithmInfo, 0, len(specs))
	for _, s := range specs {
		out = append(out, AlgorithmInfo{
			Name:    s.Name,
			Kind:    s.Kind.String(),
			Summary: s.Summary,
			Params:  append([]string(nil), s.Params...),
		})
	}
	return out
}

func costFromRegistry(c registry.Cost) CostStats {
	return CostStats{
		Rounds:         c.Rounds,
		RealRounds:     c.RealRounds,
		Messages:       c.Messages,
		Bits:           c.Bits,
		MaxMessageBits: c.MaxMessageBits,
		BitBudget:      c.BitBudget,
	}
}

// runSpec executes a registered algorithm with the facade's option list plus
// per-function overrides; the typed facade wrappers below repro.go delegate
// here so the registry stays the single dispatch table.
func runSpec(name string, g *Graph, opts []Option, extra ...Option) (*registry.Result, error) {
	cfg := buildConfig(opts)
	for _, o := range extra {
		o(&cfg)
	}
	if err := cfg.validateExplicit(); err != nil {
		return nil, err
	}
	spec, ok := registry.Get(name)
	if !ok {
		panic("repro: facade algorithm " + name + " missing from registry")
	}
	return spec.Run(g, cfg.params())
}
