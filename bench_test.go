package repro

// The benchmark harness regenerates the paper's evaluation artifacts
// (DESIGN.md §1). The paper is theoretical, so each bench measures the two
// quantities its claims are about — achieved approximation ratio and round
// complexity — and reports them as custom metrics:
//
//	rounds        algorithm round complexity (virtual rounds)
//	ratio         OPT / achieved   (≥ 1; must stay below the proven factor)
//	uncovered     fraction of uncovered nodes (Theorem 3.1)
//
// EXPERIMENTS.md records the paper-vs-measured comparison for every row.

import (
	"fmt"
	"testing"

	"repro/internal/agg"
	"repro/internal/augment"
	"repro/internal/core"
	"repro/internal/exact"
	"repro/internal/graph"
	"repro/internal/nmis"
	"repro/internal/rng"
	"repro/internal/simul"
)

// E1a — Table 1 row 1 (randomized): MaxIS ∆-approximation, rounds
// O(MIS(G)·log W) = O(log n · log W) with Luby's MIS. Sweeps n at fixed W and
// W at fixed n; the rounds metric must scale with log n · log W.
func BenchmarkTable1Row1_MaxISRandomized(b *testing.B) {
	cases := []struct{ n, w int }{
		{64, 16}, {128, 16}, {256, 16}, {512, 16},
		{128, 1}, {128, 256}, {128, 4096},
	}
	for _, c := range cases {
		b.Run(fmt.Sprintf("n=%d/W=%d", c.n, c.w), func(b *testing.B) {
			g := GNP(c.n, 8/float64(c.n), uint64(c.n*31+c.w))
			AssignUniformNodeWeights(g, int64(c.w), uint64(c.w))
			var rounds, ratio float64
			for i := 0; i < b.N; i++ {
				res, err := MaxIS(g, WithSeed(uint64(i)))
				if err != nil {
					b.Fatal(err)
				}
				rounds += float64(res.Cost.Rounds)
				ratio += isRatio(b, g, res.Weight)
			}
			b.ReportMetric(rounds/float64(b.N), "rounds")
			b.ReportMetric(ratio/float64(b.N), "ratio")
		})
	}
}

// isRatio returns OPT/weight against the strongest affordable baseline:
// exact for n ≤ 60, otherwise the greedy-weight lower bound on OPT.
func isRatio(b *testing.B, g *Graph, got int64) float64 {
	b.Helper()
	if got == 0 {
		return 0
	}
	if g.N() <= 60 {
		_, opt, err := exact.MaxWeightIndependentSet(g)
		if err != nil {
			b.Fatal(err)
		}
		return float64(opt) / float64(got)
	}
	lower := g.SetWeight(exact.GreedyWeightIS(g))
	return float64(lower) / float64(got)
}

// E1b — Table 1 row 1: 2-approximate MWM = Algorithm 2 on L(G) (Thm 2.10).
func BenchmarkTable1Row1_MWMRandomized(b *testing.B) {
	for _, n := range []int{32, 64, 128} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			g := GNP(n, 6/float64(n), uint64(n))
			AssignUniformEdgeWeights(g, 64, uint64(n)+1)
			var rounds, ratio float64
			for i := 0; i < b.N; i++ {
				res, err := MWM2(g, WithSeed(uint64(i)))
				if err != nil {
					b.Fatal(err)
				}
				rounds += float64(res.Cost.Rounds)
				ratio += mwmRatio(b, g, res.Weight)
			}
			b.ReportMetric(rounds/float64(b.N), "rounds")
			b.ReportMetric(ratio/float64(b.N), "ratio")
		})
	}
}

// mwmRatio returns OPT/weight using the greedy 2-approximation to bound OPT
// from below when the graph is too large for the exact DP.
func mwmRatio(b *testing.B, g *Graph, got int64) float64 {
	b.Helper()
	if got == 0 {
		return 0
	}
	if g.N() <= 20 {
		_, opt, err := exact.MaxWeightMatchingBrute(g)
		if err != nil {
			b.Fatal(err)
		}
		return float64(opt) / float64(got)
	}
	lower := g.MatchingWeight(exact.GreedyMatching(g))
	return float64(lower) / float64(got)
}

// E2 — Table 1 row 2 (deterministic): Algorithm 3. Rounds of the reduction
// stage are O(∆); the ∆ sweep at fixed n must show linear growth.
func BenchmarkTable1Row2_MaxISDeterministic(b *testing.B) {
	for _, d := range []int{2, 4, 8, 16, 32} {
		b.Run(fmt.Sprintf("delta=%d", d), func(b *testing.B) {
			g, err := RandomRegular(128, d, uint64(d))
			if err != nil {
				b.Fatal(err)
			}
			AssignUniformNodeWeights(g, 1000, uint64(d)+7)
			var rounds, ratio float64
			for i := 0; i < b.N; i++ {
				res, err := MaxISDeterministic(g, WithSeed(uint64(i)))
				if err != nil {
					b.Fatal(err)
				}
				rounds += float64(res.Cost.Rounds)
				ratio += isRatio(b, g, res.Weight)
			}
			b.ReportMetric(rounds/float64(b.N), "rounds")
			b.ReportMetric(ratio/float64(b.N), "ratio")
		})
	}
}

// E2b — Table 1 row 2: deterministic-reduction 2-approximate MWM.
func BenchmarkTable1Row2_MWMDeterministic(b *testing.B) {
	for _, d := range []int{2, 4, 8} {
		b.Run(fmt.Sprintf("delta=%d", d), func(b *testing.B) {
			g, err := RandomRegular(64, d, uint64(d)+3)
			if err != nil {
				b.Fatal(err)
			}
			AssignUniformEdgeWeights(g, 256, uint64(d)+9)
			var rounds, ratio float64
			for i := 0; i < b.N; i++ {
				res, err := MWM2Deterministic(g, WithSeed(uint64(i)))
				if err != nil {
					b.Fatal(err)
				}
				rounds += float64(res.Cost.Rounds)
				ratio += mwmRatio(b, g, res.Weight)
			}
			b.ReportMetric(rounds/float64(b.N), "rounds")
			b.ReportMetric(ratio/float64(b.N), "ratio")
		})
	}
}

// E3 — Table 1 row 3: (2+ε)-approximate MWM in O(log∆/loglog∆)-style rounds.
// The ∆ sweep at fixed n shows the sublogarithmic growth; rounds must not
// scale with n (compare n=128 vs n=512 at ∆=8).
func BenchmarkTable1Row3_FastMWM(b *testing.B) {
	cases := []struct{ n, d int }{{128, 4}, {128, 8}, {128, 16}, {512, 8}}
	for _, c := range cases {
		b.Run(fmt.Sprintf("n=%d/delta=%d", c.n, c.d), func(b *testing.B) {
			g, err := RandomRegular(c.n, c.d, uint64(c.n+c.d))
			if err != nil {
				b.Fatal(err)
			}
			AssignUniformEdgeWeights(g, 512, uint64(c.d)+11)
			var rounds, ratio float64
			for i := 0; i < b.N; i++ {
				res, err := FastMWM(g, 0.5, WithSeed(uint64(i)))
				if err != nil {
					b.Fatal(err)
				}
				rounds += float64(res.Cost.Rounds)
				ratio += mwmRatio(b, g, res.Weight)
			}
			b.ReportMetric(rounds/float64(b.N), "rounds")
			b.ReportMetric(ratio/float64(b.N), "ratio")
		})
	}
}

// E4 — Table 1 row 4: (1+ε)-approximate MCM (Theorem B.4). Ratio is against
// the exact blossom optimum.
func BenchmarkTable1Row4_FastMCM(b *testing.B) {
	for _, eps := range []float64{1, 0.5, 0.34} {
		b.Run(fmt.Sprintf("eps=%.2f", eps), func(b *testing.B) {
			g := GNP(96, 0.06, 77)
			opt := float64(len(exact.MaxCardinalityMatching(g)))
			var rounds, ratio float64
			for i := 0; i < b.N; i++ {
				res, err := OneEpsMCM(g, eps, WithSeed(uint64(i)))
				if err != nil {
					b.Fatal(err)
				}
				rounds += float64(res.Cost.Rounds)
				ratio += opt / float64(len(res.Edges))
			}
			b.ReportMetric(rounds/float64(b.N), "rounds")
			b.ReportMetric(ratio/float64(b.N), "ratio")
		})
	}
	// The §B.3 CONGEST construction of the same result.
	for _, eps := range []float64{1, 0.5} {
		b.Run(fmt.Sprintf("congest/eps=%.2f", eps), func(b *testing.B) {
			g := GNP(48, 0.12, 79)
			opt := float64(len(exact.MaxCardinalityMatching(g)))
			var rounds, ratio float64
			for i := 0; i < b.N; i++ {
				res, err := OneEpsMCMCongest(g, eps, WithSeed(uint64(i)))
				if err != nil {
					b.Fatal(err)
				}
				rounds += float64(res.Cost.Rounds)
				if len(res.Edges) > 0 {
					ratio += opt / float64(len(res.Edges))
				}
			}
			b.ReportMetric(rounds/float64(b.N), "rounds")
			b.ReportMetric(ratio/float64(b.N), "ratio")
		})
	}
	// The (2+ε) variant of Theorem 3.2, for the same row's CONGEST claim.
	for _, d := range []int{4, 8, 16} {
		b.Run(fmt.Sprintf("2eps/delta=%d", d), func(b *testing.B) {
			g, err := RandomRegular(256, d, uint64(d)+13)
			if err != nil {
				b.Fatal(err)
			}
			opt := float64(len(exact.MaxCardinalityMatching(g)))
			var rounds, ratio float64
			for i := 0; i < b.N; i++ {
				res, err := FastMCM(g, 0.5, WithSeed(uint64(i)))
				if err != nil {
					b.Fatal(err)
				}
				rounds += float64(res.Cost.Rounds)
				ratio += opt / float64(len(res.Edges))
			}
			b.ReportMetric(rounds/float64(b.N), "rounds")
			b.ReportMetric(ratio/float64(b.N), "ratio")
		})
	}
}

// E5 — Figure 1: the forward/backward augmenting-path counting traversal
// (Claims B.5/B.6); cmd/fig1 renders the picture, this bench measures it.
func BenchmarkFigure1_PathCounting(b *testing.B) {
	g, side := RandomBipartite(128, 128, 0.04, 5)
	mate := augment.MateFromMatching(g, exact.GreedyMatching(g))
	active := make([]bool, g.N())
	for i := range active {
		active[i] = true
	}
	b.ResetTimer()
	var paths float64
	for i := 0; i < b.N; i++ {
		pc, err := augment.CountPaths(g, side, mate, 3, active)
		if err != nil {
			b.Fatal(err)
		}
		total := int64(0)
		for v := 0; v < g.N(); v++ {
			if side[v] == 1 && mate[v] == -1 {
				total += pc.Forward[v]
			}
		}
		paths += float64(total)
	}
	b.ReportMetric(paths/float64(b.N), "paths")
}

// E6 — Theorem 3.1: uncovered probability after the NMIS round budget.
func BenchmarkTheorem31_NMISCoverage(b *testing.B) {
	for _, delta := range []float64{0.2, 0.05} {
		b.Run(fmt.Sprintf("delta=%.2f", delta), func(b *testing.B) {
			g := GNP(256, 0.03, 9)
			var rounds, uncovered float64
			for i := 0; i < b.N; i++ {
				res, err := nmis.Run(g, nmis.Params{K: 2, Delta: delta}, simul.Config{Seed: uint64(i)})
				if err != nil {
					b.Fatal(err)
				}
				rounds += float64(res.VirtualRounds)
				uncovered += float64(res.UncoveredCount()) / float64(g.N())
			}
			b.ReportMetric(rounds/float64(b.N), "rounds")
			b.ReportMetric(uncovered/float64(b.N), "uncovered")
		})
	}
}

// E7 — the §2.1 star ablation: naive simultaneous local ratio scores zero
// where Algorithm 2 collects the leaves.
func BenchmarkAblation_StarFailure(b *testing.B) {
	g := Star(64)
	g.SetNodeWeight(0, 100)
	for v := 1; v < 64; v++ {
		g.SetNodeWeight(v, 3)
	}
	var naive, alg2 float64
	for i := 0; i < b.N; i++ {
		naive += float64(g.SetWeight(core.NaiveSimultaneousLocalRatio(g)))
		res, err := MaxIS(g, WithSeed(uint64(i)))
		if err != nil {
			b.Fatal(err)
		}
		alg2 += float64(res.Weight)
	}
	b.ReportMetric(naive/float64(b.N), "naive_weight")
	b.ReportMetric(alg2/float64(b.N), "alg2_weight")
}

// E8 — Theorem 2.8 ablation: aggregation-based line-graph simulation vs the
// naive relay simulation on a high-degree star.
func BenchmarkAblation_AggregationVsNaive(b *testing.B) {
	g := Star(48)
	AssignUniformEdgeWeights(g, 32, 3)
	build, err := newChaosBuilder()
	if err != nil {
		b.Fatal(err)
	}
	var smart, naive float64
	for i := 0; i < b.N; i++ {
		s, err := agg.RunLine(g, simul.Config{Seed: uint64(i), Model: simul.LOCAL}, build)
		if err != nil {
			b.Fatal(err)
		}
		n, err := agg.RunLineNaive(g, simul.Config{Seed: uint64(i), Model: simul.LOCAL}, build)
		if err != nil {
			b.Fatal(err)
		}
		smart += float64(s.Metrics.Rounds)
		naive += float64(n.Metrics.Rounds)
	}
	b.ReportMetric(smart/float64(b.N), "agg_rounds")
	b.ReportMetric(naive/float64(b.N), "naive_rounds")
}

// newChaosBuilder reuses the MWM2 machine as a representative local
// aggregation workload for E8.
func newChaosBuilder() (func(e int) agg.Machine, error) {
	factory, err := misFactoryForBench()
	if err != nil {
		return nil, err
	}
	return factory, nil
}

func misFactoryForBench() (func(e int) agg.Machine, error) {
	// A short NMIS run is the cheapest non-trivial aggregation machine.
	build, err := nmis.NewMachine(nmis.Params{K: 2, Delta: 0.2, MaxDegree: 64})
	if err != nil {
		return nil, err
	}
	return func(e int) agg.Machine { return build(e) }, nil
}

// E9 — Appendix B.4: the proposal algorithm's rounds follow
// O(K·log(1/ε) + log∆/logK) and the ratio stays within (2+ε).
func BenchmarkAppendixB4_Proposal(b *testing.B) {
	for _, d := range []int{4, 16, 64} {
		b.Run(fmt.Sprintf("delta=%d", d), func(b *testing.B) {
			g, err := RandomRegular(256, d, uint64(d)+17)
			if err != nil {
				b.Fatal(err)
			}
			opt := float64(len(exact.MaxCardinalityMatching(g)))
			var rounds, ratio float64
			for i := 0; i < b.N; i++ {
				res, err := ProposalMCM(g, 0.5, WithSeed(uint64(i)))
				if err != nil {
					b.Fatal(err)
				}
				rounds += float64(res.Cost.Rounds)
				ratio += opt / float64(len(res.Edges))
			}
			b.ReportMetric(rounds/float64(b.N), "rounds")
			b.ReportMetric(ratio/float64(b.N), "ratio")
		})
	}
}

// E10 — ablation: the MIS black box inside Algorithm 2.
func BenchmarkAblation_MISBlackBox(b *testing.B) {
	g := GNP(128, 0.06, 21)
	AssignUniformNodeWeights(g, 128, 22)
	for _, name := range []string{MISLuby, MISGhaffari, MISGreedyID} {
		b.Run(name, func(b *testing.B) {
			var rounds float64
			for i := 0; i < b.N; i++ {
				res, err := MaxIS(g, WithSeed(uint64(i)), WithMIS(name))
				if err != nil {
					b.Fatal(err)
				}
				rounds += float64(res.Cost.Rounds)
			}
			b.ReportMetric(rounds/float64(b.N), "rounds")
		})
	}
}

// E11 — ablation: the K parameter of the §3.1 NMIS (balancing the two
// progress types).
func BenchmarkAblation_NMISKSweep(b *testing.B) {
	g := GNP(256, 0.05, 23)
	for _, k := range []int{2, 3, 4, 6} {
		b.Run(fmt.Sprintf("K=%d", k), func(b *testing.B) {
			var rounds, uncovered float64
			for i := 0; i < b.N; i++ {
				res, err := nmis.Run(g, nmis.Params{K: k, Delta: 0.1}, simul.Config{Seed: uint64(i)})
				if err != nil {
					b.Fatal(err)
				}
				rounds += float64(res.VirtualRounds)
				uncovered += float64(res.UncoveredCount()) / float64(g.N())
			}
			b.ReportMetric(rounds/float64(b.N), "rounds")
			b.ReportMetric(uncovered/float64(b.N), "uncovered")
		})
	}
}

// Substrate microbenchmarks: the engine and the exact baselines, so
// regressions in the simulator show up independently of algorithm changes.
func BenchmarkEngineFlood(b *testing.B) {
	g := graph.Grid(16, 16)
	for i := 0; i < b.N; i++ {
		_, err := simul.Run(g, simul.Config{Seed: uint64(i)}, func(v int) simul.Automaton {
			return floodAutomaton{}
		})
		if err != nil {
			b.Fatal(err)
		}
	}
}

type floodAutomaton struct{}

type beat struct{}

func (beat) Bits() int { return 1 }

func (floodAutomaton) Step(ctx *simul.Context, inbox []simul.Envelope) {
	if ctx.Round() == 8 {
		ctx.Halt(nil)
		return
	}
	ctx.Broadcast(beat{})
}

func BenchmarkExactBlossom(b *testing.B) {
	g := GNP(128, 0.08, 29)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if m := exact.MaxCardinalityMatching(g); len(m) == 0 {
			b.Fatal("empty matching")
		}
	}
}

func BenchmarkExactBranchAndBoundIS(b *testing.B) {
	g := GNP(40, 0.2, 31)
	graph.AssignUniformNodeWeights(g, 64, rng.New(32))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := exact.MaxWeightIndependentSet(g); err != nil {
			b.Fatal(err)
		}
	}
}
