package repro

// Facade surface for the Figure 1 machinery (Claims B.5/B.6): the
// forward/backward traversal that counts shortest augmenting paths, plus the
// small matching baselines it is compared against. cmd/fig1 consumes only
// this surface, like every other cmd consumes Run and the typed entry
// points, so no command reaches into internal packages for figure
// reproduction.

import (
	"repro/internal/augment"
	"repro/internal/exact"
)

// PathCounts reports the per-node layers, forward counts (Figure 1's black
// numbers) and through counts (purple numbers) of the augmenting-path
// traversal.
type PathCounts = augment.PathCounts

// GreedyMatching returns the greedy maximal matching (edges scanned in ID
// order); the baseline used to seed Figure 1 and the benchmark ratios.
func GreedyMatching(g *Graph) []int { return exact.GreedyMatching(g) }

// MateFromMatching expands an edge-ID matching into the mate vector
// (mate[v] = u if {v,u} is matched, else -1).
func MateFromMatching(g *Graph, matching []int) []int {
	return augment.MateFromMatching(g, matching)
}

// CountAugmentingPaths runs the Figure 1 forward/backward traversal counting
// shortest augmenting paths of length d over the active nodes (Claim B.5).
// side is a bipartition as returned by RandomBipartite.
func CountAugmentingPaths(g *Graph, side, mate []int, d int, active []bool) (*PathCounts, error) {
	return augment.CountPaths(g, side, mate, d, active)
}

// EnumerateAugmentingPaths explicitly lists augmenting paths of the given
// length (up to cap), the brute-force check of Claim B.5 used by cmd/fig1 and
// the test suite.
func EnumerateAugmentingPaths(g *Graph, mate []int, length int, active []bool, cap int) ([][]int, error) {
	return augment.EnumerateAugmentingPaths(g, mate, length, active, cap)
}
