package exact

import (
	"fmt"
	"math"

	"repro/internal/graph"
)

// MaxWeightBipartiteMatching computes a maximum weight matching of a
// bipartite graph exactly using the Hungarian algorithm with potentials
// (O(k³) for k = max side size). side[v] must be a valid 2-coloring of g
// (e.g. from graph.Bipartition). It returns the matching edge IDs and the
// total weight.
func MaxWeightBipartiteMatching(g *graph.Graph, side []int) ([]int, int64, error) {
	var left, right []int
	for v := 0; v < g.N(); v++ {
		switch side[v] {
		case 0:
			left = append(left, v)
		case 1:
			right = append(right, v)
		default:
			return nil, 0, fmt.Errorf("exact: node %d has side %d, want 0 or 1", v, side[v])
		}
	}
	for _, e := range g.Edges() {
		if side[e.U] == side[e.V] {
			return nil, 0, fmt.Errorf("exact: edge %v is monochromatic; graph is not bipartite under side", e)
		}
	}
	k := len(left)
	if len(right) > k {
		k = len(right)
	}
	if k == 0 {
		return nil, 0, nil
	}
	// Pad to a k×k assignment problem; absent pairs cost 0 so the maximum
	// weight perfect matching of the padded matrix equals the maximum weight
	// matching of g (all weights are positive).
	// Hungarian below *minimizes*, so negate.
	const inf = math.MaxInt64 / 4
	cost := make([][]int64, k+1)
	for i := range cost {
		cost[i] = make([]int64, k+1)
	}
	leftIdx := make(map[int]int, len(left))
	for i, v := range left {
		leftIdx[v] = i + 1
	}
	rightIdx := make(map[int]int, len(right))
	for j, v := range right {
		rightIdx[v] = j + 1
	}
	for id, e := range g.Edges() {
		u, v := e.U, e.V
		if side[u] == 1 {
			u, v = v, u
		}
		cost[leftIdx[u]][rightIdx[v]] = -g.EdgeWeight(id)
	}

	// Classic O(k³) Hungarian with row/column potentials (1-indexed).
	u := make([]int64, k+1)
	vPot := make([]int64, k+1)
	way := make([]int, k+1)
	p := make([]int, k+1) // p[j] = row assigned to column j
	for i := 1; i <= k; i++ {
		p[0] = i
		j0 := 0
		minv := make([]int64, k+1)
		usedCol := make([]bool, k+1)
		for j := range minv {
			minv[j] = inf
		}
		for {
			usedCol[j0] = true
			i0 := p[j0]
			var delta int64 = inf
			j1 := -1
			for j := 1; j <= k; j++ {
				if usedCol[j] {
					continue
				}
				cur := cost[i0][j] - u[i0] - vPot[j]
				if cur < minv[j] {
					minv[j] = cur
					way[j] = j0
				}
				if minv[j] < delta {
					delta = minv[j]
					j1 = j
				}
			}
			for j := 0; j <= k; j++ {
				if usedCol[j] {
					u[p[j]] += delta
					vPot[j] -= delta
				} else {
					minv[j] -= delta
				}
			}
			j0 = j1
			if p[j0] == 0 {
				break
			}
		}
		for j0 != 0 {
			j1 := way[j0]
			p[j0] = p[j1]
			j0 = j1
		}
	}

	var out []int
	var total int64
	for j := 1; j <= k; j++ {
		i := p[j]
		if i == 0 || i > len(left) || j > len(right) {
			continue
		}
		uNode, vNode := left[i-1], right[j-1]
		if id, ok := g.EdgeID(uNode, vNode); ok {
			// Skip zero-padded pairs that happen to coincide with no edge;
			// also skip real edges only if they'd reduce weight (cannot
			// happen with positive weights, but keep the guard).
			if g.EdgeWeight(id) > 0 {
				out = append(out, id)
				total += g.EdgeWeight(id)
			}
		}
	}
	return out, total, nil
}
