// Package exact provides exact and greedy baseline solvers for maximum
// matching and maximum independent set. The paper's evaluation claims are
// about approximation factors; these solvers supply the optima (or, for
// greedy, the classical baselines) that the distributed algorithms' outputs
// are measured against in the test suite and the benchmark harness.
//
// Layer (DESIGN.md §2): exact is a substrate/baseline layer above
// internal/graph only; anything may import it.
//
// Concurrency and ownership: all solvers are pure functions — input graphs
// are read-only and shareable, results are freshly allocated and owned by
// the caller, so concurrent invocations are safe.
package exact

import "repro/internal/graph"

// MaxCardinalityMatching computes a maximum cardinality matching of g using
// Edmonds' blossom algorithm [Edm65b] in O(V³) time. It returns the matching
// as a list of edge IDs.
func MaxCardinalityMatching(g *graph.Graph) []int {
	s := &blossomSolver{
		g:       g,
		n:       g.N(),
		match:   make([]int, g.N()),
		parent:  make([]int, g.N()),
		base:    make([]int, g.N()),
		used:    make([]bool, g.N()),
		blossom: make([]bool, g.N()),
	}
	for i := range s.match {
		s.match[i] = -1
	}
	// Greedy warm start cuts the number of augmentation phases roughly in
	// half without affecting optimality.
	for _, e := range g.Edges() {
		if s.match[e.U] == -1 && s.match[e.V] == -1 {
			s.match[e.U], s.match[e.V] = e.V, e.U
		}
	}
	for v := 0; v < s.n; v++ {
		if s.match[v] == -1 {
			s.findPath(v)
		}
	}
	var out []int
	for v := 0; v < s.n; v++ {
		if u := s.match[v]; u > v {
			id, ok := g.EdgeID(v, u)
			if !ok {
				panic("exact: blossom produced a non-edge")
			}
			out = append(out, id)
		}
	}
	return out
}

type blossomSolver struct {
	g       *graph.Graph
	n       int
	match   []int // match[v] = mate of v, or -1
	parent  []int // parent[v] = previous node on the alternating path, or -1
	base    []int // base[v] = base vertex of v's blossom
	used    []bool
	blossom []bool
}

// lca finds the lowest common ancestor of a and b in the alternating tree,
// walking over blossom bases.
func (s *blossomSolver) lca(a, b int) int {
	onPath := make([]bool, s.n)
	for {
		a = s.base[a]
		onPath[a] = true
		if s.match[a] == -1 {
			break
		}
		a = s.parent[s.match[a]]
	}
	for {
		b = s.base[b]
		if onPath[b] {
			return b
		}
		b = s.parent[s.match[b]]
	}
}

// markPath marks the blossom vertices on the path from v down to base b,
// re-rooting parent pointers through child.
func (s *blossomSolver) markPath(v, b, child int) {
	for s.base[v] != b {
		s.blossom[s.base[v]] = true
		s.blossom[s.base[s.match[v]]] = true
		s.parent[v] = child
		child = s.match[v]
		v = s.parent[s.match[v]]
	}
}

// findPath grows an alternating BFS tree from root and augments along the
// first augmenting path found.
func (s *blossomSolver) findPath(root int) bool {
	for i := 0; i < s.n; i++ {
		s.used[i] = false
		s.parent[i] = -1
		s.base[i] = i
	}
	s.used[root] = true
	queue := []int{root}
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		for _, to32 := range s.g.Neighbors(v) {
			to := int(to32)
			if s.base[v] == s.base[to] || s.match[v] == to {
				continue
			}
			if to == root || (s.match[to] != -1 && s.parent[s.match[to]] != -1) {
				// An odd cycle: contract the blossom.
				curBase := s.lca(v, to)
				for i := range s.blossom {
					s.blossom[i] = false
				}
				s.markPath(v, curBase, to)
				s.markPath(to, curBase, v)
				for i := 0; i < s.n; i++ {
					if s.blossom[s.base[i]] {
						s.base[i] = curBase
						if !s.used[i] {
							s.used[i] = true
							queue = append(queue, i)
						}
					}
				}
			} else if s.parent[to] == -1 {
				s.parent[to] = v
				if s.match[to] == -1 {
					s.augment(to)
					return true
				}
				s.used[s.match[to]] = true
				queue = append(queue, s.match[to])
			}
		}
	}
	return false
}

// augment flips the alternating path ending at the exposed vertex v.
func (s *blossomSolver) augment(v int) {
	for v != -1 {
		pv := s.parent[v]
		next := s.match[pv]
		s.match[pv] = v
		s.match[v] = pv
		v = next
	}
}
