package exact

import (
	"cmp"
	"slices"

	"repro/internal/graph"
)

// GreedyMatching returns the classical sequential greedy matching: scan edges
// in non-increasing weight order, keep every edge whose endpoints are both
// free. It is a 2-approximation of maximum weight matching and the standard
// centralized baseline.
func GreedyMatching(g *graph.Graph) []int {
	order := make([]int, g.M())
	for i := range order {
		order[i] = i
	}
	slices.SortStableFunc(order, func(a, b int) int {
		return cmp.Compare(g.EdgeWeight(b), g.EdgeWeight(a))
	})
	used := make([]bool, g.N())
	var out []int
	for _, id := range order {
		e := g.EdgeByID(id)
		if used[e.U] || used[e.V] {
			continue
		}
		used[e.U], used[e.V] = true, true
		out = append(out, id)
	}
	return out
}

// GreedyMinDegreeIS returns the classical min-degree greedy independent set
// [HR97]: repeatedly add a minimum-degree node and delete its neighborhood.
// For unweighted graphs it is a (∆+2)/3-approximation.
func GreedyMinDegreeIS(g *graph.Graph) []bool {
	n := g.N()
	alive := make([]bool, n)
	deg := make([]int, n)
	for v := 0; v < n; v++ {
		alive[v] = true
		deg[v] = g.Degree(v)
	}
	out := make([]bool, n)
	remaining := n
	for remaining > 0 {
		pick := -1
		for v := 0; v < n; v++ {
			if alive[v] && (pick == -1 || deg[v] < deg[pick]) {
				pick = v
			}
		}
		out[pick] = true
		kill := []int{pick}
		for _, u32 := range g.Neighbors(pick) {
			if u := int(u32); alive[u] {
				kill = append(kill, u)
			}
		}
		for _, v := range kill {
			alive[v] = false
			remaining--
			for _, u := range g.Neighbors(v) {
				if alive[u] {
					deg[u]--
				}
			}
		}
	}
	return out
}

// GreedyWeightIS adds nodes in non-increasing weight order whenever
// independence permits; a simple weighted baseline.
func GreedyWeightIS(g *graph.Graph) []bool {
	order := make([]int, g.N())
	for i := range order {
		order[i] = i
	}
	slices.SortStableFunc(order, func(a, b int) int {
		return cmp.Compare(g.NodeWeight(b), g.NodeWeight(a))
	})
	out := make([]bool, g.N())
	blocked := make([]bool, g.N())
	for _, v := range order {
		if blocked[v] {
			continue
		}
		out[v] = true
		for _, u := range g.Neighbors(v) {
			blocked[u] = true
		}
	}
	return out
}

// SequentialMIS returns the lexicographically greedy maximal independent set
// (scan nodes by ID); the simplest correct MIS reference.
func SequentialMIS(g *graph.Graph) []bool {
	out := make([]bool, g.N())
	blocked := make([]bool, g.N())
	for v := 0; v < g.N(); v++ {
		if blocked[v] {
			continue
		}
		out[v] = true
		for _, u := range g.Neighbors(v) {
			blocked[u] = true
		}
	}
	return out
}
