package exact

import (
	"fmt"
	"math/bits"

	"repro/internal/graph"
)

// MaxWeightMatchingBrute computes a maximum weight matching exactly by
// dynamic programming over node subsets; O(2ⁿ·n). It is the ground truth for
// small general weighted graphs (n ≤ ~22). Returns edge IDs and total weight.
func MaxWeightMatchingBrute(g *graph.Graph) ([]int, int64, error) {
	n := g.N()
	if n > 24 {
		return nil, 0, fmt.Errorf("exact: brute-force matching limited to 24 nodes, got %d", n)
	}
	// adjacency weights
	type nb struct {
		v  int
		id int
		w  int64
	}
	adj := make([][]nb, n)
	for id, e := range g.Edges() {
		adj[e.U] = append(adj[e.U], nb{v: e.V, id: id, w: g.EdgeWeight(id)})
		adj[e.V] = append(adj[e.V], nb{v: e.U, id: id, w: g.EdgeWeight(id)})
	}
	size := 1 << n
	dp := make([]int64, size)
	choice := make([]int32, size) // edge id chosen for lowest bit, or -1
	for mask := 1; mask < size; mask++ {
		choice[mask] = -1
		v := bits.TrailingZeros(uint(mask))
		// v unmatched:
		best := dp[mask&^(1<<v)]
		chosen := int32(-1)
		for _, e := range adj[v] {
			if mask&(1<<e.v) == 0 {
				continue
			}
			cand := e.w + dp[mask&^(1<<v)&^(1<<e.v)]
			if cand > best {
				best = cand
				chosen = int32(e.id)
			}
		}
		dp[mask] = best
		choice[mask] = chosen
	}
	// Reconstruct.
	var out []int
	mask := size - 1
	for mask != 0 {
		v := bits.TrailingZeros(uint(mask))
		c := choice[mask]
		if c == -1 {
			mask &^= 1 << v
			continue
		}
		out = append(out, int(c))
		e := g.EdgeByID(int(c))
		mask &^= 1 << e.U
		mask &^= 1 << e.V
	}
	return out, dp[size-1], nil
}

// MaxWeightIndependentSet computes an exact maximum weight independent set by
// branch and bound over 64-bit adjacency sets (n ≤ 64). It is exponential in
// the worst case but fast on the small and sparse instances used for
// approximation-ratio measurement. Returns the indicator vector and weight.
func MaxWeightIndependentSet(g *graph.Graph) ([]bool, int64, error) {
	n := g.N()
	if n > 64 {
		return nil, 0, fmt.Errorf("exact: branch-and-bound MaxIS limited to 64 nodes, got %d", n)
	}
	adj := make([]uint64, n)
	for _, e := range g.Edges() {
		adj[e.U] |= 1 << uint(e.V)
		adj[e.V] |= 1 << uint(e.U)
	}
	w := make([]int64, n)
	for v := 0; v < n; v++ {
		w[v] = g.NodeWeight(v)
	}
	s := &isSolver{adj: adj, w: w, n: n}
	var full uint64
	if n == 64 {
		full = ^uint64(0)
	} else {
		full = (1 << uint(n)) - 1
	}
	s.search(full, 0, 0)
	out := make([]bool, n)
	for v := 0; v < n; v++ {
		if s.bestSet&(1<<uint(v)) != 0 {
			out[v] = true
		}
	}
	return out, s.best, nil
}

type isSolver struct {
	adj     []uint64
	w       []int64
	n       int
	best    int64
	bestSet uint64
}

func (s *isSolver) weightOf(set uint64) int64 {
	var sum int64
	for set != 0 {
		v := bits.TrailingZeros64(set)
		sum += s.w[v]
		set &= set - 1
	}
	return sum
}

// search explores candidate set cand with current accumulated weight cur and
// chosen set curSet.
func (s *isSolver) search(cand uint64, cur int64, curSet uint64) {
	if cur > s.best {
		s.best = cur
		s.bestSet = curSet
	}
	if cand == 0 {
		return
	}
	// Bound: even taking everything remaining cannot beat best.
	if cur+s.weightOf(cand) <= s.best {
		return
	}
	// Pick the candidate with the largest degree within cand to branch on
	// (max-degree branching shrinks the candidate set fastest); ties broken
	// by weight.
	pick, pickDeg := -1, -1
	var pickW int64
	for c := cand; c != 0; c &= c - 1 {
		v := bits.TrailingZeros64(c)
		d := bits.OnesCount64(s.adj[v] & cand)
		if d > pickDeg || (d == pickDeg && s.w[v] > pickW) {
			pick, pickDeg, pickW = v, d, s.w[v]
		}
	}
	v := uint64(1) << uint(pick)
	// Branch 1: include pick.
	s.search(cand&^v&^s.adj[pick], cur+s.w[pick], curSet|v)
	// Branch 2: exclude pick.
	s.search(cand&^v, cur, curSet)
}

// MaxWeightISOnTree computes the exact maximum weight independent set of a
// forest in linear time by dynamic programming; used for ratio measurement on
// large tree instances where branch and bound would not scale.
func MaxWeightISOnTree(g *graph.Graph) ([]bool, int64, error) {
	n := g.N()
	if g.M() >= n && n > 0 {
		// A forest has fewer edges than nodes; quick sanity check (not a
		// full acyclicity proof — the DFS below detects back edges).
		return nil, 0, fmt.Errorf("exact: graph with %d nodes and %d edges is not a forest", n, g.M())
	}
	take := make([]int64, n) // best weight for subtree of v with v taken
	skip := make([]int64, n) // best weight with v not taken
	state := make([]int8, n) // 0 unvisited, 1 on stack, 2 done
	parent := make([]int, n)
	takeSel := make([]bool, n)
	var total int64
	out := make([]bool, n)

	for root := 0; root < n; root++ {
		if state[root] != 0 {
			continue
		}
		parent[root] = -1
		// Iterative post-order DFS.
		stack := []int{root}
		var order []int
		state[root] = 1
		for len(stack) > 0 {
			v := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			order = append(order, v)
			for _, u32 := range g.Neighbors(v) {
				u := int(u32)
				if u == parent[v] {
					continue
				}
				if state[u] != 0 {
					return nil, 0, fmt.Errorf("exact: cycle detected through nodes %d and %d; not a forest", v, u)
				}
				state[u] = 1
				parent[u] = v
				stack = append(stack, u)
			}
		}
		for i := len(order) - 1; i >= 0; i-- {
			v := order[i]
			take[v] = g.NodeWeight(v)
			skip[v] = 0
			for _, u32 := range g.Neighbors(v) {
				u := int(u32)
				if u == parent[v] {
					continue
				}
				take[v] += skip[u]
				if take[u] > skip[u] {
					skip[v] += take[u]
				} else {
					skip[v] += skip[u]
				}
			}
			state[v] = 2
		}
		if take[root] > skip[root] {
			total += take[root]
		} else {
			total += skip[root]
		}
		// Reconstruct: walk down, deciding each node given its parent's
		// decision.
		for _, v := range order {
			if parent[v] == -1 {
				takeSel[v] = take[v] > skip[v]
			} else if takeSel[parent[v]] {
				takeSel[v] = false
			} else {
				takeSel[v] = take[v] > skip[v]
			}
			out[v] = takeSel[v]
		}
	}
	return out, total, nil
}
