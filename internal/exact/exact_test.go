package exact

import (
	"testing"

	"repro/internal/graph"
	"repro/internal/rng"
)

// enumerateIS computes the exact maximum weight independent set by testing
// all 2ⁿ subsets; the trusted tiny-n oracle for the cleverer solvers.
func enumerateIS(g *graph.Graph) int64 {
	n := g.N()
	var best int64
	for mask := 0; mask < 1<<n; mask++ {
		in := make([]bool, n)
		for v := 0; v < n; v++ {
			in[v] = mask&(1<<v) != 0
		}
		if !g.IsIndependentSet(in) {
			continue
		}
		if w := g.SetWeight(in); w > best {
			best = w
		}
	}
	return best
}

func TestBlossomKnownGraphs(t *testing.T) {
	tests := []struct {
		name string
		g    *graph.Graph
		want int
	}{
		{"path4", graph.Path(4), 2},
		{"path5", graph.Path(5), 2},
		{"cycle5", graph.Cycle(5), 2},
		{"cycle6", graph.Cycle(6), 3},
		{"complete4", graph.Complete(4), 2},
		{"complete7", graph.Complete(7), 3},
		{"star9", graph.Star(9), 1},
		{"single edge", graph.Path(2), 1},
		{"edgeless", graph.NewBuilder(5).MustBuild(), 0},
		{"grid3x3", graph.Grid(3, 3), 4},
		{"petersen", petersen(), 5},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			m := MaxCardinalityMatching(tc.g)
			if !tc.g.IsMatching(m) {
				t.Fatal("output is not a matching")
			}
			if len(m) != tc.want {
				t.Fatalf("|M| = %d, want %d", len(m), tc.want)
			}
		})
	}
}

// petersen builds the Petersen graph, whose maximum matching is perfect —
// the classic stress test for blossom contraction.
func petersen() *graph.Graph {
	b := graph.NewBuilder(10)
	for i := 0; i < 5; i++ {
		b.MustAddEdge(i, (i+1)%5)     // outer C5
		b.MustAddEdge(5+i, 5+(i+2)%5) // inner pentagram
		b.MustAddEdge(i, 5+i)         // spokes
	}
	return b.MustBuild()
}

func TestBlossomMatchesBruteForceCardinality(t *testing.T) {
	r := rng.New(1)
	for trial := 0; trial < 60; trial++ {
		n := 4 + r.Intn(12) // ≤ 15 nodes: DP feasible
		g := graph.GNP(n, 0.3, r.Split(uint64(trial)))
		m := MaxCardinalityMatching(g)
		if !g.IsMatching(m) {
			t.Fatal("blossom output not a matching")
		}
		_, bruteW, err := MaxWeightMatchingBrute(g) // unit weights = cardinality
		if err != nil {
			t.Fatal(err)
		}
		if int64(len(m)) != bruteW {
			t.Fatalf("trial %d: blossom %d vs brute %d edges", trial, len(m), bruteW)
		}
	}
}

func TestBruteMatchingWeighted(t *testing.T) {
	// Path with weights where the heavy middle edge beats the two outer ones
	// combined, and vice versa.
	g := graph.Path(4)
	g.SetEdgeWeight(0, 3)
	g.SetEdgeWeight(1, 10)
	g.SetEdgeWeight(2, 4)
	m, w, err := MaxWeightMatchingBrute(g)
	if err != nil {
		t.Fatal(err)
	}
	if w != 10 || len(m) != 1 || m[0] != 1 {
		t.Fatalf("m=%v w=%d, want middle edge weight 10", m, w)
	}
	g.SetEdgeWeight(1, 6)
	_, w, err = MaxWeightMatchingBrute(g)
	if err != nil {
		t.Fatal(err)
	}
	if w != 7 {
		t.Fatalf("w=%d, want 7 (outer edges)", w)
	}
}

func TestBruteMatchingRejectsLargeGraphs(t *testing.T) {
	if _, _, err := MaxWeightMatchingBrute(graph.NewBuilder(25).MustBuild()); err == nil {
		t.Fatal("accepted 25 nodes")
	}
}

func TestHungarianAgainstBrute(t *testing.T) {
	r := rng.New(2)
	for trial := 0; trial < 40; trial++ {
		nl, nr := 2+r.Intn(5), 2+r.Intn(5)
		g, side := graph.RandomBipartite(nl, nr, 0.5, r.Split(uint64(trial)))
		graph.AssignUniformEdgeWeights(g, 50, r.Split(uint64(1000+trial)))
		m, w, err := MaxWeightBipartiteMatching(g, side)
		if err != nil {
			t.Fatal(err)
		}
		if !g.IsMatching(m) {
			t.Fatal("hungarian output not a matching")
		}
		if got := g.MatchingWeight(m); got != w {
			t.Fatalf("reported weight %d != recomputed %d", w, got)
		}
		_, bruteW, err := MaxWeightMatchingBrute(g)
		if err != nil {
			t.Fatal(err)
		}
		if w != bruteW {
			t.Fatalf("trial %d: hungarian %d vs brute %d", trial, w, bruteW)
		}
	}
}

func TestHungarianRejectsNonBipartite(t *testing.T) {
	g := graph.Cycle(3)
	if _, _, err := MaxWeightBipartiteMatching(g, []int{0, 1, 0}); err == nil {
		t.Fatal("accepted odd cycle")
	}
	if _, _, err := MaxWeightBipartiteMatching(g, []int{0, 1, 7}); err == nil {
		t.Fatal("accepted invalid side value")
	}
}

func TestMaxWeightISAgainstEnumeration(t *testing.T) {
	r := rng.New(3)
	for trial := 0; trial < 50; trial++ {
		n := 3 + r.Intn(10)
		g := graph.GNP(n, 0.35, r.Split(uint64(trial)))
		graph.AssignUniformNodeWeights(g, 20, r.Split(uint64(500+trial)))
		in, w, err := MaxWeightIndependentSet(g)
		if err != nil {
			t.Fatal(err)
		}
		if !g.IsIndependentSet(in) {
			t.Fatal("B&B output not independent")
		}
		if got := g.SetWeight(in); got != w {
			t.Fatalf("reported %d != recomputed %d", w, got)
		}
		if want := enumerateIS(g); w != want {
			t.Fatalf("trial %d: B&B %d vs enumeration %d", trial, w, want)
		}
	}
}

func TestMaxWeightISRejectsLarge(t *testing.T) {
	if _, _, err := MaxWeightIndependentSet(graph.NewBuilder(65).MustBuild()); err == nil {
		t.Fatal("accepted 65 nodes")
	}
}

func TestTreeDPAgainstBranchAndBound(t *testing.T) {
	r := rng.New(4)
	for trial := 0; trial < 40; trial++ {
		n := 2 + r.Intn(30)
		g := graph.RandomTree(n, r.Split(uint64(trial)))
		graph.AssignUniformNodeWeights(g, 30, r.Split(uint64(900+trial)))
		in, w, err := MaxWeightISOnTree(g)
		if err != nil {
			t.Fatal(err)
		}
		if !g.IsIndependentSet(in) {
			t.Fatal("tree DP output not independent")
		}
		if got := g.SetWeight(in); got != w {
			t.Fatalf("reported %d != recomputed %d", w, got)
		}
		_, bnbW, err := MaxWeightIndependentSet(g)
		if err != nil {
			t.Fatal(err)
		}
		if w != bnbW {
			t.Fatalf("trial %d: tree DP %d vs B&B %d", trial, w, bnbW)
		}
	}
}

func TestTreeDPOnForest(t *testing.T) {
	// Two disjoint paths.
	b := graph.NewBuilder(7)
	b.MustAddEdge(0, 1)
	b.MustAddEdge(1, 2)
	b.MustAddEdge(4, 5)
	b.MustAddEdge(5, 6)
	g := b.MustBuild()
	in, w, err := MaxWeightISOnTree(g)
	if err != nil {
		t.Fatal(err)
	}
	// {0,2} + {3} + {4,6} = 5 nodes of weight 1.
	if w != 5 || !g.IsIndependentSet(in) {
		t.Fatalf("forest IS weight %d, want 5", w)
	}
}

func TestTreeDPRejectsCycles(t *testing.T) {
	if _, _, err := MaxWeightISOnTree(graph.Cycle(4)); err == nil {
		t.Fatal("accepted a cycle")
	}
}

func TestGreedyBaselinesValid(t *testing.T) {
	r := rng.New(5)
	for trial := 0; trial < 30; trial++ {
		g := graph.GNP(25, 0.2, r.Split(uint64(trial)))
		graph.AssignUniformNodeWeights(g, 40, r.Split(uint64(50+trial)))
		graph.AssignUniformEdgeWeights(g, 40, r.Split(uint64(99+trial)))

		if m := GreedyMatching(g); !g.IsMaximalMatching(m) {
			t.Fatal("greedy matching not maximal")
		}
		if in := GreedyMinDegreeIS(g); !g.IsMaximalIndependentSet(in) {
			t.Fatal("min-degree greedy IS not a maximal IS")
		}
		if in := GreedyWeightIS(g); !g.IsMaximalIndependentSet(in) {
			t.Fatal("weight greedy IS not a maximal IS")
		}
		if in := SequentialMIS(g); !g.IsMaximalIndependentSet(in) {
			t.Fatal("sequential MIS not a maximal IS")
		}
	}
}

func TestGreedyMatchingIsHalfOptimal(t *testing.T) {
	// The classical guarantee: greedy weight ≥ OPT/2.
	r := rng.New(6)
	for trial := 0; trial < 30; trial++ {
		n := 4 + r.Intn(12)
		g := graph.GNP(n, 0.4, r.Split(uint64(trial)))
		graph.AssignUniformEdgeWeights(g, 100, r.Split(uint64(77+trial)))
		_, opt, err := MaxWeightMatchingBrute(g)
		if err != nil {
			t.Fatal(err)
		}
		got := g.MatchingWeight(GreedyMatching(g))
		if 2*got < opt {
			t.Fatalf("greedy %d < OPT/2 (OPT=%d)", got, opt)
		}
	}
}
