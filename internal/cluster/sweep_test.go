package cluster

import (
	"bytes"
	"context"
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/httpapi"
	"repro/internal/service"
	"repro/internal/store"
	"repro/internal/sweep"
)

// runSweep executes one experiment against an API endpoint and returns the
// rendered CSV bytes.
func runSweep(t *testing.T, c *httpapi.Client, exp string, trials int) []byte {
	t.Helper()
	p, err := sweep.Build(exp, trials)
	if err != nil {
		t.Fatal(err)
	}
	if err := sweep.Execute(context.Background(), c, exp, p); err != nil {
		t.Fatalf("%s: %v", exp, err)
	}
	var buf bytes.Buffer
	if err := p.CSV(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestSweepCSVByteIdenticalAcrossTopologies is the tentpole acceptance
// criterion: every DESIGN.md §5 experiment produces byte-identical CSVs
// whether cmd/sweep talks to a single-node server, a 3-worker cluster
// coordinator, or the same cluster with hedged re-dispatch enabled —
// sharding and speculative duplicates are invisible to results.
func TestSweepCSVByteIdenticalAcrossTopologies(t *testing.T) {
	// Single-node reference stack.
	svc := service.New(service.Config{})
	t.Cleanup(svc.Close)
	st := store.New(store.Config{MaxGraphs: 1024})
	batches := service.NewBatches(svc, st, service.BatchConfig{})
	single := httptest.NewServer(httpapi.NewHandler(svc, st, batches))
	t.Cleanup(single.Close)
	singleClient := httpapi.NewClient(single.URL, nil)

	// 3-worker cluster behind the coordinator handler.
	coord, _ := newFleet(t, 3, func(cfg *Config) {
		cfg.Window = 4
		cfg.MaxGraphs = 1024
	})
	cl := httptest.NewServer(httpapi.NewClusterHandler(coord))
	t.Cleanup(cl.Close)
	clusterClient := httpapi.NewClient(cl.URL, nil)

	// Hedging cluster: an aggressive 1ms straggler threshold fires hedges
	// constantly, so first-result-wins merging gets exercised across every
	// experiment — and must still change nothing.
	hedged, _ := newFleet(t, 3, func(cfg *Config) {
		cfg.Window = 4
		cfg.MaxGraphs = 1024
		cfg.Hedge = true
		cfg.StragglerAfter = time.Millisecond
	})
	hl := httptest.NewServer(httpapi.NewClusterHandler(hedged))
	t.Cleanup(hl.Close)
	hedgedClient := httpapi.NewClient(hl.URL, nil)

	const trials = 1
	for _, exp := range sweep.Experiments() {
		want := runSweep(t, singleClient, exp, trials)
		got := runSweep(t, clusterClient, exp, trials)
		if !bytes.Equal(want, got) {
			t.Errorf("%s: cluster CSV differs from single-node\nsingle:\n%s\ncluster:\n%s", exp, want, got)
		}
		hot := runSweep(t, hedgedClient, exp, trials)
		if !bytes.Equal(want, hot) {
			t.Errorf("%s: hedged-cluster CSV differs from single-node\nsingle:\n%s\nhedged:\n%s", exp, want, hot)
		}
	}
}
