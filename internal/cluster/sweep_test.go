package cluster

import (
	"bytes"
	"net/http/httptest"
	"testing"

	"repro/internal/httpapi"
	"repro/internal/service"
	"repro/internal/store"
	"repro/internal/sweep"
)

// runSweep executes one experiment against an API endpoint and returns the
// rendered CSV bytes.
func runSweep(t *testing.T, c *httpapi.Client, exp string, trials int) []byte {
	t.Helper()
	p, err := sweep.Build(exp, trials)
	if err != nil {
		t.Fatal(err)
	}
	if err := sweep.Execute(c, exp, p); err != nil {
		t.Fatalf("%s: %v", exp, err)
	}
	var buf bytes.Buffer
	if err := p.CSV(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestSweepCSVByteIdenticalAcrossTopologies is the tentpole acceptance
// criterion: every DESIGN.md §5 experiment produces byte-identical CSVs
// whether cmd/sweep talks to a single-node server or to a 3-worker cluster
// coordinator — sharding is invisible to results.
func TestSweepCSVByteIdenticalAcrossTopologies(t *testing.T) {
	// Single-node reference stack.
	svc := service.New(service.Config{})
	t.Cleanup(svc.Close)
	st := store.New(store.Config{MaxGraphs: 1024})
	batches := service.NewBatches(svc, st, service.BatchConfig{})
	single := httptest.NewServer(httpapi.NewHandler(svc, st, batches))
	t.Cleanup(single.Close)
	singleClient := httpapi.NewClient(single.URL, nil)

	// 3-worker cluster behind the coordinator handler.
	coord, _ := newFleet(t, 3, func(cfg *Config) {
		cfg.Window = 4
		cfg.MaxGraphs = 1024
	})
	cl := httptest.NewServer(httpapi.NewClusterHandler(coord))
	t.Cleanup(cl.Close)
	clusterClient := httpapi.NewClient(cl.URL, nil)

	const trials = 1
	for _, exp := range sweep.Experiments() {
		want := runSweep(t, singleClient, exp, trials)
		got := runSweep(t, clusterClient, exp, trials)
		if !bytes.Equal(want, got) {
			t.Errorf("%s: cluster CSV differs from single-node\nsingle:\n%s\ncluster:\n%s", exp, want, got)
		}
	}
}
