// Package cluster is the multi-node coordinator that turns a fleet of
// single-node reprod workers into one scale-out batch engine. The
// coordinator keeps the authoritative copy of every named graph in a local
// internal/store, consistent-hashes graphs onto workers by their
// registry.Fingerprint (one owner per graph, uploaded once per worker per
// name, in the compact binary codec), expands BatchSpecs with the same code
// path as the single-node engine (service.BatchSpec.Expand), packs cells
// that differ only in seed into job groups of up to Config.GroupSize
// (amortizing graph lookup, submit, and poll round trips over the whole
// group — the cluster fast path), dispatches each group to the owning worker
// over internal/httpapi.Client with a bounded in-flight window per worker,
// retries groups on worker failure by re-placing onto the next healthy
// worker along the ring, optionally hedges straggling groups onto a second
// worker (first result wins, Config.Hedge), and merges per-cell results and
// per-group aggregates (service.GroupCells) into a single batch view that is
// indistinguishable from a single-node run.
//
// Layer (DESIGN.md §2, §6): cluster sits above internal/httpapi (it is a
// client of the worker wire format), internal/service (spec expansion, view
// types) and internal/store; it is served by httpapi.NewClusterHandler and
// mounted by cmd/reprod -workers.
//
// Concurrency and ownership: a Coordinator is safe for concurrent use. Each
// batch runs one goroutine per cell, gated by the owning worker's window
// semaphore; all cell state is guarded by the batch mutex and all worker
// state by the worker mutex (lock ordering: batch.mu and worker.mu are
// leaves — never held together, and never held across an HTTP round trip).
// Graphs handed out by the local store are shared and strictly read-only,
// exactly as in the single-node engine.
package cluster

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"hash/fnv"
	"log/slog"
	"net/http"
	"net/url"
	"slices"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/graph"
	"repro/internal/httpapi"
	"repro/internal/store"
)

// ErrNoWorkers is returned by New when the config names no workers.
var ErrNoWorkers = errors.New("cluster: no workers configured")

// Config sizes the coordinator. Zero values select defaults.
type Config struct {
	// Workers lists the base URLs of the reprod workers (required).
	Workers []string
	// Window bounds in-flight cells per worker (default 4).
	Window int
	// RequestTimeout bounds every worker HTTP round trip, long-polls
	// included; a hung worker surfaces as a transport error after this long
	// (default 15s).
	RequestTimeout time.Duration
	// PollInterval paces job polling against workers (default 20ms — cells
	// take tens to hundreds of ms, so tighter polling buys little latency
	// and costs the fleet an HTTP round trip per tick; in-process tests set
	// it lower).
	PollInterval time.Duration
	// ProbeInterval enables background /healthz probing that revives downed
	// workers (0 = probe only via explicit Probe calls).
	ProbeInterval time.Duration
	// MaxGraphs bounds the coordinator's local graph store (store default).
	MaxGraphs int
	// WALDir, when non-empty, makes the coordinator's graph store durable:
	// registrations are journaled and recovered on restart (batch state is
	// not — the coordinator holds no results of its own; clients resubmit
	// and the workers' caches and their own WALs make that cheap).
	WALDir string
	// SpillDir backs the durable store's graph bytes (defaults to
	// <WALDir>/spill).
	SpillDir string
	// SnapshotEvery compacts the store WAL after this many records.
	SnapshotEvery int
	// MaxCells bounds how many cells one batch may expand into (default 4096).
	MaxCells int
	// MaxBatches bounds retained finished batches (default 256).
	MaxBatches int
	// Replicas is the number of virtual ring points per worker (default 64).
	Replicas int
	// HTTPClient overrides the worker HTTP client (tests); nil selects a
	// client with RequestTimeout.
	HTTPClient *http.Client
	// WorkerAPIKey is sent with every worker request when the fleet runs
	// with API keys (-keys on the workers); empty sends none.
	WorkerAPIKey string
	// Logger receives the coordinator's structured span events (dispatch,
	// retry, re-placement, worker down/revived, straggler, hedge), each
	// tagged with the batch and cell trace IDs. Nil discards them.
	Logger *slog.Logger
	// StragglerAfter, when positive, marks a dispatched group a straggler
	// once its poll loop runs this long: a straggler span event is logged,
	// and with Hedge set it is also the hedge trigger. Zero falls back to an
	// adaptive threshold (3× the observed p99 group duration) once enough
	// groups have completed.
	StragglerAfter time.Duration
	// Hedge enables speculative re-dispatch: a group past the straggler
	// threshold is dispatched a second time to the next healthy worker,
	// first result wins, the loser is canceled and its result discarded
	// (DESIGN.md §6a).
	Hedge bool
	// GroupSize caps how many same-(graph, algo, params) cells ride in one
	// dispatched job group (default 16).
	GroupSize int
	// PerCell disables grouped dispatch and runs the PR 5 one-job-per-cell
	// path — the benchmark baseline and an escape hatch.
	PerCell bool
}

func (c Config) withDefaults() Config {
	if c.Window <= 0 {
		c.Window = 4
	}
	if c.RequestTimeout <= 0 {
		c.RequestTimeout = 15 * time.Second
	}
	if c.PollInterval <= 0 {
		c.PollInterval = 20 * time.Millisecond
	}
	if c.MaxCells <= 0 {
		c.MaxCells = 4096
	}
	if c.MaxBatches <= 0 {
		c.MaxBatches = 256
	}
	if c.Replicas <= 0 {
		c.Replicas = 64
	}
	if c.GroupSize <= 0 {
		c.GroupSize = 16
	}
	return c
}

// worker is the coordinator's view of one reprod instance.
type worker struct {
	id     int
	url    string
	client *httpapi.Client
	// slots is the in-flight window: a cell holds one slot for the whole of
	// its dispatch to this worker.
	slots chan struct{}

	mu      sync.Mutex
	healthy bool
	// uploaded maps graph name → fingerprint this coordinator has PUT on the
	// worker, so each graph uploads once per worker; cleared when the worker
	// revives (a restarted worker has an empty store).
	uploaded map[string]string
	// uploading singleflights in-progress uploads per name: concurrent
	// cells sharing a graph wait on the channel instead of re-shipping the
	// same bytes.
	uploading map[string]chan struct{}
	inFlight  int
	// queueDepth counts dispatch attempts waiting for a window slot on this
	// worker — the backlog behind the in-flight window, exposed as a
	// Prometheus gauge so hedging behavior is observable.
	queueDepth int
	dispatched uint64
	failures   uint64
	// lastErr is the most recent failure observed against this worker,
	// surfaced in the /v1/cluster view.
	lastErr string
}

func (w *worker) isHealthy() bool {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.healthy
}

// ringPoint is one virtual node on the consistent-hash circle.
type ringPoint struct {
	hash uint64
	w    *worker
}

// Coordinator fronts the worker fleet. Create with New, release with Close.
type Coordinator struct {
	cfg     Config
	log     *slog.Logger
	st      *store.Store
	workers []*worker
	ring    []ringPoint // sorted by hash

	mu       sync.Mutex
	batches  map[string]*cbatch
	terminal []string // finished batch IDs, oldest first, for eviction
	nextID   uint64
	draining bool // set by Drain: SubmitBatch refuses with ErrDraining

	runWG     sync.WaitGroup // live batch runners, drained by Close
	probeStop chan struct{}
	probeDone chan struct{}

	batchesSubmitted atomic.Uint64
	batchesDone      atomic.Uint64
	batchesCanceled  atomic.Uint64
	batchCells       atomic.Uint64
	cellsDispatched  atomic.Uint64
	cellRetries      atomic.Uint64
	workerFailures   atomic.Uint64
	groupsDispatched atomic.Uint64
	hedgesFired      atomic.Uint64
	hedgesWon        atomic.Uint64
	hedgesWasted     atomic.Uint64
	wireBytes        atomic.Uint64

	// durMu guards the ring of recent group-attempt durations backing the
	// adaptive straggler threshold.
	durMu   sync.Mutex
	durs    [64]time.Duration
	durN    int
	durNext int
}

// recordGroupDur folds one successful group-attempt duration into the
// adaptive-threshold ring.
func (c *Coordinator) recordGroupDur(d time.Duration) {
	c.durMu.Lock()
	c.durs[c.durNext] = d
	c.durNext = (c.durNext + 1) % len(c.durs)
	if c.durN < len(c.durs) {
		c.durN++
	}
	c.durMu.Unlock()
}

// minHedgeSamples gates the adaptive threshold: below it there is no
// credible p99 and hedging stays off (unless StragglerAfter pins the
// threshold explicitly).
const minHedgeSamples = 20

// stragglerThreshold returns how long a dispatched group may run before it
// counts as a straggler (and, with Hedge on, gets hedged). Zero disables:
// StragglerAfter is authoritative when set, otherwise 3× the observed p99
// once minHedgeSamples group attempts have completed.
func (c *Coordinator) stragglerThreshold() time.Duration {
	if c.cfg.StragglerAfter > 0 {
		return c.cfg.StragglerAfter
	}
	c.durMu.Lock()
	defer c.durMu.Unlock()
	if c.durN < minHedgeSamples {
		return 0
	}
	snap := make([]time.Duration, c.durN)
	copy(snap, c.durs[:c.durN])
	slices.Sort(snap)
	// Nearest-rank p99, same convention as the service latency percentiles.
	idx := (99*len(snap) + 99) / 100
	if idx > len(snap) {
		idx = len(snap)
	}
	return 3 * snap[idx-1]
}

// New builds a coordinator over the configured workers. Workers start out
// healthy; failures observed during dispatch (or probing) mark them down.
func New(cfg Config) (*Coordinator, error) {
	cfg = cfg.withDefaults()
	if len(cfg.Workers) == 0 {
		return nil, ErrNoWorkers
	}
	hc := cfg.HTTPClient
	if hc == nil {
		hc = &http.Client{Timeout: cfg.RequestTimeout}
	}
	logger := cfg.Logger
	if logger == nil {
		logger = slog.New(slog.DiscardHandler)
	}
	st, err := store.Open(store.Config{
		MaxGraphs:     cfg.MaxGraphs,
		WALDir:        cfg.WALDir,
		SpillDir:      cfg.SpillDir,
		SnapshotEvery: cfg.SnapshotEvery,
		Logger:        logger,
	})
	if err != nil {
		return nil, fmt.Errorf("cluster: graph store: %w", err)
	}
	c := &Coordinator{
		cfg:     cfg,
		log:     logger,
		st:      st,
		batches: make(map[string]*cbatch),
	}
	seen := make(map[string]bool)
	for i, raw := range cfg.Workers {
		u := strings.TrimRight(strings.TrimSpace(raw), "/")
		// Fail fast on anything that is not an absolute http(s) base URL —
		// notably bare host:port, and leftovers of the pre-cluster -workers
		// flag (which used to be the executor-goroutine count).
		parsed, err := url.Parse(u)
		if err != nil || (parsed.Scheme != "http" && parsed.Scheme != "https") || parsed.Host == "" {
			return nil, fmt.Errorf("cluster: worker %q is not an absolute http(s) base URL", raw)
		}
		if seen[u] {
			return nil, fmt.Errorf("cluster: duplicate worker URL %q", u)
		}
		seen[u] = true
		w := &worker{
			id:        i,
			url:       u,
			client:    httpapi.NewClient(u, hc).WithAPIKey(cfg.WorkerAPIKey),
			slots:     make(chan struct{}, cfg.Window),
			healthy:   true,
			uploaded:  make(map[string]string),
			uploading: make(map[string]chan struct{}),
		}
		c.workers = append(c.workers, w)
		for r := 0; r < cfg.Replicas; r++ {
			c.ring = append(c.ring, ringPoint{hash: hash64(fmt.Sprintf("%s#%d", u, r)), w: w})
		}
	}
	sort.Slice(c.ring, func(i, j int) bool { return c.ring[i].hash < c.ring[j].hash })
	if cfg.ProbeInterval > 0 {
		c.probeStop = make(chan struct{})
		c.probeDone = make(chan struct{})
		go c.probeLoop()
	}
	return c, nil
}

func hash64(s string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(s))
	return h.Sum64()
}

// owner returns the healthy worker owning fp on the ring: the first healthy
// worker clockwise from the fingerprint's hash, nil when every worker is
// down. Distinct virtual points of one worker are skipped so a downed owner
// re-places onto the next distinct worker.
func (c *Coordinator) owner(fp string) *worker {
	h := hash64(fp)
	start := sort.Search(len(c.ring), func(i int) bool { return c.ring[i].hash >= h })
	tried := make(map[int]bool, len(c.workers))
	for i := 0; i < len(c.ring); i++ {
		pt := c.ring[(start+i)%len(c.ring)]
		if tried[pt.w.id] {
			continue
		}
		tried[pt.w.id] = true
		if pt.w.isHealthy() {
			return pt.w
		}
		if len(tried) == len(c.workers) {
			break
		}
	}
	return nil
}

// hedgeTarget returns the first healthy worker clockwise from fp's ring
// position that is not avoid — where a hedged group re-dispatch goes. Nil
// when no distinct healthy worker exists (hedging then stays a no-op).
func (c *Coordinator) hedgeTarget(fp string, avoid *worker) *worker {
	h := hash64(fp)
	start := sort.Search(len(c.ring), func(i int) bool { return c.ring[i].hash >= h })
	tried := make(map[int]bool, len(c.workers))
	for i := 0; i < len(c.ring) && len(tried) < len(c.workers); i++ {
		pt := c.ring[(start+i)%len(c.ring)]
		if tried[pt.w.id] {
			continue
		}
		tried[pt.w.id] = true
		if pt.w != avoid && pt.w.isHealthy() {
			return pt.w
		}
	}
	return nil
}

// markDown records an observed worker failure — keeping the error for the
// /v1/cluster view — and takes the worker off the ring until a probe
// revives it.
func (c *Coordinator) markDown(w *worker, err error) {
	c.workerFailures.Add(1)
	w.mu.Lock()
	w.failures++
	w.healthy = false
	w.lastErr = err.Error()
	w.mu.Unlock()
	c.log.Warn("worker down", "event", "worker_down", "worker", w.url, "error", err.Error())
}

// Probe checks /healthz on every worker concurrently (one hung worker must
// not stall the sweep for its whole request timeout), reviving reachable
// downed workers (their upload bookkeeping resets: a restarted worker has an
// empty store) and downing unreachable ones. It returns the number of
// healthy workers.
func (c *Coordinator) Probe() int {
	errs := make([]error, len(c.workers))
	var wg sync.WaitGroup
	wg.Add(len(c.workers))
	for i, w := range c.workers {
		go func(i int, w *worker) {
			defer wg.Done()
			errs[i] = w.client.Health(context.Background())
		}(i, w)
	}
	wg.Wait()
	healthy := 0
	for i, w := range c.workers {
		w.mu.Lock()
		revived, downed := false, false
		switch {
		case errs[i] == nil && !w.healthy:
			w.healthy = true
			w.uploaded = make(map[string]string)
			revived = true
		case errs[i] != nil && w.healthy:
			w.healthy = false
			w.failures++
			w.lastErr = errs[i].Error()
			downed = true
		}
		if w.healthy {
			healthy++
		}
		w.mu.Unlock()
		if revived {
			c.log.Info("worker revived", "event", "worker_revived", "worker", w.url)
		}
		if downed {
			c.log.Warn("worker down", "event", "worker_down", "worker", w.url, "error", errs[i].Error())
		}
	}
	return healthy
}

func (c *Coordinator) probeLoop() {
	defer close(c.probeDone)
	t := time.NewTicker(c.cfg.ProbeInterval)
	defer t.Stop()
	for {
		select {
		case <-c.probeStop:
			return
		case <-t.C:
			c.Probe()
		}
	}
}

// Drain stops admission (SubmitBatch returns service.ErrDraining) and waits
// up to timeout for in-flight batches to finish on their workers. It returns
// true when every batch reached a terminal state in time; on false the
// caller should fall through to Close, which cancels the stragglers. Unlike
// Close it never cancels work: cells already dispatched keep running, so a
// SIGTERM during a sweep loses no finished results.
func (c *Coordinator) Drain(timeout time.Duration) bool {
	c.mu.Lock()
	c.draining = true
	c.mu.Unlock()
	done := make(chan struct{})
	go func() {
		c.runWG.Wait()
		close(done)
	}()
	select {
	case <-done:
		return true
	case <-time.After(timeout):
		return false
	}
}

// Close cancels every running batch, waits for their dispatch goroutines to
// drain, and stops the prober. The coordinator must not be used afterwards.
func (c *Coordinator) Close() {
	c.mu.Lock()
	ids := make([]string, 0, len(c.batches))
	for id := range c.batches {
		ids = append(ids, id)
	}
	c.mu.Unlock()
	for _, id := range ids {
		_, _ = c.CancelBatch(id)
	}
	c.runWG.Wait()
	if c.probeStop != nil {
		close(c.probeStop)
		<-c.probeDone
	}
	if err := c.st.Close(); err != nil {
		c.log.Warn("store_close_failed", "err", err)
	}
}

// PutGraph registers a graph in the coordinator's local store; placement is
// by fingerprint on the ring and the upload to the owner happens lazily on
// first dispatch, so a PUT never blocks on a worker round trip.
func (c *Coordinator) PutGraph(name string, src store.Source) (store.Info, bool, error) {
	return c.st.Put(name, src)
}

// GetGraph returns the local metadata of a stored graph.
func (c *Coordinator) GetGraph(name string) (store.Info, bool) {
	return c.st.Get(name)
}

// ListGraphs lists the coordinator's stored graphs.
func (c *Coordinator) ListGraphs() []store.Info {
	return c.st.List()
}

// DeleteGraph removes a graph locally (refusing while a batch pins it) and
// best-effort deletes the name from every worker it was uploaded to, so
// worker stores do not accumulate dead names.
func (c *Coordinator) DeleteGraph(name string) error {
	if err := c.st.Delete(name); err != nil {
		return err
	}
	for _, w := range c.workers {
		w.mu.Lock()
		_, had := w.uploaded[name]
		delete(w.uploaded, name)
		healthy := w.healthy
		w.mu.Unlock()
		if had && healthy {
			_ = w.client.DeleteGraph(context.Background(), name)
		}
	}
	return nil
}

// View reports worker health and the current ring placement of every stored
// graph — the GET /v1/cluster document.
func (c *Coordinator) View() httpapi.ClusterView {
	var v httpapi.ClusterView
	for _, w := range c.workers {
		w.mu.Lock()
		v.Workers = append(v.Workers, httpapi.ClusterWorker{
			URL:        w.url,
			Healthy:    w.healthy,
			Graphs:     len(w.uploaded),
			InFlight:   w.inFlight,
			QueueDepth: w.queueDepth,
			Dispatched: w.dispatched,
			Failures:   w.failures,
			LastError:  w.lastErr,
		})
		w.mu.Unlock()
	}
	for _, info := range c.st.List() {
		p := httpapi.ClusterPlacement{Graph: info.Name, Fingerprint: info.Fingerprint}
		if w := c.owner(info.Fingerprint); w != nil {
			p.Worker = w.url
		}
		v.Placements = append(v.Placements, p)
	}
	return v
}

// Metrics merges the coordinator's counters with the summed counters of
// every worker that answers /metrics. Fleet cache-hit rates are recomputed
// from the sums; fleet latency percentiles are per-worker maxima.
func (c *Coordinator) Metrics() httpapi.ClusterMetrics {
	m := httpapi.ClusterMetrics{
		WorkersTotal:     len(c.workers),
		BatchesSubmitted: c.batchesSubmitted.Load(),
		BatchesDone:      c.batchesDone.Load(),
		BatchesCanceled:  c.batchesCanceled.Load(),
		BatchCells:       c.batchCells.Load(),
		CellsDispatched:  c.cellsDispatched.Load(),
		CellRetries:      c.cellRetries.Load(),
		WorkerFailures:   c.workerFailures.Load(),
		GroupsDispatched: c.groupsDispatched.Load(),
		HedgesFired:      c.hedgesFired.Load(),
		HedgesWon:        c.hedgesWon.Load(),
		HedgesWasted:     c.hedgesWasted.Load(),
		WireBytesTotal:   c.wireBytes.Load(),
	}
	// Fan the worker round trips out: one hung worker must cost one request
	// timeout for the whole scrape, not one per worker. WorkersHealthy
	// counts the workers that actually answered this scrape, so it can
	// never disagree with the Fleet sums beside it.
	fetched := make([]*httpapi.MetricsResponse, len(c.workers))
	var wg sync.WaitGroup
	for i, w := range c.workers {
		if !w.isHealthy() {
			continue
		}
		wg.Add(1)
		go func(i int, w *worker) {
			defer wg.Done()
			if wm, err := w.client.Metrics(context.Background()); err == nil {
				fetched[i] = &wm
			}
		}(i, w)
	}
	wg.Wait()
	for _, wm := range fetched {
		if wm == nil {
			continue
		}
		m.WorkersHealthy++
		f := &m.Fleet
		f.Submitted += wm.Submitted
		f.Completed += wm.Completed
		f.Failed += wm.Failed
		f.Canceled += wm.Canceled
		f.CacheHits += wm.CacheHits
		f.CacheMisses += wm.CacheMisses
		f.BatchMembers += wm.BatchMembers
		f.BatchCacheHits += wm.BatchCacheHits
		f.BatchCacheMisses += wm.BatchCacheMisses
		f.CacheSize += wm.CacheSize
		f.Queued += wm.Queued
		f.Running += wm.Running
		f.Workers += wm.Workers
		f.LatencyP50Ms = max(f.LatencyP50Ms, wm.LatencyP50Ms)
		f.LatencyP90Ms = max(f.LatencyP90Ms, wm.LatencyP90Ms)
		f.LatencyP99Ms = max(f.LatencyP99Ms, wm.LatencyP99Ms)
		f.BatchesSubmitted += wm.BatchesSubmitted
		f.BatchesDone += wm.BatchesDone
		f.BatchesCanceled += wm.BatchesCanceled
		f.BatchCells += wm.BatchCells
	}
	if lookups := m.Fleet.CacheHits + m.Fleet.CacheMisses; lookups > 0 {
		m.Fleet.CacheHitRate = float64(m.Fleet.CacheHits) / float64(lookups)
	}
	if lookups := m.Fleet.BatchCacheHits + m.Fleet.BatchCacheMisses; lookups > 0 {
		m.Fleet.BatchCacheHitRate = float64(m.Fleet.BatchCacheHits) / float64(lookups)
	}
	return m
}

// pinnedGraph is one distinct graph pinned for a batch's lifetime, with its
// compact binary encoding (graph.EncodeBinary) rendered at most once across
// all uploads.
type pinnedGraph struct {
	g    *graph.Graph
	fp   string
	once sync.Once
	bin  []byte
	err  error
}

func (p *pinnedGraph) encoded() ([]byte, error) {
	p.once.Do(func() {
		var buf bytes.Buffer
		p.err = graph.EncodeBinary(&buf, p.g)
		p.bin = buf.Bytes()
	})
	return p.bin, p.err
}

// ensureGraph uploads the pinned graph to w under name unless this
// coordinator already did. Concurrent dispatches sharing the graph
// singleflight: one uploads, the rest wait and re-check — the graph crosses
// the network once per worker. A stale name binding on the worker (left by a
// deleted-and-rebound coordinator name) is deleted and re-put once.
func (c *Coordinator) ensureGraph(ctx context.Context, w *worker, name string, pg *pinnedGraph) error {
	for {
		w.mu.Lock()
		if fp, ok := w.uploaded[name]; ok && fp == pg.fp {
			w.mu.Unlock()
			return nil
		}
		if ch, busy := w.uploading[name]; busy {
			w.mu.Unlock()
			select {
			case <-ch: // the uploader finished (either way); re-check
				continue
			case <-ctx.Done():
				return ctx.Err()
			}
		}
		ch := make(chan struct{})
		w.uploading[name] = ch
		w.mu.Unlock()

		err := c.uploadGraph(ctx, w, name, pg)
		w.mu.Lock()
		delete(w.uploading, name)
		if err == nil {
			w.uploaded[name] = pg.fp
		}
		w.mu.Unlock()
		close(ch)
		return err
	}
}

// uploadGraph ships the binary graph encoding to w, repairing a stale 409
// binding once. Uploaded body bytes land in the wire-bytes counter.
func (c *Coordinator) uploadGraph(ctx context.Context, w *worker, name string, pg *pinnedGraph) error {
	bin, err := pg.encoded()
	if err != nil {
		return err
	}
	_, n, err := w.client.PutGraphBinary(ctx, name, bin)
	c.wireBytes.Add(uint64(n))
	if err != nil {
		var apiErr *httpapi.APIError
		if errors.As(err, &apiErr) && apiErr.Status == http.StatusConflict {
			_ = w.client.DeleteGraph(ctx, name)
			_, n, err = w.client.PutGraphBinary(ctx, name, bin)
			c.wireBytes.Add(uint64(n))
		}
	}
	return err
}
