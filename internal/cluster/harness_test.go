package cluster

// This file is the in-process multi-node test harness: a fleet of real
// single-node reprod stacks (service + store + batches behind the real
// httpapi handler), each served by its own httptest.Server and wrapped in a
// fault injector that can kill, hang or slow the worker mid-batch. The
// coordinator under test dials the workers over real HTTP, so every failure
// mode it must survive in production — connection errors, timeouts, 5xx —
// is reproduced faithfully.

import (
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/httpapi"
	"repro/internal/service"
	"repro/internal/store"
)

// Fault modes of the injector in front of each test worker.
const (
	faultOff int32 = iota
	// faultKill rejects every request with 502, as a crashed worker behind
	// a load balancer would.
	faultKill
	// faultHang never answers: the request parks until the client times out
	// (the handler returns when the client abandons the connection).
	faultHang
	// faultSlow delays every request by the proxy's delay, then serves it.
	faultSlow
)

// faultProxy wraps a worker handler with a switchable fault mode.
type faultProxy struct {
	innerMu sync.RWMutex
	inner   http.Handler
	mode    atomic.Int32
	delay   time.Duration
	// unblock is closed at test cleanup to free parked hang handlers: the
	// server cannot detect a client disconnect on requests whose body was
	// never read, so hung handlers would otherwise block httptest's Close.
	unblock chan struct{}
}

func (p *faultProxy) set(mode int32) { p.mode.Store(mode) }

// swap replaces the proxied worker stack, keeping the listener (and thus
// the worker's URL) alive across a simulated process restart.
func (p *faultProxy) swap(h http.Handler) {
	p.innerMu.Lock()
	p.inner = h
	p.innerMu.Unlock()
}

func (p *faultProxy) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	switch p.mode.Load() {
	case faultKill:
		http.Error(w, "fault injector: worker killed", http.StatusBadGateway)
		return
	case faultHang:
		select {
		case <-r.Context().Done():
		case <-p.unblock:
		}
		http.Error(w, "fault injector: worker hung", http.StatusBadGateway)
		return
	case faultSlow:
		select {
		case <-r.Context().Done():
			return
		case <-p.unblock:
			return
		case <-time.After(p.delay):
		}
	}
	p.innerMu.RLock()
	inner := p.inner
	p.innerMu.RUnlock()
	inner.ServeHTTP(w, r)
}

// testWorker is one fleet member: the full single-node stack plus its fault
// injector.
type testWorker struct {
	ts    *httptest.Server
	svc   *service.Service
	st    *store.Store
	proxy *faultProxy
}

// newFleet spins up n in-process workers and a coordinator over them. mut,
// when non-nil, adjusts the coordinator config before construction;
// workerOpts are applied to every worker's HTTP handler (e.g. a body cap).
func newFleet(t *testing.T, n int, mut func(*Config), workerOpts ...httpapi.HandlerOption) (*Coordinator, []*testWorker) {
	t.Helper()
	workers := make([]*testWorker, n)
	urls := make([]string, n)
	for i := range workers {
		svc := service.New(service.Config{Workers: 2, QueueSize: 64})
		st := store.New(store.Config{})
		batches := service.NewBatches(svc, st, service.BatchConfig{})
		proxy := &faultProxy{inner: httpapi.NewHandler(svc, st, batches, workerOpts...), unblock: make(chan struct{})}
		ts := httptest.NewServer(proxy)
		workers[i] = &testWorker{ts: ts, svc: svc, st: st, proxy: proxy}
		urls[i] = ts.URL
		t.Cleanup(func() {
			close(proxy.unblock)
			ts.Close()
			svc.Close()
		})
	}
	cfg := Config{
		Workers:        urls,
		Window:         2,
		RequestTimeout: 2 * time.Second,
		PollInterval:   time.Millisecond,
	}
	if mut != nil {
		mut(&cfg)
	}
	coord, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(coord.Close)
	return coord, workers
}

// putGen registers a generated graph on the coordinator, failing the test on
// error.
func putGen(t *testing.T, c *Coordinator, name string, src store.Source) store.Info {
	t.Helper()
	info, _, err := c.PutGraph(name, src)
	if err != nil {
		t.Fatalf("put %s: %v", name, err)
	}
	return info
}

// waitBatch polls the coordinator until the batch is terminal, failing the
// test after deadline.
func waitBatch(t *testing.T, c *Coordinator, id string) service.BatchView {
	t.Helper()
	deadline := time.Now().Add(120 * time.Second)
	for time.Now().Before(deadline) {
		v, ok := c.WaitBatch(id, time.Second)
		if !ok {
			t.Fatalf("batch %s disappeared", id)
		}
		if v.State.Terminal() {
			return v
		}
	}
	t.Fatalf("batch %s never finished", id)
	return service.BatchView{}
}

// findWorker maps a coordinator worker (by URL) back to its test harness
// entry.
func findWorker(t *testing.T, workers []*testWorker, url string) *testWorker {
	t.Helper()
	for _, w := range workers {
		if w.ts.URL == url {
			return w
		}
	}
	t.Fatalf("no test worker at %s", url)
	return nil
}
