package cluster

// Fleet restart harness: one worker of three dies mid-batch and comes back
// as a fresh process on the same listener address, its graph store reopened
// from the same WAL + spill directories. The coordinator must re-place the
// dead worker's cells while it is down, re-admit it via health probing, and
// finish the batch with aggregates identical to a single-node run — and the
// revived worker must recover its uploaded graphs from its own WAL, so the
// coordinator's post-revival re-uploads hit the idempotent re-put path
// instead of shipping bytes to an amnesiac.

import (
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/httpapi"
	"repro/internal/service"
	"repro/internal/store"
)

// durableWorkerStack builds one worker stack whose graph store journals to
// root, reusable across simulated restarts of the same worker.
func durableWorkerStack(t *testing.T, root string) (*service.Service, *store.Store, http.Handler) {
	t.Helper()
	st, err := store.Open(store.Config{
		WALDir:   filepath.Join(root, "wal"),
		SpillDir: filepath.Join(root, "spill"),
	})
	if err != nil {
		t.Fatal(err)
	}
	svc := service.New(service.Config{Workers: 2, QueueSize: 64})
	return svc, st, httpapi.NewHandler(svc, st, service.NewBatches(svc, st, service.BatchConfig{}))
}

// TestWorkerRestartsMidBatch extends TestWorkerKilledMidBatch: instead of
// staying dead, the killed worker restarts on the same address and WAL
// directories and rejoins the fleet mid-batch.
func TestWorkerRestartsMidBatch(t *testing.T) {
	graphs := []namedSource{
		{"rst-a", gnpSource(500, 0.015, 41, 64)},
		{"rst-b", gnpSource(520, 0.014, 42, 64)},
		{"rst-c", gnpSource(540, 0.013, 43, 64)},
	}
	spec := service.BatchSpec{
		Graphs: []string{"rst-a", "rst-b", "rst-c"},
		Algos:  []string{"maxis"},
		Seeds:  []uint64{1, 2, 3, 4, 5, 6, 7, 8},
	}

	// Fleet of three durable workers (any of them may own rst-a) behind
	// fault proxies, with fast health probing so the revived worker is
	// re-admitted while the batch is still running.
	const n = 3
	workers := make([]*testWorker, n)
	roots := make([]string, n)
	urls := make([]string, n)
	for i := range workers {
		roots[i] = t.TempDir()
		svc, st, h := durableWorkerStack(t, roots[i])
		proxy := &faultProxy{inner: h, unblock: make(chan struct{})}
		ts := httptest.NewServer(proxy)
		workers[i] = &testWorker{ts: ts, svc: svc, st: st, proxy: proxy}
		urls[i] = ts.URL
		t.Cleanup(func() {
			close(proxy.unblock)
			ts.Close()
			workers[i].svc.Close()
			workers[i].st.Close()
		})
	}
	coord, err := New(Config{
		Workers:        urls,
		Window:         2,
		RequestTimeout: 2 * time.Second,
		PollInterval:   time.Millisecond,
		ProbeInterval:  5 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(coord.Close)

	for _, g := range graphs {
		putGen(t, coord, g.name, g.src)
	}
	v, err := coord.SubmitBatch(spec)
	if err != nil {
		t.Fatal(err)
	}

	// Let the batch make progress, then kill the owner of the first graph.
	deadline := time.Now().Add(60 * time.Second)
	for {
		cur, _ := coord.GetBatch(v.ID)
		if cur.Done >= 1 {
			break
		}
		if cur.State.Terminal() || time.Now().After(deadline) {
			t.Fatalf("batch reached %+v before any cell completed", cur)
		}
		time.Sleep(time.Millisecond)
	}
	info, _ := coord.GetGraph("rst-a")
	victim := coord.owner(info.Fingerprint)
	if victim == nil {
		t.Fatal("no owner for rst-a")
	}
	idx := -1
	for i, w := range workers {
		if w.ts.URL == victim.url {
			idx = i
		}
	}
	if idx < 0 {
		t.Fatalf("no test worker at %s", victim.url)
	}
	tw := workers[idx]
	uploadedBefore := len(tw.st.List())
	tw.proxy.set(faultKill)
	// The old process image drains and dies; its WAL keeps every binding it
	// acknowledged.
	tw.svc.Close()
	if err := tw.st.Close(); err != nil {
		t.Fatal(err)
	}

	// Restart: a fresh stack on the same directories, served through the
	// same listener, visible to the coordinator at the same URL.
	svc2, st2, h2 := durableWorkerStack(t, roots[idx])
	t.Cleanup(func() {
		svc2.Close()
		st2.Close()
	})
	if got := len(st2.List()); got != uploadedBefore {
		t.Fatalf("restarted worker recovered %d graphs, had %d before the kill", got, uploadedBefore)
	}
	tw.proxy.swap(h2)
	tw.proxy.set(faultOff)
	// Keep the harness pointing at the live incarnation (the t.Cleanup
	// registered at fleet construction closes the old one, already closed —
	// Close is idempotent on both).
	tw.svc, tw.st = svc2, st2

	fin := waitBatch(t, coord, v.ID)
	if fin.State != service.BatchDone || fin.Done != fin.Total || fin.Failed != 0 {
		for _, cell := range fin.Cells {
			if cell.State != service.Done {
				t.Logf("cell %d (%s on %s): %s: %s", cell.Index, cell.Algo, cell.Graph, cell.State, cell.Error)
			}
		}
		t.Fatalf("batch after restart: %+v", fin.Groups)
	}
	if fin.Submitted > fin.Total {
		t.Fatalf("submitted %d > total %d after retries", fin.Submitted, fin.Total)
	}

	// Results must match a single-node run bit for bit, restart or not.
	want := singleNodeRun(t, graphs, spec)
	assertSameOutcomes(t, want, fin)

	// The revived worker is back on the ring: probes re-admit it.
	probeDeadline := time.Now().Add(30 * time.Second)
	for {
		if coord.Probe() == len(workers) {
			break
		}
		if time.Now().After(probeDeadline) {
			t.Fatalf("restarted worker never re-admitted: %+v", coord.View().Workers)
		}
		time.Sleep(5 * time.Millisecond)
	}

	// And it still answers for its recovered graphs: deleting every name on
	// the coordinator fans out to the fleet without pin leaks.
	for _, g := range graphs {
		if err := coord.DeleteGraph(g.name); err != nil {
			t.Fatalf("delete %s after restarted batch: %v", g.name, err)
		}
	}
}
