package cluster

import (
	"bytes"
	"log/slog"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/obs"
	"repro/internal/service"
)

// syncBuffer makes a bytes.Buffer safe as an slog sink: the coordinator logs
// from many goroutines concurrently.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

// TestTraceSurvivesRetry is the trace-propagation acceptance scenario: one
// caller-chosen trace ID must be visible at every hop — the batch view, each
// cell's derived child ID, the worker-side job group that actually ran the
// cell, and the coordinator's span-event log — even when a worker dies
// mid-batch and groups are retried onto new hosts.
func TestTraceSurvivesRetry(t *testing.T) {
	const trace = "feedface00c0ffee"
	graphs := []namedSource{
		{"tr-a", gnpSource(500, 0.015, 41, 64)},
		{"tr-b", gnpSource(520, 0.014, 42, 64)},
	}
	spec := service.BatchSpec{
		Graphs:  []string{"tr-a", "tr-b"},
		Algos:   []string{"maxis"},
		Seeds:   []uint64{1, 2, 3, 4, 5, 6},
		TraceID: trace,
	}

	logs := &syncBuffer{}
	coord, workers := newFleet(t, 3, func(cfg *Config) {
		cfg.Logger = slog.New(slog.NewTextHandler(logs, nil))
		// Small groups so the batch finishes cell-by-cell: the kill must land
		// while the victim still has undispatched groups to retry.
		cfg.GroupSize = 2
	})
	for _, g := range graphs {
		putGen(t, coord, g.name, g.src)
	}
	v, err := coord.SubmitBatch(spec)
	if err != nil {
		t.Fatal(err)
	}
	if v.TraceID != trace {
		t.Fatalf("submit view trace %q, want %q", v.TraceID, trace)
	}

	// Let the batch make progress, then kill the worker owning the first
	// graph so its remaining cells retry onto the survivors.
	deadline := time.Now().Add(60 * time.Second)
	for {
		cur, _ := coord.GetBatch(v.ID)
		if cur.Done >= 1 {
			break
		}
		if cur.State.Terminal() || time.Now().After(deadline) {
			t.Fatalf("batch reached %+v before any cell completed", cur)
		}
		time.Sleep(time.Millisecond)
	}
	info, _ := coord.GetGraph("tr-a")
	victim := coord.owner(info.Fingerprint)
	if victim == nil {
		t.Fatal("no owner for tr-a")
	}
	findWorker(t, workers, victim.url).proxy.set(faultKill)

	fin := waitBatch(t, coord, v.ID)
	if fin.State != service.BatchDone || fin.Done != fin.Total {
		t.Fatalf("batch after kill: state %s done %d/%d failed %d",
			fin.State, fin.Done, fin.Total, fin.Failed)
	}
	if coord.cellRetries.Load() == 0 {
		t.Fatal("kill produced no retries; the retry hop was not exercised")
	}
	if fin.TraceID != trace {
		t.Fatalf("final view trace %q, want %q", fin.TraceID, trace)
	}

	// Every cell carries the derived child ID, and the worker-side job group
	// that finally ran it stamped that exact ID on the cell's seed entry.
	for _, cell := range fin.Cells {
		want := obs.ChildTraceID(trace, cell.Index)
		if cell.TraceID != want {
			t.Fatalf("cell %d trace %q, want %q", cell.Index, cell.TraceID, want)
		}
		wid, groupID, ok := strings.Cut(cell.JobID, ":")
		if !ok || !strings.HasPrefix(wid, "w") {
			t.Fatalf("cell %d job ref %q is not w<id>:<groupID>", cell.Index, cell.JobID)
		}
		idx, err := strconv.Atoi(wid[1:])
		if err != nil || idx < 0 || idx >= len(workers) {
			t.Fatalf("cell %d job ref %q names unknown worker", cell.Index, cell.JobID)
		}
		gv, ok := workers[idx].svc.GetGroup(groupID)
		if !ok {
			t.Fatalf("cell %d: group %s not found on worker %d", cell.Index, groupID, idx)
		}
		found := false
		for _, gc := range gv.Cells {
			if gc.TraceID == want {
				found = true
				break
			}
		}
		if !found {
			t.Fatalf("cell %d: no cell of worker-side group %s carries trace %q", cell.Index, groupID, want)
		}
	}

	// The span-event log tells the same story under the same IDs: the batch
	// was submitted under the caller's trace, and at least one retry event
	// carries a derived cell trace.
	got := logs.String()
	if !strings.Contains(got, "event=batch_submit") || !strings.Contains(got, "trace="+trace) {
		t.Fatalf("log missing batch_submit under trace %s:\n%s", trace, got)
	}
	retried := false
	for line := range strings.Lines(got) {
		if strings.Contains(line, "event=group_retry") && strings.Contains(line, "trace="+trace+".") {
			retried = true
			break
		}
	}
	if !retried {
		t.Fatalf("log has no group_retry event tagged with a child of %s:\n%s", trace, got)
	}
}
