package cluster

import (
	"context"
	"errors"
	"net/http/httptest"
	"reflect"
	"testing"
	"time"

	"repro/internal/httpapi"
	"repro/internal/registry"
	"repro/internal/service"
	"repro/internal/store"
)

// gnpSource is a generator-spec graph source shorthand.
func gnpSource(n int, p float64, seed uint64, maxw int64) store.Source {
	return store.Source{Gen: "gnp", GenParams: registry.GenParams{N: n, P: p, Seed: seed, MaxW: maxw}}
}

// namedSource pairs a graph name with its source so reference runs register
// the exact same graphs in the same order.
type namedSource struct {
	name string
	src  store.Source
}

// singleNodeRun executes spec directly on a single-node service.Batches —
// the ground truth every cluster result must match.
func singleNodeRun(t *testing.T, graphs []namedSource, spec service.BatchSpec) service.BatchView {
	t.Helper()
	svc := service.New(service.Config{Workers: 2, QueueSize: 64})
	t.Cleanup(svc.Close)
	st := store.New(store.Config{})
	batches := service.NewBatches(svc, st, service.BatchConfig{})
	for _, g := range graphs {
		if _, _, err := st.Put(g.name, g.src); err != nil {
			t.Fatal(err)
		}
	}
	v, err := batches.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(120 * time.Second)
	for time.Now().Before(deadline) {
		v, _ = batches.Wait(v.ID, time.Second)
		if v.State.Terminal() {
			return v
		}
	}
	t.Fatal("single-node reference batch never finished")
	return service.BatchView{}
}

// clusterRun registers graphs on the coordinator, submits spec, and waits.
func clusterRun(t *testing.T, c *Coordinator, graphs []namedSource, spec service.BatchSpec) service.BatchView {
	t.Helper()
	for _, g := range graphs {
		putGen(t, c, g.name, g.src)
	}
	v, err := c.SubmitBatch(spec)
	if err != nil {
		t.Fatal(err)
	}
	return waitBatch(t, c, v.ID)
}

// assertSameOutcomes compares the result-bearing parts of two batch views:
// per-cell states and results in index order, and the aggregated groups.
// Job IDs, cache hits and timestamps legitimately differ across topologies.
func assertSameOutcomes(t *testing.T, want, got service.BatchView) {
	t.Helper()
	if got.Total != want.Total || len(got.Cells) != len(want.Cells) {
		t.Fatalf("cell counts: got %d/%d, want %d/%d", got.Total, len(got.Cells), want.Total, len(want.Cells))
	}
	for i := range want.Cells {
		w, g := want.Cells[i], got.Cells[i]
		if g.Graph != w.Graph || g.Algo != w.Algo || !reflect.DeepEqual(g.Params, w.Params) {
			t.Fatalf("cell %d identity: got (%s,%s,%+v), want (%s,%s,%+v)",
				i, g.Graph, g.Algo, g.Params, w.Graph, w.Algo, w.Params)
		}
		if g.State != w.State {
			t.Fatalf("cell %d state %s (err %q), want %s", i, g.State, g.Error, w.State)
		}
		if !reflect.DeepEqual(g.Result, w.Result) {
			t.Fatalf("cell %d result mismatch:\n got %+v\nwant %+v", i, g.Result, w.Result)
		}
	}
	if !reflect.DeepEqual(got.Groups, want.Groups) {
		t.Fatalf("groups mismatch:\n got %+v\nwant %+v", got.Groups, want.Groups)
	}
}

// detGraphs and detSpec form the shared determinism workload: three graphs,
// two algorithm kinds, three seeds — 18 cells spread across owners.
func detWorkload() ([]namedSource, service.BatchSpec) {
	graphs := []namedSource{
		{"det-a", gnpSource(48, 0.12, 11, 40)},
		{"det-b", gnpSource(64, 0.09, 12, 40)},
		{"det-c", gnpSource(56, 0.10, 13, 40)},
	}
	spec := service.BatchSpec{
		Graphs: []string{"det-a", "det-b", "det-c"},
		Algos:  []string{"mwm2", "maxis"},
		Seeds:  []uint64{1, 2, 3},
	}
	return graphs, spec
}

// TestCrossWorkerDeterminism is the satellite contract: the same BatchSpec
// run on a 1-worker and a 3-worker cluster yields identical per-cell results
// and identical per-group stats.Summary values, both matching a direct
// single-node service run.
func TestCrossWorkerDeterminism(t *testing.T) {
	graphs, spec := detWorkload()
	want := singleNodeRun(t, graphs, spec)
	if want.State != service.BatchDone || want.Done != want.Total {
		t.Fatalf("reference run %+v", want)
	}

	c1, _ := newFleet(t, 1, nil)
	got1 := clusterRun(t, c1, graphs, spec)
	c3, _ := newFleet(t, 3, nil)
	got3 := clusterRun(t, c3, graphs, spec)

	if got1.State != service.BatchDone || got3.State != service.BatchDone {
		t.Fatalf("cluster states: 1-worker %s, 3-worker %s", got1.State, got3.State)
	}
	assertSameOutcomes(t, want, got1)
	assertSameOutcomes(t, want, got3)
}

// TestWorkerKilledMidBatch is the fault-injection acceptance scenario: a
// worker dies mid-batch, its pending cells re-place onto healthy workers,
// the batch completes with every cell done, the aggregates match a
// single-node run exactly, and the coordinator's graph pins are released.
func TestWorkerKilledMidBatch(t *testing.T) {
	graphs := []namedSource{
		{"kill-a", gnpSource(500, 0.015, 21, 64)},
		{"kill-b", gnpSource(520, 0.014, 22, 64)},
		{"kill-c", gnpSource(540, 0.013, 23, 64)},
	}
	spec := service.BatchSpec{
		Graphs: []string{"kill-a", "kill-b", "kill-c"},
		Algos:  []string{"maxis"},
		Seeds:  []uint64{1, 2, 3, 4, 5, 6, 7, 8},
	}

	coord, workers := newFleet(t, 3, nil)
	for _, g := range graphs {
		putGen(t, coord, g.name, g.src)
	}
	// Slow the owner of the first graph BEFORE submitting: without the brake
	// a fast machine can complete every one of the victim's cells before the
	// kill below lands, and a dead worker nobody dials again is never marked
	// unhealthy (the assertion at the bottom would flake). Placement is
	// decided at PutGraph time, so the victim is known before any dispatch.
	info, _ := coord.GetGraph("kill-a")
	victim := coord.owner(info.Fingerprint)
	if victim == nil {
		t.Fatal("no owner for kill-a")
	}
	vw := findWorker(t, workers, victim.url)
	vw.proxy.delay = 100 * time.Millisecond
	vw.proxy.set(faultSlow)
	v, err := coord.SubmitBatch(spec)
	if err != nil {
		t.Fatal(err)
	}

	// Let the batch make some progress, then kill the worker owning the
	// first graph while its cells are still being dispatched.
	deadline := time.Now().Add(60 * time.Second)
	for {
		cur, _ := coord.GetBatch(v.ID)
		if cur.Done >= 1 {
			break
		}
		if cur.State.Terminal() || time.Now().After(deadline) {
			t.Fatalf("batch reached %+v before any cell completed", cur)
		}
		time.Sleep(time.Millisecond)
	}
	vw.proxy.set(faultKill)

	fin := waitBatch(t, coord, v.ID)
	if fin.State != service.BatchDone || fin.Done != fin.Total || fin.Failed != 0 {
		for _, cell := range fin.Cells {
			if cell.State != service.Done {
				t.Logf("cell %d (%s on %s): %s: %s", cell.Index, cell.Algo, cell.Graph, cell.State, cell.Error)
			}
		}
		t.Fatalf("batch after kill: %+v", fin.Groups)
	}
	// Retries re-dispatch cells but must not re-count them: Submitted keeps
	// the single-node invariant Submitted <= Total.
	if fin.Submitted > fin.Total {
		t.Fatalf("submitted %d > total %d after retries", fin.Submitted, fin.Total)
	}

	// The aggregates must match a single-node run bit for bit.
	want := singleNodeRun(t, graphs, spec)
	assertSameOutcomes(t, want, fin)

	// The dead worker is off the ring and the failure was counted.
	view := coord.View()
	downs := 0
	for _, w := range view.Workers {
		if !w.Healthy {
			downs++
		}
	}
	if downs != 1 {
		t.Fatalf("unhealthy workers %d, want 1 (%+v)", downs, view.Workers)
	}
	if coord.workerFailures.Load() == 0 {
		t.Fatal("no worker failures recorded")
	}

	// Pin-leak regression: after the faulted batch every Acquire must have
	// been released, so deleting the graphs succeeds.
	for _, g := range graphs {
		if err := coord.DeleteGraph(g.name); err != nil {
			t.Fatalf("delete %s after faulted batch: %v", g.name, err)
		}
	}
}

// TestWorkerHangMidBatch covers the second failure mode: a worker that stops
// answering (requests park until the client times out) must be detected via
// the request timeout and its cells re-placed.
func TestWorkerHangMidBatch(t *testing.T) {
	graphs := []namedSource{
		{"hang-a", gnpSource(200, 0.03, 31, 32)},
		{"hang-b", gnpSource(220, 0.03, 32, 32)},
	}
	spec := service.BatchSpec{
		Graphs: []string{"hang-a", "hang-b"},
		Algos:  []string{"maxis"},
		Seeds:  []uint64{1, 2, 3, 4},
	}
	coord, workers := newFleet(t, 3, func(cfg *Config) {
		cfg.RequestTimeout = 500 * time.Millisecond
	})
	for _, g := range graphs {
		putGen(t, coord, g.name, g.src)
	}
	info, _ := coord.GetGraph("hang-a")
	victim := coord.owner(info.Fingerprint)
	findWorker(t, workers, victim.url).proxy.set(faultHang)

	v, err := coord.SubmitBatch(spec)
	if err != nil {
		t.Fatal(err)
	}
	fin := waitBatch(t, coord, v.ID)
	if fin.State != service.BatchDone || fin.Done != fin.Total {
		t.Fatalf("batch against hung worker: %+v", fin)
	}
	want := singleNodeRun(t, graphs, spec)
	assertSameOutcomes(t, want, fin)
}

// TestSlowWorkerNeedsNoRetry: latency below the request timeout is not a
// failure — the batch completes with no worker marked down.
func TestSlowWorkerNeedsNoRetry(t *testing.T) {
	coord, workers := newFleet(t, 2, nil)
	putGen(t, coord, "slow-g", gnpSource(40, 0.15, 41, 32))
	workers[0].proxy.delay = 20 * time.Millisecond
	workers[0].proxy.set(faultSlow)
	workers[1].proxy.delay = 20 * time.Millisecond
	workers[1].proxy.set(faultSlow)

	fin := clusterRun(t, coord, nil, service.BatchSpec{
		Graphs: []string{"slow-g"},
		Algos:  []string{"mwm2"},
		Seeds:  []uint64{1, 2},
	})
	if fin.State != service.BatchDone || fin.Done != 2 {
		t.Fatalf("batch on slow fleet: %+v", fin)
	}
	if n := coord.workerFailures.Load(); n != 0 {
		t.Fatalf("%d worker failures on a merely slow fleet", n)
	}
}

// TestCancelReleasesPinsAndStops: canceling a cluster batch fans out to
// in-flight worker jobs, marks undispatched cells canceled, and releases
// every graph pin.
func TestCancelReleasesPinsAndStops(t *testing.T) {
	coord, _ := newFleet(t, 2, nil)
	putGen(t, coord, "cancel-g", gnpSource(1200, 0.01, 51, 0))
	seeds := make([]uint64, 10)
	for i := range seeds {
		seeds[i] = uint64(i + 1)
	}
	v, err := coord.SubmitBatch(service.BatchSpec{
		Graphs: []string{"cancel-g"},
		Algos:  []string{"maxis"},
		Seeds:  seeds,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := coord.CancelBatch(v.ID); err != nil {
		t.Fatal(err)
	}
	fin := waitBatch(t, coord, v.ID)
	if fin.State != service.BatchCanceled {
		t.Fatalf("state %s, want canceled", fin.State)
	}
	if fin.Canceled == 0 || fin.Done+fin.Failed+fin.Canceled != fin.Total {
		t.Fatalf("member accounting %+v", fin)
	}
	if _, err := coord.CancelBatch(v.ID); err != service.ErrBatchFinished {
		t.Fatalf("second cancel: %v, want ErrBatchFinished", err)
	}
	if err := coord.DeleteGraph("cancel-g"); err != nil {
		t.Fatalf("delete after cancel: %v", err)
	}
}

// TestNewRejectsBadWorkerURLs: the -workers flag used to be the executor
// goroutine count; a leftover invocation (or a scheme-less host) must fail
// at startup, not limp along with an unreachable fleet.
func TestNewRejectsBadWorkerURLs(t *testing.T) {
	for _, bad := range [][]string{
		nil,
		{"2"},
		{"localhost:8081"},
		{"http://"},
		{"ftp://host:1"},
		{"http://a:1", "http://a:1"},
		{"http://a:1", " http://a:1/"},
	} {
		if c, err := New(Config{Workers: bad}); err == nil {
			c.Close()
			t.Errorf("New accepted workers %q", bad)
		}
	}
	c, err := New(Config{Workers: []string{" http://a:1/ ", "https://b:2"}})
	if err != nil {
		t.Fatalf("New rejected valid URLs: %v", err)
	}
	c.Close()
}

// TestRingPlacement pins down the consistent-hash contract: stable owners,
// re-placement onto the next distinct healthy worker when the owner goes
// down, and nil when the whole fleet is dark. No HTTP traffic is involved.
func TestRingPlacement(t *testing.T) {
	c, err := New(Config{Workers: []string{"http://a:1", "http://b:1", "http://c:1"}})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	fps := []string{"fp-one", "fp-two", "fp-three", "fp-four", "fp-five", "fp-six"}
	owners := make(map[string]*worker)
	for _, fp := range fps {
		w := c.owner(fp)
		if w == nil {
			t.Fatalf("no owner for %s on a healthy fleet", fp)
		}
		if c.owner(fp) != w {
			t.Fatalf("owner of %s not stable", fp)
		}
		owners[fp] = w
	}
	// Down one worker: its graphs move, others stay put.
	victim := owners[fps[0]]
	victim.mu.Lock()
	victim.healthy = false
	victim.mu.Unlock()
	for _, fp := range fps {
		w := c.owner(fp)
		if w == nil || w == victim {
			t.Fatalf("%s still owned by downed worker", fp)
		}
		if owners[fp] != victim && w != owners[fp] {
			t.Fatalf("%s moved from %s to %s although its owner stayed healthy", fp, owners[fp].url, w.url)
		}
	}
	for _, w := range c.workers {
		w.mu.Lock()
		w.healthy = false
		w.mu.Unlock()
	}
	if w := c.owner(fps[0]); w != nil {
		t.Fatalf("owner %s on a fully dark fleet", w.url)
	}
}

// TestSubmitValidation mirrors the single-node submission error surface.
func TestSubmitValidation(t *testing.T) {
	coord, _ := newFleet(t, 1, func(cfg *Config) { cfg.MaxCells = 4 })
	putGen(t, coord, "v-g", gnpSource(16, 0.2, 61, 16))

	if _, err := coord.SubmitBatch(service.BatchSpec{}); err == nil {
		t.Fatal("empty spec accepted")
	}
	_, err := coord.SubmitBatch(service.BatchSpec{Graphs: []string{"missing"}, Algos: []string{"mwm2"}})
	if !errors.Is(err, store.ErrNotFound) {
		t.Fatalf("missing graph: %v", err)
	}
	if _, err := coord.SubmitBatch(service.BatchSpec{Graphs: []string{"v-g"}, Algos: []string{"quantum"}}); err == nil {
		t.Fatal("unknown algorithm accepted")
	}
	_, err = coord.SubmitBatch(service.BatchSpec{
		Graphs: []string{"v-g"}, Algos: []string{"mwm2"}, Seeds: []uint64{1, 2, 3, 4, 5},
	})
	if err == nil {
		t.Fatal("over-cap batch accepted")
	}
}

// TestClusterHandlerEndToEnd drives the coordinator through the real
// httpapi.NewClusterHandler wire surface: graph upload, batch, long-poll,
// GET /v1/cluster and the merged /metrics document.
func TestClusterHandlerEndToEnd(t *testing.T) {
	coord, _ := newFleet(t, 3, nil)
	ts := httptest.NewServer(httpapi.NewClusterHandler(coord))
	t.Cleanup(ts.Close)
	c := httpapi.NewClient(ts.URL, nil)

	if _, err := c.PutGraphGen(context.Background(), "wire-g", httpapi.GenRequest{Gen: "gnp", N: 24, P: 0.2, Seed: 7, MaxW: 32}); err != nil {
		t.Fatal(err)
	}
	b, err := c.SubmitBatch(context.Background(), httpapi.BatchRequest{
		Graphs: []string{"wire-g"},
		Algos:  []string{"mwm2", "fastmcm"},
		Seeds:  []uint64{1, 2, 3},
	})
	if err != nil {
		t.Fatal(err)
	}
	fin, err := c.WaitBatch(context.Background(), b.ID, 60*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if fin.State != "done" || fin.Done != 6 || len(fin.Groups) != 2 {
		t.Fatalf("batch over the wire: %+v", fin)
	}

	view, err := c.GetCluster(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(view.Workers) != 3 {
		t.Fatalf("cluster view workers %d, want 3", len(view.Workers))
	}
	healthy := 0
	var dispatched uint64
	for _, w := range view.Workers {
		if w.Healthy {
			healthy++
		}
		dispatched += w.Dispatched
	}
	if healthy != 3 || dispatched == 0 {
		t.Fatalf("cluster view %+v", view.Workers)
	}
	if len(view.Placements) != 1 || view.Placements[0].Graph != "wire-g" || view.Placements[0].Worker == "" {
		t.Fatalf("placements %+v", view.Placements)
	}

	m, err := c.ClusterMetrics(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if m.WorkersTotal != 3 || m.WorkersHealthy != 3 || m.BatchesDone != 1 || m.BatchCells != 6 {
		t.Fatalf("cluster metrics %+v", m)
	}
	if m.Fleet.BatchMembers == 0 && m.Fleet.Submitted == 0 {
		t.Fatalf("fleet counters empty: %+v", m.Fleet)
	}

	// Single-job endpoints are explicitly not served in coordinator mode.
	if _, err := c.SubmitJob(context.Background(), httpapi.SubmitRequest{Algo: "mwm2", GraphName: "wire-g"}); err == nil {
		t.Fatal("coordinator accepted a single job")
	}
	if err := c.DeleteGraph(context.Background(), "wire-g"); err != nil {
		t.Fatal(err)
	}
}
