package cluster

import (
	"strings"
	"testing"

	"repro/internal/httpapi"
	"repro/internal/service"
)

// TestOversizedUploadFailsCellNotWorker is the 413 triage contract: a worker
// rejecting a graph upload as too large is a deterministic, payload-bound
// failure — the coordinator must fail that cell terminally (retrying the same
// bytes anywhere would 413 identically) without marking the worker unhealthy
// or burning retry budget, and unrelated cells on the same workers must still
// complete.
func TestOversizedUploadFailsCellNotWorker(t *testing.T) {
	// Every worker caps request bodies at 2 KiB; the big graph's binary
	// encoding is far over it, the small one fits comfortably.
	coord, _ := newFleet(t, 2, nil, httpapi.WithMaxBodyBytes(2048))
	putGen(t, coord, "big", gnpSource(200, 0.2, 7, 40))
	putGen(t, coord, "small", gnpSource(16, 0.2, 8, 40))

	v, err := coord.SubmitBatch(service.BatchSpec{
		Graphs: []string{"big", "small"},
		Algos:  []string{"maxis"},
		Seeds:  []uint64{1},
	})
	if err != nil {
		t.Fatal(err)
	}
	fin := waitBatch(t, coord, v.ID)
	if fin.State != service.BatchDone {
		t.Fatalf("batch state %s, want %s", fin.State, service.BatchDone)
	}

	for _, cell := range fin.Cells {
		switch cell.Graph {
		case "big":
			if cell.State != service.Failed {
				t.Fatalf("big cell state %s (err %q), want failed", cell.State, cell.Error)
			}
			if !strings.Contains(cell.Error, "413") {
				t.Fatalf("big cell error %q does not surface the 413", cell.Error)
			}
		case "small":
			if cell.State != service.Done {
				t.Fatalf("small cell state %s (err %q), want done", cell.State, cell.Error)
			}
		default:
			t.Fatalf("unexpected cell graph %q", cell.Graph)
		}
	}

	// The rejection indicted the payload, not the fleet: no worker was marked
	// down, no retry was spent, and no worker-level failure was recorded.
	m := coord.Metrics()
	if m.CellRetries != 0 || m.WorkerFailures != 0 {
		t.Fatalf("retries=%d workerFailures=%d, want 0/0", m.CellRetries, m.WorkerFailures)
	}
	for _, w := range coord.View().Workers {
		if !w.Healthy || w.Failures != 0 {
			t.Fatalf("worker %s healthy=%t failures=%d after a 413", w.URL, w.Healthy, w.Failures)
		}
	}
}
