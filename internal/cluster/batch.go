package cluster

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"slices"
	"strings"
	"sync"
	"time"

	"repro/internal/httpapi"
	"repro/internal/obs"
	"repro/internal/registry"
	"repro/internal/service"
)

// cmember is the coordinator-side state of one batch cell.
type cmember struct {
	cell     service.BatchCell
	jobRef   string // "w<id>:<jobID>" once dispatched
	state    service.State
	cacheHit bool
	err      string
	result   *registry.Result
	// w and jobID name the in-flight dispatch target for cancel fan-out.
	w     *worker
	jobID string
}

// cbatch is one sharded batch.
type cbatch struct {
	id string
	// traceID is the batch's trace root; cell i runs (and is submitted to its
	// worker) under the child trace "<traceID>.<i>", so one grep over
	// coordinator and worker logs follows a cell across retries and hosts.
	traceID string
	timeout time.Duration
	// ctx is canceled by CancelBatch and Close; every slot wait and poll
	// select observes it.
	ctx    context.Context
	cancel context.CancelFunc
	graphs map[string]*pinnedGraph

	mu         sync.Mutex
	cells      []cmember
	state      service.BatchState
	cancelReq  bool
	dispatched int
	terminal   int
	done       int
	failed     int
	canceled   int
	cacheHits  int
	created    time.Time
	finished   time.Time
	releases   []func()
	doneCh     chan struct{}
	groups     []service.BatchGroup
}

// SubmitBatch validates and launches a sharded batch: the spec expands
// through the same service.BatchSpec code path as a single-node batch, every
// referenced graph is pinned in the coordinator's local store, and one
// dispatch goroutine per cell runs it on the owning worker (gated by that
// worker's in-flight window). Poll GetBatch or WaitBatch for progress.
func (c *Coordinator) SubmitBatch(spec service.BatchSpec) (service.BatchView, error) {
	// Expansion, validation and pinning are the literal single-node code
	// path, so coordinator and worker accept exactly the same specs. The
	// pins are what keep retried cells re-placeable after a worker dies.
	cells, pinned, releases, err := service.PrepareBatch(c.st, spec, c.cfg.MaxCells)
	if err != nil {
		return service.BatchView{}, err
	}
	graphs := make(map[string]*pinnedGraph, len(pinned))
	for name, g := range pinned {
		info, _ := c.st.Get(name)
		graphs[name] = &pinnedGraph{g: g, fp: info.Fingerprint}
	}

	trace := spec.TraceID
	if trace == "" {
		trace = obs.NewTraceID()
	}
	ctx, cancel := context.WithCancel(context.Background())
	bt := &cbatch{
		traceID:  trace,
		timeout:  spec.Timeout,
		ctx:      ctx,
		cancel:   cancel,
		graphs:   graphs,
		cells:    make([]cmember, len(cells)),
		state:    service.BatchRunning,
		created:  time.Now(),
		releases: releases,
		doneCh:   make(chan struct{}),
	}
	for i, cell := range cells {
		bt.cells[i] = cmember{cell: cell, state: service.Queued}
	}

	c.mu.Lock()
	c.nextID++
	bt.id = fmt.Sprintf("b%06d", c.nextID)
	c.batches[bt.id] = bt
	c.mu.Unlock()
	c.batchesSubmitted.Add(1)
	c.batchCells.Add(uint64(len(cells)))
	c.log.Info("batch submitted", "event", "batch_submit",
		"batch", bt.id, "trace", bt.traceID, "cells", len(cells))

	c.runWG.Add(1)
	go c.run(bt)
	return bt.view(), nil
}

// run dispatches every cell concurrently (each gated by its worker's window)
// and finalizes the batch once all cells are terminal.
func (c *Coordinator) run(bt *cbatch) {
	defer c.runWG.Done()
	var wg sync.WaitGroup
	wg.Add(len(bt.cells))
	for i := range bt.cells {
		go func(i int) {
			defer wg.Done()
			c.runCell(bt, i)
		}(i)
	}
	wg.Wait()

	bt.mu.Lock()
	if bt.cancelReq {
		bt.state = service.BatchCanceled
		c.batchesCanceled.Add(1)
	} else {
		bt.state = service.BatchDone
		c.batchesDone.Add(1)
	}
	bt.finished = time.Now()
	for _, release := range bt.releases {
		release()
	}
	bt.releases = nil
	close(bt.doneCh)
	bt.mu.Unlock()
	bt.cancel() // release the context's timer resources

	c.mu.Lock()
	c.terminal = append(c.terminal, bt.id)
	for len(c.terminal) > c.cfg.MaxBatches {
		delete(c.batches, c.terminal[0])
		c.terminal = c.terminal[1:]
	}
	c.mu.Unlock()

	bt.mu.Lock()
	c.log.Info("batch finished", "event", "batch_done",
		"batch", bt.id, "trace", bt.traceID, "state", string(bt.state),
		"done", bt.done, "failed", bt.failed, "canceled", bt.canceled,
		"duration", bt.finished.Sub(bt.created))
	bt.mu.Unlock()
}

// errWorkerDown reports that a dispatch target was marked down while the
// cell waited on its window slot — re-place without recording a new failure.
var errWorkerDown = errors.New("cluster: worker went down before dispatch")

// cellOutcome is the application-level result of running a cell on a worker;
// worker-level failures travel as errors beside it.
type cellOutcome struct {
	state    service.State
	cacheHit bool
	errMsg   string
	result   *registry.Result
}

// runCell places one cell on the ring and runs it, re-placing onto the next
// healthy worker each time a worker-level failure is observed (transport
// error, 5xx, hung connection). Application-level failures (the algorithm
// returned an error on the worker) are terminal: they are deterministic and
// would fail anywhere.
func (c *Coordinator) runCell(bt *cbatch, i int) {
	cell := bt.cells[i].cell
	pg := bt.graphs[cell.Graph]
	ctrace := obs.ChildTraceID(bt.traceID, i)
	// Every retry marks a worker down first, so the attempt budget only
	// needs to cover the fleet plus a margin for races with revival.
	maxAttempts := 2 * len(c.workers)
	var lastErr error
	for attempts := 0; ; {
		if bt.ctx.Err() != nil {
			bt.finishCell(i, cellOutcome{state: service.Canceled})
			return
		}
		w := c.owner(pg.fp)
		if w == nil {
			msg := "cluster: no healthy workers"
			if lastErr != nil {
				msg = fmt.Sprintf("%s (last worker error: %v)", msg, lastErr)
			}
			bt.finishCell(i, cellOutcome{state: service.Failed, errMsg: msg})
			return
		}
		attemptStart := time.Now()
		out, err := c.runOnWorker(bt, i, w, pg, ctrace)
		if err == nil {
			bt.finishCell(i, out)
			return
		}
		if errors.Is(err, errWorkerDown) {
			// The worker was downed (by another cell or a probe) between
			// placement and dispatch: nothing new was learned about it, so
			// just re-place — owner() will skip it now.
			c.log.Info("cell re-placed", "event", "cell_replace",
				"batch", bt.id, "trace", ctrace, "worker", w.url)
			continue
		}
		c.markDown(w, err)
		c.cellRetries.Add(1)
		lastErr = err
		c.log.Warn("cell retry", "event", "cell_retry",
			"batch", bt.id, "trace", ctrace, "worker", w.url,
			"attempt", attempts+1, "duration", time.Since(attemptStart),
			"error", err.Error())
		if attempts++; attempts >= maxAttempts {
			bt.finishCell(i, cellOutcome{
				state:  service.Failed,
				errMsg: fmt.Sprintf("cluster: giving up after %d attempts: %v", attempts, lastErr),
			})
			return
		}
	}
}

// runOnWorker executes one cell attempt on w: acquire a window slot, ensure
// the graph is uploaded, submit the job, poll to terminal. A non-nil error
// means the worker failed (caller re-places); application outcomes — done,
// failed, canceled, cache hit — come back in the cellOutcome.
func (c *Coordinator) runOnWorker(bt *cbatch, i int, w *worker, pg *pinnedGraph, ctrace string) (cellOutcome, error) {
	select {
	case w.slots <- struct{}{}:
	case <-bt.ctx.Done():
		return cellOutcome{state: service.Canceled}, nil
	}
	defer func() { <-w.slots }()
	// The slot wait can outlive the placement decision: cells queued behind
	// a worker's window must not pay a request timeout against a worker
	// that was marked down while they waited.
	if !w.isHealthy() {
		return cellOutcome{}, errWorkerDown
	}
	w.mu.Lock()
	w.inFlight++
	w.dispatched++
	w.mu.Unlock()
	defer func() {
		w.mu.Lock()
		w.inFlight--
		w.mu.Unlock()
	}()
	c.cellsDispatched.Add(1)

	cell := bt.cells[i].cell
	if err := c.ensureGraph(w, cell.Graph, pg); err != nil {
		// Same triage as the submit path: a deterministic 4xx (e.g. an
		// unrepairable stale binding) fails the cell, it does not indict
		// the worker; transport errors and 5xx do.
		var apiErr *httpapi.APIError
		if errors.As(err, &apiErr) && apiErr.Status < http.StatusInternalServerError {
			return cellOutcome{
				state:  service.Failed,
				errMsg: fmt.Sprintf("cluster: uploading %s to %s: %v", cell.Graph, w.url, err),
			}, nil
		}
		return cellOutcome{}, err
	}

	req := httpapi.SubmitRequest{
		Algo:      cell.Algo,
		GraphName: cell.Graph,
		Params:    httpapi.ParamsWire(cell.Params),
		TimeoutMs: bt.timeout.Milliseconds(),
		TraceID:   ctrace,
	}
	var jr httpapi.JobResponse
	backoff := c.cfg.PollInterval
	for uploads := 0; ; {
		var err error
		jr, err = w.client.SubmitJob(req)
		if err == nil {
			break
		}
		var apiErr *httpapi.APIError
		if !errors.As(err, &apiErr) || apiErr.Status >= http.StatusInternalServerError {
			// Not our wire format, or a 5xx: queue saturation backs off on
			// the same worker (exponentially — a saturated queue must not be
			// hammered at poll cadence), everything else is a worker failure.
			if isQueueFull(err) {
				select {
				case <-time.After(backoff):
					backoff = min(2*backoff, 250*time.Millisecond)
					continue
				case <-bt.ctx.Done():
					return cellOutcome{state: service.Canceled}, nil
				}
			}
			return cellOutcome{}, err
		}
		if apiErr.Status == http.StatusNotFound && uploads < 2 {
			// The worker evicted our graph between upload and submit
			// (capacity pressure on its store); re-upload and retry.
			uploads++
			w.mu.Lock()
			delete(w.uploaded, cell.Graph)
			w.mu.Unlock()
			if err := c.ensureGraph(w, cell.Graph, pg); err != nil {
				return cellOutcome{}, err
			}
			continue
		}
		// Remaining 4xx are deterministic rejections; the cell fails for good.
		return cellOutcome{state: service.Failed, errMsg: apiErr.Message}, nil
	}
	bt.noteDispatched(i, w, jr.ID)
	dispatchedAt := time.Now()
	c.log.Info("cell dispatched", "event", "cell_dispatch",
		"batch", bt.id, "trace", ctrace, "worker", w.url, "job", jr.ID)

	straggler := false
	for {
		if service.State(jr.State).Terminal() {
			res, err := jr.Result.ToResult()
			if err != nil {
				// A result the coordinator cannot decode is deterministic
				// (version skew, not a flaky worker): retrying it elsewhere
				// would fail identically and down the whole ring, so the
				// cell fails terminally like any application failure.
				return cellOutcome{
					state:  service.Failed,
					errMsg: fmt.Sprintf("cluster: worker %s returned a bad result: %v", w.url, err),
				}, nil
			}
			return cellOutcome{
				state:    service.State(jr.State),
				cacheHit: jr.CacheHit,
				errMsg:   jr.Error,
				result:   res,
			}, nil
		}
		if d := c.cfg.StragglerAfter; d > 0 && !straggler && time.Since(dispatchedAt) > d {
			// Surfaced once per dispatch so an operator (or a future hedging
			// policy) can find cells holding a batch's tail latency.
			straggler = true
			c.log.Warn("cell straggling", "event", "cell_straggler",
				"batch", bt.id, "trace", ctrace, "worker", w.url, "job", jr.ID,
				"running_for", time.Since(dispatchedAt))
		}
		select {
		case <-bt.ctx.Done():
			_, _ = w.client.CancelJob(jr.ID)
			return cellOutcome{state: service.Canceled}, nil
		case <-time.After(c.cfg.PollInterval):
		}
		jv, err := w.client.GetJob(jr.ID)
		if err != nil {
			return cellOutcome{}, err
		}
		jr = jv
	}
}

// isQueueFull matches the worker's 503 queue-saturation rejection, which is
// retryable on the same worker (unlike every other 5xx). The machine-readable
// code is authoritative; the message match keeps pre-code workers working.
func isQueueFull(err error) bool {
	var apiErr *httpapi.APIError
	if !errors.As(err, &apiErr) || apiErr.Status != http.StatusServiceUnavailable {
		return false
	}
	return apiErr.Code == httpapi.CodeQueueFull || strings.Contains(apiErr.Message, "queue is full")
}

// noteDispatched records where a cell is running, for cancel fan-out and the
// Submitted progress counter. Retries re-enter here; only a cell's first
// dispatch counts toward Submitted, which therefore never exceeds Total —
// same as the single-node view.
func (bt *cbatch) noteDispatched(i int, w *worker, jobID string) {
	bt.mu.Lock()
	defer bt.mu.Unlock()
	m := &bt.cells[i]
	if m.jobRef == "" {
		bt.dispatched++
	}
	m.w = w
	m.jobID = jobID
	m.jobRef = fmt.Sprintf("w%d:%s", w.id, jobID)
	m.state = service.Running
}

// finishCell records a cell's terminal outcome.
func (bt *cbatch) finishCell(i int, out cellOutcome) {
	bt.mu.Lock()
	defer bt.mu.Unlock()
	m := &bt.cells[i]
	m.state = out.state
	m.cacheHit = out.cacheHit
	m.err = out.errMsg
	m.result = out.result
	m.w = nil
	bt.terminal++
	switch out.state {
	case service.Done:
		bt.done++
	case service.Failed:
		bt.failed++
	case service.Canceled:
		bt.canceled++
	}
	if out.cacheHit {
		bt.cacheHits++
	}
}

// GetBatch returns a snapshot of the batch with the given ID.
func (c *Coordinator) GetBatch(id string) (service.BatchView, bool) {
	c.mu.Lock()
	bt, ok := c.batches[id]
	c.mu.Unlock()
	if !ok {
		return service.BatchView{}, false
	}
	return bt.view(), true
}

// WaitBatch blocks until the batch is terminal or d has elapsed (d <= 0
// returns immediately), then returns the current snapshot.
func (c *Coordinator) WaitBatch(id string, d time.Duration) (service.BatchView, bool) {
	c.mu.Lock()
	bt, ok := c.batches[id]
	c.mu.Unlock()
	if !ok {
		return service.BatchView{}, false
	}
	if d > 0 {
		select {
		case <-bt.doneCh:
		case <-time.After(d):
		}
	}
	return bt.view(), true
}

// ListBatches returns a summary snapshot of every retained batch, oldest
// first.
func (c *Coordinator) ListBatches() []service.BatchView {
	c.mu.Lock()
	bts := make([]*cbatch, 0, len(c.batches))
	for _, bt := range c.batches {
		bts = append(bts, bt)
	}
	c.mu.Unlock()
	slices.SortFunc(bts, func(x, y *cbatch) int { return strings.Compare(x.id, y.id) })
	out := make([]service.BatchView, len(bts))
	for i, bt := range bts {
		out[i] = bt.summary()
	}
	return out
}

// CancelBatch stops a running batch: undispatched cells are dropped, cells
// in flight on workers are canceled best-effort, finished cells keep their
// results. Finished batches return service.ErrBatchFinished.
func (c *Coordinator) CancelBatch(id string) (service.BatchView, error) {
	c.mu.Lock()
	bt, ok := c.batches[id]
	c.mu.Unlock()
	if !ok {
		return service.BatchView{}, service.ErrBatchNotFound
	}
	bt.mu.Lock()
	if bt.state.Terminal() {
		bt.mu.Unlock()
		return bt.view(), service.ErrBatchFinished
	}
	bt.cancelReq = true
	type target struct {
		w     *worker
		jobID string
	}
	var targets []target
	for i := range bt.cells {
		if m := &bt.cells[i]; m.w != nil && !m.state.Terminal() {
			targets = append(targets, target{m.w, m.jobID})
		}
	}
	bt.mu.Unlock()
	// Wake every slot wait and poll loop first, then chase down in-flight
	// worker jobs with no batch lock held.
	bt.cancel()
	for _, t := range targets {
		_, _ = t.w.client.CancelJob(t.jobID)
	}
	return bt.view(), nil
}

// summary is view without cell and group detail.
func (bt *cbatch) summary() service.BatchView {
	bt.mu.Lock()
	defer bt.mu.Unlock()
	return service.BatchView{
		ID:         bt.id,
		TraceID:    bt.traceID,
		State:      bt.state,
		Total:      len(bt.cells),
		Submitted:  bt.dispatched,
		Done:       bt.done,
		Failed:     bt.failed,
		Canceled:   bt.canceled,
		CacheHits:  bt.cacheHits,
		CreatedAt:  bt.created,
		FinishedAt: bt.finished,
	}
}

func (bt *cbatch) view() service.BatchView {
	bt.mu.Lock()
	defer bt.mu.Unlock()
	v := service.BatchView{
		ID:         bt.id,
		TraceID:    bt.traceID,
		State:      bt.state,
		Total:      len(bt.cells),
		Submitted:  bt.dispatched,
		Done:       bt.done,
		Failed:     bt.failed,
		Canceled:   bt.canceled,
		CacheHits:  bt.cacheHits,
		CreatedAt:  bt.created,
		FinishedAt: bt.finished,
		Cells:      make([]service.BatchCellView, len(bt.cells)),
	}
	for i := range bt.cells {
		m := &bt.cells[i]
		v.Cells[i] = service.BatchCellView{
			Index:    i,
			Graph:    m.cell.Graph,
			Algo:     m.cell.Algo,
			Params:   m.cell.Params,
			JobID:    m.jobRef,
			TraceID:  obs.ChildTraceID(bt.traceID, i),
			State:    m.state,
			CacheHit: m.cacheHit,
			Error:    m.err,
			Result:   m.result,
		}
	}
	if bt.state.Terminal() {
		// Cells are immutable once terminal; aggregate once with the same
		// grouping code as the single-node engine and reuse across polls.
		if bt.groups == nil {
			bt.groups = service.GroupCells(v.Cells)
		}
		v.Groups = bt.groups
	}
	return v
}
