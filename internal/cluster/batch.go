package cluster

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"slices"
	"strings"
	"sync"
	"time"

	"repro/internal/httpapi"
	"repro/internal/obs"
	"repro/internal/registry"
	"repro/internal/service"
)

// cmember is the coordinator-side state of one batch cell.
type cmember struct {
	cell     service.BatchCell
	jobRef   string // "w<id>:<jobID or groupID>" once dispatched
	state    service.State
	cacheHit bool
	err      string
	result   *registry.Result
	// w and jobID name the in-flight dispatch target for cancel fan-out;
	// group distinguishes a job-group target from a single job.
	w     *worker
	jobID string
	group bool
}

// cbatch is one sharded batch.
type cbatch struct {
	id string
	// traceID is the batch's trace root; cell i runs (and is submitted to its
	// worker) under the child trace "<traceID>.<i>", so one grep over
	// coordinator and worker logs follows a cell across retries and hosts.
	traceID string
	tenant  string
	timeout time.Duration
	// ctx is canceled by CancelBatch and Close; every slot wait and poll
	// select observes it.
	ctx    context.Context
	cancel context.CancelFunc
	graphs map[string]*pinnedGraph

	mu         sync.Mutex
	cells      []cmember
	state      service.BatchState
	cancelReq  bool
	dispatched int
	terminal   int
	done       int
	failed     int
	canceled   int
	cacheHits  int
	created    time.Time
	finished   time.Time
	releases   []func()
	doneCh     chan struct{}
	// progress is closed and replaced on every cell-terminal transition so
	// streaming waiters (WaitCell) wake without polling.
	progress chan struct{}
	groups   []service.BatchGroup
}

// signalProgressLocked wakes streaming waiters after cell-terminal
// transitions. Must be called with bt.mu held.
func (bt *cbatch) signalProgressLocked() {
	if bt.progress != nil {
		close(bt.progress)
		bt.progress = make(chan struct{})
	}
}

// SubmitBatch validates and launches a sharded batch: the spec expands
// through the same service.BatchSpec code path as a single-node batch, every
// referenced graph is pinned in the coordinator's local store, and one
// dispatch goroutine per cell runs it on the owning worker (gated by that
// worker's in-flight window). Poll GetBatch or WaitBatch for progress.
func (c *Coordinator) SubmitBatch(spec service.BatchSpec) (service.BatchView, error) {
	c.mu.Lock()
	if c.draining {
		c.mu.Unlock()
		return service.BatchView{}, service.ErrDraining
	}
	c.mu.Unlock()
	// Expansion, validation and pinning are the literal single-node code
	// path, so coordinator and worker accept exactly the same specs. The
	// pins are what keep retried cells re-placeable after a worker dies.
	cells, pinned, releases, err := service.PrepareBatch(c.st, spec, c.cfg.MaxCells)
	if err != nil {
		return service.BatchView{}, err
	}
	graphs := make(map[string]*pinnedGraph, len(pinned))
	for name, g := range pinned {
		info, _ := c.st.Get(name)
		graphs[name] = &pinnedGraph{g: g, fp: info.Fingerprint}
	}

	trace := spec.TraceID
	if trace == "" {
		trace = obs.NewTraceID()
	}
	ctx, cancel := context.WithCancel(context.Background())
	bt := &cbatch{
		traceID:  trace,
		tenant:   spec.Tenant,
		timeout:  spec.Timeout,
		ctx:      ctx,
		cancel:   cancel,
		graphs:   graphs,
		cells:    make([]cmember, len(cells)),
		state:    service.BatchRunning,
		created:  time.Now(),
		releases: releases,
		doneCh:   make(chan struct{}),
		progress: make(chan struct{}),
	}
	for i, cell := range cells {
		bt.cells[i] = cmember{cell: cell, state: service.Queued}
	}

	c.mu.Lock()
	c.nextID++
	bt.id = fmt.Sprintf("b%06d", c.nextID)
	c.batches[bt.id] = bt
	c.mu.Unlock()
	c.batchesSubmitted.Add(1)
	c.batchCells.Add(uint64(len(cells)))
	c.log.Info("batch submitted", "event", "batch_submit",
		"batch", bt.id, "trace", bt.traceID, "tenant", bt.tenant, "cells", len(cells))

	c.runWG.Add(1)
	go c.run(bt)
	return bt.view(), nil
}

// run dispatches the batch — grouped by default, one job per cell under
// Config.PerCell — and finalizes it once all cells are terminal. Either way
// each dispatch unit runs its own goroutine gated by the target worker's
// window.
func (c *Coordinator) run(bt *cbatch) {
	defer c.runWG.Done()
	var wg sync.WaitGroup
	if c.cfg.PerCell {
		wg.Add(len(bt.cells))
		for i := range bt.cells {
			go func(i int) {
				defer wg.Done()
				c.runCell(bt, i)
			}(i)
		}
	} else {
		groups := c.groupBatch(bt)
		wg.Add(len(groups))
		for _, dg := range groups {
			go func(dg *dgroup) {
				defer wg.Done()
				c.runGroup(bt, dg)
			}(dg)
		}
	}
	wg.Wait()

	bt.mu.Lock()
	if bt.cancelReq {
		bt.state = service.BatchCanceled
		c.batchesCanceled.Add(1)
	} else {
		bt.state = service.BatchDone
		c.batchesDone.Add(1)
	}
	bt.finished = time.Now()
	for _, release := range bt.releases {
		release()
	}
	bt.releases = nil
	close(bt.doneCh)
	bt.mu.Unlock()
	bt.cancel() // release the context's timer resources

	c.mu.Lock()
	c.terminal = append(c.terminal, bt.id)
	for len(c.terminal) > c.cfg.MaxBatches {
		delete(c.batches, c.terminal[0])
		c.terminal = c.terminal[1:]
	}
	c.mu.Unlock()

	bt.mu.Lock()
	c.log.Info("batch finished", "event", "batch_done",
		"batch", bt.id, "trace", bt.traceID, "tenant", bt.tenant, "state", string(bt.state),
		"done", bt.done, "failed", bt.failed, "canceled", bt.canceled,
		"duration", bt.finished.Sub(bt.created))
	bt.mu.Unlock()
}

// errWorkerDown reports that a dispatch target was marked down while the
// cell waited on its window slot — re-place without recording a new failure.
var errWorkerDown = errors.New("cluster: worker went down before dispatch")

// cellOutcome is the application-level result of running a cell on a worker;
// worker-level failures travel as errors beside it.
type cellOutcome struct {
	state    service.State
	cacheHit bool
	errMsg   string
	result   *registry.Result
}

// runCell places one cell on the ring and runs it, re-placing onto the next
// healthy worker each time a worker-level failure is observed (transport
// error, 5xx, hung connection). Application-level failures (the algorithm
// returned an error on the worker) are terminal: they are deterministic and
// would fail anywhere.
func (c *Coordinator) runCell(bt *cbatch, i int) {
	cell := bt.cells[i].cell
	pg := bt.graphs[cell.Graph]
	ctrace := obs.ChildTraceID(bt.traceID, i)
	// Every retry marks a worker down first, so the attempt budget only
	// needs to cover the fleet plus a margin for races with revival.
	maxAttempts := 2 * len(c.workers)
	var lastErr error
	for attempts := 0; ; {
		if bt.ctx.Err() != nil {
			bt.finishCell(i, cellOutcome{state: service.Canceled})
			return
		}
		w := c.owner(pg.fp)
		if w == nil {
			msg := "cluster: no healthy workers"
			if lastErr != nil {
				msg = fmt.Sprintf("%s (last worker error: %v)", msg, lastErr)
			}
			bt.finishCell(i, cellOutcome{state: service.Failed, errMsg: msg})
			return
		}
		attemptStart := time.Now()
		out, err := c.runOnWorker(bt, i, w, pg, ctrace)
		if err == nil {
			bt.finishCell(i, out)
			return
		}
		if errors.Is(err, errWorkerDown) {
			// The worker was downed (by another cell or a probe) between
			// placement and dispatch: nothing new was learned about it, so
			// just re-place — owner() will skip it now.
			c.log.Info("cell re-placed", "event", "cell_replace",
				"batch", bt.id, "trace", ctrace, "worker", w.url)
			continue
		}
		c.markDown(w, err)
		c.cellRetries.Add(1)
		lastErr = err
		c.log.Warn("cell retry", "event", "cell_retry",
			"batch", bt.id, "trace", ctrace, "worker", w.url,
			"attempt", attempts+1, "duration", time.Since(attemptStart),
			"error", err.Error())
		if attempts++; attempts >= maxAttempts {
			bt.finishCell(i, cellOutcome{
				state:  service.Failed,
				errMsg: fmt.Sprintf("cluster: giving up after %d attempts: %v", attempts, lastErr),
			})
			return
		}
	}
}

// runOnWorker executes one cell attempt on w: acquire a window slot, ensure
// the graph is uploaded, submit the job, poll to terminal. A non-nil error
// means the worker failed (caller re-places); application outcomes — done,
// failed, canceled, cache hit — come back in the cellOutcome.
func (c *Coordinator) runOnWorker(bt *cbatch, i int, w *worker, pg *pinnedGraph, ctrace string) (cellOutcome, error) {
	select {
	case w.slots <- struct{}{}:
	case <-bt.ctx.Done():
		return cellOutcome{state: service.Canceled}, nil
	}
	defer func() { <-w.slots }()
	// The slot wait can outlive the placement decision: cells queued behind
	// a worker's window must not pay a request timeout against a worker
	// that was marked down while they waited.
	if !w.isHealthy() {
		return cellOutcome{}, errWorkerDown
	}
	w.mu.Lock()
	w.inFlight++
	w.dispatched++
	w.mu.Unlock()
	defer func() {
		w.mu.Lock()
		w.inFlight--
		w.mu.Unlock()
	}()
	c.cellsDispatched.Add(1)

	cell := bt.cells[i].cell
	if err := c.ensureGraph(bt.ctx, w, cell.Graph, pg); err != nil {
		if bt.ctx.Err() != nil {
			return cellOutcome{state: service.Canceled}, nil
		}
		// Same triage as the submit path: a deterministic 4xx (e.g. an
		// unrepairable stale binding) fails the cell, it does not indict
		// the worker; transport errors and 5xx do.
		var apiErr *httpapi.APIError
		if errors.As(err, &apiErr) && apiErr.Status < http.StatusInternalServerError {
			return cellOutcome{
				state:  service.Failed,
				errMsg: fmt.Sprintf("cluster: uploading %s to %s: %v", cell.Graph, w.url, err),
			}, nil
		}
		return cellOutcome{}, err
	}

	req := httpapi.SubmitRequest{
		Algo:      cell.Algo,
		GraphName: cell.Graph,
		Params:    httpapi.ParamsWire(cell.Params),
		TimeoutMs: bt.timeout.Milliseconds(),
		TraceID:   ctrace,
	}
	var jr httpapi.JobResponse
	backoff := c.cfg.PollInterval
	for uploads := 0; ; {
		var err error
		jr, err = w.client.SubmitJob(bt.ctx, req)
		if err == nil {
			break
		}
		if bt.ctx.Err() != nil {
			return cellOutcome{state: service.Canceled}, nil
		}
		var apiErr *httpapi.APIError
		if !errors.As(err, &apiErr) || apiErr.Status >= http.StatusInternalServerError {
			// Not our wire format, or a 5xx: queue saturation backs off on
			// the same worker (exponentially — a saturated queue must not be
			// hammered at poll cadence), everything else is a worker failure.
			if isQueueFull(err) {
				select {
				case <-time.After(backoff):
					backoff = min(2*backoff, 250*time.Millisecond)
					continue
				case <-bt.ctx.Done():
					return cellOutcome{state: service.Canceled}, nil
				}
			}
			return cellOutcome{}, err
		}
		if apiErr.Status == http.StatusNotFound && uploads < 2 {
			// The worker evicted our graph between upload and submit
			// (capacity pressure on its store); re-upload and retry.
			uploads++
			w.mu.Lock()
			delete(w.uploaded, cell.Graph)
			w.mu.Unlock()
			if err := c.ensureGraph(bt.ctx, w, cell.Graph, pg); err != nil {
				if bt.ctx.Err() != nil {
					return cellOutcome{state: service.Canceled}, nil
				}
				return cellOutcome{}, err
			}
			continue
		}
		// Remaining 4xx are deterministic rejections; the cell fails for good.
		return cellOutcome{state: service.Failed, errMsg: apiErr.Message}, nil
	}
	bt.noteDispatched(i, w, jr.ID)
	dispatchedAt := time.Now()
	c.log.Info("cell dispatched", "event", "cell_dispatch",
		"batch", bt.id, "trace", ctrace, "worker", w.url, "job", jr.ID)

	straggler := false
	for {
		if service.State(jr.State).Terminal() {
			res, err := jr.Result.ToResult()
			if err != nil {
				// A result the coordinator cannot decode is deterministic
				// (version skew, not a flaky worker): retrying it elsewhere
				// would fail identically and down the whole ring, so the
				// cell fails terminally like any application failure.
				return cellOutcome{
					state:  service.Failed,
					errMsg: fmt.Sprintf("cluster: worker %s returned a bad result: %v", w.url, err),
				}, nil
			}
			return cellOutcome{
				state:    service.State(jr.State),
				cacheHit: jr.CacheHit,
				errMsg:   jr.Error,
				result:   res,
			}, nil
		}
		if d := c.cfg.StragglerAfter; d > 0 && !straggler && time.Since(dispatchedAt) > d {
			// Surfaced once per dispatch so an operator (or a future hedging
			// policy) can find cells holding a batch's tail latency.
			straggler = true
			c.log.Warn("cell straggling", "event", "cell_straggler",
				"batch", bt.id, "trace", ctrace, "worker", w.url, "job", jr.ID,
				"running_for", time.Since(dispatchedAt))
		}
		select {
		case <-bt.ctx.Done():
			_, _ = w.client.CancelJob(context.Background(), jr.ID)
			return cellOutcome{state: service.Canceled}, nil
		case <-time.After(c.cfg.PollInterval):
		}
		jv, err := w.client.GetJob(bt.ctx, jr.ID)
		if err != nil {
			if bt.ctx.Err() != nil {
				_, _ = w.client.CancelJob(context.Background(), jr.ID)
				return cellOutcome{state: service.Canceled}, nil
			}
			return cellOutcome{}, err
		}
		jr = jv
	}
}

// isQueueFull matches the worker's 503 queue-saturation rejection, which is
// retryable on the same worker (unlike every other 5xx). The machine-readable
// code is authoritative; the message match keeps pre-code workers working.
func isQueueFull(err error) bool {
	var apiErr *httpapi.APIError
	if !errors.As(err, &apiErr) || apiErr.Status != http.StatusServiceUnavailable {
		return false
	}
	return apiErr.Code == httpapi.CodeQueueFull || strings.Contains(apiErr.Message, "queue is full")
}

// dgroup is one grouped dispatch unit: up to Config.GroupSize cells sharing
// a graph and a seed-independent parameter point, shipped to a worker as a
// single job group (one graph lookup, one submit, one poll stream).
type dgroup struct {
	idxs      []int    // batch cell indices, in expansion order
	seeds     []uint64 // aligned with idxs
	graphName string
	algo      string
	base      registry.Params
}

// groupBatch partitions a batch's cells into dispatch groups: cells agreeing
// on graph and on every seed-independent parameter (the same key as
// service.GroupCells and the worker's result grouping) ride together,
// chunked at Config.GroupSize so one straggling group cannot serialize an
// entire seed axis.
func (c *Coordinator) groupBatch(bt *cbatch) []*dgroup {
	var out []*dgroup
	open := make(map[string]*dgroup)
	for i := range bt.cells {
		cell := bt.cells[i].cell
		p := cell.Params
		p.Seed = 0
		key := cell.Graph + "|" + cell.Algo
		if spec, ok := registry.Get(cell.Algo); ok {
			key = cell.Graph + "|" + spec.CacheKey(p)
		}
		g := open[key]
		if g == nil || len(g.idxs) >= c.cfg.GroupSize {
			g = &dgroup{graphName: cell.Graph, algo: cell.Algo, base: cell.Params}
			open[key] = g
			out = append(out, g)
		}
		g.idxs = append(g.idxs, i)
		g.seeds = append(g.seeds, cell.Params.Seed)
	}
	return out
}

func canceledOutcomes(dg *dgroup) []cellOutcome {
	outs := make([]cellOutcome, len(dg.idxs))
	for i := range outs {
		outs[i] = cellOutcome{state: service.Canceled}
	}
	return outs
}

func failedOutcomes(dg *dgroup, msg string) []cellOutcome {
	outs := make([]cellOutcome, len(dg.idxs))
	for i := range outs {
		outs[i] = cellOutcome{state: service.Failed, errMsg: msg}
	}
	return outs
}

// gAttempt is the outcome of one worker attempt at a group: either a full
// per-cell outcome slice, or a worker-level error (caller re-places).
type gAttempt struct {
	outs   []cellOutcome
	err    error
	w      *worker
	hedged bool
}

// runGroup places one dispatch group on the ring and runs it to terminal,
// re-placing on worker failure exactly like runCell. With Config.Hedge set,
// a group still running past the straggler threshold is speculatively
// dispatched a second time to the next distinct healthy worker: the first
// attempt to come back with outcomes wins, the loser is canceled via the
// shared attempt context and its (eventual) result discarded. Dispatch is
// therefore at-least-once; finishCells keeps the merge at-most-once.
func (c *Coordinator) runGroup(bt *cbatch, dg *dgroup) {
	pg := bt.graphs[dg.graphName]
	// The group's trace is its first cell's child trace; every cell still
	// carries its own child ID in the group submission, so per-cell greps
	// keep working across hosts.
	gtrace := obs.ChildTraceID(bt.traceID, dg.idxs[0])
	maxAttempts := 2 * len(c.workers)

	attemptCtx, cancelAttempts := context.WithCancel(bt.ctx)
	var lwg sync.WaitGroup
	defer func() {
		// First result won (or the group gave up): cut any losing attempt
		// loose and wait for it to observe the cancel, so no goroutine and no
		// window slot outlives the group.
		cancelAttempts()
		lwg.Wait()
	}()

	results := make(chan gAttempt, 2)
	var primary *worker
	launch := func(w *worker, hedged bool) {
		lwg.Add(1)
		go func() {
			defer lwg.Done()
			start := time.Now()
			outs, err := c.runGroupOnWorker(attemptCtx, bt, dg, w, pg, gtrace, hedged)
			if err == nil && attemptCtx.Err() == nil {
				c.recordGroupDur(time.Since(start))
			}
			results <- gAttempt{outs: outs, err: err, w: w, hedged: hedged}
		}()
	}

	var lastErr error
	attempts, inflight := 0, 0
	hedged := false
	var hedgeTimer <-chan time.Time
	place := func() bool {
		w := c.owner(pg.fp)
		if w == nil {
			return false
		}
		primary = w
		launch(w, false)
		inflight++
		if c.cfg.Hedge && !hedged {
			if d := c.stragglerThreshold(); d > 0 {
				hedgeTimer = time.After(d)
			}
		}
		return true
	}

	failAll := func() {
		msg := "cluster: no healthy workers"
		if attempts >= maxAttempts {
			msg = fmt.Sprintf("cluster: giving up after %d attempts: %v", attempts, lastErr)
		} else if lastErr != nil {
			msg = fmt.Sprintf("%s (last worker error: %v)", msg, lastErr)
		}
		bt.finishCells(dg, failedOutcomes(dg, msg))
	}

	if bt.ctx.Err() != nil {
		bt.finishCells(dg, canceledOutcomes(dg))
		return
	}
	if !place() {
		failAll()
		return
	}
	for {
		select {
		case at := <-results:
			inflight--
			switch {
			case at.err == nil:
				// First terminal outcome set wins. A hedge winning over a
				// live primary counts as won; a primary winning after a hedge
				// fired means the hedge was wasted work.
				if at.hedged {
					c.hedgesWon.Add(1)
				} else if hedged {
					c.hedgesWasted.Add(1)
				}
				bt.finishCells(dg, at.outs)
				return
			case errors.Is(at.err, errWorkerDown):
				// Downed (by another dispatch or a probe) between placement
				// and dispatch: nothing new learned, just re-place.
				c.log.Info("group re-placed", "event", "group_replace",
					"batch", bt.id, "trace", gtrace, "worker", at.w.url)
			default:
				c.markDown(at.w, at.err)
				c.cellRetries.Add(uint64(len(dg.idxs)))
				lastErr = at.err
				attempts++
				c.log.Warn("group retry", "event", "group_retry",
					"batch", bt.id, "trace", gtrace, "worker", at.w.url,
					"cells", len(dg.idxs), "attempt", attempts, "error", at.err.Error())
			}
			if inflight > 0 {
				continue // the surviving attempt (primary or hedge) may still win
			}
			if bt.ctx.Err() != nil {
				bt.finishCells(dg, canceledOutcomes(dg))
				return
			}
			if attempts >= maxAttempts || !place() {
				failAll()
				return
			}
		case <-hedgeTimer:
			hedgeTimer = nil
			if inflight != 1 {
				continue
			}
			w2 := c.hedgeTarget(pg.fp, primary)
			if w2 == nil {
				continue
			}
			hedged = true
			c.hedgesFired.Add(1)
			c.log.Info("group hedged", "event", "group_hedge",
				"batch", bt.id, "trace", gtrace, "primary", primary.url,
				"hedge", w2.url, "cells", len(dg.idxs))
			launch(w2, true)
			inflight++
		}
	}
}

// runGroupOnWorker executes one group attempt on w: acquire one window slot
// for the whole group, ensure the graph is uploaded (binary codec), submit
// the job group, poll to terminal over the negotiated binary rendering. A
// non-nil error means the worker failed; application outcomes — including
// per-cell failures and cache hits — come back one per seed. Cancellation of
// ctx (batch cancel, or losing a hedge race) returns canceled outcomes with
// a nil error after best-effort canceling the worker-side group.
func (c *Coordinator) runGroupOnWorker(ctx context.Context, bt *cbatch, dg *dgroup, w *worker, pg *pinnedGraph, gtrace string, hedged bool) ([]cellOutcome, error) {
	w.mu.Lock()
	w.queueDepth++
	w.mu.Unlock()
	select {
	case w.slots <- struct{}{}:
	case <-ctx.Done():
		w.mu.Lock()
		w.queueDepth--
		w.mu.Unlock()
		return canceledOutcomes(dg), nil
	}
	w.mu.Lock()
	w.queueDepth--
	w.mu.Unlock()
	defer func() { <-w.slots }()
	if !w.isHealthy() {
		return nil, errWorkerDown
	}
	w.mu.Lock()
	w.inFlight += len(dg.idxs)
	w.dispatched += uint64(len(dg.idxs))
	w.mu.Unlock()
	defer func() {
		w.mu.Lock()
		w.inFlight -= len(dg.idxs)
		w.mu.Unlock()
	}()
	c.groupsDispatched.Add(1)
	c.cellsDispatched.Add(uint64(len(dg.idxs)))

	if err := c.ensureGraph(ctx, w, dg.graphName, pg); err != nil {
		if ctx.Err() != nil {
			return canceledOutcomes(dg), nil
		}
		var apiErr *httpapi.APIError
		if errors.As(err, &apiErr) && apiErr.Status < http.StatusInternalServerError {
			return failedOutcomes(dg, fmt.Sprintf("cluster: uploading %s to %s: %v", dg.graphName, w.url, err)), nil
		}
		return nil, err
	}

	traces := make([]string, len(dg.idxs))
	for k, i := range dg.idxs {
		traces[k] = obs.ChildTraceID(bt.traceID, i)
	}
	req := httpapi.JobGroupRequest{
		Algo:      dg.algo,
		GraphName: dg.graphName,
		Params:    httpapi.ParamsWire(dg.base),
		Seeds:     dg.seeds,
		Traces:    traces,
		TimeoutMs: bt.timeout.Milliseconds(),
		TraceID:   gtrace,
	}
	var gr httpapi.JobGroupResponse
	backoff := c.cfg.PollInterval
	for uploads := 0; ; {
		var err error
		gr, err = w.client.SubmitJobGroup(ctx, req)
		if err == nil {
			break
		}
		if ctx.Err() != nil {
			return canceledOutcomes(dg), nil
		}
		var apiErr *httpapi.APIError
		if !errors.As(err, &apiErr) || apiErr.Status >= http.StatusInternalServerError {
			// Queue saturation backs off on the same worker; every other
			// transport error or 5xx is a worker failure.
			if isQueueFull(err) {
				select {
				case <-time.After(backoff):
					backoff = min(2*backoff, 250*time.Millisecond)
					continue
				case <-ctx.Done():
					return canceledOutcomes(dg), nil
				}
			}
			return nil, err
		}
		if apiErr.Status == http.StatusNotFound && uploads < 2 {
			// The worker evicted our graph between upload and submit;
			// re-upload and retry.
			uploads++
			w.mu.Lock()
			delete(w.uploaded, dg.graphName)
			w.mu.Unlock()
			if err := c.ensureGraph(ctx, w, dg.graphName, pg); err != nil {
				if ctx.Err() != nil {
					return canceledOutcomes(dg), nil
				}
				return nil, err
			}
			continue
		}
		// Remaining 4xx are deterministic rejections: the whole group would
		// be rejected identically anywhere.
		return failedOutcomes(dg, apiErr.Message), nil
	}
	bt.noteGroupDispatched(dg, w, gr.ID)
	dispatchedAt := time.Now()
	c.log.Info("group dispatched", "event", "group_dispatch",
		"batch", bt.id, "trace", gtrace, "worker", w.url, "group", gr.ID,
		"cells", len(dg.idxs), "hedged", hedged)

	straggler := false
	for !gr.Terminal() {
		if d := c.stragglerThreshold(); d > 0 && !straggler && time.Since(dispatchedAt) > d {
			// Surfaced once per dispatch; with Hedge set the parent runGroup
			// loop acts on the same threshold.
			straggler = true
			c.log.Warn("group straggling", "event", "group_straggler",
				"batch", bt.id, "trace", gtrace, "worker", w.url, "group", gr.ID,
				"running_for", time.Since(dispatchedAt))
		}
		select {
		case <-ctx.Done():
			// Best-effort worker-side cancel on a fresh context — the attempt
			// context is already dead; the HTTP client timeout still bounds it.
			_, _ = w.client.CancelJobGroup(context.Background(), gr.ID)
			return canceledOutcomes(dg), nil
		case <-time.After(c.cfg.PollInterval):
		}
		gv, err := w.client.GetJobGroup(ctx, gr.ID)
		if err != nil {
			if ctx.Err() != nil {
				_, _ = w.client.CancelJobGroup(context.Background(), gr.ID)
				return canceledOutcomes(dg), nil
			}
			return nil, err
		}
		c.wireBytes.Add(uint64(gv.WireBytes))
		gr = gv
	}
	if len(gr.Cells) != len(dg.idxs) {
		// A shape mismatch is version skew, deterministic on any worker.
		return failedOutcomes(dg, fmt.Sprintf(
			"cluster: worker %s returned %d cells for a %d-seed group", w.url, len(gr.Cells), len(dg.idxs))), nil
	}
	outs := make([]cellOutcome, len(gr.Cells))
	for k, cw := range gr.Cells {
		res, err := cw.Result.ToResult()
		if err != nil {
			outs[k] = cellOutcome{state: service.Failed,
				errMsg: fmt.Sprintf("cluster: worker %s returned a bad result: %v", w.url, err)}
			continue
		}
		outs[k] = cellOutcome{
			state:    service.State(cw.State),
			cacheHit: cw.CacheHit,
			errMsg:   cw.Error,
			result:   res,
		}
	}
	return outs, nil
}

// noteGroupDispatched records where a group's cells are running, for cancel
// fan-out and the Submitted progress counter. Hedged and retried dispatches
// re-enter here: only a cell's first dispatch counts toward Submitted (so it
// never exceeds Total), the latest dispatch owns the cancel target, and
// cells a racing winner already finished are left untouched.
func (bt *cbatch) noteGroupDispatched(dg *dgroup, w *worker, groupID string) {
	bt.mu.Lock()
	defer bt.mu.Unlock()
	ref := fmt.Sprintf("w%d:%s", w.id, groupID)
	for _, i := range dg.idxs {
		m := &bt.cells[i]
		if m.state.Terminal() {
			continue
		}
		if m.jobRef == "" {
			bt.dispatched++
		}
		m.w = w
		m.jobID = groupID
		m.group = true
		m.jobRef = ref
		m.state = service.Running
	}
}

// finishCells records a winning attempt's outcomes, idempotently per cell:
// a cell already terminal (finished by a hedge race's winner, or by an
// earlier cancellation) is left untouched. This guard is what turns
// at-least-once dispatch into an at-most-once merge (DESIGN.md §6a).
func (bt *cbatch) finishCells(dg *dgroup, outs []cellOutcome) {
	bt.mu.Lock()
	defer bt.mu.Unlock()
	for k, i := range dg.idxs {
		m := &bt.cells[i]
		if m.state.Terminal() {
			continue
		}
		out := outs[k]
		m.state = out.state
		m.cacheHit = out.cacheHit
		m.err = out.errMsg
		m.result = out.result
		m.w = nil
		bt.terminal++
		switch out.state {
		case service.Done:
			bt.done++
		case service.Failed:
			bt.failed++
		case service.Canceled:
			bt.canceled++
		}
		if out.cacheHit {
			bt.cacheHits++
		}
	}
	bt.signalProgressLocked()
}

// noteDispatched records where a cell is running, for cancel fan-out and the
// Submitted progress counter. Retries re-enter here; only a cell's first
// dispatch counts toward Submitted, which therefore never exceeds Total —
// same as the single-node view.
func (bt *cbatch) noteDispatched(i int, w *worker, jobID string) {
	bt.mu.Lock()
	defer bt.mu.Unlock()
	m := &bt.cells[i]
	if m.jobRef == "" {
		bt.dispatched++
	}
	m.w = w
	m.jobID = jobID
	m.jobRef = fmt.Sprintf("w%d:%s", w.id, jobID)
	m.state = service.Running
}

// finishCell records a cell's terminal outcome.
func (bt *cbatch) finishCell(i int, out cellOutcome) {
	bt.mu.Lock()
	defer bt.mu.Unlock()
	m := &bt.cells[i]
	m.state = out.state
	m.cacheHit = out.cacheHit
	m.err = out.errMsg
	m.result = out.result
	m.w = nil
	bt.terminal++
	switch out.state {
	case service.Done:
		bt.done++
	case service.Failed:
		bt.failed++
	case service.Canceled:
		bt.canceled++
	}
	if out.cacheHit {
		bt.cacheHits++
	}
	bt.signalProgressLocked()
}

// GetBatch returns a snapshot of the batch with the given ID.
func (c *Coordinator) GetBatch(id string) (service.BatchView, bool) {
	c.mu.Lock()
	bt, ok := c.batches[id]
	c.mu.Unlock()
	if !ok {
		return service.BatchView{}, false
	}
	return bt.view(), true
}

// WaitBatch blocks until the batch is terminal or d has elapsed (d <= 0
// returns immediately), then returns the current snapshot.
func (c *Coordinator) WaitBatch(id string, d time.Duration) (service.BatchView, bool) {
	c.mu.Lock()
	bt, ok := c.batches[id]
	c.mu.Unlock()
	if !ok {
		return service.BatchView{}, false
	}
	if d > 0 {
		select {
		case <-bt.doneCh:
		case <-time.After(d):
		}
	}
	return bt.view(), true
}

// WaitCell blocks until cell index of batch id is terminal, the whole batch
// is terminal, or d has elapsed, then returns that cell's snapshot. The
// second return is false only when the batch or index does not exist. This
// is the long-poll primitive behind incremental result streaming: the
// streaming handler walks indices in order, parking here until each settles.
func (c *Coordinator) WaitCell(id string, index int, d time.Duration) (service.BatchCellView, bool) {
	c.mu.Lock()
	bt, ok := c.batches[id]
	c.mu.Unlock()
	if !ok {
		return service.BatchCellView{}, false
	}
	deadline := time.Now().Add(d)
	for {
		bt.mu.Lock()
		if index < 0 || index >= len(bt.cells) {
			bt.mu.Unlock()
			return service.BatchCellView{}, false
		}
		cv := bt.cellViewLocked(index)
		settled := cv.State.Terminal() || bt.state.Terminal()
		progress := bt.progress
		bt.mu.Unlock()
		remain := time.Until(deadline)
		if settled || remain <= 0 {
			return cv, true
		}
		timer := time.NewTimer(remain)
		select {
		case <-progress:
		case <-bt.doneCh:
		case <-timer.C:
		}
		timer.Stop()
	}
}

// ListBatches returns a summary snapshot of every retained batch, oldest
// first.
func (c *Coordinator) ListBatches() []service.BatchView {
	c.mu.Lock()
	bts := make([]*cbatch, 0, len(c.batches))
	for _, bt := range c.batches {
		bts = append(bts, bt)
	}
	c.mu.Unlock()
	slices.SortFunc(bts, func(x, y *cbatch) int { return strings.Compare(x.id, y.id) })
	out := make([]service.BatchView, len(bts))
	for i, bt := range bts {
		out[i] = bt.summary()
	}
	return out
}

// CancelBatch stops a running batch: undispatched cells are dropped, cells
// in flight on workers are canceled best-effort, finished cells keep their
// results. Finished batches return service.ErrBatchFinished.
func (c *Coordinator) CancelBatch(id string) (service.BatchView, error) {
	c.mu.Lock()
	bt, ok := c.batches[id]
	c.mu.Unlock()
	if !ok {
		return service.BatchView{}, service.ErrBatchNotFound
	}
	bt.mu.Lock()
	if bt.state.Terminal() {
		bt.mu.Unlock()
		return bt.view(), service.ErrBatchFinished
	}
	bt.cancelReq = true
	type target struct {
		w     *worker
		jobID string
		group bool
	}
	var targets []target
	seen := make(map[string]bool)
	for i := range bt.cells {
		m := &bt.cells[i]
		if m.w == nil || m.state.Terminal() || seen[m.jobRef] {
			continue
		}
		// Grouped cells share one jobRef per dispatched group; cancel each
		// worker-side group once, not once per member.
		seen[m.jobRef] = true
		targets = append(targets, target{m.w, m.jobID, m.group})
	}
	bt.mu.Unlock()
	// Wake every slot wait and poll loop first, then chase down in-flight
	// worker jobs with no batch lock held.
	bt.cancel()
	for _, t := range targets {
		if t.group {
			_, _ = t.w.client.CancelJobGroup(context.Background(), t.jobID)
		} else {
			_, _ = t.w.client.CancelJob(context.Background(), t.jobID)
		}
	}
	return bt.view(), nil
}

// summary is view without cell and group detail.
func (bt *cbatch) summary() service.BatchView {
	bt.mu.Lock()
	defer bt.mu.Unlock()
	return service.BatchView{
		ID:         bt.id,
		TraceID:    bt.traceID,
		Tenant:     bt.tenant,
		State:      bt.state,
		Total:      len(bt.cells),
		Submitted:  bt.dispatched,
		Done:       bt.done,
		Failed:     bt.failed,
		Canceled:   bt.canceled,
		CacheHits:  bt.cacheHits,
		CreatedAt:  bt.created,
		FinishedAt: bt.finished,
	}
}

// cellViewLocked snapshots one cell; bt.mu must be held.
func (bt *cbatch) cellViewLocked(i int) service.BatchCellView {
	m := &bt.cells[i]
	return service.BatchCellView{
		Index:    i,
		Graph:    m.cell.Graph,
		Algo:     m.cell.Algo,
		Params:   m.cell.Params,
		JobID:    m.jobRef,
		TraceID:  obs.ChildTraceID(bt.traceID, i),
		State:    m.state,
		CacheHit: m.cacheHit,
		Error:    m.err,
		Result:   m.result,
	}
}

func (bt *cbatch) view() service.BatchView {
	bt.mu.Lock()
	defer bt.mu.Unlock()
	v := service.BatchView{
		ID:         bt.id,
		TraceID:    bt.traceID,
		Tenant:     bt.tenant,
		State:      bt.state,
		Total:      len(bt.cells),
		Submitted:  bt.dispatched,
		Done:       bt.done,
		Failed:     bt.failed,
		Canceled:   bt.canceled,
		CacheHits:  bt.cacheHits,
		CreatedAt:  bt.created,
		FinishedAt: bt.finished,
		Cells:      make([]service.BatchCellView, len(bt.cells)),
	}
	for i := range bt.cells {
		v.Cells[i] = bt.cellViewLocked(i)
	}
	if bt.state.Terminal() {
		// Cells are immutable once terminal; aggregate once with the same
		// grouping code as the single-node engine and reuse across polls.
		if bt.groups == nil {
			bt.groups = service.GroupCells(v.Cells)
		}
		v.Groups = bt.groups
	}
	return v
}
