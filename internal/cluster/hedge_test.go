package cluster

import (
	"testing"
	"time"

	"repro/internal/service"
)

// This file pins the hedged re-dispatch semantics (DESIGN.md §6a): a group
// running past the straggler threshold is speculatively re-dispatched to the
// next healthy worker, the first result wins, the loser's duplicates are
// discarded by the at-most-once merge, and a merely slow worker is never
// treated as failed.

// TestHedgeBeatsSlowOwner: every graph is owned by a worker whose every
// response is delayed well past the straggler threshold, so each group's
// primary attempt straggles and its hedge — on the fast second worker — wins.
// The batch must complete with results identical to a single-node run, zero
// worker failures, and no leaked graph pins.
func TestHedgeBeatsSlowOwner(t *testing.T) {
	graphs := []namedSource{{"hedge-g", gnpSource(60, 0.1, 71, 32)}}
	spec := service.BatchSpec{
		Graphs: []string{"hedge-g"},
		Algos:  []string{"mwm2", "maxis"},
		Seeds:  []uint64{1, 2, 3, 4, 5, 6, 7, 8},
	}
	want := singleNodeRun(t, graphs, spec)
	if want.State != service.BatchDone || want.Done != want.Total {
		t.Fatalf("reference run %+v", want)
	}

	coord, workers := newFleet(t, 2, func(cfg *Config) {
		cfg.Hedge = true
		cfg.StragglerAfter = 50 * time.Millisecond
		cfg.GroupSize = 4
	})
	putGen(t, coord, "hedge-g", graphs[0].src)

	// Slow down the graph's owner only: with one graph the placement view
	// names exactly one worker, and the other one stays fast, so every hedge
	// has a clear winner.
	view := coord.View()
	if len(view.Placements) != 1 || view.Placements[0].Worker == "" {
		t.Fatalf("placements %+v", view.Placements)
	}
	owner := findWorker(t, workers, view.Placements[0].Worker)
	owner.proxy.delay = 300 * time.Millisecond
	owner.proxy.set(faultSlow)

	v, err := coord.SubmitBatch(spec)
	if err != nil {
		t.Fatal(err)
	}
	fin := waitBatch(t, coord, v.ID)
	if fin.State != service.BatchDone || fin.Done != fin.Total {
		t.Fatalf("hedged batch: %+v", fin)
	}

	if n := coord.hedgesFired.Load(); n == 0 {
		t.Fatal("no hedges fired against a straggling owner")
	}
	// At-least-once dispatch: the hedged groups' cells went out twice, and
	// the at-most-once merge discarded the losers' copies.
	if d, total := coord.cellsDispatched.Load(), uint64(fin.Total); d <= total {
		t.Fatalf("cells dispatched %d, want > %d (hedges double-dispatch)", d, total)
	}
	if won, wasted, fired := coord.hedgesWon.Load(), coord.hedgesWasted.Load(), coord.hedgesFired.Load(); won+wasted != fired {
		t.Fatalf("hedge accounting: %d won + %d wasted != %d fired", won, wasted, fired)
	}
	// Slow is not down: hedging must never mark the straggler failed.
	if n := coord.workerFailures.Load(); n != 0 {
		t.Fatalf("%d worker failures on a merely slow fleet", n)
	}

	assertSameOutcomes(t, want, fin)

	// Zero leaked pins: with the batch terminal the graph must be deletable.
	if err := coord.DeleteGraph("hedge-g"); err != nil {
		t.Fatalf("delete after hedged batch: %v", err)
	}
}

// TestHedgeOffNeverFires: the same slow-owner topology without Hedge still
// completes (slow is below the request timeout) and dispatches each cell
// exactly once — the straggler threshold only logs when hedging is off.
func TestHedgeOffNeverFires(t *testing.T) {
	coord, workers := newFleet(t, 2, func(cfg *Config) {
		cfg.StragglerAfter = 50 * time.Millisecond
		cfg.GroupSize = 4
	})
	putGen(t, coord, "nohedge-g", gnpSource(40, 0.12, 81, 32))

	view := coord.View()
	owner := findWorker(t, workers, view.Placements[0].Worker)
	owner.proxy.delay = 150 * time.Millisecond
	owner.proxy.set(faultSlow)

	fin := clusterRun(t, coord, nil, service.BatchSpec{
		Graphs: []string{"nohedge-g"},
		Algos:  []string{"mwm2"},
		Seeds:  []uint64{1, 2, 3, 4},
	})
	if fin.State != service.BatchDone || fin.Done != fin.Total {
		t.Fatalf("batch without hedging: %+v", fin)
	}
	if n := coord.hedgesFired.Load(); n != 0 {
		t.Fatalf("%d hedges fired with Hedge off", n)
	}
	if d := coord.cellsDispatched.Load(); d != uint64(fin.Total) {
		t.Fatalf("cells dispatched %d, want exactly %d", d, fin.Total)
	}
}
