package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a := New(42)
	b := New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams with equal seeds diverged at step %d", i)
		}
	}
}

func TestDistinctSeedsDiverge(t *testing.T) {
	a := New(1)
	b := New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("streams with different seeds produced %d identical outputs", same)
	}
}

func TestSplitIndependence(t *testing.T) {
	parent := New(7)
	c1 := parent.Split(1)
	c2 := parent.Split(2)
	c1again := parent.Split(1)

	// Same id must reproduce the same child stream.
	for i := 0; i < 100; i++ {
		if c1.Uint64() != c1again.Uint64() {
			t.Fatalf("Split(1) not reproducible at step %d", i)
		}
	}
	// Different ids must diverge.
	c1 = parent.Split(1)
	same := 0
	for i := 0; i < 100; i++ {
		if c1.Uint64() == c2.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("children with different ids produced %d identical outputs", same)
	}
}

func TestSplitDoesNotAdvanceParent(t *testing.T) {
	a := New(9)
	b := New(9)
	_ = a.Split(5)
	_ = a.Split(6)
	for i := 0; i < 10; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("Split advanced the parent stream")
		}
	}
}

func TestIntnBounds(t *testing.T) {
	s := New(3)
	for _, n := range []int{1, 2, 3, 7, 100, 1 << 20} {
		for i := 0; i < 200; i++ {
			v := s.Intn(n)
			if v < 0 || v >= n {
				t.Fatalf("Intn(%d) = %d out of range", n, v)
			}
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestIntnUniformity(t *testing.T) {
	s := New(11)
	const n, trials = 10, 100000
	counts := make([]int, n)
	for i := 0; i < trials; i++ {
		counts[s.Intn(n)]++
	}
	want := float64(trials) / n
	for v, c := range counts {
		if math.Abs(float64(c)-want) > 5*math.Sqrt(want) {
			t.Errorf("value %d drawn %d times, want about %.0f", v, c, want)
		}
	}
}

func TestFloat64Range(t *testing.T) {
	s := New(5)
	sum := 0.0
	const trials = 100000
	for i := 0; i < trials; i++ {
		f := s.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 = %v out of [0,1)", f)
		}
		sum += f
	}
	mean := sum / trials
	if math.Abs(mean-0.5) > 0.01 {
		t.Errorf("Float64 mean = %.4f, want about 0.5", mean)
	}
}

func TestBernoulli(t *testing.T) {
	s := New(13)
	for _, p := range []float64{0, 0.25, 0.5, 0.75, 1} {
		hits := 0
		const trials = 50000
		for i := 0; i < trials; i++ {
			if s.Bernoulli(p) {
				hits++
			}
		}
		got := float64(hits) / trials
		if math.Abs(got-p) > 0.02 {
			t.Errorf("Bernoulli(%v) frequency = %.4f", p, got)
		}
	}
	if s.Bernoulli(-1) {
		t.Error("Bernoulli(-1) returned true")
	}
	if !s.Bernoulli(2) {
		t.Error("Bernoulli(2) returned false")
	}
}

func TestPermIsPermutation(t *testing.T) {
	s := New(17)
	check := func(n uint8) bool {
		p := s.Perm(int(n))
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= int(n) || seen[v] {
				return false
			}
			seen[v] = true
		}
		return len(p) == int(n)
	}
	if err := quick.Check(check, nil); err != nil {
		t.Error(err)
	}
}

func TestIntRange(t *testing.T) {
	s := New(19)
	for i := 0; i < 1000; i++ {
		v := s.IntRange(5, 9)
		if v < 5 || v > 9 {
			t.Fatalf("IntRange(5,9) = %d", v)
		}
	}
	if got := s.IntRange(4, 4); got != 4 {
		t.Fatalf("IntRange(4,4) = %d", got)
	}
}

func TestExpFloat64Positive(t *testing.T) {
	s := New(23)
	sum := 0.0
	const trials = 50000
	for i := 0; i < trials; i++ {
		v := s.ExpFloat64()
		if v < 0 {
			t.Fatalf("ExpFloat64 = %v < 0", v)
		}
		sum += v
	}
	if mean := sum / trials; math.Abs(mean-1) > 0.05 {
		t.Errorf("ExpFloat64 mean = %.4f, want about 1", mean)
	}
}

func TestMul64(t *testing.T) {
	cases := []struct {
		a, b, hi, lo uint64
	}{
		{0, 0, 0, 0},
		{1, 1, 0, 1},
		{math.MaxUint64, 2, 1, math.MaxUint64 - 1},
		{1 << 32, 1 << 32, 1, 0},
		{math.MaxUint64, math.MaxUint64, math.MaxUint64 - 1, 1},
	}
	for _, c := range cases {
		hi, lo := mul64(c.a, c.b)
		if hi != c.hi || lo != c.lo {
			t.Errorf("mul64(%d,%d) = (%d,%d), want (%d,%d)", c.a, c.b, hi, lo, c.hi, c.lo)
		}
	}
}

func TestShuffle(t *testing.T) {
	s := New(29)
	xs := []int{0, 1, 2, 3, 4, 5, 6, 7}
	s.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] })
	seen := make([]bool, len(xs))
	for _, v := range xs {
		if seen[v] {
			t.Fatalf("Shuffle duplicated element %d", v)
		}
		seen[v] = true
	}
}
