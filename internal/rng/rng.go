// Package rng provides a deterministic, splittable pseudo-random number
// generator used by every randomized algorithm in this repository.
//
// Distributed algorithms in the CONGEST model assume each node holds an
// independent source of randomness. To make whole-network executions
// reproducible (and identical between the sequential and the parallel
// simulator engines), each node derives its own Stream from a master seed and
// its node ID via SplitMix64. Streams never share state, so stepping nodes in
// any order — or concurrently — yields the same execution.
//
// Layer (DESIGN.md §2): rng is a leaf substrate with no repository imports.
//
// Concurrency and ownership: a single Stream is mutable and NOT safe for
// concurrent use — confine each Stream to one goroutine. Concurrency is
// achieved by splitting (New per node ID, SplitOff), never by sharing.
package rng

import "math"

// splitmix64 advances the given state and returns the next output value.
// SplitMix64 passes BigCrush and is the standard seeding function for the
// xoshiro family; we use it both as a seeder and as the core generator
// because its statistical quality is more than sufficient for simulation.
func splitmix64(state *uint64) uint64 {
	*state += 0x9e3779b97f4a7c15
	z := *state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Stream is a single deterministic random stream. The zero value is a valid
// stream seeded with 0. Stream is not safe for concurrent use; give each
// goroutine (each simulated node) its own Stream.
type Stream struct {
	state uint64
}

// New returns a Stream seeded from seed.
func New(seed uint64) *Stream {
	s := &Stream{state: seed}
	// Scramble once so that nearby seeds produce unrelated streams.
	splitmix64(&s.state)
	return s
}

// Split derives an independent child stream identified by id. Calling Split
// with distinct ids yields streams that are statistically independent of each
// other and of the parent, without advancing the parent.
func (s *Stream) Split(id uint64) *Stream {
	child := s.SplitOff(id)
	return &child
}

// SplitOff is Split returning the child by value, for callers that store
// their streams in preallocated arenas instead of one heap object per node.
func (s *Stream) SplitOff(id uint64) Stream {
	st := s.state
	// Mix the id into a copy of the parent state through two rounds.
	st ^= splitmix64(&st) + id*0x9e3779b97f4a7c15
	child := Stream{state: st}
	splitmix64(&child.state)
	return child
}

// Uint64 returns the next 64 uniformly random bits.
func (s *Stream) Uint64() uint64 {
	return splitmix64(&s.state)
}

// Intn returns a uniformly random int in [0, n). It panics if n <= 0,
// mirroring math/rand.
func (s *Stream) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn called with n <= 0")
	}
	// Lemire's nearly-divisionless bounded sampling.
	bound := uint64(n)
	for {
		v := s.Uint64()
		hi, lo := mul64(v, bound)
		if lo >= bound || lo >= (-bound)%bound {
			return int(hi)
		}
	}
}

// mul64 returns the 128-bit product of a and b as (hi, lo).
func mul64(a, b uint64) (hi, lo uint64) {
	const mask = 0xffffffff
	aLo, aHi := a&mask, a>>32
	bLo, bHi := b&mask, b>>32
	t := aLo*bHi + (aLo*bLo)>>32
	w1 := t & mask
	w2 := t >> 32
	w1 += aHi * bLo
	hi = aHi*bHi + w2 + (w1 >> 32)
	lo = a * b
	return hi, lo
}

// Float64 returns a uniformly random float64 in [0, 1).
func (s *Stream) Float64() float64 {
	return float64(s.Uint64()>>11) * (1.0 / (1 << 53))
}

// Bernoulli returns true with probability p. Values of p outside [0, 1] are
// clamped.
func (s *Stream) Bernoulli(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return s.Float64() < p
}

// Perm returns a uniformly random permutation of [0, n).
func (s *Stream) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := s.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// Shuffle randomly permutes the first n elements using the provided swap
// function, in the manner of math/rand.Shuffle.
func (s *Stream) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := s.Intn(i + 1)
		swap(i, j)
	}
}

// IntRange returns a uniformly random int in [lo, hi] inclusive. It panics if
// hi < lo.
func (s *Stream) IntRange(lo, hi int) int {
	if hi < lo {
		panic("rng: IntRange called with hi < lo")
	}
	return lo + s.Intn(hi-lo+1)
}

// ExpFloat64 returns an exponentially distributed float64 with rate 1.
func (s *Stream) ExpFloat64() float64 {
	for {
		u := s.Float64()
		if u > 0 {
			return -math.Log(u)
		}
	}
}
