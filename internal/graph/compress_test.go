package graph

import (
	"slices"
	"testing"

	"repro/internal/rng"
)

func TestCompressAdjacencyRoundTrip(t *testing.T) {
	graphs := map[string]*Graph{
		"empty":    buildWeighted(t, nil, nil),
		"isolated": buildWeighted(t, []int64{1, 1, 1}, nil),
		"star":     Star(9),
		"path":     Path(17),
		"gnp":      GNP(200, 0.1, rng.New(5)),
		"dense":    GNP(60, 0.9, rng.New(6)),
	}
	for name, g := range graphs {
		ca := g.CompressAdjacency()
		if ca.N() != g.N() {
			t.Fatalf("%s: N = %d, want %d", name, ca.N(), g.N())
		}
		var scratch []int32
		for v := 0; v < g.N(); v++ {
			scratch = ca.AppendNeighbors(v, scratch[:0])
			if !slices.Equal(scratch, g.Neighbors(v)) {
				t.Fatalf("%s: node %d neighbors: got %v, want %v", name, v, scratch, g.Neighbors(v))
			}
		}
	}
}

func TestCompressAdjacencySavesSpace(t *testing.T) {
	// Sparse graphs with locality compress well below 4 bytes/arc; the test
	// only pins "smaller than raw", the invariant the memory accounting in
	// DESIGN.md relies on.
	g := Cycle(10_000)
	ca := g.CompressAdjacency()
	raw := 4 * 2 * g.M()
	if ca.Bytes() >= raw {
		t.Fatalf("compressed %d bytes ≥ raw %d bytes on a ring", ca.Bytes(), raw)
	}
}

func TestDecodeAllDeltaVarint(t *testing.T) {
	g := GNP(128, 0.08, rng.New(9))
	ca := g.CompressAdjacency()
	offsets, neighbors, _ := g.CSR()
	out, err := decodeAllDeltaVarint(ca.offs, ca.blob, offsets, len(neighbors))
	if err != nil {
		t.Fatal(err)
	}
	if !slices.Equal(out, neighbors) {
		t.Fatal("bulk decode disagrees with the raw CSR neighbor array")
	}

	// Corrupt index: count mismatch against offsets must be caught.
	badOffs := slices.Clone(ca.offs)
	if len(badOffs) > 1 && badOffs[1] > 0 {
		badOffs[1] = 0 // node 0's segment becomes empty
		if _, err := decodeAllDeltaVarint(badOffs, ca.blob, offsets, len(neighbors)); err == nil {
			t.Fatal("neighbor-count mismatch not detected")
		}
	}
	// Out-of-range index.
	badOffs = slices.Clone(ca.offs)
	badOffs[len(badOffs)-1] = int64(len(ca.blob)) + 10
	if _, err := decodeAllDeltaVarint(badOffs, ca.blob, offsets, len(neighbors)); err == nil {
		t.Fatal("out-of-range segment index not detected")
	}
}
