package graph

import (
	"bytes"
	"strings"
	"testing"
)

// buildWeighted is a test helper assembling a graph from explicit node
// weights and weighted edges.
func buildWeighted(t *testing.T, nodeW []int64, edges [][3]int64) *Graph {
	t.Helper()
	b := NewBuilder(len(nodeW))
	for v, w := range nodeW {
		b.SetNodeWeight(v, w)
	}
	for _, e := range edges {
		if err := b.AddWeightedEdge(int(e[0]), int(e[1]), e[2]); err != nil {
			t.Fatalf("AddWeightedEdge(%v): %v", e, err)
		}
	}
	g, err := b.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	return g
}

// sameGraph asserts two graphs agree on sizes, node weights and the
// canonical (insertion-ordered) edge list with weights.
func sameGraph(t *testing.T, got, want *Graph) {
	t.Helper()
	if got.N() != want.N() || got.M() != want.M() {
		t.Fatalf("sizes: got (%d,%d), want (%d,%d)", got.N(), got.M(), want.N(), want.M())
	}
	for v := 0; v < want.N(); v++ {
		if got.NodeWeight(v) != want.NodeWeight(v) {
			t.Fatalf("node %d weight: got %d, want %d", v, got.NodeWeight(v), want.NodeWeight(v))
		}
	}
	ge, we := got.Edges(), want.Edges()
	for id := range we {
		if ge[id] != we[id] || got.EdgeWeight(id) != want.EdgeWeight(id) {
			t.Fatalf("edge %d: got %v w=%d, want %v w=%d",
				id, ge[id], got.EdgeWeight(id), we[id], want.EdgeWeight(id))
		}
	}
}

func TestBinaryRoundTrip(t *testing.T) {
	cases := []struct {
		name  string
		nodeW []int64
		edges [][3]int64
	}{
		{"empty", nil, nil},
		{"isolated", []int64{7, 1, 9223372036854775807}, nil},
		{"triangle", []int64{1, 2, 3}, [][3]int64{{0, 1, 5}, {1, 2, 7}, {0, 2, 1}}},
		{"reversed-endpoints", []int64{1, 1, 1, 1}, [][3]int64{{3, 0, 2}, {2, 1, 9223372036854775807}}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			g := buildWeighted(t, tc.nodeW, tc.edges)
			var buf bytes.Buffer
			if err := EncodeBinary(&buf, g); err != nil {
				t.Fatalf("EncodeBinary: %v", err)
			}
			n, m, err := BinaryHeader(buf.Bytes())
			if err != nil || n != g.N() || m != g.M() {
				t.Fatalf("BinaryHeader: got (%d,%d,%v), want (%d,%d,nil)", n, m, err, g.N(), g.M())
			}
			g2, err := DecodeBinary(buf.Bytes())
			if err != nil {
				t.Fatalf("DecodeBinary: %v", err)
			}
			sameGraph(t, g2, g)
			// Re-encoding the decoded graph must reproduce the bytes exactly:
			// the format has one canonical rendering per graph.
			var buf2 bytes.Buffer
			if err := EncodeBinary(&buf2, g2); err != nil {
				t.Fatalf("re-EncodeBinary: %v", err)
			}
			if !bytes.Equal(buf.Bytes(), buf2.Bytes()) {
				t.Fatalf("re-encode not byte-identical:\n% x\nvs\n% x", buf.Bytes(), buf2.Bytes())
			}
		})
	}
}

// TestBinaryMatchesTextCodec pins the two codecs to the same graph space: a
// graph shuttled through the binary format and one shuttled through the text
// format must come out identical.
func TestBinaryMatchesTextCodec(t *testing.T) {
	g := buildWeighted(t, []int64{4, 1, 6, 2, 9},
		[][3]int64{{0, 1, 3}, {1, 2, 1}, {4, 0, 8}, {2, 3, 2}, {3, 4, 5}})
	var bin, txt bytes.Buffer
	if err := EncodeBinary(&bin, g); err != nil {
		t.Fatalf("EncodeBinary: %v", err)
	}
	if err := Encode(&txt, g); err != nil {
		t.Fatalf("Encode: %v", err)
	}
	gb, err := DecodeBinary(bin.Bytes())
	if err != nil {
		t.Fatalf("DecodeBinary: %v", err)
	}
	gt, err := Decode(bytes.NewReader(txt.Bytes()))
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	sameGraph(t, gb, gt)
}

func TestDecodeBinaryRejects(t *testing.T) {
	valid := func(mut func([]byte) []byte) []byte {
		g := buildWeighted(t, []int64{1, 2, 3}, [][3]int64{{0, 1, 5}, {1, 2, 7}})
		var buf bytes.Buffer
		if err := EncodeBinary(&buf, g); err != nil {
			t.Fatalf("EncodeBinary: %v", err)
		}
		return mut(buf.Bytes())
	}
	cases := []struct {
		name string
		data []byte
		want string
	}{
		{"empty", nil, "bad magic"},
		{"bad magic", []byte("RGB9\x00\x00"), "bad magic"},
		{"magic only", []byte("RGB1"), "node count"},
		{"truncated payload", valid(func(b []byte) []byte { return b[:len(b)-1] }), "payload bytes follow"},
		{"trailing bytes", valid(func(b []byte) []byte { return append(b, 0x01, 0x01, 0x01, 0x01) }), "trailing"},
		{"zero node weight", []byte("RGB1\x01\x00\x00"), "non-positive weight"},
		{"zero edge weight", []byte("RGB1\x02\x01\x01\x01\x00\x01\x00"), "non-positive weight"},
		{"self loop", []byte("RGB1\x02\x01\x01\x01\x00\x00\x01"), "self"},
		{"endpoint out of range", []byte("RGB1\x02\x01\x01\x01\x00\x05\x01"), "out of range"},
		{"undeclared payload", []byte("RGB1\x01\x02\x01"), "payload bytes follow"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := DecodeBinary(tc.data)
			if err == nil {
				t.Fatalf("DecodeBinary accepted %q", tc.data)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}

// FuzzGraphBinaryRoundTrip fuzzes the binary codec the same way
// FuzzGraphEncodeDecode fuzzes the text one, with the cross-codec check the
// ISSUE asks for: any input DecodeBinary accepts must (a) re-encode to the
// identical byte stream after a second decode (fixed point) and (b) survive a
// trip through the text codec unchanged, so the two formats accept exactly
// the same graphs. The committed seed corpus lives in
// testdata/fuzz/FuzzGraphBinaryRoundTrip.
func FuzzGraphBinaryRoundTrip(f *testing.F) {
	seeds := []struct {
		nodeW []int64
		edges [][3]int64
	}{
		{nil, nil},
		{[]int64{7}, nil},
		{[]int64{1, 2, 3}, [][3]int64{{0, 1, 5}, {1, 2, 7}}},
		{[]int64{9223372036854775807, 1}, [][3]int64{{0, 1, 9223372036854775807}}},
	}
	for _, s := range seeds {
		b := NewBuilder(len(s.nodeW))
		for v, w := range s.nodeW {
			b.SetNodeWeight(v, w)
		}
		for _, e := range s.edges {
			b.MustAddEdge(int(e[0]), int(e[1]))
		}
		var buf bytes.Buffer
		if err := EncodeBinary(&buf, b.MustBuild()); err != nil {
			f.Fatal(err)
		}
		f.Add(buf.Bytes())
	}
	f.Add([]byte("RGB1"))
	f.Add([]byte("not a graph"))
	f.Fuzz(func(t *testing.T, data []byte) {
		if n, m, err := BinaryHeader(data); err == nil && (n > fuzzSizeCap || m > fuzzSizeCap) {
			t.Skip("header beyond the fuzz size cap")
		}
		g, err := DecodeBinary(data)
		if err != nil {
			return // malformed inputs only need to be rejected cleanly
		}
		var bin bytes.Buffer
		if err := EncodeBinary(&bin, g); err != nil {
			t.Fatalf("encoding a decoded graph: %v", err)
		}
		g2, err := DecodeBinary(bin.Bytes())
		if err != nil {
			t.Fatalf("re-decoding an encoded graph: %v", err)
		}
		var bin2 bytes.Buffer
		if err := EncodeBinary(&bin2, g2); err != nil {
			t.Fatalf("re-encoding: %v", err)
		}
		if !bytes.Equal(bin.Bytes(), bin2.Bytes()) {
			t.Fatalf("binary encoding is not a fixed point after one round trip")
		}
		sameGraph(t, g2, g)

		// Cross-check against the text codec: the same graph must survive a
		// text round trip bit-identically.
		var txt bytes.Buffer
		if err := Encode(&txt, g); err != nil {
			t.Fatalf("text-encoding a binary-decoded graph: %v", err)
		}
		gt, err := Decode(bytes.NewReader(txt.Bytes()))
		if err != nil {
			t.Fatalf("text codec rejected a graph the binary codec accepted: %v", err)
		}
		sameGraph(t, gt, g)
	})
}
