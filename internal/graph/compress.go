package graph

import (
	"encoding/binary"
	"fmt"
)

// CompressedAdjacency is a delta-varint rendering of the CSR neighbor array:
// each node's strictly-ascending neighbor segment is stored as
// uvarint(first), then uvarint(gap-1) per successor. Sparse real-world
// graphs compress to 1–2 bytes per arc against the raw 4, which matters in
// two places: the RGD1 on-disk format's compressed mode (fewer pages to
// fault in) and the engine's memory-bound CompressedNeighbors mode, where
// per-step decoding trades CPU for never touching the raw 4-byte-per-arc
// array at all.
//
// A CompressedAdjacency is immutable after construction and safe for
// concurrent readers; decoding writes only into the caller's scratch buffer.
type CompressedAdjacency struct {
	n    int
	offs []int64 // n+1 byte offsets into blob
	blob []byte
}

// CompressAdjacency encodes g's neighbor segments. One pass, O(arcs).
func (g *Graph) CompressAdjacency() *CompressedAdjacency {
	ca := &CompressedAdjacency{
		n:    g.n,
		offs: make([]int64, g.n+1),
		blob: make([]byte, 0, len(g.neighbors)+g.n), // ≥1 byte per arc heuristic
	}
	for v := 0; v < g.n; v++ {
		ca.blob = appendDeltaVarint(ca.blob, g.Neighbors(v))
		ca.offs[v+1] = int64(len(ca.blob))
	}
	return ca
}

// appendDeltaVarint encodes one strictly-ascending segment onto buf.
func appendDeltaVarint(buf []byte, seg []int32) []byte {
	if len(seg) == 0 {
		return buf
	}
	buf = binary.AppendUvarint(buf, uint64(seg[0]))
	prev := seg[0]
	for _, u := range seg[1:] {
		buf = binary.AppendUvarint(buf, uint64(u-prev-1))
		prev = u
	}
	return buf
}

// N returns the node count.
func (ca *CompressedAdjacency) N() int { return ca.n }

// Bytes returns the compressed payload size in bytes (excluding the offset
// index), for memory accounting against 4·arcs raw.
func (ca *CompressedAdjacency) Bytes() int { return len(ca.blob) }

// AppendNeighbors decodes node v's neighbor segment onto buf (usually
// buf[:0] of a reused scratch slice) and returns the extended slice, sorted
// ascending exactly like Graph.Neighbors.
func (ca *CompressedAdjacency) AppendNeighbors(v int, buf []int32) []int32 {
	b := ca.blob[ca.offs[v]:ca.offs[v+1]]
	if len(b) == 0 {
		return buf
	}
	x, k := binary.Uvarint(b)
	prev := int32(x)
	buf = append(buf, prev)
	for k < len(b) {
		d, k2 := binary.Uvarint(b[k:])
		prev += int32(d) + 1
		buf = append(buf, prev)
		k += k2
	}
	return buf
}

// decodeAllDeltaVarint expands a full compressed-neighbor payload into raw
// CSR form, validating against the expected offsets. It is the load path of
// RGD1's compressed mode.
func decodeAllDeltaVarint(offs []int64, blob []byte, csrOffsets []int32, arcs int) ([]int32, error) {
	out := make([]int32, 0, arcs)
	n := len(offs) - 1
	for v := 0; v < n; v++ {
		lo, hi := offs[v], offs[v+1]
		if lo < 0 || hi < lo || hi > int64(len(blob)) {
			return nil, fmt.Errorf("graph: rgd1: compressed-neighbor index corrupt at node %d", v)
		}
		want := int(csrOffsets[v+1] - csrOffsets[v])
		b := blob[lo:hi]
		got := 0
		var prev int32
		for k := 0; k < len(b); {
			d, k2 := binary.Uvarint(b[k:])
			if k2 <= 0 {
				return nil, fmt.Errorf("graph: rgd1: truncated varint in neighbor segment of node %d", v)
			}
			if got == 0 {
				prev = int32(d)
			} else {
				prev += int32(d) + 1
			}
			out = append(out, prev)
			got++
			k += k2
		}
		if got != want {
			return nil, fmt.Errorf("graph: rgd1: node %d decodes %d neighbors, offsets say %d", v, got, want)
		}
	}
	return out, nil
}
