package graph

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/rng"
)

func TestReadEdgeListBasic(t *testing.T) {
	in := "# SNAP-style comment\n% MatrixMarket-style comment\n\n0 1\n1 2 7\n\t3 0 2\n"
	g, err := ReadEdgeList(strings.NewReader(in), ReadOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != 4 || g.M() != 3 {
		t.Fatalf("got (%d,%d) nodes/edges, want (4,3)", g.N(), g.M())
	}
	want := buildWeighted(t, []int64{1, 1, 1, 1}, [][3]int64{{0, 1, 1}, {1, 2, 7}, {3, 0, 2}})
	sameGraph(t, g, want)
}

func TestReadEdgeListAutoGrowsIsolatedPrefix(t *testing.T) {
	// Node 5 appears only as an endpoint; nodes 0-4 exist implicitly.
	g, err := ReadEdgeList(strings.NewReader("5 6\n"), ReadOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != 7 {
		t.Fatalf("n = %d, want 7 (max id + 1)", g.N())
	}
	if g.Degree(0) != 0 || g.Degree(5) != 1 {
		t.Fatalf("degrees: deg(0)=%d deg(5)=%d, want 0 and 1", g.Degree(0), g.Degree(5))
	}
}

func TestReadEdgeListSelfLoops(t *testing.T) {
	in := "0 0\n0 1\n"
	if _, err := ReadEdgeList(strings.NewReader(in), ReadOptions{}); err == nil {
		t.Fatal("self-loop accepted without SkipSelfLoops")
	}
	g, err := ReadEdgeList(strings.NewReader(in), ReadOptions{SkipSelfLoops: true})
	if err != nil {
		t.Fatal(err)
	}
	if g.M() != 1 {
		t.Fatalf("m = %d, want 1 (self-loop dropped)", g.M())
	}
}

func TestReadEdgeListDedup(t *testing.T) {
	// Directed dumps list both arc directions; DedupEdges keeps the first.
	in := "0 1 5\n1 0 9\n1 2 3\n"
	if _, err := ReadEdgeList(strings.NewReader(in), ReadOptions{}); err == nil {
		t.Fatal("duplicate edge accepted without DedupEdges")
	}
	g, err := ReadEdgeList(strings.NewReader(in), ReadOptions{DedupEdges: true})
	if err != nil {
		t.Fatal(err)
	}
	if g.M() != 2 {
		t.Fatalf("m = %d, want 2", g.M())
	}
	if id, ok := g.EdgeID(0, 1); !ok || g.EdgeWeight(id) != 5 {
		t.Fatalf("edge (0,1): want first occurrence's weight 5")
	}
}

func TestReadEdgeListCaps(t *testing.T) {
	if _, err := ReadEdgeList(strings.NewReader("0 99\n"), ReadOptions{MaxNodes: 10}); err == nil {
		t.Fatal("node cap not enforced")
	}
	if _, err := ReadEdgeList(strings.NewReader("0 1\n1 2\n2 3\n"), ReadOptions{MaxEdges: 2}); err == nil {
		t.Fatal("edge cap not enforced")
	}
}

func TestReadEdgeListRejectsMalformed(t *testing.T) {
	cases := map[string]string{
		"one-field":     "7\n",
		"four-fields":   "0 1 2 3\n",
		"negative-id":   "-1 2\n",
		"zero-weight":   "0 1 0\n",
		"neg-weight":    "0 1 -5\n",
		"alpha":         "a b\n",
		"id-overflow":   "0 99999999999999999999\n",
		"huge-id":       "0 4294967296\n", // beyond int32
		"trailing-junk": "0 1x\n",
	}
	for name, in := range cases {
		if _, err := ReadEdgeList(strings.NewReader(in), ReadOptions{}); err == nil {
			t.Errorf("%s: accepted %q", name, in)
		}
	}
}

func TestEdgeListRoundTrip(t *testing.T) {
	g := GNP(64, 0.15, rng.New(11))
	AssignUniformEdgeWeights(g, 100, rng.New(12))
	var buf bytes.Buffer
	if err := WriteEdgeList(&buf, g); err != nil {
		t.Fatal(err)
	}
	g2, err := ReadEdgeList(bytes.NewReader(buf.Bytes()), ReadOptions{})
	if err != nil {
		t.Fatal(err)
	}
	sameGraph(t, g2, g)
}

func TestWriteEdgeListRejectsUnrepresentable(t *testing.T) {
	weighted := buildWeighted(t, []int64{2, 1}, [][3]int64{{0, 1, 1}})
	if err := WriteEdgeList(&bytes.Buffer{}, weighted); err == nil {
		t.Fatal("non-unit node weight written silently")
	}
	trailing := buildWeighted(t, []int64{1, 1, 1}, [][3]int64{{0, 1, 1}})
	if err := WriteEdgeList(&bytes.Buffer{}, trailing); err == nil {
		t.Fatal("trailing isolated node written silently (cannot round-trip)")
	}
}

func TestReadMatrixMarketVariants(t *testing.T) {
	cases := []struct {
		name string
		in   string
		n, m int
	}{
		{"pattern-symmetric", "%%MatrixMarket matrix coordinate pattern symmetric\n3 3 2\n2 1\n3 2\n", 3, 2},
		{"integer-general-both-triangles", "%%MatrixMarket matrix coordinate integer general\n% comment\n3 3 4\n1 2 5\n2 1 5\n2 3 7\n3 2 7\n", 3, 2},
		{"real-structural", "%%MatrixMarket matrix coordinate real symmetric\n2 2 1\n2 1 0.5e1\n", 2, 1},
		{"diagonal-skipped", "%%MatrixMarket matrix coordinate pattern general\n2 2 2\n1 1\n2 1\n", 2, 1},
		{"rectangular", "%%MatrixMarket matrix coordinate pattern general\n2 4 1\n1 4\n", 4, 1},
	}
	for _, tc := range cases {
		g, err := ReadMatrixMarket(strings.NewReader(tc.in), ReadOptions{})
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		if g.N() != tc.n || g.M() != tc.m {
			t.Fatalf("%s: got (%d,%d), want (%d,%d)", tc.name, g.N(), g.M(), tc.n, tc.m)
		}
	}
	// Real values are structural only: weights come out as 1.
	g, err := ReadMatrixMarket(strings.NewReader("%%MatrixMarket matrix coordinate real symmetric\n2 2 1\n2 1 3.25\n"), ReadOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if g.EdgeWeight(0) != 1 {
		t.Fatalf("real value treated as weight: got %d, want 1", g.EdgeWeight(0))
	}
}

func TestReadMatrixMarketRejects(t *testing.T) {
	cases := map[string]string{
		"no-banner":       "3 3 1\n1 2\n",
		"bad-object":      "%%MatrixMarket vector coordinate pattern general\n",
		"array-format":    "%%MatrixMarket matrix array integer general\n",
		"complex-field":   "%%MatrixMarket matrix coordinate complex general\n2 2 1\n1 2 1 0\n",
		"skew-symmetry":   "%%MatrixMarket matrix coordinate integer skew-symmetric\n2 2 1\n2 1 1\n",
		"missing-size":    "%%MatrixMarket matrix coordinate pattern general\n",
		"entry-oob":       "%%MatrixMarket matrix coordinate pattern general\n2 2 1\n1 3\n",
		"zero-index":      "%%MatrixMarket matrix coordinate pattern general\n2 2 1\n0 1\n",
		"too-few-entries": "%%MatrixMarket matrix coordinate pattern general\n3 3 2\n1 2\n",
		"too-many":        "%%MatrixMarket matrix coordinate pattern general\n3 3 1\n1 2\n2 3\n",
		"pattern-value":   "%%MatrixMarket matrix coordinate pattern general\n2 2 1\n1 2 5\n",
		"integer-missing": "%%MatrixMarket matrix coordinate integer general\n2 2 1\n1 2\n",
		"neg-weight":      "%%MatrixMarket matrix coordinate integer general\n2 2 1\n1 2 -3\n",
	}
	for name, in := range cases {
		if _, err := ReadMatrixMarket(strings.NewReader(in), ReadOptions{}); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestMatrixMarketRoundTrip(t *testing.T) {
	g := GNP(48, 0.2, rng.New(21))
	AssignUniformEdgeWeights(g, 50, rng.New(22))
	var buf bytes.Buffer
	if err := WriteMatrixMarket(&buf, g); err != nil {
		t.Fatal(err)
	}
	g2, err := ReadMatrixMarket(bytes.NewReader(buf.Bytes()), ReadOptions{})
	if err != nil {
		t.Fatal(err)
	}
	sameGraph(t, g2, g)
}

// TestStreamMatchesTextCodec is the ingestion property test: a graph shipped
// through the text formats must be indistinguishable from the same graph
// shipped through the canonical Encode/Decode codec. Fingerprints hash the
// structure sameGraph compares, so structural identity here is fingerprint
// identity at the store layer.
func TestStreamMatchesTextCodec(t *testing.T) {
	for _, seed := range []uint64{1, 2, 3} {
		g := GNP(80, 0.1, rng.New(seed))
		AssignUniformEdgeWeights(g, 64, rng.New(seed+100))

		var canon bytes.Buffer
		if err := Encode(&canon, g); err != nil {
			t.Fatal(err)
		}
		viaCodec, err := Decode(bytes.NewReader(canon.Bytes()))
		if err != nil {
			t.Fatal(err)
		}

		var el, mm bytes.Buffer
		if err := WriteEdgeList(&el, g); err != nil {
			t.Fatal(err)
		}
		if err := WriteMatrixMarket(&mm, g); err != nil {
			t.Fatal(err)
		}
		viaEL, err := ReadEdgeList(bytes.NewReader(el.Bytes()), ReadOptions{})
		if err != nil {
			t.Fatal(err)
		}
		viaMM, err := ReadMatrixMarket(bytes.NewReader(mm.Bytes()), ReadOptions{})
		if err != nil {
			t.Fatal(err)
		}
		sameGraph(t, viaEL, viaCodec)
		sameGraph(t, viaMM, viaCodec)
	}
}
