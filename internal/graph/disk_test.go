package graph

import (
	"bytes"
	"encoding/binary"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/rng"
)

// diskGraphs is the shared round-trip case set for the RGD1 tests.
func diskGraphs(t *testing.T) map[string]*Graph {
	t.Helper()
	gnp := GNP(300, 0.05, rng.New(41))
	AssignUniformNodeWeights(gnp, 64, rng.New(42))
	AssignUniformEdgeWeights(gnp, 64, rng.New(43))
	return map[string]*Graph{
		"empty":    buildWeighted(t, nil, nil),
		"isolated": buildWeighted(t, []int64{5, 9223372036854775807}, nil),
		"triangle": buildWeighted(t, []int64{1, 2, 3}, [][3]int64{{0, 1, 5}, {1, 2, 7}, {0, 2, 1}}),
		"star":     Star(33),
		"weighted": gnp,
	}
}

func TestDiskRoundTrip(t *testing.T) {
	for _, compress := range []bool{false, true} {
		for name, g := range diskGraphs(t) {
			path := filepath.Join(t.TempDir(), name+".rgd1")
			if err := WriteDisk(path, g, DiskOptions{CompressNeighbors: compress}); err != nil {
				t.Fatalf("%s (compress=%t): WriteDisk: %v", name, compress, err)
			}
			d, err := OpenDisk(path)
			if err != nil {
				t.Fatalf("%s (compress=%t): OpenDisk: %v", name, compress, err)
			}
			if d.Compressed != compress {
				t.Fatalf("%s: Compressed = %t, want %t", name, d.Compressed, compress)
			}
			sameGraph(t, d.Graph, g)
			if d.Graph.MaxDegree() != g.MaxDegree() {
				t.Fatalf("%s: maxDeg = %d, want %d", name, d.Graph.MaxDegree(), g.MaxDegree())
			}
			if err := d.Verify(); err != nil {
				t.Fatalf("%s: Verify: %v", name, err)
			}
			if err := d.Close(); err != nil {
				t.Fatalf("%s: Close: %v", name, err)
			}
			if err := d.Close(); err != nil {
				t.Fatalf("%s: second Close not idempotent: %v", name, err)
			}
		}
	}
}

// TestDiskMatchesTextCodec is the on-disk property test: OpenDisk must yield
// a graph structurally identical to the same graph round-tripped through the
// canonical Encode/Decode codec (and therefore fingerprint-identical at the
// store layer).
func TestDiskMatchesTextCodec(t *testing.T) {
	g := GNP(150, 0.08, rng.New(77))
	AssignUniformNodeWeights(g, 32, rng.New(78))
	AssignUniformEdgeWeights(g, 32, rng.New(79))

	var canon bytes.Buffer
	if err := Encode(&canon, g); err != nil {
		t.Fatal(err)
	}
	viaCodec, err := Decode(bytes.NewReader(canon.Bytes()))
	if err != nil {
		t.Fatal(err)
	}

	path := filepath.Join(t.TempDir(), "g.rgd1")
	if err := WriteDisk(path, g, DiskOptions{}); err != nil {
		t.Fatal(err)
	}
	d, err := OpenDisk(path)
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	sameGraph(t, d.Graph, viaCodec)
}

// TestDiskWeightMutationIsPrivate pins the MAP_PRIVATE contract: writing a
// weight on an opened graph must not leak into the file.
func TestDiskWeightMutationIsPrivate(t *testing.T) {
	g := buildWeighted(t, []int64{1, 2}, [][3]int64{{0, 1, 3}})
	path := filepath.Join(t.TempDir(), "g.rgd1")
	if err := WriteDisk(path, g, DiskOptions{}); err != nil {
		t.Fatal(err)
	}
	d, err := OpenDisk(path)
	if err != nil {
		t.Fatal(err)
	}
	d.SetNodeWeight(0, 99)
	d.SetEdgeWeight(0, 99)
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	d2, err := OpenDisk(path)
	if err != nil {
		t.Fatal(err)
	}
	defer d2.Close()
	if d2.NodeWeight(0) != 1 || d2.EdgeWeight(0) != 3 {
		t.Fatalf("mutation leaked into the file: nodeW=%d edgeW=%d", d2.NodeWeight(0), d2.EdgeWeight(0))
	}
}

func TestDiskWriteIsAtomic(t *testing.T) {
	g := Star(5)
	dir := t.TempDir()
	path := filepath.Join(dir, "g.rgd1")
	if err := WriteDisk(path, g, DiskOptions{}); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(path + ".tmp"); !os.IsNotExist(err) {
		t.Fatalf("temp file left behind: %v", err)
	}
	// Overwrite with a different graph: readers must see one or the other,
	// and after return, the new one.
	g2 := Cycle(8)
	if err := WriteDisk(path, g2, DiskOptions{}); err != nil {
		t.Fatal(err)
	}
	d, err := OpenDisk(path)
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	sameGraph(t, d.Graph, g2)
}

// corruptAt flips one byte of a file at offset.
func corruptAt(t *testing.T, path string, off int64, b byte) {
	t.Helper()
	blob, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	blob[off] ^= b
	if err := os.WriteFile(path, blob, 0o644); err != nil {
		t.Fatal(err)
	}
}

func TestOpenDiskRejectsCorruption(t *testing.T) {
	g := GNP(64, 0.1, rng.New(55))
	write := func(t *testing.T) string {
		path := filepath.Join(t.TempDir(), "g.rgd1")
		if err := WriteDisk(path, g, DiskOptions{}); err != nil {
			t.Fatal(err)
		}
		return path
	}

	t.Run("bad-magic", func(t *testing.T) {
		path := write(t)
		corruptAt(t, path, 0, 0xff)
		if _, err := OpenDisk(path); err == nil {
			t.Fatal("opened a file with corrupt magic")
		}
	})
	t.Run("unknown-flags", func(t *testing.T) {
		path := write(t)
		corruptAt(t, path, 4, 0x80)
		if _, err := OpenDisk(path); err == nil {
			t.Fatal("opened a file with unknown flags")
		}
	})
	t.Run("truncated", func(t *testing.T) {
		path := write(t)
		blob, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, blob[:len(blob)-diskPage], 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := OpenDisk(path); err == nil {
			t.Fatal("opened a truncated file")
		}
	})
	t.Run("empty", func(t *testing.T) {
		path := filepath.Join(t.TempDir(), "g.rgd1")
		if err := os.WriteFile(path, nil, 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := OpenDisk(path); err == nil {
			t.Fatal("opened an empty file")
		}
	})
	t.Run("neighbor-out-of-range", func(t *testing.T) {
		path := write(t)
		blob, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		// Section 1 (neighbors) starts at the table's second entry.
		off, _ := diskTableEntry(blob, 1)
		binary.LittleEndian.PutUint32(blob[off:], uint32(g.N()+100))
		if err := os.WriteFile(path, blob, 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := OpenDisk(path); err == nil {
			t.Fatal("opened a file whose neighbor array points out of range")
		}
	})
	t.Run("checksum-only-verify", func(t *testing.T) {
		// A flipped weight byte passes OpenDisk's bounds checks (weights are
		// unconstrained there) but must fail Verify's checksum.
		path := write(t)
		blob, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		off, _ := diskTableEntry(blob, 4) // nodeW section
		blob[off] ^= 0x01
		if err := os.WriteFile(path, blob, 0o644); err != nil {
			t.Fatal(err)
		}
		d, err := OpenDisk(path)
		if err != nil {
			t.Fatalf("bounds-only open rejected a weight flip: %v", err)
		}
		defer d.Close()
		if err := d.Verify(); err == nil {
			t.Fatal("Verify missed a checksum mismatch")
		}
	})
}

func TestDecodeDiskImage(t *testing.T) {
	g := GNP(64, 0.1, rng.New(66))
	path := filepath.Join(t.TempDir(), "g.rgd1")
	if err := WriteDisk(path, g, DiskOptions{CompressNeighbors: true}); err != nil {
		t.Fatal(err)
	}
	blob, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeDisk(blob)
	if err != nil {
		t.Fatal(err)
	}
	sameGraph(t, got, g)
	// DecodeDisk runs full verification, so any bit flip in a section fails.
	blob[diskHeaderSize] ^= 0x01
	if _, err := DecodeDisk(blob); err == nil {
		t.Fatal("DecodeDisk accepted a corrupted image")
	}
}
