package graph

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
)

// This file is the compact binary graph codec used on the coordinator→worker
// wire (DESIGN.md §6a). The text format (Encode/Decode) stays the canonical
// debug path — human-readable, fuzz-hardened, consumed by cmd/distmatch —
// while the binary format exists purely to make bulk uploads cheap: a
// varint-packed stream is typically 4-6× smaller than the text rendering and
// decodes without any line scanning or integer parsing.
//
// Layout (all integers unsigned LEB128 varints):
//
//	magic "RGB1" (4 bytes)
//	n, m
//	w(0) … w(n-1)              node weights
//	u v w                      per edge, in insertion order
//
// Edges are serialized in insertion order — the order Graph.Edges reports and
// the order that defines dense edge IDs — so a decoded graph carries the same
// edge IDs, the same registry fingerprint and therefore the same cache keys
// and results as the original. Both codecs round-trip through Builder, so
// they accept and produce exactly the same graphs.

// binaryMagic brands a binary graph stream; the trailing 1 is the format
// version.
const binaryMagic = "RGB1"

// EncodeBinary writes g in the binary graph format.
func EncodeBinary(w io.Writer, g *Graph) error {
	// Sized for the common case of small varints; append grows as needed.
	buf := make([]byte, 0, len(binaryMagic)+10+2*g.N()+6*g.M())
	buf = append(buf, binaryMagic...)
	buf = binary.AppendUvarint(buf, uint64(g.N()))
	buf = binary.AppendUvarint(buf, uint64(g.M()))
	for v := 0; v < g.N(); v++ {
		buf = binary.AppendUvarint(buf, uint64(g.NodeWeight(v)))
	}
	for id, e := range g.Edges() {
		buf = binary.AppendUvarint(buf, uint64(e.U))
		buf = binary.AppendUvarint(buf, uint64(e.V))
		buf = binary.AppendUvarint(buf, uint64(g.EdgeWeight(id)))
	}
	_, err := w.Write(buf)
	return err
}

// readUvarint decodes one varint at data[off:], returning the value and the
// next offset.
func readUvarint(data []byte, off int, what string) (uint64, int, error) {
	v, n := binary.Uvarint(data[off:])
	if n <= 0 {
		return 0, 0, fmt.Errorf("graph: binary: truncated or overlong %s at offset %d", what, off)
	}
	return v, off + n, nil
}

// BinaryHeader peeks the declared node and edge counts of a binary graph
// stream without decoding it. Untrusted callers (the HTTP layer) use it to
// enforce size caps before DecodeBinary allocates for the header's claim,
// exactly as checkGraphHeader guards the text format.
func BinaryHeader(data []byte) (n, m int, err error) {
	if len(data) < len(binaryMagic) || string(data[:len(binaryMagic)]) != binaryMagic {
		return 0, 0, fmt.Errorf("graph: binary: bad magic (want %q)", binaryMagic)
	}
	off := len(binaryMagic)
	un, off, err := readUvarint(data, off, "node count")
	if err != nil {
		return 0, 0, err
	}
	um, _, err := readUvarint(data, off, "edge count")
	if err != nil {
		return 0, 0, err
	}
	if un > math.MaxInt32 || um > math.MaxInt32 {
		return 0, 0, fmt.Errorf("graph: binary: sizes %d/%d exceed int32 range", un, um)
	}
	return int(un), int(um), nil
}

// DecodeBinaryStream parses the format written by EncodeBinary directly
// from r, without ever holding the raw stream in memory — the service
// boundary uses it so a large upload costs one Builder, not body + Builder.
// Non-positive maxNodes/maxEdges mean unlimited; the caps are enforced
// against the declared header before any size-proportional allocation.
// Unlike DecodeBinary, which sanity-checks the header's claim against the
// slice length, a stream has no length to check against, so the caps are
// the only pre-allocation guard: pass real ones for untrusted input.
func DecodeBinaryStream(r io.Reader, maxNodes, maxEdges int) (*Graph, error) {
	br := bufio.NewReaderSize(r, 64<<10)
	magic := make([]byte, len(binaryMagic))
	if _, err := io.ReadFull(br, magic); err != nil || string(magic) != binaryMagic {
		return nil, fmt.Errorf("graph: binary: bad magic (want %q)", binaryMagic)
	}
	rd := func(what string) (uint64, error) {
		v, err := binary.ReadUvarint(br)
		if err != nil {
			return 0, fmt.Errorf("graph: binary: truncated or overlong %s: %w", what, err)
		}
		return v, nil
	}
	un, err := rd("node count")
	if err != nil {
		return nil, err
	}
	um, err := rd("edge count")
	if err != nil {
		return nil, err
	}
	if un > math.MaxInt32 || um > math.MaxInt32 {
		return nil, fmt.Errorf("graph: binary: sizes %d/%d exceed int32 range", un, um)
	}
	if maxNodes > 0 && un > uint64(maxNodes) {
		return nil, fmt.Errorf("graph: binary: %d nodes exceeds cap %d", un, maxNodes)
	}
	if maxEdges > 0 && um > uint64(maxEdges) {
		return nil, fmt.Errorf("graph: binary: %d edges exceeds cap %d", um, maxEdges)
	}
	n, m := int(un), int(um)
	b := NewBuilderHint(n, m)
	for v := 0; v < n; v++ {
		uw, err := rd("node weight")
		if err != nil {
			return nil, err
		}
		if uw == 0 || uw > math.MaxInt64 {
			return nil, fmt.Errorf("graph: binary: node %d has non-positive weight", v)
		}
		b.SetNodeWeight(v, int64(uw))
	}
	for i := 0; i < m; i++ {
		uu, err := rd("edge endpoint")
		if err != nil {
			return nil, err
		}
		uv, err := rd("edge endpoint")
		if err != nil {
			return nil, err
		}
		uw, err := rd("edge weight")
		if err != nil {
			return nil, err
		}
		if uu > math.MaxInt32 || uv > math.MaxInt32 {
			return nil, fmt.Errorf("graph: binary: edge %d endpoints out of int32 range", i)
		}
		if uw == 0 || uw > math.MaxInt64 {
			return nil, fmt.Errorf("graph: binary: edge %d has non-positive weight", i)
		}
		if err := b.AddWeightedEdge(int(uu), int(uv), int64(uw)); err != nil {
			return nil, err
		}
	}
	if _, err := br.ReadByte(); err != io.EOF {
		return nil, fmt.Errorf("graph: binary: trailing bytes after the last edge")
	}
	return b.Build()
}

// DecodeBinary parses the format written by EncodeBinary. Trailing bytes
// after the last edge are rejected, so every accepted stream has exactly one
// canonical re-encoding.
//
// The declared sizes are bounded against the input length before anything is
// allocated (every node weight takes at least one byte, every edge at least
// three), so a tiny stream cannot claim a huge graph; absolute size caps are
// the caller's job, as with the text Decode.
func DecodeBinary(data []byte) (*Graph, error) {
	n, m, err := BinaryHeader(data)
	if err != nil {
		return nil, err
	}
	off := len(binaryMagic)
	_, off, _ = readUvarint(data, off, "node count")
	_, off, _ = readUvarint(data, off, "edge count")
	if rest := len(data) - off; rest < n+3*m {
		return nil, fmt.Errorf("graph: binary: header declares %d nodes / %d edges but only %d payload bytes follow", n, m, rest)
	}

	b := NewBuilder(n)
	b.Grow(m)
	for v := 0; v < n; v++ {
		var uw uint64
		uw, off, err = readUvarint(data, off, "node weight")
		if err != nil {
			return nil, err
		}
		if uw == 0 || uw > math.MaxInt64 {
			return nil, fmt.Errorf("graph: binary: node %d has non-positive weight", v)
		}
		b.SetNodeWeight(v, int64(uw))
	}
	for i := 0; i < m; i++ {
		var uu, uv, uw uint64
		if uu, off, err = readUvarint(data, off, "edge endpoint"); err != nil {
			return nil, err
		}
		if uv, off, err = readUvarint(data, off, "edge endpoint"); err != nil {
			return nil, err
		}
		if uw, off, err = readUvarint(data, off, "edge weight"); err != nil {
			return nil, err
		}
		if uu > math.MaxInt32 || uv > math.MaxInt32 {
			return nil, fmt.Errorf("graph: binary: edge %d endpoints out of int32 range", i)
		}
		if uw == 0 || uw > math.MaxInt64 {
			return nil, fmt.Errorf("graph: binary: edge %d has non-positive weight", i)
		}
		if err := b.AddWeightedEdge(int(uu), int(uv), int64(uw)); err != nil {
			return nil, err
		}
	}
	if off != len(data) {
		return nil, fmt.Errorf("graph: binary: %d trailing bytes after the last edge", len(data)-off)
	}
	return b.Build()
}
