package graph_test

// Benchmarks for the graph core hot paths: construction, adjacency queries,
// edge-ID lookup, and line-graph construction. These are the substrate costs
// every algorithm in the repository pays.

import (
	"fmt"
	"testing"

	"repro/internal/graph"
	"repro/internal/rng"
)

func BenchmarkBuildGNP(b *testing.B) {
	for _, n := range []int{1000, 10000} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				g := graph.GNP(n, 8/float64(n), rng.New(7))
				if g.N() != n {
					b.Fatal("bad graph")
				}
			}
		})
	}
}

func BenchmarkEdgeID(b *testing.B) {
	g := graph.GNP(10000, 8/10000.0, rng.New(7))
	edges := g.Edges()
	b.ReportAllocs()
	b.ResetTimer()
	hits := 0
	for i := 0; i < b.N; i++ {
		e := edges[i%len(edges)]
		if _, ok := g.EdgeID(e.U, e.V); ok {
			hits++
		}
	}
	if hits != b.N {
		b.Fatalf("missed %d lookups", b.N-hits)
	}
}

func BenchmarkNeighborScan(b *testing.B) {
	g := graph.GNP(10000, 8/10000.0, rng.New(7))
	b.ReportAllocs()
	b.ResetTimer()
	var sum int64
	for i := 0; i < b.N; i++ {
		for v := 0; v < g.N(); v++ {
			for _, u := range g.Neighbors(v) {
				sum += int64(u)
			}
		}
	}
	_ = sum
}

func BenchmarkLineGraph(b *testing.B) {
	g := graph.GNP(2000, 8/2000.0, rng.New(7))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		lg := g.LineGraph()
		if lg.N() != g.M() {
			b.Fatal("bad line graph")
		}
	}
}

// BenchmarkBuilderSmall pins the satellite contract of the streaming-
// ingestion work: adding capacity hints and EnsureNode auto-grow must not
// tax the small-graph construction path every algorithm test pays. The
// three variants build the same 64-node / 256-edge graph; "hint" should
// match or beat "exact", and "autogrow" bounds the cost of not announcing
// n up front.
func BenchmarkBuilderSmall(b *testing.B) {
	const n, m = 64, 256
	edges := make([][2]int, 0, m)
	r := rng.New(3)
	for len(edges) < m {
		u, v := r.Intn(n), r.Intn(n)
		if u != v {
			edges = append(edges, [2]int{u, v})
		}
	}
	build := func(b *testing.B, mk func() *graph.Builder, grow bool) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			bd := mk()
			for _, e := range edges {
				if grow {
					bd.EnsureNode(max(e[0], e[1]))
				}
				bd.AddWeightedEdge(e[0], e[1], 1)
			}
			bd.DedupEdges()
			if _, err := bd.Build(); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.Run("exact", func(b *testing.B) { build(b, func() *graph.Builder { return graph.NewBuilder(n) }, false) })
	b.Run("hint", func(b *testing.B) { build(b, func() *graph.Builder { return graph.NewBuilderHint(n, m) }, false) })
	b.Run("autogrow", func(b *testing.B) { build(b, func() *graph.Builder { return graph.NewBuilder(0) }, true) })
}
