package graph

import (
	"fmt"
	"math"

	"repro/internal/rng"
)

// GNP returns an Erdős–Rényi random graph G(n, p): each of the C(n,2)
// possible edges is present independently with probability p.
func GNP(n int, p float64, r *rng.Stream) *Graph {
	b := NewBuilder(n)
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			if r.Bernoulli(p) {
				b.MustAddEdge(u, v)
			}
		}
	}
	return b.MustBuild()
}

// GNPSparse returns an Erdős–Rényi G(n, p) graph drawn in O(n + m) expected
// time by geometric edge skipping [Batagelj–Brandes 2005]: instead of one
// Bernoulli trial per candidate pair (GNP's O(n²) loop, hopeless at n ≥ 10⁶),
// the walk jumps straight to the next present edge with a Geom(p) stride.
// The distribution matches GNP exactly, but the draw for a given stream
// differs — the two generators consume randomness differently — so seeds are
// not interchangeable between them.
func GNPSparse(n int, p float64, r *rng.Stream) *Graph {
	if p <= 0 || n < 2 {
		return NewBuilder(max(n, 0)).MustBuild()
	}
	if p >= 1 {
		return Complete(n)
	}
	b := NewBuilderHint(n, int(p*float64(n)*float64(n-1)/2))
	logq := math.Log1p(-p)
	// Enumerate pairs (v, w), w < v, in the order (1,0),(2,0),(2,1),(3,0),…
	// jumping ⌊log(1-U)/log(1-p)⌋ absent pairs between hits.
	v, w := 1, int64(-1)
	for v < n {
		w += 1 + int64(math.Log(1-r.Float64())/logq) // 1-U avoids log(0)
		for w >= int64(v) && v < n {
			w -= int64(v)
			v++
		}
		if v < n {
			b.MustAddEdge(int(w), v)
		}
	}
	return b.MustBuild()
}

// RandomRegular returns a random d-regular graph on n nodes using the
// configuration (pairing) model followed by double-edge-swap repair of
// self-loops and parallel edges. n·d must be even and d < n.
func RandomRegular(n, d int, r *rng.Stream) (*Graph, error) {
	if d < 0 || d >= n {
		return nil, fmt.Errorf("graph: RandomRegular requires 0 <= d < n, got d=%d n=%d", d, n)
	}
	if n*d%2 != 0 {
		return nil, fmt.Errorf("graph: RandomRegular requires n·d even, got n=%d d=%d", n, d)
	}
	if d == 0 {
		return NewBuilder(n).MustBuild(), nil
	}
	// Random pairing of stubs.
	stubs := make([]int, 0, n*d)
	for v := 0; v < n; v++ {
		for i := 0; i < d; i++ {
			stubs = append(stubs, v)
		}
	}
	r.Shuffle(len(stubs), func(i, j int) { stubs[i], stubs[j] = stubs[j], stubs[i] })
	pairs := make([]Edge, 0, n*d/2)
	for i := 0; i < len(stubs); i += 2 {
		pairs = append(pairs, Edge{U: stubs[i], V: stubs[i+1]})
	}
	present := make(map[Edge]int, len(pairs)) // canonical edge -> multiplicity
	bad := func(e Edge) bool { return e.U == e.V || present[e.Canon()] > 1 }
	for _, e := range pairs {
		if e.U != e.V {
			present[e.Canon()]++
		}
	}
	// Repair: repeatedly take a bad pair and swap endpoints with a random
	// other pair. Each successful swap strictly removes one defect, so this
	// converges quickly except for infeasible corner cases, which the attempt
	// cap turns into an error.
	maxSwaps := 200 * len(pairs) * (d + 1)
	for attempt := 0; attempt < maxSwaps; attempt++ {
		badIdx := -1
		for i, e := range pairs {
			if bad(e) {
				badIdx = i
				break
			}
		}
		if badIdx == -1 {
			b := NewBuilder(n)
			b.Grow(len(pairs))
			for _, e := range pairs {
				b.MustAddEdge(e.U, e.V)
			}
			return b.MustBuild(), nil
		}
		j := r.Intn(len(pairs))
		if j == badIdx {
			continue
		}
		a, b := pairs[badIdx], pairs[j]
		// Propose rewiring {a.U,a.V},{b.U,b.V} -> {a.U,b.U},{a.V,b.V}.
		n1 := Edge{U: a.U, V: b.U}
		n2 := Edge{U: a.V, V: b.V}
		if n1.U == n1.V || n2.U == n2.V {
			continue
		}
		if present[n1.Canon()] > 0 || present[n2.Canon()] > 0 || n1.Canon() == n2.Canon() {
			continue
		}
		for _, old := range []Edge{a, b} {
			if old.U != old.V {
				present[old.Canon()]--
			}
		}
		present[n1.Canon()]++
		present[n2.Canon()]++
		pairs[badIdx], pairs[j] = n1, n2
	}
	return nil, fmt.Errorf("graph: RandomRegular(n=%d, d=%d) did not converge", n, d)
}

// RandomBipartite returns a random bipartite graph with nl left nodes
// (IDs 0..nl-1) and nr right nodes (IDs nl..nl+nr-1); each left-right pair is
// an edge independently with probability p. side[v] is 0 for left, 1 for
// right.
func RandomBipartite(nl, nr int, p float64, r *rng.Stream) (g *Graph, side []int) {
	b := NewBuilder(nl + nr)
	side = make([]int, nl+nr)
	for v := nl; v < nl+nr; v++ {
		side[v] = 1
	}
	for u := 0; u < nl; u++ {
		for v := nl; v < nl+nr; v++ {
			if r.Bernoulli(p) {
				b.MustAddEdge(u, v)
			}
		}
	}
	return b.MustBuild(), side
}

// Star returns a star K_{1,n-1} with center 0. This is the example from §2.1
// on which naive simultaneous weight reduction fails.
func Star(n int) *Graph {
	b := NewBuilder(n)
	for v := 1; v < n; v++ {
		b.MustAddEdge(0, v)
	}
	return b.MustBuild()
}

// Path returns the path on n nodes 0-1-…-(n-1).
func Path(n int) *Graph {
	b := NewBuilder(n)
	for v := 0; v+1 < n; v++ {
		b.MustAddEdge(v, v+1)
	}
	return b.MustBuild()
}

// Cycle returns the cycle on n nodes; n must be at least 3.
func Cycle(n int) *Graph {
	if n < 3 {
		panic("graph: Cycle requires n >= 3")
	}
	b := NewBuilder(n)
	for v := 0; v+1 < n; v++ {
		b.MustAddEdge(v, v+1)
	}
	b.MustAddEdge(n-1, 0)
	return b.MustBuild()
}

// Complete returns the complete graph K_n.
func Complete(n int) *Graph {
	b := NewBuilder(n)
	b.Grow(n * (n - 1) / 2)
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			b.MustAddEdge(u, v)
		}
	}
	return b.MustBuild()
}

// Grid returns the rows×cols grid graph.
func Grid(rows, cols int) *Graph {
	b := NewBuilder(rows * cols)
	id := func(r, c int) int { return r*cols + c }
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			if c+1 < cols {
				b.MustAddEdge(id(r, c), id(r, c+1))
			}
			if r+1 < rows {
				b.MustAddEdge(id(r, c), id(r+1, c))
			}
		}
	}
	return b.MustBuild()
}

// RandomTree returns a uniformly random labeled tree on n nodes via a random
// Prüfer sequence.
func RandomTree(n int, r *rng.Stream) *Graph {
	b := NewBuilder(n)
	if n <= 1 {
		return b.MustBuild()
	}
	if n == 2 {
		b.MustAddEdge(0, 1)
		return b.MustBuild()
	}
	prufer := make([]int, n-2)
	deg := make([]int, n)
	for i := range prufer {
		prufer[i] = r.Intn(n)
		deg[prufer[i]]++
	}
	// Decode: repeatedly attach the smallest leaf to the next sequence node.
	inSeq := make([]int, n)
	for _, v := range prufer {
		inSeq[v]++
	}
	leafHeap := &intHeap{}
	for v := 0; v < n; v++ {
		if inSeq[v] == 0 {
			leafHeap.push(v)
		}
	}
	for _, v := range prufer {
		leaf := leafHeap.pop()
		b.MustAddEdge(leaf, v)
		inSeq[v]--
		if inSeq[v] == 0 {
			leafHeap.push(v)
		}
	}
	x := leafHeap.pop()
	y := leafHeap.pop()
	b.MustAddEdge(x, y)
	return b.MustBuild()
}

// intHeap is a tiny binary min-heap of ints used by the Prüfer decoder.
type intHeap struct{ xs []int }

func (h *intHeap) push(x int) {
	h.xs = append(h.xs, x)
	i := len(h.xs) - 1
	for i > 0 {
		p := (i - 1) / 2
		if h.xs[p] <= h.xs[i] {
			break
		}
		h.xs[p], h.xs[i] = h.xs[i], h.xs[p]
		i = p
	}
}

func (h *intHeap) pop() int {
	top := h.xs[0]
	last := len(h.xs) - 1
	h.xs[0] = h.xs[last]
	h.xs = h.xs[:last]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		small := i
		if l < len(h.xs) && h.xs[l] < h.xs[small] {
			small = l
		}
		if r < len(h.xs) && h.xs[r] < h.xs[small] {
			small = r
		}
		if small == i {
			break
		}
		h.xs[i], h.xs[small] = h.xs[small], h.xs[i]
		i = small
	}
	return top
}

// Caterpillar returns a path of spineLen nodes with legsPerSpine leaves
// attached to each spine node; a high-∆ low-diameter family useful for
// stressing the coloring-based algorithm.
func Caterpillar(spineLen, legsPerSpine int) *Graph {
	n := spineLen * (1 + legsPerSpine)
	b := NewBuilder(n)
	for s := 0; s+1 < spineLen; s++ {
		b.MustAddEdge(s, s+1)
	}
	next := spineLen
	for s := 0; s < spineLen; s++ {
		for l := 0; l < legsPerSpine; l++ {
			b.MustAddEdge(s, next)
			next++
		}
	}
	return b.MustBuild()
}

// AssignUniformNodeWeights draws each node weight uniformly from [1, maxW].
func AssignUniformNodeWeights(g *Graph, maxW int64, r *rng.Stream) {
	if maxW < 1 {
		panic("graph: maxW must be >= 1")
	}
	for v := 0; v < g.N(); v++ {
		g.SetNodeWeight(v, 1+int64(r.Intn(int(maxW))))
	}
}

// AssignUniformEdgeWeights draws each edge weight uniformly from [1, maxW].
func AssignUniformEdgeWeights(g *Graph, maxW int64, r *rng.Stream) {
	if maxW < 1 {
		panic("graph: maxW must be >= 1")
	}
	for id := 0; id < g.M(); id++ {
		g.SetEdgeWeight(id, 1+int64(r.Intn(int(maxW))))
	}
}
