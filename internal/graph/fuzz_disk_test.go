package graph

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzReadEdgeList fuzzes the SNAP edge-list parser: any input it accepts
// (under the fuzz size caps) must survive a WriteEdgeList/ReadEdgeList round
// trip unchanged. The committed seed corpus lives in
// testdata/fuzz/FuzzReadEdgeList.
func FuzzReadEdgeList(f *testing.F) {
	f.Add("0 1\n")
	f.Add("# comment\n% comment\n0 1 5\n1 2 7\n")
	f.Add("0 0\n")
	f.Add("3 4\n4 3 2\n")
	f.Add("0 1\n\t \n2 0 9223372036854775807\n")
	f.Add("-1 0\n")
	f.Add("0 99999999999999999999\n")
	f.Fuzz(func(t *testing.T, text string) {
		opts := ReadOptions{MaxNodes: fuzzSizeCap, MaxEdges: fuzzSizeCap, SkipSelfLoops: true, DedupEdges: true}
		g, err := ReadEdgeList(strings.NewReader(text), opts)
		if err != nil {
			return // malformed inputs only need a clean rejection
		}
		var buf bytes.Buffer
		if err := WriteEdgeList(&buf, g); err != nil {
			// The only legal refusal for a parser-produced graph is the
			// trailing-isolated-node case the format cannot represent.
			if g.N() > 0 && g.Degree(g.N()-1) == 0 {
				return
			}
			t.Fatalf("writing a parsed graph: %v", err)
		}
		g2, err := ReadEdgeList(bytes.NewReader(buf.Bytes()), ReadOptions{})
		if err != nil {
			t.Fatalf("re-reading a written graph: %v\nwritten:\n%s", err, buf.Bytes())
		}
		sameGraph(t, g2, g)
	})
}

// FuzzDiskCSR fuzzes the RGD1 image decoder through DecodeDisk, the
// full-verification entry point for untrusted bytes: arbitrary images must
// be rejected cleanly (no panics, no out-of-range aliasing), and any image
// it accepts must re-encode through WriteDisk/OpenDisk to the same graph.
// The committed seed corpus (valid images of small graphs plus corrupted
// variants) lives in testdata/fuzz/FuzzDiskCSR.
func FuzzDiskCSR(f *testing.F) {
	for i, g := range []*Graph{Star(4), Cycle(6)} {
		for _, compress := range []bool{false, true} {
			blob := diskImage(f, g, DiskOptions{CompressNeighbors: compress})
			f.Add(blob)
			if i == 0 && !compress {
				// One corrupted variant: flip a byte inside the first section.
				bad := bytes.Clone(blob)
				bad[diskHeaderSize] ^= 0x01
				f.Add(bad)
			}
		}
	}
	f.Add([]byte("RGD1"))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 1<<20 {
			t.Skip("image beyond the fuzz size cap")
		}
		g, err := DecodeDisk(data)
		if err != nil {
			return
		}
		// Re-encode in memory (no file, no fsync — fuzz throughput) and
		// decode again: the image must round-trip to the same graph.
		g2, err := DecodeDisk(diskImage(t, g, DiskOptions{}))
		if err != nil {
			t.Fatalf("re-decoding a re-encoded graph: %v", err)
		}
		sameGraph(t, g2, g)
	})
}

// diskImage renders g's RGD1 image into memory via the same layout and
// padding the file writer uses.
func diskImage(tb testing.TB, g *Graph, opts DiskOptions) []byte {
	tb.Helper()
	hdr, sections := diskLayout(g, opts)
	var buf bytes.Buffer
	if err := writePadded(&buf, hdr, sections); err != nil {
		tb.Fatal(err)
	}
	return buf.Bytes()
}
