// Package graph implements the undirected weighted graphs on which every
// algorithm in this repository operates.
//
// The paper's algorithms run on a node-weighted communication graph
// G = (V, w, E) (MaxIS, §2) and on its line graph L(G) whose node weights are
// G's edge weights (matching, §2.4). This package provides both, plus the
// generators used by the benchmark harness and the structural predicates
// (independent set, matching, bipartiteness) used to verify every algorithm's
// output.
//
// Nodes are identified by dense integers 0..N()-1; this doubles as the
// CONGEST model's assumption of unique O(log n)-bit identifiers.
//
// A Graph's topology is an immutable compressed-sparse-row (CSR) structure:
// flat offsets/neighbors/edge-ID arrays with each node's neighbor segment
// sorted ascending. Graphs are constructed through a Builder (see builder.go);
// once built, only node and edge weights may change. Adjacency tests and
// edge-ID lookups binary-search the sorted neighbor segment instead of
// consulting a hash map, and Neighbors/IncidentEdges return zero-copy
// subslices of the CSR arrays.
//
// Layer (DESIGN.md §2, §2a): graph is the bottom substrate; every other
// package imports it and it imports only internal/rng.
//
// Concurrency and ownership: topology is immutable after Build, so any
// number of goroutines may read a shared Graph concurrently — this is what
// lets the job service and the graph store hand one Graph to many
// concurrent runs. Node and edge weights are mutable and unsynchronized:
// mutate them only while the graph is exclusively owned (construction
// time), never once it is shared. Neighbors/IncidentEdges return views into
// the CSR arrays that must not be modified or retained past the graph's
// lifetime.
package graph

import (
	"fmt"
	"slices"
)

// Edge is an undirected edge in canonical form (U < V).
type Edge struct {
	U, V int
}

// Canon returns e with endpoints ordered so that U < V.
func (e Edge) Canon() Edge {
	if e.U > e.V {
		return Edge{U: e.V, V: e.U}
	}
	return e
}

// Other returns the endpoint of e that is not x. It panics if x is not an
// endpoint of e.
func (e Edge) Other(x int) int {
	switch x {
	case e.U:
		return e.V
	case e.V:
		return e.U
	}
	panic(fmt.Sprintf("graph: node %d is not an endpoint of edge %v", x, e))
}

// Graph is an undirected graph with integer node weights and integer edge
// weights, stored in CSR form. Topology is immutable after Build; node and
// edge weights are mutable through SetNodeWeight/SetEdgeWeight. Construct
// graphs with NewBuilder or the generators.
type Graph struct {
	n int
	// offsets has length n+1; node v's incident arcs occupy positions
	// offsets[v]..offsets[v+1] of neighbors and edgeIDs.
	offsets []int32
	// neighbors holds each node's adjacent node IDs, sorted ascending within
	// the node's segment. len(neighbors) == 2·M().
	neighbors []int32
	// edgeIDs[k] is the dense edge index of the arc {v, neighbors[k]}.
	edgeIDs []int32
	// mirror[k] is the position of the reverse arc: if position k holds the
	// arc v→u, mirror[k] holds u→v. The round engine uses it for
	// slot-addressed message delivery.
	mirror []int32
	nodeW  []int64
	edges  []Edge // insertion order; index = dense edge ID
	edgeW  []int64
	maxDeg int
}

// N returns the number of nodes.
func (g *Graph) N() int { return g.n }

// M returns the number of edges.
func (g *Graph) M() int { return len(g.edges) }

// Degree returns the degree of v.
func (g *Graph) Degree(v int) int { return int(g.offsets[v+1] - g.offsets[v]) }

// MaxDegree returns ∆(G), the maximum degree; 0 for an edgeless graph.
func (g *Graph) MaxDegree() int { return g.maxDeg }

// Neighbors returns the sorted neighbor IDs of v as a zero-copy view into the
// CSR arrays. The slice is owned by the graph and must not be modified.
func (g *Graph) Neighbors(v int) []int32 {
	return g.neighbors[g.offsets[v]:g.offsets[v+1]]
}

// IncidentEdges returns the dense edge IDs incident to v, aligned with
// Neighbors(v) (IncidentEdges(v)[i] is the edge to Neighbors(v)[i]). The
// slice is a zero-copy view owned by the graph and must not be modified.
func (g *Graph) IncidentEdges(v int) []int32 {
	return g.edgeIDs[g.offsets[v]:g.offsets[v+1]]
}

// CSR exposes the raw offsets/neighbors/edgeIDs arrays for consumers that
// iterate the whole structure (the round engine, fingerprinting, line-graph
// construction). The arrays are owned by the graph and must not be modified.
func (g *Graph) CSR() (offsets, neighbors, edgeIDs []int32) {
	return g.offsets, g.neighbors, g.edgeIDs
}

// MirrorArcs returns mirror[k] = position of the reverse arc of position k in
// the CSR arrays. The round engine uses it to deliver each message directly
// into the receiver's inbox slot. The slice is owned by the graph and must
// not be modified.
func (g *Graph) MirrorArcs() []int32 { return g.mirror }

// arcIndex returns the position of the arc u→v within u's CSR segment, or
// false if {u,v} is not an edge. It binary-searches the sorted segment.
func (g *Graph) arcIndex(u, v int) (int32, bool) {
	seg := g.neighbors[g.offsets[u]:g.offsets[u+1]]
	i, ok := slices.BinarySearch(seg, int32(v))
	return g.offsets[u] + int32(i), ok
}

// HasEdge reports whether {u, v} is an edge.
func (g *Graph) HasEdge(u, v int) bool {
	if u < 0 || u >= g.n || v < 0 || v >= g.n {
		return false
	}
	// Search from the lower-degree endpoint.
	if g.Degree(u) > g.Degree(v) {
		u, v = v, u
	}
	_, ok := g.arcIndex(u, v)
	return ok
}

// EdgeID returns the dense index of edge {u, v} and whether it exists. Edge
// indices identify nodes of the line graph.
func (g *Graph) EdgeID(u, v int) (int, bool) {
	if u < 0 || u >= g.n || v < 0 || v >= g.n {
		return 0, false
	}
	if g.Degree(u) > g.Degree(v) {
		u, v = v, u
	}
	k, ok := g.arcIndex(u, v)
	if !ok {
		return 0, false
	}
	return int(g.edgeIDs[k]), true
}

// EdgeByID returns the edge with dense index id.
func (g *Graph) EdgeByID(id int) Edge { return g.edges[id] }

// Edges returns the edge list in insertion order. The slice is owned by the
// graph and must not be modified.
func (g *Graph) Edges() []Edge { return g.edges }

// NodeWeight returns w(v).
func (g *Graph) NodeWeight(v int) int64 { return g.nodeW[v] }

// SetNodeWeight sets w(v). Weights must be positive: the paper assumes
// integer weights in [W] (§2.2).
func (g *Graph) SetNodeWeight(v int, w int64) {
	if w <= 0 {
		panic(fmt.Sprintf("graph: non-positive node weight %d", w))
	}
	g.nodeW[v] = w
}

// EdgeWeight returns the weight of edge id.
func (g *Graph) EdgeWeight(id int) int64 { return g.edgeW[id] }

// SetEdgeWeight sets the weight of edge id.
func (g *Graph) SetEdgeWeight(id int, w int64) {
	if w <= 0 {
		panic(fmt.Sprintf("graph: non-positive edge weight %d", w))
	}
	g.edgeW[id] = w
}

// MaxNodeWeight returns W = max_v w(v); 1 for an empty graph.
func (g *Graph) MaxNodeWeight() int64 {
	var w int64 = 1
	for _, x := range g.nodeW {
		if x > w {
			w = x
		}
	}
	return w
}

// MaxEdgeWeight returns the maximum edge weight; 1 if there are no edges.
func (g *Graph) MaxEdgeWeight() int64 {
	var w int64 = 1
	for _, x := range g.edgeW {
		if x > w {
			w = x
		}
	}
	return w
}

// TotalNodeWeight returns Σ_v w(v).
func (g *Graph) TotalNodeWeight() int64 {
	var s int64
	for _, x := range g.nodeW {
		s += x
	}
	return s
}

// Clone returns a graph sharing g's immutable topology with independent
// copies of the node and edge weights.
func (g *Graph) Clone() *Graph {
	c := *g
	c.nodeW = append([]int64(nil), g.nodeW...)
	c.edgeW = append([]int64(nil), g.edgeW...)
	return &c
}

// Validate checks internal consistency; it is used by generator tests and by
// the CLI when loading untrusted input.
func (g *Graph) Validate() error {
	if len(g.offsets) != g.n+1 || len(g.nodeW) != g.n {
		return fmt.Errorf("graph: inconsistent node arrays")
	}
	if len(g.edges) != len(g.edgeW) {
		return fmt.Errorf("graph: inconsistent edge arrays")
	}
	if len(g.neighbors) != 2*len(g.edges) || len(g.edgeIDs) != len(g.neighbors) || len(g.mirror) != len(g.neighbors) {
		return fmt.Errorf("graph: handshake violation: %d arcs, 2m=%d", len(g.neighbors), 2*len(g.edges))
	}
	for v := 0; v < g.n; v++ {
		if g.offsets[v] > g.offsets[v+1] {
			return fmt.Errorf("graph: offsets not monotone at node %d", v)
		}
		if g.nodeW[v] <= 0 {
			return fmt.Errorf("graph: node %d has non-positive weight %d", v, g.nodeW[v])
		}
		seg := g.Neighbors(v)
		for i, u := range seg {
			if i > 0 && seg[i-1] >= u {
				return fmt.Errorf("graph: neighbor segment of %d not strictly sorted", v)
			}
			if int(u) < 0 || int(u) >= g.n || int(u) == v {
				return fmt.Errorf("graph: bad neighbor %d of node %d", u, v)
			}
		}
	}
	for i, e := range g.edges {
		if e.U >= e.V {
			return fmt.Errorf("graph: edge %d = %v not canonical", i, e)
		}
		if got, ok := g.EdgeID(e.U, e.V); !ok || got != i {
			return fmt.Errorf("graph: edge index broken for %v", e)
		}
	}
	for k, mk := range g.mirror {
		if mk < 0 || int(mk) >= len(g.mirror) || int(g.mirror[mk]) != k {
			return fmt.Errorf("graph: mirror arc broken at position %d", k)
		}
	}
	return nil
}

// IsIndependentSet reports whether in[v] designates an independent set.
func (g *Graph) IsIndependentSet(in []bool) bool {
	for _, e := range g.edges {
		if in[e.U] && in[e.V] {
			return false
		}
	}
	return true
}

// IsMaximalIndependentSet reports whether in designates an independent set
// that cannot be extended: every node is in the set or adjacent to it.
func (g *Graph) IsMaximalIndependentSet(in []bool) bool {
	if !g.IsIndependentSet(in) {
		return false
	}
	for v := 0; v < g.n; v++ {
		if in[v] {
			continue
		}
		covered := false
		for _, u := range g.Neighbors(v) {
			if in[u] {
				covered = true
				break
			}
		}
		if !covered {
			return false
		}
	}
	return true
}

// SetWeight returns Σ_{v: in[v]} w(v).
func (g *Graph) SetWeight(in []bool) int64 {
	var s int64
	for v, ok := range in {
		if ok {
			s += g.nodeW[v]
		}
	}
	return s
}

// IsMatching reports whether the edge-index set m is a matching (no two
// chosen edges share an endpoint).
func (g *Graph) IsMatching(m []int) bool {
	used := make(map[int]bool, 2*len(m))
	for _, id := range m {
		if id < 0 || id >= len(g.edges) {
			return false
		}
		e := g.edges[id]
		if used[e.U] || used[e.V] {
			return false
		}
		used[e.U], used[e.V] = true, true
	}
	return true
}

// IsMaximalMatching reports whether m is a matching such that every edge of g
// shares an endpoint with some matched edge.
func (g *Graph) IsMaximalMatching(m []int) bool {
	if !g.IsMatching(m) {
		return false
	}
	used := make([]bool, g.n)
	for _, id := range m {
		e := g.edges[id]
		used[e.U], used[e.V] = true, true
	}
	for _, e := range g.edges {
		if !used[e.U] && !used[e.V] {
			return false
		}
	}
	return true
}

// MatchingWeight returns the total edge weight of the matching m.
func (g *Graph) MatchingWeight(m []int) int64 {
	var s int64
	for _, id := range m {
		s += g.edgeW[id]
	}
	return s
}

// MatchedMates returns mate[v] = u if {v,u} ∈ m, else -1.
func (g *Graph) MatchedMates(m []int) []int {
	mate := make([]int, g.n)
	for i := range mate {
		mate[i] = -1
	}
	for _, id := range m {
		e := g.edges[id]
		mate[e.U], mate[e.V] = e.V, e.U
	}
	return mate
}

// Bipartition attempts to 2-color g; it returns side[v] ∈ {0,1} and true on
// success, or nil and false if g has an odd cycle. Isolated components are
// assigned greedily starting from side 0.
func (g *Graph) Bipartition() ([]int, bool) {
	side := make([]int, g.n)
	for i := range side {
		side[i] = -1
	}
	queue := make([]int, 0, g.n)
	for s := 0; s < g.n; s++ {
		if side[s] != -1 {
			continue
		}
		side[s] = 0
		queue = append(queue[:0], s)
		for len(queue) > 0 {
			v := queue[0]
			queue = queue[1:]
			for _, u := range g.Neighbors(v) {
				if side[u] == -1 {
					side[u] = 1 - side[v]
					queue = append(queue, int(u))
				} else if side[u] == side[v] {
					return nil, false
				}
			}
		}
	}
	return side, true
}

// ConnectedComponents returns comp[v] = component index, and the number of
// components.
func (g *Graph) ConnectedComponents() ([]int, int) {
	comp := make([]int, g.n)
	for i := range comp {
		comp[i] = -1
	}
	c := 0
	queue := make([]int, 0, g.n)
	for s := 0; s < g.n; s++ {
		if comp[s] != -1 {
			continue
		}
		comp[s] = c
		queue = append(queue[:0], s)
		for len(queue) > 0 {
			v := queue[0]
			queue = queue[1:]
			for _, u := range g.Neighbors(v) {
				if comp[u] == -1 {
					comp[u] = c
					queue = append(queue, int(u))
				}
			}
		}
		c++
	}
	return comp, c
}

// LineGraph returns L(G): one node per edge of g, adjacent iff the edges
// share an endpoint. Node weights of L(G) are the edge weights of g, as
// required for reducing maximum weight matching to MaxIS (§2.4).
//
// Construction consumes the CSR directly: in a simple graph two distinct
// edges share at most one endpoint, so enumerating unordered pairs of
// incident edges around every node emits each line-graph edge exactly once
// and no deduplication index is needed.
func (g *Graph) LineGraph() *Graph {
	b := NewBuilder(len(g.edges))
	for i := range g.edges {
		b.SetNodeWeight(i, g.edgeW[i])
	}
	lineEdges := 0
	for v := 0; v < g.n; v++ {
		d := g.Degree(v)
		lineEdges += d * (d - 1) / 2
	}
	b.Grow(lineEdges)
	for v := 0; v < g.n; v++ {
		ids := g.IncidentEdges(v)
		for i := 0; i < len(ids); i++ {
			for j := i + 1; j < len(ids); j++ {
				b.MustAddEdge(int(ids[i]), int(ids[j]))
			}
		}
	}
	return b.MustBuild()
}

// InducedSubgraph returns the subgraph induced by keep (keep[v] true means v
// survives) together with old→new and new→old node maps.
func (g *Graph) InducedSubgraph(keep []bool) (sub *Graph, oldToNew, newToOld []int) {
	oldToNew = make([]int, g.n)
	for i := range oldToNew {
		oldToNew[i] = -1
	}
	for v := 0; v < g.n; v++ {
		if keep[v] {
			oldToNew[v] = len(newToOld)
			newToOld = append(newToOld, v)
		}
	}
	b := NewBuilder(len(newToOld))
	for i, v := range newToOld {
		b.SetNodeWeight(i, g.nodeW[v])
	}
	for i, e := range g.edges {
		if keep[e.U] && keep[e.V] {
			if err := b.AddWeightedEdge(oldToNew[e.U], oldToNew[e.V], g.edgeW[i]); err != nil {
				panic(err)
			}
		}
	}
	return b.MustBuild(), oldToNew, newToOld
}
