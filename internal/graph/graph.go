// Package graph implements the undirected weighted graphs on which every
// algorithm in this repository operates.
//
// The paper's algorithms run on a node-weighted communication graph
// G = (V, w, E) (MaxIS, §2) and on its line graph L(G) whose node weights are
// G's edge weights (matching, §2.4). This package provides both, plus the
// generators used by the benchmark harness and the structural predicates
// (independent set, matching, bipartiteness) used to verify every algorithm's
// output.
//
// Nodes are identified by dense integers 0..N()-1; this doubles as the
// CONGEST model's assumption of unique O(log n)-bit identifiers.
package graph

import (
	"fmt"
	"sort"
)

// Edge is an undirected edge in canonical form (U < V).
type Edge struct {
	U, V int
}

// Canon returns e with endpoints ordered so that U < V.
func (e Edge) Canon() Edge {
	if e.U > e.V {
		return Edge{U: e.V, V: e.U}
	}
	return e
}

// Other returns the endpoint of e that is not x. It panics if x is not an
// endpoint of e.
func (e Edge) Other(x int) int {
	switch x {
	case e.U:
		return e.V
	case e.V:
		return e.U
	}
	panic(fmt.Sprintf("graph: node %d is not an endpoint of edge %v", x, e))
}

// Graph is an undirected graph with integer node weights and integer edge
// weights. The zero value is an empty graph; use New to create a graph with a
// fixed node count.
//
// Graph is immutable once built except through the Set* and AddEdge methods;
// algorithms never mutate the graphs they are given.
type Graph struct {
	n         int
	adj       [][]int // neighbor lists, sorted after Finalize
	nodeW     []int64
	edges     []Edge
	edgeW     []int64
	edgeIndex map[Edge]int
	sorted    bool
}

// New returns an edgeless graph with n nodes, all node weights 1.
func New(n int) *Graph {
	if n < 0 {
		panic("graph: negative node count")
	}
	g := &Graph{
		n:         n,
		adj:       make([][]int, n),
		nodeW:     make([]int64, n),
		edgeIndex: make(map[Edge]int),
	}
	for i := range g.nodeW {
		g.nodeW[i] = 1
	}
	return g
}

// N returns the number of nodes.
func (g *Graph) N() int { return g.n }

// M returns the number of edges.
func (g *Graph) M() int { return len(g.edges) }

// AddEdge inserts the undirected edge {u, v} with edge weight 1. Self-loops
// and duplicate edges are rejected with an error.
func (g *Graph) AddEdge(u, v int) error {
	return g.AddWeightedEdge(u, v, 1)
}

// AddWeightedEdge inserts the undirected edge {u, v} carrying weight w.
func (g *Graph) AddWeightedEdge(u, v int, w int64) error {
	if u < 0 || u >= g.n || v < 0 || v >= g.n {
		return fmt.Errorf("graph: edge {%d,%d} out of range [0,%d)", u, v, g.n)
	}
	if u == v {
		return fmt.Errorf("graph: self-loop at node %d", u)
	}
	e := Edge{U: u, V: v}.Canon()
	if _, dup := g.edgeIndex[e]; dup {
		return fmt.Errorf("graph: duplicate edge {%d,%d}", u, v)
	}
	g.edgeIndex[e] = len(g.edges)
	g.edges = append(g.edges, e)
	g.edgeW = append(g.edgeW, w)
	g.adj[u] = append(g.adj[u], v)
	g.adj[v] = append(g.adj[v], u)
	g.sorted = false
	return nil
}

// MustAddEdge is AddEdge that panics on error; intended for generators and
// tests where the inputs are known valid.
func (g *Graph) MustAddEdge(u, v int) {
	if err := g.AddEdge(u, v); err != nil {
		panic(err)
	}
}

// sortAdj sorts all adjacency lists; called lazily by accessors that promise
// sorted order.
func (g *Graph) sortAdj() {
	if g.sorted {
		return
	}
	for _, a := range g.adj {
		sort.Ints(a)
	}
	g.sorted = true
}

// Neighbors returns the sorted neighbor list of v. The returned slice is
// owned by the graph and must not be modified.
func (g *Graph) Neighbors(v int) []int {
	g.sortAdj()
	return g.adj[v]
}

// Degree returns the degree of v.
func (g *Graph) Degree(v int) int { return len(g.adj[v]) }

// MaxDegree returns ∆(G), the maximum degree; 0 for an edgeless graph.
func (g *Graph) MaxDegree() int {
	d := 0
	for v := 0; v < g.n; v++ {
		if len(g.adj[v]) > d {
			d = len(g.adj[v])
		}
	}
	return d
}

// HasEdge reports whether {u, v} is an edge.
func (g *Graph) HasEdge(u, v int) bool {
	_, ok := g.edgeIndex[Edge{U: u, V: v}.Canon()]
	return ok
}

// EdgeID returns the dense index of edge {u, v} and whether it exists. Edge
// indices identify nodes of the line graph.
func (g *Graph) EdgeID(u, v int) (int, bool) {
	id, ok := g.edgeIndex[Edge{U: u, V: v}.Canon()]
	return id, ok
}

// EdgeByID returns the edge with dense index id.
func (g *Graph) EdgeByID(id int) Edge { return g.edges[id] }

// Edges returns the edge list in insertion order. The slice is owned by the
// graph and must not be modified.
func (g *Graph) Edges() []Edge { return g.edges }

// NodeWeight returns w(v).
func (g *Graph) NodeWeight(v int) int64 { return g.nodeW[v] }

// SetNodeWeight sets w(v). Weights must be positive: the paper assumes
// integer weights in [W] (§2.2).
func (g *Graph) SetNodeWeight(v int, w int64) {
	if w <= 0 {
		panic(fmt.Sprintf("graph: non-positive node weight %d", w))
	}
	g.nodeW[v] = w
}

// EdgeWeight returns the weight of edge id.
func (g *Graph) EdgeWeight(id int) int64 { return g.edgeW[id] }

// SetEdgeWeight sets the weight of edge id.
func (g *Graph) SetEdgeWeight(id int, w int64) {
	if w <= 0 {
		panic(fmt.Sprintf("graph: non-positive edge weight %d", w))
	}
	g.edgeW[id] = w
}

// MaxNodeWeight returns W = max_v w(v); 1 for an empty graph.
func (g *Graph) MaxNodeWeight() int64 {
	var w int64 = 1
	for _, x := range g.nodeW {
		if x > w {
			w = x
		}
	}
	return w
}

// MaxEdgeWeight returns the maximum edge weight; 1 if there are no edges.
func (g *Graph) MaxEdgeWeight() int64 {
	var w int64 = 1
	for _, x := range g.edgeW {
		if x > w {
			w = x
		}
	}
	return w
}

// TotalNodeWeight returns Σ_v w(v).
func (g *Graph) TotalNodeWeight() int64 {
	var s int64
	for _, x := range g.nodeW {
		s += x
	}
	return s
}

// Clone returns a deep copy of g.
func (g *Graph) Clone() *Graph {
	c := New(g.n)
	copy(c.nodeW, g.nodeW)
	for i, e := range g.edges {
		if err := c.AddWeightedEdge(e.U, e.V, g.edgeW[i]); err != nil {
			panic(err) // cannot happen: g is valid
		}
	}
	return c
}

// Validate checks internal consistency; it is used by generator tests and by
// the CLI when loading untrusted input.
func (g *Graph) Validate() error {
	if len(g.adj) != g.n || len(g.nodeW) != g.n {
		return fmt.Errorf("graph: inconsistent node arrays")
	}
	if len(g.edges) != len(g.edgeW) || len(g.edges) != len(g.edgeIndex) {
		return fmt.Errorf("graph: inconsistent edge arrays")
	}
	degSum := 0
	for v := 0; v < g.n; v++ {
		degSum += len(g.adj[v])
		if g.nodeW[v] <= 0 {
			return fmt.Errorf("graph: node %d has non-positive weight %d", v, g.nodeW[v])
		}
	}
	if degSum != 2*len(g.edges) {
		return fmt.Errorf("graph: handshake violation: Σdeg=%d, 2m=%d", degSum, 2*len(g.edges))
	}
	for i, e := range g.edges {
		if e.U >= e.V {
			return fmt.Errorf("graph: edge %d = %v not canonical", i, e)
		}
		if got, ok := g.edgeIndex[e]; !ok || got != i {
			return fmt.Errorf("graph: edge index broken for %v", e)
		}
	}
	return nil
}

// IncidentEdges returns the dense edge indices incident to v, in neighbor
// order. A fresh slice is returned each call.
func (g *Graph) IncidentEdges(v int) []int {
	out := make([]int, 0, len(g.adj[v]))
	for _, u := range g.Neighbors(v) {
		id, _ := g.EdgeID(v, u)
		out = append(out, id)
	}
	return out
}

// LineGraph returns L(G): one node per edge of g, adjacent iff the edges
// share an endpoint. Node weights of L(G) are the edge weights of g, as
// required for reducing maximum weight matching to MaxIS (§2.4).
func (g *Graph) LineGraph() *Graph {
	lg := New(len(g.edges))
	for i := range g.edges {
		lg.SetNodeWeight(i, g.edgeW[i])
	}
	// Two line-graph nodes are adjacent iff the edges share an endpoint:
	// enumerate pairs of edges around each node of g.
	for v := 0; v < g.n; v++ {
		ids := g.IncidentEdges(v)
		for i := 0; i < len(ids); i++ {
			for j := i + 1; j < len(ids); j++ {
				a, b := ids[i], ids[j]
				if !lg.HasEdge(a, b) {
					lg.MustAddEdge(a, b)
				}
			}
		}
	}
	return lg
}

// InducedSubgraph returns the subgraph induced by keep (keep[v] true means v
// survives) together with old→new and new→old node maps.
func (g *Graph) InducedSubgraph(keep []bool) (sub *Graph, oldToNew, newToOld []int) {
	oldToNew = make([]int, g.n)
	for i := range oldToNew {
		oldToNew[i] = -1
	}
	for v := 0; v < g.n; v++ {
		if keep[v] {
			oldToNew[v] = len(newToOld)
			newToOld = append(newToOld, v)
		}
	}
	sub = New(len(newToOld))
	for i, v := range newToOld {
		sub.SetNodeWeight(i, g.nodeW[v])
	}
	for i, e := range g.edges {
		if keep[e.U] && keep[e.V] {
			if err := sub.AddWeightedEdge(oldToNew[e.U], oldToNew[e.V], g.edgeW[i]); err != nil {
				panic(err)
			}
		}
	}
	return sub, oldToNew, newToOld
}

// IsIndependentSet reports whether in[v] designates an independent set.
func (g *Graph) IsIndependentSet(in []bool) bool {
	for _, e := range g.edges {
		if in[e.U] && in[e.V] {
			return false
		}
	}
	return true
}

// IsMaximalIndependentSet reports whether in designates an independent set
// that cannot be extended: every node is in the set or adjacent to it.
func (g *Graph) IsMaximalIndependentSet(in []bool) bool {
	if !g.IsIndependentSet(in) {
		return false
	}
	for v := 0; v < g.n; v++ {
		if in[v] {
			continue
		}
		covered := false
		for _, u := range g.adj[v] {
			if in[u] {
				covered = true
				break
			}
		}
		if !covered {
			return false
		}
	}
	return true
}

// SetWeight returns Σ_{v: in[v]} w(v).
func (g *Graph) SetWeight(in []bool) int64 {
	var s int64
	for v, ok := range in {
		if ok {
			s += g.nodeW[v]
		}
	}
	return s
}

// IsMatching reports whether the edge-index set m is a matching (no two
// chosen edges share an endpoint).
func (g *Graph) IsMatching(m []int) bool {
	used := make(map[int]bool, 2*len(m))
	for _, id := range m {
		if id < 0 || id >= len(g.edges) {
			return false
		}
		e := g.edges[id]
		if used[e.U] || used[e.V] {
			return false
		}
		used[e.U], used[e.V] = true, true
	}
	return true
}

// IsMaximalMatching reports whether m is a matching such that every edge of g
// shares an endpoint with some matched edge.
func (g *Graph) IsMaximalMatching(m []int) bool {
	if !g.IsMatching(m) {
		return false
	}
	used := make([]bool, g.n)
	for _, id := range m {
		e := g.edges[id]
		used[e.U], used[e.V] = true, true
	}
	for _, e := range g.edges {
		if !used[e.U] && !used[e.V] {
			return false
		}
	}
	return true
}

// MatchingWeight returns the total edge weight of the matching m.
func (g *Graph) MatchingWeight(m []int) int64 {
	var s int64
	for _, id := range m {
		s += g.edgeW[id]
	}
	return s
}

// MatchedMates returns mate[v] = u if {v,u} ∈ m, else -1.
func (g *Graph) MatchedMates(m []int) []int {
	mate := make([]int, g.n)
	for i := range mate {
		mate[i] = -1
	}
	for _, id := range m {
		e := g.edges[id]
		mate[e.U], mate[e.V] = e.V, e.U
	}
	return mate
}

// Bipartition attempts to 2-color g; it returns side[v] ∈ {0,1} and true on
// success, or nil and false if g has an odd cycle. Isolated components are
// assigned greedily starting from side 0.
func (g *Graph) Bipartition() ([]int, bool) {
	side := make([]int, g.n)
	for i := range side {
		side[i] = -1
	}
	queue := make([]int, 0, g.n)
	for s := 0; s < g.n; s++ {
		if side[s] != -1 {
			continue
		}
		side[s] = 0
		queue = append(queue[:0], s)
		for len(queue) > 0 {
			v := queue[0]
			queue = queue[1:]
			for _, u := range g.adj[v] {
				if side[u] == -1 {
					side[u] = 1 - side[v]
					queue = append(queue, u)
				} else if side[u] == side[v] {
					return nil, false
				}
			}
		}
	}
	return side, true
}

// ConnectedComponents returns comp[v] = component index, and the number of
// components.
func (g *Graph) ConnectedComponents() ([]int, int) {
	comp := make([]int, g.n)
	for i := range comp {
		comp[i] = -1
	}
	c := 0
	queue := make([]int, 0, g.n)
	for s := 0; s < g.n; s++ {
		if comp[s] != -1 {
			continue
		}
		comp[s] = c
		queue = append(queue[:0], s)
		for len(queue) > 0 {
			v := queue[0]
			queue = queue[1:]
			for _, u := range g.adj[v] {
				if comp[u] == -1 {
					comp[u] = c
					queue = append(queue, u)
				}
			}
		}
		c++
	}
	return comp, c
}
