package graph

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"
)

// This file holds the streaming ingestion parsers for real-world graph files:
// whitespace edge lists (the SNAP dump format) and Matrix Market coordinate
// files. Both scan the input through a fixed-size bufio buffer — the raw file
// is never resident — parse integers straight out of the line bytes without
// per-line allocation, and feed a Builder, so a million-node file costs the
// CSR arrays plus one I/O buffer and nothing else. Node IDs auto-grow through
// Builder.EnsureNode, so streams that never announce n still work.

// ReadOptions bounds and shapes a streamed ingestion. The zero value accepts
// any well-formed input as-is.
type ReadOptions struct {
	// MaxNodes / MaxEdges abort the stream as soon as a node ID or the edge
	// count exceeds the cap — the guard the HTTP layer applies while the
	// body is still arriving, long before anything graph-sized is allocated.
	// Zero means unbounded.
	MaxNodes int
	MaxEdges int
	// SkipSelfLoops drops u–u lines instead of failing the stream; SNAP
	// dumps contain them routinely.
	SkipSelfLoops bool
	// DedupEdges drops repeated endpoint pairs (keeping the first
	// occurrence's weight) after the stream ends instead of failing Build.
	// Directed SNAP dumps list both arc directions; general Matrix Market
	// files may carry both triangles.
	DedupEdges bool
}

// streamLimits validates a parsed endpoint/edge against opts during the scan.
func (o ReadOptions) check(u, v, edges int) error {
	if o.MaxNodes > 0 && (u >= o.MaxNodes || v >= o.MaxNodes) {
		return fmt.Errorf("graph: node id %d exceeds cap %d", max(u, v), o.MaxNodes)
	}
	if o.MaxEdges > 0 && edges >= o.MaxEdges {
		return fmt.Errorf("graph: edge count exceeds cap %d", o.MaxEdges)
	}
	return nil
}

// lineScanner wraps bufio.Scanner with a buffer sized for graph files: lines
// are short (three integers), so 1 MiB is generous while keeping the resident
// window small regardless of file size.
func lineScanner(r io.Reader) *bufio.Scanner {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64<<10), 1<<20)
	return sc
}

// parseFields splits line into up to 4 whitespace-separated unsigned integer
// fields without allocating, returning the parsed values and the field count.
// A negative count reports a malformed field (non-digit bytes or overflow) at
// position -count.
func parseFields(line []byte, out *[4]int64) int {
	n := 0
	i := 0
	for {
		for i < len(line) && (line[i] == ' ' || line[i] == '\t' || line[i] == '\r') {
			i++
		}
		if i >= len(line) {
			return n
		}
		if n == 4 {
			return -5 // too many fields
		}
		neg := false
		if line[i] == '-' {
			neg = true
			i++
		}
		start := i
		var x int64
		for i < len(line) && line[i] >= '0' && line[i] <= '9' {
			d := int64(line[i] - '0')
			if x > (math.MaxInt64-d)/10 {
				return -(n + 1)
			}
			x = x*10 + d
			i++
		}
		if i == start || (i < len(line) && line[i] != ' ' && line[i] != '\t' && line[i] != '\r') {
			return -(n + 1)
		}
		if neg {
			x = -x
		}
		out[n] = x
		n++
	}
}

// ReadEdgeList parses a whitespace edge-list stream (the SNAP dump format):
// one "u v" or "u v w" line per edge, '#' and '%' comment lines, blank lines
// ignored. Node IDs are non-negative integers; the node count is the largest
// ID seen plus one (auto-grown, so no header is needed). A missing weight
// column means weight 1; an explicit weight must be positive. All node
// weights are 1.
func ReadEdgeList(r io.Reader, opts ReadOptions) (*Graph, error) {
	b, err := streamEdgeList(r, opts)
	if err != nil {
		return nil, err
	}
	return b.Build()
}

// streamEdgeList is ReadEdgeList up to (not including) the Build freeze; the
// disk writer reuses it to spill a stream straight to RGD1.
func streamEdgeList(r io.Reader, opts ReadOptions) (*Builder, error) {
	sc := lineScanner(r)
	b := NewBuilder(0)
	var f [4]int64
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Bytes()
		if len(line) == 0 || line[0] == '#' || line[0] == '%' {
			continue
		}
		nf := parseFields(line, &f)
		switch {
		case nf == 0:
			continue // whitespace-only line
		case nf < 0 || nf == 1:
			return nil, fmt.Errorf("graph: edge list line %d: malformed (want \"u v\" or \"u v w\")", lineNo)
		case nf > 3:
			return nil, fmt.Errorf("graph: edge list line %d: %d fields (want 2 or 3)", lineNo, nf)
		}
		u, v := f[0], f[1]
		if u < 0 || v < 0 {
			return nil, fmt.Errorf("graph: edge list line %d: negative node id", lineNo)
		}
		if u > math.MaxInt32 || v > math.MaxInt32 {
			return nil, fmt.Errorf("graph: edge list line %d: node id exceeds int32 range", lineNo)
		}
		w := int64(1)
		if nf == 3 {
			w = f[2]
			if w <= 0 {
				return nil, fmt.Errorf("graph: edge list line %d: non-positive weight %d", lineNo, w)
			}
		}
		if u == v {
			if opts.SkipSelfLoops {
				continue
			}
			return nil, fmt.Errorf("graph: edge list line %d: self-loop at node %d", lineNo, u)
		}
		if err := opts.check(int(u), int(v), b.M()); err != nil {
			return nil, fmt.Errorf("%w (line %d)", err, lineNo)
		}
		b.EnsureNode(int(max(u, v)))
		if err := b.AddWeightedEdge(int(u), int(v), w); err != nil {
			return nil, fmt.Errorf("graph: edge list line %d: %w", lineNo, err)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("graph: reading edge list: %w", err)
	}
	if opts.DedupEdges {
		b.DedupEdges()
	}
	return b, nil
}

// WriteEdgeList renders g as a whitespace edge list ("u v w" lines, insertion
// order). Node weights are not representable in the format; writing a graph
// with non-unit node weights returns an error rather than dropping them
// silently. The output round-trips through ReadEdgeList fingerprint-identical.
func WriteEdgeList(w io.Writer, g *Graph) error {
	for v := 0; v < g.N(); v++ {
		if g.NodeWeight(v) != 1 {
			return fmt.Errorf("graph: edge list cannot carry node weights (node %d has weight %d)", v, g.NodeWeight(v))
		}
	}
	// The format has no node-count header — n is recovered as max ID + 1 —
	// so a graph whose largest-ID node is isolated cannot round-trip.
	if g.N() > 0 && g.Degree(g.N()-1) == 0 {
		return fmt.Errorf("graph: edge list cannot represent trailing isolated node %d", g.N()-1)
	}
	bw := bufio.NewWriter(w)
	buf := make([]byte, 0, 64)
	for id, e := range g.Edges() {
		buf = strconv.AppendInt(buf[:0], int64(e.U), 10)
		buf = append(buf, ' ')
		buf = strconv.AppendInt(buf, int64(e.V), 10)
		buf = append(buf, ' ')
		buf = strconv.AppendInt(buf, g.EdgeWeight(id), 10)
		buf = append(buf, '\n')
		if _, err := bw.Write(buf); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadMatrixMarket parses a Matrix Market coordinate file as an undirected
// graph: the banner must declare "matrix coordinate" with field pattern,
// integer or real and symmetry general or symmetric. Entries are 1-indexed
// (i, j[, value]); diagonal entries are skipped (a simple graph has no
// self-loops). Integer values become edge weights (and must be positive);
// pattern and real files yield unit weights — real values are structural
// only, since the paper's algorithms take integer weights. General files are
// deduplicated automatically (both triangles may be present); symmetric files
// store one triangle and need no dedup.
func ReadMatrixMarket(r io.Reader, opts ReadOptions) (*Graph, error) {
	sc := lineScanner(r)
	if !sc.Scan() {
		if err := sc.Err(); err != nil {
			return nil, fmt.Errorf("graph: reading MatrixMarket banner: %w", err)
		}
		return nil, io.ErrUnexpectedEOF
	}
	banner := strings.Fields(strings.ToLower(sc.Text()))
	if len(banner) != 5 || banner[0] != "%%matrixmarket" || banner[1] != "matrix" || banner[2] != "coordinate" {
		return nil, fmt.Errorf("graph: bad MatrixMarket banner %q (want %%%%MatrixMarket matrix coordinate <field> <symmetry>)", sc.Text())
	}
	field, symmetry := banner[3], banner[4]
	switch field {
	case "pattern", "integer", "real":
	default:
		return nil, fmt.Errorf("graph: unsupported MatrixMarket field %q (want pattern, integer or real)", field)
	}
	switch symmetry {
	case "general", "symmetric":
	default:
		return nil, fmt.Errorf("graph: unsupported MatrixMarket symmetry %q (want general or symmetric)", symmetry)
	}

	// Size line: rows cols nnz (comments may precede it).
	var rows, cols, nnz int64
	var f [4]int64
	sized := false
	lineNo := 1
	for sc.Scan() {
		lineNo++
		line := sc.Bytes()
		if len(line) == 0 || line[0] == '%' {
			continue
		}
		if nf := parseFields(line, &f); nf != 3 {
			return nil, fmt.Errorf("graph: MatrixMarket line %d: bad size line (want \"rows cols nnz\")", lineNo)
		}
		rows, cols, nnz = f[0], f[1], f[2]
		sized = true
		break
	}
	if !sized {
		if err := sc.Err(); err != nil {
			return nil, fmt.Errorf("graph: reading MatrixMarket size line: %w", err)
		}
		return nil, io.ErrUnexpectedEOF
	}
	if rows < 0 || cols < 0 || nnz < 0 || rows > math.MaxInt32 || cols > math.MaxInt32 {
		return nil, fmt.Errorf("graph: MatrixMarket sizes %d×%d nnz=%d out of range", rows, cols, nnz)
	}
	n := int(max(rows, cols))
	if opts.MaxNodes > 0 && n > opts.MaxNodes {
		return nil, fmt.Errorf("graph: MatrixMarket declares %d nodes, cap %d", n, opts.MaxNodes)
	}
	if opts.MaxEdges > 0 && nnz > int64(opts.MaxEdges) {
		return nil, fmt.Errorf("graph: MatrixMarket declares %d entries, cap %d", nnz, opts.MaxEdges)
	}

	b := NewBuilderHint(n, int(nnz))
	entries := int64(0)
	for sc.Scan() {
		lineNo++
		line := sc.Bytes()
		if len(line) == 0 || line[0] == '%' {
			continue
		}
		nf := parseFields(line, &f)
		if nf == 0 {
			continue
		}
		// Real values carry a fraction/exponent the integer parser rejects;
		// re-split the rare real line with strconv instead.
		if nf < 0 && field == "real" {
			parts := strings.Fields(string(line))
			if len(parts) == 3 {
				i64, err1 := strconv.ParseInt(parts[0], 10, 64)
				j64, err2 := strconv.ParseInt(parts[1], 10, 64)
				if _, err3 := strconv.ParseFloat(parts[2], 64); err1 == nil && err2 == nil && err3 == nil {
					f[0], f[1], f[2] = i64, j64, 1
					nf = 3
				}
			}
		}
		if nf != 2 && nf != 3 {
			return nil, fmt.Errorf("graph: MatrixMarket line %d: malformed entry", lineNo)
		}
		if field == "pattern" && nf != 2 {
			return nil, fmt.Errorf("graph: MatrixMarket line %d: pattern entry carries a value", lineNo)
		}
		if field != "pattern" && nf != 3 {
			return nil, fmt.Errorf("graph: MatrixMarket line %d: missing value", lineNo)
		}
		entries++
		if entries > nnz {
			return nil, fmt.Errorf("graph: MatrixMarket line %d: more than the declared %d entries", lineNo, nnz)
		}
		i, j := f[0], f[1]
		if i < 1 || j < 1 || i > int64(n) || j > int64(n) {
			return nil, fmt.Errorf("graph: MatrixMarket line %d: entry (%d,%d) outside %d×%d", lineNo, i, j, rows, cols)
		}
		if i == j {
			continue // diagonal: a simple graph has no self-loops
		}
		w := int64(1)
		if field == "integer" {
			w = f[2]
			if w <= 0 {
				return nil, fmt.Errorf("graph: MatrixMarket line %d: non-positive weight %d", lineNo, w)
			}
		}
		if err := b.AddWeightedEdge(int(i-1), int(j-1), w); err != nil {
			return nil, fmt.Errorf("graph: MatrixMarket line %d: %w", lineNo, err)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("graph: reading MatrixMarket entries: %w", err)
	}
	if entries != nnz {
		return nil, fmt.Errorf("graph: MatrixMarket declares %d entries, got %d", nnz, entries)
	}
	if symmetry == "general" || opts.DedupEdges {
		b.DedupEdges()
	}
	return b.Build()
}

// WriteMatrixMarket renders g as a Matrix Market coordinate file (integer
// symmetric, lower triangle, 1-indexed). Node weights are not representable;
// non-unit node weights return an error. The output round-trips through
// ReadMatrixMarket fingerprint-identical.
func WriteMatrixMarket(w io.Writer, g *Graph) error {
	for v := 0; v < g.N(); v++ {
		if g.NodeWeight(v) != 1 {
			return fmt.Errorf("graph: MatrixMarket cannot carry node weights (node %d has weight %d)", v, g.NodeWeight(v))
		}
	}
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "%%%%MatrixMarket matrix coordinate integer symmetric\n")
	fmt.Fprintf(bw, "%d %d %d\n", g.N(), g.N(), g.M())
	buf := make([]byte, 0, 64)
	for id, e := range g.Edges() {
		// Symmetric storage is the lower triangle: row ≥ col, so (V+1, U+1).
		buf = strconv.AppendInt(buf[:0], int64(e.V+1), 10)
		buf = append(buf, ' ')
		buf = strconv.AppendInt(buf, int64(e.U+1), 10)
		buf = append(buf, ' ')
		buf = strconv.AppendInt(buf, g.EdgeWeight(id), 10)
		buf = append(buf, '\n')
		if _, err := bw.Write(buf); err != nil {
			return err
		}
	}
	return bw.Flush()
}
