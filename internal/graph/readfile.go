package graph

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
)

// ReadFile loads a graph from a local file, picking the decoder by
// extension:
//
//	.el .txt .edges .edgelist   whitespace-separated edge list (ReadEdgeList)
//	.mtx                        Matrix Market coordinate (ReadMatrixMarket)
//	.rgd1                       on-disk CSR (OpenDisk)
//	.rgb1 .bin                  compact binary codec (DecodeBinaryStream)
//
// opts applies to the text formats; the binary formats carry their own
// structure and ignore it. For .rgd1 the file is mmapped and the mapping
// deliberately stays live for the process lifetime — the returned Graph
// aliases the mapped arrays, so there is no safe point to unmap. Callers
// that need the mapping's lifecycle (Close, Verify) should use OpenDisk
// directly.
func ReadFile(path string, opts ReadOptions) (*Graph, error) {
	ext := strings.ToLower(filepath.Ext(path))
	switch ext {
	case ".el", ".txt", ".edges", ".edgelist":
		return readFileWith(path, func(f *os.File) (*Graph, error) {
			return ReadEdgeList(f, opts)
		})
	case ".mtx":
		return readFileWith(path, func(f *os.File) (*Graph, error) {
			return ReadMatrixMarket(f, opts)
		})
	case ".rgd1":
		d, err := OpenDisk(path)
		if err != nil {
			return nil, err
		}
		return d.Graph, nil
	case ".rgb1", ".bin":
		return readFileWith(path, func(f *os.File) (*Graph, error) {
			return DecodeBinaryStream(f, opts.MaxNodes, opts.MaxEdges)
		})
	default:
		return nil, fmt.Errorf("graph: unrecognized extension %q (want .el, .txt, .edges, .edgelist, .mtx, .rgd1, .rgb1, or .bin)", ext)
	}
}

// readFileWith opens path and funnels it through one of the streaming
// decoders.
func readFileWith(path string, decode func(*os.File) (*Graph, error)) (*Graph, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return decode(f)
}
