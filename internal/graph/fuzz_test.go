package graph

import (
	"bytes"
	"fmt"
	"strings"
	"testing"
)

// fuzzSizeCap bounds the sizes a fuzzed header may declare. Decode trusts
// its header and allocates for it — the service layer guards untrusted
// inputs with its own header check (httpapi.checkGraphHeader), and the fuzz
// target mirrors that guard so the fuzzer probes the parser, not the
// allocator.
const fuzzSizeCap = 1 << 16

// headerTooLarge reports whether the first parseable header line declares
// sizes beyond the fuzz cap.
func headerTooLarge(text string) bool {
	for _, line := range strings.Split(text, "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		var n, m int
		if _, err := fmt.Sscanf(line, "%d %d", &n, &m); err != nil {
			return false
		}
		return n > fuzzSizeCap || m > fuzzSizeCap
	}
	return false
}

// FuzzGraphEncodeDecode fuzzes the text codec: any input Decode accepts must
// re-encode to a form Decode accepts again, and the round trip must preserve
// the graph exactly (node count, weights, and the canonical edge list). The
// committed seed corpus lives in testdata/fuzz/FuzzGraphEncodeDecode.
func FuzzGraphEncodeDecode(f *testing.F) {
	f.Add("0 0\n")
	f.Add("1 0\n7\n")
	f.Add("3 2\n1 2 3\n0 1 5\n1 2 7\n")
	f.Add("# comment\n4 4\n1 1 1 1\n0 1 1\n1 2 1\n2 3 1\n3 0 1\n")
	f.Add("2 1\n9223372036854775807 1\n0 1 9223372036854775807\n")
	f.Add("3 3\n1 2 3\n0 1 5\n0 1 5\n1 2 7\n") // duplicate edge line
	f.Add("5 0\n1 2 3 4 5\n")
	f.Fuzz(func(t *testing.T, text string) {
		if headerTooLarge(text) {
			t.Skip("header beyond the fuzz size cap")
		}
		g, err := Decode(strings.NewReader(text))
		if err != nil {
			return // malformed inputs only need to be rejected cleanly
		}
		var buf bytes.Buffer
		if err := Encode(&buf, g); err != nil {
			t.Fatalf("encoding a decoded graph: %v", err)
		}
		g2, err := Decode(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("re-decoding an encoded graph: %v\nencoded:\n%s", err, buf.Bytes())
		}
		if g2.N() != g.N() || g2.M() != g.M() {
			t.Fatalf("round trip sizes: got (%d,%d), want (%d,%d)", g2.N(), g2.M(), g.N(), g.M())
		}
		for v := 0; v < g.N(); v++ {
			if g2.NodeWeight(v) != g.NodeWeight(v) {
				t.Fatalf("node %d weight: got %d, want %d", v, g2.NodeWeight(v), g.NodeWeight(v))
			}
		}
		// Both graphs came out of Builder.Build, so their edge IDs are in the
		// same canonical order and the lists must match index for index.
		e1, e2 := g.Edges(), g2.Edges()
		for id := range e1 {
			if e1[id] != e2[id] || g.EdgeWeight(id) != g2.EdgeWeight(id) {
				t.Fatalf("edge %d: got %v w=%d, want %v w=%d",
					id, e2[id], g2.EdgeWeight(id), e1[id], g.EdgeWeight(id))
			}
		}
	})
}
