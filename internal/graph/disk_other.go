//go:build !unix

package graph

import "os"

// mapFile on platforms without a memory-mapping path reads the whole file
// into memory. The nil unmap tells OpenDisk the image is heap-owned, which
// routes decoding through the copy path (no aliasing of a shared mapping to
// manage, no Close obligation).
func mapFile(path string) ([]byte, func() error, error) {
	data, err := os.ReadFile(path)
	return data, nil, err
}
