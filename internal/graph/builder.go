package graph

import (
	"cmp"
	"fmt"
	"math"
	"slices"
)

// Builder accumulates nodes, edges and weights and freezes them into an
// immutable CSR Graph. It replaces the old mutable append-then-sort-lazily
// Graph: construction cost is paid exactly once in Build, after which every
// adjacency query is a binary search over flat arrays and every neighbor
// enumeration is a zero-copy slice.
//
// AddEdge validates endpoints immediately; duplicate edges are detected in
// Build (after the CSR sort, where they are adjacent and free to find).
type Builder struct {
	n     int
	nodeW []int64
	edges []Edge
	edgeW []int64
}

// NewBuilder returns a builder for a graph with n nodes, all node weights 1.
func NewBuilder(n int) *Builder {
	if n < 0 {
		panic("graph: negative node count")
	}
	w := make([]int64, n)
	for i := range w {
		w[i] = 1
	}
	return &Builder{n: n, nodeW: w}
}

// NewBuilderHint returns a builder for n nodes with capacity reserved for m
// edges, so the streamed ingestion paths (ReadEdgeList, ReadMatrixMarket)
// never re-slice the edge arrays per edge when the header announces sizes.
func NewBuilderHint(n, m int) *Builder {
	b := NewBuilder(n)
	if m > 0 {
		b.Grow(m)
	}
	return b
}

// EnsureNode grows the node count so that v is a valid node, assigning weight
// 1 to any nodes created. It is the auto-grow hook for streamed edge lists
// whose node count is not known up front: amortized O(1) per call (the weight
// array doubles), and a no-op when v is already in range.
func (b *Builder) EnsureNode(v int) {
	if v < 0 {
		panic("graph: negative node id")
	}
	if v < b.n {
		return
	}
	b.nodeW = slices.Grow(b.nodeW, v+1-b.n)
	for b.n <= v {
		b.nodeW = append(b.nodeW, 1)
		b.n++
	}
}

// N returns the number of nodes.
func (b *Builder) N() int { return b.n }

// M returns the number of edges added so far.
func (b *Builder) M() int { return len(b.edges) }

// Grow preallocates capacity for m additional edges.
func (b *Builder) Grow(m int) {
	b.edges = slices.Grow(b.edges, m)
	b.edgeW = slices.Grow(b.edgeW, m)
}

// AddEdge inserts the undirected edge {u, v} with edge weight 1.
func (b *Builder) AddEdge(u, v int) error {
	return b.AddWeightedEdge(u, v, 1)
}

// AddWeightedEdge inserts the undirected edge {u, v} carrying weight w.
// Out-of-range endpoints and self-loops are rejected immediately; duplicate
// edges are rejected by Build.
func (b *Builder) AddWeightedEdge(u, v int, w int64) error {
	if u < 0 || u >= b.n || v < 0 || v >= b.n {
		return fmt.Errorf("graph: edge {%d,%d} out of range [0,%d)", u, v, b.n)
	}
	if u == v {
		return fmt.Errorf("graph: self-loop at node %d", u)
	}
	b.edges = append(b.edges, Edge{U: u, V: v}.Canon())
	b.edgeW = append(b.edgeW, w)
	return nil
}

// MustAddEdge is AddEdge that panics on error; intended for generators and
// tests where the inputs are known valid.
func (b *Builder) MustAddEdge(u, v int) {
	if err := b.AddEdge(u, v); err != nil {
		panic(err)
	}
}

// DedupEdges removes duplicate edges — later insertions of an endpoint pair
// already present — keeping the first occurrence and its weight, and returns
// how many were dropped. Real-world edge lists (SNAP dumps list both arc
// directions; general Matrix Market files may carry both triangles) routinely
// contain duplicates that Build would reject; ingestion calls this once after
// streaming instead of paying a hash set per edge.
func (b *Builder) DedupEdges() int {
	if len(b.edges) < 2 {
		return 0
	}
	idx := make([]int32, len(b.edges))
	for i := range idx {
		idx[i] = int32(i)
	}
	slices.SortFunc(idx, func(i, j int32) int {
		a, c := b.edges[i], b.edges[j]
		if a.U != c.U {
			return cmp.Compare(a.U, c.U)
		}
		if a.V != c.V {
			return cmp.Compare(a.V, c.V)
		}
		return int(i - j)
	})
	dup := make([]bool, len(b.edges))
	removed := 0
	for k := 1; k < len(idx); k++ {
		if b.edges[idx[k]] == b.edges[idx[k-1]] {
			dup[idx[k]] = true
			removed++
		}
	}
	if removed == 0 {
		return 0
	}
	w := 0
	for i := range b.edges {
		if dup[i] {
			continue
		}
		b.edges[w] = b.edges[i]
		b.edgeW[w] = b.edgeW[i]
		w++
	}
	b.edges = b.edges[:w]
	b.edgeW = b.edgeW[:w]
	return removed
}

// SetNodeWeight sets w(v). Weights must be positive (§2.2).
func (b *Builder) SetNodeWeight(v int, w int64) {
	if w <= 0 {
		panic(fmt.Sprintf("graph: non-positive node weight %d", w))
	}
	b.nodeW[v] = w
}

// Build freezes the accumulated edges into an immutable CSR graph. The edge
// arrays are transferred to the graph, not copied: after a successful Build
// the builder is reset to an empty edge set (node weights are preserved) and
// no further builder mutation is reflected in built graphs.
func (b *Builder) Build() (*Graph, error) {
	n, m := b.n, len(b.edges)
	if int64(n) >= math.MaxInt32 || int64(m)*2 >= math.MaxInt32 {
		return nil, fmt.Errorf("graph: %d nodes / %d edges exceed CSR int32 range", n, m)
	}
	g := &Graph{
		n:         n,
		offsets:   make([]int32, n+1),
		neighbors: make([]int32, 2*m),
		edgeIDs:   make([]int32, 2*m),
		mirror:    make([]int32, 2*m),
		nodeW:     b.nodeW,
		edges:     b.edges,
		edgeW:     b.edgeW,
	}
	// Degree counting pass, then prefix sums.
	for _, e := range g.edges {
		g.offsets[e.U+1]++
		g.offsets[e.V+1]++
	}
	for v := 0; v < n; v++ {
		d := int(g.offsets[v+1])
		if d > g.maxDeg {
			g.maxDeg = d
		}
		g.offsets[v+1] += g.offsets[v]
	}
	// Fill pass: one arc per edge direction, packed as neighbor<<32 | edgeID
	// so a plain uint64 sort orders each segment by neighbor without an
	// interface-based comparator.
	packed := make([]uint64, 2*m)
	cursor := make([]int32, n)
	copy(cursor, g.offsets[:n])
	for id, e := range g.edges {
		packed[cursor[e.U]] = uint64(e.V)<<32 | uint64(id)
		cursor[e.U]++
		packed[cursor[e.V]] = uint64(e.U)<<32 | uint64(id)
		cursor[e.V]++
	}
	for v := 0; v < n; v++ {
		seg := packed[g.offsets[v]:g.offsets[v+1]]
		slices.Sort(seg)
		for i, p := range seg {
			u := int32(p >> 32)
			if i > 0 && g.neighbors[int(g.offsets[v])+i-1] == u {
				return nil, fmt.Errorf("graph: duplicate edge {%d,%d}", v, u)
			}
			g.neighbors[int(g.offsets[v])+i] = u
			g.edgeIDs[int(g.offsets[v])+i] = int32(p & 0xffffffff)
		}
	}
	// Mirror pass: the two arcs of edge id are the two positions where id
	// appears in edgeIDs; link them without any searching.
	first := make([]int32, m)
	for i := range first {
		first[i] = -1
	}
	for k, id := range g.edgeIDs {
		if first[id] < 0 {
			first[id] = int32(k)
		} else {
			g.mirror[k] = first[id]
			g.mirror[first[id]] = int32(k)
		}
	}
	// Detach the builder so later builder mutations cannot alias the
	// immutable graph.
	b.nodeW = slices.Clone(b.nodeW)
	b.edges = nil
	b.edgeW = nil
	return g, nil
}

// MustBuild is Build that panics on error; intended for generators whose
// edge streams are duplicate-free by construction.
func (b *Builder) MustBuild() *Graph {
	g, err := b.Build()
	if err != nil {
		panic(err)
	}
	return g
}

// WithEdges returns a new graph equal to g plus the given extra edges, each
// with weight 1. This is the amendment idiom for the immutable topology:
// rebuild instead of mutate. Node weights carry over.
func (g *Graph) WithEdges(extra ...Edge) (*Graph, error) {
	b := NewBuilder(g.n)
	copy(b.nodeW, g.nodeW)
	b.Grow(len(g.edges) + len(extra))
	for id, e := range g.edges {
		if err := b.AddWeightedEdge(e.U, e.V, g.edgeW[id]); err != nil {
			return nil, err
		}
	}
	for _, e := range extra {
		if err := b.AddEdge(e.U, e.V); err != nil {
			return nil, err
		}
	}
	return b.Build()
}
