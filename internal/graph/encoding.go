package graph

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// Encode writes g in a simple line-oriented text format:
//
//	n m
//	w(0) w(1) … w(n-1)        (node weights)
//	u v w                      (one line per edge, w = edge weight)
//
// The format round-trips through Decode and is consumed by cmd/distmatch.
func Encode(w io.Writer, g *Graph) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "%d %d\n", g.N(), g.M())
	for v := 0; v < g.N(); v++ {
		if v > 0 {
			bw.WriteByte(' ')
		}
		bw.WriteString(strconv.FormatInt(g.NodeWeight(v), 10))
	}
	bw.WriteByte('\n')
	for id, e := range g.Edges() {
		fmt.Fprintf(bw, "%d %d %d\n", e.U, e.V, g.EdgeWeight(id))
	}
	return bw.Flush()
}

// Decode parses the format written by Encode.
func Decode(r io.Reader) (*Graph, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<26)
	readLine := func() (string, error) {
		for sc.Scan() {
			line := strings.TrimSpace(sc.Text())
			if line != "" && !strings.HasPrefix(line, "#") {
				return line, nil
			}
		}
		if err := sc.Err(); err != nil {
			return "", err
		}
		return "", io.ErrUnexpectedEOF
	}

	header, err := readLine()
	if err != nil {
		return nil, fmt.Errorf("graph: reading header: %w", err)
	}
	var n, m int
	if _, err := fmt.Sscanf(header, "%d %d", &n, &m); err != nil {
		return nil, fmt.Errorf("graph: bad header %q: %w", header, err)
	}
	if n < 0 || m < 0 {
		return nil, fmt.Errorf("graph: negative sizes in header %q", header)
	}
	b := NewBuilder(n)

	if n > 0 {
		wLine, err := readLine()
		if err != nil {
			return nil, fmt.Errorf("graph: reading weights: %w", err)
		}
		fields := strings.Fields(wLine)
		if len(fields) != n {
			return nil, fmt.Errorf("graph: want %d node weights, got %d", n, len(fields))
		}
		for v, f := range fields {
			w, err := strconv.ParseInt(f, 10, 64)
			if err != nil {
				return nil, fmt.Errorf("graph: bad weight %q: %w", f, err)
			}
			if w <= 0 {
				return nil, fmt.Errorf("graph: node %d has non-positive weight %d", v, w)
			}
			b.SetNodeWeight(v, w)
		}
	}

	for i := 0; i < m; i++ {
		eLine, err := readLine()
		if err != nil {
			return nil, fmt.Errorf("graph: reading edge %d: %w", i, err)
		}
		var u, v int
		var w int64
		if _, err := fmt.Sscanf(eLine, "%d %d %d", &u, &v, &w); err != nil {
			return nil, fmt.Errorf("graph: bad edge line %q: %w", eLine, err)
		}
		if w <= 0 {
			return nil, fmt.Errorf("graph: edge %d has non-positive weight %d", i, w)
		}
		if err := b.AddWeightedEdge(u, v, w); err != nil {
			return nil, err
		}
	}
	return b.Build()
}
