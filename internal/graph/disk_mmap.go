//go:build unix

package graph

import (
	"fmt"
	"os"
	"syscall"
)

// mapFile maps path read-write MAP_PRIVATE: reads fault pages straight from
// the page cache (shared across every mapping of the same file) and weight
// writes land in private copy-on-write pages, so the file is never dirtied.
// The descriptor is closed immediately after mapping — the mapping keeps the
// file data alive on its own.
func mapFile(path string) ([]byte, func() error, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, err
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return nil, nil, err
	}
	size := st.Size()
	if size == 0 {
		return nil, nil, fmt.Errorf("graph: rgd1: %s: empty file", path)
	}
	if size != int64(int(size)) {
		return nil, nil, fmt.Errorf("graph: rgd1: %s: file too large to map", path)
	}
	data, err := syscall.Mmap(int(f.Fd()), 0, int(size), syscall.PROT_READ|syscall.PROT_WRITE, syscall.MAP_PRIVATE)
	if err != nil {
		return nil, nil, fmt.Errorf("graph: rgd1: mmap %s: %w", path, err)
	}
	return data, func() error { return syscall.Munmap(data) }, nil
}
