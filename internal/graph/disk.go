package graph

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"os"
	"unsafe"
)

// RGD1 is the mmap-able on-disk CSR format ("Repro Graph Disk v1"). A file
// is one 4096-byte header page followed by page-aligned sections that are
// byte-for-byte the graph's in-memory arrays (little-endian):
//
//	header   magic "RGD1" | flags u32 | n u64 | m u64 | maxDeg u64 |
//	         sha256[32] over all section payloads in table order |
//	         section table: 7 × (offset u64, length u64)
//	sections offsets[n+1]i32, neighbors, edgeIDs[2m]i32, mirror[2m]i32,
//	         nodeW[n]i64, edgeW[m]i64, nbrIndex
//
// In the default (raw) mode the neighbors section is the [2m]int32 CSR array
// and nbrIndex is empty; with DiskOptions.CompressNeighbors the neighbors
// section holds the delta-varint payload of CompressAdjacency and nbrIndex
// its [n+1]int64 byte-offset index.
//
// Because sections are page-aligned images of the runtime arrays, OpenDisk
// on a little-endian host maps the file (MAP_PRIVATE) and casts sections in
// place: no per-element decode, no allocation proportional to the arrays,
// and weight mutation lands in copy-on-write pages that never touch the
// file. The only O(n+m) load cost is one linear pass that rebuilds the
// []Edge insertion-order table (not stored — it is derivable) while bounds-
// checking neighbors, edge IDs and mirrors so a corrupt file fails at open
// rather than mid-run. Full content verification (checksum + structural
// Validate) is opt-in via DiskGraph.Verify, keeping the open path O(m) in
// pointer chasing but O(1) in I/O: pages fault in only as algorithms touch
// them.
//
// RGD1 is a local spill/cache format, not a network interchange format:
// files are trusted to the same degree as the process's own memory. Use the
// RGB1 binary codec (EncodeBinary/DecodeBinary) for untrusted transport.
const (
	diskMagic      = "RGD1"
	diskPage       = 4096
	diskHeaderSize = diskPage

	diskFlagCompressed = uint32(1 << 0)
	diskKnownFlags     = diskFlagCompressed

	// Section table order: offsets, neighbors, edgeIDs, mirror, nodeW,
	// edgeW, nbrIndex.
	diskSectionCount = 7
	diskTableOff     = 64
)

// DiskOptions configures WriteDisk.
type DiskOptions struct {
	// CompressNeighbors stores the neighbor array delta-varint compressed
	// (typically 1–2 bytes per arc instead of 4). Opening such a file
	// decodes the neighbors into fresh memory — smaller file and fewer
	// faulted pages, but the neighbor section loses zero-copy.
	CompressNeighbors bool
}

// DiskGraph is a Graph whose arrays are backed by a mapped RGD1 file.
type DiskGraph struct {
	*Graph
	// Compressed reports whether the file stored neighbors compressed.
	Compressed bool

	data  []byte
	unmap func() error
}

// Close releases the file mapping. The embedded Graph (and every slice
// handed out from it) is invalid afterwards; callers that share the graph
// must not Close until all uses have completed. Close is idempotent.
func (d *DiskGraph) Close() error {
	if d.unmap == nil {
		return nil
	}
	u := d.unmap
	d.unmap = nil
	d.data = nil
	return u()
}

// Verify recomputes the section checksum against the header and runs the
// full structural Validate. It is the slow, read-everything complement to
// OpenDisk's bounds-only checks.
func (d *DiskGraph) Verify() error {
	if d.data == nil {
		return fmt.Errorf("graph: rgd1: verify on closed graph")
	}
	var want [32]byte
	copy(want[:], d.data[32:64])
	h := sha256.New()
	for i := 0; i < diskSectionCount; i++ {
		off, length := diskTableEntry(d.data, i)
		h.Write(d.data[off : off+length])
	}
	if got := h.Sum(nil); [32]byte(got) != want {
		return fmt.Errorf("graph: rgd1: checksum mismatch")
	}
	return d.Graph.Validate()
}

func diskPad(n int64) int64 {
	return (n + diskPage - 1) &^ (diskPage - 1)
}

func diskTableEntry(hdr []byte, i int) (off, length int64) {
	base := diskTableOff + 16*i
	return int64(binary.LittleEndian.Uint64(hdr[base:])),
		int64(binary.LittleEndian.Uint64(hdr[base+8:]))
}

var hostLittleEndian = binary.NativeEndian.Uint16([]byte{0x12, 0x34}) == 0x3412

// i32Raw returns the raw little-endian bytes of xs, zero-copy on
// little-endian hosts.
func i32Raw(xs []int32) []byte {
	if len(xs) == 0 {
		return nil
	}
	if hostLittleEndian {
		return unsafe.Slice((*byte)(unsafe.Pointer(&xs[0])), 4*len(xs))
	}
	out := make([]byte, 4*len(xs))
	for i, x := range xs {
		binary.LittleEndian.PutUint32(out[4*i:], uint32(x))
	}
	return out
}

func i64Raw(xs []int64) []byte {
	if len(xs) == 0 {
		return nil
	}
	if hostLittleEndian {
		return unsafe.Slice((*byte)(unsafe.Pointer(&xs[0])), 8*len(xs))
	}
	out := make([]byte, 8*len(xs))
	for i, x := range xs {
		binary.LittleEndian.PutUint64(out[8*i:], uint64(x))
	}
	return out
}

// castI32 reinterprets b as []int32. Caller guarantees little-endian host
// and 4-byte alignment.
func castI32(b []byte) []int32 {
	if len(b) == 0 {
		return nil
	}
	return unsafe.Slice((*int32)(unsafe.Pointer(&b[0])), len(b)/4)
}

func castI64(b []byte) []int64 {
	if len(b) == 0 {
		return nil
	}
	return unsafe.Slice((*int64)(unsafe.Pointer(&b[0])), len(b)/8)
}

func copyI32(b []byte) []int32 {
	out := make([]int32, len(b)/4)
	for i := range out {
		out[i] = int32(binary.LittleEndian.Uint32(b[4*i:]))
	}
	return out
}

func copyI64(b []byte) []int64 {
	out := make([]int64, len(b)/8)
	for i := range out {
		out[i] = int64(binary.LittleEndian.Uint64(b[8*i:]))
	}
	return out
}

// diskLayout renders g's header page and section payloads — everything
// about the RGD1 image except where the bytes go. WriteDisk streams the
// result to a file; tests stream it into memory.
func diskLayout(g *Graph, opts DiskOptions) (hdr []byte, sections [][]byte) {
	sections = make([][]byte, diskSectionCount)
	sections[0] = i32Raw(g.offsets)
	sections[2] = i32Raw(g.edgeIDs)
	sections[3] = i32Raw(g.mirror)
	sections[4] = i64Raw(g.nodeW)
	sections[5] = i64Raw(g.edgeW)
	flags := uint32(0)
	if opts.CompressNeighbors {
		ca := g.CompressAdjacency()
		flags |= diskFlagCompressed
		sections[1] = ca.blob
		sections[6] = i64Raw(ca.offs)
	} else {
		sections[1] = i32Raw(g.neighbors)
	}

	hdr = make([]byte, diskHeaderSize)
	copy(hdr, diskMagic)
	binary.LittleEndian.PutUint32(hdr[4:], flags)
	binary.LittleEndian.PutUint64(hdr[8:], uint64(g.n))
	binary.LittleEndian.PutUint64(hdr[16:], uint64(len(g.edges)))
	binary.LittleEndian.PutUint64(hdr[24:], uint64(g.maxDeg))
	h := sha256.New()
	off := int64(diskHeaderSize)
	for i, sec := range sections {
		base := diskTableOff + 16*i
		if len(sec) > 0 {
			binary.LittleEndian.PutUint64(hdr[base:], uint64(off))
			off += diskPad(int64(len(sec)))
		}
		binary.LittleEndian.PutUint64(hdr[base+8:], uint64(len(sec)))
		h.Write(sec)
	}
	copy(hdr[32:64], h.Sum(nil))
	return hdr, sections
}

// WriteDisk writes g to path in RGD1 format. The write goes through a
// temporary file in the same directory and an atomic rename, so a crash
// mid-write never leaves a truncated file under the final name.
func WriteDisk(path string, g *Graph, opts DiskOptions) (err error) {
	hdr, sections := diskLayout(g, opts)
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	defer func() {
		if err != nil {
			f.Close()
			os.Remove(tmp)
		}
	}()
	if err = writePadded(f, hdr, sections); err != nil {
		return err
	}
	if err = f.Sync(); err != nil {
		return err
	}
	if err = f.Close(); err != nil {
		return err
	}
	return os.Rename(tmp, path)
}

func writePadded(w io.Writer, hdr []byte, sections [][]byte) error {
	if _, err := w.Write(hdr); err != nil {
		return err
	}
	var pad [diskPage]byte
	for _, sec := range sections {
		if len(sec) == 0 {
			continue
		}
		if _, err := w.Write(sec); err != nil {
			return err
		}
		if tail := int64(len(sec)) % diskPage; tail != 0 {
			if _, err := w.Write(pad[:diskPage-tail]); err != nil {
				return err
			}
		}
	}
	return nil
}

// OpenDisk maps the RGD1 file at path and returns a graph backed by it.
// On little-endian hosts with an OS mapping, the CSR arrays alias the
// mapped pages (copy-on-write, so weight mutation never dirties the file);
// elsewhere the sections are copy-decoded. Either way the open cost is one
// linear bounds-checking pass — see the format comment. Close the returned
// DiskGraph only after every use of the graph has finished.
func OpenDisk(path string) (*DiskGraph, error) {
	data, unmap, err := mapFile(path)
	if err != nil {
		return nil, err
	}
	g, compressed, err := decodeDisk(data, unmap != nil)
	if err != nil {
		if unmap != nil {
			unmap()
		}
		return nil, fmt.Errorf("graph: rgd1: %s: %w", path, err)
	}
	return &DiskGraph{Graph: g, Compressed: compressed, data: data, unmap: unmap}, nil
}

// DecodeDisk decodes an in-memory RGD1 image with full verification
// (checksum and structural Validate). It never aliases data, so it is safe
// for untrusted bytes — this is the entry point the fuzz target drives.
func DecodeDisk(data []byte) (*Graph, error) {
	g, compressed, err := decodeDisk(data, false)
	if err != nil {
		return nil, err
	}
	d := DiskGraph{Graph: g, Compressed: compressed, data: data}
	if err := d.Verify(); err != nil {
		return nil, err
	}
	return g, nil
}

type diskSection struct {
	off, len int64
}

// decodeDisk validates the header and sections of an RGD1 image and
// materializes the Graph. zeroCopy selects aliasing the image (requires a
// little-endian host and aligned sections — both guaranteed for mapped
// files, re-checked here anyway) over copy-decoding.
func decodeDisk(data []byte, zeroCopy bool) (*Graph, bool, error) {
	if len(data) < diskHeaderSize || string(data[:4]) != diskMagic {
		return nil, false, fmt.Errorf("not an RGD1 file")
	}
	flags := binary.LittleEndian.Uint32(data[4:])
	if flags&^diskKnownFlags != 0 {
		return nil, false, fmt.Errorf("unknown flags %#x", flags)
	}
	compressed := flags&diskFlagCompressed != 0
	n64 := binary.LittleEndian.Uint64(data[8:])
	m64 := binary.LittleEndian.Uint64(data[16:])
	if n64 >= math.MaxInt32 || 2*m64 >= math.MaxInt32 {
		return nil, false, fmt.Errorf("n=%d m=%d exceed CSR int32 range", n64, m64)
	}
	n, m := int(n64), int(m64)

	var secs [diskSectionCount]diskSection
	for i := range secs {
		off, length := diskTableEntry(data, i)
		if length == 0 {
			continue
		}
		if off < diskHeaderSize || off%diskPage != 0 || length < 0 || off+length > int64(len(data)) {
			return nil, false, fmt.Errorf("section %d out of bounds (off=%d len=%d file=%d)", i, off, length, len(data))
		}
		secs[i] = diskSection{off, length}
	}
	want := func(i int, bytes int64, what string) ([]byte, error) {
		if secs[i].len != bytes {
			return nil, fmt.Errorf("%s section is %d bytes, want %d", what, secs[i].len, bytes)
		}
		return data[secs[i].off : secs[i].off+secs[i].len], nil
	}

	offB, err := want(0, 4*int64(n+1), "offsets")
	if err != nil {
		return nil, false, err
	}
	idB, err := want(2, 8*int64(m), "edgeIDs")
	if err != nil {
		return nil, false, err
	}
	mirB, err := want(3, 8*int64(m), "mirror")
	if err != nil {
		return nil, false, err
	}
	nwB, err := want(4, 8*int64(n), "nodeW")
	if err != nil {
		return nil, false, err
	}
	ewB, err := want(5, 8*int64(m), "edgeW")
	if err != nil {
		return nil, false, err
	}

	zc := zeroCopy && hostLittleEndian && aligned(data)
	toI32 := copyI32
	toI64 := copyI64
	if zc {
		toI32 = castI32
		toI64 = castI64
	}
	g := &Graph{
		n:       n,
		offsets: toI32(offB),
		edgeIDs: toI32(idB),
		mirror:  toI32(mirB),
		nodeW:   toI64(nwB),
		edgeW:   toI64(ewB),
	}
	if compressed {
		if _, err := want(6, 8*int64(n+1), "nbrIndex"); err != nil {
			return nil, false, err
		}
	} else if _, err := want(1, 8*int64(m), "neighbors"); err != nil {
		return nil, false, err
	}

	// Offsets invariants first: every later bound depends on them.
	if g.offsets[0] != 0 || int(g.offsets[n]) != 2*m {
		return nil, false, fmt.Errorf("offsets endpoints corrupt")
	}
	maxDeg := 0
	for v := 0; v < n; v++ {
		d := int(g.offsets[v+1] - g.offsets[v])
		if d < 0 {
			return nil, false, fmt.Errorf("offsets not monotone at node %d", v)
		}
		if d > maxDeg {
			maxDeg = d
		}
	}
	g.maxDeg = maxDeg

	if compressed {
		nbi := toI64(data[secs[6].off : secs[6].off+secs[6].len])
		blob := data[secs[1].off : secs[1].off+secs[1].len]
		if nbi[0] != 0 || nbi[n] != int64(len(blob)) {
			return nil, false, fmt.Errorf("compressed-neighbor index endpoints corrupt")
		}
		g.neighbors, err = decodeAllDeltaVarint(nbi, blob, g.offsets, 2*m)
		if err != nil {
			return nil, false, err
		}
	} else {
		g.neighbors = toI32(data[secs[1].off : secs[1].off+secs[1].len])
	}

	// One linear pass rebuilds the insertion-order edge table (the only
	// array RGD1 does not store) and bounds-checks every arc so that a
	// corrupt file fails here, not as an index panic mid-algorithm.
	g.edges = make([]Edge, m)
	assigned := 0
	for v := 0; v < n; v++ {
		for k := g.offsets[v]; k < g.offsets[v+1]; k++ {
			u := g.neighbors[k]
			if u < 0 || int(u) >= n {
				return nil, false, fmt.Errorf("neighbor %d of node %d out of range", u, v)
			}
			id := g.edgeIDs[k]
			if id < 0 || int(id) >= m {
				return nil, false, fmt.Errorf("edge ID %d out of range", id)
			}
			if mk := g.mirror[k]; mk < 0 || int(mk) >= 2*m {
				return nil, false, fmt.Errorf("mirror %d out of range", mk)
			}
			if int32(v) < u {
				g.edges[id] = Edge{U: v, V: int(u)}
				assigned++
			}
		}
	}
	if assigned != m {
		return nil, false, fmt.Errorf("arc scan assigned %d canonical edges, want %d", assigned, m)
	}
	return g, compressed, nil
}

// aligned reports whether the image base allows in-place int64 casts of
// page-aligned sections.
func aligned(data []byte) bool {
	return len(data) == 0 || uintptr(unsafe.Pointer(&data[0]))%8 == 0
}
