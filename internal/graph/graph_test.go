package graph

import (
	"bytes"
	"testing"
	"testing/quick"

	"repro/internal/rng"
)

func TestAddEdgeErrors(t *testing.T) {
	b := NewBuilder(3)
	tests := []struct {
		name string
		u, v int
	}{
		{"self loop", 1, 1},
		{"u out of range", -1, 0},
		{"v out of range", 0, 3},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			if err := b.AddEdge(tc.u, tc.v); err == nil {
				t.Fatalf("AddEdge(%d,%d) succeeded, want error", tc.u, tc.v)
			}
		})
	}
	if err := b.AddEdge(0, 1); err != nil {
		t.Fatal(err)
	}
	// Duplicates surface at Build, not AddEdge.
	if err := b.AddEdge(1, 0); err != nil {
		t.Fatalf("AddEdge deferred duplicate check, got early error %v", err)
	}
	if _, err := b.Build(); err == nil {
		t.Fatal("duplicate edge (reversed) accepted by Build")
	}
}

func TestBasicAccessors(t *testing.T) {
	b := NewBuilder(4)
	b.MustAddEdge(0, 1)
	b.MustAddEdge(2, 1)
	b.MustAddEdge(3, 1)
	g := b.MustBuild()
	if g.N() != 4 || g.M() != 3 {
		t.Fatalf("N=%d M=%d", g.N(), g.M())
	}
	if g.MaxDegree() != 3 {
		t.Fatalf("MaxDegree = %d, want 3", g.MaxDegree())
	}
	nb := g.Neighbors(1)
	want := []int32{0, 2, 3}
	if len(nb) != len(want) {
		t.Fatalf("Neighbors(1) = %v", nb)
	}
	for i := range nb {
		if nb[i] != want[i] {
			t.Fatalf("Neighbors(1) = %v, want sorted %v", nb, want)
		}
	}
	if !g.HasEdge(1, 3) || g.HasEdge(0, 2) {
		t.Fatal("HasEdge wrong")
	}
	id, ok := g.EdgeID(3, 1)
	if !ok || g.EdgeByID(id) != (Edge{U: 1, V: 3}) {
		t.Fatalf("EdgeID/EdgeByID broken: id=%d ok=%v", id, ok)
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestEdgeOther(t *testing.T) {
	e := Edge{U: 2, V: 5}
	if e.Other(2) != 5 || e.Other(5) != 2 {
		t.Fatal("Other wrong")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Other on non-endpoint did not panic")
		}
	}()
	e.Other(7)
}

func TestWeights(t *testing.T) {
	b := NewBuilder(2)
	b.MustAddEdge(0, 1)
	g := b.MustBuild()
	g.SetNodeWeight(0, 10)
	g.SetNodeWeight(1, 4)
	g.SetEdgeWeight(0, 7)
	if g.NodeWeight(0) != 10 || g.EdgeWeight(0) != 7 {
		t.Fatal("weights not stored")
	}
	if g.MaxNodeWeight() != 10 || g.MaxEdgeWeight() != 7 || g.TotalNodeWeight() != 14 {
		t.Fatal("aggregate weights wrong")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("SetNodeWeight(0) accepted non-positive weight")
		}
	}()
	g.SetNodeWeight(0, 0)
}

func TestCloneIndependentWeights(t *testing.T) {
	b := NewBuilder(3)
	b.MustAddEdge(0, 1)
	g := b.MustBuild()
	g.SetNodeWeight(2, 9)
	g.SetEdgeWeight(0, 3)
	c := g.Clone()
	c.SetNodeWeight(2, 5)
	c.SetEdgeWeight(0, 8)
	if g.NodeWeight(2) != 9 || g.EdgeWeight(0) != 3 {
		t.Fatal("Clone shares weight state with original")
	}
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestGenerators(t *testing.T) {
	r := rng.New(1)
	tests := []struct {
		name    string
		g       *Graph
		wantN   int
		wantM   int // -1 means skip
		maxDeg  int // -1 means skip
		bipart  bool
		checkBi bool
	}{
		{"star", Star(6), 6, 5, 5, true, true},
		{"path", Path(5), 5, 4, 2, true, true},
		{"cycle even", Cycle(6), 6, 6, 2, true, true},
		{"cycle odd", Cycle(5), 5, 5, 2, false, true},
		{"complete", Complete(5), 5, 10, 4, false, true},
		{"grid", Grid(3, 4), 12, 17, -1, true, true},
		{"caterpillar", Caterpillar(4, 3), 16, 15, -1, true, true},
		{"gnp", GNP(30, 0.2, r), 30, -1, -1, false, false},
		{"tree", RandomTree(40, r), 40, 39, -1, true, true},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			if err := tc.g.Validate(); err != nil {
				t.Fatal(err)
			}
			if tc.g.N() != tc.wantN {
				t.Errorf("N = %d, want %d", tc.g.N(), tc.wantN)
			}
			if tc.wantM >= 0 && tc.g.M() != tc.wantM {
				t.Errorf("M = %d, want %d", tc.g.M(), tc.wantM)
			}
			if tc.maxDeg >= 0 && tc.g.MaxDegree() != tc.maxDeg {
				t.Errorf("MaxDegree = %d, want %d", tc.g.MaxDegree(), tc.maxDeg)
			}
			if tc.checkBi {
				_, ok := tc.g.Bipartition()
				if ok != tc.bipart {
					t.Errorf("Bipartition ok = %v, want %v", ok, tc.bipart)
				}
			}
		})
	}
}

func TestRandomTreeConnected(t *testing.T) {
	r := rng.New(2)
	for n := 1; n <= 30; n++ {
		g := RandomTree(n, r)
		if g.M() != max(0, n-1) {
			t.Fatalf("tree on %d nodes has %d edges", n, g.M())
		}
		_, nc := g.ConnectedComponents()
		if nc != 1 && n > 0 {
			t.Fatalf("tree on %d nodes has %d components", n, nc)
		}
	}
}

func TestRandomRegular(t *testing.T) {
	r := rng.New(3)
	for _, tc := range []struct{ n, d int }{{10, 3}, {20, 4}, {16, 5}, {8, 0}} {
		g, err := RandomRegular(tc.n, tc.d, r)
		if err != nil {
			t.Fatalf("RandomRegular(%d,%d): %v", tc.n, tc.d, err)
		}
		for v := 0; v < tc.n; v++ {
			if g.Degree(v) != tc.d {
				t.Fatalf("RandomRegular(%d,%d): deg(%d)=%d", tc.n, tc.d, v, g.Degree(v))
			}
		}
		if err := g.Validate(); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := RandomRegular(5, 3, r); err == nil {
		t.Fatal("odd n·d accepted")
	}
	if _, err := RandomRegular(4, 4, r); err == nil {
		t.Fatal("d >= n accepted")
	}
}

func TestRandomBipartite(t *testing.T) {
	r := rng.New(4)
	g, side := RandomBipartite(10, 15, 0.3, r)
	if g.N() != 25 {
		t.Fatalf("N = %d", g.N())
	}
	for _, e := range g.Edges() {
		if side[e.U] == side[e.V] {
			t.Fatalf("edge %v within one side", e)
		}
	}
	if _, ok := g.Bipartition(); !ok {
		t.Fatal("RandomBipartite produced a non-bipartite graph")
	}
}

func TestLineGraphProperties(t *testing.T) {
	r := rng.New(5)
	// Property: |V(L)| = |E(G)|, deg_L(e={u,v}) = deg(u)+deg(v)-2, and node
	// weights of L are edge weights of G.
	check := func(seed uint32) bool {
		rr := r.Split(uint64(seed))
		g := GNP(14, 0.3, rr)
		AssignUniformEdgeWeights(g, 50, rr)
		lg := g.LineGraph()
		if lg.N() != g.M() {
			return false
		}
		for id, e := range g.Edges() {
			if lg.Degree(id) != g.Degree(e.U)+g.Degree(e.V)-2 {
				return false
			}
			if lg.NodeWeight(id) != g.EdgeWeight(id) {
				return false
			}
		}
		return lg.Validate() == nil
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestLineGraphOfTriangleIsTriangle(t *testing.T) {
	g := Cycle(3)
	lg := g.LineGraph()
	if lg.N() != 3 || lg.M() != 3 {
		t.Fatalf("L(K3): N=%d M=%d, want 3,3", lg.N(), lg.M())
	}
}

func TestInducedSubgraph(t *testing.T) {
	g := Complete(5)
	AssignUniformNodeWeights(g, 100, rng.New(6))
	keep := []bool{true, false, true, true, false}
	sub, o2n, n2o := g.InducedSubgraph(keep)
	if sub.N() != 3 || sub.M() != 3 {
		t.Fatalf("sub: N=%d M=%d", sub.N(), sub.M())
	}
	for newID, oldID := range n2o {
		if o2n[oldID] != newID {
			t.Fatal("maps inconsistent")
		}
		if sub.NodeWeight(newID) != g.NodeWeight(oldID) {
			t.Fatal("weights not carried to subgraph")
		}
	}
	if o2n[1] != -1 || o2n[4] != -1 {
		t.Fatal("dropped nodes should map to -1")
	}
}

func TestIndependentSetPredicates(t *testing.T) {
	g := Path(4) // 0-1-2-3
	if !g.IsIndependentSet([]bool{true, false, true, false}) {
		t.Fatal("{0,2} should be independent")
	}
	if g.IsIndependentSet([]bool{true, true, false, false}) {
		t.Fatal("{0,1} should not be independent")
	}
	if !g.IsMaximalIndependentSet([]bool{false, true, false, true}) {
		t.Fatal("{1,3} should be a maximal IS")
	}
	if g.IsMaximalIndependentSet([]bool{true, false, false, false}) {
		t.Fatal("{0} is not maximal (3 uncovered)")
	}
	g.SetNodeWeight(2, 5)
	if got := g.SetWeight([]bool{false, false, true, true}); got != 6 {
		t.Fatalf("SetWeight = %d, want 6", got)
	}
}

func TestMatchingPredicates(t *testing.T) {
	g := Path(5) // edges 0:{0,1} 1:{1,2} 2:{2,3} 3:{3,4}
	if !g.IsMatching([]int{0, 2}) {
		t.Fatal("{01,23} should be a matching")
	}
	if g.IsMatching([]int{0, 1}) {
		t.Fatal("{01,12} shares node 1")
	}
	if !g.IsMaximalMatching([]int{1, 3}) {
		t.Fatal("{12,34} should be maximal")
	}
	if g.IsMaximalMatching([]int{0}) {
		t.Fatal("{01} is not maximal (edge 23 free)")
	}
	if g.IsMatching([]int{-1}) || g.IsMatching([]int{99}) {
		t.Fatal("out-of-range edge accepted")
	}
	g.SetEdgeWeight(1, 42)
	if g.MatchingWeight([]int{1, 3}) != 43 {
		t.Fatal("MatchingWeight wrong")
	}
	mate := g.MatchedMates([]int{1})
	if mate[1] != 2 || mate[2] != 1 || mate[0] != -1 {
		t.Fatalf("mates = %v", mate)
	}
}

func TestConnectedComponents(t *testing.T) {
	b := NewBuilder(6)
	b.MustAddEdge(0, 1)
	b.MustAddEdge(2, 3)
	b.MustAddEdge(3, 4)
	g := b.MustBuild()
	comp, nc := g.ConnectedComponents()
	if nc != 3 {
		t.Fatalf("components = %d, want 3", nc)
	}
	if comp[0] != comp[1] || comp[2] != comp[3] || comp[3] != comp[4] || comp[0] == comp[2] || comp[5] == comp[0] || comp[5] == comp[2] {
		t.Fatalf("comp = %v", comp)
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	r := rng.New(7)
	g := GNP(20, 0.25, r)
	AssignUniformNodeWeights(g, 1000, r)
	AssignUniformEdgeWeights(g, 1000, r)

	var buf bytes.Buffer
	if err := Encode(&buf, g); err != nil {
		t.Fatal(err)
	}
	h, err := Decode(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if h.N() != g.N() || h.M() != g.M() {
		t.Fatalf("round trip changed sizes: %d/%d vs %d/%d", h.N(), h.M(), g.N(), g.M())
	}
	for v := 0; v < g.N(); v++ {
		if h.NodeWeight(v) != g.NodeWeight(v) {
			t.Fatalf("node %d weight changed", v)
		}
	}
	for id, e := range g.Edges() {
		hid, ok := h.EdgeID(e.U, e.V)
		if !ok || h.EdgeWeight(hid) != g.EdgeWeight(id) {
			t.Fatalf("edge %v lost or weight changed", e)
		}
	}
}

func TestDecodeRejectsMalformed(t *testing.T) {
	cases := []struct {
		name string
		in   string
	}{
		{"empty", ""},
		{"bad header", "x y\n"},
		{"missing weights", "3 0\n"},
		{"weight count", "3 0\n1 2\n"},
		{"non-positive weight", "2 0\n1 0\n"},
		{"missing edge", "2 1\n1 1\n"},
		{"self loop", "2 1\n1 1\n0 0 1\n"},
		{"dup edge", "2 2\n1 1\n0 1 1\n1 0 1\n"},
		{"bad edge weight", "2 1\n1 1\n0 1 -4\n"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := Decode(bytes.NewBufferString(tc.in)); err == nil {
				t.Fatalf("Decode(%q) succeeded, want error", tc.in)
			}
		})
	}
}

func TestBipartitionAssignsAllNodes(t *testing.T) {
	g, _ := RandomBipartite(8, 8, 0.3, rng.New(8))
	side, ok := g.Bipartition()
	if !ok {
		t.Fatal("bipartite graph rejected")
	}
	for v, s := range side {
		if s != 0 && s != 1 {
			t.Fatalf("node %d got side %d", v, s)
		}
	}
}
