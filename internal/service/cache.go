package service

import (
	"container/list"

	"repro/internal/registry"
)

// lruCache is a fixed-capacity least-recently-used map from cache key to
// algorithm result. It is not safe for concurrent use; the Service guards
// it with its own mutex. Cached *registry.Result values are shared between
// jobs and must be treated as immutable by every reader.
type lruCache struct {
	cap   int
	order *list.List // front = most recently used
	items map[string]*list.Element
}

type lruEntry struct {
	key string
	res *registry.Result
}

func newLRUCache(capacity int) *lruCache {
	return &lruCache{
		cap:   capacity,
		order: list.New(),
		items: make(map[string]*list.Element, capacity),
	}
}

func (c *lruCache) get(key string) (*registry.Result, bool) {
	el, ok := c.items[key]
	if !ok {
		return nil, false
	}
	c.order.MoveToFront(el)
	return el.Value.(*lruEntry).res, true
}

func (c *lruCache) put(key string, res *registry.Result) {
	if c.cap <= 0 {
		return
	}
	if el, ok := c.items[key]; ok {
		el.Value.(*lruEntry).res = res
		c.order.MoveToFront(el)
		return
	}
	c.items[key] = c.order.PushFront(&lruEntry{key: key, res: res})
	for c.order.Len() > c.cap {
		oldest := c.order.Back()
		c.order.Remove(oldest)
		delete(c.items, oldest.Value.(*lruEntry).key)
	}
}

func (c *lruCache) len() int { return c.order.Len() }
