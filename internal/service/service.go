// Package service is the concurrent job and batch engine behind the HTTP
// API: a bounded worker pool that executes registry algorithms on submitted
// graphs, an in-memory job store with queued/running/done/failed/canceled
// states, per-job context cancellation and timeouts, an LRU result cache
// keyed by (graph fingerprint, algorithm, params), service metrics, and the
// batch layer (Batches) that expands one stored graph × a parameter grid
// into member jobs with per-batch progress, cancel fan-out and aggregated
// per-cell statistics (DESIGN.md §4, §4a).
//
// The engine is deliberately self-contained and transport-agnostic: the
// internal/httpapi front-end served by cmd/reprod is one client; embedding
// the Service directly (as the tests and cmd/sweep's in-process mode do) is
// another.
//
// Layer (DESIGN.md §2): service sits above internal/registry,
// internal/store and internal/stats, below internal/httpapi and the cmd
// binaries.
//
// Concurrency and ownership: a Service and a Batches are safe for
// concurrent use. The Service takes ownership of submitted graphs — callers
// must not mutate them after Submit (sharing one immutable graph across
// many jobs is fine and is exactly what the batch layer does with stored
// graphs). Results handed out in JobViews/BatchViews are shared with the
// result cache and must be treated as immutable. Lock ordering is
// Service.mu → batch.mu → (store/engine locks); see Batches.
package service

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"time"

	"repro/internal/graph"
	"repro/internal/obs"
	"repro/internal/registry"
)

// Config sizes the engine. Zero values select defaults.
type Config struct {
	// Workers is the number of concurrent executor goroutines
	// (default GOMAXPROCS).
	Workers int
	// QueueSize bounds how many jobs may wait for a worker (default 256);
	// Submit fails with ErrQueueFull beyond it.
	QueueSize int
	// CacheSize is the LRU result-cache capacity in entries (default 128).
	CacheSize int
	// DefaultTimeout applies to jobs that do not set their own
	// (default 60s).
	DefaultTimeout time.Duration
	// MaxJobs bounds how many finished jobs the store retains for polling
	// (default 4096); beyond it the oldest finished jobs are evicted so a
	// long-running service cannot grow without bound.
	MaxJobs int
	// TenantLimits resolves per-tenant admission limits by tenant ID for
	// the fair-share queue. nil means every tenant (including the anonymous
	// "" tenant of open mode) gets the defaults: weight 1, the shared
	// QueueSize bound, no concurrent-running cap. The resolver is called on
	// the submit path and must be fast and lock-free (the HTTP layer backs
	// it with an atomically-swapped keyring).
	TenantLimits func(tenant string) TenantLimits
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.QueueSize <= 0 {
		c.QueueSize = 256
	}
	if c.CacheSize <= 0 {
		c.CacheSize = 128
	}
	if c.DefaultTimeout <= 0 {
		c.DefaultTimeout = 60 * time.Second
	}
	if c.MaxJobs <= 0 {
		c.MaxJobs = 4096
	}
	return c
}

// State is a job lifecycle state.
type State string

const (
	Queued   State = "queued"
	Running  State = "running"
	Done     State = "done"
	Failed   State = "failed"
	Canceled State = "canceled"
)

// Terminal reports whether a job in this state will never change again.
func (s State) Terminal() bool { return s == Done || s == Failed || s == Canceled }

// Request describes one job submission.
type Request struct {
	// Algo names a registered algorithm.
	Algo string
	// Graph is the input graph. The service takes ownership: callers must
	// not mutate it after Submit.
	Graph *graph.Graph
	// Params configures the run; zero fields mean registry defaults.
	Params registry.Params
	// Timeout bounds the execution (0 = Config.DefaultTimeout).
	Timeout time.Duration
	// TraceID identifies the job across tiers (logs, HTTP headers, batch
	// cells). Empty means the service generates one at submit, so every
	// job is traceable whether or not the client participates.
	TraceID string
	// Tenant is the submitting tenant's ID ("" = anonymous). It selects the
	// fair-share queue lane and scopes visibility at the HTTP layer.
	Tenant string
}

// JobView is an immutable snapshot of a job.
type JobView struct {
	ID          string
	TraceID     string
	Tenant      string
	Algo        string
	Params      registry.Params
	State       State
	Error       string
	CacheHit    bool
	Result      *registry.Result
	SubmittedAt time.Time
	StartedAt   time.Time
	FinishedAt  time.Time
}

type job struct {
	id       string
	traceID  string
	tenant   string
	spec     *registry.Spec
	g        *graph.Graph
	params   registry.Params
	cacheKey string
	timeout  time.Duration
	// fromBatch marks jobs expanded from a batch; their cache traffic is
	// metered separately so /metrics can tell a cached batch cell from a
	// single-job miss.
	fromBatch bool
	// notify, when set, is invoked exactly once — under s.mu, from
	// markTerminal — when the job reaches a terminal state. It must be fast
	// and must not call back into the Service (the batch engine only touches
	// its own state).
	notify func(JobView)

	state     State
	err       string
	cacheHit  bool
	result    *registry.Result
	submitted time.Time
	started   time.Time
	finished  time.Time
	cancel    context.CancelFunc
}

// Service errors surfaced to clients.
var (
	ErrQueueFull = errors.New("service: job queue is full")
	ErrClosed    = errors.New("service: service is closed")
	ErrDraining  = errors.New("service: service is draining")
	ErrNotFound  = errors.New("service: no such job")
	ErrFinished  = errors.New("service: job already finished")
)

// Service is the job engine. Create with New, release with Close.
type Service struct {
	cfg   Config
	queue *fairQueue
	wg    sync.WaitGroup

	// groupSem bounds how many job groups execute concurrently (one engine
	// run at a time each); sized like the worker pool so grouped and
	// per-job load share the same parallelism budget. groupWG tracks group
	// runner goroutines for Close.
	groupSem chan struct{}
	groupWG  sync.WaitGroup

	mu             sync.Mutex
	closed         bool
	draining       bool // closed via Drain: submissions get ErrDraining
	jobs           map[string]*job
	terminal       []string // finished job IDs, oldest first, for eviction
	groups         map[string]*group
	terminalGroups []string // finished group IDs, oldest first, for eviction
	cache          *lruCache
	met            counters
	tenantMet      map[string]*tenantCounters // per-tenant totals, "" excluded
	queued         int                        // jobs admitted but not yet running, minus canceled ones
	running        int
	nextID         uint64
	nextGroupID    uint64
}

// tenantCounter lazily creates the per-tenant counter row. Must be called
// with s.mu held; the anonymous tenant is not tracked (open-mode metrics
// stay byte-identical to previous releases).
func (s *Service) tenantCounter(tenant string) *tenantCounters {
	tc := s.tenantMet[tenant]
	if tc == nil {
		tc = &tenantCounters{}
		s.tenantMet[tenant] = tc
	}
	return tc
}

// markTerminal must be called with s.mu held once a job reaches a terminal
// state: it releases the job's input graph, evicts the oldest finished
// jobs beyond the retention bound, and fires the job's terminal
// notification (batch bookkeeping) exactly once.
func (s *Service) markTerminal(jb *job) {
	jb.g = nil
	jb.finished = time.Now()
	if jb.tenant != "" {
		tc := s.tenantCounter(jb.tenant)
		switch jb.state {
		case Done:
			tc.completed++
		case Failed:
			tc.failed++
		case Canceled:
			tc.canceled++
		}
	}
	s.terminal = append(s.terminal, jb.id)
	for len(s.terminal) > s.cfg.MaxJobs {
		delete(s.jobs, s.terminal[0])
		s.terminal = s.terminal[1:]
	}
	if jb.notify != nil {
		jb.notify(jb.view())
	}
}

// New starts a Service with cfg's worker pool.
func New(cfg Config) *Service {
	cfg = cfg.withDefaults()
	s := &Service{
		cfg:       cfg,
		queue:     newFairQueue(cfg.QueueSize, cfg.TenantLimits),
		jobs:      make(map[string]*job),
		groups:    make(map[string]*group),
		groupSem:  make(chan struct{}, cfg.Workers),
		cache:     newLRUCache(cfg.CacheSize),
		tenantMet: make(map[string]*tenantCounters),
	}
	s.wg.Add(cfg.Workers)
	for i := 0; i < cfg.Workers; i++ {
		go s.worker()
	}
	return s
}

// Submit validates and enqueues a job. If an identical run (same graph
// fingerprint, algorithm and normalized params) is cached, the job completes
// immediately with CacheHit set and never occupies a worker.
func (s *Service) Submit(req Request) (JobView, error) {
	return s.submit(req, false, nil)
}

// submit is the shared submission path. fromBatch routes cache accounting to
// the batch counters; notify, if non-nil, fires once at the job's terminal
// transition (see job.notify).
func (s *Service) submit(req Request, fromBatch bool, notify func(JobView)) (JobView, error) {
	spec, ok := registry.Get(req.Algo)
	if !ok {
		return JobView{}, fmt.Errorf("service: unknown algorithm %q", req.Algo)
	}
	if req.Graph == nil {
		return JobView{}, errors.New("service: nil graph")
	}
	params := req.Params.Normalized()
	if err := spec.Validate(params); err != nil {
		return JobView{}, err
	}
	timeout := req.Timeout
	if timeout <= 0 {
		timeout = s.cfg.DefaultTimeout
	}
	key := registry.Fingerprint(req.Graph) + "|" + spec.CacheKey(params)

	s.mu.Lock()
	defer s.mu.Unlock()
	if s.draining {
		return JobView{}, ErrDraining
	}
	if s.closed {
		return JobView{}, ErrClosed
	}
	s.nextID++
	trace := req.TraceID
	if trace == "" {
		trace = obs.NewTraceID()
	}
	jb := &job{
		id:        fmt.Sprintf("j%08d", s.nextID),
		traceID:   trace,
		tenant:    req.Tenant,
		spec:      spec,
		g:         req.Graph,
		params:    params,
		cacheKey:  key,
		timeout:   timeout,
		fromBatch: fromBatch,
		notify:    notify,
		state:     Queued,
		submitted: time.Now(),
	}
	s.met.submitted++
	if fromBatch {
		s.met.batchMembers++
	}
	if jb.tenant != "" {
		s.tenantCounter(jb.tenant).submitted++
	}

	if res, hit := s.cache.get(key); hit {
		jb.state = Done
		jb.cacheHit = true
		jb.result = res
		jb.started = jb.submitted
		if fromBatch {
			s.met.batchCacheHits++
		} else {
			s.met.cacheHits++
		}
		s.met.completed++
		s.jobs[jb.id] = jb
		s.markTerminal(jb)
		return jb.view(), nil
	}
	if fromBatch {
		s.met.batchCacheMisses++
	} else {
		s.met.cacheMisses++
	}

	if err := s.queue.push(jb); err != nil {
		s.met.submitted--
		if fromBatch {
			s.met.batchMembers--
			s.met.batchCacheMisses--
		} else {
			s.met.cacheMisses--
		}
		if jb.tenant != "" {
			tc := s.tenantCounter(jb.tenant)
			tc.submitted--
			if errors.Is(err, ErrQueueFull) {
				tc.rejected++
			}
		}
		if errors.Is(err, ErrClosed) {
			// Raced with Close/Drain between the closed check and the push;
			// surface the same error the check would have.
			if s.draining {
				return JobView{}, ErrDraining
			}
			return JobView{}, ErrClosed
		}
		return JobView{}, ErrQueueFull
	}
	s.queued++
	s.jobs[jb.id] = jb
	return jb.view(), nil
}

// Get returns a snapshot of the job with the given ID.
func (s *Service) Get(id string) (JobView, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	jb, ok := s.jobs[id]
	if !ok {
		return JobView{}, false
	}
	return jb.view(), true
}

// Cancel stops a queued or running job. Queued jobs transition to Canceled
// immediately; running jobs have their context canceled and transition once
// the worker observes it. Finished jobs return ErrFinished.
func (s *Service) Cancel(id string) (JobView, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	jb, ok := s.jobs[id]
	if !ok {
		return JobView{}, ErrNotFound
	}
	switch jb.state {
	case Queued:
		jb.state = Canceled
		s.met.canceled++
		s.queued-- // still in the fair queue; the worker will skip it
		s.markTerminal(jb)
	case Running:
		if jb.cancel != nil {
			jb.cancel()
		}
	default:
		return jb.view(), ErrFinished
	}
	return jb.view(), nil
}

// Metrics returns a snapshot of the service counters.
func (s *Service) Metrics() Metrics {
	s.mu.Lock()
	defer s.mu.Unlock()
	p50, p90, p99 := s.met.percentiles()
	m := Metrics{
		Submitted:        s.met.submitted,
		Completed:        s.met.completed,
		Failed:           s.met.failed,
		Canceled:         s.met.canceled,
		CacheHits:        s.met.cacheHits,
		CacheMisses:      s.met.cacheMisses,
		BatchMembers:     s.met.batchMembers,
		BatchCacheHits:   s.met.batchCacheHits,
		BatchCacheMisses: s.met.batchCacheMisses,
		CacheSize:        s.cache.len(),
		Queued:           s.queued,
		Running:          s.running,
		Workers:          s.cfg.Workers,
		LatencyP50Ms:     p50,
		LatencyP90Ms:     p90,
		LatencyP99Ms:     p99,
	}
	if lookups := m.CacheHits + m.CacheMisses; lookups > 0 {
		m.CacheHitRate = float64(m.CacheHits) / float64(lookups)
	}
	if lookups := m.BatchCacheHits + m.BatchCacheMisses; lookups > 0 {
		m.BatchCacheHitRate = float64(m.BatchCacheHits) / float64(lookups)
	}
	m.Tenants = s.tenantMetricsLocked()
	return m
}

// tenantMetricsLocked merges the cumulative per-tenant counters with the
// fair queue's live occupancy. Must be called with s.mu held. Returns nil
// when no named tenant has ever submitted (open mode), keeping the JSON
// metrics byte-identical to previous releases.
func (s *Service) tenantMetricsLocked() map[string]TenantMetrics {
	stats := s.queue.stats()
	if len(s.tenantMet) == 0 {
		return nil
	}
	out := make(map[string]TenantMetrics, len(s.tenantMet))
	for name, tc := range s.tenantMet {
		st := stats[name]
		out[name] = TenantMetrics{
			Submitted: tc.submitted,
			Completed: tc.completed,
			Failed:    tc.failed,
			Canceled:  tc.canceled,
			Rejected:  tc.rejected,
			Queued:    st.Queued,
			Running:   st.Running,
		}
	}
	return out
}

// Telemetry returns a snapshot of the engine-telemetry aggregates (round
// and message histograms over live completions). It backs the Prometheus
// exposition and is kept out of the JSON Metrics struct on purpose.
func (s *Service) Telemetry() EngineTelemetry {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.met.engineTelemetry()
}

// Close stops accepting submissions, waits for queued and running jobs and
// job groups to drain, and releases the worker pool.
func (s *Service) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	s.mu.Unlock()
	s.queue.close()
	s.wg.Wait()
	s.groupWG.Wait()
}

// Drain stops admission immediately (submissions fail with ErrDraining),
// abandons queued-but-not-started jobs, and waits up to timeout for running
// jobs and groups to finish. Abandoned jobs were never journaled terminal,
// so a WAL resume after restart re-runs them — this is the SIGTERM
// checkpoint path, where Close's run-everything semantics would block
// shutdown behind an arbitrarily deep backlog. Returns true when all
// in-flight work finished within the timeout. Safe to call more than once
// and after Close.
func (s *Service) Drain(timeout time.Duration) bool {
	s.mu.Lock()
	s.closed = true
	s.draining = true
	s.mu.Unlock()
	s.queue.abort()
	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		s.groupWG.Wait()
		close(done)
	}()
	select {
	case <-done:
		return true
	case <-time.After(timeout):
		return false
	}
}

func (s *Service) worker() {
	defer s.wg.Done()
	for {
		jb, ok := s.queue.pop()
		if !ok {
			return
		}
		s.runJob(jb)
		s.queue.release(jb.tenant)
	}
}

func (s *Service) runJob(jb *job) {
	s.mu.Lock()
	if jb.state != Queued { // canceled while waiting; already uncounted
		s.mu.Unlock()
		return
	}
	s.queued--
	jb.state = Running
	jb.started = time.Now()
	ctx, cancel := context.WithTimeout(context.Background(), jb.timeout)
	jb.cancel = cancel
	s.running++
	// Copy the inputs under the lock: on timeout/cancel markTerminal nils
	// jb.g while the abandoned goroutine may still be computing.
	g, spec, params := jb.g, jb.spec, jb.params
	s.mu.Unlock()
	defer cancel()

	type outcome struct {
		res *registry.Result
		err error
	}
	ch := make(chan outcome, 1)
	// The registry algorithms are synchronous and do not poll the context,
	// so cancellation abandons the computation: the job's state transitions
	// immediately, but the worker stays occupied until the goroutine below
	// returns — otherwise a stream of instantly-timing-out jobs would stack
	// unbounded background computations and defeat the bounded pool. Every
	// algorithm terminates (the simulator enforces a round limit), so the
	// drain always completes.
	go func() {
		defer func() {
			if r := recover(); r != nil {
				ch <- outcome{err: fmt.Errorf("service: algorithm panicked: %v", r)}
			}
		}()
		res, err := spec.Run(g, params)
		ch <- outcome{res: res, err: err}
	}()

	finish := func(out outcome) {
		s.mu.Lock()
		s.running--
		if out.err != nil {
			jb.state = Failed
			jb.err = out.err.Error()
			s.met.failed++
		} else {
			jb.state = Done
			jb.result = out.res
			s.cache.put(jb.cacheKey, out.res)
			s.met.completed++
			// Live completion: fold the run's trace into the engine
			// aggregates (cache hits replay an old trace and are skipped —
			// they did no engine work).
			s.met.recordEngine(traceOf(out.res))
		}
		s.markTerminal(jb)
		if out.err == nil {
			s.met.recordLatency(jb.finished.Sub(jb.started))
		}
		s.mu.Unlock()
	}

	select {
	case out := <-ch:
		finish(out)
	case <-ctx.Done():
		// The computation may have completed in the same instant the
		// deadline fired (or a cancel landed); prefer the finished result
		// over discarding it.
		select {
		case out := <-ch:
			finish(out)
			return
		default:
		}
		s.mu.Lock()
		s.running--
		if errors.Is(ctx.Err(), context.DeadlineExceeded) {
			jb.state = Failed
			jb.err = fmt.Sprintf("service: job exceeded its %s timeout", jb.timeout)
			s.met.failed++
		} else {
			jb.state = Canceled
			s.met.canceled++
		}
		s.markTerminal(jb)
		s.mu.Unlock()
		<-ch // drain the abandoned computation; see the comment above
	}
}

// view must be called with s.mu held (or on a job not yet shared).
func (j *job) view() JobView {
	return JobView{
		ID:          j.id,
		TraceID:     j.traceID,
		Tenant:      j.tenant,
		Algo:        j.spec.Name,
		Params:      j.params,
		State:       j.state,
		Error:       j.err,
		CacheHit:    j.cacheHit,
		Result:      j.result,
		SubmittedAt: j.submitted,
		StartedAt:   j.started,
		FinishedAt:  j.finished,
	}
}
