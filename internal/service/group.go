package service

import (
	"context"
	"errors"
	"fmt"
	"time"

	"repro/internal/graph"
	"repro/internal/obs"
	"repro/internal/registry"
)

// This file is the worker-side grouped execution path behind POST
// /v1/jobgroups (DESIGN.md §6a): one submission runs a whole seed-axis group
// — same graph, same algorithm and parameters, N seeds — against a single
// graph lookup, paying the per-job wire and bookkeeping overhead once
// instead of N times. Groups execute on their own goroutine, gated by a
// semaphore sized like the worker pool so grouped and per-cell load contend
// for the same engine parallelism, and the seeds inside a group run
// sequentially (the coordinator provides cross-group parallelism).
//
// Accounting contract: every seed flows through the same counters a
// batch-member job would (submitted, batch_members, batch cache hits/misses,
// completed/failed/canceled, engine telemetry, latency) so fleet-level
// metric sums are identical whether cells arrive grouped or one at a time.

// MaxGroupSeeds bounds the seeds one group may carry; the HTTP layer
// surfaces violations as 400s.
const MaxGroupSeeds = 4096

// ErrGroupNotFound reports an unknown group ID.
var ErrGroupNotFound = errors.New("service: no such job group")

// GroupRequest describes one grouped submission: Params is the shared base
// (its Seed field is ignored) and Seeds supplies the per-cell randomness.
type GroupRequest struct {
	// Algo names a registered algorithm.
	Algo string
	// Graph is the shared input graph; the service takes ownership as with
	// Request.Graph.
	Graph *graph.Graph
	// Params configures every run; Params.Seed is overwritten per cell.
	Params registry.Params
	// Seeds lists the per-cell seeds, one run each, in order.
	Seeds []uint64
	// Traces optionally carries one trace ID per seed (the coordinator's
	// batch-cell child IDs). Empty means IDs are derived from TraceID.
	Traces []string
	// Timeout bounds each run, not the whole group (0 = Config.DefaultTimeout).
	Timeout time.Duration
	// TraceID identifies the group; empty means the service generates one.
	TraceID string
	// Tenant is the submitting tenant's ID ("" = anonymous), recorded for
	// visibility scoping at the HTTP layer. Groups execute on the group
	// semaphore, not the fair-share queue: they are the coordinator-to-
	// worker fast path, already shaped by the coordinator's own admission.
	Tenant string
}

// GroupCellView is an immutable snapshot of one seed's run inside a group.
type GroupCellView struct {
	Seed     uint64
	TraceID  string
	State    State
	CacheHit bool
	Error    string
	Result   *registry.Result
}

// GroupView is an immutable snapshot of a job group.
type GroupView struct {
	ID          string
	TraceID     string
	Tenant      string
	Algo        string
	Params      registry.Params
	State       State
	Total       int
	Done        int
	Cells       []GroupCellView
	SubmittedAt time.Time
	FinishedAt  time.Time
}

type groupCell struct {
	seed     uint64
	traceID  string
	state    State
	cacheHit bool
	err      string
	result   *registry.Result
}

type group struct {
	id      string
	traceID string
	tenant  string
	spec    *registry.Spec
	g       *graph.Graph
	fp      string
	params  registry.Params
	timeout time.Duration

	state     State
	cells     []groupCell
	done      int // terminal cells
	canceled  bool
	submitted time.Time
	finished  time.Time
	ctx       context.Context
	cancel    context.CancelFunc
}

// SubmitGroup validates and starts a job group. Unlike Submit there is no
// queue-full rejection: the group occupies one goroutine immediately and
// waits its turn on the group semaphore, which is what bounds concurrent
// grouped engine work.
func (s *Service) SubmitGroup(req GroupRequest) (GroupView, error) {
	spec, ok := registry.Get(req.Algo)
	if !ok {
		return GroupView{}, fmt.Errorf("service: unknown algorithm %q", req.Algo)
	}
	if req.Graph == nil {
		return GroupView{}, errors.New("service: nil graph")
	}
	if len(req.Seeds) == 0 {
		return GroupView{}, errors.New("service: job group has no seeds")
	}
	if len(req.Seeds) > MaxGroupSeeds {
		return GroupView{}, fmt.Errorf("service: job group has %d seeds, max %d", len(req.Seeds), MaxGroupSeeds)
	}
	if len(req.Traces) != 0 && len(req.Traces) != len(req.Seeds) {
		return GroupView{}, fmt.Errorf("service: %d traces for %d seeds", len(req.Traces), len(req.Seeds))
	}
	params := req.Params.Normalized()
	if err := spec.Validate(params); err != nil {
		return GroupView{}, err
	}
	timeout := req.Timeout
	if timeout <= 0 {
		timeout = s.cfg.DefaultTimeout
	}
	fp := registry.Fingerprint(req.Graph)

	s.mu.Lock()
	defer s.mu.Unlock()
	if s.draining {
		return GroupView{}, ErrDraining
	}
	if s.closed {
		return GroupView{}, ErrClosed
	}
	s.nextGroupID++
	trace := req.TraceID
	if trace == "" {
		trace = obs.NewTraceID()
	}
	ctx, cancel := context.WithCancel(context.Background())
	gr := &group{
		id:        fmt.Sprintf("g%08d", s.nextGroupID),
		traceID:   trace,
		tenant:    req.Tenant,
		spec:      spec,
		g:         req.Graph,
		fp:        fp,
		params:    params,
		timeout:   timeout,
		state:     Queued,
		cells:     make([]groupCell, len(req.Seeds)),
		submitted: time.Now(),
		ctx:       ctx,
		cancel:    cancel,
	}
	for i, seed := range req.Seeds {
		cellTrace := obs.ChildTraceID(trace, i)
		if len(req.Traces) != 0 {
			cellTrace = req.Traces[i]
		}
		gr.cells[i] = groupCell{seed: seed, traceID: cellTrace, state: Queued}
	}
	s.groups[gr.id] = gr
	s.groupWG.Add(1)
	go s.runGroup(gr)
	return gr.view(), nil
}

// GetGroup returns a snapshot of the group with the given ID.
func (s *Service) GetGroup(id string) (GroupView, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	gr, ok := s.groups[id]
	if !ok {
		return GroupView{}, false
	}
	return gr.view(), true
}

// CancelGroup stops a queued or running group: the in-flight seed is
// abandoned and every not-yet-terminal cell transitions to Canceled.
// Finished groups return ErrFinished.
func (s *Service) CancelGroup(id string) (GroupView, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	gr, ok := s.groups[id]
	if !ok {
		return GroupView{}, ErrGroupNotFound
	}
	if gr.state.Terminal() {
		return gr.view(), ErrFinished
	}
	gr.canceled = true
	gr.cancel()
	return gr.view(), nil
}

// runGroup owns one group's lifecycle: wait for an engine slot, run the
// seeds in order, finalize. All state transitions happen under s.mu.
func (s *Service) runGroup(gr *group) {
	defer s.groupWG.Done()
	defer gr.cancel()
	select {
	case s.groupSem <- struct{}{}:
		defer func() { <-s.groupSem }()
	case <-gr.ctx.Done():
	}

	s.mu.Lock()
	if !gr.canceled {
		gr.state = Running
	}
	s.mu.Unlock()

	for i := range gr.cells {
		s.runGroupCell(gr, i)
	}

	s.mu.Lock()
	gr.g = nil
	if gr.canceled {
		gr.state = Canceled
	} else {
		gr.state = Done
	}
	gr.finished = time.Now()
	s.terminalGroups = append(s.terminalGroups, gr.id)
	for len(s.terminalGroups) > s.cfg.MaxJobs {
		delete(s.groups, s.terminalGroups[0])
		s.terminalGroups = s.terminalGroups[1:]
	}
	s.mu.Unlock()
}

// runGroupCell executes one seed with the same cache, telemetry and
// abandon-on-timeout semantics as runJob.
func (s *Service) runGroupCell(gr *group, i int) {
	cell := &gr.cells[i]
	params := gr.params
	params.Seed = cell.seed
	key := gr.fp + "|" + gr.spec.CacheKey(params)

	s.mu.Lock()
	s.met.submitted++
	s.met.batchMembers++
	if gr.canceled {
		cell.state = Canceled
		gr.done++
		s.met.canceled++
		s.mu.Unlock()
		return
	}
	if res, hit := s.cache.get(key); hit {
		cell.state = Done
		cell.cacheHit = true
		cell.result = res
		gr.done++
		s.met.batchCacheHits++
		s.met.completed++
		s.mu.Unlock()
		return
	}
	s.met.batchCacheMisses++
	cell.state = Running
	s.running++
	g, spec := gr.g, gr.spec
	s.mu.Unlock()

	ctx, cancel := context.WithTimeout(gr.ctx, gr.timeout)
	defer cancel()
	started := time.Now()

	type outcome struct {
		res *registry.Result
		err error
	}
	ch := make(chan outcome, 1)
	// Same abandon-and-drain contract as runJob: the algorithms are
	// synchronous, so cancellation flips the cell's state immediately while
	// this goroutine is drained before the next seed starts — a canceled
	// group never leaves a computation running behind its terminal state.
	go func() {
		defer func() {
			if r := recover(); r != nil {
				ch <- outcome{err: fmt.Errorf("service: algorithm panicked: %v", r)}
			}
		}()
		res, err := spec.Run(g, params)
		ch <- outcome{res: res, err: err}
	}()

	finish := func(out outcome) {
		s.mu.Lock()
		s.running--
		if out.err != nil {
			cell.state = Failed
			cell.err = out.err.Error()
			s.met.failed++
		} else {
			cell.state = Done
			cell.result = out.res
			s.cache.put(key, out.res)
			s.met.completed++
			s.met.recordEngine(traceOf(out.res))
			s.met.recordLatency(time.Since(started))
		}
		gr.done++
		s.mu.Unlock()
	}

	select {
	case out := <-ch:
		finish(out)
	case <-ctx.Done():
		select {
		case out := <-ch:
			finish(out)
			return
		default:
		}
		s.mu.Lock()
		s.running--
		if errors.Is(ctx.Err(), context.DeadlineExceeded) {
			cell.state = Failed
			cell.err = fmt.Sprintf("service: job exceeded its %s timeout", gr.timeout)
			s.met.failed++
		} else {
			cell.state = Canceled
			s.met.canceled++
		}
		gr.done++
		s.mu.Unlock()
		<-ch // drain the abandoned computation
	}
}

// view must be called with s.mu held.
func (gr *group) view() GroupView {
	v := GroupView{
		ID:          gr.id,
		TraceID:     gr.traceID,
		Tenant:      gr.tenant,
		Algo:        gr.spec.Name,
		Params:      gr.params,
		State:       gr.state,
		Total:       len(gr.cells),
		Done:        gr.done,
		Cells:       make([]GroupCellView, len(gr.cells)),
		SubmittedAt: gr.submitted,
		FinishedAt:  gr.finished,
	}
	for i, c := range gr.cells {
		v.Cells[i] = GroupCellView{
			Seed:     c.seed,
			TraceID:  c.traceID,
			State:    c.state,
			CacheHit: c.cacheHit,
			Error:    c.err,
			Result:   c.result,
		}
	}
	return v
}
