package service

import "sync"

// This file is the fair-share admission queue in front of the worker pool
// (DESIGN.md §9). The engine used to feed workers from one shared channel,
// which made admission first-come-first-served: a tenant submitting a
// 10⁶-cell batch filled the channel and starved every later submitter until
// the backlog drained. The fairQueue replaces the channel with per-tenant
// FIFOs served by weighted deficit round-robin (DRR): each visit a tenant's
// deficit is refilled to its weight and one job is served per deficit unit,
// so long-run throughput divides by weight regardless of backlog sizes, and
// per-tenant queue bounds turn ErrQueueFull into per-tenant backpressure
// instead of a shared fate.

// TenantLimits caps one tenant's admission footprint. The zero value means
// "server defaults": weight 1, the shared Config.QueueSize bound, and no
// concurrent-running cap.
type TenantLimits struct {
	// Weight is the DRR quantum: jobs served per round-robin visit while
	// the tenant has backlog. 0 → 1.
	Weight int
	// MaxRunning caps how many of the tenant's jobs may occupy workers at
	// once (the concurrent-cell quota). 0 → unlimited.
	MaxRunning int
	// QueueSize bounds the tenant's admitted-but-not-running backlog;
	// pushes beyond it fail with ErrQueueFull. 0 → Config.QueueSize.
	QueueSize int
}

// TenantQueueStat is the live per-tenant occupancy exported via Metrics.
type TenantQueueStat struct {
	Queued  int
	Running int
}

// tenantQueue is one tenant's FIFO plus its DRR accounting.
type tenantQueue struct {
	jobs    []*job
	head    int // pop index; the slice is compacted when fully drained
	deficit int
	running int
}

func (t *tenantQueue) size() int { return len(t.jobs) - t.head }

func (t *tenantQueue) popFront() *job {
	jb := t.jobs[t.head]
	t.jobs[t.head] = nil
	t.head++
	if t.head == len(t.jobs) {
		t.jobs = t.jobs[:0]
		t.head = 0
	}
	return jb
}

// fairQueue multiplexes per-tenant FIFOs onto the worker pool with DRR.
// It has two stop modes: close() admits nothing new but lets workers drain
// every queued job (Close semantics), abort() additionally makes pop return
// immediately so queued jobs are abandoned un-run (Drain semantics — such
// jobs were never journaled terminal, so a WAL resume re-runs them).
type fairQueue struct {
	mu   sync.Mutex
	cond *sync.Cond

	limits       func(string) TenantLimits // nil → zero limits
	defaultQueue int

	tenants map[string]*tenantQueue
	order   []string // round-robin visiting order; pruned when a tenant idles
	cur     int      // next order index the DRR scan starts at
	total   int      // queued jobs across all tenants
	closed  bool
	aborted bool
}

func newFairQueue(defaultQueue int, limits func(string) TenantLimits) *fairQueue {
	fq := &fairQueue{
		limits:       limits,
		defaultQueue: defaultQueue,
		tenants:      make(map[string]*tenantQueue),
	}
	fq.cond = sync.NewCond(&fq.mu)
	return fq
}

func (fq *fairQueue) limitsFor(tenant string) TenantLimits {
	if fq.limits == nil {
		return TenantLimits{}
	}
	return fq.limits(tenant)
}

// push admits jb to its tenant's FIFO. It returns ErrQueueFull when the
// tenant's backlog bound is reached and ErrClosed after close/abort.
func (fq *fairQueue) push(jb *job) error {
	fq.mu.Lock()
	defer fq.mu.Unlock()
	if fq.closed || fq.aborted {
		return ErrClosed
	}
	lim := fq.limitsFor(jb.tenant)
	bound := lim.QueueSize
	if bound <= 0 {
		bound = fq.defaultQueue
	}
	t := fq.tenants[jb.tenant]
	if t == nil {
		t = &tenantQueue{}
		fq.tenants[jb.tenant] = t
		fq.order = append(fq.order, jb.tenant)
	}
	if t.size() >= bound {
		return ErrQueueFull
	}
	t.jobs = append(t.jobs, jb)
	fq.total++
	fq.cond.Broadcast()
	return nil
}

// pop blocks until a job is dispatchable and returns it, or returns false
// when the queue is stopped (closed and fully drained, or aborted). The
// caller owns one running slot for the job's tenant until release.
func (fq *fairQueue) pop() (*job, bool) {
	fq.mu.Lock()
	defer fq.mu.Unlock()
	for {
		if fq.aborted {
			return nil, false
		}
		if fq.total > 0 {
			if jb, ok := fq.scan(); ok {
				return jb, true
			}
			// Backlog exists but every backlogged tenant is at its running
			// cap; wait for a release.
		} else if fq.closed {
			return nil, false
		}
		fq.cond.Wait()
	}
}

// scan is one DRR pass over the visiting order, starting at the cursor.
// Caller holds fq.mu.
func (fq *fairQueue) scan() (*job, bool) {
	n := len(fq.order)
	if fq.cur >= n {
		fq.cur = 0
	}
	for i := 0; i < n; i++ {
		idx := (fq.cur + i) % n
		t := fq.tenants[fq.order[idx]]
		if t.size() == 0 {
			continue
		}
		lim := fq.limitsFor(fq.order[idx])
		if lim.MaxRunning > 0 && t.running >= lim.MaxRunning {
			continue
		}
		if t.deficit <= 0 {
			t.deficit = lim.Weight
			if t.deficit <= 0 {
				t.deficit = 1
			}
		}
		jb := t.popFront()
		t.deficit--
		t.running++
		fq.total--
		if t.deficit <= 0 || t.size() == 0 {
			// Quantum spent (or backlog empty): move on so the next pop
			// visits the next tenant.
			t.deficit = 0
			fq.cur = (idx + 1) % n
		} else {
			fq.cur = idx
		}
		return jb, true
	}
	return nil, false
}

// release returns jb's running slot. Workers call it exactly once per pop,
// whether the job ran or was skipped as already-canceled.
func (fq *fairQueue) release(tenant string) {
	fq.mu.Lock()
	if t := fq.tenants[tenant]; t != nil {
		t.running--
		if t.size() == 0 && t.running <= 0 {
			delete(fq.tenants, tenant)
			for i, name := range fq.order {
				if name == tenant {
					fq.order = append(fq.order[:i], fq.order[i+1:]...)
					if fq.cur > i {
						fq.cur--
					}
					break
				}
			}
		}
	}
	fq.cond.Broadcast()
	fq.mu.Unlock()
}

// close stops admission; pops continue until the backlog drains.
func (fq *fairQueue) close() {
	fq.mu.Lock()
	fq.closed = true
	fq.cond.Broadcast()
	fq.mu.Unlock()
}

// abort stops admission and dispatch: blocked pops return immediately and
// queued jobs are left behind for a WAL resume to re-run.
func (fq *fairQueue) abort() {
	fq.mu.Lock()
	fq.closed = true
	fq.aborted = true
	fq.cond.Broadcast()
	fq.mu.Unlock()
}

// stats snapshots per-tenant occupancy. Only tenants with live state appear.
func (fq *fairQueue) stats() map[string]TenantQueueStat {
	fq.mu.Lock()
	defer fq.mu.Unlock()
	if len(fq.tenants) == 0 {
		return nil
	}
	out := make(map[string]TenantQueueStat, len(fq.tenants))
	for name, t := range fq.tenants {
		out[name] = TenantQueueStat{Queued: t.size(), Running: t.running}
	}
	return out
}
