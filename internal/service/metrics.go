package service

import (
	"math"
	"slices"
	"time"

	"repro/internal/obs"
	"repro/internal/registry"
)

// latencyWindow bounds how many recent job durations feed the percentile
// estimates.
const latencyWindow = 1024

// Metrics is a point-in-time snapshot of the service's counters. Submitted,
// Completed, Failed and Canceled count every job; cache traffic is split by
// origin: CacheHits/CacheMisses cover single-job submissions only, while
// batch-expanded members are metered in BatchCacheHits/BatchCacheMisses (and
// counted in BatchMembers), so a cached batch cell is distinguishable from a
// single-job miss.
type Metrics struct {
	Submitted         uint64  `json:"submitted"`
	Completed         uint64  `json:"completed"`
	Failed            uint64  `json:"failed"`
	Canceled          uint64  `json:"canceled"`
	CacheHits         uint64  `json:"cache_hits"`
	CacheMisses       uint64  `json:"cache_misses"`
	CacheHitRate      float64 `json:"cache_hit_rate"`
	BatchMembers      uint64  `json:"batch_members"`
	BatchCacheHits    uint64  `json:"batch_cache_hits"`
	BatchCacheMisses  uint64  `json:"batch_cache_misses"`
	BatchCacheHitRate float64 `json:"batch_cache_hit_rate"`
	CacheSize         int     `json:"cache_size"`
	Queued            int     `json:"queued"`
	Running           int     `json:"running"`
	Workers           int     `json:"workers"`
	// Latency percentiles over the last latencyWindow completed jobs, in
	// milliseconds. Zero when nothing has completed yet.
	LatencyP50Ms float64 `json:"latency_p50_ms"`
	LatencyP90Ms float64 `json:"latency_p90_ms"`
	LatencyP99Ms float64 `json:"latency_p99_ms"`
	// Tenants breaks the counters down per named tenant (multi-tenant mode
	// only; absent in open mode so the JSON stays byte-stable for existing
	// clients). The anonymous "" tenant is never tracked here.
	Tenants map[string]TenantMetrics `json:"tenants,omitempty"`
}

// TenantMetrics is one tenant's slice of the service counters: cumulative
// job totals plus the live fair-queue occupancy.
type TenantMetrics struct {
	Submitted uint64 `json:"submitted"`
	Completed uint64 `json:"completed"`
	Failed    uint64 `json:"failed"`
	Canceled  uint64 `json:"canceled"`
	// Rejected counts submissions refused by the tenant's queue bound
	// (per-tenant backpressure, surfaced as 503 queue_full).
	Rejected uint64 `json:"rejected"`
	Queued   int    `json:"queued"`
	Running  int    `json:"running"`
}

// tenantCounters is the mutable per-tenant state behind TenantMetrics;
// the Service guards it with its mutex.
type tenantCounters struct {
	submitted, completed, failed, canceled, rejected uint64
}

// counters is the mutable metrics state; the Service guards it with its
// mutex.
type counters struct {
	submitted, completed, failed, canceled         uint64
	cacheHits, cacheMisses                         uint64
	batchMembers, batchCacheHits, batchCacheMisses uint64
	latencies                                      []time.Duration // ring buffer
	latNext                                        int
	latFull                                        bool
	// Engine-telemetry aggregates over live (non-cached) completions, fed
	// from each result's RoundTrace. They back the Prometheus exposition
	// only and are deliberately kept out of the JSON Metrics struct, which
	// stays byte-stable for existing clients.
	engineRounds   *obs.Histogram
	engineMessages *obs.Histogram
	engineObserved uint64
	engineRoundsT  uint64 // Σ rounds
	engineMsgsT    uint64 // Σ messages
	engineBitsT    uint64 // Σ payload bits
	memoHits       uint64
	memoMisses     uint64
}

// recordEngine folds one live run's trace into the engine aggregates.
func (c *counters) recordEngine(t *obs.RoundTrace) {
	if t == nil {
		return
	}
	if c.engineRounds == nil {
		c.engineRounds = obs.NewHistogram(1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024, 4096)
		c.engineMessages = obs.NewHistogram(10, 100, 1e3, 1e4, 1e5, 1e6, 1e7)
	}
	c.engineRounds.Observe(float64(t.Rounds))
	c.engineMessages.Observe(float64(t.Messages))
	c.engineObserved++
	c.engineRoundsT += uint64(t.Rounds)
	c.engineMsgsT += uint64(t.Messages)
	c.engineBitsT += uint64(t.Bits)
	c.memoHits += t.MemoHits
	c.memoMisses += t.MemoMisses
}

// EngineTelemetry is a snapshot of the engine-telemetry aggregates, consumed
// by the Prometheus exposition.
type EngineTelemetry struct {
	// Rounds and Messages are per-run distribution snapshots (zero-valued
	// until the first live completion).
	Rounds   obs.HistSnapshot
	Messages obs.HistSnapshot
	// Observed counts the live completions folded in; the totals sum their
	// traces.
	Observed      uint64
	RoundsTotal   uint64
	MessagesTotal uint64
	BitsTotal     uint64
	MemoHits      uint64
	MemoMisses    uint64
}

func (c *counters) engineTelemetry() EngineTelemetry {
	t := EngineTelemetry{
		Observed:      c.engineObserved,
		RoundsTotal:   c.engineRoundsT,
		MessagesTotal: c.engineMsgsT,
		BitsTotal:     c.engineBitsT,
		MemoHits:      c.memoHits,
		MemoMisses:    c.memoMisses,
	}
	if c.engineRounds != nil {
		t.Rounds = c.engineRounds.Snapshot()
		t.Messages = c.engineMessages.Snapshot()
	}
	return t
}

// traceOf extracts the trace a result carries, nil-safe on both levels.
func traceOf(res *registry.Result) *obs.RoundTrace {
	if res == nil {
		return nil
	}
	return res.Trace
}

func (c *counters) recordLatency(d time.Duration) {
	if c.latencies == nil {
		c.latencies = make([]time.Duration, latencyWindow)
	}
	c.latencies[c.latNext] = d
	c.latNext++
	if c.latNext == len(c.latencies) {
		c.latNext = 0
		c.latFull = true
	}
}

// percentiles returns (p50, p90, p99) in milliseconds over the window.
func (c *counters) percentiles() (p50, p90, p99 float64) {
	n := c.latNext
	if c.latFull {
		n = len(c.latencies)
	}
	if n == 0 {
		return 0, 0, 0
	}
	xs := make([]time.Duration, n)
	copy(xs, c.latencies[:n])
	slices.Sort(xs)
	at := func(q float64) float64 {
		// Nearest-rank: the q-th percentile is the smallest sample with at
		// least ⌈q·n⌉ samples ≤ it. The previous int(q·(n-1)) truncation
		// floor-biased the high percentiles on small windows (p99 of 10
		// samples picked index 8, not the maximum).
		idx := int(math.Ceil(q*float64(n))) - 1
		if idx < 0 {
			idx = 0
		}
		if idx >= n {
			idx = n - 1
		}
		return float64(xs[idx]) / float64(time.Millisecond)
	}
	return at(0.50), at(0.90), at(0.99)
}
