package service

import (
	"slices"
	"time"
)

// latencyWindow bounds how many recent job durations feed the percentile
// estimates.
const latencyWindow = 1024

// Metrics is a point-in-time snapshot of the service's counters. Submitted,
// Completed, Failed and Canceled count every job; cache traffic is split by
// origin: CacheHits/CacheMisses cover single-job submissions only, while
// batch-expanded members are metered in BatchCacheHits/BatchCacheMisses (and
// counted in BatchMembers), so a cached batch cell is distinguishable from a
// single-job miss.
type Metrics struct {
	Submitted         uint64  `json:"submitted"`
	Completed         uint64  `json:"completed"`
	Failed            uint64  `json:"failed"`
	Canceled          uint64  `json:"canceled"`
	CacheHits         uint64  `json:"cache_hits"`
	CacheMisses       uint64  `json:"cache_misses"`
	CacheHitRate      float64 `json:"cache_hit_rate"`
	BatchMembers      uint64  `json:"batch_members"`
	BatchCacheHits    uint64  `json:"batch_cache_hits"`
	BatchCacheMisses  uint64  `json:"batch_cache_misses"`
	BatchCacheHitRate float64 `json:"batch_cache_hit_rate"`
	CacheSize         int     `json:"cache_size"`
	Queued            int     `json:"queued"`
	Running           int     `json:"running"`
	Workers           int     `json:"workers"`
	// Latency percentiles over the last latencyWindow completed jobs, in
	// milliseconds. Zero when nothing has completed yet.
	LatencyP50Ms float64 `json:"latency_p50_ms"`
	LatencyP90Ms float64 `json:"latency_p90_ms"`
	LatencyP99Ms float64 `json:"latency_p99_ms"`
}

// counters is the mutable metrics state; the Service guards it with its
// mutex.
type counters struct {
	submitted, completed, failed, canceled         uint64
	cacheHits, cacheMisses                         uint64
	batchMembers, batchCacheHits, batchCacheMisses uint64
	latencies                                      []time.Duration // ring buffer
	latNext                                        int
	latFull                                        bool
}

func (c *counters) recordLatency(d time.Duration) {
	if c.latencies == nil {
		c.latencies = make([]time.Duration, latencyWindow)
	}
	c.latencies[c.latNext] = d
	c.latNext++
	if c.latNext == len(c.latencies) {
		c.latNext = 0
		c.latFull = true
	}
}

// percentiles returns (p50, p90, p99) in milliseconds over the window.
func (c *counters) percentiles() (p50, p90, p99 float64) {
	n := c.latNext
	if c.latFull {
		n = len(c.latencies)
	}
	if n == 0 {
		return 0, 0, 0
	}
	xs := make([]time.Duration, n)
	copy(xs, c.latencies[:n])
	slices.Sort(xs)
	at := func(q float64) float64 {
		idx := int(q * float64(n-1))
		return float64(xs[idx]) / float64(time.Millisecond)
	}
	return at(0.50), at(0.90), at(0.99)
}
