package service

import (
	"testing"
	"time"

	"repro/internal/obs"
)

// TestPercentilesNearestRank pins the quantile definition: nearest-rank with
// idx = ⌈q·n⌉ − 1 on the sorted window. In particular the high percentiles of
// a small window must reach the maximum sample — the previous
// int(q·(n−1)) truncation picked index 8 of 10 for p99 instead of index 9.
func TestPercentilesNearestRank(t *testing.T) {
	var c counters
	for i := 1; i <= 10; i++ {
		c.recordLatency(time.Duration(i) * time.Millisecond)
	}
	p50, p90, p99 := c.percentiles()
	// n=10: p50 → ⌈5⌉−1 = idx 4 → 5ms; p90 → ⌈9⌉−1 = idx 8 → 9ms;
	// p99 → ⌈9.9⌉−1 = idx 9 → 10ms (the maximum).
	if p50 != 5 || p90 != 9 || p99 != 10 {
		t.Fatalf("percentiles = (%v, %v, %v), want (5, 9, 10)", p50, p90, p99)
	}

	// Single sample: every percentile is that sample.
	var one counters
	one.recordLatency(7 * time.Millisecond)
	p50, p90, p99 = one.percentiles()
	if p50 != 7 || p90 != 7 || p99 != 7 {
		t.Fatalf("single-sample percentiles = (%v, %v, %v), want all 7", p50, p90, p99)
	}

	// Empty window: all zero.
	var empty counters
	if p50, p90, p99 := empty.percentiles(); p50 != 0 || p90 != 0 || p99 != 0 {
		t.Fatalf("empty-window percentiles = (%v, %v, %v), want zeros", p50, p90, p99)
	}
}

// TestPercentilesWindowWrap pins the ring-buffer behavior: once the window is
// full, old samples fall out.
func TestPercentilesWindowWrap(t *testing.T) {
	var c counters
	// Fill the whole window with 1ms, then wrap in 11 100ms samples: sorted,
	// the window holds 1013 ones then 11 hundreds, and nearest-rank p99 of
	// n=1024 is index ⌈0.99·1024⌉−1 = 1013 — the first hundred.
	for i := 0; i < latencyWindow; i++ {
		c.recordLatency(time.Millisecond)
	}
	for i := 0; i < 11; i++ {
		c.recordLatency(100 * time.Millisecond)
	}
	_, _, p99 := c.percentiles()
	if p99 != 100 {
		t.Fatalf("p99 = %v, want 100", p99)
	}
}

func TestRecordEngineAggregates(t *testing.T) {
	var c counters
	c.recordEngine(nil) // cached completions carry no trace; must be a no-op
	c.recordEngine(&obs.RoundTrace{Rounds: 3, Messages: 120, Bits: 960, MemoHits: 2, MemoMisses: 1})
	c.recordEngine(&obs.RoundTrace{Rounds: 5, Messages: 80, Bits: 640, MemoHits: 1})
	tele := c.engineTelemetry()
	if tele.Observed != 2 {
		t.Fatalf("observed = %d, want 2", tele.Observed)
	}
	if tele.RoundsTotal != 8 || tele.MessagesTotal != 200 || tele.BitsTotal != 1600 {
		t.Fatalf("totals = %+v", tele)
	}
	if tele.MemoHits != 3 || tele.MemoMisses != 1 {
		t.Fatalf("memo totals = %+v", tele)
	}
	if tele.Rounds.Count != 2 || tele.Messages.Count != 2 {
		t.Fatalf("histogram counts = %d/%d, want 2/2", tele.Rounds.Count, tele.Messages.Count)
	}
}
