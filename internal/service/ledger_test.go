package service

import (
	"path/filepath"
	"sync"
	"testing"
	"time"

	"repro/internal/registry"
	"repro/internal/store"
	"repro/internal/wal"
)

// ledgerStack builds a durable store + service + batch engine over one pair
// of WAL directories, reusable across simulated restarts.
func ledgerStack(t *testing.T, root string) (*Service, *store.Store, *Batches) {
	t.Helper()
	st, err := store.Open(store.Config{
		WALDir:   filepath.Join(root, "store-wal"),
		SpillDir: filepath.Join(root, "spill"),
	})
	if err != nil {
		t.Fatal(err)
	}
	svc := New(Config{Workers: 2, QueueSize: 64})
	b, err := OpenBatches(svc, st, BatchConfig{WALDir: filepath.Join(root, "batch-wal")})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		svc.Close()
		b.Close()
		st.Close()
	})
	return svc, st, b
}

// TestLedgerRestartRestoresFinishedBatch: a cleanly finished batch survives
// a restart with the same ID, trace ID, per-cell results and per-group
// aggregates, and nothing is re-executed (the new incarnation's job
// counters stay zero).
func TestLedgerRestartRestoresFinishedBatch(t *testing.T) {
	root := t.TempDir()
	_, st, b := ledgerStack(t, root)
	if _, _, err := st.Put("g", store.Source{Gen: "gnp", GenParams: registry.GenParams{N: 40, P: 0.2, Seed: 5}}); err != nil {
		t.Fatal(err)
	}
	v, err := b.Submit(BatchSpec{
		Graphs: []string{"g"},
		Algos:  []string{"mwm2", "maxis"},
		Seeds:  []uint64{1, 2, 3},
	})
	if err != nil {
		t.Fatal(err)
	}
	before := waitBatch(t, b, v.ID)
	if before.Done != before.Total {
		t.Fatalf("pre-restart batch not fully done: %+v", before)
	}
	if err := b.Close(); err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	svc2, _, b2 := ledgerStack(t, root)
	after, ok := b2.Get(v.ID)
	if !ok {
		t.Fatalf("batch %s lost across restart", v.ID)
	}
	if after.TraceID != before.TraceID || after.State != BatchDone ||
		after.Done != before.Done || after.Total != before.Total {
		t.Fatalf("restored batch differs: before=%+v after=%+v", before, after)
	}
	for i := range before.Cells {
		bc, ac := before.Cells[i], after.Cells[i]
		if bc.TraceID != ac.TraceID || bc.State != ac.State {
			t.Fatalf("cell %d differs: %+v vs %+v", i, bc, ac)
		}
		if bc.Result.Weight != ac.Result.Weight || bc.Result.Size() != ac.Result.Size() {
			t.Fatalf("cell %d result differs across restart", i)
		}
	}
	if len(after.Groups) != len(before.Groups) {
		t.Fatalf("groups differ: %d vs %d", len(after.Groups), len(before.Groups))
	}
	for i := range before.Groups {
		bg, ag := before.Groups[i], after.Groups[i]
		if bg.Weight != ag.Weight || bg.Rounds != ag.Rounds || bg.Done != ag.Done {
			t.Fatalf("group %d aggregates differ: %+v vs %+v", i, bg, ag)
		}
	}
	if m := svc2.Metrics(); m.Submitted != 0 {
		t.Fatalf("restart re-executed %d jobs for an already-finished batch", m.Submitted)
	}
	lm, ok := b2.LedgerMetrics()
	if !ok || lm.CellsRestored != uint64(before.Total) {
		t.Fatalf("CellsRestored = %d, want %d (ok=%v)", lm.CellsRestored, before.Total, ok)
	}
}

// TestLedgerRestartResumesIncompleteBatch: a batch whose ledger holds only
// the submit record (the crash hit before any cell finished) re-runs all
// cells after restart and converges to the same results.
func TestLedgerRestartResumesIncompleteBatch(t *testing.T) {
	root := t.TempDir()
	_, st, b := ledgerStack(t, root)
	if _, _, err := st.Put("g", store.Source{Gen: "gnp", GenParams: registry.GenParams{N: 30, P: 0.25, Seed: 9}}); err != nil {
		t.Fatal(err)
	}

	// Reference run, then simulate a crash that preserved the submit record
	// but lost every cell record: kill the ledger WAL right after Submit's
	// synchronous commit.
	ref, err := b.Submit(BatchSpec{Graphs: []string{"g"}, Algos: []string{"maxis"}, Seeds: []uint64{4, 5}})
	if err != nil {
		t.Fatal(err)
	}
	refView := waitBatch(t, b, ref.ID)

	v, err := b.Submit(BatchSpec{Graphs: []string{"g"}, Algos: []string{"maxis"}, Seeds: []uint64{4, 5}})
	if err != nil {
		t.Fatal(err)
	}
	b.ledger.log.Kill()
	waitBatch(t, b, v.ID) // in-memory run still finishes; nothing else lands in the log
	if err := b.Close(); err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	svc2, _, b2 := ledgerStack(t, root)
	after := waitBatch(t, b2, v.ID)
	if after.State != BatchDone || after.Done != 2 {
		t.Fatalf("resumed batch did not finish: %+v", after)
	}
	if after.TraceID != v.TraceID {
		t.Fatalf("resumed batch trace %q, want %q", after.TraceID, v.TraceID)
	}
	for i, c := range after.Cells {
		if c.TraceID != v.Cells[i].TraceID {
			t.Fatalf("cell %d trace changed across resume", i)
		}
		if c.Result.Weight != refView.Cells[i].Result.Weight {
			t.Fatalf("cell %d: resumed weight %d != reference %d", i, c.Result.Weight, refView.Cells[i].Result.Weight)
		}
	}
	if m := svc2.Metrics(); m.Submitted != 2 {
		t.Fatalf("resume submitted %d jobs, want exactly the 2 unfinished cells", m.Submitted)
	}
	// The resumed batch must leave no pins behind once terminal.
	deadline := time.Now().Add(5 * time.Second)
	for {
		if err := b2.st.Delete("g"); err == nil {
			break
		} else if time.Now().After(deadline) {
			t.Fatalf("graph still pinned after resumed batch finished: %v", err)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestLedgerCancelDurable: a canceled batch stays canceled across restart
// instead of resuming.
func TestLedgerCancelDurable(t *testing.T) {
	root := t.TempDir()
	_, st, b := ledgerStack(t, root)
	if _, _, err := st.Put("g", store.Source{Gen: "gnp", GenParams: registry.GenParams{N: 20, P: 0.3, Seed: 2}}); err != nil {
		t.Fatal(err)
	}
	v, err := b.Submit(BatchSpec{Graphs: []string{"g"}, Algos: []string{"maxis"}, Seeds: []uint64{1, 2, 3, 4}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := b.Cancel(v.ID); err != nil && err != ErrBatchFinished {
		t.Fatal(err)
	}
	waitBatch(t, b, v.ID)
	if err := b.Close(); err != nil {
		t.Fatal(err)
	}
	st.Close()

	svc2, _, b2 := ledgerStack(t, root)
	after, ok := b2.Get(v.ID)
	if !ok {
		t.Fatalf("canceled batch %s lost", v.ID)
	}
	if !after.State.Terminal() {
		after = waitBatch(t, b2, v.ID)
	}
	if after.State != BatchCanceled && after.Canceled == 0 {
		// A cancel that raced completion may legitimately finish Done; but
		// the durable record must at least prevent un-canceling cells that
		// were already canceled.
		t.Fatalf("canceled batch resumed as %+v", after)
	}
	_ = svc2
}

// TestLedgerMutationVisibleBeforeAck: the writer goroutine may snapshot the
// engine immediately after acking a synchronous commit, and the snapshot
// supersedes the segment holding the just-synced record — so the mutation a
// commit describes must already be visible when the record hits disk.
// The hook observes the engine at sync.post, the instant before the ack is
// delivered: the submitted batch must already be registered and the canceled
// batch's cancelReq already raised. Under a commit-then-apply ordering this
// fires deterministically, not as a rare race.
func TestLedgerMutationVisibleBeforeAck(t *testing.T) {
	root := t.TempDir()
	st, err := store.Open(store.Config{})
	if err != nil {
		t.Fatal(err)
	}
	_, release := registerBlocker(t, "ledgervisible")
	svc := New(Config{Workers: 2, QueueSize: 64})

	var (
		b  *Batches
		mu sync.Mutex
		// Armed expectations, checked at every ledger sync.post.
		expectBatch  string
		expectCancel string
		violations   []string
	)
	hooks := &wal.TestHooks{CrashAt: func(point string) bool {
		if point != wal.PointSyncPost {
			return false
		}
		mu.Lock()
		wantBatch, wantCancel := expectBatch, expectCancel
		mu.Unlock()
		if wantBatch != "" {
			b.mu.Lock()
			_, ok := b.batches[wantBatch]
			b.mu.Unlock()
			if !ok {
				mu.Lock()
				violations = append(violations, "submit record synced but batch "+wantBatch+" not registered")
				mu.Unlock()
			}
		}
		if wantCancel != "" {
			b.mu.Lock()
			bt := b.batches[wantCancel]
			b.mu.Unlock()
			raised := false
			if bt != nil {
				bt.mu.Lock()
				raised = bt.cancelReq
				bt.mu.Unlock()
			}
			if !raised {
				mu.Lock()
				violations = append(violations, "cancel record synced but cancelReq not raised on "+wantCancel)
				mu.Unlock()
			}
		}
		return false
	}}
	b, err = OpenBatches(svc, st, BatchConfig{
		WALDir:   filepath.Join(root, "batch-wal"),
		WALHooks: hooks,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		svc.Close()
		b.Close()
		st.Close()
	})
	var once sync.Once
	releaseAll := func() { once.Do(func() { close(release) }) }
	t.Cleanup(releaseAll) // LIFO: unpark the workers before svc.Close waits on them

	if _, _, err := st.Put("g", store.Source{Gen: "gnp", GenParams: registry.GenParams{N: 20, P: 0.3, Seed: 7}}); err != nil {
		t.Fatal(err)
	}

	// A fresh engine assigns b000001 to the first Submit, so the expectation
	// can be armed before the ID exists. The cells park on the blocker, so
	// the only ledger syncs while armed are the ones under test.
	mu.Lock()
	expectBatch = "b000001"
	mu.Unlock()
	v, err := b.Submit(BatchSpec{Graphs: []string{"g"}, Algos: []string{"ledgervisible"}, Seeds: []uint64{1, 2}})
	if err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	expectBatch = ""
	mu.Unlock()
	if v.ID != "b000001" {
		t.Fatalf("first batch ID = %q, the armed expectation checked nothing", v.ID)
	}

	mu.Lock()
	expectCancel = v.ID
	mu.Unlock()
	if _, err := b.Cancel(v.ID); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	expectCancel = ""
	mu.Unlock()

	releaseAll()
	waitBatch(t, b, v.ID)
	mu.Lock()
	defer mu.Unlock()
	for _, msg := range violations {
		t.Error(msg)
	}
}
