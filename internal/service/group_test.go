package service

import (
	"errors"
	"reflect"
	"strings"
	"testing"
	"time"

	"repro/internal/obs"
	"repro/internal/registry"
)

func waitGroupTerminal(t *testing.T, s *Service, id string) GroupView {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		v, ok := s.GetGroup(id)
		if !ok {
			t.Fatalf("group %s disappeared", id)
		}
		if v.State.Terminal() {
			return v
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("group %s did not finish", id)
	return GroupView{}
}

// TestGroupMatchesIndividualRuns pins the grouped path to the per-job one:
// the same (graph, algo, seed) cells must produce identical results whether
// they run grouped on one service or as individual jobs on a fresh service
// whose cache cannot interfere.
func TestGroupMatchesIndividualRuns(t *testing.T) {
	seeds := []uint64{1, 2, 3, 4}

	grouped := New(Config{Workers: 2})
	defer grouped.Close()
	gv, err := grouped.SubmitGroup(GroupRequest{
		Algo: "mwm2", Graph: smallGraph(1), Seeds: seeds, TraceID: "tgrp",
	})
	if err != nil {
		t.Fatal(err)
	}
	gv = waitGroupTerminal(t, grouped, gv.ID)
	if gv.State != Done || gv.Done != len(seeds) || gv.Total != len(seeds) {
		t.Fatalf("group state=%s done=%d total=%d, want done/%d/%d", gv.State, gv.Done, gv.Total, len(seeds), len(seeds))
	}

	single := New(Config{Workers: 2})
	defer single.Close()
	for i, seed := range seeds {
		cell := gv.Cells[i]
		if cell.Seed != seed || cell.State != Done || cell.CacheHit {
			t.Fatalf("cell %d: %+v, want live done run of seed %d", i, cell, seed)
		}
		if want := obs.ChildTraceID("tgrp", i); cell.TraceID != want {
			t.Fatalf("cell %d trace %q, want %q", i, cell.TraceID, want)
		}
		jv, err := single.Submit(Request{Algo: "mwm2", Graph: smallGraph(1), Params: registry.Params{Seed: seed}})
		if err != nil {
			t.Fatal(err)
		}
		ref := waitTerminal(t, single, jv.ID)
		if ref.State != Done {
			t.Fatalf("reference run failed: %s %s", ref.State, ref.Error)
		}
		if !reflect.DeepEqual(cell.Result, ref.Result) {
			t.Fatalf("seed %d: grouped result differs from individual run\n%+v\nvs\n%+v", seed, cell.Result, ref.Result)
		}
	}
}

// TestGroupSharesCacheWithJobs proves the two submission paths read and
// write the same LRU: a job warms the cache for a group cell and a group
// warms it for a job.
func TestGroupSharesCacheWithJobs(t *testing.T) {
	s := New(Config{Workers: 2})
	defer s.Close()

	jv, err := s.Submit(Request{Algo: "maxis", Graph: smallGraph(2), Params: registry.Params{Seed: 7}})
	if err != nil {
		t.Fatal(err)
	}
	waitTerminal(t, s, jv.ID)

	gv, err := s.SubmitGroup(GroupRequest{Algo: "maxis", Graph: smallGraph(2), Seeds: []uint64{7, 8}})
	if err != nil {
		t.Fatal(err)
	}
	gv = waitGroupTerminal(t, s, gv.ID)
	if !gv.Cells[0].CacheHit {
		t.Fatal("seed 7 had just run as a job but the group cell missed the cache")
	}
	if gv.Cells[1].CacheHit {
		t.Fatal("seed 8 never ran but reported a cache hit")
	}

	jv2, err := s.Submit(Request{Algo: "maxis", Graph: smallGraph(2), Params: registry.Params{Seed: 8}})
	if err != nil {
		t.Fatal(err)
	}
	if jv2 = waitTerminal(t, s, jv2.ID); !jv2.CacheHit {
		t.Fatal("seed 8 ran inside the group but the job missed the cache")
	}

	m := s.Metrics()
	if m.BatchMembers != 2 || m.BatchCacheHits != 1 || m.BatchCacheMisses != 1 {
		t.Fatalf("group accounting: members=%d hits=%d misses=%d, want 2/1/1", m.BatchMembers, m.BatchCacheHits, m.BatchCacheMisses)
	}
}

// TestGroupCancelMidRun cancels a long group and asserts partial progress is
// kept, the remaining cells drain as canceled, and the group lands Canceled
// with every cell terminal.
func TestGroupCancelMidRun(t *testing.T) {
	s := New(Config{Workers: 1})
	defer s.Close()

	seeds := make([]uint64, 256)
	for i := range seeds {
		seeds[i] = uint64(i + 1)
	}
	gv, err := s.SubmitGroup(GroupRequest{Algo: "maxis", Graph: smallGraph(3), Seeds: seeds})
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(30 * time.Second)
	for {
		v, ok := s.GetGroup(gv.ID)
		if !ok {
			t.Fatalf("group %s disappeared", gv.ID)
		}
		if v.Done >= 2 {
			break
		}
		if v.State.Terminal() || time.Now().After(deadline) {
			t.Fatalf("group finished (state %s, done %d) before the cancel could land", v.State, v.Done)
		}
		time.Sleep(time.Millisecond)
	}
	if _, err := s.CancelGroup(gv.ID); err != nil {
		t.Fatal(err)
	}
	final := waitGroupTerminal(t, s, gv.ID)
	if final.State != Canceled {
		t.Fatalf("state %s, want canceled", final.State)
	}
	if final.Done != final.Total {
		t.Fatalf("done %d != total %d after cancel: every cell must be terminal", final.Done, final.Total)
	}
	var done, canceled int
	for _, c := range final.Cells {
		switch c.State {
		case Done:
			done++
		case Canceled:
			canceled++
		default:
			t.Fatalf("cell seed %d left in state %s", c.Seed, c.State)
		}
	}
	if done == 0 || canceled == 0 {
		t.Fatalf("done=%d canceled=%d: want progress before the cancel and cancellation after it", done, canceled)
	}
	if _, err := s.CancelGroup(gv.ID); !errors.Is(err, ErrFinished) {
		t.Fatalf("second cancel: %v, want ErrFinished", err)
	}
}

// TestGroupPerSeedTimeoutIsolation gives every seed an impossible timeout:
// each cell must fail individually while the group itself completes Done —
// per-seed failures never poison the group.
func TestGroupPerSeedTimeoutIsolation(t *testing.T) {
	s := New(Config{Workers: 1})
	defer s.Close()

	gv, err := s.SubmitGroup(GroupRequest{
		Algo: "maxis", Graph: smallGraph(4), Seeds: []uint64{1, 2}, Timeout: time.Nanosecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	final := waitGroupTerminal(t, s, gv.ID)
	if final.State != Done {
		t.Fatalf("group state %s, want done (failures are per-cell)", final.State)
	}
	for i, c := range final.Cells {
		if c.State != Failed || !strings.Contains(c.Error, "timeout") {
			t.Fatalf("cell %d: state=%s err=%q, want per-seed timeout failure", i, c.State, c.Error)
		}
	}
	if m := s.Metrics(); m.Failed != 2 {
		t.Fatalf("failed counter %d, want 2", m.Failed)
	}
}

// TestGroupValidation exercises the submit-time rejections.
func TestGroupValidation(t *testing.T) {
	s := New(Config{Workers: 1})
	defer s.Close()
	g := smallGraph(5)
	cases := []struct {
		name string
		req  GroupRequest
		want string
	}{
		{"unknown algo", GroupRequest{Algo: "nope", Graph: g, Seeds: []uint64{1}}, "unknown algorithm"},
		{"nil graph", GroupRequest{Algo: "maxis", Seeds: []uint64{1}}, "nil graph"},
		{"no seeds", GroupRequest{Algo: "maxis", Graph: g}, "no seeds"},
		{"trace mismatch", GroupRequest{Algo: "maxis", Graph: g, Seeds: []uint64{1, 2}, Traces: []string{"only-one"}}, "traces for"},
		{"bad params", GroupRequest{Algo: "mcm-oneeps", Graph: g, Seeds: []uint64{1}, Params: registry.Params{Eps: -1}}, "eps"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := s.SubmitGroup(tc.req); err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %v does not mention %q", err, tc.want)
			}
		})
	}
	if _, ok := s.GetGroup("g99999999"); ok {
		t.Fatal("GetGroup invented a group")
	}
	if _, err := s.CancelGroup("g99999999"); !errors.Is(err, ErrGroupNotFound) {
		t.Fatalf("cancel of unknown group: %v, want ErrGroupNotFound", err)
	}
}
