package service

import (
	"errors"
	"sync"
	"testing"
	"time"

	"repro/internal/graph"
	"repro/internal/registry"
	"repro/internal/rng"
)

func waitTerminal(t *testing.T, s *Service, id string) JobView {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		v, ok := s.Get(id)
		if !ok {
			t.Fatalf("job %s disappeared", id)
		}
		if v.State.Terminal() {
			return v
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("job %s did not finish", id)
	return JobView{}
}

func smallGraph(seed uint64) *graph.Graph {
	g := graph.GNP(20, 0.2, rng.New(seed))
	graph.AssignUniformNodeWeights(g, 40, rng.New(seed+1))
	graph.AssignUniformEdgeWeights(g, 40, rng.New(seed+2))
	return g
}

func TestSubmitRunAndCache(t *testing.T) {
	s := New(Config{Workers: 2})
	defer s.Close()

	v, err := s.Submit(Request{Algo: "maxis", Graph: smallGraph(1), Params: registry.Params{Seed: 3}})
	if err != nil {
		t.Fatal(err)
	}
	if v.State != Queued && v.State != Running && v.State != Done {
		t.Fatalf("unexpected initial state %s", v.State)
	}
	done := waitTerminal(t, s, v.ID)
	if done.State != Done {
		t.Fatalf("state %s (err %q), want done", done.State, done.Error)
	}
	if done.Result == nil || done.Result.Kind != registry.IS {
		t.Fatalf("bad result %+v", done.Result)
	}
	if done.CacheHit {
		t.Fatal("first run reported a cache hit")
	}

	// Identical resubmission must be served from cache, instantly done.
	v2, err := s.Submit(Request{Algo: "maxis", Graph: smallGraph(1), Params: registry.Params{Seed: 3}})
	if err != nil {
		t.Fatal(err)
	}
	if v2.State != Done || !v2.CacheHit {
		t.Fatalf("resubmission state=%s cacheHit=%t, want done/true", v2.State, v2.CacheHit)
	}
	if v2.Result.Weight != done.Result.Weight {
		t.Fatalf("cached weight %d != original %d", v2.Result.Weight, done.Result.Weight)
	}

	// A param the algorithm ignores (maxis reads no eps) must still hit.
	v2b, err := s.Submit(Request{Algo: "maxis", Graph: smallGraph(1), Params: registry.Params{Seed: 3, Eps: 0.9}})
	if err != nil {
		t.Fatal(err)
	}
	if !v2b.CacheHit {
		t.Fatal("irrelevant param change missed the cache")
	}

	// Different seed must miss the cache.
	v3, err := s.Submit(Request{Algo: "maxis", Graph: smallGraph(1), Params: registry.Params{Seed: 4}})
	if err != nil {
		t.Fatal(err)
	}
	if v3.CacheHit {
		t.Fatal("different params reported a cache hit")
	}
	waitTerminal(t, s, v3.ID)

	m := s.Metrics()
	if m.CacheHits != 2 {
		t.Fatalf("cache hits = %d, want 2", m.CacheHits)
	}
	if m.Completed != 4 {
		t.Fatalf("completed = %d, want 4", m.Completed)
	}
	if m.LatencyP50Ms < 0 {
		t.Fatalf("negative latency percentile: %+v", m)
	}
}

func TestConcurrentSubmissions(t *testing.T) {
	s := New(Config{Workers: 4})
	defer s.Close()

	algos := []string{"maxis", "mwm2", "nmis", "fastmcm", "proposal", "oneeps"}
	var wg sync.WaitGroup
	ids := make([]string, 12)
	for i := 0; i < len(ids); i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			v, err := s.Submit(Request{
				Algo:   algos[i%len(algos)],
				Graph:  smallGraph(uint64(i)),
				Params: registry.Params{Seed: uint64(i)},
			})
			if err != nil {
				t.Error(err)
				return
			}
			ids[i] = v.ID
		}()
	}
	wg.Wait()
	for _, id := range ids {
		if id == "" {
			t.Fatal("missing job id")
		}
		v := waitTerminal(t, s, id)
		if v.State != Done {
			t.Fatalf("job %s (%s): state %s err %q", id, v.Algo, v.State, v.Error)
		}
	}
}

func TestCancelQueued(t *testing.T) {
	s := New(Config{Workers: 1})
	defer s.Close()

	// Occupy the lone worker with a moderately large job, then cancel a
	// queued one behind it.
	busy, err := s.Submit(Request{Algo: "maxis", Graph: graph.GNP(300, 0.05, rng.New(9))})
	if err != nil {
		t.Fatal(err)
	}
	victim, err := s.Submit(Request{Algo: "mwm2", Graph: smallGraph(2)})
	if err != nil {
		t.Fatal(err)
	}
	v, err := s.Cancel(victim.ID)
	if err != nil {
		t.Fatal(err)
	}
	if v.State != Canceled && v.State != Running {
		t.Fatalf("cancel left state %s", v.State)
	}
	final := waitTerminal(t, s, victim.ID)
	if final.State != Canceled {
		t.Fatalf("victim finished as %s, want canceled", final.State)
	}
	waitTerminal(t, s, busy.ID)
	// Canceled-while-queued jobs must not linger in the queued gauge even
	// though their entry is still physically in the channel.
	if q := s.Metrics().Queued; q != 0 {
		t.Fatalf("queued gauge = %d with no pending jobs, want 0", q)
	}

	if _, err := s.Cancel(victim.ID); !errors.Is(err, ErrFinished) {
		t.Fatalf("re-cancel error = %v, want ErrFinished", err)
	}
	if _, err := s.Cancel("j99999999"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("cancel unknown = %v, want ErrNotFound", err)
	}
}

func TestTimeout(t *testing.T) {
	// The blocker parks on a channel, so it outlasts its 1ms timeout by
	// construction — no graph sizing against the runner's speed.
	_, release := registerBlocker(t, "park-timeout")
	s := New(Config{Workers: 1})
	defer s.Close()
	defer close(release) // before Close: the drained worker needs it
	v, err := s.Submit(Request{
		Algo:    "park-timeout",
		Graph:   smallGraph(5),
		Timeout: time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	final := waitTerminal(t, s, v.ID)
	if final.State != Failed {
		t.Fatalf("state %s, want failed on timeout", final.State)
	}
	if final.Error == "" {
		t.Fatal("timeout left no error message")
	}
}

func TestSubmitValidation(t *testing.T) {
	s := New(Config{Workers: 1})
	defer s.Close()
	if _, err := s.Submit(Request{Algo: "nope", Graph: smallGraph(1)}); err == nil {
		t.Fatal("unknown algorithm accepted")
	}
	if _, err := s.Submit(Request{Algo: "maxis"}); err == nil {
		t.Fatal("nil graph accepted")
	}
	if _, err := s.Submit(Request{Algo: "fastmcm", Graph: smallGraph(1), Params: registry.Params{Eps: -2}}); err == nil {
		t.Fatal("invalid params accepted")
	}
}

func TestQueueFullAndClose(t *testing.T) {
	s := New(Config{Workers: 1, QueueSize: 1})
	// Flood the single worker and single queue slot with slow jobs; at
	// least one submission must bounce with ErrQueueFull.
	var kept []string
	var sawFull bool
	for i := 0; i < 10; i++ {
		v, err := s.Submit(Request{Algo: "maxis", Graph: graph.GNP(200, 0.05, rng.New(uint64(i)))})
		if errors.Is(err, ErrQueueFull) {
			sawFull = true
			continue
		}
		if err != nil {
			t.Fatal(err)
		}
		kept = append(kept, v.ID)
	}
	if !sawFull {
		t.Fatal("queue never filled")
	}
	s.Close()
	for _, id := range kept {
		v, _ := s.Get(id)
		if !v.State.Terminal() {
			t.Fatalf("job %s not terminal after Close: %s", id, v.State)
		}
	}
	if _, err := s.Submit(Request{Algo: "maxis", Graph: smallGraph(1)}); !errors.Is(err, ErrClosed) {
		t.Fatalf("submit after close = %v, want ErrClosed", err)
	}
}

func TestFinishedJobRetention(t *testing.T) {
	s := New(Config{Workers: 2, MaxJobs: 2})
	defer s.Close()
	var ids []string
	for i := 0; i < 5; i++ {
		v, err := s.Submit(Request{Algo: "mwm2", Graph: smallGraph(uint64(i)), Params: registry.Params{Seed: uint64(i)}})
		if err != nil {
			t.Fatal(err)
		}
		waitTerminal(t, s, v.ID)
		ids = append(ids, v.ID)
	}
	if _, ok := s.Get(ids[0]); ok {
		t.Fatal("oldest finished job should have been evicted")
	}
	if v, ok := s.Get(ids[len(ids)-1]); !ok || v.State != Done {
		t.Fatal("newest finished job must remain pollable")
	}
}

func TestLRUEviction(t *testing.T) {
	c := newLRUCache(2)
	r := &registry.Result{Kind: registry.IS}
	c.put("a", r)
	c.put("b", r)
	if _, ok := c.get("a"); !ok { // touch a → b becomes LRU
		t.Fatal("a missing")
	}
	c.put("c", r)
	if _, ok := c.get("b"); ok {
		t.Fatal("b should have been evicted")
	}
	if _, ok := c.get("a"); !ok {
		t.Fatal("a evicted despite recent use")
	}
	if c.len() != 2 {
		t.Fatalf("len = %d, want 2", c.len())
	}
}
