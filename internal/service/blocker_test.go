package service

import (
	"testing"

	"repro/internal/graph"
	"repro/internal/registry"
)

// registerBlocker registers a test algorithm whose every run signals started
// and then parks until release is closed. It replaces the old "big graph is
// hopefully slow" blockers with a barrier the test controls, so nothing in
// these tests depends on wall-clock job duration (which a recovery replay,
// a race build, or a slow runner would stretch).
//
// Callers that Close the service via defer must close release via a LATER
// defer (so it runs first): a canceled or timed-out parked run keeps its
// worker occupied until the abandoned computation returns, and Close waits
// for the workers.
func registerBlocker(t *testing.T, name string) (started chan struct{}, release chan struct{}) {
	t.Helper()
	started = make(chan struct{}, 64)
	release = make(chan struct{})
	unregister := registry.Register(name, registry.IS, func(g *graph.Graph, p registry.Params) (*registry.Result, error) {
		started <- struct{}{}
		<-release
		return &registry.Result{Kind: registry.IS, InSet: make([]bool, g.N())}, nil
	})
	t.Cleanup(unregister)
	return started, release
}
