package service

import (
	"errors"
	"fmt"
	"log/slog"
	"slices"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/graph"
	"repro/internal/obs"
	"repro/internal/registry"
	"repro/internal/stats"
	"repro/internal/store"
	"repro/internal/wal"
)

// Batch errors surfaced to clients.
var (
	ErrBatchNotFound = errors.New("service: no such batch")
	ErrBatchFinished = errors.New("service: batch already finished")
	ErrBatchEmpty    = errors.New("service: batch expands to zero cells")
	ErrBatchTooLarge = errors.New("service: batch exceeds the cell cap")
)

// BatchConfig sizes the batch engine. Zero values select defaults.
type BatchConfig struct {
	// MaxCells bounds how many jobs one batch may expand into (default 4096).
	MaxCells int
	// MaxBatches bounds how many finished batches are retained for polling
	// (default 256); beyond it the oldest finished batches are evicted.
	MaxBatches int
	// WALDir, when non-empty, makes the batch engine durable: the batch
	// lifecycle is journaled there and incomplete batches resume on the next
	// boot (see ledger.go). New ignores this; use OpenBatches.
	WALDir string
	// SnapshotEvery compacts the ledger WAL after this many records (0 =
	// only the final snapshot written by Close).
	SnapshotEvery int
	// WALSegmentBytes overrides the WAL segment rotation size (testing).
	WALSegmentBytes int64
	// WALHooks injects crash points into the WAL (testing).
	WALHooks *wal.TestHooks
	// Logger, when set, receives wal_replay / batch_resumed events.
	Logger *slog.Logger
}

func (c BatchConfig) withDefaults() BatchConfig {
	if c.MaxCells <= 0 {
		c.MaxCells = 4096
	}
	if c.MaxBatches <= 0 {
		c.MaxBatches = 256
	}
	return c
}

// BatchState is a batch lifecycle state.
type BatchState string

const (
	// BatchRunning means members are still being expanded or executed.
	BatchRunning BatchState = "running"
	// BatchDone means every member reached a terminal state without the
	// batch being canceled (individual members may still have failed).
	BatchDone BatchState = "done"
	// BatchCanceled means the batch was canceled; members that had already
	// finished keep their results.
	BatchCanceled BatchState = "canceled"
)

// Terminal reports whether a batch in this state will never change again.
func (s BatchState) Terminal() bool { return s == BatchDone || s == BatchCanceled }

// BatchCell is one fully-specified (graph, algorithm, params) run.
type BatchCell struct {
	// Graph names a graph registered in the store.
	Graph string
	// Algo names a registered algorithm.
	Algo string
	// Params configures the run; zero fields mean registry defaults.
	Params registry.Params
}

// BatchSpec describes a batch: either an explicit cell list, or a grid —
// stored graphs × algorithms × parameter axes — expanded into the cross
// product. An empty axis contributes the registry default. Cells and grid
// axes are mutually exclusive.
type BatchSpec struct {
	// Graphs names stored graphs (grid axis).
	Graphs []string
	// Algos names registered algorithms (grid axis).
	Algos []string
	// Eps, K, Delta, MIS and Seeds are parameter axes.
	Eps   []float64
	K     []int
	Delta []float64
	MIS   []string
	Seeds []uint64
	// Cells, when set, is the explicit expansion (no grid axes allowed).
	Cells []BatchCell
	// Timeout bounds each member job (0 = the service default).
	Timeout time.Duration
	// TraceID identifies the batch across tiers; cell i runs under the
	// derived child ID obs.ChildTraceID(TraceID, i). Empty means the engine
	// generates one at submit.
	TraceID string
	// Tenant is the submitting tenant's ID ("" = anonymous). It is
	// journaled with the batch, selects the fair-share lane for every
	// member job, and scopes visibility at the HTTP layer.
	Tenant string
}

// Expand returns the deterministic cell expansion of the spec: explicit
// cells verbatim, or the cross product iterated graph-major, seed-minor.
func (sp BatchSpec) Expand() ([]BatchCell, error) {
	gridSet := len(sp.Graphs)+len(sp.Algos)+len(sp.Eps)+len(sp.K)+
		len(sp.Delta)+len(sp.MIS)+len(sp.Seeds) > 0
	if len(sp.Cells) > 0 {
		if gridSet {
			return nil, errors.New("service: set either cells or grid axes, not both")
		}
		return slices.Clone(sp.Cells), nil
	}
	if len(sp.Graphs) == 0 {
		return nil, errors.New("service: batch needs at least one graph")
	}
	if len(sp.Algos) == 0 {
		return nil, errors.New("service: batch needs at least one algo")
	}
	eps := orZero(sp.Eps)
	ks := orZero(sp.K)
	deltas := orZero(sp.Delta)
	miss := orZero(sp.MIS)
	seeds := orZero(sp.Seeds)
	var cells []BatchCell
	for _, g := range sp.Graphs {
		for _, a := range sp.Algos {
			for _, e := range eps {
				for _, k := range ks {
					for _, d := range deltas {
						for _, m := range miss {
							for _, s := range seeds {
								cells = append(cells, BatchCell{
									Graph: g, Algo: a,
									Params: registry.Params{Eps: e, K: k, Delta: d, MIS: m, Seed: s},
								})
							}
						}
					}
				}
			}
		}
	}
	return cells, nil
}

// orZero maps an empty axis to the single zero value (= registry default).
func orZero[T any](xs []T) []T {
	if len(xs) == 0 {
		return make([]T, 1)
	}
	return xs
}

// BatchCellView is the snapshot of one member run.
type BatchCellView struct {
	Index int
	// TraceID is the cell's derived trace ID
	// (obs.ChildTraceID(batch TraceID, Index)); it prefixes every log line
	// and worker-side job the cell produced, across retries.
	TraceID  string
	Graph    string
	Algo     string
	Params   registry.Params
	JobID    string
	State    State
	CacheHit bool
	Error    string
	Result   *registry.Result
}

// BatchGroup aggregates the done members of one grid cell — same graph,
// algorithm and parameters modulo seed — with summary statistics over the
// seeds, computed via internal/stats.
type BatchGroup struct {
	Graph  string
	Algo   string
	Params registry.Params // Seed zeroed: the group varies over it
	Runs   int
	Done   int
	Failed int
	// Rounds, Weight and Size summarize the done members; Messages
	// summarizes their total delivered-message counts.
	Rounds   stats.Summary
	Weight   stats.Summary
	Size     stats.Summary
	Messages stats.Summary
	// Trace folds the done members' RoundTraces into one group summary
	// (counts sum, peaks max); nil when no member carried a trace.
	Trace *obs.RoundTrace
}

// BatchView is an immutable snapshot of a batch.
type BatchView struct {
	ID         string
	TraceID    string
	Tenant     string
	State      BatchState
	Total      int
	Submitted  int // members handed to the job engine so far
	Done       int
	Failed     int
	Canceled   int
	CacheHits  int
	CreatedAt  time.Time
	FinishedAt time.Time
	Cells      []BatchCellView
	Groups     []BatchGroup // populated once the batch is terminal
}

type memberState struct {
	cell     BatchCell
	jobID    string
	state    State
	cacheHit bool
	err      string
	result   *registry.Result
}

type batch struct {
	id      string
	traceID string
	tenant  string
	eng     *Batches
	timeout time.Duration

	mu        sync.Mutex
	cells     []memberState
	state     BatchState
	cancelReq bool
	// cancelAcked records that some cancel commit was acknowledged: a
	// concurrent Cancel whose own commit failed must not roll cancelReq back
	// past an acked one.
	cancelAcked bool
	feedDone    bool
	submitted   int
	terminal    int
	done        int
	failed      int
	canceled    int
	cacheHits   int
	created     time.Time
	finished    time.Time
	releases    []func()
	doneCh      chan struct{}
	// progress is closed and replaced on every cell-terminal transition so
	// streaming waiters (WaitCell) wake without polling.
	progress chan struct{}
	groups   []BatchGroup // aggregates, computed once after the terminal transition
}

// signalProgressLocked wakes streaming waiters after a cell's terminal
// transition. Must be called with bt.mu held.
func (bt *batch) signalProgressLocked() {
	if bt.progress != nil {
		close(bt.progress)
		bt.progress = make(chan struct{})
	}
}

// Batches is the batch engine: it expands BatchSpecs over graphs pinned in
// a store into jobs on an underlying Service, tracks per-batch progress,
// fans cancellation out to members, and aggregates results per grid cell.
//
// Lock ordering: the engine only ever takes its own locks after the
// Service's (job notifications arrive under the Service mutex), and never
// calls into the Service while holding a batch lock.
type Batches struct {
	svc *Service
	st  *store.Store
	cfg BatchConfig

	mu       sync.Mutex
	batches  map[string]*batch
	terminal []string // finished batch IDs, oldest first, for eviction
	nextID   uint64

	// ledger is the durability journal, nil for engines built with
	// NewBatches or opened without a WALDir.
	ledger *ledger

	submittedCount atomic.Uint64
	doneCount      atomic.Uint64
	canceledCount  atomic.Uint64
	cellCount      atomic.Uint64
}

// BatchMetrics is a point-in-time snapshot of the batch engine's counters.
type BatchMetrics struct {
	BatchesSubmitted uint64 `json:"batches_submitted"`
	BatchesDone      uint64 `json:"batches_done"`
	BatchesCanceled  uint64 `json:"batches_canceled"`
	BatchCells       uint64 `json:"batch_cells"`
}

// NewBatches returns a batch engine over svc and st.
func NewBatches(svc *Service, st *store.Store, cfg BatchConfig) *Batches {
	return &Batches{
		svc:     svc,
		st:      st,
		cfg:     cfg.withDefaults(),
		batches: make(map[string]*batch),
	}
}

// Metrics returns a snapshot of the engine counters.
func (b *Batches) Metrics() BatchMetrics {
	return BatchMetrics{
		BatchesSubmitted: b.submittedCount.Load(),
		BatchesDone:      b.doneCount.Load(),
		BatchesCanceled:  b.canceledCount.Load(),
		BatchCells:       b.cellCount.Load(),
	}
}

// PrepareBatch is the shared submission prologue of the single-node engine
// and the cluster coordinator: expand the spec, bound it by maxCells,
// validate every cell's algorithm and params up front (so a bad grid fails
// fast rather than as a pile of failed member jobs), and pin every distinct
// graph once in st. On success the caller owns the releases — one per
// distinct graph — and must run them all when the batch ends; on error
// nothing stays pinned.
func PrepareBatch(st *store.Store, spec BatchSpec, maxCells int) ([]BatchCell, map[string]*graph.Graph, []func(), error) {
	cells, err := spec.Expand()
	if err != nil {
		return nil, nil, nil, err
	}
	if len(cells) == 0 {
		return nil, nil, nil, ErrBatchEmpty
	}
	if len(cells) > maxCells {
		return nil, nil, nil, fmt.Errorf("%w: %d cells, cap %d", ErrBatchTooLarge, len(cells), maxCells)
	}
	for i, c := range cells {
		spec, ok := registry.Get(c.Algo)
		if !ok {
			return nil, nil, nil, fmt.Errorf("service: cell %d: unknown algorithm %q", i, c.Algo)
		}
		if err := spec.Validate(c.Params); err != nil {
			return nil, nil, nil, fmt.Errorf("service: cell %d: %w", i, err)
		}
	}
	graphs := make(map[string]*graph.Graph)
	var releases []func()
	for _, c := range cells {
		if _, ok := graphs[c.Graph]; ok {
			continue
		}
		g, release, err := st.Acquire(c.Graph)
		if err != nil {
			for _, r := range releases {
				r()
			}
			return nil, nil, nil, err
		}
		graphs[c.Graph] = g
		releases = append(releases, release)
	}
	return cells, graphs, releases, nil
}

// Submit validates and launches a batch: the spec is expanded, every
// referenced graph is pinned in the store for the batch's lifetime, and the
// member jobs are fed to the job engine in the background (a full queue
// slows feeding down instead of failing the batch). The returned view
// reflects the batch at expansion time; poll Get or Wait for progress.
func (b *Batches) Submit(spec BatchSpec) (BatchView, error) {
	cells, graphs, releases, err := PrepareBatch(b.st, spec, b.cfg.MaxCells)
	if err != nil {
		return BatchView{}, err
	}

	trace := spec.TraceID
	if trace == "" {
		trace = obs.NewTraceID()
	}
	bt := &batch{
		eng:      b,
		traceID:  trace,
		tenant:   spec.Tenant,
		timeout:  spec.Timeout,
		cells:    make([]memberState, len(cells)),
		state:    BatchRunning,
		created:  time.Now(),
		releases: releases,
		doneCh:   make(chan struct{}),
		progress: make(chan struct{}),
	}
	for i, c := range cells {
		bt.cells[i] = memberState{cell: c, state: Queued}
	}

	b.mu.Lock()
	b.nextID++
	bt.id = fmt.Sprintf("b%06d", b.nextID)
	// Visible before acked: the batch must be in b.batches before the commit
	// ack is delivered, because the writer goroutine snapshots b.batches right
	// after acking and the snapshot supersedes the segment holding the submit
	// record — a batch registered only after the ack could land in neither. An
	// unacked batch surviving a crash is fine (the record could be durable
	// anyway); an acked batch lost is not.
	b.batches[bt.id] = bt
	b.mu.Unlock()

	// Durable before fed: the submit record is fsynced before any cell runs,
	// so every later cell record replays against a known batch. A failed
	// commit (crashed log) rolls the registration back and burns the ID.
	if b.ledger != nil {
		sp := submitPayload{
			ID: bt.id, TraceID: trace, Tenant: bt.tenant, TimeoutNS: int64(spec.Timeout),
			Created: bt.created, Cells: make([]cellSpecRec, len(cells)),
		}
		for i, c := range cells {
			sp.Cells[i] = cellSpecRec{Graph: c.Graph, Algo: c.Algo, Params: c.Params}
		}
		if err := b.ledger.commit(recBatchSubmit, sp); err != nil {
			b.mu.Lock()
			delete(b.batches, bt.id)
			b.mu.Unlock()
			for _, release := range releases {
				release()
			}
			return BatchView{}, err
		}
	}
	b.submittedCount.Add(1)
	b.cellCount.Add(uint64(len(cells)))

	go b.feed(bt, graphs)
	return bt.view(), nil
}

// markUnsubmitted records a cell the feeder could not hand to the job
// engine (cancel or shutdown) as terminal itself.
func (bt *batch) markUnsubmitted(i int, state State, errMsg string) {
	bt.mu.Lock()
	defer bt.mu.Unlock()
	bt.cells[i].state = state
	bt.cells[i].err = errMsg
	bt.terminal++
	if state == Canceled {
		bt.canceled++
	} else {
		bt.failed++
	}
	bt.journalCellLocked(i)
	bt.signalProgressLocked()
}

// feed hands the batch's cells to the job engine one by one, backing off
// while the queue is full, and marks cells it can no longer submit (cancel,
// service shutdown) terminal itself.
func (b *Batches) feed(bt *batch, graphs map[string]*graph.Graph) {
	closed := false
	for i := range bt.cells {
		bt.mu.Lock()
		// A resumed batch restores finished cells from the ledger before the
		// feeder starts: skip them so they are never re-executed.
		if bt.cells[i].state.Terminal() {
			bt.mu.Unlock()
			continue
		}
		cell := bt.cells[i].cell
		canceled := bt.cancelReq
		bt.mu.Unlock()

		if closed {
			bt.markUnsubmitted(i, Failed, ErrClosed.Error())
			continue
		}
		if canceled {
			bt.markUnsubmitted(i, Canceled, "")
			continue
		}
		if graphs[cell.Graph] == nil {
			// Resume found the graph gone from the store; the cell fails,
			// the batch still finishes.
			bt.markUnsubmitted(i, Failed, fmt.Sprintf("%s: %q", store.ErrNotFound, cell.Graph))
			continue
		}

		req := Request{
			Algo:    cell.Algo,
			Graph:   graphs[cell.Graph],
			Params:  cell.Params,
			Timeout: bt.timeout,
			TraceID: obs.ChildTraceID(bt.traceID, i),
			Tenant:  bt.tenant,
		}
		i := i
		var v JobView
		var err error
		for {
			v, err = b.svc.submit(req, true, func(v JobView) { bt.onMemberDone(i, v) })
			if !errors.Is(err, ErrQueueFull) {
				break
			}
			// Re-check for cancellation while throttled: a saturated queue
			// must not keep a canceled batch (and its graph pins) alive.
			bt.mu.Lock()
			canceled = bt.cancelReq
			bt.mu.Unlock()
			if canceled {
				break
			}
			time.Sleep(2 * time.Millisecond)
		}
		switch {
		case canceled:
			bt.markUnsubmitted(i, Canceled, "")
		case errors.Is(err, ErrDraining):
			// Graceful drain: stop feeding WITHOUT journaling the remaining
			// cells terminal — they were never handed to the engine, so the
			// WAL resume after restart re-feeds them. feedDone stays false,
			// keeping the batch open for that resume.
			return
		case errors.Is(err, ErrClosed):
			closed = true
			bt.markUnsubmitted(i, Failed, err.Error())
		case err != nil: // validation surprises; the cell fails, the batch goes on
			bt.markUnsubmitted(i, Failed, err.Error())
		default:
			bt.mu.Lock()
			// onMemberDone may already have fired (cache hit): it recorded
			// state and counters; only the job ID is ours to fill in.
			bt.cells[i].jobID = v.ID
			bt.submitted++
			lateCancel := bt.cancelReq && !bt.cells[i].state.Terminal()
			bt.mu.Unlock()
			if lateCancel {
				// A cancel raced our submission and its fan-out missed this
				// member; chase it down best-effort.
				_, _ = b.svc.Cancel(v.ID)
			}
		}
	}
	bt.mu.Lock()
	bt.feedDone = true
	b.finalizeLocked(bt)
	bt.mu.Unlock()
}

// onMemberDone is the job-terminal notification. It runs under the Service
// mutex and therefore only touches batch state.
func (bt *batch) onMemberDone(i int, v JobView) {
	bt.mu.Lock()
	defer bt.mu.Unlock()
	ms := &bt.cells[i]
	ms.state = v.State
	ms.cacheHit = v.CacheHit
	ms.err = v.Error
	ms.result = v.Result
	bt.terminal++
	switch v.State {
	case Done:
		bt.done++
	case Failed:
		bt.failed++
	case Canceled:
		bt.canceled++
	}
	if v.CacheHit {
		bt.cacheHits++
	}
	bt.journalCellLocked(i)
	bt.signalProgressLocked()
	bt.eng.finalizeLocked(bt)
}

// finalizeLocked transitions the batch to its terminal state once every cell
// is terminal and feeding has finished. Must be called with bt.mu held.
func (b *Batches) finalizeLocked(bt *batch) {
	if bt.state.Terminal() || !bt.feedDone || bt.terminal < len(bt.cells) {
		return
	}
	if bt.cancelReq {
		bt.state = BatchCanceled
		b.canceledCount.Add(1)
	} else {
		bt.state = BatchDone
		b.doneCount.Add(1)
	}
	bt.finished = time.Now()
	if b.ledger != nil {
		b.ledger.enqueue(recBatchTerminal, terminalPayload{Batch: bt.id, State: bt.state, Finished: bt.finished})
	}
	for _, release := range bt.releases {
		release()
	}
	bt.releases = nil
	close(bt.doneCh)
	b.retireTerminal(bt.id)
}

// retireTerminal records a finished batch for retention-bound eviction. It
// must not take b.mu synchronously (callers may hold bt.mu under s.mu), so
// the eviction runs on its own goroutine.
func (b *Batches) retireTerminal(id string) {
	go func() {
		b.mu.Lock()
		defer b.mu.Unlock()
		b.terminal = append(b.terminal, id)
		for len(b.terminal) > b.cfg.MaxBatches {
			delete(b.batches, b.terminal[0])
			b.terminal = b.terminal[1:]
		}
	}()
}

// Get returns a snapshot of the batch with the given ID.
func (b *Batches) Get(id string) (BatchView, bool) {
	b.mu.Lock()
	bt, ok := b.batches[id]
	b.mu.Unlock()
	if !ok {
		return BatchView{}, false
	}
	return bt.view(), true
}

// List returns a snapshot of every retained batch, oldest first. The
// snapshots carry no cells or groups — fetch a batch by ID for detail.
func (b *Batches) List() []BatchView {
	b.mu.Lock()
	bts := make([]*batch, 0, len(b.batches))
	for _, bt := range b.batches {
		bts = append(bts, bt)
	}
	b.mu.Unlock()
	slices.SortFunc(bts, func(x, y *batch) int { return strings.Compare(x.id, y.id) })
	out := make([]BatchView, len(bts))
	for i, bt := range bts {
		out[i] = bt.summary()
	}
	return out
}

// Cancel stops a running batch: members not yet fed to the job engine are
// dropped, queued and running members are canceled best-effort, and already
// finished members keep their results. Finished batches return
// ErrBatchFinished.
func (b *Batches) Cancel(id string) (BatchView, error) {
	b.mu.Lock()
	bt, ok := b.batches[id]
	b.mu.Unlock()
	if !ok {
		return BatchView{}, ErrBatchNotFound
	}
	bt.mu.Lock()
	if bt.state.Terminal() {
		bt.mu.Unlock()
		return bt.view(), ErrBatchFinished
	}
	// Effective before acked, like Submit's registration: cancelReq must be
	// set before the commit ack, because the writer snapshots right after
	// acking and the snapshot supersedes the cancel record's segment — a flag
	// raised only after the ack could be recorded nowhere, resurrecting an
	// acknowledged-canceled batch as running after a crash. Rolled back if the
	// commit fails (and no other Cancel's commit was acked meanwhile).
	prev := bt.cancelReq
	bt.cancelReq = true
	bt.mu.Unlock()
	if err := b.ledger.commit(recBatchCancel, cancelPayload{Batch: id}); err != nil {
		bt.mu.Lock()
		if !prev && !bt.cancelAcked {
			bt.cancelReq = false
		}
		bt.mu.Unlock()
		return BatchView{}, err
	}
	bt.mu.Lock()
	bt.cancelReq = true // re-assert past any concurrent failed Cancel's rollback
	bt.cancelAcked = true
	if bt.state.Terminal() {
		// cancelReq was raised before the first terminal check released bt.mu,
		// so any terminal transition since then saw the flag and finalized the
		// batch as canceled — e.g. the feeder reacting before the commit ack.
		// That is this cancel succeeding, not ErrBatchFinished.
		bt.mu.Unlock()
		return bt.view(), nil
	}
	var ids []string
	for i := range bt.cells {
		if ms := &bt.cells[i]; ms.jobID != "" && !ms.state.Terminal() {
			ids = append(ids, ms.jobID)
		}
	}
	bt.mu.Unlock()
	// Fan out with no batch lock held: each member's terminal notification
	// arrives under the Service mutex and re-takes bt.mu.
	for _, jobID := range ids {
		_, _ = b.svc.Cancel(jobID)
	}
	return bt.view(), nil
}

// Wait blocks until the batch is terminal or d has elapsed (d <= 0 returns
// immediately), then returns the current snapshot — the long-poll primitive
// behind GET /v1/batches/{id}?wait=.
func (b *Batches) Wait(id string, d time.Duration) (BatchView, bool) {
	b.mu.Lock()
	bt, ok := b.batches[id]
	b.mu.Unlock()
	if !ok {
		return BatchView{}, false
	}
	if d > 0 {
		select {
		case <-bt.doneCh:
		case <-time.After(d):
		}
	}
	return bt.view(), true
}

// WaitCell blocks until cell index of batch id reaches a terminal state,
// the batch itself is terminal, or d elapses, then returns the cell's
// snapshot — the per-cell long-poll primitive behind the streaming endpoint
// GET /v1/batches/{id}/stream. The second result is false when the batch or
// the index does not exist. A non-terminal snapshot after d means "still
// running": callers emit a keepalive and wait again.
func (b *Batches) WaitCell(id string, index int, d time.Duration) (BatchCellView, bool) {
	b.mu.Lock()
	bt, ok := b.batches[id]
	b.mu.Unlock()
	if !ok {
		return BatchCellView{}, false
	}
	deadline := time.Now().Add(d)
	for {
		bt.mu.Lock()
		if index < 0 || index >= len(bt.cells) {
			bt.mu.Unlock()
			return BatchCellView{}, false
		}
		cv := bt.cellViewLocked(index)
		// A resumed-then-terminal batch can hold non-terminal cells (their
		// records were dropped before the crash); batch-terminal settles the
		// wait so streams converge on exactly what the terminal GET shows.
		settled := cv.State.Terminal() || bt.state.Terminal()
		progress := bt.progress
		doneCh := bt.doneCh
		bt.mu.Unlock()
		remain := time.Until(deadline)
		if settled || remain <= 0 {
			return cv, true
		}
		t := time.NewTimer(remain)
		select {
		case <-progress:
		case <-doneCh:
		case <-t.C:
		}
		t.Stop()
	}
}

// summary is view without the cell and group detail: cheap enough for
// listings over large retained batches.
func (bt *batch) summary() BatchView {
	bt.mu.Lock()
	defer bt.mu.Unlock()
	return BatchView{
		ID:         bt.id,
		TraceID:    bt.traceID,
		Tenant:     bt.tenant,
		State:      bt.state,
		Total:      len(bt.cells),
		Submitted:  bt.submitted,
		Done:       bt.done,
		Failed:     bt.failed,
		Canceled:   bt.canceled,
		CacheHits:  bt.cacheHits,
		CreatedAt:  bt.created,
		FinishedAt: bt.finished,
	}
}

func (bt *batch) view() BatchView {
	bt.mu.Lock()
	defer bt.mu.Unlock()
	v := BatchView{
		ID:         bt.id,
		TraceID:    bt.traceID,
		Tenant:     bt.tenant,
		State:      bt.state,
		Total:      len(bt.cells),
		Submitted:  bt.submitted,
		Done:       bt.done,
		Failed:     bt.failed,
		Canceled:   bt.canceled,
		CacheHits:  bt.cacheHits,
		CreatedAt:  bt.created,
		FinishedAt: bt.finished,
		Cells:      make([]BatchCellView, len(bt.cells)),
	}
	for i := range bt.cells {
		v.Cells[i] = bt.cellViewLocked(i)
	}
	if bt.state.Terminal() {
		// Cells are immutable once the batch is terminal; aggregate once
		// and reuse across polls (computed lazily here, not in
		// finalizeLocked, which can run under the Service mutex).
		if bt.groups == nil {
			bt.groups = GroupCells(v.Cells)
		}
		v.Groups = bt.groups
	}
	return v
}

// cellViewLocked snapshots one member. Must be called with bt.mu held.
func (bt *batch) cellViewLocked(i int) BatchCellView {
	ms := &bt.cells[i]
	return BatchCellView{
		Index:    i,
		TraceID:  obs.ChildTraceID(bt.traceID, i),
		Graph:    ms.cell.Graph,
		Algo:     ms.cell.Algo,
		Params:   ms.cell.Params,
		JobID:    ms.jobID,
		State:    ms.state,
		CacheHit: ms.cacheHit,
		Error:    ms.err,
		Result:   ms.result,
	}
}

// GroupCells aggregates terminal cells by (graph, algo, params modulo seed),
// in first-seen order, summarizing rounds, weight and solution size over the
// done members of each group. The cluster coordinator reuses it so merged
// multi-worker batches aggregate exactly like single-node ones.
func GroupCells(cells []BatchCellView) []BatchGroup {
	type acc struct {
		group                          *BatchGroup
		rounds, weight, size, messages []float64
		trace                          obs.RoundTrace
		traced                         bool
	}
	var order []string
	accs := make(map[string]*acc)
	for _, c := range cells {
		key := groupKey(c)
		a, ok := accs[key]
		if !ok {
			p := c.Params
			p.Seed = 0
			a = &acc{group: &BatchGroup{Graph: c.Graph, Algo: c.Algo, Params: p}}
			accs[key] = a
			order = append(order, key)
		}
		a.group.Runs++
		switch c.State {
		case Done:
			a.group.Done++
			a.rounds = append(a.rounds, float64(c.Result.Cost.Rounds))
			a.weight = append(a.weight, float64(c.Result.Weight))
			a.size = append(a.size, float64(c.Result.Size()))
			a.messages = append(a.messages, float64(c.Result.Cost.Messages))
			if t := c.Result.Trace; t != nil {
				a.trace.Add(*t)
				a.traced = true
			}
		case Failed:
			a.group.Failed++
		}
	}
	out := make([]BatchGroup, 0, len(order))
	for _, key := range order {
		a := accs[key]
		a.group.Rounds = stats.Summarize(a.rounds)
		a.group.Weight = stats.Summarize(a.weight)
		a.group.Size = stats.Summarize(a.size)
		a.group.Messages = stats.Summarize(a.messages)
		if a.traced {
			t := a.trace
			a.group.Trace = &t
		}
		out = append(out, *a.group)
	}
	return out
}

func groupKey(c BatchCellView) string {
	p := c.Params
	p.Seed = 0
	if spec, ok := registry.Get(c.Algo); ok {
		return c.Graph + "|" + spec.CacheKey(p)
	}
	return fmt.Sprintf("%s|%s|%+v", c.Graph, c.Algo, p)
}
