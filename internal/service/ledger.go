package service

// Batch ledger (DESIGN.md §8): when BatchConfig.WALDir is set, OpenBatches
// journals the batch lifecycle to an internal/wal log — one submit record
// per batch (synchronously committed before Submit returns), one cell record
// per terminal member, one terminal record per finished batch, one cancel
// record per cancellation — and replays it on boot. Incomplete batches are
// resumed: finished cells are restored from the log with their results (and
// never re-executed — the job counters of a resumed run prove it), unfinished
// cells are re-fed into the worker pool under their original derived trace
// IDs, so the finished batch is indistinguishable from an uninterrupted run.
//
// Writer discipline: terminal-cell and finalize events fire under the
// Service mutex, so they enqueue to a single writer goroutine without
// blocking (a full queue drops the record and counts it — a dropped cell
// record only costs a re-run after a crash, never correctness). Submit and
// Cancel commit synchronously: the writer group-commits everything queued
// behind one fsync and acks. The writer takes Batches.mu and batch.mu only —
// never the Service mutex — so it cannot deadlock with notifications.
//
// Snapshot safety: the writer may snapshot immediately after acking, and a
// snapshot supersedes the segments holding the records it just synced — so a
// synchronous committer MUST make its mutation visible to snapshot state
// (b.batches, bt.cancelReq) before committing, rolling back on commit
// failure. State applied only after the ack can end up in neither the
// snapshot nor any surviving segment, silently losing an acked operation.
//
// Replay idempotence: submit records of known IDs, cell records for
// already-terminal cells, and terminal/cancel records for already-terminal
// batches are skipped; unknown record types are skipped.

import (
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"strconv"
	"sync/atomic"
	"time"

	"repro/internal/graph"
	"repro/internal/registry"
	"repro/internal/store"
	"repro/internal/wal"
)

// Ledger WAL record types.
const (
	recBatchSubmit   = 1 // submitPayload
	recCellDone      = 2 // cellPayload
	recBatchTerminal = 3 // terminalPayload
	recBatchCancel   = 4 // cancelPayload
)

type cellSpecRec struct {
	Graph  string          `json:"graph"`
	Algo   string          `json:"algo"`
	Params registry.Params `json:"params"`
}

type submitPayload struct {
	ID        string        `json:"id"`
	TraceID   string        `json:"trace"`
	Tenant    string        `json:"tenant,omitempty"`
	TimeoutNS int64         `json:"timeout_ns,omitempty"`
	Created   time.Time     `json:"created"`
	Cells     []cellSpecRec `json:"cells"`
}

type cellPayload struct {
	Batch    string           `json:"batch"`
	Index    int              `json:"i"`
	State    State            `json:"state"`
	JobID    string           `json:"job,omitempty"`
	CacheHit bool             `json:"cache_hit,omitempty"`
	Err      string           `json:"err,omitempty"`
	Result   *registry.Result `json:"result,omitempty"`
}

type terminalPayload struct {
	Batch    string     `json:"batch"`
	State    BatchState `json:"state"`
	Finished time.Time  `json:"finished"`
}

type cancelPayload struct {
	Batch string `json:"batch"`
}

// ledgerSnapshot is the full engine state: replaying it is equivalent to
// replaying every record that built it.
type ledgerSnapshot struct {
	NextID  uint64          `json:"next_id"`
	Batches []batchSnapshot `json:"batches"`
}

type batchSnapshot struct {
	Submit    submitPayload `json:"submit"`
	Done      []cellPayload `json:"done,omitempty"`
	State     BatchState    `json:"state"`
	CancelReq bool          `json:"cancel_req,omitempty"`
	Finished  time.Time     `json:"finished"`
}

type ledgerReq struct {
	typ     byte
	payload any
	ack     chan error // nil for fire-and-forget records
}

// ledger is the async WAL writer. A nil *ledger is a valid no-op.
type ledger struct {
	log    *wal.Log
	every  int
	logger *slog.Logger
	ch     chan ledgerReq
	quit   chan struct{}
	done   chan struct{}
	closed atomic.Bool

	dropped        atomic.Uint64
	batchesResumed atomic.Uint64
	cellsRestored  atomic.Uint64
}

var errLedgerClosed = errors.New("service: batch ledger closed")

// enqueue journals a record without blocking; callers may hold the Service
// mutex. A full channel drops the record: after a crash the affected cell
// re-runs, which is safe.
func (ld *ledger) enqueue(typ byte, payload any) {
	if ld == nil || ld.closed.Load() {
		return
	}
	select {
	case ld.ch <- ledgerReq{typ: typ, payload: payload}:
	default:
		ld.dropped.Add(1)
	}
}

// commit journals a record and blocks until it is fsynced. Callers must not
// hold any engine mutex.
func (ld *ledger) commit(typ byte, payload any) error {
	if ld == nil {
		return nil
	}
	if ld.closed.Load() {
		return errLedgerClosed
	}
	req := ledgerReq{typ: typ, payload: payload, ack: make(chan error, 1)}
	select {
	case ld.ch <- req:
	case <-ld.done:
		return errLedgerClosed
	}
	select {
	case err := <-req.ack:
		return err
	case <-ld.done:
		return errLedgerClosed
	}
}

// run is the writer goroutine: group-commit everything queued behind one
// fsync, ack the synchronous committers, snapshot on cadence.
func (ld *ledger) run(b *Batches) {
	defer close(ld.done)
	for {
		var first ledgerReq
		select {
		case first = <-ld.ch:
		case <-ld.quit:
			ld.drainAndStop()
			return
		}
		acks := ld.appendOne(first, nil)
		for drained := false; !drained; {
			select {
			case req := <-ld.ch:
				acks = ld.appendOne(req, acks)
			default:
				drained = true
			}
		}
		err := ld.log.Sync()
		for _, ack := range acks {
			ack <- err
		}
		if ld.every > 0 && ld.log.RecordsSinceSnapshot() >= uint64(ld.every) {
			if err := ld.snapshot(b); err != nil && !errors.Is(err, wal.ErrCrashed) && ld.logger != nil {
				ld.logger.Warn("wal_snapshot_failed", "component", "batches", "err", err)
			}
		}
	}
}

func (ld *ledger) drainAndStop() {
	var acks []chan error
	for {
		select {
		case req := <-ld.ch:
			acks = ld.appendOne(req, acks)
		default:
			err := ld.log.Sync()
			for _, ack := range acks {
				ack <- err
			}
			return
		}
	}
}

func (ld *ledger) appendOne(req ledgerReq, acks []chan error) []chan error {
	data, err := json.Marshal(req.payload)
	if err == nil {
		err = ld.log.Append(req.typ, data)
	}
	if req.ack != nil {
		if err != nil {
			req.ack <- err
			return acks
		}
		return append(acks, req.ack)
	}
	if err != nil {
		ld.dropped.Add(1)
	}
	return acks
}

// snapshot serializes the whole engine behind the engine and batch mutexes
// (never the Service mutex) and compacts the log.
func (ld *ledger) snapshot(b *Batches) error {
	b.mu.Lock()
	snap := ledgerSnapshot{NextID: b.nextID, Batches: make([]batchSnapshot, 0, len(b.batches))}
	bts := make([]*batch, 0, len(b.batches))
	for _, bt := range b.batches {
		bts = append(bts, bt)
	}
	b.mu.Unlock()
	for _, bt := range bts {
		snap.Batches = append(snap.Batches, bt.snapshotRec())
	}
	data, err := json.Marshal(snap)
	if err != nil {
		return err
	}
	return ld.log.WriteSnapshot(data)
}

func (bt *batch) snapshotRec() batchSnapshot {
	bt.mu.Lock()
	defer bt.mu.Unlock()
	rec := batchSnapshot{
		Submit: submitPayload{
			ID:        bt.id,
			TraceID:   bt.traceID,
			Tenant:    bt.tenant,
			TimeoutNS: int64(bt.timeout),
			Created:   bt.created,
			Cells:     make([]cellSpecRec, len(bt.cells)),
		},
		State:     bt.state,
		CancelReq: bt.cancelReq,
		Finished:  bt.finished,
	}
	for i := range bt.cells {
		ms := &bt.cells[i]
		rec.Submit.Cells[i] = cellSpecRec{Graph: ms.cell.Graph, Algo: ms.cell.Algo, Params: ms.cell.Params}
		if ms.state.Terminal() {
			rec.Done = append(rec.Done, cellPayload{
				Batch: bt.id, Index: i, State: ms.state, JobID: ms.jobID,
				CacheHit: ms.cacheHit, Err: ms.err, Result: ms.result,
			})
		}
	}
	return rec
}

// journalCellLocked records one member's terminal state. Must be called with
// bt.mu held (and possibly the Service mutex above it): enqueue never blocks.
func (bt *batch) journalCellLocked(i int) {
	ld := bt.eng.ledger
	if ld == nil {
		return
	}
	ms := &bt.cells[i]
	ld.enqueue(recCellDone, cellPayload{
		Batch: bt.id, Index: i, State: ms.state, JobID: ms.jobID,
		CacheHit: ms.cacheHit, Err: ms.err, Result: ms.result,
	})
}

// LedgerMetrics reports the batch ledger's WAL counters plus resume stats.
type LedgerMetrics struct {
	wal.Metrics
	BatchesResumed uint64
	CellsRestored  uint64
	RecordsDropped uint64
}

// LedgerMetrics returns the ledger counters; ok is false when the engine was
// built without a WALDir.
func (b *Batches) LedgerMetrics() (LedgerMetrics, bool) {
	if b.ledger == nil {
		return LedgerMetrics{}, false
	}
	return LedgerMetrics{
		Metrics:        b.ledger.log.Metrics(),
		BatchesResumed: b.ledger.batchesResumed.Load(),
		CellsRestored:  b.ledger.cellsRestored.Load(),
		RecordsDropped: b.ledger.dropped.Load(),
	}, true
}

// OpenBatches is NewBatches plus durability: it replays cfg.WALDir, rebuilds
// every retained batch, restores finished cells with their results, re-pins
// the graphs of incomplete batches in st and re-feeds their unfinished cells
// into svc under the original batch and cell trace IDs. Batches whose graphs
// no longer exist in st resume with those cells failed rather than blocking
// recovery.
func OpenBatches(svc *Service, st *store.Store, cfg BatchConfig) (*Batches, error) {
	b := NewBatches(svc, st, cfg)
	if cfg.WALDir == "" {
		return b, nil
	}
	l, rec, err := wal.Open(cfg.WALDir, wal.Options{SegmentBytes: cfg.WALSegmentBytes, Hooks: cfg.WALHooks})
	if err != nil {
		return nil, err
	}
	b.ledger = &ledger{
		log:    l,
		every:  cfg.SnapshotEvery,
		logger: cfg.Logger,
		ch:     make(chan ledgerReq, 1024),
		quit:   make(chan struct{}),
		done:   make(chan struct{}),
	}

	if rec.Snapshot != nil {
		var snap ledgerSnapshot
		if err := json.Unmarshal(rec.Snapshot, &snap); err != nil {
			l.Close()
			return nil, fmt.Errorf("service: corrupt ledger snapshot: %w", err)
		}
		b.nextID = snap.NextID
		for _, bs := range snap.Batches {
			bt := b.replaySubmit(bs.Submit)
			if bt == nil {
				continue
			}
			for _, c := range bs.Done {
				replayCell(bt, c)
			}
			bt.cancelReq = bs.CancelReq
			if bs.State.Terminal() {
				replayTerminal(bt, terminalPayload{Batch: bt.id, State: bs.State, Finished: bs.Finished})
			}
		}
	}
	for _, r := range rec.Records {
		switch r.Type {
		case recBatchSubmit:
			var p submitPayload
			if json.Unmarshal(r.Data, &p) == nil {
				b.replaySubmit(p)
			}
		case recCellDone:
			var p cellPayload
			if json.Unmarshal(r.Data, &p) == nil {
				if bt := b.batches[p.Batch]; bt != nil {
					replayCell(bt, p)
				}
			}
		case recBatchTerminal:
			var p terminalPayload
			if json.Unmarshal(r.Data, &p) == nil {
				if bt := b.batches[p.Batch]; bt != nil {
					replayTerminal(bt, p)
				}
			}
		case recBatchCancel:
			var p cancelPayload
			if json.Unmarshal(r.Data, &p) == nil {
				if bt := b.batches[p.Batch]; bt != nil && !bt.state.Terminal() {
					bt.cancelReq = true
				}
			}
		default:
			// Newer engine version's record: skip.
		}
	}
	if cfg.Logger != nil && (len(b.batches) > 0 || rec.TornTail) {
		cfg.Logger.Info("wal_replay",
			"component", "batches",
			"batches", len(b.batches),
			"records", len(rec.Records),
			"segments", rec.Segments,
			"torn_tail", rec.TornTail,
			"had_snapshot", rec.Snapshot != nil)
	}

	// Resume: everything above ran single-threaded; from here on the resumed
	// feeders and the writer goroutine own the concurrency.
	for _, bt := range b.batches {
		if bt.state.Terminal() {
			b.terminal = append(b.terminal, bt.id)
			continue
		}
		b.resume(bt, cfg.Logger)
	}
	go b.ledger.run(b)
	return b, nil
}

// replaySubmit rebuilds one batch shell from its submit record; idempotent
// on duplicate IDs. Single-threaded (boot): no locks.
func (b *Batches) replaySubmit(p submitPayload) *batch {
	if p.ID == "" || len(p.Cells) == 0 {
		return nil
	}
	if bt, ok := b.batches[p.ID]; ok {
		return bt
	}
	bt := &batch{
		id:       p.ID,
		eng:      b,
		traceID:  p.TraceID,
		tenant:   p.Tenant,
		timeout:  time.Duration(p.TimeoutNS),
		cells:    make([]memberState, len(p.Cells)),
		state:    BatchRunning,
		created:  p.Created,
		doneCh:   make(chan struct{}),
		progress: make(chan struct{}),
	}
	for i, c := range p.Cells {
		bt.cells[i] = memberState{cell: BatchCell{Graph: c.Graph, Algo: c.Algo, Params: c.Params}, state: Queued}
	}
	b.batches[p.ID] = bt
	if n, err := strconv.ParseUint(p.ID[1:], 10, 64); err == nil && n > b.nextID {
		b.nextID = n
	}
	b.ledger.batchesResumed.Add(1)
	b.cellCount.Add(uint64(len(p.Cells)))
	return bt
}

// replayCell restores one terminal member; idempotent on duplicates.
func replayCell(bt *batch, p cellPayload) {
	if p.Index < 0 || p.Index >= len(bt.cells) || !p.State.Terminal() {
		return
	}
	ms := &bt.cells[p.Index]
	if ms.state.Terminal() {
		return
	}
	ms.state = p.State
	ms.jobID = p.JobID
	ms.cacheHit = p.CacheHit
	ms.err = p.Err
	ms.result = p.Result
	bt.terminal++
	if p.JobID != "" {
		bt.submitted++
	}
	switch p.State {
	case Done:
		bt.done++
	case Failed:
		bt.failed++
	case Canceled:
		bt.canceled++
	}
	if p.CacheHit {
		bt.cacheHits++
	}
	bt.eng.ledger.cellsRestored.Add(1)
}

// replayTerminal finishes a replayed batch without re-running finalize
// bookkeeping (there are no pins to release on a batch that was already
// terminal before boot).
func replayTerminal(bt *batch, p terminalPayload) {
	if bt.state.Terminal() {
		return
	}
	bt.state = p.State
	bt.finished = p.Finished
	close(bt.doneCh)
}

// resume re-pins the graphs an incomplete batch still needs and restarts its
// feeder. Cells whose graph is gone from the store fail at feed time.
func (b *Batches) resume(bt *batch, logger *slog.Logger) {
	graphs := make(map[string]*graph.Graph)
	pending := 0
	for i := range bt.cells {
		ms := &bt.cells[i]
		if ms.state.Terminal() {
			continue
		}
		pending++
		if _, ok := graphs[ms.cell.Graph]; ok {
			continue
		}
		g, release, err := b.st.Acquire(ms.cell.Graph)
		if err != nil {
			if logger != nil {
				logger.Warn("batch_resume_graph_missing", "batch", bt.id, "graph", ms.cell.Graph, "err", err)
			}
			graphs[ms.cell.Graph] = nil
			continue
		}
		graphs[ms.cell.Graph] = g
		bt.releases = append(bt.releases, release)
	}
	if logger != nil {
		logger.Info("batch_resumed",
			"batch", bt.id,
			"trace", bt.traceID,
			"restored", bt.terminal,
			"pending", pending)
	}
	b.submittedCount.Add(1)
	go b.feed(bt, graphs)
}

// Close drains the ledger writer, writes a final snapshot and closes the
// WAL. Engines built without a WALDir close trivially. In-flight feeders may
// still enqueue afterwards; those records land in the next boot's re-run of
// the affected cells.
func (b *Batches) Close() error {
	ld := b.ledger
	if ld == nil {
		return nil
	}
	if ld.closed.CompareAndSwap(false, true) {
		close(ld.quit)
	}
	<-ld.done
	snapErr := ld.snapshot(b)
	closeErr := ld.log.Close()
	if snapErr != nil && !errors.Is(snapErr, wal.ErrCrashed) {
		return snapErr
	}
	return closeErr
}
