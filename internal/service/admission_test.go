package service

import (
	"testing"
	"time"
)

// drainOrder pops every queued job synchronously (the backlog is fully
// admitted, so no pop blocks) and returns the tenants in dispatch order,
// releasing each running slot immediately so caps never stall the scan.
func drainOrder(t *testing.T, fq *fairQueue, n int) []string {
	t.Helper()
	order := make([]string, 0, n)
	for i := 0; i < n; i++ {
		jb, ok := fq.pop()
		if !ok {
			t.Fatalf("pop %d: queue stopped with backlog remaining", i)
		}
		order = append(order, jb.tenant)
		fq.release(jb.tenant)
	}
	return order
}

// TestFairQueueInterleavesTenants is the DRR core property: with equal
// weights, a tenant with one job is served on the first round-robin pass,
// not behind another tenant's entire backlog.
func TestFairQueueInterleavesTenants(t *testing.T) {
	fq := newFairQueue(64, nil)
	for i := 0; i < 6; i++ {
		if err := fq.push(&job{tenant: "big"}); err != nil {
			t.Fatal(err)
		}
	}
	if err := fq.push(&job{tenant: "small"}); err != nil {
		t.Fatal(err)
	}
	order := drainOrder(t, fq, 7)
	pos := -1
	for i, tn := range order {
		if tn == "small" {
			pos = i
			break
		}
	}
	if pos < 0 || pos > 1 {
		t.Fatalf("small tenant served at position %d of %v, want within the first round", pos, order)
	}
}

// TestFairQueueWeights verifies the quantum: weight 3 vs weight 1 serves
// three of a's jobs per visit to one of b's.
func TestFairQueueWeights(t *testing.T) {
	weights := map[string]TenantLimits{
		"a": {Weight: 3},
		"b": {Weight: 1},
	}
	fq := newFairQueue(64, func(id string) TenantLimits { return weights[id] })
	for i := 0; i < 6; i++ {
		if err := fq.push(&job{tenant: "a"}); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 2; i++ {
		if err := fq.push(&job{tenant: "b"}); err != nil {
			t.Fatal(err)
		}
	}
	got := drainOrder(t, fq, 8)
	want := []string{"a", "a", "a", "b", "a", "a", "a", "b"}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("dispatch order %v, want %v", got, want)
		}
	}
}

// TestFairQueuePerTenantBounds pins the backpressure split: one tenant
// hitting its queue bound gets ErrQueueFull while another tenant still
// admits, and a MaxRunning cap parks dispatch until a slot releases.
func TestFairQueuePerTenantBounds(t *testing.T) {
	limits := map[string]TenantLimits{
		"capped": {QueueSize: 2, MaxRunning: 1},
	}
	fq := newFairQueue(64, func(id string) TenantLimits { return limits[id] })
	for i := 0; i < 2; i++ {
		if err := fq.push(&job{tenant: "capped"}); err != nil {
			t.Fatal(err)
		}
	}
	if err := fq.push(&job{tenant: "capped"}); err != ErrQueueFull {
		t.Fatalf("third push: %v, want ErrQueueFull", err)
	}
	if err := fq.push(&job{tenant: "other"}); err != nil {
		t.Fatalf("other tenant rejected alongside capped one: %v", err)
	}

	// Occupy capped's single running slot; the next pop must serve the
	// other tenant, skipping capped's backlog.
	jb, ok := fq.pop()
	if !ok || jb.tenant != "capped" {
		t.Fatalf("first pop %v/%v", jb, ok)
	}
	jb2, ok := fq.pop()
	if !ok || jb2.tenant != "other" {
		t.Fatalf("pop with capped at MaxRunning served %q, want other", jb2.tenant)
	}
	fq.release("other")

	// With only capped backlog left and its slot still held, pop parks until
	// release.
	popped := make(chan string, 1)
	go func() {
		jb, ok := fq.pop()
		if ok {
			popped <- jb.tenant
		}
	}()
	select {
	case tn := <-popped:
		t.Fatalf("pop dispatched %q past the MaxRunning cap", tn)
	case <-time.After(50 * time.Millisecond):
	}
	fq.release("capped")
	select {
	case tn := <-popped:
		if tn != "capped" {
			t.Fatalf("released pop served %q", tn)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("pop never woke after release")
	}
	fq.release("capped")
}

// TestFairQueueCloseVsAbort pins the two stop modes: close lets the backlog
// drain, abort abandons it (the Drain path — un-run jobs are re-run from the
// WAL on restart).
func TestFairQueueCloseVsAbort(t *testing.T) {
	fq := newFairQueue(64, nil)
	for i := 0; i < 3; i++ {
		if err := fq.push(&job{tenant: "t"}); err != nil {
			t.Fatal(err)
		}
	}
	fq.close()
	if err := fq.push(&job{tenant: "t"}); err != ErrClosed {
		t.Fatalf("push after close: %v, want ErrClosed", err)
	}
	for i := 0; i < 3; i++ {
		if _, ok := fq.pop(); !ok {
			t.Fatalf("pop %d after close: queue stopped before draining", i)
		}
		fq.release("t")
	}
	if _, ok := fq.pop(); ok {
		t.Fatal("pop past the drained backlog")
	}

	fq2 := newFairQueue(64, nil)
	for i := 0; i < 3; i++ {
		if err := fq2.push(&job{tenant: "t"}); err != nil {
			t.Fatal(err)
		}
	}
	fq2.abort()
	if _, ok := fq2.pop(); ok {
		t.Fatal("pop returned a job after abort")
	}
}
