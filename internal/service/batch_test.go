package service

import (
	"errors"
	"testing"
	"time"

	"repro/internal/registry"
	"repro/internal/store"
)

func newBatchFixture(t *testing.T, cfg Config, bcfg BatchConfig) (*Batches, *Service, *store.Store) {
	t.Helper()
	svc := New(cfg)
	st := store.New(store.Config{})
	t.Cleanup(svc.Close)
	return NewBatches(svc, st, bcfg), svc, st
}

func putGNP(t *testing.T, st *store.Store, name string, n int, seed uint64) {
	t.Helper()
	_, _, err := st.Put(name, store.Source{
		Gen:       "gnp",
		GenParams: registry.GenParams{N: n, P: 0.2, Seed: seed, MaxW: 32},
	})
	if err != nil {
		t.Fatal(err)
	}
}

func waitBatch(t *testing.T, b *Batches, id string) BatchView {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for time.Now().Before(deadline) {
		v, ok := b.Wait(id, 100*time.Millisecond)
		if !ok {
			t.Fatalf("batch %s disappeared", id)
		}
		if v.State.Terminal() {
			return v
		}
	}
	t.Fatalf("batch %s never finished", id)
	return BatchView{}
}

func TestExpandGrid(t *testing.T) {
	sp := BatchSpec{
		Graphs: []string{"a", "b"},
		Algos:  []string{"mwm2", "fastmcm"},
		Eps:    []float64{0.5, 1},
		Seeds:  []uint64{1, 2, 3},
	}
	cells, err := sp.Expand()
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != 2*2*2*3 {
		t.Fatalf("expanded %d cells, want 24", len(cells))
	}
	// Graph-major, seed-minor order.
	if cells[0].Graph != "a" || cells[0].Algo != "mwm2" || cells[0].Params.Seed != 1 {
		t.Fatalf("first cell %+v", cells[0])
	}
	if cells[1].Params.Seed != 2 {
		t.Fatalf("second cell %+v", cells[1])
	}

	if _, err := (BatchSpec{}).Expand(); err == nil {
		t.Fatal("empty spec accepted")
	}
	if _, err := (BatchSpec{Graphs: []string{"a"}}).Expand(); err == nil {
		t.Fatal("spec without algos accepted")
	}
	both := BatchSpec{Graphs: []string{"a"}, Cells: []BatchCell{{Graph: "a", Algo: "mwm2"}}}
	if _, err := both.Expand(); err == nil {
		t.Fatal("cells + grid axes accepted")
	}
}

func TestBatchRunsGridAndAggregates(t *testing.T) {
	b, _, st := newBatchFixture(t, Config{Workers: 4}, BatchConfig{})
	putGNP(t, st, "g", 24, 7)

	v, err := b.Submit(BatchSpec{
		Graphs: []string{"g"},
		Algos:  []string{"mwm2", "maxis"},
		Seeds:  []uint64{1, 2, 3},
	})
	if err != nil {
		t.Fatal(err)
	}
	if v.Total != 6 {
		t.Fatalf("total %d, want 6", v.Total)
	}
	fin := waitBatch(t, b, v.ID)
	if fin.State != BatchDone || fin.Done != 6 || fin.Failed != 0 {
		t.Fatalf("final view %+v", fin)
	}
	if len(fin.Groups) != 2 {
		t.Fatalf("%d groups, want 2 (one per algo)", len(fin.Groups))
	}
	for _, g := range fin.Groups {
		if g.Runs != 3 || g.Done != 3 {
			t.Fatalf("group %+v", g)
		}
		if g.Rounds.N != 3 || g.Weight.Mean <= 0 {
			t.Fatalf("group stats %+v", g)
		}
		if g.Params.Seed != 0 {
			t.Fatalf("group params retain a seed: %+v", g.Params)
		}
	}
	// Each cell carries its member job's result.
	for _, c := range fin.Cells {
		if c.State != Done || c.Result == nil || c.JobID == "" {
			t.Fatalf("cell %+v", c)
		}
	}

	// The graph was pinned during the run and is free again now.
	if err := st.Delete("g"); err != nil {
		t.Fatalf("delete after batch: %v", err)
	}
}

func TestBatchPinsGraphUntilDone(t *testing.T) {
	b, _, st := newBatchFixture(t, Config{Workers: 1}, BatchConfig{})
	putGNP(t, st, "pinned", 600, 3)

	v, err := b.Submit(BatchSpec{
		Graphs: []string{"pinned"},
		Algos:  []string{"maxis"},
		Seeds:  []uint64{1, 2, 3, 4},
	})
	if err != nil {
		t.Fatal(err)
	}
	// While the batch runs, the store must refuse deletion.
	if err := st.Delete("pinned"); !errors.Is(err, store.ErrPinned) {
		t.Fatalf("delete during batch: %v", err)
	}
	waitBatch(t, b, v.ID)
	if err := st.Delete("pinned"); err != nil {
		t.Fatalf("delete after batch: %v", err)
	}
}

func TestBatchCacheAccounting(t *testing.T) {
	b, svc, st := newBatchFixture(t, Config{Workers: 2}, BatchConfig{})
	putGNP(t, st, "g", 20, 5)

	sp := BatchSpec{Graphs: []string{"g"}, Algos: []string{"mwm2"}, Seeds: []uint64{1, 2}}
	v1, err := b.Submit(sp)
	if err != nil {
		t.Fatal(err)
	}
	waitBatch(t, b, v1.ID)
	// Identical batch: every member is a cache hit.
	v2, err := b.Submit(sp)
	if err != nil {
		t.Fatal(err)
	}
	fin := waitBatch(t, b, v2.ID)
	if fin.CacheHits != 2 {
		t.Fatalf("cache hits %d, want 2", fin.CacheHits)
	}

	m := svc.Metrics()
	if m.BatchMembers != 4 {
		t.Fatalf("batch members %d, want 4", m.BatchMembers)
	}
	if m.BatchCacheHits != 2 || m.BatchCacheMisses != 2 {
		t.Fatalf("batch cache hits/misses %d/%d, want 2/2", m.BatchCacheHits, m.BatchCacheMisses)
	}
	// Single-job counters untouched by batch traffic.
	if m.CacheHits != 0 || m.CacheMisses != 0 {
		t.Fatalf("single-job cache counters %d/%d, want 0/0", m.CacheHits, m.CacheMisses)
	}
	bm := b.Metrics()
	if bm.BatchesSubmitted != 2 || bm.BatchesDone != 2 || bm.BatchCells != 4 {
		t.Fatalf("engine metrics %+v", bm)
	}
}

func TestBatchCancelFanOut(t *testing.T) {
	// One worker and slow members: cancel must reach queued members and
	// unsubmitted cells.
	b, _, st := newBatchFixture(t, Config{Workers: 1, QueueSize: 4}, BatchConfig{})
	putGNP(t, st, "slow", 1200, 11)

	seeds := make([]uint64, 12)
	for i := range seeds {
		seeds[i] = uint64(i + 1)
	}
	v, err := b.Submit(BatchSpec{Graphs: []string{"slow"}, Algos: []string{"maxis"}, Seeds: seeds})
	if err != nil {
		t.Fatal(err)
	}
	cv, err := b.Cancel(v.ID)
	if err != nil {
		t.Fatal(err)
	}
	if cv.State.Terminal() && cv.State != BatchCanceled {
		t.Fatalf("state after cancel: %s", cv.State)
	}
	fin := waitBatch(t, b, v.ID)
	if fin.State != BatchCanceled {
		t.Fatalf("final state %s, want canceled", fin.State)
	}
	if fin.Canceled == 0 {
		t.Fatal("no members were canceled")
	}
	if fin.Done+fin.Failed+fin.Canceled != fin.Total {
		t.Fatalf("terminal accounting off: %+v", fin)
	}
	// Cancel of a finished batch conflicts; the pin is gone.
	if _, err := b.Cancel(v.ID); !errors.Is(err, ErrBatchFinished) {
		t.Fatalf("re-cancel: %v", err)
	}
	if err := st.Delete("slow"); err != nil {
		t.Fatalf("delete after canceled batch: %v", err)
	}
}

func TestBatchCancelWhileQueueSaturated(t *testing.T) {
	// One worker, one queue slot, both occupied by slow single jobs: the
	// batch feeder spins on ErrQueueFull. Cancel must still terminate the
	// batch (and release its pin) without waiting for the queue to drain.
	b, svc, st := newBatchFixture(t, Config{Workers: 1, QueueSize: 1}, BatchConfig{})
	started, release := registerBlocker(t, "park-satq")
	t.Cleanup(func() { close(release) }) // after the fixture: runs before svc.Close
	putGNP(t, st, "g", 16, 1)

	if _, err := svc.Submit(Request{Algo: "park-satq", Graph: smallGraph(1)}); err != nil {
		t.Fatal(err)
	}
	<-started // the worker is parked in the first blocker...
	if _, err := svc.Submit(Request{Algo: "park-satq", Graph: smallGraph(2)}); err != nil {
		t.Fatal(err) // ...and the second owns the lone queue slot
	}

	v, err := b.Submit(BatchSpec{Graphs: []string{"g"}, Algos: []string{"mwm2"}, Seeds: []uint64{1, 2, 3}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := b.Cancel(v.ID); err != nil {
		t.Fatal(err)
	}
	fin := waitBatch(t, b, v.ID)
	if fin.State != BatchCanceled {
		t.Fatalf("state %s, want canceled", fin.State)
	}
	if err := st.Delete("g"); err != nil {
		t.Fatalf("pin survived canceled batch: %v", err)
	}
}

func TestBatchValidation(t *testing.T) {
	b, _, st := newBatchFixture(t, Config{Workers: 1}, BatchConfig{MaxCells: 4})
	putGNP(t, st, "g", 16, 1)

	if _, err := b.Submit(BatchSpec{Graphs: []string{"nope"}, Algos: []string{"mwm2"}}); !errors.Is(err, store.ErrNotFound) {
		t.Fatalf("unknown graph: %v", err)
	}
	if _, err := b.Submit(BatchSpec{Graphs: []string{"g"}, Algos: []string{"quantum"}}); err == nil {
		t.Fatal("unknown algo accepted")
	}
	if _, err := b.Submit(BatchSpec{
		Graphs: []string{"g"}, Algos: []string{"fastmcm"}, Eps: []float64{-1},
	}); err == nil {
		t.Fatal("invalid eps accepted")
	}
	if _, err := b.Submit(BatchSpec{
		Graphs: []string{"g"}, Algos: []string{"mwm2"}, Seeds: []uint64{1, 2, 3, 4, 5},
	}); !errors.Is(err, ErrBatchTooLarge) {
		t.Fatalf("oversized batch: %v", err)
	}
	// Validation failures must leave no pins behind.
	if err := st.Delete("g"); err != nil {
		t.Fatalf("delete after rejected batches: %v", err)
	}

	if _, ok := b.Get("b999999"); ok {
		t.Fatal("Get of unknown batch succeeded")
	}
	if _, err := b.Cancel("b999999"); !errors.Is(err, ErrBatchNotFound) {
		t.Fatalf("cancel of unknown batch: %v", err)
	}
}

func TestBatchExplicitCellsAndList(t *testing.T) {
	b, _, st := newBatchFixture(t, Config{Workers: 2}, BatchConfig{})
	putGNP(t, st, "g1", 16, 1)
	putGNP(t, st, "g2", 18, 2)

	v, err := b.Submit(BatchSpec{Cells: []BatchCell{
		{Graph: "g1", Algo: "mwm2", Params: registry.Params{Seed: 1}},
		{Graph: "g2", Algo: "maxis", Params: registry.Params{Seed: 2}},
		{Graph: "g1", Algo: "nmis", Params: registry.Params{Seed: 3, Delta: 0.2}},
	}})
	if err != nil {
		t.Fatal(err)
	}
	fin := waitBatch(t, b, v.ID)
	if fin.Done != 3 {
		t.Fatalf("done %d, want 3: %+v", fin.Done, fin)
	}
	if len(fin.Groups) != 3 {
		t.Fatalf("%d groups, want 3", len(fin.Groups))
	}

	ls := b.List()
	if len(ls) != 1 || ls[0].ID != v.ID || ls[0].Cells != nil {
		t.Fatalf("list %+v", ls)
	}
}
