package agg

import "math"

// Specialized aggregate folding. The runtimes spend almost all their time
// folding one query over the Data of up to ∆ neighbors; going through the
// Aggregate interface costs an indirect call per neighbor per query. Every
// aggregate the package exports is one of six concrete ops, so the hot loops
// resolve the op once per query and run a branch-free specialized loop; an
// unknown (caller-supplied) Aggregate falls back to the generic path.

type aggOp uint8

const (
	opSum aggOp = iota
	opMin
	opMax
	opAnd
	opOr
	opBitOr
	opGeneric
)

func opOf(a Aggregate) aggOp {
	switch a {
	case Sum:
		return opSum
	case Min:
		return opMin
	case Max:
		return opMax
	case And:
		return opAnd
	case Or:
		return opOr
	case BitOr:
		return opBitOr
	default:
		return opGeneric
	}
}

// foldExcept evaluates q over data, skipping index skip (pass -1 to fold
// everything). Evaluation order is ascending index, matching Query.Eval, and
// every element is projected exactly once — projections are pure by contract,
// but the runtimes still avoid observable short-circuit differences.
func foldExcept(q *Query, data []Data, skip int) int64 {
	switch opOf(q.Agg) {
	case opSum:
		var acc int64
		for j := range data {
			if j == skip {
				continue
			}
			acc += q.Proj(data[j])
		}
		return acc
	case opMin:
		acc := int64(math.MaxInt64)
		for j := range data {
			if j == skip {
				continue
			}
			if v := q.Proj(data[j]); v < acc {
				acc = v
			}
		}
		return acc
	case opMax:
		acc := int64(math.MinInt64)
		for j := range data {
			if j == skip {
				continue
			}
			if v := q.Proj(data[j]); v > acc {
				acc = v
			}
		}
		return acc
	case opAnd:
		acc := int64(1)
		for j := range data {
			if j == skip {
				continue
			}
			if q.Proj(data[j]) == 0 {
				acc = 0
			}
		}
		return acc
	case opOr:
		var acc int64
		for j := range data {
			if j == skip {
				continue
			}
			if q.Proj(data[j]) != 0 {
				acc = 1
			}
		}
		return acc
	case opBitOr:
		var acc int64
		for j := range data {
			if j == skip {
				continue
			}
			acc |= q.Proj(data[j])
		}
		return acc
	default:
		acc := q.Agg.Identity()
		for j := range data {
			if j == skip {
				continue
			}
			acc = q.Agg.Join(acc, q.Proj(data[j]))
		}
		return acc
	}
}
