package agg

import "unsafe"

// Exchange folding (the suffix-sum trick of [LPSR09]): a node simulating d
// edges evaluates each state's queries over the data of its d-1 other live
// states — O(d²·q) projection calls per round if done directly. But most
// query plans are shared: the paper's machines precompute them once (often at
// package level), so many states of one node ask the *same* (Agg, Proj)
// query over the same live-data list, each excluding only itself. For such a
// query the node builds prefix and suffix folds once —
//
//	pre[i] = f(liveData[0..i))    suf[i] = f(liveData[i..d))
//
// — and answers every state's "all except me" partial as
// φ(pre[i], suf[i+1]) in O(1), which is exact for any joining function φ
// (Definition 2.5 demands associativity and commutativity). Queries are
// identified by aggregate identity plus the Proj closure's funcval pointer:
// two func values behave identically if they are the same closure object,
// which precomputed plans guarantee.
//
// The memo is promotion-based so singleton queries (per-instance closures
// like Luby's, asked once per node) never pay the 2× build cost: the first
// sighting folds directly and records the key; only a second sighting builds
// the prefix/suffix entry. Entries and keys are capped, and everything is
// reused across rounds, so the memo allocates only while growing to steady
// state.

const (
	memoPlanCap = 8  // max prefix/suffix entries per node per round
	memoSeenCap = 16 // max once-seen keys tracked per node per round
)

// projID returns the Proj closure's funcval pointer, the identity under
// which query plans are shared.
func projID(f func(Data) int64) uintptr {
	return uintptr(*(*unsafe.Pointer)(unsafe.Pointer(&f)))
}

// planKey identifies a query: the Proj closure pointer plus the aggregate.
// Scans compare the pointer first — it almost always decides — so the
// aggregate interface comparison (a runtime call) runs at most once per
// lookup, and the opcode is resolved only when an entry is built.
type planKey struct {
	agg  Aggregate
	proj uintptr
}

func (k planKey) matches(o planKey) bool {
	return k.proj == o.proj && k.agg == o.agg
}

type partialPlan struct {
	key planKey
	op  aggOp
	pre []int64 // len(liveData)+1 each, reused across rounds
	suf []int64
}

// foldMemo is one node's per-round exchange-folding state. hits/misses are
// run-lifetime telemetry counters (a hit answers from an existing
// prefix/suffix entry in O(1); a miss builds an entry or folds directly);
// they live here — in the per-node state that is already arena-allocated —
// so counting costs one increment and no allocation or sharing.
type foldMemo struct {
	plans  []partialPlan
	nplan  int
	seen   []planKey
	hits   uint64
	misses uint64
}

// reset invalidates the memo for a new virtual round (the live-data list or
// the underlying Data values changed). Entry buffers stay allocated.
func (m *foldMemo) reset() {
	m.nplan = 0
	m.seen = m.seen[:0]
}

func opIdentity(op aggOp, agg Aggregate) int64 {
	switch op {
	case opSum, opOr, opBitOr:
		return 0
	case opMin:
		return Min.Identity()
	case opMax:
		return Max.Identity()
	case opAnd:
		return 1
	default:
		return agg.Identity()
	}
}

func opJoin(op aggOp, agg Aggregate, a, b int64) int64 {
	switch op {
	case opSum:
		return a + b
	case opMin:
		if a < b {
			return a
		}
		return b
	case opMax:
		if a > b {
			return a
		}
		return b
	case opAnd:
		if a != 0 && b != 0 {
			return 1
		}
		return 0
	case opOr:
		if a != 0 || b != 0 {
			return 1
		}
		return 0
	case opBitOr:
		return a | b
	default:
		return agg.Join(a, b)
	}
}

// build fills the prefix/suffix folds of q over data, projecting each
// element exactly twice with the join specialized outside the loops.
func (p *partialPlan) build(q *Query, data []Data) {
	n := len(data)
	if cap(p.pre) < n+1 {
		p.pre = make([]int64, n+1)
	}
	if cap(p.suf) < n+1 {
		p.suf = make([]int64, n+1)
	}
	p.pre = p.pre[:n+1]
	p.suf = p.suf[:n+1]
	id := opIdentity(p.op, p.key.agg)
	p.pre[0] = id
	p.suf[n] = id
	switch p.op {
	case opSum:
		for j := 0; j < n; j++ {
			p.pre[j+1] = p.pre[j] + q.Proj(data[j])
		}
		for j := n - 1; j >= 0; j-- {
			p.suf[j] = q.Proj(data[j]) + p.suf[j+1]
		}
	case opMin:
		for j := 0; j < n; j++ {
			if v := q.Proj(data[j]); v < p.pre[j] {
				p.pre[j+1] = v
			} else {
				p.pre[j+1] = p.pre[j]
			}
		}
		for j := n - 1; j >= 0; j-- {
			if v := q.Proj(data[j]); v < p.suf[j+1] {
				p.suf[j] = v
			} else {
				p.suf[j] = p.suf[j+1]
			}
		}
	case opMax:
		for j := 0; j < n; j++ {
			if v := q.Proj(data[j]); v > p.pre[j] {
				p.pre[j+1] = v
			} else {
				p.pre[j+1] = p.pre[j]
			}
		}
		for j := n - 1; j >= 0; j-- {
			if v := q.Proj(data[j]); v > p.suf[j+1] {
				p.suf[j] = v
			} else {
				p.suf[j] = p.suf[j+1]
			}
		}
	case opBitOr:
		for j := 0; j < n; j++ {
			p.pre[j+1] = p.pre[j] | q.Proj(data[j])
		}
		for j := n - 1; j >= 0; j-- {
			p.suf[j] = q.Proj(data[j]) | p.suf[j+1]
		}
	default: // opAnd, opOr, opGeneric
		for j := 0; j < n; j++ {
			p.pre[j+1] = opJoin(p.op, p.key.agg, p.pre[j], q.Proj(data[j]))
		}
		for j := n - 1; j >= 0; j-- {
			p.suf[j] = opJoin(p.op, p.key.agg, q.Proj(data[j]), p.suf[j+1])
		}
	}
}

// partial returns q folded over data excluding index skip, memoizing
// prefix/suffix folds for queries seen more than once this round. Key scans
// compare the closure pointer before the aggregate: the pointer almost
// always decides, and comparing interfaces costs a runtime call.
func (m *foldMemo) partial(q *Query, data []Data, skip int) int64 {
	key := planKey{agg: q.Agg, proj: projID(q.Proj)}
	for k := 0; k < m.nplan; k++ {
		p := &m.plans[k]
		if p.key.matches(key) {
			m.hits++
			return opJoin(p.op, key.agg, p.pre[skip], p.suf[skip+1])
		}
	}
	m.misses++
	for k := range m.seen {
		if !m.seen[k].matches(key) {
			continue
		}
		if m.nplan >= memoPlanCap {
			return foldExcept(q, data, skip)
		}
		// Second sighting: promote to a prefix/suffix entry.
		m.seen[k] = m.seen[len(m.seen)-1]
		m.seen = m.seen[:len(m.seen)-1]
		if m.nplan == len(m.plans) {
			m.plans = append(m.plans, partialPlan{})
		}
		p := &m.plans[m.nplan]
		m.nplan++
		p.key = key
		p.op = opOf(q.Agg)
		p.build(q, data)
		return opJoin(p.op, key.agg, p.pre[skip], p.suf[skip+1])
	}
	if len(m.seen) < memoSeenCap {
		m.seen = append(m.seen, key)
	}
	return foldExcept(q, data, skip)
}
