// Package agg implements the paper's "local aggregation algorithm" framework
// (§2.4, Definitions 2.4–2.7) and the congestion-free line-graph simulation
// of Theorem 2.8.
//
// A local aggregation algorithm accesses its neighborhood's data only through
// order-invariant aggregate functions that admit a joining function φ with
// f(X) = φ(f(X₁), f(X₂)) for any disjoint partition X₁ ∪ X₂ of the inputs
// (Definition 2.5). Algorithms are expressed as Machines: per (virtual) node
// state machines that publish O(log n)-bit Data each round and consume the
// results of aggregate Queries over their live neighbors' Data.
//
// Three runtimes execute a Machine:
//
//   - RunDirect: on the graph itself — one real round per virtual round, one
//     message per edge per round (each node broadcasts its Data).
//   - RunLine: on the line graph L(G) — Theorem 2.8's simulation. Each edge
//     e = {u, v} of G is a virtual node simulated by its primary endpoint
//     min(u, v); the secondary endpoint max(u, v) mirrors e's Data. Because
//     every edge e' ∈ N_{L(G)}(e) shares an endpoint with e, each endpoint
//     can compute the partial aggregate over its own side, and the joining
//     function combines the halves — two real rounds and exactly one message
//     per edge per round, independent of ∆.
//   - RunLineNaive: the naive simulation the paper warns about, which relays
//     every incident edge's data individually and pays a Θ(∆) round factor;
//     kept as the ablation baseline (experiment E8).
//
// # Arena runtime
//
// All three runtimes are allocation-free in steady state, mirroring the round
// engine one layer up (DESIGN.md §2c). Per-virtual-node Data vectors, the
// message payloads, and the per-edge simulation states live in flat []int64 /
// struct arenas sized once from the graph's CSR layout and reused across
// rounds; messages are pooled concrete types whose payloads view into those
// arenas. The contract this imposes on Machines:
//
//   - Init fills a caller-provided Data vector of exactly Fields() elements
//     (an arena view) instead of allocating one.
//   - Queries appends to a caller-provided buffer and returns it. Because
//     Queries must be pure in (info, t, data) anyway, machines precompute
//     their query plans — including every Proj closure — once at construction
//     and append plan slices, so the per-round cost is a memcpy of Query
//     headers, never a closure allocation.
//   - Update may retain no slice it is handed: data and results are arena
//     views that the runtime reuses the next round.
//
// Layer (DESIGN.md §2): agg sits directly above the internal/simul round
// engine and below the algorithm packages (core, mis, nmis, coloring) that
// express themselves as Machines.
//
// Concurrency and ownership: a runtime invocation (RunDirect/RunLine/
// RunLineNaive) is driven from one goroutine; any internal parallelism
// belongs to the simul engine underneath, whose sharding guarantees each
// Machine is stepped by exactly one worker per round. Machines are owned by
// their run — a Machine instance that keeps all per-node state in its Data
// arena view may be shared across virtual nodes, otherwise the build
// function must return a fresh instance per node. Result values are
// immutable once returned.
package agg

import (
	"fmt"
	"math"

	"repro/internal/rng"
	"repro/internal/simul"
)

// Data is the published per-node data D_{v,i} (Definition 2.7): a small tuple
// of integer fields. Implementations must keep it O(log n + log W) bits; the
// runtimes meter the actual encoded size against the CONGEST budget.
type Data []int64

// Clone returns a copy of d.
func (d Data) Clone() Data {
	c := make(Data, len(d))
	copy(c, d)
	return c
}

// Bits returns the number of bits needed to encode d: for each field a sign
// bit plus its magnitude.
func (d Data) Bits() int {
	b := 0
	for _, f := range d {
		mag := f
		if mag < 0 {
			mag = -mag
		}
		b += 1 + simul.BitsForRange(mag)
	}
	return b
}

// Aggregate is an order-invariant function with a joining function
// (Definitions 2.4–2.5). Join must be associative and commutative with
// Identity as neutral element, which makes any evaluation order — and any
// disjoint partition of the inputs — produce the same result.
type Aggregate interface {
	Name() string
	Identity() int64
	Join(a, b int64) int64
}

type sumAgg struct{}

func (sumAgg) Name() string          { return "sum" }
func (sumAgg) Identity() int64       { return 0 }
func (sumAgg) Join(a, b int64) int64 { return a + b }

type minAgg struct{}

func (minAgg) Name() string    { return "min" }
func (minAgg) Identity() int64 { return math.MaxInt64 }
func (minAgg) Join(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

type maxAgg struct{}

func (maxAgg) Name() string    { return "max" }
func (maxAgg) Identity() int64 { return math.MinInt64 }
func (maxAgg) Join(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

type andAgg struct{}

func (andAgg) Name() string    { return "and" }
func (andAgg) Identity() int64 { return 1 }
func (andAgg) Join(a, b int64) int64 {
	if a != 0 && b != 0 {
		return 1
	}
	return 0
}

type orAgg struct{}

func (orAgg) Name() string    { return "or" }
func (orAgg) Identity() int64 { return 0 }
func (orAgg) Join(a, b int64) int64 {
	if a != 0 || b != 0 {
		return 1
	}
	return 0
}

type bitOrAgg struct{}

func (bitOrAgg) Name() string          { return "bitor" }
func (bitOrAgg) Identity() int64       { return 0 }
func (bitOrAgg) Join(a, b int64) int64 { return a | b }

// The aggregate functions used by the paper's algorithms. "and"/"or" are the
// Boolean aggregates of Observation 2.6; Sum is the weight-update aggregate
// from the proof of Theorem 2.9; Min/Max implement priority comparisons.
var (
	Sum Aggregate = sumAgg{}
	Min Aggregate = minAgg{}
	Max Aggregate = maxAgg{}
	And Aggregate = andAgg{}
	Or  Aggregate = orAgg{}
	// BitOr unions small bitmasks (≤ 63 bits per chunk); used by the coloring
	// machines to learn which palette colors the neighborhood occupies.
	BitOr Aggregate = bitOrAgg{}
)

// Query asks for Agg over Proj(D_u) for every live neighbor u. Proj must be a
// pure function of the neighbor's Data (it is evaluated independently at both
// endpoints in the line-graph runtime). Construct Query values once, in a
// machine's precomputed query plan — allocating Proj closures per round is
// what the arena runtime exists to avoid.
type Query struct {
	Agg  Aggregate
	Proj func(Data) int64
}

// Eval evaluates q over the given neighbor data set.
func (q Query) Eval(neighbors []Data) int64 {
	acc := q.Agg.Identity()
	for _, d := range neighbors {
		acc = q.Agg.Join(acc, q.Proj(d))
	}
	return acc
}

// NodeInfo describes a virtual node to its Machine.
type NodeInfo struct {
	// ID is the virtual node's identifier: the node ID under RunDirect, the
	// edge ID under RunLine.
	ID int
	// N is the number of virtual nodes.
	N int
	// Degree is the virtual node's degree (deg_G(v), or deg_{L(G)}(e) =
	// deg(u)+deg(v)-2 under RunLine).
	Degree int
	// Weight is the virtual node's weight: w(v) under RunDirect, the edge
	// weight under RunLine (the node weight of L(G), §2.4).
	Weight int64
	// Rand is the virtual node's private randomness. Only Init and Update
	// may draw from it; Queries must be pure.
	Rand *rng.Stream
}

// Machine is a local aggregation algorithm for one virtual node.
//
// Protocol, in virtual rounds t = 0, 1, …:
//
//	Init(info, data₀)                             // fills the zeroed data₀
//	results_t = [q.Eval over live neighbors' data_t) for q in Queries(t, data_t)]
//	halt, output = Update(t, data_t, results_t)   // mutates data in place → data_{t+1}
//
// A machine that halts at Update(t) disappears from its neighbors'
// aggregations from round t+1 on; its final visible data is data_t. To
// announce a decision before leaving (the paper's addedToIS/removed
// messages), publish the decision in data at round t and halt at round t+1.
//
// Init fills the caller-provided data vector, which has exactly Fields()
// elements and is zeroed; the vector is an arena view owned by the runtime.
//
// Queries appends this round's queries to qs and returns the extended slice.
// It must depend only on (info, t, data) — never on private state or
// info.Rand — because the line-graph runtime re-evaluates it at the secondary
// endpoint. Machines precompute their query plans (see the package comment)
// and must append into qs rather than return internal slices, so the
// runtime's buffer is what grows to steady state.
//
// A machine that keeps all per-node state in the Data vector (every machine
// in this repository does) may be shared across virtual nodes: build may
// return the same instance for every node. Sharing makes the instance's
// precomputed query plans shared too, which lets the line runtime answer the
// "every live edge except me" partials of a whole real node from one
// prefix/suffix fold per query (the [LPSR09] exchange-folding trick; see
// memo.go) instead of one O(∆) fold per simulated edge. Shared machines must
// be safe for concurrent method calls — stateless machines are.
type Machine interface {
	Fields() int
	Init(info *NodeInfo, data Data)
	Queries(info *NodeInfo, t int, data Data, qs []Query) []Query
	Update(info *NodeInfo, t int, data Data, results []int64) (halt bool, output any)
}

// MemoStats totals the exchange-folding memo's lookups over a run: a hit is
// a partial answered in O(1) from an existing prefix/suffix entry, a miss is
// an entry build or a direct fold. Zero for runtimes without a memo
// (RunDirect, RunLineNaive).
type MemoStats struct {
	Hits   uint64
	Misses uint64
}

// Add folds o into s.
func (s *MemoStats) Add(o MemoStats) {
	s.Hits += o.Hits
	s.Misses += o.Misses
}

// Result is the outcome of running a Machine under one of the runtimes.
type Result struct {
	// Outputs[i] is virtual node i's Halt output.
	Outputs []any
	// VirtualRounds is the number of Machine rounds executed (the paper's
	// round complexity); Metrics.Rounds counts real network rounds.
	VirtualRounds int
	Metrics       simul.Metrics
	// Memo totals the exchange-folding memo's hit/miss counts (RunLine
	// only).
	Memo MemoStats
}

// validateFields rejects machines whose Fields() cannot size an arena slot.
// (A machine can no longer publish a wrong-length Data vector: Init fills a
// runtime-owned view of exactly Fields() elements.)
func validateFields(id int, fields int) error {
	if fields < 0 {
		return fmt.Errorf("agg: virtual node %d declared %d data fields", id, fields)
	}
	return nil
}
