package agg

import (
	"fmt"

	"repro/internal/graph"
	"repro/internal/rng"
	"repro/internal/simul"
)

// directNode adapts a Machine to a simul.Automaton running on the graph
// itself: each round the node broadcasts its Data and evaluates its queries
// over the Data received from live neighbors.
//
// The node owns no per-round allocations: data and the two broadcast
// snapshots are views into a run-wide arena, the broadcast messages are a
// double-buffered pair (the copy delivered for round r+1 is read while the
// copy for round r+2 is written), and the query/result buffers grow to a
// steady size during the first rounds and are reused thereafter.
type directNode struct {
	m    Machine
	info *NodeInfo
	data Data
	msgs [2]dataMsg // round-parity double buffer; fields are arena views
	qbuf []Query
	rbuf []int64
	nbuf []Data // live neighbors' data for the round, for branch-free folds
}

func (a *directNode) broadcast(ctx *simul.Context) {
	m := &a.msgs[ctx.Round()&1]
	copy(m.fields, a.data)
	ctx.Broadcast(m)
}

func (a *directNode) Step(ctx *simul.Context, inbox []simul.Envelope) {
	if ctx.Round() == 0 {
		a.broadcast(ctx)
		return
	}
	// The virtual round whose queries we are resolving.
	t := ctx.Round() - 1
	a.qbuf = a.m.Queries(a.info, t, a.data, a.qbuf[:0])
	a.nbuf = a.nbuf[:0]
	for _, env := range inbox {
		a.nbuf = append(a.nbuf, env.Msg.(*dataMsg).fields)
	}
	a.rbuf = a.rbuf[:0]
	for qi := range a.qbuf {
		a.rbuf = append(a.rbuf, foldExcept(&a.qbuf[qi], a.nbuf, -1))
	}
	halt, output := a.m.Update(a.info, t, a.data, a.rbuf)
	if halt {
		ctx.Halt(output)
		return
	}
	a.broadcast(ctx)
}

// RunDirect executes the machines on the nodes of g. Virtual round t occupies
// real round t+1 (round 0 publishes the initial data), so one virtual round
// costs one real round and one message per edge per direction per round.
func RunDirect(g *graph.Graph, cfg simul.Config, build func(v int) Machine) (*Result, error) {
	n := g.N()
	nodes := make([]directNode, n)
	totalFields := 0
	for v := 0; v < n; v++ {
		nodes[v].m = build(v)
		f := nodes[v].m.Fields()
		if err := validateFields(v, f); err != nil {
			return nil, err
		}
		totalFields += f
	}
	// One arena carve per node: the live Data vector plus the two broadcast
	// snapshots, all adjacent for locality.
	arena := make([]int64, 3*totalFields)
	infos := make([]NodeInfo, n)
	streams := make([]rng.Stream, n)
	master := rng.New(cfg.Seed)
	off := 0
	for v := 0; v < n; v++ {
		nd := &nodes[v]
		f := nd.m.Fields()
		streams[v] = master.SplitOff(uint64(v))
		infos[v] = NodeInfo{
			ID:     v,
			N:      n,
			Degree: g.Degree(v),
			Weight: g.NodeWeight(v),
			Rand:   &streams[v],
		}
		nd.info = &infos[v]
		nd.data = arena[off : off+f : off+f]
		nd.msgs[0].fields = arena[off+f : off+2*f : off+2*f]
		nd.msgs[1].fields = arena[off+2*f : off+3*f : off+3*f]
		off += 3 * f
		nd.m.Init(nd.info, nd.data)
	}
	res, err := simul.Run(g, cfg, func(v int) simul.Automaton { return &nodes[v] })
	if err != nil {
		return nil, err
	}
	out := &Result{
		Outputs:       res.Outputs,
		VirtualRounds: max(0, res.Metrics.Rounds-1),
		Metrics:       res.Metrics,
	}
	return out, nil
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// checkQueryCount guards against machines that change their query count
// between the two endpoints' evaluations; both line runtimes call it.
func checkQueryCount(id int, got, want int) error {
	if got != want {
		return fmt.Errorf("agg: virtual node %d query count changed between endpoints: %d vs %d (Queries must be pure)", id, got, want)
	}
	return nil
}
