package agg

import (
	"fmt"

	"repro/internal/graph"
	"repro/internal/rng"
	"repro/internal/simul"
)

// dataMsg carries a virtual node's published Data to a neighbor.
type dataMsg struct {
	fields Data
}

func (m dataMsg) Bits() int { return m.fields.Bits() }

// directNode adapts a Machine to a simul.Automaton running on the graph
// itself: each round the node broadcasts its Data and evaluates its queries
// over the Data received from live neighbors.
type directNode struct {
	m    Machine
	info *NodeInfo
	data Data
	err  error
}

func (a *directNode) Step(ctx *simul.Context, inbox []simul.Envelope) {
	if ctx.Round() == 0 {
		a.data = a.m.Init(a.info)
		if err := validateData(a.info.ID, a.m.Fields(), a.data); err != nil {
			a.err = err
			ctx.Halt(nil)
			return
		}
		// Broadcast a copy: the live slice is mutated by future Updates while
		// receivers still hold the message.
		ctx.Broadcast(dataMsg{fields: a.data.Clone()})
		return
	}
	// The virtual round whose queries we are resolving.
	t := ctx.Round() - 1
	neighborData := make([]Data, 0, len(inbox))
	for _, env := range inbox {
		neighborData = append(neighborData, env.Msg.(dataMsg).fields)
	}
	queries := a.m.Queries(a.info, t, a.data)
	results := make([]int64, len(queries))
	for i, q := range queries {
		results[i] = q.Eval(neighborData)
	}
	halt, output := a.m.Update(a.info, t, a.data, results)
	if halt {
		ctx.Halt(output)
		return
	}
	ctx.Broadcast(dataMsg{fields: a.data.Clone()})
}

// RunDirect executes the machines on the nodes of g. Virtual round t occupies
// real round t+1 (round 0 publishes the initial data), so one virtual round
// costs one real round and one message per edge per direction per round.
func RunDirect(g *graph.Graph, cfg simul.Config, build func(v int) Machine) (*Result, error) {
	nodes := make([]*directNode, g.N())
	master := rng.New(cfg.Seed)
	res, err := simul.Run(g, cfg, func(v int) simul.Automaton {
		nodes[v] = &directNode{
			m: build(v),
			info: &NodeInfo{
				ID:     v,
				N:      g.N(),
				Degree: g.Degree(v),
				Weight: g.NodeWeight(v),
				Rand:   master.Split(uint64(v)),
			},
		}
		return nodes[v]
	})
	if err != nil {
		return nil, err
	}
	for _, nd := range nodes {
		if nd.err != nil {
			return nil, nd.err
		}
	}
	out := &Result{
		Outputs:       res.Outputs,
		VirtualRounds: max(0, res.Metrics.Rounds-1),
		Metrics:       res.Metrics,
	}
	return out, nil
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// edgeInfo builds the NodeInfo of the virtual node for edge id of g: its
// L(G)-degree is deg(u)+deg(v)-2 and its weight is the edge weight (the node
// weight in L(G), §2.4). The randomness stream depends only on (seed, id), so
// executions on L(G)-via-RunLine and on an explicitly constructed L(G) via
// RunDirect coincide exactly.
func edgeInfo(g *graph.Graph, id int, seed uint64) *NodeInfo {
	e := g.EdgeByID(id)
	return &NodeInfo{
		ID:     id,
		N:      g.M(),
		Degree: g.Degree(e.U) + g.Degree(e.V) - 2,
		Weight: g.EdgeWeight(id),
		Rand:   rng.New(seed).Split(uint64(id)),
	}
}

// checkQueryCount guards against machines that change their query count
// between the two endpoints' evaluations; both runtimes call it.
func checkQueryCount(id int, got, want int) error {
	if got != want {
		return fmt.Errorf("agg: virtual node %d query count changed between endpoints: %d vs %d (Queries must be pure)", id, got, want)
	}
	return nil
}
