package agg

import (
	"math"

	"repro/internal/simul"
)

// Pooled messages. The runtimes never allocate a message in steady state:
// every sender owns a small fixed set of message structs whose payloads view
// into the per-arc arenas, and Send passes pointers to them. The engine
// contract that makes this safe is delivery timing — a message written during
// round r's step phase is metered (Bits) in round r's deliver phase and read
// exactly once, in the receiver's Step of round r+1; the owner never rewrites
// it before round r+2 (the line runtime sends on alternate rounds; the direct
// and naive runtimes double-buffer by round parity).

// dataMsg carries a virtual node's published Data to a neighbor under
// RunDirect. fields is a snapshot copy (an arena view), because the live Data
// vector keeps mutating while receivers hold the message.
type dataMsg struct {
	fields Data
}

func (m *dataMsg) Bits() int { return m.fields.Bits() }

// Message kinds of the line-graph runtimes.
const (
	msgPartial = iota // secondary → primary: per-query partial aggregates
	msgUpdate         // primary → secondary: new Data + halt flag
	msgRelay          // naive runtime: one edge's Data, tagged with its ID
)

// lineMsg is the pooled message of the line-graph runtimes. kind selects the
// wire format; vals is the payload — an arena view holding the Data snapshot
// (update/relay) or the partial-aggregate vector (partial).
type lineMsg struct {
	vals   []int64
	kind   uint8
	halted bool  // msgUpdate only
	edgeID int32 // msgRelay only
}

func (m *lineMsg) Bits() int {
	switch m.kind {
	case msgPartial:
		b := 0
		for _, v := range m.vals {
			b += partialValueBits(v)
		}
		return b
	case msgUpdate:
		return Data(m.vals).Bits() + 1
	default: // msgRelay
		return simul.BitsForRange(int64(m.edgeID)) + Data(m.vals).Bits()
	}
}

// partialValueBits sizes one partial-aggregate value. The Min/Max identities
// (±MaxInt64) arise only as "my side is empty" markers; a real wire encoding
// reserves a short empty-set symbol for them rather than 64 bits.
func partialValueBits(v int64) int {
	if v == math.MaxInt64 || v == math.MinInt64 {
		return 2
	}
	if v < 0 {
		v = -v
	}
	return 1 + simul.BitsForRange(v)
}
