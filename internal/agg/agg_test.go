package agg

import (
	"reflect"
	"testing"
	"testing/quick"

	"repro/internal/graph"
	"repro/internal/rng"
	"repro/internal/simul"
)

func TestAggregateLaws(t *testing.T) {
	aggs := []Aggregate{Sum, Min, Max, And, Or}
	for _, a := range aggs {
		a := a
		t.Run(a.Name(), func(t *testing.T) {
			// Associativity and commutativity on bounded values (bounded so
			// Sum cannot overflow during the property check).
			assocComm := func(x, y, z int32) bool {
				xv, yv, zv := int64(x), int64(y), int64(z)
				if a.Join(xv, yv) != a.Join(yv, xv) {
					return false
				}
				return a.Join(a.Join(xv, yv), zv) == a.Join(xv, a.Join(yv, zv))
			}
			if err := quick.Check(assocComm, nil); err != nil {
				t.Error(err)
			}
			identity := func(x int32) bool {
				xv := normalize(a, int64(x))
				return a.Join(a.Identity(), xv) == xv && a.Join(xv, a.Identity()) == xv
			}
			if err := quick.Check(identity, nil); err != nil {
				t.Error(err)
			}
		})
	}
}

// normalize maps arbitrary ints into the domain of Boolean aggregates, whose
// identity law only holds for canonical 0/1 values.
func normalize(a Aggregate, x int64) int64 {
	if a == And || a == Or {
		if x != 0 {
			return 1
		}
		return 0
	}
	return x
}

func TestQueryOrderInvariance(t *testing.T) {
	// Definition 2.4: f(x₁..xₙ) = f(x_π(1)..x_π(n)) for any permutation π.
	r := rng.New(1)
	for _, a := range []Aggregate{Sum, Min, Max, And, Or} {
		q := Query{Agg: a, Proj: func(d Data) int64 { return d[0] }}
		data := make([]Data, 9)
		for i := range data {
			data[i] = Data{int64(r.Intn(5))}
		}
		want := q.Eval(data)
		for trial := 0; trial < 20; trial++ {
			perm := r.Perm(len(data))
			shuffled := make([]Data, len(data))
			for i, p := range perm {
				shuffled[i] = data[p]
			}
			if got := q.Eval(shuffled); got != want {
				t.Fatalf("%s: permuted eval %d != %d", a.Name(), got, want)
			}
		}
	}
}

func TestJoinOverPartitions(t *testing.T) {
	// Definition 2.5: f(X) = φ(f(X₁), f(X₂)) for any disjoint partition.
	r := rng.New(2)
	for _, a := range []Aggregate{Sum, Min, Max, And, Or} {
		q := Query{Agg: a, Proj: func(d Data) int64 { return d[0] }}
		data := make([]Data, 12)
		for i := range data {
			data[i] = Data{int64(r.Intn(3))}
		}
		want := q.Eval(data)
		for trial := 0; trial < 30; trial++ {
			var x1, x2 []Data
			for _, d := range data {
				if r.Bernoulli(0.5) {
					x1 = append(x1, d)
				} else {
					x2 = append(x2, d)
				}
			}
			if got := a.Join(q.Eval(x1), q.Eval(x2)); got != want {
				t.Fatalf("%s: partition join %d != %d", a.Name(), got, want)
			}
		}
	}
}

func TestDataBits(t *testing.T) {
	cases := []struct {
		d    Data
		want int
	}{
		{Data{}, 0},
		{Data{0}, 2},
		{Data{1}, 2},
		{Data{-1}, 2},
		{Data{255}, 9},
		{Data{3, -4}, 3 + 4},
	}
	for _, c := range cases {
		if got := c.d.Bits(); got != c.want {
			t.Errorf("Bits(%v) = %d, want %d", c.d, got, c.want)
		}
	}
}

// sumMachine computes the sum of its neighbors' weights and halts with it
// after one virtual round.
type sumMachine struct{}

var sumPlan = []Query{{Agg: Sum, Proj: func(d Data) int64 { return d[0] }}}

func (sumMachine) Fields() int { return 1 }

func (sumMachine) Init(info *NodeInfo, data Data) { data[0] = info.Weight }

func (sumMachine) Queries(info *NodeInfo, t int, data Data, qs []Query) []Query {
	return append(qs, sumPlan...)
}

func (sumMachine) Update(info *NodeInfo, t int, data Data, results []int64) (bool, any) {
	return true, results[0]
}

func TestRunDirectNeighborSums(t *testing.T) {
	g := graph.GNP(20, 0.3, rng.New(3))
	graph.AssignUniformNodeWeights(g, 100, rng.New(4))
	res, err := RunDirect(g, simul.Config{Seed: 5}, func(v int) Machine { return sumMachine{} })
	if err != nil {
		t.Fatal(err)
	}
	for v := 0; v < g.N(); v++ {
		var want int64
		for _, u := range g.Neighbors(v) {
			want += g.NodeWeight(int(u))
		}
		if res.Outputs[v] != want {
			t.Fatalf("node %d sum = %v, want %d", v, res.Outputs[v], want)
		}
	}
	if res.VirtualRounds != 1 {
		t.Fatalf("virtual rounds = %d, want 1", res.VirtualRounds)
	}
}

// chaosMachine exercises randomness, multiple aggregates, and data mutation
// over several rounds; used to check that all runtimes produce identical
// executions.
type chaosMachine struct {
	rounds int
	digest int64
}

var chaosPlan = []Query{
	{Agg: Max, Proj: func(d Data) int64 { return d[0] }},
	{Agg: Sum, Proj: func(d Data) int64 { return d[0] + d[1] }},
	{Agg: Or, Proj: func(d Data) int64 {
		if d[0]%3 == 0 {
			return 1
		}
		return 0
	}},
}

func (m *chaosMachine) Fields() int { return 2 }

func (m *chaosMachine) Init(info *NodeInfo, data Data) {
	data[0] = int64(info.Rand.Intn(64))
	data[1] = info.Weight
}

func (m *chaosMachine) Queries(info *NodeInfo, t int, data Data, qs []Query) []Query {
	return append(qs, chaosPlan...)
}

func (m *chaosMachine) Update(info *NodeInfo, t int, data Data, results []int64) (bool, any) {
	for _, r := range results {
		m.digest = m.digest*1000003 + r
	}
	if t == m.rounds-1 {
		return true, m.digest
	}
	data[0] = int64(info.Rand.Intn(64))
	data[1] = (data[1]*7 + results[1]) % 1009
	if data[1] < 0 {
		data[1] += 1009
	}
	return false, nil
}

func TestLineRuntimeMatchesExplicitLineGraph(t *testing.T) {
	// The decisive Theorem 2.8 check: running a machine on L(G) through the
	// two-real-rounds-per-virtual-round simulation must produce *exactly* the
	// execution of the same machine run directly on an explicitly constructed
	// line graph, including all randomness.
	r := rng.New(7)
	for trial := 0; trial < 10; trial++ {
		g := graph.GNP(12, 0.35, r.Split(uint64(trial)))
		if g.M() == 0 {
			continue
		}
		graph.AssignUniformEdgeWeights(g, 30, r.Split(uint64(100+trial)))
		seed := uint64(1000 + trial)
		build := func(id int) Machine { return &chaosMachine{rounds: 6} }

		direct, err := RunDirect(g.LineGraph(), simul.Config{Seed: seed, Model: simul.LOCAL}, build)
		if err != nil {
			t.Fatal(err)
		}
		line, err := RunLine(g, simul.Config{Seed: seed, Model: simul.LOCAL}, build)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(direct.Outputs, line.Outputs) {
			t.Fatalf("trial %d: line-graph simulation diverged from explicit L(G):\n%v\n%v",
				trial, direct.Outputs, line.Outputs)
		}
		naive, err := RunLineNaive(g, simul.Config{Seed: seed, Model: simul.LOCAL}, build)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(direct.Outputs, naive.Outputs) {
			t.Fatalf("trial %d: naive simulation diverged from explicit L(G)", trial)
		}
	}
}

func TestLineRuntimeCongestionFree(t *testing.T) {
	// Theorem 2.8's point: on a star (∆ = n-1), the aggregation simulation
	// pays 2 real rounds per virtual round and at most one message per edge
	// per round, while the naive simulation pays Θ(∆) rounds.
	g := graph.Star(40)
	build := func(id int) Machine { return &chaosMachine{rounds: 4} }

	line, err := RunLine(g, simul.Config{Seed: 1}, func(id int) Machine { return build(id) })
	if err != nil {
		t.Fatal(err)
	}
	// 2 real rounds per virtual round plus one final round in which the
	// secondaries learn the last halt.
	if line.Metrics.Rounds > 2*4+1 {
		t.Fatalf("aggregation simulation used %d real rounds for 4 virtual rounds", line.Metrics.Rounds)
	}
	perRound := float64(line.Metrics.Messages) / float64(line.Metrics.Rounds)
	if perRound > float64(g.M()) {
		t.Fatalf("aggregation simulation sends %.1f messages per round on %d edges", perRound, g.M())
	}

	naive, err := RunLineNaive(g, simul.Config{Seed: 1, Model: simul.LOCAL}, func(id int) Machine { return build(id) })
	if err != nil {
		t.Fatal(err)
	}
	if naive.Metrics.Rounds < (g.MaxDegree()-1)*4 {
		t.Fatalf("naive simulation used only %d real rounds; schedule broken", naive.Metrics.Rounds)
	}
	if naive.Metrics.Rounds <= 3*line.Metrics.Rounds {
		t.Fatalf("naive (%d rounds) not meaningfully slower than aggregation (%d rounds) at ∆=%d",
			naive.Metrics.Rounds, line.Metrics.Rounds, g.MaxDegree())
	}
}

// leaderMachine: a node whose key beats all neighbors' keys announces victory
// and leaves; its neighbors observe the announcement and leave as losers.
// Exercises the halt/visibility contract (announce at round t, halt at t+1).
type leaderMachine struct {
	won bool
}

var leaderPlan = []Query{
	{Agg: Max, Proj: func(d Data) int64 { return d[0] }},
	{Agg: Or, Proj: func(d Data) int64 { return d[1] }},
}

func (m *leaderMachine) Fields() int { return 2 } // key, wonFlag

func (m *leaderMachine) Init(info *NodeInfo, data Data) {
	data[0] = info.Weight
	data[1] = 0
}

func (m *leaderMachine) Queries(info *NodeInfo, t int, data Data, qs []Query) []Query {
	return append(qs, leaderPlan...)
}

func (m *leaderMachine) Update(info *NodeInfo, t int, data Data, results []int64) (bool, any) {
	if m.won {
		return true, "leader"
	}
	if results[1] != 0 {
		return true, "loser"
	}
	if data[0] > results[0] {
		// Strictly larger than every remaining neighbor: announce, then halt
		// next round so the announcement is visible.
		data[1] = 1
		m.won = true
	}
	return false, nil
}

func TestHaltVisibilityContract(t *testing.T) {
	// Path with distinct weights 1..6: node 5 (weight 6) wins first; node 4
	// loses; node 3 then has no live larger neighbor and wins; etc.
	g := graph.Path(6)
	for v := 0; v < 6; v++ {
		g.SetNodeWeight(v, int64(v+1))
	}
	for _, runtime := range []string{"direct", "line-on-path-line-graph"} {
		var res *Result
		var err error
		switch runtime {
		case "direct":
			res, err = RunDirect(g, simul.Config{Seed: 2}, func(v int) Machine { return &leaderMachine{} })
		default:
			// Run the same machine on L(path) through the line runtime; the
			// line graph of a path is a path, with weights defaulting to 1 —
			// set distinct edge weights to keep the scenario meaningful.
			h := graph.Path(7)
			for id := 0; id < h.M(); id++ {
				h.SetEdgeWeight(id, int64(id+1))
			}
			res, err = RunLine(h, simul.Config{Seed: 2}, func(id int) Machine { return &leaderMachine{} })
		}
		if err != nil {
			t.Fatalf("%s: %v", runtime, err)
		}
		leaders := 0
		for i, out := range res.Outputs {
			switch out {
			case "leader":
				leaders++
			case "loser":
			default:
				t.Fatalf("%s: output %d = %v", runtime, i, out)
			}
		}
		if leaders != 3 { // weights 6,4,2 (resp. edges 6,4,2) win in cascade
			t.Fatalf("%s: %d leaders, want 3", runtime, leaders)
		}
	}
}

func TestRunLineEmptyAndEdgeless(t *testing.T) {
	res, err := RunLine(graph.NewBuilder(5).MustBuild(), simul.Config{}, func(id int) Machine {
		t.Fatal("build called with no edges")
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Outputs) != 0 {
		t.Fatalf("outputs = %v", res.Outputs)
	}
}

// badMachine declares a field count that cannot size an arena slot. (A
// wrong-length Data vector is no longer expressible: Init fills a
// runtime-owned view of exactly Fields() elements.)
type badMachine struct{}

func (badMachine) Fields() int          { return -1 }
func (badMachine) Init(*NodeInfo, Data) {}
func (badMachine) Queries(_ *NodeInfo, _ int, _ Data, qs []Query) []Query {
	return qs
}
func (badMachine) Update(*NodeInfo, int, Data, []int64) (bool, any) { return true, nil }

func TestFieldCountValidated(t *testing.T) {
	g := graph.Path(3)
	if _, err := RunDirect(g, simul.Config{}, func(v int) Machine { return badMachine{} }); err == nil {
		t.Fatal("RunDirect accepted a machine with a negative field count")
	}
	if _, err := RunLine(g, simul.Config{}, func(id int) Machine { return badMachine{} }); err == nil {
		t.Fatal("RunLine accepted a machine with a negative field count")
	}
	if _, err := RunLineNaive(g, simul.Config{}, func(id int) Machine { return badMachine{} }); err == nil {
		t.Fatal("RunLineNaive accepted a machine with a negative field count")
	}
}

func TestCongestBudgetAppliesToLineRuntime(t *testing.T) {
	// With a tiny bit budget the partial-aggregate messages must be rejected.
	g := graph.Complete(6)
	graph.AssignUniformEdgeWeights(g, 1<<40, rng.New(9))
	_, err := RunLine(g, simul.Config{Model: simul.CONGEST, BitsFactor: 1}, func(id int) Machine {
		return &chaosMachine{rounds: 3}
	})
	if err == nil {
		t.Fatal("oversized aggregate messages passed a 1×log n budget")
	}
}
