package agg

// Alloc-budget tests: the arena runtime's zero-allocation steady state is a
// contract, not a benchmark footnote. Each budget runs the same machine for
// a short and a long horizon and pins the allocation cost of the extra
// virtual rounds to (effectively) zero — arenas, pooled messages, and query
// buffers are all sized during the first rounds and reused, so additional
// rounds must not allocate. Whole-run allocation counts (arenas, automata,
// RNG streams) scale with the graph, not the round count, and are not
// pinned here; cmd/benchtab -compare gates those end to end.

import (
	"testing"

	"repro/internal/graph"
	"repro/internal/race"
	"repro/internal/rng"
	"repro/internal/simul"
)

// steadyStateBudget is the allowed allocations per extra virtual round for a
// whole run (all nodes together). The true value is zero; the fraction
// absorbs one-off growth that lands beyond the short horizon.
const steadyStateBudget = 0.5

func perRoundAllocs(t *testing.T, run func(rounds int)) float64 {
	t.Helper()
	const short, long = 4, 24
	a := testing.AllocsPerRun(5, func() { run(short) })
	b := testing.AllocsPerRun(5, func() { run(long) })
	return (b - a) / float64(long-short)
}

func allocBudgetGraph(t *testing.T) *graph.Graph {
	t.Helper()
	g := graph.GNP(48, 0.15, rng.New(11))
	graph.AssignUniformEdgeWeights(g, 64, rng.New(12))
	if g.M() == 0 {
		t.Fatal("degenerate test graph")
	}
	return g
}

func TestRunDirectSteadyStateAllocs(t *testing.T) {
	if race.Enabled {
		t.Skip("race instrumentation allocates; budgets only hold unraced")
	}
	g := allocBudgetGraph(t)
	per := perRoundAllocs(t, func(rounds int) {
		if _, err := RunDirect(g, simul.Config{Seed: 7}, func(v int) Machine {
			return &chaosMachine{rounds: rounds}
		}); err != nil {
			t.Fatal(err)
		}
	})
	if per > steadyStateBudget {
		t.Errorf("RunDirect allocates %.2f/round in steady state, budget %v", per, steadyStateBudget)
	}
}

func TestRunLineSteadyStateAllocs(t *testing.T) {
	if race.Enabled {
		t.Skip("race instrumentation allocates; budgets only hold unraced")
	}
	g := allocBudgetGraph(t)
	per := perRoundAllocs(t, func(rounds int) {
		if _, err := RunLine(g, simul.Config{Seed: 7}, func(id int) Machine {
			return &chaosMachine{rounds: rounds}
		}); err != nil {
			t.Fatal(err)
		}
	})
	if per > steadyStateBudget {
		t.Errorf("RunLine allocates %.2f/round in steady state, budget %v", per, steadyStateBudget)
	}
}

func TestRunLineNaiveSteadyStateAllocs(t *testing.T) {
	if race.Enabled {
		t.Skip("race instrumentation allocates; budgets only hold unraced")
	}
	g := allocBudgetGraph(t)
	per := perRoundAllocs(t, func(rounds int) {
		if _, err := RunLineNaive(g, simul.Config{Seed: 7, Model: simul.LOCAL}, func(id int) Machine {
			return &chaosMachine{rounds: rounds}
		}); err != nil {
			t.Fatal(err)
		}
	})
	// A naive virtual round spans ∆ real rounds, but the budget is still per
	// *virtual* round: relay queues and receive buckets are reused too.
	if per > steadyStateBudget {
		t.Errorf("RunLineNaive allocates %.2f/round in steady state, budget %v", per, steadyStateBudget)
	}
}
