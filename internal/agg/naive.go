package agg

import (
	"repro/internal/graph"
	"repro/internal/simul"
)

// RunLineNaive is the straw-man simulation of L(G) the paper warns about in
// §2.4: instead of exchanging partial aggregates, every node relays the Data
// of each of its incident edges to each neighbor, one item per edge per
// round. A node of degree d needs d-1 relay rounds per virtual round, so the
// schedule reserves ∆-1 relay rounds plus one update round — the Θ(∆)
// multiplicative congestion penalty that Theorem 2.8 eliminates.
//
// The relay schedule length is derived from the globally known ∆(G); all
// nodes must agree on it for the synchronous schedule to line up.
//
// The runtime shares the flat per-arc state arena with RunLine (so the E8
// ablation compares simulations, not allocators) and adds the naive
// machinery: a per-virtual-round snapshot arena the relays point into, relay
// queues as index lists, and per-neighbor receive buckets — the relays from
// neighbor u are exactly u's other incident live edges, which is the far side
// of the shared edge's L(G) neighborhood, so bucketing by sender replaces the
// old edge-ID map and its shares-an-endpoint filter. Relay messages are
// pooled per neighbor and double-buffered by round parity (a relay is sent
// every round while the previous one is still being read).
type naiveNode struct {
	relayR   int // relay rounds per virtual round
	states   []lineEdgeState
	outputs  []any // shared, indexed by edge ID; primaries write
	qbuf     []Query
	rbuf     []int64
	liveData []Data // dense live states' data, rebuilt at phase 0

	// snaps[i] is the phase-0 snapshot of states[i].data relayed this
	// virtual round; views into one per-node arena.
	snaps []Data
	// queues[i] lists the state indices still to relay to neighbor i this
	// virtual round; heads[i] is the cursor (pop = advance, no reslicing).
	queues [][]int32
	heads  []int32
	// recv[i] collects the snapshot views relayed by neighbor i.
	recv [][]Data
	// relayMsgs[parity][i] is the pooled relay message for neighbor i.
	relayMsgs [2][]lineMsg
}

func statesAlive(states []lineEdgeState) bool {
	for i := range states {
		if states[i].live {
			return true
		}
	}
	return false
}

// rebuild starts a virtual round: drop stale received data, snapshot every
// live edge's data, queue the relays, and refresh the dense live-data list
// (liveness next changes in the update round's second pass, so the list
// stays valid through the whole virtual round).
func (a *naiveNode) rebuild() {
	a.liveData = a.liveData[:0]
	for i := range a.states {
		st := &a.states[i]
		a.recv[i] = a.recv[i][:0]
		a.queues[i] = a.queues[i][:0]
		a.heads[i] = 0
		if st.live {
			copy(a.snaps[i], st.data)
			st.liveIdx = int32(len(a.liveData))
			a.liveData = append(a.liveData, st.data)
		} else {
			st.liveIdx = -1
		}
	}
	for i := range a.states {
		if !a.states[i].live {
			continue
		}
		for j := range a.states {
			if j != i && a.states[j].live {
				a.queues[i] = append(a.queues[i], int32(j))
			}
		}
	}
}

func (a *naiveNode) Step(ctx *simul.Context, inbox []simul.Envelope) {
	if len(a.states) == 0 {
		ctx.Halt(nil)
		return
	}
	period := a.relayR + 1
	phase := ctx.Round() % period
	t := ctx.Round() / period

	// Fold in whatever arrived: relayed remote data during relay rounds,
	// update messages at the start of a new virtual round. The inbox is
	// sorted by sender and the states by other endpoint, so one merge cursor
	// attributes every message.
	i := 0
	for _, env := range inbox {
		lm, ok := env.Msg.(*lineMsg)
		if !ok {
			continue
		}
		for i < len(a.states) && int(a.states[i].other) < env.From {
			i++
		}
		if i == len(a.states) || int(a.states[i].other) != env.From {
			continue
		}
		st := &a.states[i]
		switch lm.kind {
		case msgRelay:
			// The view stays valid until the sender's next phase-0 snapshot,
			// which is after our update round consumes it.
			a.recv[i] = append(a.recv[i], Data(lm.vals))
		case msgUpdate:
			copy(st.data, lm.vals)
			if lm.halted {
				st.live = false
			}
		}
	}

	if phase == 0 {
		if !statesAlive(a.states) {
			ctx.Halt(nil)
			return
		}
		a.rebuild()
	}

	if phase < a.relayR {
		// Relay round: pop one queued item per neighbor.
		par := ctx.Round() & 1
		for i := range a.states {
			st := &a.states[i]
			if !st.live || int(a.heads[i]) >= len(a.queues[i]) {
				continue
			}
			j := a.queues[i][a.heads[i]]
			a.heads[i]++
			msg := &a.relayMsgs[par][i]
			msg.edgeID = a.states[j].id
			msg.vals = a.snaps[j]
			ctx.SendNbr(i, msg)
		}
		return
	}

	// Update round: primaries now hold the data of every L(G)-neighbor of
	// their edges — own-side locally, other-side via relays. Pass 1 computes
	// every aggregation against the pre-update snapshot.
	a.rbuf = a.rbuf[:0]
	for i := range a.states {
		st := &a.states[i]
		if !st.live || !st.primary {
			continue
		}
		a.qbuf = st.m.Queries(st.info, t, st.data, a.qbuf[:0])
		st.resOff = int32(len(a.rbuf))
		st.resLen = int32(len(a.qbuf))
		for qi := range a.qbuf {
			q := &a.qbuf[qi]
			acc := foldExcept(q, a.liveData, int(st.liveIdx))
			acc = q.Agg.Join(acc, foldExcept(q, a.recv[i], -1))
			a.rbuf = append(a.rbuf, acc)
		}
	}
	// Pass 2: run the updates and ship the new data to the secondaries.
	for i := range a.states {
		st := &a.states[i]
		if !st.live || !st.primary {
			continue
		}
		halt, output := st.m.Update(st.info, t, st.data, a.rbuf[st.resOff:st.resOff+st.resLen])
		copy(st.msg.vals, st.data)
		st.msg.halted = halt
		ctx.SendNbr(i, &st.msg)
		if halt {
			a.outputs[st.id] = output
			st.live = false
		}
	}
	if !statesAlive(a.states) {
		ctx.Halt(nil)
	}
}

// RunLineNaive executes the machines on L(G) using the naive relay schedule.
// Outputs are indexed by edge ID. One virtual round costs ∆(G)-1 relay rounds
// plus one update round.
func RunLineNaive(g *graph.Graph, cfg simul.Config, build func(edgeID int) Machine) (*Result, error) {
	relayR := g.MaxDegree() - 1
	if relayR < 1 {
		relayR = 1
	}
	states, err := buildLineStates(g, cfg.Seed, build)
	if err != nil {
		return nil, err
	}
	offsets, _, _ := g.CSR()
	outputs := make([]any, g.M())
	nodes := make([]naiveNode, g.N())
	res, err := simul.Run(g, cfg, func(v int) simul.Automaton {
		nd := &nodes[v]
		nd.relayR = relayR
		nd.states = states[offsets[v]:offsets[v+1]]
		nd.outputs = outputs
		d := len(nd.states)
		sum := 0
		for i := range nd.states {
			sum += len(nd.states[i].data)
		}
		snapArena := make([]int64, sum)
		nd.snaps = make([]Data, d)
		off := 0
		for i := range nd.states {
			f := len(nd.states[i].data)
			nd.snaps[i] = snapArena[off : off+f : off+f]
			off += f
		}
		nd.queues = make([][]int32, d)
		nd.heads = make([]int32, d)
		nd.recv = make([][]Data, d)
		nd.relayMsgs[0] = make([]lineMsg, d)
		nd.relayMsgs[1] = make([]lineMsg, d)
		for p := 0; p < 2; p++ {
			for i := range nd.relayMsgs[p] {
				nd.relayMsgs[p][i].kind = msgRelay
			}
		}
		return nd
	})
	if err != nil {
		return nil, err
	}
	return &Result{
		Outputs:       outputs,
		VirtualRounds: res.Metrics.Rounds / (relayR + 1),
		Metrics:       res.Metrics,
	}, nil
}
