package agg

import (
	"repro/internal/graph"
	"repro/internal/simul"
)

// RunLineNaive is the straw-man simulation of L(G) the paper warns about in
// §2.4: instead of exchanging partial aggregates, every node relays the Data
// of each of its incident edges to each neighbor, one item per edge per
// round. A node of degree d needs d-1 relay rounds per virtual round, so the
// schedule reserves ∆-1 relay rounds plus one update round — the Θ(∆)
// multiplicative congestion penalty that Theorem 2.8 eliminates.
//
// The relay schedule length is derived from the globally known ∆(G); all
// nodes must agree on it for the synchronous schedule to line up.

// relayMsg carries one edge's Data, tagged with the edge ID so the receiver
// can attribute it.
type relayMsg struct {
	edgeID int
	fields Data
}

func (m relayMsg) Bits() int {
	return simul.BitsForRange(int64(m.edgeID)) + m.fields.Bits()
}

type naiveNode struct {
	g       *graph.Graph
	relayR  int // relay rounds per virtual round
	states  []*lineEdgeState
	byOther map[int]*lineEdgeState
	outputs map[int]any
	err     error

	// received accumulates this virtual round's relayed remote edge data.
	received map[int]Data
	// queues[i] is the per-neighbor relay queue for the current virtual
	// round, parallel to states.
	queues [][]relayMsg
}

func (a *naiveNode) anyLive() bool {
	for _, st := range a.states {
		if st.live {
			return true
		}
	}
	return false
}

// rebuildQueues prepares, for each neighbor, the list of our other live
// edges' data to relay this virtual round.
func (a *naiveNode) rebuildQueues() {
	for i, st := range a.states {
		a.queues[i] = a.queues[i][:0]
		if !st.live {
			continue
		}
		for _, other := range a.states {
			if other == st || !other.live {
				continue
			}
			a.queues[i] = append(a.queues[i], relayMsg{edgeID: other.id, fields: other.data.Clone()})
		}
	}
}

func (a *naiveNode) Step(ctx *simul.Context, inbox []simul.Envelope) {
	if len(a.states) == 0 {
		ctx.Halt(a.outputs)
		return
	}
	period := a.relayR + 1
	phase := ctx.Round() % period
	t := ctx.Round() / period

	// Fold in whatever arrived: relayed remote data during relay rounds,
	// update messages at the start of a new virtual round.
	for _, env := range inbox {
		switch m := env.Msg.(type) {
		case relayMsg:
			a.received[m.edgeID] = m.fields
		case updateMsg:
			st, ok := a.byOther[env.From]
			if !ok {
				continue
			}
			copy(st.data, m.fields)
			if m.halted {
				st.live = false
			}
		}
	}

	if phase == 0 {
		if !a.anyLive() {
			ctx.Halt(a.outputs)
			return
		}
		// A fresh virtual round: drop stale remote data, rebuild queues.
		for k := range a.received {
			delete(a.received, k)
		}
		a.rebuildQueues()
	}

	if phase < a.relayR {
		// Relay round: pop one queued item per neighbor.
		for i, st := range a.states {
			if len(a.queues[i]) == 0 || !st.live {
				continue
			}
			ctx.Send(st.other, a.queues[i][0])
			a.queues[i] = a.queues[i][1:]
		}
		return
	}

	// Update round: primaries now hold the data of every L(G)-neighbor of
	// their edges — own-side locally, other-side via relays.
	type pending struct {
		st      *lineEdgeState
		results []int64
	}
	var work []pending
	for _, st := range a.states {
		if !st.live || !st.primary {
			continue
		}
		queries := st.m.Queries(st.info, t, st.data)
		results := make([]int64, len(queries))
		for qi, q := range queries {
			acc := q.Agg.Identity()
			for _, other := range a.states {
				if other == st || !other.live {
					continue
				}
				acc = q.Agg.Join(acc, q.Proj(other.data))
			}
			for edgeID, d := range a.received {
				if edgeID == st.id {
					continue
				}
				// Only edges sharing the *other* endpoint: the relay sender
				// was st.other, and it relayed exactly its other live edges.
				if sharesEndpoint(a.g, edgeID, st.other) {
					acc = q.Agg.Join(acc, q.Proj(d))
				}
			}
			results[qi] = acc
		}
		work = append(work, pending{st: st, results: results})
	}
	for _, p := range work {
		halt, output := p.st.m.Update(p.st.info, t, p.st.data, p.results)
		ctx.Send(p.st.other, updateMsg{fields: p.st.data.Clone(), halted: halt})
		if halt {
			a.outputs[p.st.id] = output
			p.st.live = false
		}
	}
	if !a.anyLive() {
		ctx.Halt(a.outputs)
	}
}

func sharesEndpoint(g *graph.Graph, edgeID, v int) bool {
	e := g.EdgeByID(edgeID)
	return e.U == v || e.V == v
}

// RunLineNaive executes the machines on L(G) using the naive relay schedule.
// Outputs are indexed by edge ID. One virtual round costs ∆(G)-1 relay rounds
// plus one update round.
func RunLineNaive(g *graph.Graph, cfg simul.Config, build func(edgeID int) Machine) (*Result, error) {
	relayR := g.MaxDegree() - 1
	if relayR < 1 {
		relayR = 1
	}
	nodes := make([]*naiveNode, g.N())
	res, err := simul.Run(g, cfg, func(v int) simul.Automaton {
		nn := &naiveNode{
			g:        g,
			relayR:   relayR,
			byOther:  make(map[int]*lineEdgeState),
			outputs:  make(map[int]any),
			received: make(map[int]Data),
		}
		for _, id32 := range g.IncidentEdges(v) {
			id := int(id32)
			e := g.EdgeByID(id)
			st := &lineEdgeState{
				id:      id,
				other:   e.Other(v),
				primary: v == e.U,
				m:       build(id),
				info:    edgeInfo(g, id, cfg.Seed),
				live:    true,
			}
			st.data = st.m.Init(st.info)
			if err := validateData(id, st.m.Fields(), st.data); err != nil {
				st.live = false
				nn.err = err
			}
			nn.states = append(nn.states, st)
			nn.byOther[st.other] = st
		}
		nn.queues = make([][]relayMsg, len(nn.states))
		nodes[v] = nn
		return nn
	})
	if err != nil {
		return nil, err
	}
	outputs := make([]any, g.M())
	for _, nn := range nodes {
		if nn.err != nil {
			return nil, nn.err
		}
		for id, out := range nn.outputs {
			outputs[id] = out
		}
	}
	return &Result{
		Outputs:       outputs,
		VirtualRounds: res.Metrics.Rounds / (relayR + 1),
		Metrics:       res.Metrics,
	}, nil
}
