package agg

import (
	"fmt"
	"math"

	"repro/internal/graph"
	"repro/internal/simul"
)

// Theorem 2.8 simulation: run a local aggregation algorithm on L(G) in the
// CONGEST model of G with no round or congestion overhead beyond a factor 2.
//
// Edge e = {u, v} with u < v is simulated by primary node u; the secondary v
// mirrors e's Data (the invariant from the proof of Theorem 2.8: "D_{v,i} is
// always present in both the primary and secondary nodes"). A virtual round t
// spans two real rounds:
//
//	real round 2t   (A): every secondary computes, for each of e's queries,
//	    the partial aggregate over its own other incident live edges, and
//	    sends the vector of partials to the primary across e itself.
//	real round 2t+1 (B): the primary joins the secondary's partials with the
//	    partials over its own side (the two sides are disjoint — a common
//	    edge would be a parallel edge — so the joining function of
//	    Definition 2.5 applies), runs Update, and sends the new Data plus a
//	    halt flag back across e.
//
// Exactly one message traverses each live edge per real round.

// partialMsg carries the secondary's per-query partial aggregates.
type partialMsg struct {
	values Data
}

func (m partialMsg) Bits() int {
	b := 0
	for _, v := range m.values {
		b += partialValueBits(v)
	}
	return b
}

// partialValueBits sizes one partial-aggregate value. The Min/Max identities
// (±MaxInt64) arise only as "my side is empty" markers; a real wire encoding
// reserves a short empty-set symbol for them rather than 64 bits.
func partialValueBits(v int64) int {
	if v == math.MaxInt64 || v == math.MinInt64 {
		return 2
	}
	if v < 0 {
		v = -v
	}
	return 1 + simul.BitsForRange(v)
}

// updateMsg carries the primary's new Data and the halt flag.
type updateMsg struct {
	fields Data
	halted bool
}

func (m updateMsg) Bits() int { return m.fields.Bits() + 1 }

// lineEdgeState is one endpoint's view of the virtual node for edge id.
type lineEdgeState struct {
	id      int
	other   int // the other endpoint of the edge
	primary bool
	m       Machine // authoritative at the primary, query shadow at the secondary
	info    *NodeInfo
	data    Data
	live    bool
}

// lineNode is the real-node automaton that simulates all its incident edges.
type lineNode struct {
	states  []*lineEdgeState // indexed by position in IncidentEdges order
	byOther map[int]*lineEdgeState
	outputs map[int]any // edge ID -> output, for edges this node primaries
	err     error
}

func (a *lineNode) fail(ctx *simul.Context, err error) {
	a.err = err
	ctx.Halt(nil)
}

// sidePartials computes, for each query of edge st, the aggregate over the
// data of this endpoint's other live incident edges. The liveness and data
// snapshots must predate any Update of the current virtual round, so callers
// run it before mutating anything.
func (a *lineNode) sidePartials(st *lineEdgeState, queries []Query) Data {
	out := make(Data, len(queries))
	for i, q := range queries {
		acc := q.Agg.Identity()
		for _, other := range a.states {
			if other == st || !other.live {
				continue
			}
			acc = q.Agg.Join(acc, q.Proj(other.data))
		}
		out[i] = acc
	}
	return out
}

func (a *lineNode) anyLive() bool {
	for _, st := range a.states {
		if st.live {
			return true
		}
	}
	return false
}

func (a *lineNode) Step(ctx *simul.Context, inbox []simul.Envelope) {
	if len(a.states) == 0 {
		ctx.Halt(a.outputs)
		return
	}
	t := ctx.Round() / 2
	if ctx.Round()%2 == 0 {
		// A round. First fold in the primaries' B messages from the previous
		// virtual round (secondary side).
		for _, env := range inbox {
			st, ok := a.byOther[env.From]
			if !ok {
				continue
			}
			upd := env.Msg.(updateMsg)
			copy(st.data, upd.fields)
			if upd.halted {
				st.live = false
			}
		}
		if !a.anyLive() {
			ctx.Halt(a.outputs)
			return
		}
		// Then send partials for every live edge we secondary.
		for _, st := range a.states {
			if !st.live || st.primary {
				continue
			}
			queries := st.m.Queries(st.info, t, st.data)
			ctx.Send(st.other, partialMsg{values: a.sidePartials(st, queries)})
		}
		return
	}

	// B round: primaries resolve virtual round t.
	partials := make(map[int]Data, len(inbox))
	for _, env := range inbox {
		partials[env.From] = env.Msg.(partialMsg).values
	}
	// Pass 1: compute all aggregations against the pre-update snapshot.
	type pending struct {
		st      *lineEdgeState
		results []int64
	}
	var work []pending
	for _, st := range a.states {
		if !st.live || !st.primary {
			continue
		}
		queries := st.m.Queries(st.info, t, st.data)
		secondary, ok := partials[st.other]
		if !ok {
			// The secondary endpoint vanished without handing over; this
			// indicates a machine protocol bug.
			a.fail(ctx, fmt.Errorf("agg: line runtime: no partial aggregate from secondary %d for edge %d at virtual round %d", st.other, st.id, t))
			return
		}
		if err := checkQueryCount(st.id, len(secondary), len(queries)); err != nil {
			a.fail(ctx, err)
			return
		}
		mine := a.sidePartials(st, queries)
		results := make([]int64, len(queries))
		for i, q := range queries {
			results[i] = q.Agg.Join(mine[i], secondary[i])
		}
		work = append(work, pending{st: st, results: results})
	}
	// Pass 2: run the updates and ship the new data to the secondaries.
	for _, p := range work {
		halt, output := p.st.m.Update(p.st.info, t, p.st.data, p.results)
		ctx.Send(p.st.other, updateMsg{fields: p.st.data.Clone(), halted: halt})
		if halt {
			a.outputs[p.st.id] = output
			p.st.live = false
		}
	}
	if !a.anyLive() {
		ctx.Halt(a.outputs)
	}
}

// RunLine executes the machines on the virtual nodes of L(G) — one per edge
// of g — inside the CONGEST model of g, per Theorem 2.8. Outputs are indexed
// by edge ID. Virtual round t spans real rounds 2t and 2t+1.
func RunLine(g *graph.Graph, cfg simul.Config, build func(edgeID int) Machine) (*Result, error) {
	nodes := make([]*lineNode, g.N())
	res, err := simul.Run(g, cfg, func(v int) simul.Automaton {
		ln := &lineNode{
			byOther: make(map[int]*lineEdgeState),
			outputs: make(map[int]any),
		}
		for _, id32 := range g.IncidentEdges(v) {
			id := int(id32)
			e := g.EdgeByID(id)
			st := &lineEdgeState{
				id:      id,
				other:   e.Other(v),
				primary: v == e.U, // canonical edges have U < V
				m:       build(id),
				info:    edgeInfo(g, id, cfg.Seed),
				live:    true,
			}
			// Both endpoints derive the identical initial data from the
			// edge's deterministic stream; no bootstrap message is needed.
			st.data = st.m.Init(st.info)
			if err := validateData(id, st.m.Fields(), st.data); err != nil {
				st.live = false
				ln.err = err
			}
			ln.states = append(ln.states, st)
			ln.byOther[st.other] = st
		}
		nodes[v] = ln
		return ln
	})
	if err != nil {
		return nil, err
	}
	outputs := make([]any, g.M())
	for _, ln := range nodes {
		if ln.err != nil {
			return nil, ln.err
		}
		for id, out := range ln.outputs {
			outputs[id] = out
		}
	}
	return &Result{
		Outputs:       outputs,
		VirtualRounds: res.Metrics.Rounds / 2,
		Metrics:       res.Metrics,
	}, nil
}
