package agg

import (
	"fmt"

	"repro/internal/graph"
	"repro/internal/rng"
	"repro/internal/simul"
)

// Theorem 2.8 simulation: run a local aggregation algorithm on L(G) in the
// CONGEST model of G with no round or congestion overhead beyond a factor 2.
//
// Edge e = {u, v} with u < v is simulated by primary node u; the secondary v
// mirrors e's Data (the invariant from the proof of Theorem 2.8: "D_{v,i} is
// always present in both the primary and secondary nodes"). A virtual round t
// spans two real rounds:
//
//	real round 2t   (A): every secondary computes, for each of e's queries,
//	    the partial aggregate over its own other incident live edges, and
//	    sends the vector of partials to the primary across e itself.
//	real round 2t+1 (B): the primary joins the secondary's partials with the
//	    partials over its own side (the two sides are disjoint — a common
//	    edge would be a parallel edge — so the joining function of
//	    Definition 2.5 applies), runs Update, and sends the new Data plus a
//	    halt flag back across e.
//
// Exactly one message traverses each live edge per real round.
//
// # Arena layout
//
// The runtime mirrors the engine's slot-addressed design (DESIGN.md §2c): one
// lineEdgeState per arc of the CSR layout, in one flat array — node v's
// states are the positions offsets[v]..offsets[v+1], aligned with Neighbors
// and IncidentEdges, so states are sorted by the other endpoint's ID and the
// engine's ascending-sender inbox merges against them with a cursor instead
// of a map. Data vectors and update-message payloads are carved from two flat
// []int64 arenas sized once from ΣFields; each state owns one pooled lineMsg
// whose payload views its arena slot (the mirror arc's state is the other
// side's slot for the same edge). A state sends on alternate real rounds —
// partials on A rounds as a secondary, updates on B rounds as a primary — and
// a message is consumed the round after it is sent, so single-buffering per
// arc is race-free even under the parallel engine.

// lineEdgeState is one endpoint's view of the virtual node for one edge.
// States live in the flat per-arc arena described above.
type lineEdgeState struct {
	id      int32 // dense edge ID = virtual node ID
	other   int32 // the other endpoint of the edge
	primary bool  // this endpoint is min(u, v)
	live    bool
	liveIdx int32 // position in the node's dense live-data list; -1 if dead
	resOff  int32 // extent of this state's results in the node's result buffer
	resLen  int32
	m       Machine // authoritative at the primary, query shadow at the secondary
	info    *NodeInfo
	data    Data    // arena view, Fields() elements
	msg     lineMsg // pooled outgoing message (partial or update)
}

// lineNode is the real-node automaton that simulates all its incident edges.
type lineNode struct {
	states   []lineEdgeState // arena view: this node's CSR arc segment
	outputs  []any           // shared, indexed by edge ID; primaries write
	qbuf     []Query         // reusable query plan buffer
	rbuf     []int64         // reusable result buffer (all states, B round)
	liveData []Data          // dense live states' data, for branch-free folds
	memo     foldMemo        // exchange-folding memo over liveData
	err      error
}

// refreshLive rebuilds the dense live-data list and invalidates the fold
// memo. It runs once per A round, after the update fold: liveness and data
// next change only in the B round's second pass, so both the list and the
// memoized prefix/suffix folds stay valid for the A-round partials and the
// B-round aggregations alike.
func (a *lineNode) refreshLive() {
	a.memo.reset()
	a.liveData = a.liveData[:0]
	for i := range a.states {
		st := &a.states[i]
		if st.live {
			st.liveIdx = int32(len(a.liveData))
			a.liveData = append(a.liveData, st.data)
		} else {
			st.liveIdx = -1
		}
	}
}

func (a *lineNode) fail(ctx *simul.Context, err error) {
	a.err = err
	ctx.Halt(nil)
}

// sidePartials appends, for each query, the aggregate over the data of this
// endpoint's other live incident edges. The liveness and data snapshots must
// predate any Update of the current virtual round, so callers run it before
// mutating anything.
func (a *lineNode) sidePartials(st *lineEdgeState, queries []Query, out []int64) []int64 {
	for qi := range queries {
		out = append(out, a.memo.partial(&queries[qi], a.liveData, int(st.liveIdx)))
	}
	return out
}

// foldUpdates applies the primaries' B-round messages to the mirrored states.
// The inbox is sorted by sender and the states by other endpoint, so a single
// merge cursor replaces the old sender→state map.
func (a *lineNode) foldUpdates(inbox []simul.Envelope) {
	i := 0
	for _, env := range inbox {
		um, ok := env.Msg.(*lineMsg)
		if !ok || um.kind != msgUpdate {
			continue
		}
		for i < len(a.states) && int(a.states[i].other) < env.From {
			i++
		}
		if i == len(a.states) || int(a.states[i].other) != env.From {
			continue
		}
		st := &a.states[i]
		copy(st.data, um.vals)
		if um.halted {
			st.live = false
		}
	}
}

func (a *lineNode) Step(ctx *simul.Context, inbox []simul.Envelope) {
	if len(a.states) == 0 {
		ctx.Halt(nil)
		return
	}
	t := ctx.Round() / 2
	if ctx.Round()%2 == 0 {
		// A round. First fold in the primaries' B messages from the previous
		// virtual round (secondary side).
		a.foldUpdates(inbox)
		if !statesAlive(a.states) {
			ctx.Halt(nil)
			return
		}
		a.refreshLive()
		// Then send partials for every live edge we secondary.
		for i := range a.states {
			st := &a.states[i]
			if !st.live || st.primary {
				continue
			}
			a.qbuf = st.m.Queries(st.info, t, st.data, a.qbuf[:0])
			st.msg.vals = a.sidePartials(st, a.qbuf, st.msg.vals[:0])
			ctx.SendNbr(i, &st.msg)
		}
		return
	}

	// B round: primaries resolve virtual round t.
	// Pass 1: compute all aggregations against the pre-update snapshot,
	// merging the secondaries' partials (inbox, ascending sender) with the
	// primary states (ascending other endpoint).
	a.rbuf = a.rbuf[:0]
	pi := 0
	for i := range a.states {
		st := &a.states[i]
		if !st.live || !st.primary {
			continue
		}
		for pi < len(inbox) && inbox[pi].From < int(st.other) {
			pi++
		}
		var secondary *lineMsg
		if pi < len(inbox) && inbox[pi].From == int(st.other) {
			if pm, ok := inbox[pi].Msg.(*lineMsg); ok && pm.kind == msgPartial {
				secondary = pm
			}
		}
		if secondary == nil {
			// The secondary endpoint vanished without handing over; this
			// indicates a machine protocol bug.
			a.fail(ctx, fmt.Errorf("agg: line runtime: no partial aggregate from secondary %d for edge %d at virtual round %d", st.other, st.id, t))
			return
		}
		a.qbuf = st.m.Queries(st.info, t, st.data, a.qbuf[:0])
		if err := checkQueryCount(int(st.id), len(secondary.vals), len(a.qbuf)); err != nil {
			a.fail(ctx, err)
			return
		}
		st.resOff = int32(len(a.rbuf))
		st.resLen = int32(len(a.qbuf))
		for qi := range a.qbuf {
			q := &a.qbuf[qi]
			mine := a.memo.partial(q, a.liveData, int(st.liveIdx))
			a.rbuf = append(a.rbuf, q.Agg.Join(mine, secondary.vals[qi]))
		}
	}
	// Pass 2: run the updates and ship the new data to the secondaries.
	for i := range a.states {
		st := &a.states[i]
		if !st.live || !st.primary {
			continue
		}
		halt, output := st.m.Update(st.info, t, st.data, a.rbuf[st.resOff:st.resOff+st.resLen])
		copy(st.msg.vals, st.data)
		st.msg.halted = halt
		ctx.SendNbr(i, &st.msg)
		if halt {
			a.outputs[st.id] = output
			st.live = false
		}
	}
	if !statesAlive(a.states) {
		ctx.Halt(nil)
	}
}

// buildLineStates allocates the flat per-arc arenas for a line-graph
// simulation of g — states, NodeInfos, randomness streams, Data vectors and
// update-message payloads — and initializes every state. The state at arc
// position k (node v → neighbor u) simulates edge edgeIDs[k]; both endpoints
// derive identical initial data from the edge's deterministic stream, so no
// bootstrap message is needed.
func buildLineStates(g *graph.Graph, seed uint64, build func(edgeID int) Machine) ([]lineEdgeState, error) {
	offsets, neighbors, edgeIDs := g.CSR()
	arcs := len(neighbors)
	states := make([]lineEdgeState, arcs)
	totalFields := 0
	for k := 0; k < arcs; k++ {
		id := int(edgeIDs[k])
		states[k].m = build(id)
		f := states[k].m.Fields()
		if err := validateFields(id, f); err != nil {
			return nil, err
		}
		totalFields += f
	}
	// dataArena holds the mirrored Data vectors; msgArena the update-message
	// payload slots (secondaries reuse theirs as the partial vector, growing
	// past Fields() only if a machine asks more queries than it has fields).
	dataArena := make([]int64, totalFields)
	msgArena := make([]int64, totalFields)
	infos := make([]NodeInfo, arcs)
	streams := make([]rng.Stream, arcs)
	master := rng.New(seed)
	m := g.M()
	off := 0
	for v := 0; v < g.N(); v++ {
		for k := int(offsets[v]); k < int(offsets[v+1]); k++ {
			st := &states[k]
			u := int(neighbors[k])
			id := int(edgeIDs[k])
			e := g.EdgeByID(id)
			f := st.m.Fields()
			// The randomness stream depends only on (seed, id), so executions
			// on L(G)-via-RunLine and on an explicitly constructed L(G) via
			// RunDirect coincide exactly.
			streams[k] = master.SplitOff(uint64(id))
			infos[k] = NodeInfo{
				ID:     id,
				N:      m,
				Degree: g.Degree(e.U) + g.Degree(e.V) - 2,
				Weight: g.EdgeWeight(id),
				Rand:   &streams[k],
			}
			st.id = int32(id)
			st.other = int32(u)
			st.primary = v == e.U // canonical edges have U < V
			st.live = true
			st.info = &infos[k]
			st.data = dataArena[off : off+f : off+f]
			st.msg.vals = msgArena[off : off+f : off+f]
			if st.primary {
				st.msg.kind = msgUpdate
			} else {
				st.msg.kind = msgPartial
			}
			off += f
			st.m.Init(st.info, st.data)
		}
	}
	return states, nil
}

// RunLine executes the machines on the virtual nodes of L(G) — one per edge
// of g — inside the CONGEST model of g, per Theorem 2.8. Outputs are indexed
// by edge ID. Virtual round t spans real rounds 2t and 2t+1.
func RunLine(g *graph.Graph, cfg simul.Config, build func(edgeID int) Machine) (*Result, error) {
	states, err := buildLineStates(g, cfg.Seed, build)
	if err != nil {
		return nil, err
	}
	offsets, _, _ := g.CSR()
	n := g.N()
	outputs := make([]any, g.M())
	nodes := make([]lineNode, n)
	// Pre-size each node's reusable buffers from CSR stats instead of
	// letting them grow by append over the first rounds: liveData never
	// exceeds the node's degree, rbuf holds one result per query of the
	// node's primary states (machines query Fields() values per round in
	// the common case), and qbuf is reused one state at a time, so its high
	// water is the node's largest Fields(). Three slabs, three allocations
	// total; each node's view is capacity-clipped (three-index slices), so
	// a machine that out-queries the estimate reallocates privately instead
	// of bleeding into its neighbor's slab.
	rOff := make([]int, n+1)
	qOff := make([]int, n+1)
	for v := 0; v < n; v++ {
		sumPrimary, maxF := 0, 0
		for k := int(offsets[v]); k < int(offsets[v+1]); k++ {
			f := states[k].m.Fields()
			if states[k].primary {
				sumPrimary += f
			}
			if f > maxF {
				maxF = f
			}
		}
		rOff[v+1] = rOff[v] + sumPrimary
		qOff[v+1] = qOff[v] + maxF
	}
	liveSlab := make([]Data, len(states))
	rSlab := make([]int64, rOff[n])
	qSlab := make([]Query, qOff[n])
	res, err := simul.Run(g, cfg, func(v int) simul.Automaton {
		lo, hi := int(offsets[v]), int(offsets[v+1])
		nodes[v].states = states[lo:hi]
		nodes[v].outputs = outputs
		nodes[v].liveData = liveSlab[lo:lo:hi]
		nodes[v].rbuf = rSlab[rOff[v]:rOff[v]:rOff[v+1]]
		nodes[v].qbuf = qSlab[qOff[v]:qOff[v]:qOff[v+1]]
		return &nodes[v]
	})
	if err != nil {
		return nil, err
	}
	var memo MemoStats
	for v := range nodes {
		if nodes[v].err != nil {
			return nil, nodes[v].err
		}
		memo.Hits += nodes[v].memo.hits
		memo.Misses += nodes[v].memo.misses
	}
	return &Result{
		Outputs:       outputs,
		VirtualRounds: res.Metrics.Rounds / 2,
		Metrics:       res.Metrics,
		Memo:          memo,
	}, nil
}
