package tenant

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

func writeKeys(t *testing.T, path, content string) {
	t.Helper()
	if err := os.WriteFile(path, []byte(content), 0o600); err != nil {
		t.Fatal(err)
	}
}

func TestLoadLookupAndOptions(t *testing.T) {
	path := filepath.Join(t.TempDir(), "keys")
	writeKeys(t, path, `
# comment and blank lines are skipped

alice `+HashKey("alice-secret")+` weight=4 rate=2.5 burst=7 cells=3 queue=9 waiters=2
bob `+HashKey("bob-secret")+`
`)
	kr, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if kr.Len() != 2 {
		t.Fatalf("Len() = %d, want 2", kr.Len())
	}
	a, ok := kr.Lookup("alice-secret")
	if !ok || a.ID != "alice" {
		t.Fatalf("Lookup(alice-secret) = %+v, %t", a, ok)
	}
	if a.Weight != 4 || a.Rate != 2.5 || a.Burst != 7 || a.MaxCells != 3 || a.QueueSize != 9 || a.MaxWaiters != 2 {
		t.Fatalf("alice options %+v", a)
	}
	b, ok := kr.ByID("bob")
	if !ok || b.Weight != 0 || b.Rate != 0 {
		t.Fatalf("ByID(bob) = %+v, %t (zero limits expected)", b, ok)
	}
	if _, ok := kr.Lookup("wrong-secret"); ok {
		t.Fatal("unknown key resolved to a tenant")
	}
	if _, ok := kr.Lookup(HashKey("alice-secret")); ok {
		t.Fatal("the stored hash itself must not work as a key")
	}
}

func TestLoadRejectsBadFiles(t *testing.T) {
	cases := map[string]string{
		"missing hash":    "alice\n",
		"short hash":      "alice abc123\n",
		"non-hex hash":    "alice " + strings.Repeat("z", 64) + "\n",
		"bad id charset":  "al/ice " + HashKey("k") + "\n",
		"bad option":      "alice " + HashKey("k") + " turbo=1\n",
		"bare option":     "alice " + HashKey("k") + " weight\n",
		"negative option": "alice " + HashKey("k") + " weight=-2\n",
		"duplicate id":    "alice " + HashKey("k1") + "\nalice " + HashKey("k2") + "\n",
		"duplicate hash":  "alice " + HashKey("k") + "\nbob " + HashKey("k") + "\n",
	}
	dir := t.TempDir()
	for name, content := range cases {
		path := filepath.Join(dir, strings.ReplaceAll(name, " ", "-"))
		writeKeys(t, path, content)
		if _, err := Load(path); err == nil {
			t.Errorf("%s: loaded without error", name)
		}
	}
}

// TestReloadSwapsKeysAndKeepsBuckets covers the SIGHUP contract: a reload
// rotates keys atomically, a parse error keeps the previous table, and a
// surviving tenant's token bucket is NOT refilled by the reload.
func TestReloadSwapsKeysAndKeepsBuckets(t *testing.T) {
	path := filepath.Join(t.TempDir(), "keys")
	writeKeys(t, path, "alice "+HashKey("old-key")+" rate=0.001 burst=1\n")
	kr, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if !kr.Allow("alice") {
		t.Fatal("first request should spend the single burst token")
	}
	if kr.Allow("alice") {
		t.Fatal("bucket should be empty after the burst")
	}

	// Rotate the key; the drained bucket must survive the reload.
	writeKeys(t, path, "alice "+HashKey("new-key")+" rate=0.001 burst=1\n")
	if err := kr.Reload(); err != nil {
		t.Fatal(err)
	}
	if _, ok := kr.Lookup("old-key"); ok {
		t.Fatal("rotated-out key still resolves")
	}
	if _, ok := kr.Lookup("new-key"); !ok {
		t.Fatal("rotated-in key does not resolve")
	}
	if kr.Allow("alice") {
		t.Fatal("reload refilled a drained bucket")
	}

	// A parse error must keep the previous table in effect.
	writeKeys(t, path, "broken line without hash\n")
	if err := kr.Reload(); err == nil {
		t.Fatal("reload of a broken file succeeded")
	}
	if _, ok := kr.Lookup("new-key"); !ok {
		t.Fatal("failed reload dropped the previous table")
	}

	// Removing the tenant prunes its bucket state.
	writeKeys(t, path, "bob "+HashKey("bob-key")+"\n")
	if err := kr.Reload(); err != nil {
		t.Fatal(err)
	}
	if kr.Len() != 1 {
		t.Fatalf("Len() after removal = %d, want 1", kr.Len())
	}
}

func TestBucketRefill(t *testing.T) {
	b := newBucket(2, 2)
	now := time.Unix(1000, 0)
	if !b.allow(now, 2, 2) || !b.allow(now, 2, 2) {
		t.Fatal("burst of 2 should admit two immediate requests")
	}
	if b.allow(now, 2, 2) {
		t.Fatal("third immediate request should be rejected")
	}
	// Half a second at 2/s refills one token; the level stays capped at burst.
	if !b.allow(now.Add(500*time.Millisecond), 2, 2) {
		t.Fatal("refilled token rejected")
	}
	if !b.allow(now.Add(time.Hour), 2, 2) || !b.allow(now.Add(time.Hour), 2, 2) {
		t.Fatal("long idle should refill to burst")
	}
	if b.allow(now.Add(time.Hour), 2, 2) {
		t.Fatal("burst cap exceeded after long idle")
	}
}

func TestValidID(t *testing.T) {
	for _, ok := range []string{"a", "alice", "A-b_c.9"} {
		if !ValidID(ok) {
			t.Errorf("ValidID(%q) = false", ok)
		}
	}
	for _, bad := range []string{"", "a/b", "a b", "ключ", "a\n"} {
		if ValidID(bad) {
			t.Errorf("ValidID(%q) = true", bad)
		}
	}
}

// TestAllowUnlimitedAndUnknown pins two deliberate permissive cases: a
// tenant with no rate is never limited, and an ID missing from the table
// (reload race) is allowed rather than 429ed.
func TestAllowUnlimitedAndUnknown(t *testing.T) {
	path := filepath.Join(t.TempDir(), "keys")
	writeKeys(t, path, "free "+HashKey("free-key")+"\n")
	kr, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		if !kr.Allow("free") {
			t.Fatal("unlimited tenant was rate limited")
		}
	}
	if !kr.Allow("ghost") {
		t.Fatal("unknown tenant must not be limited")
	}
}
