// Package tenant implements the multi-tenant front door's identity layer:
// API keys, per-tenant limits, and token-bucket rate accounting.
//
// Keys live in a plain-text file, one tenant per line, and are stored hashed
// (SHA-256 of the raw key) so the file never holds a usable credential:
//
//	# <id> <sha256-hex-of-key> [weight=N] [rate=F] [burst=N] [cells=N] [queue=N] [waiters=N]
//	alice 9f86d081884c7d659a2feaa0c55ad015a3bf4f1b2b0b822cd15d6c15b0f00a08 weight=4 rate=50
//
// A Keyring loads that file and resolves presented keys to Tenant records.
// Reload swaps the parsed table atomically, so a SIGHUP handler can refresh
// keys without quiescing in-flight requests; token buckets survive reloads
// so a reload cannot be used to refill a drained bucket.
package tenant

import (
	"bufio"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"os"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Tenant is one row of the key file: an identity plus its admission limits.
// Zero-valued limit fields mean "server default" (or unlimited, where noted).
type Tenant struct {
	ID         string  // [A-Za-z0-9._-]+; "" is the anonymous tenant of open mode
	Weight     int     // fair-share weight (DRR quantum); 0 → 1
	Rate       float64 // mutating requests per second; 0 → unlimited
	Burst      int     // token-bucket depth; 0 → max(1, ceil(Rate))
	MaxCells   int     // concurrently running cells; 0 → unlimited
	QueueSize  int     // queued (admitted, not yet running) cells; 0 → server default
	MaxWaiters int     // concurrent long-polls + result streams; 0 → server default
}

// Anonymous is the tenant every request maps to when no keyring is
// configured (open mode). It carries no limits of its own; server defaults
// apply.
var Anonymous = Tenant{ID: ""}

// HashKey returns the hex SHA-256 digest of a raw API key — the form keys
// take in the key file.
func HashKey(raw string) string {
	sum := sha256.Sum256([]byte(raw))
	return hex.EncodeToString(sum[:])
}

type keyTable struct {
	byHash map[string]Tenant // sha256-hex(raw key) → tenant
	byID   map[string]Tenant
}

// Keyring resolves presented API keys to tenants. It is safe for concurrent
// use; Reload replaces the table atomically. Token buckets are keyed by
// tenant ID and persist across reloads.
type Keyring struct {
	path  string
	table atomic.Pointer[keyTable]

	mu      sync.Mutex // guards reload and buckets
	buckets map[string]*bucket
}

// Load reads the key file at path and returns a ready Keyring.
func Load(path string) (*Keyring, error) {
	k := &Keyring{path: path, buckets: make(map[string]*bucket)}
	if err := k.Reload(); err != nil {
		return nil, err
	}
	return k, nil
}

// Reload re-reads the key file and swaps the parsed table in atomically.
// On parse error the previous table stays in effect. Buckets for tenants
// that disappeared are pruned; surviving tenants keep their bucket state.
func (k *Keyring) Reload() error {
	k.mu.Lock()
	defer k.mu.Unlock()
	f, err := os.Open(k.path)
	if err != nil {
		return err
	}
	defer f.Close()
	t, err := parse(f)
	if err != nil {
		return fmt.Errorf("%s: %w", k.path, err)
	}
	k.table.Store(t)
	for id := range k.buckets {
		if _, ok := t.byID[id]; !ok {
			delete(k.buckets, id)
		}
	}
	return nil
}

func parse(f *os.File) (*keyTable, error) {
	t := &keyTable{byHash: make(map[string]Tenant), byID: make(map[string]Tenant)}
	sc := bufio.NewScanner(f)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		fields := strings.Fields(text)
		if len(fields) < 2 {
			return nil, fmt.Errorf("line %d: want \"<id> <sha256-hex> [k=v...]\"", line)
		}
		tn := Tenant{ID: fields[0]}
		if !ValidID(tn.ID) {
			return nil, fmt.Errorf("line %d: tenant id %q: only [A-Za-z0-9._-] allowed", line, tn.ID)
		}
		hash := strings.ToLower(fields[1])
		if len(hash) != 64 {
			return nil, fmt.Errorf("line %d: key hash must be 64 hex chars (sha256)", line)
		}
		if _, err := hex.DecodeString(hash); err != nil {
			return nil, fmt.Errorf("line %d: key hash is not hex: %v", line, err)
		}
		for _, kv := range fields[2:] {
			key, val, ok := strings.Cut(kv, "=")
			if !ok {
				return nil, fmt.Errorf("line %d: option %q: want key=value", line, kv)
			}
			if err := tn.setOption(key, val); err != nil {
				return nil, fmt.Errorf("line %d: %v", line, err)
			}
		}
		if _, dup := t.byID[tn.ID]; dup {
			return nil, fmt.Errorf("line %d: duplicate tenant id %q", line, tn.ID)
		}
		if _, dup := t.byHash[hash]; dup {
			return nil, fmt.Errorf("line %d: duplicate key hash", line)
		}
		t.byID[tn.ID] = tn
		t.byHash[hash] = tn
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return t, nil
}

func (t *Tenant) setOption(key, val string) error {
	switch key {
	case "rate":
		f, err := strconv.ParseFloat(val, 64)
		if err != nil || f < 0 {
			return fmt.Errorf("rate=%q: want non-negative number", val)
		}
		t.Rate = f
		return nil
	case "weight", "burst", "cells", "queue", "waiters":
		n, err := strconv.Atoi(val)
		if err != nil || n < 0 {
			return fmt.Errorf("%s=%q: want non-negative integer", key, val)
		}
		switch key {
		case "weight":
			t.Weight = n
		case "burst":
			t.Burst = n
		case "cells":
			t.MaxCells = n
		case "queue":
			t.QueueSize = n
		case "waiters":
			t.MaxWaiters = n
		}
		return nil
	default:
		return fmt.Errorf("unknown option %q", key)
	}
}

// ValidID reports whether id is a legal tenant identifier. The charset
// excludes "/" so tenant-scoped graph names ("<id>/<name>") cannot collide
// across tenants.
func ValidID(id string) bool {
	if id == "" {
		return false
	}
	for _, r := range id {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9':
		case r == '.' || r == '_' || r == '-':
		default:
			return false
		}
	}
	return true
}

// Lookup resolves a presented raw API key. The second result is false when
// the key matches no tenant.
func (k *Keyring) Lookup(rawKey string) (Tenant, bool) {
	t := k.table.Load()
	if t == nil {
		return Tenant{}, false
	}
	tn, ok := t.byHash[HashKey(rawKey)]
	return tn, ok
}

// ByID resolves a tenant by identifier (for limit lookups after auth).
func (k *Keyring) ByID(id string) (Tenant, bool) {
	t := k.table.Load()
	if t == nil {
		return Tenant{}, false
	}
	tn, ok := t.byID[id]
	return tn, ok
}

// Len returns the number of configured tenants.
func (k *Keyring) Len() int {
	t := k.table.Load()
	if t == nil {
		return 0
	}
	return len(t.byID)
}

// IDs returns the configured tenant identifiers (unordered).
func (k *Keyring) IDs() []string {
	t := k.table.Load()
	if t == nil {
		return nil
	}
	ids := make([]string, 0, len(t.byID))
	for id := range t.byID {
		ids = append(ids, id)
	}
	return ids
}

// Allow consumes one token from id's rate bucket, reporting whether the
// request may proceed. Tenants with Rate == 0 are unlimited. Unknown
// tenants are allowed (auth has already vouched for them; a reload race
// should not 429 an in-flight request).
func (k *Keyring) Allow(id string) bool {
	tn, ok := k.ByID(id)
	if !ok || tn.Rate <= 0 {
		return true
	}
	k.mu.Lock()
	b := k.buckets[id]
	if b == nil {
		b = newBucket(tn.Rate, tn.effectiveBurst())
		k.buckets[id] = b
	}
	k.mu.Unlock()
	return b.allow(time.Now(), tn.Rate, float64(tn.effectiveBurst()))
}

func (t Tenant) effectiveBurst() int {
	if t.Burst > 0 {
		return t.Burst
	}
	if b := int(t.Rate + 0.999999); b > 1 {
		return b
	}
	return 1
}

// bucket is a standard token bucket. Rate and burst are passed on each
// allow call so a key-file reload retunes the bucket without resetting its
// level.
type bucket struct {
	mu     sync.Mutex
	tokens float64
	last   time.Time
}

func newBucket(rate float64, burst int) *bucket {
	return &bucket{tokens: float64(burst)}
}

func (b *bucket) allow(now time.Time, rate, burst float64) bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	if !b.last.IsZero() {
		b.tokens += now.Sub(b.last).Seconds() * rate
	}
	b.last = now
	if b.tokens > burst {
		b.tokens = burst
	}
	if b.tokens < 1 {
		return false
	}
	b.tokens--
	return true
}
