package sweep

// Restart-equivalence acceptance test for the durable coordinator: a full
// 6-experiment sweep is submitted to a WAL-backed single-node server, the
// server is SIGKILLed (both logs stop persisting instantly, the process
// image is discarded) at three progress points — right after the submits,
// at roughly half the cells done, and after everything finished — and each
// time a fresh incarnation reopens the same -waldir/-spilldir. The CSVs
// collected from the final incarnation must be byte-identical to an
// uninterrupted run's.

import (
	"bytes"
	"context"
	"net/http/httptest"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"repro/internal/httpapi"
	"repro/internal/service"
	"repro/internal/store"
	"repro/internal/wal"
)

// durableStack is one server incarnation over a fixed pair of WAL
// directories, with handles on its logs so the test can SIGKILL it.
type durableStack struct {
	st  *store.Store
	svc *service.Service
	b   *service.Batches
	ts  *httptest.Server
	c   *httpapi.Client

	mu   sync.Mutex
	logs []*wal.Log
}

func openDurable(t *testing.T, root string) *durableStack {
	t.Helper()
	ds := &durableStack{}
	hooks := &wal.TestHooks{OnOpen: func(l *wal.Log) {
		ds.mu.Lock()
		ds.logs = append(ds.logs, l)
		ds.mu.Unlock()
	}}
	st, err := store.Open(store.Config{
		MaxGraphs: 1024,
		WALDir:    filepath.Join(root, "store-wal"),
		SpillDir:  filepath.Join(root, "spill"),
		WALHooks:  hooks,
	})
	if err != nil {
		t.Fatal(err)
	}
	svc := service.New(service.Config{Workers: 4, QueueSize: 1024})
	b, err := service.OpenBatches(svc, st, service.BatchConfig{
		WALDir:   filepath.Join(root, "batch-wal"),
		WALHooks: hooks,
	})
	if err != nil {
		t.Fatal(err)
	}
	ds.st, ds.svc, ds.b = st, svc, b
	ds.ts = httptest.NewServer(httpapi.NewHandler(svc, st, b))
	ds.c = httpapi.NewClient(ds.ts.URL, nil)
	return ds
}

// kill simulates SIGKILL: every log stops persisting mid-flight (buffered
// bytes lost, flushed bytes kept), then the process image is discarded. The
// graceful-drain paths still run — against dead logs they change nothing on
// disk, exactly like the real signal.
func (ds *durableStack) kill(t *testing.T) {
	t.Helper()
	ds.mu.Lock()
	for _, l := range ds.logs {
		l.Kill()
	}
	ds.mu.Unlock()
	ds.discard()
}

// shutdown is the clean SIGTERM path: drain, snapshot, close.
func (ds *durableStack) shutdown(t *testing.T) {
	t.Helper()
	ds.ts.Close()
	ds.svc.Close()
	if err := ds.b.Close(); err != nil {
		t.Fatal(err)
	}
	if err := ds.st.Close(); err != nil {
		t.Fatal(err)
	}
}

func (ds *durableStack) discard() {
	ds.ts.Close()
	ds.svc.Close()
	ds.b.Close()
	ds.st.Close()
}

// waitProgress polls until at least frac of all submitted cells are done.
func waitProgress(t *testing.T, c *httpapi.Client, subs []*Submission, frac float64) {
	t.Helper()
	ctx := context.Background()
	deadline := time.Now().Add(120 * time.Second)
	for time.Now().Before(deadline) {
		done, total := 0, 0
		for _, s := range subs {
			v, err := c.GetBatch(ctx, s.BatchID, 0)
			if err != nil {
				t.Fatalf("poll %s: %v", s.BatchID, err)
			}
			done += v.Done
			total += v.Total
		}
		if total > 0 && float64(done) >= frac*float64(total) {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("sweep never reached %.0f%% done", frac*100)
}

func TestSweepRestartEquivalence(t *testing.T) {
	ctx := context.Background()
	const trials = 1
	exps := Experiments()

	// Reference CSVs from an uninterrupted, non-durable server.
	refSvc := service.New(service.Config{Workers: 4, QueueSize: 1024})
	defer refSvc.Close()
	refStore := store.New(store.Config{MaxGraphs: 1024})
	refTS := httptest.NewServer(httpapi.NewHandler(refSvc, refStore, service.NewBatches(refSvc, refStore, service.BatchConfig{})))
	defer refTS.Close()
	refClient := httpapi.NewClient(refTS.URL, nil)
	ref := map[string][]byte{}
	for _, exp := range exps {
		p, err := Build(exp, trials)
		if err != nil {
			t.Fatal(err)
		}
		if err := Execute(ctx, refClient, exp, p); err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := p.CSV(&buf); err != nil {
			t.Fatal(err)
		}
		ref[exp] = buf.Bytes()
	}

	// Incarnation 1: submit every experiment, then die before any collect.
	root := t.TempDir()
	ds := openDurable(t, root)
	plans := map[string]*Plan{}
	var subs []*Submission
	for _, exp := range exps {
		p, err := Build(exp, trials)
		if err != nil {
			t.Fatal(err)
		}
		s, err := Submit(ctx, ds.c, exp, p)
		if err != nil {
			t.Fatal(err)
		}
		plans[exp] = p
		subs = append(subs, s)
	}
	ds.kill(t) // progress point 1: submits durable, little else

	// Incarnation 2: batches resume; die again around half done.
	ds = openDurable(t, root)
	waitProgress(t, ds.c, subs, 0.5)
	ds.kill(t) // progress point 2: mid-batch

	// Incarnation 3: resume the tail; die after everything finished, so the
	// final incarnation must restore (not re-run) completed batches.
	ds = openDurable(t, root)
	waitProgress(t, ds.c, subs, 1.0)
	ds.kill(t) // progress point 3: all cells done

	// Final incarnation: collect every sweep and compare byte for byte.
	ds = openDurable(t, root)
	for _, s := range subs {
		if err := s.Collect(ctx, ds.c); err != nil {
			t.Fatalf("collect %s after restarts: %v", s.Exp, err)
		}
		var buf bytes.Buffer
		if err := plans[s.Exp].CSV(&buf); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(buf.Bytes(), ref[s.Exp]) {
			t.Errorf("%s: restart-resumed CSV differs from uninterrupted run\nwant:\n%s\ngot:\n%s",
				s.Exp, ref[s.Exp], buf.Bytes())
		}
	}
	// No graphs may linger: Collect deleted the sweep uploads, and resumed
	// batches released their pins.
	if n := ds.st.Len(); n != 0 {
		t.Fatalf("%d graphs left in the store after all sweeps collected", n)
	}
	ds.shutdown(t)
}
