package sweep

// Acceptance tests for the multi-tenant front door's streaming and drain
// contracts: (1) for every §5 experiment, the rows Collect emits over the
// incremental result stream are byte-identical to CollectTerminal's
// long-poll rendering of the finished batch; (2) a graceful drain
// (SIGTERM-style: stop admission, finish in-flight cells, checkpoint, clean
// close) mid-sweep resumes from the WAL on restart and still produces CSVs
// byte-identical to an uninterrupted run.

import (
	"bytes"
	"context"
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/httpapi"
	"repro/internal/service"
	"repro/internal/store"
)

// TestSweepStreamedEqualsTerminal runs each experiment twice against the
// same server — once collected over the stream, once over the terminal
// long-poll — and requires the two CSVs to match byte for byte.
func TestSweepStreamedEqualsTerminal(t *testing.T) {
	ctx := context.Background()
	const trials = 1

	svc := service.New(service.Config{Workers: 4, QueueSize: 1024})
	defer svc.Close()
	st := store.New(store.Config{MaxGraphs: 1024})
	ts := httptest.NewServer(httpapi.NewHandler(svc, st, service.NewBatches(svc, st, service.BatchConfig{})))
	defer ts.Close()
	c := httpapi.NewClient(ts.URL, nil)

	for _, exp := range Experiments() {
		// Terminal reference first: sweep graph names are deterministic per
		// experiment, so the runs must be sequential (each Collect* cleans up
		// its uploads before the next Submit reuses the names).
		pTerm, err := Build(exp, trials)
		if err != nil {
			t.Fatal(err)
		}
		sTerm, err := Submit(ctx, c, exp, pTerm)
		if err != nil {
			t.Fatalf("%s: submit (terminal): %v", exp, err)
		}
		if err := sTerm.CollectTerminal(ctx, c); err != nil {
			t.Fatalf("%s: terminal collect: %v", exp, err)
		}
		var want bytes.Buffer
		if err := pTerm.CSV(&want); err != nil {
			t.Fatal(err)
		}

		pStream, err := Build(exp, trials)
		if err != nil {
			t.Fatal(err)
		}
		sStream, err := Submit(ctx, c, exp, pStream)
		if err != nil {
			t.Fatalf("%s: submit (stream): %v", exp, err)
		}
		if err := sStream.Collect(ctx, c); err != nil {
			t.Fatalf("%s: streamed collect: %v", exp, err)
		}
		var got bytes.Buffer
		if err := pStream.CSV(&got); err != nil {
			t.Fatal(err)
		}

		if !bytes.Equal(got.Bytes(), want.Bytes()) {
			t.Errorf("%s: streamed CSV differs from terminal CSV\nwant:\n%s\ngot:\n%s",
				exp, want.Bytes(), got.Bytes())
		}
	}
	if n := st.Len(); n != 0 {
		t.Fatalf("%d graphs left in the store after all sweeps collected", n)
	}
}

// drain is the graceful SIGTERM path on a durable stack: stop admission and
// wait for in-flight cells (bounded), then snapshot and close cleanly.
// Queued-but-unstarted cells are abandoned; the WAL re-runs them on reopen.
func (ds *durableStack) drain(t *testing.T, d time.Duration) {
	t.Helper()
	if !ds.svc.Drain(d) {
		t.Fatalf("drain did not settle in-flight work within %s", d)
	}
	ds.shutdown(t)
}

// TestSweepDrainResume drains a durable server mid-sweep (the SIGTERM path:
// in-flight cells finish and are journaled, queued cells are abandoned),
// restarts it on the same WAL root, and requires the resumed sweep's CSVs to
// be byte-identical to an uninterrupted run — and the streamed Collect to
// resume its cursor across the restart.
func TestSweepDrainResume(t *testing.T) {
	ctx := context.Background()
	const trials = 1
	exps := Experiments()

	// Reference CSVs from an uninterrupted, non-durable server.
	refSvc := service.New(service.Config{Workers: 4, QueueSize: 1024})
	defer refSvc.Close()
	refStore := store.New(store.Config{MaxGraphs: 1024})
	refTS := httptest.NewServer(httpapi.NewHandler(refSvc, refStore, service.NewBatches(refSvc, refStore, service.BatchConfig{})))
	defer refTS.Close()
	refClient := httpapi.NewClient(refTS.URL, nil)
	ref := map[string][]byte{}
	for _, exp := range exps {
		p, err := Build(exp, trials)
		if err != nil {
			t.Fatal(err)
		}
		if err := Execute(ctx, refClient, exp, p); err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := p.CSV(&buf); err != nil {
			t.Fatal(err)
		}
		ref[exp] = buf.Bytes()
	}

	// Incarnation 1: submit everything, let it get partway, then drain.
	root := t.TempDir()
	ds := openDurable(t, root)
	plans := map[string]*Plan{}
	var subs []*Submission
	for _, exp := range exps {
		p, err := Build(exp, trials)
		if err != nil {
			t.Fatal(err)
		}
		s, err := Submit(ctx, ds.c, exp, p)
		if err != nil {
			t.Fatal(err)
		}
		plans[exp] = p
		subs = append(subs, s)
	}
	waitProgress(t, ds.c, subs, 0.3)
	ds.drain(t, 60*time.Second)

	// Incarnation 2: the WAL restores settled cells under their original
	// indices and re-runs the abandoned tail; collect over the stream and
	// compare byte for byte.
	ds = openDurable(t, root)
	waitProgress(t, ds.c, subs, 1.0)
	for _, s := range subs {
		if err := s.Collect(ctx, ds.c); err != nil {
			t.Fatalf("collect %s after drain+restart: %v", s.Exp, err)
		}
		var buf bytes.Buffer
		if err := plans[s.Exp].CSV(&buf); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(buf.Bytes(), ref[s.Exp]) {
			t.Errorf("%s: drain-resumed CSV differs from uninterrupted run\nwant:\n%s\ngot:\n%s",
				s.Exp, ref[s.Exp], buf.Bytes())
		}
	}
	if n := ds.st.Len(); n != 0 {
		t.Fatalf("%d graphs left in the store after all sweeps collected", n)
	}
	ds.shutdown(t)
}
