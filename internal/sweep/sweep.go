// Package sweep builds and executes the CSV parameter sweeps of DESIGN.md
// §5 against the batch API. Each experiment is a Plan: a table layout plus
// an ordered list of runs, executed by uploading every run's graph to the
// server's named store (fingerprint-deduplicated), submitting one batch of
// explicit cells, streaming its results as they settle (resuming from the
// last received cell on dropped connections — see CollectTerminal for the
// legacy long-poll path), and emitting one row per cell.
//
// The package is shared by cmd/sweep (which renders the CSV to stdout) and
// the internal/cluster tests (which assert that a multi-worker coordinator
// produces byte-identical CSVs to a single-node server), so the CLI and the
// cluster acceptance harness exercise one engine.
//
// Layer (DESIGN.md §2): sweep sits above internal/httpapi (it is a pure
// client of the wire format) and the repro facade (graph construction);
// below cmd/sweep.
//
// Concurrency and ownership: a Plan is single-use and not safe for
// concurrent use; Execute mutates it by filling the table. The httpapi
// client it drives may be shared.
package sweep

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"slices"
	"strings"
	"time"

	"repro"
	"repro/internal/exact"
	"repro/internal/httpapi"
	"repro/internal/stats"
)

// run is one sweep cell: a graph, an algorithm invocation, and the row the
// result turns into.
type run struct {
	g      *repro.Graph
	algo   string
	params httpapi.ParamsRequest
	// emit appends this run's row given the member job's result.
	emit func(t *stats.Table, res *httpapi.JobResult)
}

// Plan is one experiment: a table layout plus its runs in row order.
type Plan struct {
	table *stats.Table
	runs  []run
}

// CSV renders the executed plan's table.
func (p *Plan) CSV(w io.Writer) error { return p.table.CSV(w) }

var experiments = map[string]func(trials int) (*Plan, error){
	"E1": sweepE1,
	"E2": sweepE2,
	"E3": sweepE3,
	"E4": sweepE4,
	"E6": sweepE6,
	"E9": sweepE9,
}

// Experiments returns the experiment IDs, sorted.
func Experiments() []string {
	names := make([]string, 0, len(experiments))
	for name := range experiments {
		names = append(names, name)
	}
	slices.Sort(names)
	return names
}

// Build constructs the named experiment's plan with the given trial count.
func Build(exp string, trials int) (*Plan, error) {
	build, ok := experiments[exp]
	if !ok {
		return nil, fmt.Errorf("sweep: unknown experiment %q (have: %s)",
			exp, strings.Join(Experiments(), ", "))
	}
	return build(trials)
}

// Submission is an in-flight sweep: the uploaded graph names, the submitted
// batch ID, and the plan waiting for its rows. Everything it references
// server-side (the named graphs, the batch) is addressed by durable IDs, so
// Collect may run against a different client — including one pointed at a
// server that restarted from its WAL in between.
type Submission struct {
	// Exp is the experiment ID the submission was built from.
	Exp string
	// BatchID is the server-assigned batch handle Collect polls.
	BatchID string
	names   []string
	plan    *Plan
}

// Submit uploads every run's graph to the store (identical graphs
// deduplicate server-side) and submits one batch of explicit cells in row
// order. On error the uploads are cleaned up before returning.
func Submit(ctx context.Context, c *httpapi.Client, exp string, p *Plan) (*Submission, error) {
	s := &Submission{Exp: exp, plan: p}
	cells := make([]httpapi.BatchCell, len(p.runs))
	for i, r := range p.runs {
		var buf bytes.Buffer
		if err := repro.WriteGraph(&buf, r.g); err != nil {
			s.cleanup(ctx, c)
			return nil, err
		}
		name := fmt.Sprintf("sweep-%s-r%03d", exp, i)
		if _, err := c.PutGraph(ctx, name, buf.String()); err != nil {
			s.cleanup(ctx, c)
			return nil, fmt.Errorf("uploading graph for cell %d: %w", i, err)
		}
		s.names = append(s.names, name)
		params := r.params
		cells[i] = httpapi.BatchCell{Graph: name, Algo: r.algo, Params: &params}
	}
	b, err := c.SubmitBatch(ctx, httpapi.BatchRequest{Cells: cells})
	if err != nil {
		s.cleanup(ctx, c)
		return nil, fmt.Errorf("submitting batch: %w", err)
	}
	s.BatchID = b.ID
	return s, nil
}

// collectRetries bounds how many times Collect re-opens a dropped result
// stream before giving up. Each reconnect resumes from the cursor, so a
// retry never re-waits for cells already received.
const collectRetries = 5

// Collect consumes the submission's batch incrementally over the result
// stream (GET /v1/batches/{id}/stream) and emits the plan's rows as cells
// settle, then deletes the uploaded graphs. A dropped connection resumes
// from the last received cell index, so rows survive server restarts and
// proxy timeouts without re-polling from scratch. c need not be the client
// Submit used — only the same logical server (or its restarted incarnation,
// which recovers the batch and the graphs from its WAL).
//
// The rows Collect emits are byte-identical to CollectTerminal's: the
// stream replays every settled cell in index order with the same rendering
// as the terminal GET.
func (s *Submission) Collect(ctx context.Context, c *httpapi.Client) (err error) {
	defer func() {
		if cerr := s.cleanup(ctx, c); cerr != nil && err == nil {
			err = cerr
		}
	}()
	cells := make([]httpapi.BatchCellView, len(s.plan.runs))
	seen := make([]bool, len(s.plan.runs))
	from := 0
	for attempt := 0; ; attempt++ {
		_, err = c.StreamBatch(ctx, s.BatchID, from, func(cv httpapi.BatchCellView) error {
			if cv.Index < 0 || cv.Index >= len(cells) {
				return fmt.Errorf("stream returned out-of-range cell index %d (batch has %d)", cv.Index, len(cells))
			}
			cells[cv.Index] = cv
			seen[cv.Index] = true
			if cv.Index+1 > from {
				from = cv.Index + 1
			}
			return nil
		})
		if err == nil {
			break
		}
		if ctx.Err() != nil || attempt >= collectRetries {
			return fmt.Errorf("streaming batch %s: %w", s.BatchID, err)
		}
		select { // transient drop: back off, then resume from the cursor
		case <-ctx.Done():
			return ctx.Err()
		case <-time.After(200 * time.Millisecond):
		}
	}
	for i, cell := range cells {
		if !seen[i] {
			return fmt.Errorf("stream ended without cell %d", i)
		}
		if cell.State != "done" {
			return fmt.Errorf("cell %d (%s on %s): %s: %s",
				cell.Index, cell.Algo, cell.Graph, cell.State, cell.Error)
		}
	}
	for i, cell := range cells {
		s.plan.runs[i].emit(s.plan.table, cell.Result)
	}
	return nil
}

// CollectTerminal is the pre-streaming collection path: long-poll the batch
// until it is terminal and emit every row from the final GET. It is kept as
// the reference for the streamed-equals-terminal acceptance tests and for
// clients behind proxies that buffer streaming responses.
func (s *Submission) CollectTerminal(ctx context.Context, c *httpapi.Client) (err error) {
	defer func() {
		if cerr := s.cleanup(ctx, c); cerr != nil && err == nil {
			err = cerr
		}
	}()
	fin, err := c.WaitBatch(ctx, s.BatchID, 10*time.Minute)
	if err != nil {
		return err
	}
	if fin.Done != fin.Total {
		for _, cell := range fin.Cells {
			if cell.State != "done" {
				return fmt.Errorf("cell %d (%s on %s): %s: %s",
					cell.Index, cell.Algo, cell.Graph, cell.State, cell.Error)
			}
		}
	}
	for i, cell := range fin.Cells {
		s.plan.runs[i].emit(s.plan.table, cell.Result)
	}
	return nil
}

// cleanup deletes the uploaded graphs. The uploads are per-sweep scratch:
// delete them however this sweep ends, or a failed run would leak
// deterministic sweep-* names into a remote server's store and 409 every
// later run that maps the same name to a different graph.
func (s *Submission) cleanup(ctx context.Context, c *httpapi.Client) error {
	var err error
	for _, name := range s.names {
		if derr := c.DeleteGraph(ctx, name); derr != nil && err == nil {
			err = fmt.Errorf("cleaning up %s: %w", name, derr)
		}
	}
	s.names = nil
	return err
}

// Execute drives a plan through the batch API end to end: Submit, then
// Collect on the same client. Canceling ctx abandons the in-flight round
// trip; cleanup still runs.
func Execute(ctx context.Context, c *httpapi.Client, exp string, p *Plan) error {
	s, err := Submit(ctx, c, exp, p)
	if err != nil {
		return err
	}
	return s.Collect(ctx, c)
}

func sweepE1(trials int) (*Plan, error) {
	p := &Plan{table: stats.NewTable("n", "W", "trial", "rounds", "weight")}
	for _, n := range []int{64, 128, 256, 512} {
		for _, w := range []int64{1, 16, 256, 4096} {
			for k := 0; k < trials; k++ {
				g := repro.GNP(n, 8/float64(n), uint64(n)+uint64(w))
				repro.AssignUniformNodeWeights(g, w, uint64(w)+uint64(k))
				n, w, k := n, w, k
				p.runs = append(p.runs, run{
					g: g, algo: "maxis", params: httpapi.ParamsRequest{Seed: uint64(k)},
					emit: func(t *stats.Table, res *httpapi.JobResult) {
						t.AddRow(n, w, k, res.Cost.Rounds, res.Weight)
					},
				})
			}
		}
	}
	return p, nil
}

func sweepE2(trials int) (*Plan, error) {
	p := &Plan{table: stats.NewTable("delta", "trial", "rounds", "coloring_rounds_included", "weight")}
	for _, d := range []int{2, 4, 8, 16, 32} {
		for k := 0; k < trials; k++ {
			g, err := repro.RandomRegular(128, d, uint64(d)+uint64(k))
			if err != nil {
				return nil, err
			}
			repro.AssignUniformNodeWeights(g, 512, uint64(d)+7)
			d, k := d, k
			p.runs = append(p.runs, run{
				g: g, algo: "maxis-det", params: httpapi.ParamsRequest{Seed: uint64(k)},
				emit: func(t *stats.Table, res *httpapi.JobResult) {
					t.AddRow(d, k, res.Cost.Rounds, true, res.Weight)
				},
			})
		}
	}
	return p, nil
}

func sweepE3(trials int) (*Plan, error) {
	p := &Plan{table: stats.NewTable("delta", "trial", "rounds", "weight", "greedy_lower_bound")}
	for _, d := range []int{4, 8, 16, 32} {
		for k := 0; k < trials; k++ {
			g, err := repro.RandomRegular(128, d, uint64(d)*3+uint64(k))
			if err != nil {
				return nil, err
			}
			repro.AssignUniformEdgeWeights(g, 512, uint64(d)+11)
			greedy := g.MatchingWeight(exact.GreedyMatching(g))
			d, k := d, k
			p.runs = append(p.runs, run{
				g: g, algo: "fastmwm", params: httpapi.ParamsRequest{Eps: 0.5, Seed: uint64(k)},
				emit: func(t *stats.Table, res *httpapi.JobResult) {
					t.AddRow(d, k, res.Cost.Rounds, res.Weight, greedy)
				},
			})
		}
	}
	return p, nil
}

func sweepE4(trials int) (*Plan, error) {
	p := &Plan{table: stats.NewTable("eps", "trial", "rounds", "matched", "opt")}
	g := repro.GNP(96, 0.06, 77)
	opt := len(exact.MaxCardinalityMatching(g))
	for _, eps := range []float64{1, 0.5, 0.34, 0.25} {
		for k := 0; k < trials; k++ {
			eps, k := eps, k
			p.runs = append(p.runs, run{
				g: g, algo: "oneeps", params: httpapi.ParamsRequest{Eps: eps, Seed: uint64(k)},
				emit: func(t *stats.Table, res *httpapi.JobResult) {
					t.AddRow(eps, k, res.Cost.Rounds, res.Size, opt)
				},
			})
		}
	}
	return p, nil
}

func sweepE6(trials int) (*Plan, error) {
	p := &Plan{table: stats.NewTable("delta_target", "trial", "rounds", "uncovered_fraction")}
	g := repro.GNP(256, 0.03, 9)
	n := g.N()
	for _, delta := range []float64{0.5, 0.2, 0.1, 0.05} {
		for k := 0; k < trials; k++ {
			delta, k := delta, k
			p.runs = append(p.runs, run{
				g: g, algo: "nmis", params: httpapi.ParamsRequest{K: 2, Delta: delta, Seed: uint64(k)},
				emit: func(t *stats.Table, res *httpapi.JobResult) {
					t.AddRow(delta, k, res.Cost.Rounds, float64(res.Uncovered)/float64(n))
				},
			})
		}
	}
	return p, nil
}

func sweepE9(trials int) (*Plan, error) {
	p := &Plan{table: stats.NewTable("delta", "trial", "rounds", "matched", "opt")}
	for _, d := range []int{4, 16, 64} {
		for k := 0; k < trials; k++ {
			g, err := repro.RandomRegular(256, d, uint64(d)+uint64(k)+17)
			if err != nil {
				return nil, err
			}
			opt := len(exact.MaxCardinalityMatching(g))
			d, k := d, k
			p.runs = append(p.runs, run{
				g: g, algo: "proposal", params: httpapi.ParamsRequest{Eps: 0.5, Seed: uint64(k)},
				emit: func(t *stats.Table, res *httpapi.JobResult) {
					t.AddRow(d, k, res.Cost.Rounds, res.Size, opt)
				},
			})
		}
	}
	return p, nil
}
