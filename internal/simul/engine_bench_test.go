package simul_test

// Hot-path benchmarks for the round engine on the three generator families
// the large-n sweeps use (ring, random, bipartite). These exercise exactly
// the per-round machinery — inbox delivery, outbox handling, CONGEST
// accounting — with a trivial automaton, so allocs/op and ns/op changes here
// measure the engine, not any algorithm.

import (
	"fmt"
	"testing"

	"repro/internal/graph"
	"repro/internal/rng"
	"repro/internal/simul"
)

// pulse is a minimal CONGEST-legal message.
type pulse struct{ hop int32 }

func (p pulse) Bits() int { return simul.BitsForRange(int64(p.hop)) + 1 }

// gossip broadcasts for a fixed number of rounds, folding received hops into
// local state so the inbox is actually read.
type gossip struct {
	rounds int
	acc    int64
}

func (a *gossip) Step(ctx *simul.Context, inbox []simul.Envelope) {
	for _, env := range inbox {
		a.acc += int64(env.Msg.(pulse).hop) + int64(env.From&1)
	}
	if ctx.Round() >= a.rounds {
		ctx.Halt(a.acc)
		return
	}
	ctx.Broadcast(pulse{hop: int32(ctx.Round())})
}

func benchGraph(b testing.TB, family string, n int) *graph.Graph {
	b.Helper()
	switch family {
	case "ring":
		return graph.Cycle(n)
	case "random":
		return graph.GNP(n, 8/float64(n), rng.New(uint64(n)))
	case "bipartite":
		g, _ := graph.RandomBipartite(n/2, n/2, 8/float64(n), rng.New(uint64(n)))
		return g
	default:
		b.Fatalf("unknown family %q", family)
		return nil
	}
}

func benchEngine(b *testing.B, family string, n, rounds int, parallel bool) {
	g := benchGraph(b, family, n)
	cfg := simul.Config{Seed: 42, Parallel: parallel}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := simul.Run(g, cfg, func(v int) simul.Automaton {
			return &gossip{rounds: rounds}
		})
		if err != nil {
			b.Fatal(err)
		}
		if res.Metrics.Rounds != rounds+1 {
			b.Fatalf("want %d rounds, got %d", rounds+1, res.Metrics.Rounds)
		}
	}
}

func BenchmarkEngine(b *testing.B) {
	for _, family := range []string{"ring", "random", "bipartite"} {
		for _, n := range []int{1000, 10000} {
			b.Run(fmt.Sprintf("%s/n=%d/seq", family, n), func(b *testing.B) {
				benchEngine(b, family, n, 16, false)
			})
			b.Run(fmt.Sprintf("%s/n=%d/par", family, n), func(b *testing.B) {
				benchEngine(b, family, n, 16, true)
			})
		}
	}
}
