package simul

import (
	"reflect"
	"runtime"
	"testing"

	"repro/internal/graph"
	"repro/internal/rng"
)

// withProcs runs the body with GOMAXPROCS temporarily raised so the tiled
// worker pool actually runs multi-worker even on single-CPU CI machines.
func withProcs(t *testing.T, procs int, body func()) {
	t.Helper()
	old := runtime.GOMAXPROCS(procs)
	defer runtime.GOMAXPROCS(old)
	body()
}

func TestTileByDegree(t *testing.T) {
	star := graph.Star(100) // center has degree 99: one heavy node
	offsets, _, _ := star.CSR()

	t.Run("single-worker-single-tile", func(t *testing.T) {
		tiles := tileByDegree(offsets, star.N(), 1, 64)
		if len(tiles) != 1 || tiles[0].lo != 0 || tiles[0].hi != star.N() {
			t.Fatalf("sequential tiling = %+v, want one [0,%d) tile", tiles, star.N())
		}
	})
	t.Run("partition", func(t *testing.T) {
		for _, tileArcs := range []int{1, 16, 64, 1 << 20} {
			tiles := tileByDegree(offsets, star.N(), 4, tileArcs)
			if len(tiles) < 4 {
				t.Fatalf("tileArcs=%d: %d tiles, want ≥ workers", tileArcs, len(tiles))
			}
			if len(tiles) > star.N() {
				t.Fatalf("tileArcs=%d: %d tiles for %d nodes", tileArcs, len(tiles), star.N())
			}
			lo := 0
			for i, s := range tiles {
				if s.lo != lo || s.hi < s.lo {
					t.Fatalf("tileArcs=%d: tile %d = [%d,%d) does not continue from %d", tileArcs, i, s.lo, s.hi, lo)
				}
				lo = s.hi
			}
			if lo != star.N() {
				t.Fatalf("tileArcs=%d: tiles end at %d, want %d", tileArcs, lo, star.N())
			}
		}
	})
	t.Run("empty-graph", func(t *testing.T) {
		g := mustBuild(t, 0)
		off, _, _ := g.CSR()
		tiles := tileByDegree(off, 0, 4, 64)
		total := 0
		for _, s := range tiles {
			total += s.hi - s.lo
		}
		if total != 0 {
			t.Fatalf("empty graph tiles cover %d nodes", total)
		}
	})
}

func mustBuild(t *testing.T, n int) *graph.Graph {
	t.Helper()
	g, err := graph.NewBuilder(n).Build()
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// runDigest runs the randomized digest automaton from
// TestDeterminismAcrossEngines under an arbitrary engine config.
func runDigest(t *testing.T, g *graph.Graph, cfg Config) []any {
	t.Helper()
	res, err := Run(g, cfg, func(v int) Automaton {
		return automatonFunc(func(ctx *Context, inbox []Envelope) {
			if ctx.Round() < 5 {
				ctx.Broadcast(intMsg{v: ctx.Rand().Intn(1000), bits: 10})
				return
			}
			sum := 0
			for _, e := range inbox {
				sum = sum*31 + e.Msg.(intMsg).v + e.From
			}
			ctx.Halt(sum)
		})
	})
	if err != nil {
		t.Fatal(err)
	}
	return res.Outputs
}

// TestDeterminismAcrossTileConfigs is the engine-scale-up contract: the
// sequential engine, the tiled work-stealing engine (forced multi-worker via
// GOMAXPROCS, with tiles small enough that every phase crosses many tile
// boundaries) and the compressed-neighbor mode must all produce bit-identical
// outputs for a fixed seed.
func TestDeterminismAcrossTileConfigs(t *testing.T) {
	g := graph.GNP(400, 0.05, rng.New(17))
	want := runDigest(t, g, Config{Seed: 99})

	configs := map[string]Config{
		"par-default-tiles": {Seed: 99, Parallel: true},
		"par-tiny-tiles":    {Seed: 99, Parallel: true, TileArcs: 64},
		"par-one-arc-tiles": {Seed: 99, Parallel: true, TileArcs: 1},
		"seq-compressed":    {Seed: 99, CompressedNeighbors: true},
		"par-compressed":    {Seed: 99, Parallel: true, TileArcs: 64, CompressedNeighbors: true},
	}
	withProcs(t, 4, func() {
		for name, cfg := range configs {
			if got := runDigest(t, g, cfg); !reflect.DeepEqual(got, want) {
				t.Fatalf("%s outputs differ from sequential baseline", name)
			}
		}
	})
}

// TestCompressedNeighborsContext pins the Neighbors contract in compressed
// mode: the ctx view must match the CSR exactly during the node's own step,
// and Send/SendNbr must keep working (they consult the same view).
func TestCompressedNeighborsContext(t *testing.T) {
	g := graph.GNP(120, 0.1, rng.New(23))
	for _, parallel := range []bool{false, true} {
		withProcs(t, 4, func() {
			_, err := Run(g, Config{Parallel: parallel, TileArcs: 32, CompressedNeighbors: true}, func(v int) Automaton {
				return automatonFunc(func(ctx *Context, inbox []Envelope) {
					nbrs := ctx.Neighbors()
					want := g.Neighbors(ctx.ID())
					if len(nbrs) != len(want) {
						t.Errorf("node %d: %d neighbors in ctx, %d in CSR", ctx.ID(), len(nbrs), len(want))
					}
					for i := range want {
						if nbrs[i] != want[i] {
							t.Errorf("node %d: neighbor %d is %d, want %d", ctx.ID(), i, nbrs[i], want[i])
						}
					}
					if ctx.Round() == 0 && len(nbrs) > 0 {
						ctx.SendNbr(0, intMsg{v: ctx.ID(), bits: 10})
						return
					}
					ctx.Halt(nil)
				})
			})
			if err != nil {
				t.Fatalf("parallel=%t: %v", parallel, err)
			}
		})
	}
}

// TestTiledMetricsMatchSequential pins the commutative-fold claim: message
// and bit counters must not depend on which worker ran which tile.
func TestTiledMetricsMatchSequential(t *testing.T) {
	g := graph.GNP(300, 0.04, rng.New(31))
	run := func(cfg Config) Metrics {
		res, err := Run(g, cfg, func(v int) Automaton {
			return automatonFunc(func(ctx *Context, inbox []Envelope) {
				if ctx.Round() < 3 {
					ctx.Broadcast(intMsg{v: ctx.ID(), bits: 12})
					return
				}
				ctx.Halt(nil)
			})
		})
		if err != nil {
			t.Fatal(err)
		}
		return res.Metrics
	}
	want := run(Config{Seed: 7})
	withProcs(t, 4, func() {
		for _, tileArcs := range []int{0, 64, 1} {
			got := run(Config{Seed: 7, Parallel: true, TileArcs: tileArcs})
			if got != want {
				t.Fatalf("tileArcs=%d: metrics %+v differ from sequential %+v", tileArcs, got, want)
			}
		}
	})
}

// TestTileArcsValidation: nonsense TileArcs values fall back to the default
// rather than failing or degenerating.
func TestTileArcsValidation(t *testing.T) {
	g := graph.Path(50)
	withProcs(t, 4, func() {
		for _, tileArcs := range []int{-1, 0} {
			res, err := Run(g, Config{Parallel: true, TileArcs: tileArcs}, func(v int) Automaton {
				return automatonFunc(func(ctx *Context, inbox []Envelope) { ctx.Halt(ctx.ID()) })
			})
			if err != nil {
				t.Fatalf("TileArcs=%d: %v", tileArcs, err)
			}
			if len(res.Outputs) != g.N() {
				t.Fatalf("TileArcs=%d: %d outputs", tileArcs, len(res.Outputs))
			}
		}
	})
}
