package simul

import (
	"errors"
	"reflect"
	"testing"

	"repro/internal/graph"
)

// intMsg is a test message carrying one value in [0, n).
type intMsg struct {
	v    int
	bits int
}

func (m intMsg) Bits() int { return m.bits }

// maxFlood computes the maximum node ID in the graph by flooding for diam+1
// rounds; a classic sanity workload for a synchronous engine.
type maxFlood struct {
	best   int
	rounds int
}

func (a *maxFlood) Step(ctx *Context, inbox []Envelope) {
	if ctx.Round() == 0 {
		a.best = ctx.ID()
	}
	for _, e := range inbox {
		if m := e.Msg.(intMsg); m.v > a.best {
			a.best = m.v
		}
	}
	if ctx.Round() == a.rounds {
		ctx.Halt(a.best)
		return
	}
	ctx.Broadcast(intMsg{v: a.best, bits: BitsForRange(int64(ctx.N()))})
}

func TestMaxFloodOnPath(t *testing.T) {
	for _, parallel := range []bool{false, true} {
		g := graph.Path(10)
		res, err := Run(g, Config{Parallel: parallel}, func(v int) Automaton {
			return &maxFlood{rounds: 10}
		})
		if err != nil {
			t.Fatal(err)
		}
		for v := 0; v < g.N(); v++ {
			if res.Outputs[v] != 9 {
				t.Fatalf("parallel=%v: node %d output %v, want 9", parallel, v, res.Outputs[v])
			}
		}
		if res.Metrics.Rounds != 11 {
			t.Fatalf("rounds = %d, want 11", res.Metrics.Rounds)
		}
	}
}

func TestRoundsCountedUntilLastHalt(t *testing.T) {
	// Node v halts at round v: total rounds = n.
	g := graph.Complete(5)
	res, err := Run(g, Config{}, func(v int) Automaton {
		return automatonFunc(func(ctx *Context, inbox []Envelope) {
			if ctx.Round() == ctx.ID() {
				ctx.Halt(ctx.Round())
			}
		})
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Metrics.Rounds != 5 {
		t.Fatalf("rounds = %d, want 5", res.Metrics.Rounds)
	}
}

// automatonFunc adapts a function to the Automaton interface.
type automatonFunc func(ctx *Context, inbox []Envelope)

func (f automatonFunc) Step(ctx *Context, inbox []Envelope) { f(ctx, inbox) }

func TestSendToNonNeighborFails(t *testing.T) {
	g := graph.Path(3) // 0-1-2; 0 and 2 not adjacent
	_, err := Run(g, Config{}, func(v int) Automaton {
		return automatonFunc(func(ctx *Context, inbox []Envelope) {
			if ctx.ID() == 0 {
				ctx.Send(2, intMsg{v: 1, bits: 1})
			}
			ctx.Halt(nil)
		})
	})
	if err == nil {
		t.Fatal("send to non-neighbor did not fail the run")
	}
}

func TestDoubleSendFails(t *testing.T) {
	g := graph.Path(2)
	_, err := Run(g, Config{}, func(v int) Automaton {
		return automatonFunc(func(ctx *Context, inbox []Envelope) {
			if ctx.ID() == 0 {
				ctx.Send(1, intMsg{v: 1, bits: 1})
				ctx.Send(1, intMsg{v: 2, bits: 1})
			}
			ctx.Halt(nil)
		})
	})
	if err == nil {
		t.Fatal("two messages on one edge in one round did not fail the run")
	}
}

func TestCongestBudgetEnforced(t *testing.T) {
	g := graph.Path(2)
	// n=2 -> ceil(log2(3)) = 2 bits; default factor 16 -> budget 32 bits.
	_, err := Run(g, Config{Model: CONGEST}, func(v int) Automaton {
		return automatonFunc(func(ctx *Context, inbox []Envelope) {
			ctx.Broadcast(intMsg{v: 1, bits: 33})
			ctx.Halt(nil)
		})
	})
	if err == nil {
		t.Fatal("oversized CONGEST message did not fail the run")
	}
	// The same message is fine in LOCAL.
	_, err = Run(g, Config{Model: LOCAL}, func(v int) Automaton {
		return automatonFunc(func(ctx *Context, inbox []Envelope) {
			ctx.Broadcast(intMsg{v: 1, bits: 1 << 20})
			ctx.Halt(nil)
		})
	})
	if err != nil {
		t.Fatalf("LOCAL rejected a large message: %v", err)
	}
}

func TestRoundLimit(t *testing.T) {
	g := graph.Path(2)
	_, err := Run(g, Config{MaxRounds: 10}, func(v int) Automaton {
		return automatonFunc(func(ctx *Context, inbox []Envelope) {}) // never halts
	})
	if !errors.Is(err, ErrRoundLimit) {
		t.Fatalf("err = %v, want ErrRoundLimit", err)
	}
}

func TestMessagesToHaltedNodesDropped(t *testing.T) {
	g := graph.Path(2)
	got := make(chan int, 1)
	_, err := Run(g, Config{}, func(v int) Automaton {
		return automatonFunc(func(ctx *Context, inbox []Envelope) {
			switch ctx.ID() {
			case 0:
				// Halt immediately; messages sent to us later must vanish.
				ctx.Halt(nil)
			case 1:
				if ctx.Round() < 3 {
					ctx.Send(0, intMsg{v: ctx.Round(), bits: 4})
					return
				}
				got <- len(inbox)
				ctx.Halt(nil)
			}
		})
	})
	if err != nil {
		t.Fatal(err)
	}
	if n := <-got; n != 0 {
		t.Fatalf("halted node's neighbor saw %d stale messages", n)
	}
}

func TestDeterminismAcrossEngines(t *testing.T) {
	g := graph.Complete(8)
	run := func(parallel bool) []any {
		res, err := Run(g, Config{Seed: 99, Parallel: parallel}, func(v int) Automaton {
			return automatonFunc(func(ctx *Context, inbox []Envelope) {
				// Random behaviour: broadcast random values for 5 rounds,
				// then halt with a digest of everything received.
				if ctx.Round() < 5 {
					ctx.Broadcast(intMsg{v: ctx.Rand().Intn(1000), bits: 10})
					return
				}
				sum := 0
				for _, e := range inbox {
					sum = sum*31 + e.Msg.(intMsg).v + e.From
				}
				ctx.Halt(sum)
			})
		})
		if err != nil {
			t.Fatal(err)
		}
		return res.Outputs
	}
	seq := run(false)
	par := run(true)
	if !reflect.DeepEqual(seq, par) {
		t.Fatalf("sequential and parallel outputs differ:\n%v\n%v", seq, par)
	}
	// And re-running sequentially reproduces exactly.
	if !reflect.DeepEqual(seq, run(false)) {
		t.Fatal("sequential run not reproducible")
	}
}

func TestInboxSortedBySender(t *testing.T) {
	g := graph.Star(6) // center 0
	_, err := Run(g, Config{Parallel: true}, func(v int) Automaton {
		return automatonFunc(func(ctx *Context, inbox []Envelope) {
			if ctx.Round() == 0 {
				if ctx.ID() != 0 {
					ctx.Send(0, intMsg{v: ctx.ID(), bits: 4})
				}
				return
			}
			if ctx.ID() == 0 {
				last := -1
				for _, e := range inbox {
					if e.From <= last {
						t.Errorf("inbox not sorted by sender: %d after %d", e.From, last)
					}
					last = e.From
				}
			}
			ctx.Halt(nil)
		})
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestMetricsAccounting(t *testing.T) {
	g := graph.Path(3)
	res, err := Run(g, Config{}, func(v int) Automaton {
		return automatonFunc(func(ctx *Context, inbox []Envelope) {
			if ctx.Round() == 0 {
				ctx.Broadcast(intMsg{v: 0, bits: 5})
				return
			}
			ctx.Halt(nil)
		})
	})
	if err != nil {
		t.Fatal(err)
	}
	// Round 0: node 0 and 2 send 1 msg each, node 1 sends 2. Total 4.
	if res.Metrics.Messages != 4 {
		t.Fatalf("messages = %d, want 4", res.Metrics.Messages)
	}
	if res.Metrics.TotalBits != 20 || res.Metrics.MaxMessageBits != 5 {
		t.Fatalf("bits = %d max = %d", res.Metrics.TotalBits, res.Metrics.MaxMessageBits)
	}
	if res.Metrics.Rounds != 2 {
		t.Fatalf("rounds = %d, want 2", res.Metrics.Rounds)
	}
}

func TestRoundLogRecording(t *testing.T) {
	g := graph.Path(4)
	res, err := Run(g, Config{RecordRoundLog: true}, func(v int) Automaton {
		return automatonFunc(func(ctx *Context, inbox []Envelope) {
			if ctx.Round() >= ctx.ID() {
				ctx.Halt(nil)
			}
		})
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.RoundLog) != res.Metrics.Rounds {
		t.Fatalf("round log has %d entries, want %d", len(res.RoundLog), res.Metrics.Rounds)
	}
	if res.RoundLog[0].Active != 4 || res.RoundLog[3].Active != 1 {
		t.Fatalf("active counts wrong: %+v", res.RoundLog)
	}
}

func TestEmptyGraph(t *testing.T) {
	res, err := Run(graph.NewBuilder(0).MustBuild(), Config{}, func(v int) Automaton {
		t.Fatal("build called for empty graph")
		return nil
	})
	if err != nil || res.Metrics.Rounds != 0 {
		t.Fatalf("empty graph: res=%+v err=%v", res, err)
	}
}

func TestCeilLog2(t *testing.T) {
	cases := map[int]int{1: 0, 2: 1, 3: 2, 4: 2, 5: 3, 8: 3, 9: 4, 1024: 10, 1025: 11}
	for x, want := range cases {
		if got := ceilLog2(x); got != want {
			t.Errorf("ceilLog2(%d) = %d, want %d", x, got, want)
		}
	}
}

func TestBitsForRange(t *testing.T) {
	cases := map[int64]int{0: 1, 1: 1, 2: 2, 3: 2, 4: 3, 255: 8, 256: 9}
	for x, want := range cases {
		if got := BitsForRange(x); got != want {
			t.Errorf("BitsForRange(%d) = %d, want %d", x, got, want)
		}
	}
}
