// Package simul implements the synchronous message-passing models the paper's
// algorithms run in: LOCAL and CONGEST [Pel00].
//
// An execution proceeds in synchronous rounds. In every round each live node
// receives the messages its neighbors sent in the previous round, performs
// arbitrary local computation, and sends at most one message per incident
// edge. In the CONGEST model each message is limited to O(log n) bits; the
// engine enforces a budget of BitsFactor·⌈log₂(n+1)⌉ bits per message and
// fails the run if an algorithm exceeds it — this is how the repository
// *checks*, rather than assumes, the paper's CONGEST claims.
//
// Algorithms are written as per-node automata (the Automaton interface).
//
// # Engine
//
// The engine is allocation-free in steady state. Because a node sends at most
// one message per incident edge per round, inboxes and outboxes live in flat
// arenas with one slot per arc (directed edge occurrence) of the graph's CSR
// layout: node v's slots are positions offsets[v]..offsets[v+1]. A message
// from v to u is written directly into u's slot for sender v via the graph's
// precomputed mirror-arc index, so delivery is a slot-addressed store with no
// queueing, no append, and no sorting — slots are ordered by sender ID
// already, which yields the engine's canonical ascending-sender delivery
// order. Each round runs four phases separated by barriers:
//
//	step     every live node consumes its (compacted) inbox and fills its
//	         outbox slots; the consumed inbox slots are cleared
//	collect  errors and halts are folded in deterministically (ascending ID)
//	deliver  outbox slots are copied to the receivers' inbox slots and
//	         cleared; metrics are accumulated per shard
//	compact  each live node's inbox slots are compacted in place to the
//	         prefix of its arena segment, preserving sender order
//
// The parallel engine cuts the node range into contiguous CSR tiles of
// roughly Config.TileArcs arcs each, balanced by degree sum — small enough
// that one tile's slice of the arenas fits in the last-level cache, so each
// phase streams cache-resident slabs instead of striding a graph ≫ LLC — and
// a persistent worker pool claims tiles off a shared counter per phase
// (work stealing, so skewed degree distributions cannot strand a worker).
// Both engines are deterministic for a fixed Config.Seed: every node draws
// randomness from its own rng.Stream, all cross-node effects are
// slot-addressed writes that commute, and per-tile counters fold through
// commutative sums and maxes, so the sequential and parallel engines produce
// identical results regardless of which worker ran which tile.
//
// Layer (DESIGN.md §2, §2b): simul is the bottom execution layer; only
// internal/graph and internal/rng sit below it.
//
// Concurrency and ownership: a Run owns its automata and arenas for the
// duration of the call and is driven from one goroutine; the parallel
// engine's worker pool is internal and barrier-synchronized. Automata are
// confined to their shard within a round and must not retain the inbox
// slice across rounds (message values may be retained; the slice may not).
// Input graphs are read-only and may be shared between concurrent runs.
package simul

import (
	"errors"
	"fmt"
	"math/bits"
	"runtime"
	"slices"
	"sync"
	"sync/atomic"

	"repro/internal/graph"
	"repro/internal/rng"
)

// Model selects the communication model.
type Model int

const (
	// CONGEST limits every message to BitsFactor·⌈log₂(n+1)⌉ bits.
	CONGEST Model = iota
	// LOCAL places no limit on message size.
	LOCAL
)

func (m Model) String() string {
	switch m {
	case CONGEST:
		return "CONGEST"
	case LOCAL:
		return "LOCAL"
	default:
		return fmt.Sprintf("Model(%d)", int(m))
	}
}

// Message is the payload exchanged between nodes. Bits reports the message's
// size for CONGEST accounting; implementations must return a bound on the
// number of bits a real encoding of the message would need.
type Message interface {
	Bits() int
}

// Envelope is a received message together with its sender.
type Envelope struct {
	From int
	Msg  Message
}

// Automaton is the per-node state machine of a distributed algorithm.
//
// Step is called once per round with the messages received at the start of
// that round (those sent by neighbors in the previous round). The automaton
// reacts by updating local state and calling ctx.Send / ctx.Broadcast; it
// terminates by calling ctx.Halt. After Halt, Step is never called again and
// messages addressed to the node are dropped (the node has left the
// computation, as in the paper's "return InIS/NotInIS"). The inbox slice is
// only valid for the duration of the call: the engine reuses its backing
// arena across rounds. Senders may pool message objects (the agg runtimes
// do), so a received Message and anything it points into are guaranteed
// stable only until the sender's next Step; consume messages in the Step
// they are delivered unless the sending protocol promises otherwise.
type Automaton interface {
	Step(ctx *Context, inbox []Envelope)
}

// Config controls an execution.
type Config struct {
	// Model is CONGEST (default) or LOCAL.
	Model Model
	// BitsFactor is the c in the per-message budget c·⌈log₂(n+1)⌉ used by
	// CONGEST. Zero means the default of 16, which accommodates the paper's
	// data tuples {w(v), status, layer, …} of O(log n + log W) bits with
	// W ≤ poly(n).
	BitsFactor int
	// MaxRounds aborts the run with ErrRoundLimit if some node has not
	// halted after this many rounds. Zero means the default of 1 << 20.
	MaxRounds int
	// Seed seeds the per-node randomness streams.
	Seed uint64
	// Parallel selects the sharded worker-pool engine. The execution is
	// identical to the sequential engine for the same Seed.
	Parallel bool
	// TileArcs sets the approximate arcs per parallel work tile (see the
	// package comment's tiling discussion). Zero selects the default of
	// 1 << 16 — segments of roughly 64K arcs keep a tile's arena slice
	// inside the last-level cache while leaving enough tiles for the
	// work-stealing loop to balance skewed degree distributions. Ignored by
	// the sequential engine, which is always one tile.
	TileArcs int
	// CompressedNeighbors makes the engine's hot loops read adjacency from
	// a delta-varint CompressedAdjacency (built once at Run start) instead
	// of the raw 4-byte-per-arc CSR neighbor array, decoding each node's
	// segment into a per-worker scratch buffer on demand. Results are
	// bit-identical; the point is memory-bound runs on graphs ≫ LLC, where
	// 1–2 bytes per arc of streamed reads beat 4, and mmap-backed graphs,
	// where the raw neighbor pages then stay cold. Costs ~1 varint decode
	// per arc per round of CPU.
	CompressedNeighbors bool
	// RecordRoundLog enables per-round statistics in Result.RoundLog.
	RecordRoundLog bool
}

// ErrRoundLimit is returned (wrapped) when a run exceeds Config.MaxRounds.
var ErrRoundLimit = errors.New("simul: round limit exceeded")

// Metrics aggregates communication costs of a run. The per-round peak
// fields are the quantities ROADMAP's scaling items budget against: total
// counts say how much work a run did, peaks say how wide its widest round
// was. All counters are accumulated unconditionally — they live in the
// per-shard arenas and cost O(1) per round, so there is no observation
// switch that could perturb a run.
type Metrics struct {
	Rounds         int // synchronous rounds executed
	Messages       int // total messages delivered
	TotalBits      int // Σ message bits
	MaxMessageBits int // largest single message
	BitBudget      int // per-message budget enforced (0 in LOCAL)
	// PeakRoundMessages/PeakRoundBits are the largest single-round message
	// count and payload volume; PeakActive is the most nodes stepped in any
	// round; CompactMoves counts inbox envelope slots the compactor
	// relocated (an arena-churn proxy).
	PeakRoundMessages int
	PeakRoundBits     int
	PeakActive        int
	CompactMoves      int
}

// Merge folds o into m for algorithms assembled from several engine runs
// (e.g. a coloring phase followed by a selection phase): counts sum, peaks
// and the message-size maximum take the max, and BitBudget keeps m's value
// when set (the budget is a per-run constant, not a cost).
func (m *Metrics) Merge(o Metrics) {
	m.Rounds += o.Rounds
	m.Messages += o.Messages
	m.TotalBits += o.TotalBits
	m.MaxMessageBits = max(m.MaxMessageBits, o.MaxMessageBits)
	if m.BitBudget == 0 {
		m.BitBudget = o.BitBudget
	}
	m.PeakRoundMessages = max(m.PeakRoundMessages, o.PeakRoundMessages)
	m.PeakRoundBits = max(m.PeakRoundBits, o.PeakRoundBits)
	m.PeakActive = max(m.PeakActive, o.PeakActive)
	m.CompactMoves += o.CompactMoves
}

// RoundStats is one entry of the optional per-round log.
type RoundStats struct {
	Round    int
	Active   int // nodes that stepped this round
	Messages int // messages sent this round
	Bits     int
}

// Result is the outcome of a run.
type Result struct {
	// Outputs[v] is the value node v passed to Halt (nil if the run failed
	// before v halted).
	Outputs []any
	Metrics Metrics
	// RoundLog is populated when Config.RecordRoundLog is set.
	RoundLog []RoundStats
}

// Context is the interface an automaton uses to interact with the network
// during one Step call. It is only valid for the duration of that call.
type Context struct {
	id    int
	round int
	g     *graph.Graph
	rand  *rng.Stream
	// nbrs is this node's CSR neighbor segment; out is the outbox arena view
	// aligned with it (out[i] is the message queued for nbrs[i], nil if
	// none) and outBits the matching metered sizes, so Bits() runs exactly
	// once per message. inbox is the compacted inbox arena view for the
	// current round.
	nbrs      []int32
	out       []Message
	outBits   []int32
	inbox     []Envelope
	halted    bool
	output    any
	err       error
	bitBudget int // 0 = unlimited (LOCAL)
}

// ID returns this node's identifier (0..N-1). Identifiers double as the
// unique O(log n)-bit IDs assumed by the model.
func (c *Context) ID() int { return c.id }

// Round returns the current round number, starting at 0.
func (c *Context) Round() int { return c.round }

// N returns the number of nodes in the network (global knowledge of n is
// standard in CONGEST: it fixes the message-size budget).
func (c *Context) N() int { return c.g.N() }

// Graph returns the communication graph. Automata may read structure
// (neighbors, degrees, weights) but must not mutate it.
func (c *Context) Graph() *graph.Graph { return c.g }

// Neighbors returns this node's neighbor IDs, sorted ascending. The slice is
// a zero-copy CSR view and must not be modified.
func (c *Context) Neighbors() []int32 { return c.nbrs }

// Degree returns this node's degree.
func (c *Context) Degree() int { return len(c.nbrs) }

// Rand returns this node's private randomness stream.
func (c *Context) Rand() *rng.Stream { return c.rand }

// Send transmits m to the neighbor `to` at the end of this round. Sending to
// a non-neighbor, sending twice to the same neighbor in one round, or
// exceeding the CONGEST bit budget aborts the run with an error.
func (c *Context) Send(to int, m Message) {
	if c.err != nil {
		return
	}
	i, ok := 0, false
	if uint(to) < uint(c.g.N()) { // range check before the int32 narrowing
		i, ok = slices.BinarySearch(c.nbrs, int32(to))
	}
	if !ok {
		c.err = fmt.Errorf("simul: round %d: node %d sent to non-neighbor %d", c.round, c.id, to)
		return
	}
	c.sendSlot(i, m)
}

// SendNbr transmits m to the i-th neighbor (Neighbors()[i]) at the end of
// this round. It is Send for callers that already know the neighbor's
// position in the CSR segment — the agg runtimes keep per-arc state aligned
// with it — and skips Send's binary search.
func (c *Context) SendNbr(i int, m Message) {
	if c.err != nil {
		return
	}
	if i < 0 || i >= len(c.nbrs) {
		c.err = fmt.Errorf("simul: round %d: node %d sent to out-of-range neighbor index %d", c.round, c.id, i)
		return
	}
	c.sendSlot(i, m)
}

// sendSlot queues m in outbox slot i (the slot for neighbor c.nbrs[i]). The
// metered size is computed here, once, and stashed in the aligned outBits
// slot for the deliver phase.
func (c *Context) sendSlot(i int, m Message) {
	if m == nil {
		c.err = fmt.Errorf("simul: round %d: node %d sent a nil message", c.round, c.id)
		return
	}
	if c.out[i] != nil {
		c.err = fmt.Errorf("simul: round %d: node %d sent twice to neighbor %d (CONGEST allows one message per edge per round)", c.round, c.id, int(c.nbrs[i]))
		return
	}
	b := m.Bits()
	if c.bitBudget > 0 && b > c.bitBudget {
		c.err = fmt.Errorf("simul: round %d: node %d message of %d bits exceeds CONGEST budget of %d bits", c.round, c.id, b, c.bitBudget)
		return
	}
	c.out[i] = m
	c.outBits[i] = int32(b)
}

// Broadcast sends m to every neighbor. Slots are addressed by index — the
// i-th neighbor's outbox slot is out[i] — and the message is metered once
// for all of them: the same m lands in every slot.
func (c *Context) Broadcast(m Message) {
	if c.err != nil || len(c.nbrs) == 0 {
		return
	}
	if m == nil {
		c.err = fmt.Errorf("simul: round %d: node %d sent a nil message", c.round, c.id)
		return
	}
	b := m.Bits()
	if c.bitBudget > 0 && b > c.bitBudget {
		c.err = fmt.Errorf("simul: round %d: node %d message of %d bits exceeds CONGEST budget of %d bits", c.round, c.id, b, c.bitBudget)
		return
	}
	for i := range c.nbrs {
		if c.out[i] != nil {
			c.err = fmt.Errorf("simul: round %d: node %d sent twice to neighbor %d (CONGEST allows one message per edge per round)", c.round, c.id, int(c.nbrs[i]))
			return
		}
		c.out[i] = m
		c.outBits[i] = int32(b)
	}
}

// Halt terminates this node with the given output. Messages already queued
// this round are still delivered.
func (c *Context) Halt(output any) {
	c.halted = true
	c.output = output
}

// shard is one contiguous node tile plus its per-round counters. The
// counters are the engine's telemetry arena: sized once, written only by
// whichever worker runs the tile (tiles are claimed whole, phases are
// barrier-separated), folded into Metrics at the round barrier. Counter
// folding sums and maxes over tiles, both commutative, so the fold is
// deterministic no matter which worker ran which tile.
type shard struct {
	lo, hi   int // node range [lo, hi)
	active   int
	messages int
	bits     int
	maxBits  int
	moves    int      // inbox slots relocated by compact
	_        [16]byte // pad to a cache line so counters don't false-share
}

// engine holds one run's preallocated state.
type engine struct {
	g       *graph.Graph
	autos   []Automaton
	ctxs    []Context
	offsets []int32
	nbrs    []int32
	mirror  []int32
	// inArena/outArena have one slot per arc. A node's slots are its CSR
	// segment; inbox slots are keyed by sender (mirror-addressed writes),
	// outbox slots by receiver. outBitsArena carries each outbox slot's
	// metered size, computed once at Send time.
	inArena      []Envelope
	outArena     []Message
	outBitsArena []int32
	halted       []bool
	stepped      []bool
	round        int
	tiles        []shard
	workers      int
	nextTile     atomic.Int64
	// ca and scratch implement Config.CompressedNeighbors: scratch[w] is
	// worker w's decode buffer (cap ∆), valid only while that worker is
	// inside one node's loop body.
	ca      *graph.CompressedAdjacency
	scratch [][]int32
}

// nbrSeg returns node v's neighbor segment: the zero-copy CSR view
// normally, or the segment decoded into worker w's scratch buffer in
// compressed mode. The returned slice is only valid until the same worker's
// next nbrSeg call.
func (e *engine) nbrSeg(v, w int) []int32 {
	if e.ca == nil {
		return e.nbrs[e.offsets[v]:e.offsets[v+1]]
	}
	buf := e.ca.AppendNeighbors(v, e.scratch[w][:0])
	e.scratch[w] = buf[:0]
	return buf
}

// Run executes the distributed algorithm defined by build on the graph g.
// build(v) must return the automaton for node v.
func Run(g *graph.Graph, cfg Config, build func(v int) Automaton) (*Result, error) {
	n := g.N()
	if cfg.BitsFactor == 0 {
		cfg.BitsFactor = 16
	}
	if cfg.MaxRounds == 0 {
		cfg.MaxRounds = 1 << 20
	}
	budget := 0
	if cfg.Model == CONGEST {
		budget = cfg.BitsFactor * ceilLog2(n+1)
	}

	res := &Result{
		Outputs: make([]any, n),
		Metrics: Metrics{BitBudget: budget},
	}
	if n == 0 {
		return res, nil
	}

	offsets, nbrs, _ := g.CSR()
	e := &engine{
		g:            g,
		autos:        make([]Automaton, n),
		ctxs:         make([]Context, n),
		offsets:      offsets,
		nbrs:         nbrs,
		mirror:       g.MirrorArcs(),
		inArena:      make([]Envelope, len(nbrs)),
		outArena:     make([]Message, len(nbrs)),
		outBitsArena: make([]int32, len(nbrs)),
		halted:       make([]bool, n),
		stepped:      make([]bool, n),
	}
	master := rng.New(cfg.Seed)
	for v := 0; v < n; v++ {
		e.autos[v] = build(v)
		e.ctxs[v] = Context{
			id:        v,
			g:         g,
			rand:      master.Split(uint64(v)),
			out:       e.outArena[offsets[v]:offsets[v+1]],
			outBits:   e.outBitsArena[offsets[v]:offsets[v+1]],
			inbox:     e.inArena[offsets[v]:offsets[v]],
			bitBudget: budget,
		}
		if !cfg.CompressedNeighbors {
			e.ctxs[v].nbrs = nbrs[offsets[v]:offsets[v+1]]
		}
	}

	e.workers = 1
	if cfg.Parallel {
		e.workers = runtime.GOMAXPROCS(0)
		if e.workers > n {
			e.workers = n
		}
		if e.workers < 1 {
			e.workers = 1
		}
	}
	e.tiles = tileByDegree(offsets, n, e.workers, cfg.TileArcs)
	if cfg.CompressedNeighbors {
		e.ca = g.CompressAdjacency()
		e.scratch = make([][]int32, e.workers)
		for w := range e.scratch {
			e.scratch[w] = make([]int32, 0, g.MaxDegree())
		}
	}

	// Persistent worker pool: workers 1..k-1 wait on their channel; the
	// caller goroutine is worker 0. Each phase resets the shared tile
	// counter and every worker claims tiles from it until the list is
	// drained — work stealing over contiguous CSR ranges, so a worker stuck
	// on a dense tile sheds the rest of the list to its peers. Phase funcs
	// are allocated once, so the per-round cost is a few channel operations
	// and no allocation.
	var wg sync.WaitGroup
	var work []chan func(s *shard, w int)
	if e.workers > 1 {
		work = make([]chan func(s *shard, w int), e.workers)
		for w := 1; w < e.workers; w++ {
			work[w] = make(chan func(s *shard, w int), 1)
			go func(w int) {
				for f := range work[w] {
					e.drainTiles(f, w)
					wg.Done()
				}
			}(w)
		}
		defer func() {
			for w := 1; w < len(work); w++ {
				close(work[w])
			}
		}()
	}
	runPhase := func(f func(s *shard, w int)) {
		if e.workers == 1 {
			for i := range e.tiles {
				f(&e.tiles[i], 0)
			}
			return
		}
		e.nextTile.Store(0)
		wg.Add(e.workers - 1)
		for w := 1; w < e.workers; w++ {
			work[w] <- f
		}
		e.drainTiles(f, 0)
		wg.Wait()
	}
	stepPhase := func(s *shard, w int) { e.step(s, w) }
	deliverPhase := func(s *shard, w int) { e.deliver(s, w) }
	compactPhase := func(s *shard, w int) { e.compact(s, w) }

	liveCount := n
	for e.round = 0; liveCount > 0; e.round++ {
		if e.round >= cfg.MaxRounds {
			return res, fmt.Errorf("%w: %d nodes still live after %d rounds", ErrRoundLimit, liveCount, cfg.MaxRounds)
		}

		runPhase(stepPhase)

		// Collect errors and halts deterministically (ascending node ID).
		for v := 0; v < n; v++ {
			if e.stepped[v] && e.ctxs[v].err != nil {
				return res, e.ctxs[v].err
			}
		}
		for v := 0; v < n; v++ {
			if e.stepped[v] && e.ctxs[v].halted {
				e.halted[v] = true
				res.Outputs[v] = e.ctxs[v].output
				liveCount--
			}
		}

		runPhase(deliverPhase)
		runPhase(compactPhase)

		active, roundMsgs, roundBits := 0, 0, 0
		for i := range e.tiles {
			s := &e.tiles[i]
			active += s.active
			roundMsgs += s.messages
			roundBits += s.bits
			if s.maxBits > res.Metrics.MaxMessageBits {
				res.Metrics.MaxMessageBits = s.maxBits
			}
			res.Metrics.CompactMoves += s.moves
			s.active, s.messages, s.bits, s.maxBits, s.moves = 0, 0, 0, 0, 0
		}
		res.Metrics.Rounds++
		res.Metrics.Messages += roundMsgs
		res.Metrics.TotalBits += roundBits
		res.Metrics.PeakRoundMessages = max(res.Metrics.PeakRoundMessages, roundMsgs)
		res.Metrics.PeakRoundBits = max(res.Metrics.PeakRoundBits, roundBits)
		res.Metrics.PeakActive = max(res.Metrics.PeakActive, active)
		if cfg.RecordRoundLog {
			res.RoundLog = append(res.RoundLog, RoundStats{
				Round: e.round, Active: active, Messages: roundMsgs, Bits: roundBits,
			})
		}
	}
	return res, nil
}

// drainTiles claims tiles off the shared counter and runs f on each as
// worker w until the tile list is exhausted.
func (e *engine) drainTiles(f func(s *shard, w int), w int) {
	for {
		i := int(e.nextTile.Add(1)) - 1
		if i >= len(e.tiles) {
			return
		}
		f(&e.tiles[i], w)
	}
}

// step runs every live node of the tile and clears the consumed inbox slots
// so the arena is ready for the next delivery into this segment.
func (e *engine) step(s *shard, w int) {
	for v := s.lo; v < s.hi; v++ {
		if e.halted[v] {
			continue
		}
		ctx := &e.ctxs[v]
		ctx.round = e.round
		if e.ca != nil {
			// Compressed mode: the context's neighbor view lives in this
			// worker's scratch for exactly this Step call.
			ctx.nbrs = e.nbrSeg(v, w)
		}
		e.autos[v].Step(ctx, ctx.inbox)
		for j := range ctx.inbox {
			ctx.inbox[j] = Envelope{}
		}
		e.stepped[v] = true
		s.active++
	}
}

// deliver copies each stepped node's outbox slots into the receivers' inbox
// slots via the mirror-arc index and accumulates metrics. Each arena slot is
// written by exactly one sender, so tiles never contend.
func (e *engine) deliver(s *shard, w int) {
	for v := s.lo; v < s.hi; v++ {
		if !e.stepped[v] {
			continue
		}
		e.stepped[v] = false
		lo, hi := e.offsets[v], e.offsets[v+1]
		var seg []int32
		for k := lo; k < hi; k++ {
			m := e.outArena[k]
			if m == nil {
				continue
			}
			if seg == nil {
				seg = e.nbrSeg(v, w)
			}
			e.outArena[k] = nil
			b := int(e.outBitsArena[k])
			s.messages++
			s.bits += b
			if b > s.maxBits {
				s.maxBits = b
			}
			if u := seg[k-lo]; !e.halted[u] {
				e.inArena[e.mirror[k]] = Envelope{From: v, Msg: m}
			}
		}
	}
}

// compact packs each live node's delivered messages to the front of its arena
// segment, preserving slot order — slots are keyed by sender position in the
// sorted CSR segment, so the resulting inbox is ordered by ascending sender
// ID, the engine's canonical delivery order.
func (e *engine) compact(s *shard, _ int) {
	for v := s.lo; v < s.hi; v++ {
		if e.halted[v] {
			continue
		}
		seg := e.inArena[e.offsets[v]:e.offsets[v+1]]
		w := 0
		for j := range seg {
			if seg[j].Msg != nil {
				if j != w {
					seg[w] = seg[j]
					seg[j] = Envelope{}
					s.moves++
				}
				w++
			}
		}
		e.ctxs[v].inbox = seg[:w]
	}
}

// defaultTileArcs is the auto tile size: ~64K arcs of arena slots (an
// Envelope + Message + int32 per arc ≈ 2.5 MB) sits comfortably inside a
// last-level cache slice, and on million-node graphs it yields hundreds of
// tiles for the work-stealing loop to balance.
const defaultTileArcs = 1 << 16

// tileByDegree cuts 0..n into contiguous ranges of roughly tileArcs arcs
// each (degree sums, so every tile covers a similar-sized slab of the
// arenas), at least one tile per worker. Sequential runs use a single tile:
// the caller iterates nodes in order either way, and one tile skips the
// claim counter entirely.
func tileByDegree(offsets []int32, n, workers, tileArcs int) []shard {
	if workers <= 1 {
		return []shard{{lo: 0, hi: n}}
	}
	if tileArcs <= 0 {
		tileArcs = defaultTileArcs
	}
	// Weight each node by degree+1 so degree-0 stretches still split.
	weight := int(offsets[n]) + n
	tiles := (weight + tileArcs - 1) / tileArcs
	if tiles < workers {
		tiles = workers
	}
	if tiles > n {
		tiles = n
	}
	// Cut whenever the running weight reaches the remaining average.
	remaining := weight
	out := make([]shard, 0, tiles)
	lo, acc := 0, 0
	for v := 0; v < n; v++ {
		acc += int(offsets[v+1]-offsets[v]) + 1
		left := tiles - len(out)
		if left > 1 && acc >= remaining/left {
			out = append(out, shard{lo: lo, hi: v + 1})
			remaining -= acc
			lo, acc = v+1, 0
		}
	}
	out = append(out, shard{lo: lo, hi: n})
	return out
}

// ceilLog2 returns ⌈log₂ x⌉ for x ≥ 1.
func ceilLog2(x int) int {
	if x <= 1 {
		return 0
	}
	return bits.Len(uint(x - 1))
}

// BitsForRange returns the number of bits needed to transmit a value in
// [0, max]; helper for Message implementations.
func BitsForRange(max int64) int {
	if max <= 0 {
		return 1
	}
	return bits.Len64(uint64(max))
}
