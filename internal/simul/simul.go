// Package simul implements the synchronous message-passing models the paper's
// algorithms run in: LOCAL and CONGEST [Pel00].
//
// An execution proceeds in synchronous rounds. In every round each live node
// receives the messages its neighbors sent in the previous round, performs
// arbitrary local computation, and sends at most one message per incident
// edge. In the CONGEST model each message is limited to O(log n) bits; the
// engine enforces a budget of BitsFactor·⌈log₂(n+1)⌉ bits per message and
// fails the run if an algorithm exceeds it — this is how the repository
// *checks*, rather than assumes, the paper's CONGEST claims.
//
// Algorithms are written as per-node automata (the Automaton interface).
// Two engines execute them: a sequential engine and a goroutine-per-worker
// parallel engine. Both are deterministic for a fixed Config.Seed because
// every node draws randomness from its own rng.Stream and nodes interact only
// via the round barrier.
package simul

import (
	"errors"
	"fmt"
	"math/bits"
	"runtime"
	"sort"
	"sync"

	"repro/internal/graph"
	"repro/internal/rng"
)

// Model selects the communication model.
type Model int

const (
	// CONGEST limits every message to BitsFactor·⌈log₂(n+1)⌉ bits.
	CONGEST Model = iota
	// LOCAL places no limit on message size.
	LOCAL
)

func (m Model) String() string {
	switch m {
	case CONGEST:
		return "CONGEST"
	case LOCAL:
		return "LOCAL"
	default:
		return fmt.Sprintf("Model(%d)", int(m))
	}
}

// Message is the payload exchanged between nodes. Bits reports the message's
// size for CONGEST accounting; implementations must return a bound on the
// number of bits a real encoding of the message would need.
type Message interface {
	Bits() int
}

// Envelope is a received message together with its sender.
type Envelope struct {
	From int
	Msg  Message
}

// Automaton is the per-node state machine of a distributed algorithm.
//
// Step is called once per round with the messages received at the start of
// that round (those sent by neighbors in the previous round). The automaton
// reacts by updating local state and calling ctx.Send / ctx.Broadcast; it
// terminates by calling ctx.Halt. After Halt, Step is never called again and
// messages addressed to the node are dropped (the node has left the
// computation, as in the paper's "return InIS/NotInIS").
type Automaton interface {
	Step(ctx *Context, inbox []Envelope)
}

// Config controls an execution.
type Config struct {
	// Model is CONGEST (default) or LOCAL.
	Model Model
	// BitsFactor is the c in the per-message budget c·⌈log₂(n+1)⌉ used by
	// CONGEST. Zero means the default of 16, which accommodates the paper's
	// data tuples {w(v), status, layer, …} of O(log n + log W) bits with
	// W ≤ poly(n).
	BitsFactor int
	// MaxRounds aborts the run with ErrRoundLimit if some node has not
	// halted after this many rounds. Zero means the default of 1 << 20.
	MaxRounds int
	// Seed seeds the per-node randomness streams.
	Seed uint64
	// Parallel selects the goroutine worker-pool engine. The execution is
	// identical to the sequential engine for the same Seed.
	Parallel bool
	// RecordRoundLog enables per-round statistics in Result.RoundLog.
	RecordRoundLog bool
}

// ErrRoundLimit is returned (wrapped) when a run exceeds Config.MaxRounds.
var ErrRoundLimit = errors.New("simul: round limit exceeded")

// Metrics aggregates communication costs of a run.
type Metrics struct {
	Rounds         int // synchronous rounds executed
	Messages       int // total messages delivered
	TotalBits      int // Σ message bits
	MaxMessageBits int // largest single message
	BitBudget      int // per-message budget enforced (0 in LOCAL)
}

// RoundStats is one entry of the optional per-round log.
type RoundStats struct {
	Round    int
	Active   int // nodes that stepped this round
	Messages int // messages sent this round
	Bits     int
}

// Result is the outcome of a run.
type Result struct {
	// Outputs[v] is the value node v passed to Halt (nil if the run failed
	// before v halted).
	Outputs []any
	Metrics Metrics
	// RoundLog is populated when Config.RecordRoundLog is set.
	RoundLog []RoundStats
}

// Context is the interface an automaton uses to interact with the network
// during one Step call. It is only valid for the duration of that call.
type Context struct {
	id        int
	round     int
	g         *graph.Graph
	rand      *rng.Stream
	outbox    []outMsg
	sentTo    map[int]bool
	halted    bool
	output    any
	err       error
	bitBudget int // 0 = unlimited (LOCAL)
}

type outMsg struct {
	to  int
	msg Message
}

// ID returns this node's identifier (0..N-1). Identifiers double as the
// unique O(log n)-bit IDs assumed by the model.
func (c *Context) ID() int { return c.id }

// Round returns the current round number, starting at 0.
func (c *Context) Round() int { return c.round }

// N returns the number of nodes in the network (global knowledge of n is
// standard in CONGEST: it fixes the message-size budget).
func (c *Context) N() int { return c.g.N() }

// Graph returns the communication graph. Automata may read structure
// (neighbors, degrees, weights) but must not mutate it.
func (c *Context) Graph() *graph.Graph { return c.g }

// Neighbors returns this node's neighbor IDs, sorted ascending.
func (c *Context) Neighbors() []int { return c.g.Neighbors(c.id) }

// Degree returns this node's degree.
func (c *Context) Degree() int { return c.g.Degree(c.id) }

// Rand returns this node's private randomness stream.
func (c *Context) Rand() *rng.Stream { return c.rand }

// Send transmits m to the neighbor `to` at the end of this round. Sending to
// a non-neighbor, sending twice to the same neighbor in one round, or
// exceeding the CONGEST bit budget aborts the run with an error.
func (c *Context) Send(to int, m Message) {
	if c.err != nil {
		return
	}
	if !c.g.HasEdge(c.id, to) {
		c.err = fmt.Errorf("simul: round %d: node %d sent to non-neighbor %d", c.round, c.id, to)
		return
	}
	if c.sentTo[to] {
		c.err = fmt.Errorf("simul: round %d: node %d sent twice to neighbor %d (CONGEST allows one message per edge per round)", c.round, c.id, to)
		return
	}
	if c.bitBudget > 0 {
		if b := m.Bits(); b > c.bitBudget {
			c.err = fmt.Errorf("simul: round %d: node %d message of %d bits exceeds CONGEST budget of %d bits", c.round, c.id, b, c.bitBudget)
			return
		}
	}
	c.sentTo[to] = true
	c.outbox = append(c.outbox, outMsg{to: to, msg: m})
}

// Broadcast sends m to every neighbor.
func (c *Context) Broadcast(m Message) {
	for _, u := range c.Neighbors() {
		c.Send(u, m)
	}
}

// Halt terminates this node with the given output. Messages already queued
// this round are still delivered.
func (c *Context) Halt(output any) {
	c.halted = true
	c.output = output
}

// Run executes the distributed algorithm defined by build on the graph g.
// build(v) must return the automaton for node v.
func Run(g *graph.Graph, cfg Config, build func(v int) Automaton) (*Result, error) {
	n := g.N()
	if cfg.BitsFactor == 0 {
		cfg.BitsFactor = 16
	}
	if cfg.MaxRounds == 0 {
		cfg.MaxRounds = 1 << 20
	}
	budget := 0
	if cfg.Model == CONGEST {
		budget = cfg.BitsFactor * ceilLog2(n+1)
	}

	autos := make([]Automaton, n)
	ctxs := make([]*Context, n)
	master := rng.New(cfg.Seed)
	for v := 0; v < n; v++ {
		autos[v] = build(v)
		ctxs[v] = &Context{
			id:        v,
			g:         g,
			rand:      master.Split(uint64(v)),
			sentTo:    make(map[int]bool),
			bitBudget: budget,
		}
	}

	res := &Result{
		Outputs: make([]any, n),
		Metrics: Metrics{BitBudget: budget},
	}
	inboxes := make([][]Envelope, n)
	nextInboxes := make([][]Envelope, n)
	halted := make([]bool, n)
	liveCount := n
	if liveCount == 0 {
		return res, nil
	}

	workers := 1
	if cfg.Parallel {
		workers = runtime.GOMAXPROCS(0)
		if workers > n {
			workers = n
		}
		if workers < 1 {
			workers = 1
		}
	}

	for round := 0; liveCount > 0; round++ {
		if round >= cfg.MaxRounds {
			return res, fmt.Errorf("%w: %d nodes still live after %d rounds", ErrRoundLimit, liveCount, cfg.MaxRounds)
		}
		// Step all live nodes.
		stepNode := func(v int) {
			ctx := ctxs[v]
			ctx.round = round
			ctx.outbox = ctx.outbox[:0]
			for k := range ctx.sentTo {
				delete(ctx.sentTo, k)
			}
			autos[v].Step(ctx, inboxes[v])
		}
		active := 0
		if workers == 1 {
			for v := 0; v < n; v++ {
				if !halted[v] {
					stepNode(v)
					active++
				}
			}
		} else {
			var wg sync.WaitGroup
			next := make(chan int)
			for w := 0; w < workers; w++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					for v := range next {
						stepNode(v)
					}
				}()
			}
			for v := 0; v < n; v++ {
				if !halted[v] {
					next <- v
					active++
				}
			}
			close(next)
			wg.Wait()
		}

		// Merge outboxes deterministically (ascending sender ID) and collect
		// metrics, halts, and errors.
		roundMsgs, roundBits := 0, 0
		for v := 0; v < n; v++ {
			if halted[v] {
				continue
			}
			ctx := ctxs[v]
			if ctx.err != nil {
				return res, ctx.err
			}
			for _, om := range ctx.outbox {
				b := om.msg.Bits()
				roundMsgs++
				roundBits += b
				if b > res.Metrics.MaxMessageBits {
					res.Metrics.MaxMessageBits = b
				}
				nextInboxes[om.to] = append(nextInboxes[om.to], Envelope{From: v, Msg: om.msg})
			}
		}
		for v := 0; v < n; v++ {
			if halted[v] {
				continue
			}
			if ctxs[v].halted {
				halted[v] = true
				res.Outputs[v] = ctxs[v].output
				liveCount--
			}
		}

		res.Metrics.Rounds++
		res.Metrics.Messages += roundMsgs
		res.Metrics.TotalBits += roundBits
		if cfg.RecordRoundLog {
			res.RoundLog = append(res.RoundLog, RoundStats{
				Round: round, Active: active, Messages: roundMsgs, Bits: roundBits,
			})
		}

		// Swap inboxes; drop messages to halted nodes and sort by sender for
		// a canonical delivery order (parallel mode appends in sender order
		// already, but sorting keeps the contract explicit).
		for v := 0; v < n; v++ {
			inboxes[v] = inboxes[v][:0]
			if halted[v] {
				nextInboxes[v] = nextInboxes[v][:0]
				continue
			}
			inboxes[v], nextInboxes[v] = nextInboxes[v], inboxes[v]
			sort.SliceStable(inboxes[v], func(i, j int) bool {
				return inboxes[v][i].From < inboxes[v][j].From
			})
		}
	}
	return res, nil
}

// ceilLog2 returns ⌈log₂ x⌉ for x ≥ 1.
func ceilLog2(x int) int {
	if x <= 1 {
		return 0
	}
	return bits.Len(uint(x - 1))
}

// BitsForRange returns the number of bits needed to transmit a value in
// [0, max]; helper for Message implementations.
func BitsForRange(max int64) int {
	if max <= 0 {
		return 1
	}
	return bits.Len64(uint64(max))
}
