package simul_test

// Alloc-budget test for the round engine itself (DESIGN.md §2b): extra
// rounds of a run must not allocate — the arenas, contexts and shard
// counters are sized once. The per-round cost is measured as the allocation
// difference between a long and a short run of the same automaton, so the
// O(n) setup (automata, RNG streams, arenas) cancels out.

import (
	"testing"

	"repro/internal/race"
	"repro/internal/simul"
)

func TestEngineSteadyStateAllocs(t *testing.T) {
	if race.Enabled {
		t.Skip("race instrumentation allocates; budgets only hold unraced")
	}
	for _, parallel := range []bool{false, true} {
		name := "seq"
		if parallel {
			name = "par"
		}
		t.Run(name, func(t *testing.T) {
			g := benchGraph(t, "random", 256)
			run := func(rounds int) {
				if _, err := simul.Run(g, simul.Config{Seed: 3, Parallel: parallel}, func(v int) simul.Automaton {
					return &gossip{rounds: rounds}
				}); err != nil {
					t.Fatal(err)
				}
			}
			// The short horizon sits past the warmup rounds in which
			// lazily-grown buffers reach their steady size.
			const short, long = 16, 56
			a := testing.AllocsPerRun(5, func() { run(short) })
			b := testing.AllocsPerRun(5, func() { run(long) })
			per := (b - a) / float64(long-short)
			// The parallel engine's per-round channel operations may allocate
			// scheduler-side; allow a small constant, zero for sequential.
			budget := 0.5
			if parallel {
				budget = 4
			}
			if per > budget {
				t.Errorf("engine (%s) allocates %.2f/round in steady state, budget %v", name, per, budget)
			}
		})
	}
}
