package wal

// White-box: forcing a write error on the active segment requires reaching
// the Log's file handle, so this test lives inside the package.

import (
	"errors"
	"testing"
)

// TestFlushErrorPoisonsLog: a failed flush may have left a torn record in
// the MIDDLE of the active segment, and replay stops a segment at the first
// tear — so after a write error the log must refuse every later append and
// sync (ErrFailed) rather than ack records that recovery would silently
// drop.
func TestFlushErrorPoisonsLog(t *testing.T) {
	l, _, err := Open(t.TempDir(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	if err := l.AppendSync(1, []byte("durable")); err != nil {
		t.Fatal(err)
	}
	if err := l.Append(2, []byte("buffered")); err != nil {
		t.Fatal(err)
	}
	l.f.Close() // the next write to the active segment fails
	if err := l.Sync(); err == nil {
		t.Fatal("Sync over a broken segment reported success")
	}
	if err := l.Append(3, []byte("late")); !errors.Is(err, ErrFailed) {
		t.Fatalf("Append after write error: %v, want ErrFailed", err)
	}
	if err := l.Sync(); !errors.Is(err, ErrFailed) {
		t.Fatalf("Sync after write error: %v, want ErrFailed", err)
	}
	if err := l.AppendSync(4, []byte("late")); !errors.Is(err, ErrFailed) {
		t.Fatalf("AppendSync after write error: %v, want ErrFailed", err)
	}
	if err := l.WriteSnapshot([]byte("{}")); !errors.Is(err, ErrFailed) {
		t.Fatalf("WriteSnapshot after write error: %v, want ErrFailed", err)
	}
}
