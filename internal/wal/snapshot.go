package wal

// Snapshots: a snapshot is the consumer's full state rendered as one opaque
// payload, written with the temp-file + fsync + rename discipline so replay
// sees either the complete snapshot or none of it. A snapshot with sequence
// number S supersedes every record in segments numbered below S; those
// segments are deleted once the rename is durable (and tolerated if a crash
// leaves them behind — replay prefers the snapshot).

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
)

// snapMagic guards against loading a foreign file as a snapshot.
var snapMagic = [4]byte{'R', 'W', 'S', '1'}

// WriteSnapshot atomically persists payload as the log's new snapshot: the
// active segment is sealed and a fresh one opened, the snapshot is written
// beside it temp-file-first, and segments the snapshot supersedes are
// removed. On success RecordsSinceSnapshot resets to zero.
func (l *Log) WriteSnapshot(payload []byte) error {
	if len(payload) > MaxRecordBytes {
		return ErrTooLarge
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if err := l.usableLocked(); err != nil {
		return err
	}
	// Seal the records the snapshot covers, then move appends to a fresh
	// segment: the snapshot's sequence number is the new segment's, so
	// "records ≥ seq" and "snapshot" partition history exactly.
	if err := l.rotateLocked(); err != nil {
		return err
	}
	seq := l.seq

	tmp := l.snapPath(seq) + ".tmp"
	if err := writeSnapshotFile(tmp, payload); err != nil {
		os.Remove(tmp)
		return err
	}
	if l.crash(PointSnapTemp) {
		return ErrCrashed
	}
	if l.crash(PointSnapPreRename) {
		return ErrCrashed
	}
	if err := os.Rename(tmp, l.snapPath(seq)); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("wal: snapshot rename: %w", err)
	}
	syncDir(l.dir)
	l.snapshots.Add(1)
	l.sinceSnap.Store(0)
	if l.crash(PointSnapPostRename) {
		return ErrCrashed
	}
	if l.crash(PointSnapGC) {
		return ErrCrashed
	}
	// GC superseded files; best effort — replay prefers the newest
	// snapshot, so leftovers cost disk, not correctness.
	if entries, err := os.ReadDir(l.dir); err == nil {
		for _, e := range entries {
			name := e.Name()
			if s, ok := parseSeq(name, segPrefix, segSuffix); ok && s < seq {
				os.Remove(l.segPath(s))
			} else if s, ok := parseSeq(name, snapPrefix, snapSuffix); ok && s < seq {
				os.Remove(l.snapPath(s))
			}
		}
	}
	return nil
}

func writeSnapshotFile(path string, payload []byte) error {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("wal: snapshot temp: %w", err)
	}
	var hdr [12]byte
	copy(hdr[0:4], snapMagic[:])
	binary.LittleEndian.PutUint32(hdr[4:8], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[8:12], crc32.Checksum(payload, castagnoli))
	if _, err := f.Write(hdr[:]); err == nil {
		_, err = f.Write(payload)
	}
	if err != nil {
		f.Close()
		return fmt.Errorf("wal: snapshot write: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return fmt.Errorf("wal: snapshot sync: %w", err)
	}
	return f.Close()
}

// readSnapshot loads and validates one snapshot file; ok is false for any
// torn, truncated or corrupt content.
func readSnapshot(path string) ([]byte, bool) {
	data, err := os.ReadFile(path)
	if err != nil || len(data) < 12 {
		return nil, false
	}
	if [4]byte(data[0:4]) != snapMagic {
		return nil, false
	}
	length := binary.LittleEndian.Uint32(data[4:8])
	if int(length) != len(data)-12 || length > MaxRecordBytes {
		return nil, false
	}
	payload := data[12:]
	if crc32.Checksum(payload, castagnoli) != binary.LittleEndian.Uint32(data[8:12]) {
		return nil, false
	}
	return payload, true
}

// syncDir fsyncs a directory so a rename is durable; best effort on
// platforms where directories cannot be fsynced.
func syncDir(dir string) {
	if d, err := os.Open(dir); err == nil {
		d.Sync()
		d.Close()
	}
}
