package wal_test

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/wal"
)

func openT(t *testing.T, dir string, opts wal.Options) (*wal.Log, wal.Recovery) {
	t.Helper()
	l, rec, err := wal.Open(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { l.Close() })
	return l, rec
}

func payloads(recs []wal.Record) []string {
	out := make([]string, len(recs))
	for i, r := range recs {
		out[i] = fmt.Sprintf("%d:%s", r.Type, r.Data)
	}
	return out
}

func TestAppendReplayRoundTrip(t *testing.T) {
	dir := t.TempDir()
	l, rec := openT(t, dir, wal.Options{})
	if rec.Snapshot != nil || len(rec.Records) != 0 {
		t.Fatalf("fresh dir recovered %+v", rec)
	}
	for i := 0; i < 10; i++ {
		if err := l.Append(byte(i%3+1), []byte(fmt.Sprintf("record-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	_, rec2 := openT(t, dir, wal.Options{})
	if len(rec2.Records) != 10 {
		t.Fatalf("recovered %d records, want 10", len(rec2.Records))
	}
	for i, r := range rec2.Records {
		want := fmt.Sprintf("record-%d", i)
		if r.Type != byte(i%3+1) || string(r.Data) != want {
			t.Fatalf("record %d = %d:%q, want %d:%q", i, r.Type, r.Data, i%3+1, want)
		}
	}
	if rec2.TornTail {
		t.Fatal("clean log reported a torn tail")
	}
}

func TestRotationPreservesOrder(t *testing.T) {
	dir := t.TempDir()
	l, _ := openT(t, dir, wal.Options{SegmentBytes: 64}) // every couple of appends rotates
	const n = 50
	for i := 0; i < n; i++ {
		if err := l.AppendSync(1, []byte(fmt.Sprintf("r%03d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if m := l.Metrics(); m.SegmentsCreated < 10 {
		t.Fatalf("expected many segments at 64-byte rotation, got %d", m.SegmentsCreated)
	}
	l.Close()

	_, rec := openT(t, dir, wal.Options{})
	if len(rec.Records) != n {
		t.Fatalf("recovered %d records across segments, want %d", len(rec.Records), n)
	}
	for i, r := range rec.Records {
		if string(r.Data) != fmt.Sprintf("r%03d", i) {
			t.Fatalf("record %d out of order: %q", i, r.Data)
		}
	}
}

func TestTornTailTolerated(t *testing.T) {
	dir := t.TempDir()
	l, _ := openT(t, dir, wal.Options{})
	for i := 0; i < 5; i++ {
		if err := l.AppendSync(1, []byte(fmt.Sprintf("ok-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	l.Close()

	// Tear the tail by hand: append garbage prefix of a plausible record.
	seg := filepath.Join(dir, "wal-00000001.seg")
	f, err := os.OpenFile(seg, os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	f.Write([]byte{0x10, 0x00, 0x00, 0x00, 0xde, 0xad}) // length 16, partial header/crc
	f.Close()

	l2, rec := openT(t, dir, wal.Options{})
	if len(rec.Records) != 5 || !rec.TornTail {
		t.Fatalf("recovered %d records (torn=%v), want 5 with torn tail", len(rec.Records), rec.TornTail)
	}
	// The next incarnation appends into a fresh segment and the history
	// reads back as the consistent prefix plus the new records.
	if err := l2.AppendSync(2, []byte("after-crash")); err != nil {
		t.Fatal(err)
	}
	l2.Close()
	_, rec3 := openT(t, dir, wal.Options{})
	if len(rec3.Records) != 6 || string(rec3.Records[5].Data) != "after-crash" {
		t.Fatalf("post-crash history wrong: %v", payloads(rec3.Records))
	}
}

func TestCRCCorruptionStopsPrefix(t *testing.T) {
	dir := t.TempDir()
	l, _ := openT(t, dir, wal.Options{})
	for i := 0; i < 4; i++ {
		if err := l.AppendSync(1, []byte(fmt.Sprintf("rec-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	l.Close()

	seg := filepath.Join(dir, "wal-00000001.seg")
	data, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	// Flip a payload byte of the third record; records are 9+5 bytes each.
	data[2*14+10] ^= 0xff
	if err := os.WriteFile(seg, data, 0o644); err != nil {
		t.Fatal(err)
	}

	_, rec := openT(t, dir, wal.Options{})
	if len(rec.Records) != 2 || !rec.TornTail {
		t.Fatalf("recovered %d records (torn=%v), want the 2-record prefix", len(rec.Records), rec.TornTail)
	}
}

func TestSnapshotSupersedesSegments(t *testing.T) {
	dir := t.TempDir()
	l, _ := openT(t, dir, wal.Options{})
	for i := 0; i < 3; i++ {
		if err := l.AppendSync(1, []byte(fmt.Sprintf("pre-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.WriteSnapshot([]byte("state-after-3")); err != nil {
		t.Fatal(err)
	}
	if got := l.RecordsSinceSnapshot(); got != 0 {
		t.Fatalf("RecordsSinceSnapshot = %d after snapshot", got)
	}
	if err := l.AppendSync(2, []byte("post-0")); err != nil {
		t.Fatal(err)
	}
	l.Close()

	_, rec := openT(t, dir, wal.Options{})
	if !bytes.Equal(rec.Snapshot, []byte("state-after-3")) {
		t.Fatalf("snapshot = %q", rec.Snapshot)
	}
	if len(rec.Records) != 1 || string(rec.Records[0].Data) != "post-0" {
		t.Fatalf("post-snapshot records = %v", payloads(rec.Records))
	}
	// The pre-snapshot segment must be gone.
	if _, err := os.Stat(filepath.Join(dir, "wal-00000001.seg")); !os.IsNotExist(err) {
		t.Fatalf("superseded segment survived snapshot GC: %v", err)
	}
}

func TestKillDropsBufferedKeepsFlushed(t *testing.T) {
	dir := t.TempDir()
	l, _ := openT(t, dir, wal.Options{})
	if err := l.AppendSync(1, []byte("durable")); err != nil {
		t.Fatal(err)
	}
	if err := l.Append(1, []byte("buffered-only")); err != nil {
		t.Fatal(err)
	}
	l.Kill()
	if err := l.Append(1, []byte("post-mortem")); err != wal.ErrCrashed {
		t.Fatalf("append on killed log: %v, want ErrCrashed", err)
	}
	if err := l.WriteSnapshot(nil); err != wal.ErrCrashed {
		t.Fatalf("snapshot on killed log: %v, want ErrCrashed", err)
	}

	_, rec := openT(t, dir, wal.Options{})
	if len(rec.Records) != 1 || string(rec.Records[0].Data) != "durable" {
		t.Fatalf("killed log recovered %v, want only the synced record", payloads(rec.Records))
	}
}

func TestUnknownRecordTypesSurvive(t *testing.T) {
	dir := t.TempDir()
	l, _ := openT(t, dir, wal.Options{})
	if err := l.AppendSync(0xEE, []byte("from-the-future")); err != nil {
		t.Fatal(err)
	}
	l.Close()
	_, rec := openT(t, dir, wal.Options{})
	if len(rec.Records) != 1 || rec.Records[0].Type != 0xEE {
		t.Fatalf("unknown-type record lost: %v", payloads(rec.Records))
	}
}

func TestOversizeRecordRejected(t *testing.T) {
	l, _ := openT(t, t.TempDir(), wal.Options{})
	if err := l.Append(1, make([]byte, wal.MaxRecordBytes)); err != wal.ErrTooLarge {
		t.Fatalf("oversize append: %v, want ErrTooLarge", err)
	}
}

// BenchmarkAppend measures the buffered append hot path (the per-record
// cost a batch ledger pays under Service.mu-adjacent load), and
// BenchmarkAppendSync the full commit point. benchtab -json folds these
// into the BENCH record's wal row so the write-path overhead is tracked.
func BenchmarkAppend(b *testing.B) {
	l, _, err := wal.Open(b.TempDir(), wal.Options{})
	if err != nil {
		b.Fatal(err)
	}
	defer l.Close()
	payload := make([]byte, 256)
	b.SetBytes(int64(len(payload)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := l.Append(1, payload); err != nil {
			b.Fatal(err)
		}
		if i%256 == 255 { // group commit: one fsync amortized over 256 records
			if err := l.Sync(); err != nil {
				b.Fatal(err)
			}
		}
	}
}

func BenchmarkAppendSync(b *testing.B) {
	l, _, err := wal.Open(b.TempDir(), wal.Options{})
	if err != nil {
		b.Fatal(err)
	}
	defer l.Close()
	payload := make([]byte, 256)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := l.AppendSync(1, payload); err != nil {
			b.Fatal(err)
		}
	}
}

// TestOpenRemovesStaleSnapshotTemp: a crash between a snapshot's temp write
// and its rename strands a .tmp file that replay ignores; Open must reclaim
// it instead of accumulating one orphan per crash.
func TestOpenRemovesStaleSnapshotTemp(t *testing.T) {
	dir := t.TempDir()
	l, _ := openT(t, dir, wal.Options{})
	if err := l.AppendSync(1, []byte("keep")); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	stale := filepath.Join(dir, "snap-00000007.snap.tmp")
	if err := os.WriteFile(stale, []byte("half-written snapshot"), 0o644); err != nil {
		t.Fatal(err)
	}

	_, rec := openT(t, dir, wal.Options{})
	if rec.Snapshot != nil {
		t.Fatal("stale temp file was loaded as a snapshot")
	}
	if got := payloads(rec.Records); len(got) != 1 || got[0] != "1:keep" {
		t.Fatalf("recovered %v, want the one real record", got)
	}
	if _, err := os.Stat(stale); !os.IsNotExist(err) {
		t.Fatalf("stale snapshot temp survived Open (stat err = %v)", err)
	}
}
