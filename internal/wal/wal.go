// Package wal is the durability substrate behind the graph store and the
// batch ledger: a checksummed, length-prefixed append-only log with segment
// rotation and periodic snapshots, written so that a crash at ANY point —
// power cut mid-record, SIGKILL between write and rename — recovers to a
// consistent prefix of the appended records.
//
// On-disk layout (one directory per log):
//
//	wal-00000001.seg   sealed segment (records only)
//	wal-00000002.seg   active segment (appends go here)
//	snap-00000002.snap snapshot covering every record in segments < 2
//
// A record is [len uint32][crc32c uint32][type byte][payload], all
// little-endian; len counts the type byte plus the payload, and the CRC
// (Castagnoli) covers the same bytes. Replay walks segments in order and
// stops a segment at the first record whose length is implausible or whose
// CRC fails — a torn tail from a crash mid-write — then continues with the
// next segment, because any later segment was written by a process that
// itself recovered from exactly that prefix. A snapshot is written
// temp-file + fsync + rename (the same discipline as graph.WriteDisk), so
// it is either entirely present or entirely absent; replay loads the newest
// valid snapshot and replays only the segments at or after its sequence
// number.
//
// Layer (DESIGN.md §2, §8): wal sits at the bottom, beside internal/graph;
// it is imported by internal/store (graph registrations) and
// internal/service (the batch ledger) and knows nothing about either — the
// record types are opaque bytes.
//
// Concurrency and ownership: a Log is safe for concurrent use (one mutex
// serializes appends, syncs and snapshots). Appends are buffered; Sync
// flushes and fsyncs. TestHooks is the build-tag-free seam the crash-point
// harness uses to simulate the process image dying at every sync/rename
// boundary; production code passes nil hooks and pays nothing.
package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
)

// Crash points: every sync/rename boundary at which the TestHooks seam can
// simulate the process image dying. CrashPoints lists them all so the
// crash-point harness can enumerate coverage.
const (
	// PointAppendPre dies before any byte of the record is written: the
	// record is lost entirely.
	PointAppendPre = "append.pre"
	// PointAppendTorn dies mid-record: a prefix of the record's bytes
	// reaches the file, producing the torn tail replay must tolerate.
	PointAppendTorn = "append.torn"
	// PointAppendPost dies after the record's bytes reached the file (a
	// SIGKILL after write(2) returns): the record is durable.
	PointAppendPost = "append.post"
	// PointSyncPre dies before fsync with the user-space buffer still
	// unflushed: buffered bytes are lost, previously flushed bytes survive.
	PointSyncPre = "sync.pre"
	// PointSyncPost dies immediately after a completed fsync.
	PointSyncPost = "sync.post"
	// PointRotatePre dies before the new segment file is created.
	PointRotatePre = "rotate.pre"
	// PointRotatePost dies after the new segment exists but before any
	// record lands in it.
	PointRotatePost = "rotate.post"
	// PointSnapTemp dies with the snapshot temp file fully written and
	// synced but not yet renamed: the snapshot is invisible to replay.
	PointSnapTemp = "snapshot.temp_written"
	// PointSnapPreRename dies between the temp sync and the rename.
	PointSnapPreRename = "snapshot.pre_rename"
	// PointSnapPostRename dies after the rename: the snapshot is durable,
	// superseded segments still present.
	PointSnapPostRename = "snapshot.post_rename"
	// PointSnapGC dies before superseded segments are deleted: replay must
	// prefer the newest snapshot over the stale segments left behind.
	PointSnapGC = "snapshot.gc"
)

// CrashPoints returns every crash point name, in the order the write path
// reaches them. The crash-point harness iterates this list so a new
// boundary added here is automatically covered (or loudly uncovered).
func CrashPoints() []string {
	return []string{
		PointAppendPre, PointAppendTorn, PointAppendPost,
		PointSyncPre, PointSyncPost,
		PointRotatePre, PointRotatePost,
		PointSnapTemp, PointSnapPreRename, PointSnapPostRename, PointSnapGC,
	}
}

// TestHooks is the crash-injection seam. It is consulted inline on the
// write path (nil-checked, so production logs pay one pointer compare) and
// needs no build tags: tests construct a Log with hooks, everything else
// passes none.
type TestHooks struct {
	// CrashAt, when non-nil, is consulted at every crash point; returning
	// true simulates the process dying there: the prescribed partial effect
	// (nothing, a torn prefix, a temp file without its rename, …) is left
	// on disk, the Log transitions to the crashed state, and every later
	// operation fails with ErrCrashed without touching the directory again.
	CrashAt func(point string) bool
	// OnOpen, when non-nil, observes every Log the hooks are installed on
	// right after Open succeeds — the handle tests use to Kill a log that
	// a store or service constructed internally.
	OnOpen func(*Log)
}

// Log errors.
var (
	// ErrCrashed marks a log whose simulated process death (TestHooks or
	// Kill) already happened: the in-memory owner may keep running, but
	// nothing it does reaches disk anymore — exactly a dead process image.
	ErrCrashed = errors.New("wal: log crashed (simulated process death)")
	// ErrClosed marks a cleanly closed log.
	ErrClosed = errors.New("wal: log is closed")
	// ErrFailed marks a log poisoned by a write error: a failed or partial
	// flush may have left a torn record in the MIDDLE of the active segment,
	// and replay stops a segment at the first tear — so any record accepted
	// after that point would be acked yet silently dropped on recovery. The
	// log refuses all further appends and syncs instead.
	ErrFailed = errors.New("wal: log failed (prior write error)")
	// ErrTooLarge rejects records beyond MaxRecordBytes.
	ErrTooLarge = errors.New("wal: record exceeds MaxRecordBytes")
)

// MaxRecordBytes bounds one record's type+payload length. Replay treats any
// length field beyond it as a torn/corrupt tail, so the bound doubles as
// the plausibility check that keeps a flipped length byte from allocating
// gigabytes.
const MaxRecordBytes = 64 << 20

const (
	headerBytes        = 9 // len(4) + crc(4) + type(1)
	defaultSegmentSize = 8 << 20
	segPrefix          = "wal-"
	segSuffix          = ".seg"
	snapPrefix         = "snap-"
	snapSuffix         = ".snap"
)

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Options configures Open. Zero values select defaults.
type Options struct {
	// SegmentBytes is the rotation threshold for the active segment
	// (default 8 MiB). Tests set it tiny to exercise rotation.
	SegmentBytes int64
	// Hooks installs the crash-injection seam; nil for production.
	Hooks *TestHooks
}

// Record is one replayed log entry. Type is opaque to the wal layer;
// consumers switch on it and MUST skip types they do not recognize (the
// forward-compatibility half of the replay idempotence contract).
type Record struct {
	Type byte
	Data []byte
}

// Recovery is what Open found on disk: the newest valid snapshot (nil if
// none) and every valid record appended after it, in order.
type Recovery struct {
	// Snapshot is the newest valid snapshot payload, nil when the log has
	// none.
	Snapshot []byte
	// Records are the records after the snapshot, in append order, ending
	// at the first torn/corrupt record of the final relevant segment.
	Records []Record
	// TornTail reports whether replay dropped a torn or corrupt tail.
	TornTail bool
	// Segments counts the segment files replay visited.
	Segments int
}

// Metrics is a point-in-time snapshot of a log's counters, surfaced as the
// repro_wal_* Prometheus families.
type Metrics struct {
	AppendsTotal      uint64 // records appended this process
	AppendedBytes     uint64 // record bytes appended (header included)
	SyncsTotal        uint64 // fsyncs issued
	SnapshotsTotal    uint64 // snapshots written this process
	SegmentsCreated   uint64 // segment files created this process
	ReplayedRecords   uint64 // records recovered at Open
	ReplayedSnapshots uint64 // 1 if Open loaded a snapshot
	ReplayTornTails   uint64 // torn/corrupt tails dropped at Open
	SinceSnapshot     uint64 // records appended since the last snapshot
}

// Log is an open write-ahead log. Create with Open.
type Log struct {
	dir   string
	opts  Options
	hooks *TestHooks

	mu      sync.Mutex
	f       *os.File
	buf     []byte // user-space append buffer (lost on crash before flush)
	seq     uint64 // active segment sequence number
	written int64  // bytes in the active segment (flushed + buffered)
	crashed bool
	closed  bool
	failed  error // non-nil once a flush error poisoned the log

	appends       atomic.Uint64
	appendedBytes atomic.Uint64
	syncs         atomic.Uint64
	snapshots     atomic.Uint64
	segsCreated   atomic.Uint64
	replayRecords uint64
	replaySnaps   uint64
	replayTorn    uint64
	sinceSnap     atomic.Uint64
}

// Open creates dir if needed, replays whatever a previous incarnation left
// there, and returns the log positioned to append into a fresh segment —
// appends never extend a pre-crash segment, so a torn tail is sealed in
// place rather than overwritten.
func Open(dir string, opts Options) (*Log, Recovery, error) {
	if opts.SegmentBytes <= 0 {
		opts.SegmentBytes = defaultSegmentSize
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, Recovery{}, fmt.Errorf("wal: %w", err)
	}
	rec, maxSeq, err := replayDir(dir)
	if err != nil {
		return nil, Recovery{}, err
	}
	l := &Log{dir: dir, opts: opts, hooks: opts.Hooks, seq: maxSeq}
	l.replayRecords = uint64(len(rec.Records))
	if rec.Snapshot != nil {
		l.replaySnaps = 1
	}
	if rec.TornTail {
		l.replayTorn = 1
	}
	if err := l.openSegmentLocked(maxSeq + 1); err != nil {
		return nil, Recovery{}, err
	}
	if opts.Hooks != nil && opts.Hooks.OnOpen != nil {
		opts.Hooks.OnOpen(l)
	}
	return l, rec, nil
}

// crash consults the hook at the named point. It must be called with l.mu
// held; returning true means the caller must stop without touching disk
// further (the log is now crashed).
func (l *Log) crash(point string) bool {
	if l.hooks == nil || l.hooks.CrashAt == nil {
		return false
	}
	if !l.hooks.CrashAt(point) {
		return false
	}
	l.crashed = true
	return true
}

// openSegmentLocked creates segment seq and makes it active. Must be called
// with l.mu held (or before the log escapes Open).
func (l *Log) openSegmentLocked(seq uint64) error {
	f, err := os.OpenFile(l.segPath(seq), os.O_CREATE|os.O_WRONLY|os.O_EXCL, 0o644)
	if err != nil {
		return fmt.Errorf("wal: create segment: %w", err)
	}
	if l.f != nil {
		l.f.Close()
	}
	l.f = f
	l.seq = seq
	l.written = 0
	l.segsCreated.Add(1)
	return nil
}

func (l *Log) segPath(seq uint64) string {
	return filepath.Join(l.dir, fmt.Sprintf("%s%08d%s", segPrefix, seq, segSuffix))
}

func (l *Log) snapPath(seq uint64) string {
	return filepath.Join(l.dir, fmt.Sprintf("%s%08d%s", snapPrefix, seq, snapSuffix))
}

// encodeRecord appends the wire encoding of (typ, payload) to dst.
func encodeRecord(dst []byte, typ byte, payload []byte) []byte {
	var hdr [headerBytes]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(1+len(payload)))
	crc := crc32.Update(0, castagnoli, []byte{typ})
	crc = crc32.Update(crc, castagnoli, payload)
	binary.LittleEndian.PutUint32(hdr[4:8], crc)
	hdr[8] = typ
	dst = append(dst, hdr[:]...)
	return append(dst, payload...)
}

// Append buffers one record. The record is durable against SIGKILL once a
// later flush writes it through (Sync, rotation, snapshot or Close all
// flush); call Sync for a commit point that also survives power loss.
func (l *Log) Append(typ byte, payload []byte) error {
	if len(payload) > MaxRecordBytes-1 {
		return ErrTooLarge
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if err := l.usableLocked(); err != nil {
		return err
	}
	recLen := int64(headerBytes + len(payload))
	if l.written+recLen > l.opts.SegmentBytes && l.written > 0 {
		if err := l.rotateLocked(); err != nil {
			return err
		}
	}
	if l.crash(PointAppendPre) {
		return ErrCrashed
	}
	if l.hooks != nil && l.hooks.CrashAt != nil {
		// Probe the torn point before committing the bytes: on a hit, write
		// a strict prefix of the record through to the file so the torn
		// tail is really on disk for the restarted incarnation to trip on.
		rec := encodeRecord(nil, typ, payload)
		if l.crash(PointAppendTorn) {
			l.flushLocked()
			l.f.Write(rec[:len(rec)/2])
			return ErrCrashed
		}
		l.buf = append(l.buf, rec...)
	} else {
		l.buf = encodeRecord(l.buf, typ, payload)
	}
	l.written += recLen
	l.appends.Add(1)
	l.appendedBytes.Add(uint64(recLen))
	l.sinceSnap.Add(1)
	if l.crash(PointAppendPost) {
		// Process dies after write(2) returned: the bytes survive.
		l.flushLocked()
		return ErrCrashed
	}
	return nil
}

// AppendSync appends one record and syncs: the commit-point primitive.
func (l *Log) AppendSync(typ byte, payload []byte) error {
	if err := l.Append(typ, payload); err != nil {
		return err
	}
	return l.Sync()
}

// flushLocked writes the user-space buffer through to the active segment.
// Must be called with l.mu held. A write error poisons the log (ErrFailed):
// the write may have landed a torn record mid-segment, and replay would
// silently drop anything appended after it — so nothing may be acked after
// it. The unwritten suffix stays buffered; Close retries it once, which on
// a transient error mends the tear exactly where it was left.
func (l *Log) flushLocked() error {
	if len(l.buf) == 0 {
		return nil
	}
	n, err := l.f.Write(l.buf)
	if err != nil {
		l.buf = l.buf[n:]
		if l.failed == nil {
			l.failed = fmt.Errorf("%w: %v", ErrFailed, err)
		}
		return err
	}
	l.buf = l.buf[:0]
	return nil
}

// Sync flushes buffered records and fsyncs the active segment.
func (l *Log) Sync() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.syncLocked()
}

func (l *Log) syncLocked() error {
	if err := l.usableLocked(); err != nil {
		return err
	}
	if l.crash(PointSyncPre) {
		// Power-cut model: the user-space buffer never reached the file.
		l.buf = l.buf[:0]
		return ErrCrashed
	}
	if err := l.flushLocked(); err != nil {
		return fmt.Errorf("wal: flush: %w", err)
	}
	if err := l.f.Sync(); err != nil {
		return fmt.Errorf("wal: fsync: %w", err)
	}
	l.syncs.Add(1)
	if l.crash(PointSyncPost) {
		return ErrCrashed
	}
	return nil
}

// rotateLocked seals the active segment and opens the next one. Must be
// called with l.mu held.
func (l *Log) rotateLocked() error {
	if err := l.flushLocked(); err != nil {
		return fmt.Errorf("wal: flush: %w", err)
	}
	if err := l.f.Sync(); err != nil {
		return fmt.Errorf("wal: fsync: %w", err)
	}
	l.syncs.Add(1)
	if l.crash(PointRotatePre) {
		return ErrCrashed
	}
	if err := l.openSegmentLocked(l.seq + 1); err != nil {
		return err
	}
	if l.crash(PointRotatePost) {
		return ErrCrashed
	}
	return nil
}

func (l *Log) usableLocked() error {
	switch {
	case l.crashed:
		return ErrCrashed
	case l.closed:
		return ErrClosed
	case l.failed != nil:
		return l.failed
	}
	return nil
}

// Kill simulates the process image dying right now: buffered-but-unflushed
// records are discarded (they lived in user space) and every later
// operation fails with ErrCrashed without touching the directory. The
// restart-equivalence tests use it to SIGKILL an in-process server stack;
// a fresh Open on the same directory then recovers exactly what a real
// kill -9 would have left.
func (l *Log) Kill() {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.crashed = true
	l.buf = l.buf[:0]
}

// Dir returns the log's directory.
func (l *Log) Dir() string { return l.dir }

// RecordsSinceSnapshot reports how many records were appended since the
// last successful snapshot (or Open) — the cadence input for callers that
// snapshot every N records.
func (l *Log) RecordsSinceSnapshot() uint64 { return l.sinceSnap.Load() }

// Metrics returns a snapshot of the log's counters.
func (l *Log) Metrics() Metrics {
	return Metrics{
		AppendsTotal:      l.appends.Load(),
		AppendedBytes:     l.appendedBytes.Load(),
		SyncsTotal:        l.syncs.Load(),
		SnapshotsTotal:    l.snapshots.Load(),
		SegmentsCreated:   l.segsCreated.Load(),
		ReplayedRecords:   l.replayRecords,
		ReplayedSnapshots: l.replaySnaps,
		ReplayTornTails:   l.replayTorn,
		SinceSnapshot:     l.sinceSnap.Load(),
	}
}

// Close flushes, syncs and closes the log. A crashed log closes without
// touching disk (the simulated dead process cannot).
func (l *Log) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return nil
	}
	l.closed = true
	if l.crashed {
		if l.f != nil {
			l.f.Close()
		}
		return nil
	}
	var err error
	if ferr := l.flushLocked(); ferr != nil {
		err = ferr
	}
	if serr := l.f.Sync(); serr != nil && err == nil {
		err = serr
	}
	if cerr := l.f.Close(); cerr != nil && err == nil {
		err = cerr
	}
	return err
}
