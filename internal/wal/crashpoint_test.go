package wal_test

// Crash-point injection harness: for every boundary wal.CrashPoints()
// enumerates, simulate the process dying there underneath the REAL consumers
// (the durable graph store, and the batch engine's ledger), restart the
// stack on the same directories, and check the recovery contract:
//
//   - consistent prefix: the recovered state corresponds to a prefix of the
//     operation sequence, containing at least every acknowledged operation
//     (an unacknowledged-but-durable tail entry is allowed — that is what
//     "crashed after write(2) returned" means — phantom or reordered state
//     is not);
//   - bit-identical committed results: restored finished cells carry the
//     same results an uninterrupted run produces;
//   - zero leaked pins: once every recovered batch is terminal, the graphs
//     it pinned can be deleted;
//   - no re-execution: the restarted service runs exactly the cells the
//     ledger did not already hold finished.
//
// The tests iterate wal.CrashPoints() and fail loudly if a point never
// fires, so a new boundary added to the write path is automatically covered
// here or flagged as uncovered.

import (
	"errors"
	"path/filepath"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/registry"
	"repro/internal/service"
	"repro/internal/store"
	"repro/internal/wal"
)

// crashOnce builds hooks that kill the log the first time the write path
// reaches point, and a flag recording whether the point was ever reached.
func crashOnce(point string) (*wal.TestHooks, *atomic.Bool) {
	fired := &atomic.Bool{}
	return &wal.TestHooks{CrashAt: func(p string) bool {
		return p == point && fired.CompareAndSwap(false, true)
	}}, fired
}

func waitBatchTerminal(t *testing.T, b *service.Batches, id string) service.BatchView {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for time.Now().Before(deadline) {
		v, ok := b.Wait(id, 100*time.Millisecond)
		if !ok {
			t.Fatalf("batch %s disappeared", id)
		}
		if v.State.Terminal() {
			return v
		}
	}
	t.Fatalf("batch %s never finished", id)
	return service.BatchView{}
}

// pollDelete retries st.Delete(name) until it succeeds: pin releases race
// the terminal transition by a scheduler beat, never longer.
func pollDelete(t *testing.T, st *store.Store, name string) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	var err error
	for time.Now().Before(deadline) {
		if err = st.Delete(name); err == nil {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("pin leaked: delete %q kept failing: %v", name, err)
}

// TestCrashPointsStore drives the durable graph store into a simulated
// process death at every crash point, restarts it on the same directories,
// and checks the recovered bindings are a consistent prefix of the
// operation sequence.
func TestCrashPointsStore(t *testing.T) {
	type op struct {
		del  bool
		name string
	}
	ops := []op{
		{name: "g0"}, {name: "g1"}, {name: "g2"}, {name: "g3"}, {name: "g4"},
		{del: true, name: "g0"},
	}
	// prefixes[k] is the expected name set after the first k ops.
	prefixes := make([]map[string]bool, len(ops)+1)
	prefixes[0] = map[string]bool{}
	for k, o := range ops {
		next := make(map[string]bool, len(prefixes[k])+1)
		for n := range prefixes[k] {
			next[n] = true
		}
		if o.del {
			delete(next, o.name)
		} else {
			next[o.name] = true
		}
		prefixes[k+1] = next
	}

	for _, point := range wal.CrashPoints() {
		t.Run(point, func(t *testing.T) {
			root := t.TempDir()
			hooks, fired := crashOnce(point)
			st, err := store.Open(store.Config{
				WALDir:          filepath.Join(root, "wal"),
				SpillDir:        filepath.Join(root, "spill"),
				SnapshotEvery:   2,  // snapshot points fire on the second record
				WALSegmentBytes: 96, // rotation points fire within a few records
				WALHooks:        hooks,
			})
			if err != nil {
				t.Fatal(err)
			}

			// Run the sequence until the injected death; everything the
			// store acknowledges before it must survive the restart.
			acked := 0
			fps := map[string]string{}
			for _, o := range ops {
				var err error
				if o.del {
					err = st.Delete(o.name)
				} else {
					var info store.Info
					info, _, err = st.Put(o.name, store.Source{
						Gen:       "gnp",
						GenParams: registry.GenParams{N: 24, P: 0.2, Seed: uint64(len(fps) + 1), MaxW: 16},
					})
					if err == nil {
						fps[o.name] = info.Fingerprint
					}
				}
				if err != nil {
					if !errors.Is(err, wal.ErrCrashed) {
						t.Fatalf("op %+v failed with a non-crash error: %v", o, err)
					}
					break
				}
				acked++
			}
			if !fired.Load() {
				t.Fatalf("crash point %s never fired: the harness does not cover it", point)
			}
			st.Close() // tolerates the crashed log

			st2, err := store.Open(store.Config{
				WALDir:   filepath.Join(root, "wal"),
				SpillDir: filepath.Join(root, "spill"),
			})
			if err != nil {
				t.Fatalf("restart after %s: %v", point, err)
			}
			defer st2.Close()
			got := map[string]bool{}
			for _, info := range st2.List() {
				got[info.Name] = true
				if want, ok := fps[info.Name]; ok && info.Fingerprint != want {
					t.Fatalf("%s fingerprint changed across restart: %s != %s", info.Name, info.Fingerprint, want)
				}
			}
			matched := -1
			for k := acked; k < len(prefixes); k++ {
				if equalSet(got, prefixes[k]) {
					matched = k
					break
				}
			}
			if matched < 0 {
				t.Fatalf("recovered state %v is not a consistent prefix: acked %d ops", got, acked)
			}
			// The recovered names must answer Acquire (spill files intact).
			for name := range got {
				g, release, err := st2.Acquire(name)
				if err != nil || g.N() == 0 {
					t.Fatalf("recovered %s not acquirable: %v", name, err)
				}
				release()
			}
		})
	}
}

func equalSet(a, b map[string]bool) bool {
	if len(a) != len(b) {
		return false
	}
	for k := range a {
		if !b[k] {
			return false
		}
	}
	return true
}

// TestCrashPointsBatchLedger drives the batch ledger into a simulated
// process death at every crash point while a 4-cell batch runs, restarts
// the full stack, lets any resumed batch converge, and compares it against
// an uninterrupted reference run.
func TestCrashPointsBatchLedger(t *testing.T) {
	spec := service.BatchSpec{
		Graphs: []string{"g"},
		Algos:  []string{"maxis", "mwm2"},
		Seeds:  []uint64{4, 5},
	}
	putG := func(t *testing.T, st *store.Store) {
		t.Helper()
		if _, _, err := st.Put("g", store.Source{
			Gen:       "gnp",
			GenParams: registry.GenParams{N: 30, P: 0.25, Seed: 9, MaxW: 16},
		}); err != nil {
			t.Fatal(err)
		}
	}

	// Uninterrupted reference run (non-durable stack, same spec): the
	// yardstick every restarted batch must match bit for bit.
	refSvc := service.New(service.Config{Workers: 2, QueueSize: 64})
	defer refSvc.Close()
	refStore := store.New(store.Config{})
	putG(t, refStore)
	refB := service.NewBatches(refSvc, refStore, service.BatchConfig{})
	refSub, err := refB.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	ref := waitBatchTerminal(t, refB, refSub.ID)
	if ref.Done != ref.Total {
		t.Fatalf("reference run did not finish cleanly: %+v", ref)
	}

	for _, point := range wal.CrashPoints() {
		t.Run(point, func(t *testing.T) {
			root := t.TempDir()
			storeCfg := store.Config{
				WALDir:   filepath.Join(root, "store-wal"),
				SpillDir: filepath.Join(root, "spill"),
			}
			st, err := store.Open(storeCfg)
			if err != nil {
				t.Fatal(err)
			}
			putG(t, st)
			svc := service.New(service.Config{Workers: 2, QueueSize: 64})
			hooks, fired := crashOnce(point)
			b, err := service.OpenBatches(svc, st, service.BatchConfig{
				WALDir:          filepath.Join(root, "batch-wal"),
				SnapshotEvery:   2,
				WALSegmentBytes: 96,
				WALHooks:        hooks,
			})
			if err != nil {
				t.Fatal(err)
			}

			// Submit and run to in-memory completion. The ledger dies at the
			// injected point somewhere along the way: Submit's synchronous
			// commit may fail (the batch then never exists), or an async
			// cell/terminal record is lost — both are legitimate crashes the
			// restart below must absorb.
			v, err := b.Submit(spec)
			submitted := err == nil
			if err != nil && !errors.Is(err, wal.ErrCrashed) {
				t.Fatal(err)
			}
			if submitted {
				waitBatchTerminal(t, b, v.ID)
			}
			// The async writer reaches every remaining point on its own
			// clock; Close flushes it (and tolerates the crashed log).
			svc.Close()
			b.Close()
			if !fired.Load() {
				t.Fatalf("crash point %s never fired: the harness does not cover it", point)
			}
			st.Close()

			// Restart the full stack on the same directories, hook-free.
			st2, err := store.Open(storeCfg)
			if err != nil {
				t.Fatal(err)
			}
			defer st2.Close()
			svc2 := service.New(service.Config{Workers: 2, QueueSize: 64})
			defer svc2.Close()
			b2, err := service.OpenBatches(svc2, st2, service.BatchConfig{
				WALDir: filepath.Join(root, "batch-wal"),
			})
			if err != nil {
				t.Fatalf("restart after %s: %v", point, err)
			}
			defer b2.Close()

			after, recovered := b2.Get(v.ID)
			if submitted && !recovered && svc2.Metrics().Submitted > 0 {
				t.Fatal("jobs ran for a batch the ledger does not know")
			}
			if recovered {
				after = waitBatchTerminal(t, b2, after.ID)
				if after.State != service.BatchDone || after.Done != ref.Total {
					t.Fatalf("recovered batch did not converge: %+v", after)
				}
				if after.TraceID != v.TraceID {
					t.Fatalf("trace ID changed across restart: %s != %s", after.TraceID, v.TraceID)
				}
				for i := range ref.Cells {
					rc, ac := ref.Cells[i], after.Cells[i]
					if ac.Graph != rc.Graph || ac.Algo != rc.Algo || ac.Params.Seed != rc.Params.Seed {
						t.Fatalf("cell %d identity differs from reference: %+v vs %+v", i, ac, rc)
					}
					if ac.Result == nil || ac.Result.Weight != rc.Result.Weight || ac.Result.Size() != rc.Result.Size() {
						t.Fatalf("cell %d result differs from the uninterrupted run", i)
					}
				}
				for i := range ref.Groups {
					rg, ag := ref.Groups[i], after.Groups[i]
					if ag.Weight != rg.Weight || ag.Size != rg.Size || ag.Done != rg.Done {
						t.Fatalf("group %d aggregates differ from reference: %+v vs %+v", i, ag, rg)
					}
				}
				// No re-execution: the restart ran exactly the cells the
				// ledger did not already hold finished.
				lm, ok := b2.LedgerMetrics()
				if !ok {
					t.Fatal("durable engine reports no ledger metrics")
				}
				if got, want := svc2.Metrics().Submitted, uint64(ref.Total)-lm.CellsRestored; got != want {
					t.Fatalf("restart submitted %d jobs, want %d (restored %d of %d)", got, want, lm.CellsRestored, ref.Total)
				}
			}
			// Zero leaked pins either way: the graph must be deletable once
			// everything recovered is terminal.
			pollDelete(t, st2, "g")
		})
	}
}
