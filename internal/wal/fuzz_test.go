package wal_test

import (
	"bytes"
	"encoding/binary"
	"hash/crc32"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/wal"
)

// FuzzWALReplay feeds arbitrary bytes to the replay path as a lone segment
// file and asserts the invariants corruption must never break: no panic, no
// error (a segment is always some consistent prefix), every decoded record
// round-trips through a fresh log, and replay is deterministic.
func FuzzWALReplay(f *testing.F) {
	table := crc32.MakeTable(crc32.Castagnoli)
	rec := func(typ byte, payload []byte) []byte {
		body := append([]byte{typ}, payload...)
		b := make([]byte, 8, 8+len(body))
		binary.LittleEndian.PutUint32(b[0:4], uint32(len(body)))
		binary.LittleEndian.PutUint32(b[4:8], crc32.Checksum(body, table))
		return append(b, body...)
	}

	// Seeds: valid log, truncated tail, flipped CRC byte, duplicated record,
	// unknown record type, zero length, implausible length, empty file.
	valid := append(rec(1, []byte(`{"name":"g1"}`)), rec(2, []byte(`{"id":"b000001"}`))...)
	f.Add(valid)
	f.Add(valid[:len(valid)-3])
	flipped := bytes.Clone(valid)
	flipped[5] ^= 0x40
	f.Add(flipped)
	f.Add(append(bytes.Clone(valid), valid...))
	f.Add(rec(0xEE, []byte("unknown type must survive or stop, never panic")))
	f.Add([]byte{0, 0, 0, 0, 1, 2, 3, 4, 5})
	f.Add([]byte{0xff, 0xff, 0xff, 0x7f, 0, 0, 0, 0, 1})
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, "wal-00000001.seg"), data, 0o644); err != nil {
			t.Fatal(err)
		}
		l, rec1, err := wal.Open(dir, wal.Options{})
		if err != nil {
			t.Fatalf("replay errored on arbitrary segment bytes: %v", err)
		}
		l.Close()

		// Determinism: a second replay of the same directory decodes the
		// same prefix.
		l2, rec2, err := wal.Open(dir, wal.Options{})
		if err != nil {
			t.Fatal(err)
		}
		l2.Close()
		if len(rec1.Records) != len(rec2.Records) || rec1.TornTail != rec2.TornTail {
			t.Fatalf("replay not deterministic: %d/%v vs %d/%v",
				len(rec1.Records), rec1.TornTail, len(rec2.Records), rec2.TornTail)
		}

		// Round-trip: re-appending the decoded prefix into a fresh log and
		// replaying it must reproduce it exactly.
		dir2 := t.TempDir()
		l3, _, err := wal.Open(dir2, wal.Options{})
		if err != nil {
			t.Fatal(err)
		}
		for _, r := range rec1.Records {
			if err := l3.Append(r.Type, r.Data); err != nil {
				t.Fatalf("decoded record does not re-append: %v", err)
			}
		}
		if err := l3.Sync(); err != nil {
			t.Fatal(err)
		}
		l3.Close()
		l4, rec3, err := wal.Open(dir2, wal.Options{})
		if err != nil {
			t.Fatal(err)
		}
		l4.Close()
		if len(rec3.Records) != len(rec1.Records) {
			t.Fatalf("round-trip lost records: %d vs %d", len(rec3.Records), len(rec1.Records))
		}
		for i := range rec3.Records {
			if rec3.Records[i].Type != rec1.Records[i].Type || !bytes.Equal(rec3.Records[i].Data, rec1.Records[i].Data) {
				t.Fatalf("round-trip record %d differs", i)
			}
		}
	})
}
