package wal

// Replay: scan a log directory for segments and snapshots, load the newest
// valid snapshot, and walk the records appended after it. Torn tails —
// partial headers, implausible lengths, CRC mismatches — end the segment
// they appear in without failing the replay: anything after them in LATER
// segments was written by an incarnation that recovered from exactly that
// prefix, so it is still part of the consistent history.

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"slices"
	"strconv"
	"strings"
)

// replayDir scans dir and returns the recovery plus the highest sequence
// number seen across segments and snapshots (0 when the directory is
// empty), so Open can pick the next fresh segment number.
func replayDir(dir string) (Recovery, uint64, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return Recovery{}, 0, fmt.Errorf("wal: %w", err)
	}
	var segs, snaps []uint64
	for _, e := range entries {
		name := e.Name()
		if seq, ok := parseSeq(name, segPrefix, segSuffix); ok {
			segs = append(segs, seq)
		} else if seq, ok := parseSeq(name, snapPrefix, snapSuffix); ok {
			snaps = append(snaps, seq)
		} else if strings.HasSuffix(name, ".tmp") {
			// A crash between a snapshot's temp write and its rename strands
			// the .tmp file: it is by definition not a durable snapshot, so
			// reclaim it here rather than accumulate one per crash.
			os.Remove(filepath.Join(dir, name))
		}
	}
	slices.Sort(segs)
	slices.SortFunc(snaps, func(a, b uint64) int { // newest first
		switch {
		case a > b:
			return -1
		case a < b:
			return 1
		}
		return 0
	})

	var rec Recovery
	var maxSeq uint64
	if len(segs) > 0 {
		maxSeq = segs[len(segs)-1]
	}
	// Newest snapshot that reads back valid wins; a torn or corrupt
	// snapshot (crash between temp write and rename cannot produce one,
	// but a disk can) falls back to the one before it, whose superseded
	// segments are still present exactly because snapshot GC deletes them
	// only after the newer snapshot is durable.
	var snapSeq uint64
	for _, seq := range snaps {
		payload, ok := readSnapshot(filepath.Join(dir, fmt.Sprintf("%s%08d%s", snapPrefix, seq, snapSuffix)))
		if ok {
			rec.Snapshot = payload
			snapSeq = seq
			if seq > maxSeq {
				maxSeq = seq
			}
			break
		}
	}
	for _, seq := range segs {
		if seq < snapSeq {
			continue // superseded by the snapshot
		}
		data, err := os.ReadFile(filepath.Join(dir, fmt.Sprintf("%s%08d%s", segPrefix, seq, segSuffix)))
		if err != nil {
			return Recovery{}, 0, fmt.Errorf("wal: read segment %d: %w", seq, err)
		}
		rec.Segments++
		records, torn := decodeSegment(data)
		rec.Records = append(rec.Records, records...)
		if torn {
			rec.TornTail = true
		}
	}
	return rec, maxSeq, nil
}

// decodeSegment walks one segment's records, stopping at the first torn or
// corrupt record and reporting whether it stopped early.
func decodeSegment(data []byte) ([]Record, bool) {
	var out []Record
	for len(data) > 0 {
		if len(data) < headerBytes {
			return out, true // partial header: torn tail
		}
		length := binary.LittleEndian.Uint32(data[0:4])
		if length == 0 || length > MaxRecordBytes {
			return out, true // implausible length: corrupt or torn
		}
		end := headerBytes - 1 + int(length)
		if end > len(data) {
			return out, true // record extends past the file: torn tail
		}
		want := binary.LittleEndian.Uint32(data[4:8])
		body := data[8:end]
		if crc32.Checksum(body, castagnoli) != want {
			return out, true // bit rot or a torn rewrite: stop the prefix here
		}
		out = append(out, Record{Type: body[0], Data: slices.Clone(body[1:])})
		data = data[end:]
	}
	return out, false
}

// parseSeq extracts the sequence number from prefix%08dsuffix names,
// rejecting anything else (temp files, foreign droppings).
func parseSeq(name, prefix, suffix string) (uint64, bool) {
	if !strings.HasPrefix(name, prefix) || !strings.HasSuffix(name, suffix) {
		return 0, false
	}
	mid := name[len(prefix) : len(name)-len(suffix)]
	if len(mid) == 0 {
		return 0, false
	}
	seq, err := strconv.ParseUint(mid, 10, 64)
	if err != nil {
		return 0, false
	}
	return seq, true
}
