package augment

import (
	"math"
	"testing"

	"repro/internal/exact"
	"repro/internal/graph"
	"repro/internal/rng"
)

func allActive(n int) []bool {
	a := make([]bool, n)
	for i := range a {
		a[i] = true
	}
	return a
}

func TestEnumerateLength1(t *testing.T) {
	g := graph.Path(4) // 0-1-2-3
	mate := []int{-1, -1, -1, -1}
	paths, err := EnumerateAugmentingPaths(g, mate, 1, allActive(4), 100)
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) != 3 {
		t.Fatalf("free edges on an empty matching: got %d paths, want 3", len(paths))
	}
}

func TestEnumerateLength3(t *testing.T) {
	// P4 with the middle edge matched: the unique augmenting path is the
	// whole path.
	g := graph.Path(4)
	mate := []int{-1, 2, 1, -1}
	paths, err := EnumerateAugmentingPaths(g, mate, 3, allActive(4), 100)
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) != 1 {
		t.Fatalf("got %d paths, want 1", len(paths))
	}
	want := []int{0, 1, 2, 3}
	for i, v := range want {
		if paths[0][i] != v {
			t.Fatalf("path = %v, want %v", paths[0], want)
		}
	}
	// No length-1 paths exist (0 and 3 are not adjacent).
	paths, err = EnumerateAugmentingPaths(g, mate, 1, allActive(4), 100)
	if err != nil || len(paths) != 0 {
		t.Fatalf("unexpected length-1 paths: %v err=%v", paths, err)
	}
}

func TestEnumerateRespectsActive(t *testing.T) {
	g := graph.Path(4)
	mate := []int{-1, 2, 1, -1}
	active := allActive(4)
	active[1] = false
	paths, err := EnumerateAugmentingPaths(g, mate, 3, active, 100)
	if err != nil || len(paths) != 0 {
		t.Fatalf("deactivated interior node still produced paths: %v", paths)
	}
}

func TestEnumerateCap(t *testing.T) {
	g := graph.Complete(10)
	mate := make([]int, 10)
	for i := range mate {
		mate[i] = -1
	}
	if _, err := EnumerateAugmentingPaths(g, mate, 1, allActive(10), 3); err == nil {
		t.Fatal("cap not enforced")
	}
}

func TestEnumerateRejectsEvenLength(t *testing.T) {
	g := graph.Path(3)
	mate := []int{-1, -1, -1}
	if _, err := EnumerateAugmentingPaths(g, mate, 2, allActive(3), 10); err == nil {
		t.Fatal("even length accepted")
	}
}

func TestFlipPath(t *testing.T) {
	g := graph.Path(4)
	mate := []int{-1, 2, 1, -1}
	if err := FlipPath(g, mate, []int{0, 1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	want := []int{1, 0, 3, 2}
	for v, m := range want {
		if mate[v] != m {
			t.Fatalf("mate = %v, want %v", mate, want)
		}
	}
	// Flipping a non-augmenting path must fail loudly.
	if err := FlipPath(g, mate, []int{0, 1, 2, 3}); err == nil {
		t.Fatal("flip of matched endpoints accepted")
	}
}

func TestMateMatchingRoundTrip(t *testing.T) {
	g := graph.GNP(14, 0.3, rng.New(1))
	m := exact.MaxCardinalityMatching(g)
	mate := MateFromMatching(g, m)
	back, err := MatchingFromMate(g, mate)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(m) {
		t.Fatalf("round trip changed size: %d vs %d", len(back), len(m))
	}
}

func TestCountPathsHandExample(t *testing.T) {
	// a0 — b0 = a1 — b1  (= is the matching edge): one augmenting path of
	// length 3 through every node.
	gb := graph.NewBuilder(4)
	gb.MustAddEdge(0, 1) // a0-b0
	gb.MustAddEdge(1, 2) // b0-a1 (matched)
	gb.MustAddEdge(2, 3) // a1-b1
	g := gb.MustBuild()
	side := []int{0, 1, 0, 1}
	mate := []int{-1, 2, 1, -1}
	pc, err := CountPaths(g, side, mate, 3, allActive(4))
	if err != nil {
		t.Fatal(err)
	}
	for v := 0; v < 4; v++ {
		if pc.Through[v] != 1 {
			t.Fatalf("Through[%d] = %d, want 1 (layers %v forward %v suffix %v)",
				v, pc.Through[v], pc.Layer, pc.Forward, pc.Suffix)
		}
	}
	if pc.Rounds != 6 {
		t.Fatalf("rounds = %d, want 2d = 6", pc.Rounds)
	}
}

// bruteThrough counts length-d augmenting paths through each node by
// explicit enumeration.
func bruteThrough(g *graph.Graph, mate []int, d int, t *testing.T) []int64 {
	t.Helper()
	paths, err := EnumerateAugmentingPaths(g, mate, d, allActive(g.N()), 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	out := make([]int64, g.N())
	for _, p := range paths {
		for _, v := range p {
			out[v]++
		}
	}
	return out
}

func TestClaimB5CountsMatchEnumeration(t *testing.T) {
	// On a bipartite graph with a maximal matching (no length-1 augmenting
	// paths), the layered traversal must count exactly the length-3
	// augmenting paths through every node.
	r := rng.New(2)
	for trial := 0; trial < 25; trial++ {
		g, side := graph.RandomBipartite(7, 7, 0.35, r.Split(uint64(trial)))
		mate := MateFromMatching(g, exact.GreedyMatching(g))
		pc, err := CountPaths(g, side, mate, 3, allActive(g.N()))
		if err != nil {
			t.Fatal(err)
		}
		want := bruteThrough(g, mate, 3, t)
		for v := 0; v < g.N(); v++ {
			if pc.Through[v] != want[v] {
				t.Fatalf("trial %d: Through[%d] = %d, enumeration says %d",
					trial, v, pc.Through[v], want[v])
			}
		}
	}
}

func TestClaimB6AttenuatedSums(t *testing.T) {
	// With attenuations α, ThroughMass[v] must equal Σ over enumerated
	// length-3 augmenting paths through v of Π_{u∈P} α(u).
	r := rng.New(3)
	for trial := 0; trial < 15; trial++ {
		g, side := graph.RandomBipartite(6, 6, 0.4, r.Split(uint64(trial)))
		mate := MateFromMatching(g, exact.GreedyMatching(g))
		alpha := make([]float64, g.N())
		for v := range alpha {
			alpha[v] = 0.25 + 0.75*r.Split(uint64(900+trial)).Float64()
			if side[v] == 1 && mate[v] != -1 {
				alpha[v] = 1 // matched B-nodes carry no attenuation (§B.3)
			}
		}
		as, err := Attenuated(g, side, mate, 3, allActive(g.N()), alpha, nil)
		if err != nil {
			t.Fatal(err)
		}
		paths, err := EnumerateAugmentingPaths(g, mate, 3, allActive(g.N()), 1<<20)
		if err != nil {
			t.Fatal(err)
		}
		want := make([]float64, g.N())
		for _, p := range paths {
			prod := 1.0
			for _, u := range p {
				prod *= alpha[u]
			}
			for _, u := range p {
				want[u] += prod
			}
		}
		for v := 0; v < g.N(); v++ {
			if math.Abs(as.ThroughMass[v]-want[v]) > 1e-9 {
				t.Fatalf("trial %d: ThroughMass[%d] = %v, want %v", trial, v, as.ThroughMass[v], want[v])
			}
		}
	}
}

func TestAttenuatedWithUnitAlphaMatchesCounts(t *testing.T) {
	g, side := graph.RandomBipartite(8, 8, 0.3, rng.New(4))
	mate := MateFromMatching(g, exact.GreedyMatching(g))
	alpha := make([]float64, g.N())
	for v := range alpha {
		alpha[v] = 1
	}
	pc, err := CountPaths(g, side, mate, 3, allActive(g.N()))
	if err != nil {
		t.Fatal(err)
	}
	as, err := Attenuated(g, side, mate, 3, allActive(g.N()), alpha, nil)
	if err != nil {
		t.Fatal(err)
	}
	for v := 0; v < g.N(); v++ {
		if math.Abs(float64(pc.Through[v])-as.ThroughMass[v]) > 1e-9 {
			t.Fatalf("node %d: count %d vs mass %v", v, pc.Through[v], as.ThroughMass[v])
		}
	}
}

func TestOneEpsLocalApproximation(t *testing.T) {
	r := rng.New(5)
	for trial := 0; trial < 8; trial++ {
		g := graph.GNP(26, 0.15, r.Split(uint64(trial)))
		res, err := OneEpsLocal(g, OneEpsParams{Eps: 0.34, K: 2}, r.Split(uint64(700+trial)))
		if err != nil {
			t.Fatal(err)
		}
		if !g.IsMatching(res.Matching) {
			t.Fatalf("trial %d: output not a matching", trial)
		}
		opt := len(exact.MaxCardinalityMatching(g))
		// (1+ε) among active nodes; deactivated nodes can each cost at most
		// one matched edge.
		bound := float64(opt) - float64(2*res.Deactivated)
		if (1.34)*float64(len(res.Matching)) < bound {
			t.Fatalf("trial %d: |M|=%d, OPT=%d, deactivated=%d — (1+ε) violated",
				trial, len(res.Matching), opt, res.Deactivated)
		}
	}
}

func TestOneEpsLocalTightEps(t *testing.T) {
	// ε = 1 only requires clearing length-1 and length-3 paths; the result
	// must at least be a maximal matching (≥ OPT/2).
	g := graph.GNP(30, 0.2, rng.New(6))
	res, err := OneEpsLocal(g, OneEpsParams{Eps: 1, K: 2}, rng.New(7))
	if err != nil {
		t.Fatal(err)
	}
	opt := len(exact.MaxCardinalityMatching(g))
	if 2*len(res.Matching)+2*res.Deactivated < opt {
		t.Fatalf("|M|=%d below OPT/2=%d/2", len(res.Matching), opt)
	}
}

func TestOneEpsParamsValidation(t *testing.T) {
	g := graph.Path(4)
	if _, err := OneEpsLocal(g, OneEpsParams{Eps: 0, K: 2}, rng.New(8)); err == nil {
		t.Fatal("ε=0 accepted")
	}
	if _, err := OneEpsLocal(g, OneEpsParams{Eps: 0.5, K: 1}, rng.New(9)); err == nil {
		t.Fatal("K=1 accepted")
	}
}

func TestOneEpsRoundsScaleWithPhases(t *testing.T) {
	g := graph.GNP(24, 0.2, rng.New(10))
	coarse, err := OneEpsLocal(g, OneEpsParams{Eps: 1, K: 2}, rng.New(11))
	if err != nil {
		t.Fatal(err)
	}
	fine, err := OneEpsLocal(g, OneEpsParams{Eps: 0.25, K: 2}, rng.New(11))
	if err != nil {
		t.Fatal(err)
	}
	if fine.Rounds < coarse.Rounds {
		t.Fatalf("smaller ε should not use fewer rounds: %d vs %d", fine.Rounds, coarse.Rounds)
	}
}
