package augment

import (
	"fmt"
	"math"

	"repro/internal/graph"
	"repro/internal/hypergraph"
	"repro/internal/rng"
)

// OneEpsParams configures the (1+ε)-approximation (Theorem B.4).
type OneEpsParams struct {
	// Eps is the approximation slack; the matching is (1+ε)-approximate
	// among nodes that stay active.
	Eps float64
	// K is the probability factor of the hypergraph matcher (≥ 2; the paper
	// uses log^{0.1}∆).
	K int
	// Delta is the per-phase deactivation probability δ (0 picks the
	// paper's Θ(ε²)).
	Delta float64
	// PathCap bounds the number of enumerated augmenting paths per phase.
	// Zero means 1 << 20.
	PathCap int
}

// OneEpsResult is the outcome of the Hopcroft–Karp style (1+ε) algorithm.
type OneEpsResult struct {
	Matching []int
	// Rounds charges each hypergraph-matcher iteration of the length-ℓ phase
	// ℓ+2 graph rounds — the cost of simulating one conflict-graph round in
	// the LOCAL model (§3.2).
	Rounds int
	// Deactivated counts nodes removed by the near-maximality cap; the
	// analysis keeps E[Deactivated] ≤ δ'·n with δ' = O(δ/ε).
	Deactivated int
	// PhaseIterations records the hypergraph matcher's iteration count per
	// odd path length.
	PhaseIterations map[int]int
}

// OneEpsLocal computes a (1+ε)-approximation of maximum cardinality matching
// following §B.2: for each odd ℓ up to 2⌈1/ε⌉+1, find a nearly-maximal set
// of vertex-disjoint length-ℓ augmenting paths — a nearly-maximal matching
// in the rank-(ℓ+1) hypergraph whose hyperedges are the paths — flip them
// all, and deactivate the nodes the matcher gave up on.
func OneEpsLocal(g *graph.Graph, p OneEpsParams, r *rng.Stream) (*OneEpsResult, error) {
	if p.Eps <= 0 || p.Eps > 1 {
		return nil, fmt.Errorf("augment: ε must be in (0,1], got %v", p.Eps)
	}
	if p.K < 2 {
		return nil, fmt.Errorf("augment: K must be ≥ 2, got %d", p.K)
	}
	delta := p.Delta
	if delta == 0 {
		delta = p.Eps * p.Eps / 4
	}
	pathCap := p.PathCap
	if pathCap == 0 {
		pathCap = 1 << 20
	}
	maxLen := 2*int(math.Ceil(1/p.Eps)) + 1

	n := g.N()
	mate := make([]int, n)
	for v := range mate {
		mate[v] = -1
	}
	active := make([]bool, n)
	for v := range active {
		active[v] = true
	}
	res := &OneEpsResult{PhaseIterations: make(map[int]int)}

	for l := 1; l <= maxLen; l += 2 {
		paths, err := EnumerateAugmentingPaths(g, mate, l, active, pathCap)
		if err != nil {
			return nil, fmt.Errorf("augment: phase ℓ=%d: %w", l, err)
		}
		if len(paths) == 0 {
			res.Rounds += l + 2 // the emptiness check itself costs a sweep
			continue
		}
		h := hypergraph.New(n, l+1)
		for _, path := range paths {
			if _, err := h.AddEdge(path); err != nil {
				return nil, fmt.Errorf("augment: phase ℓ=%d: %w", l, err)
			}
		}
		nm, err := h.NearlyMaximalMatching(hypergraph.Params{K: p.K, Delta: delta}, r)
		if err != nil {
			return nil, fmt.Errorf("augment: phase ℓ=%d: %w", l, err)
		}
		res.PhaseIterations[l] = nm.Iterations
		res.Rounds += nm.Iterations * (l + 2)
		for _, id := range nm.Matching {
			// Hyperedge id corresponds to paths[id] (AddEdge preserves
			// insertion order); h.Edge(id) is sorted and loses the path
			// sequence FlipPath needs.
			if err := FlipPath(g, mate, paths[id]); err != nil {
				return nil, fmt.Errorf("augment: phase ℓ=%d flip: %w", l, err)
			}
		}
		for v, dead := range nm.Deactivated {
			if dead && active[v] {
				active[v] = false
				res.Deactivated++
			}
		}
	}

	matching, err := MatchingFromMate(g, mate)
	if err != nil {
		return nil, err
	}
	res.Matching = matching
	return res, nil
}
