package augment

import (
	"fmt"

	"repro/internal/graph"
)

// PathCounts holds the results of the bipartite forward/backward traversals
// of Appendix B.3 (Figure 1, Claims B.5 and B.6).
type PathCounts struct {
	// Length is the augmenting-path length d the traversal targeted.
	Length int
	// Layer[v] is the BFS layer of v in the alternating layering (-1 if v is
	// not reached by any shortest half-augmenting path).
	Layer []int
	// Forward[v] is the number of half-augmenting paths of length Layer[v]
	// ending at v (the black numbers of Figure 1).
	Forward []int64
	// Suffix[v] is the number of ways to complete a path from v to an
	// unmatched B-node at layer d.
	Suffix []int64
	// Through[v] = Forward[v]·Suffix[v] is the number of length-d augmenting
	// paths through v (the purple numbers of Figure 1; Claim B.5).
	Through []int64
	// Rounds is the CONGEST round cost of the two traversals (d each).
	Rounds int
}

// CountPaths runs the layered forward and backward traversals on a bipartite
// graph. side[v] ∈ {0,1} (0 = A, 1 = B), mate is the current matching, d the
// odd target length, and active restricts the traversal. Each message of the
// real protocol carries one O(log n + d·log ∆)-bit counter; the Rounds field
// charges 2d rounds as in the paper.
func CountPaths(g *graph.Graph, side, mate []int, d int, active []bool) (*PathCounts, error) {
	if d < 1 || d%2 == 0 {
		return nil, fmt.Errorf("augment: traversal length must be odd, got %d", d)
	}
	n := g.N()
	pc := &PathCounts{
		Length:  d,
		Layer:   make([]int, n),
		Forward: make([]int64, n),
		Suffix:  make([]int64, n),
		Through: make([]int64, n),
		Rounds:  2 * d,
	}
	for v := range pc.Layer {
		pc.Layer[v] = -1
	}
	// Forward: layer 0 = unmatched A-nodes.
	for v := 0; v < n; v++ {
		if active[v] && side[v] == 0 && mate[v] == -1 {
			pc.Layer[v] = 0
			pc.Forward[v] = 1
		}
	}
	for t := 1; t <= d; t++ {
		if t%2 == 1 {
			// A→B along non-matching edges: a fresh B-node sums the counts
			// of its layer-(t-1) A-neighbors.
			for v := 0; v < n; v++ {
				if !active[v] || side[v] != 1 || pc.Layer[v] != -1 {
					continue
				}
				var s int64
				for _, a32 := range g.Neighbors(v) {
					a := int(a32)
					if active[a] && side[a] == 0 && pc.Layer[a] == t-1 && mate[a] != v {
						s += pc.Forward[a]
					}
				}
				if s > 0 {
					pc.Layer[v] = t
					pc.Forward[v] = s
				}
			}
		} else {
			// B→A along the matching edge.
			for v := 0; v < n; v++ {
				if !active[v] || side[v] != 1 || pc.Layer[v] != t-1 || mate[v] == -1 {
					continue
				}
				a := mate[v]
				if active[a] && pc.Layer[a] == -1 {
					pc.Layer[a] = t
					pc.Forward[a] = pc.Forward[v]
				}
			}
		}
	}
	// Backward: suffix counts from unmatched B-nodes at layer d.
	for v := 0; v < n; v++ {
		if active[v] && side[v] == 1 && pc.Layer[v] == d && mate[v] == -1 {
			pc.Suffix[v] = 1
		}
	}
	for t := d - 1; t >= 0; t-- {
		for v := 0; v < n; v++ {
			if !active[v] || pc.Layer[v] != t {
				continue
			}
			if t%2 == 0 {
				// A-node at even layer: continue along non-matching edges to
				// layer t+1 B-nodes.
				var s int64
				for _, b32 := range g.Neighbors(v) {
					b := int(b32)
					if active[b] && side[b] == 1 && pc.Layer[b] == t+1 && mate[v] != b {
						s += pc.Suffix[b]
					}
				}
				pc.Suffix[v] = s
			} else if side[v] == 1 && mate[v] != -1 {
				// Matched B-node at odd layer: the path continues through the
				// matching edge.
				a := mate[v]
				if active[a] && pc.Layer[a] == t+1 {
					pc.Suffix[v] = pc.Suffix[a]
				}
			}
		}
	}
	for v := 0; v < n; v++ {
		pc.Through[v] = pc.Forward[v] * pc.Suffix[v]
	}
	return pc, nil
}

// AttenuatedSums is the probability-weighted version of CountPaths used by
// the CONGEST algorithm of Appendix B.3: each path P carries probability
// p(P) = Π_{v∈P} α(v), and ThroughMass[v] = Σ_{P∋v} p(P) (Claim B.6).
type AttenuatedSums struct {
	Layer       []int
	ForwardMass []float64 // Σ over half-paths ending at v of Π α (inclusive)
	SuffixMass  []float64 // Σ over suffixes from v of Π α (inclusive)
	ThroughMass []float64 // Σ_{P∋v} p(P)
	EndMass     []float64 // for unmatched B-nodes: Σ over paths ending there
	Rounds      int
}

// Attenuated runs the forward/backward traversals with attenuation
// parameters alpha. restrict, when non-nil, removes nodes from the traversal
// (used to sum only over light paths).
func Attenuated(g *graph.Graph, side, mate []int, d int, active []bool, alpha []float64, restrict []bool) (*AttenuatedSums, error) {
	if d < 1 || d%2 == 0 {
		return nil, fmt.Errorf("augment: traversal length must be odd, got %d", d)
	}
	n := g.N()
	ok := func(v int) bool {
		if !active[v] {
			return false
		}
		return restrict == nil || restrict[v]
	}
	as := &AttenuatedSums{
		Layer:       make([]int, n),
		ForwardMass: make([]float64, n),
		SuffixMass:  make([]float64, n),
		ThroughMass: make([]float64, n),
		EndMass:     make([]float64, n),
		Rounds:      2 * d,
	}
	for v := range as.Layer {
		as.Layer[v] = -1
	}
	for v := 0; v < n; v++ {
		if ok(v) && side[v] == 0 && mate[v] == -1 {
			as.Layer[v] = 0
			as.ForwardMass[v] = alpha[v]
		}
	}
	for t := 1; t <= d; t++ {
		if t%2 == 1 {
			for v := 0; v < n; v++ {
				if !ok(v) || side[v] != 1 || as.Layer[v] != -1 {
					continue
				}
				s := 0.0
				for _, a32 := range g.Neighbors(v) {
					a := int(a32)
					if ok(a) && side[a] == 0 && as.Layer[a] == t-1 && mate[a] != v {
						s += as.ForwardMass[a]
					}
				}
				if s > 0 {
					as.Layer[v] = t
					as.ForwardMass[v] = s * alpha[v]
				}
			}
		} else {
			for v := 0; v < n; v++ {
				if !ok(v) || side[v] != 1 || as.Layer[v] != t-1 || mate[v] == -1 {
					continue
				}
				a := mate[v]
				if ok(a) && as.Layer[a] == -1 {
					as.Layer[a] = t
					as.ForwardMass[a] = as.ForwardMass[v] * alpha[a]
				}
			}
		}
	}
	for v := 0; v < n; v++ {
		if ok(v) && side[v] == 1 && as.Layer[v] == d && mate[v] == -1 {
			as.SuffixMass[v] = alpha[v]
			as.EndMass[v] = as.ForwardMass[v]
		}
	}
	for t := d - 1; t >= 0; t-- {
		for v := 0; v < n; v++ {
			if !ok(v) || as.Layer[v] != t {
				continue
			}
			if t%2 == 0 {
				s := 0.0
				for _, b32 := range g.Neighbors(v) {
					b := int(b32)
					if ok(b) && side[b] == 1 && as.Layer[b] == t+1 && mate[v] != b {
						s += as.SuffixMass[b]
					}
				}
				as.SuffixMass[v] = s * alpha[v]
			} else if side[v] == 1 && mate[v] != -1 {
				a := mate[v]
				if ok(a) && as.Layer[a] == t+1 {
					as.SuffixMass[v] = as.SuffixMass[a] * alpha[v]
				}
			}
		}
	}
	for v := 0; v < n; v++ {
		if as.Layer[v] >= 0 && alpha[v] > 0 {
			// Forward and suffix both include α(v); divide one copy out.
			as.ThroughMass[v] = as.ForwardMass[v] * as.SuffixMass[v] / alpha[v]
		}
	}
	return as, nil
}
