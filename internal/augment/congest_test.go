package augment

import (
	"testing"

	"repro/internal/exact"
	"repro/internal/graph"
	"repro/internal/rng"
)

func TestBipartiteOneEpsCongest(t *testing.T) {
	r := rng.New(1)
	for trial := 0; trial < 8; trial++ {
		g, side := graph.RandomBipartite(12, 12, 0.3, r.Split(uint64(trial)))
		if g.M() == 0 {
			continue
		}
		mate := make([]int, g.N())
		for v := range mate {
			mate[v] = -1
		}
		active := allActive(g.N())
		rounds, dead, err := BipartiteOneEpsCongest(g, side, mate,
			CongestOneEpsParams{Eps: 0.5, K: 2}, active, r.Split(uint64(100+trial)))
		if err != nil {
			t.Fatal(err)
		}
		m, err := MatchingFromMate(g, mate)
		if err != nil {
			t.Fatal(err)
		}
		if !g.IsMatching(m) {
			t.Fatalf("trial %d: not a matching", trial)
		}
		if rounds <= 0 {
			t.Fatalf("trial %d: no rounds charged", trial)
		}
		opt := len(exact.MaxCardinalityMatching(g))
		// ε=0.5 ⇒ lengths {1,3} cleared among active nodes ⇒ (1.5)-approx
		// up to deactivations (each can cost one OPT edge).
		if 2*(len(m)+dead) < opt {
			t.Fatalf("trial %d: |M|=%d dead=%d OPT=%d", trial, len(m), dead, opt)
		}
	}
}

func TestBipartitePhaseClearsPaths(t *testing.T) {
	// After a length-d phase, no length-d augmenting path may survive among
	// active nodes — the Hopcroft–Karp progress invariant.
	r := rng.New(2)
	for trial := 0; trial < 10; trial++ {
		g, side := graph.RandomBipartite(10, 10, 0.35, r.Split(uint64(trial)))
		mate := make([]int, g.N())
		for v := range mate {
			mate[v] = -1
		}
		active := allActive(g.N())
		if _, _, err := augmentLengthPhase(g, side, mate, 1,
			CongestOneEpsParams{Eps: 1, K: 2}, active, r.Split(uint64(50+trial))); err != nil {
			t.Fatal(err)
		}
		paths, err := EnumerateAugmentingPaths(g, mate, 1, active, 1<<20)
		if err != nil {
			t.Fatal(err)
		}
		if len(paths) != 0 {
			t.Fatalf("trial %d: %d length-1 paths survive among active nodes", trial, len(paths))
		}
	}
}

func TestOneEpsCongestGeneralGraphs(t *testing.T) {
	r := rng.New(3)
	var got, dead, opt int
	for trial := 0; trial < 6; trial++ {
		g := graph.GNP(24, 0.18, r.Split(uint64(trial)))
		res, err := OneEpsCongest(g, CongestOneEpsParams{Eps: 0.5, K: 2}, r.Split(uint64(900+trial)))
		if err != nil {
			t.Fatal(err)
		}
		if !g.IsMatching(res.Matching) {
			t.Fatalf("trial %d: not a matching", trial)
		}
		got += len(res.Matching)
		dead += res.Deactivated
		opt += len(exact.MaxCardinalityMatching(g))
	}
	// Aggregate sanity: within (1+ε) of OPT modulo deactivation losses, with
	// slack for the randomized stages.
	if 2*(got+dead) < opt {
		t.Fatalf("aggregate: got %d (+%d dead) vs OPT %d", got, dead, opt)
	}
}

func TestOneEpsCongestRoundsGrowWithPrecision(t *testing.T) {
	g := graph.GNP(20, 0.2, rng.New(4))
	coarse, err := OneEpsCongest(g, CongestOneEpsParams{Eps: 1, K: 2}, rng.New(5))
	if err != nil {
		t.Fatal(err)
	}
	fine, err := OneEpsCongest(g, CongestOneEpsParams{Eps: 0.5, K: 2}, rng.New(5))
	if err != nil {
		t.Fatal(err)
	}
	if fine.Rounds <= coarse.Rounds {
		t.Fatalf("ε=0.5 (%d rounds) should cost more than ε=1 (%d rounds)", fine.Rounds, coarse.Rounds)
	}
	if fine.Stages <= coarse.Stages {
		t.Fatalf("stage count should grow as ε shrinks: %d vs %d", fine.Stages, coarse.Stages)
	}
}

func TestOneEpsCongestValidation(t *testing.T) {
	g := graph.Path(4)
	if _, err := OneEpsCongest(g, CongestOneEpsParams{Eps: 0, K: 2}, rng.New(6)); err == nil {
		t.Fatal("ε=0 accepted")
	}
	if _, err := OneEpsCongest(g, CongestOneEpsParams{Eps: 0.5, K: 1}, rng.New(7)); err == nil {
		t.Fatal("K=1 accepted")
	}
}

func TestOneEpsCongestOnPerfectMatchableGraph(t *testing.T) {
	// An even cycle has a perfect matching; ε=0.5 must find ≥ 2/3 of it.
	g := graph.Cycle(16)
	res, err := OneEpsCongest(g, CongestOneEpsParams{Eps: 0.5, K: 2}, rng.New(8))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Matching)+res.Deactivated < 6 {
		t.Fatalf("matched only %d of 8 on C16 (dead=%d)", len(res.Matching), res.Deactivated)
	}
}
