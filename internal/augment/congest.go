package augment

import (
	"fmt"
	"math"

	"repro/internal/graph"
	"repro/internal/rng"
)

// Appendix B.3: the CONGEST-model (1+ε)-approximation. The conflict graph of
// augmenting paths is never built; instead each node carries an attenuation
// parameter α(v), the marking probability of a path is p(P) = Π_{v∈P} α(v),
// and the forward/backward traversals of Claims B.5/B.6 compute the per-node
// path masses Σ_{P∋v} p(P) by message passing. Paths are sampled link by
// link by tokens that die on collision; heavy nodes throttle themselves, and
// nodes that stay in "good" iterations too long are deactivated.
//
// The traversals and token passes are executed here as data-parallel sweeps
// with the paper's round charges (each sweep = 2d CONGEST rounds, each token
// pass = 2d); DESIGN.md §3 records this simulation shortcut.

// CongestOneEpsParams configures the §B.3 algorithm.
type CongestOneEpsParams struct {
	// Eps is the target approximation slack.
	Eps float64
	// K is the attenuation adjustment factor (≥ 2).
	K int
	// Delta is the per-phase deactivation probability target (0 → Θ(ε²)).
	Delta float64
	// Beta scales the iteration budgets (0 → 2).
	Beta int
}

// CongestOneEpsResult reports the outcome.
type CongestOneEpsResult struct {
	Matching []int
	// Rounds is the total CONGEST round charge: traversals, token passes and
	// bookkeeping across all stages and path lengths.
	Rounds int
	// Deactivated counts nodes removed by the good-iteration cap or the
	// iteration-budget fallback.
	Deactivated int
	// Stages is the number of random bipartitions used (general graphs).
	Stages int
}

func (p CongestOneEpsParams) validate() error {
	if p.Eps <= 0 || p.Eps > 1 {
		return fmt.Errorf("augment: ε must be in (0,1], got %v", p.Eps)
	}
	if p.K < 2 {
		return fmt.Errorf("augment: K must be ≥ 2, got %d", p.K)
	}
	return nil
}

// BipartiteOneEpsCongest runs the §B.3 algorithm on a bipartite graph: for
// each odd d up to 2⌈1/ε⌉-1 it finds a nearly-maximal set of length-d
// augmenting paths via attenuated traversals and token marking, flips them,
// and deactivates stragglers. mate is mutated in place; active marks the
// nodes still in the problem.
func BipartiteOneEpsCongest(g *graph.Graph, side, mate []int, params CongestOneEpsParams, active []bool, r *rng.Stream) (rounds, deactivated int, err error) {
	if err := params.validate(); err != nil {
		return 0, 0, err
	}
	maxLen := 2*int(math.Ceil(1/params.Eps)) - 1
	if maxLen < 1 {
		maxLen = 1
	}
	for d := 1; d <= maxLen; d += 2 {
		dr, dd, err := augmentLengthPhase(g, side, mate, d, params, active, r)
		if err != nil {
			return rounds, deactivated, err
		}
		rounds += dr
		deactivated += dd
	}
	return rounds, deactivated, nil
}

// augmentLengthPhase eliminates (nearly) all length-d augmenting paths among
// active nodes.
func augmentLengthPhase(g *graph.Graph, side, mate []int, d int, params CongestOneEpsParams, active []bool, r *rng.Stream) (rounds, deactivated int, err error) {
	n := g.N()
	K := float64(params.K)
	delta := params.Delta
	if delta == 0 {
		delta = params.Eps * params.Eps / 4
	}
	beta := params.Beta
	if beta == 0 {
		beta = 2
	}
	df := float64(d)
	// Iteration budget (Lemma B.11 shape) and good-iteration cap
	// (Lemma B.10). K^{2d} is the paper's attenuation step; it dominates the
	// constants, so d beyond ~5 needs small K.
	k2d := math.Pow(K, 2*df)
	maxDeg := float64(g.MaxDegree() + 2)
	budget := int(math.Ceil(float64(beta) * (df*df*k2d*math.Log(1/delta) + df*df*df*math.Log(maxDeg)/math.Log(K))))
	goodCap := int(math.Ceil(float64(beta) * df * k2d * math.Log(1/delta)))
	heavyThreshold := 1 / (10 * df)
	goodThreshold := 1 / (df * k2d)
	alphaFloor := math.Pow(maxDeg, -20/params.Eps)

	// Attenuations: 1/K at unmatched A-nodes, 1 elsewhere (§B.3).
	alpha := make([]float64, n)
	resetAlpha := func(v int) {
		if side[v] == 0 && mate[v] == -1 {
			alpha[v] = 1 / K
		} else {
			alpha[v] = 1
		}
	}
	for v := 0; v < n; v++ {
		resetAlpha(v)
	}
	goodRounds := make([]int, n)
	heavy := make([]bool, n)
	notHeavy := make([]bool, n)

	for iter := 0; ; iter++ {
		// Do any length-d augmenting paths remain among active nodes? The
		// unattenuated traversal answers in 2d rounds.
		pc, err := CountPaths(g, side, mate, d, active)
		if err != nil {
			return rounds, deactivated, err
		}
		rounds += pc.Rounds
		remaining := false
		for v := 0; v < n && !remaining; v++ {
			if side[v] == 1 && mate[v] == -1 && active[v] && pc.Layer[v] == d && pc.Forward[v] > 0 {
				remaining = true
			}
		}
		if !remaining {
			return rounds, deactivated, nil
		}
		if iter >= budget {
			// Budget exhausted (Lemma B.11 says this is rare): deactivate
			// every node still carrying a path, preserving the phase
			// postcondition at bounded deactivation cost.
			for v := 0; v < n; v++ {
				if active[v] && pc.Through[v] > 0 {
					active[v] = false
					deactivated++
				}
			}
			return rounds, deactivated, nil
		}

		// Attenuated masses (Claim B.6) and the heavy set.
		as, err := Attenuated(g, side, mate, d, active, alpha, nil)
		if err != nil {
			return rounds, deactivated, err
		}
		rounds += as.Rounds
		for v := 0; v < n; v++ {
			heavy[v] = as.ThroughMass[v] >= heavyThreshold
			notHeavy[v] = !heavy[v]
		}

		// Light-path masses: the same traversal restricted to non-heavy
		// nodes; drives good-iteration counting and deactivation.
		light, err := Attenuated(g, side, mate, d, active, alpha, notHeavy)
		if err != nil {
			return rounds, deactivated, err
		}
		rounds += light.Rounds
		for v := 0; v < n; v++ {
			if !active[v] || light.ThroughMass[v] < goodThreshold {
				continue
			}
			goodRounds[v]++
			if goodRounds[v] > goodCap {
				active[v] = false
				deactivated++
			}
		}

		// Token marking: each non-heavy unmatched B endpoint initiates a
		// token with probability equal to its ending path mass, then walks
		// it backwards link by link, choosing predecessors proportionally to
		// their forward masses. Tokens sharing a node all die.
		tokens := sampleTokens(g, side, mate, d, active, as, heavy, r)
		rounds += 2 * d
		visits := make(map[int]int)
		for _, tok := range tokens {
			for _, v := range tok {
				visits[v]++
			}
		}
		for _, tok := range tokens {
			lone := true
			for _, v := range tok {
				if visits[v] > 1 {
					lone = false
					break
				}
			}
			if !lone {
				continue
			}
			// Reverse to run from the unmatched A-node, then flip.
			path := make([]int, len(tok))
			for i, v := range tok {
				path[len(tok)-1-i] = v
			}
			if err := FlipPath(g, mate, path); err != nil {
				return rounds, deactivated, fmt.Errorf("augment: congest flip: %w", err)
			}
			for _, v := range path {
				resetAlpha(v) // roles changed; matched nodes carry α = 1
			}
		}
		rounds += 2 // attenuation updates and bookkeeping

		// Attenuation dynamics (§B.3).
		for v := 0; v < n; v++ {
			if !active[v] {
				continue
			}
			if heavy[v] {
				alpha[v] = math.Max(alpha[v]*math.Pow(K, -2*df), alphaFloor)
				continue
			}
			limit := 1.0
			if side[v] == 0 && mate[v] == -1 {
				limit = 1 / K
			}
			alpha[v] = math.Min(limit, alpha[v]*K)
		}
	}
}

// sampleTokens performs the link-by-link backward sampling of marked paths.
// Each returned token is a node sequence from an unmatched B-node (layer d)
// down to an unmatched A-node (layer 0).
func sampleTokens(g *graph.Graph, side, mate []int, d int, active []bool, as *AttenuatedSums, heavy []bool, r *rng.Stream) [][]int {
	var tokens [][]int
	for b := 0; b < g.N(); b++ {
		if !active[b] || side[b] != 1 || mate[b] != -1 || as.Layer[b] != d || heavy[b] {
			continue
		}
		if !r.Bernoulli(math.Min(1, as.EndMass[b])) {
			continue
		}
		tok := []int{b}
		cur := b
		ok := true
		for t := d; t > 0 && ok; t-- {
			if t%2 == 1 {
				// B-node at odd layer t: predecessor is an A-neighbor at
				// layer t-1 (non-matching edge), chosen ∝ forward mass.
				var opts []int
				var weights []float64
				total := 0.0
				for _, a32 := range g.Neighbors(cur) {
					a := int(a32)
					if active[a] && side[a] == 0 && as.Layer[a] == t-1 && mate[a] != cur && as.ForwardMass[a] > 0 {
						opts = append(opts, a)
						weights = append(weights, as.ForwardMass[a])
						total += as.ForwardMass[a]
					}
				}
				if total <= 0 {
					ok = false
					break
				}
				x := r.Float64() * total
				pick := opts[len(opts)-1]
				for i, w := range weights {
					if x < w {
						pick = opts[i]
						break
					}
					x -= w
				}
				cur = pick
			} else {
				// Matched A-node at even layer t: predecessor is its mate.
				m := mate[cur]
				if m == -1 || !active[m] || as.Layer[m] != t-1 {
					ok = false
					break
				}
				cur = m
			}
			tok = append(tok, cur)
		}
		if ok && len(tok) == d+1 {
			tokens = append(tokens, tok)
		}
	}
	return tokens
}

// OneEpsCongest computes a (1+ε)-approximate maximum cardinality matching on
// a general graph in the CONGEST model, following §B.3: 2^O(1/ε) stages each
// draw a random red/blue bipartition (keeping unmatched nodes and
// bichromatically matched pairs), then run the bipartite §B.3 phase for all
// odd lengths up to 2⌈1/ε⌉-1.
func OneEpsCongest(g *graph.Graph, params CongestOneEpsParams, r *rng.Stream) (*CongestOneEpsResult, error) {
	if err := params.validate(); err != nil {
		return nil, err
	}
	n := g.N()
	mate := make([]int, n)
	for v := range mate {
		mate[v] = -1
	}
	activeGlobal := make([]bool, n)
	for v := range activeGlobal {
		activeGlobal[v] = true
	}
	stages := int(math.Ceil(math.Pow(2, 1/params.Eps))) + 2
	res := &CongestOneEpsResult{Stages: stages}

	side := make([]int, n)
	kept := make([]bool, n)
	work := make([]bool, n)
	for s := 0; s < stages; s++ {
		for v := 0; v < n; v++ {
			if r.Bernoulli(0.5) {
				side[v] = 0
			} else {
				side[v] = 1
			}
		}
		res.Rounds++ // announcing colors
		// Keep unmatched nodes and bichromatic matched pairs (§B.3).
		for v := 0; v < n; v++ {
			m := mate[v]
			kept[v] = activeGlobal[v] && (m == -1 || (side[v] != side[m] && activeGlobal[m]))
			work[v] = kept[v]
		}
		rounds, dead, err := BipartiteOneEpsCongest(g, side, mate, params, work, r)
		if err != nil {
			return nil, err
		}
		res.Rounds += rounds
		res.Deactivated += dead
		// Only genuine deactivations persist across stages; nodes merely
		// left out of this stage's bipartition stay available.
		for v := 0; v < n; v++ {
			if kept[v] && !work[v] {
				activeGlobal[v] = false
			}
		}
	}

	matching, err := MatchingFromMate(g, mate)
	if err != nil {
		return nil, err
	}
	if !g.IsMatching(matching) {
		return nil, fmt.Errorf("augment: congest produced a non-matching")
	}
	res.Matching = matching
	return res, nil
}
