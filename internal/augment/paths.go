// Package augment implements the augmenting-path machinery behind the
// paper's (1+ε)-approximation of maximum cardinality matching (§3.2,
// Appendices B.2–B.3): path enumeration and flipping, the Hopcroft–Karp
// phase framework driven by nearly-maximal hypergraph matchings, and the
// bipartite forward/backward counting traversals of Claims B.5/B.6
// (Figure 1).
//
// Layer (DESIGN.md §2): augment is part of the §3/§B algorithm layer,
// above internal/graph, internal/rng and internal/hypergraph and below
// internal/registry.
//
// Concurrency and ownership: every entry point is a synchronous computation
// on the calling goroutine. Input graphs are read-only (weights included);
// mate/active slices passed in are mutated in place exactly where the
// function documents it (FlipPath, the phase drivers) and are owned by the
// caller. Concurrent runs must not share mate/active slices; sharing the
// immutable graph is fine.
package augment

import (
	"fmt"

	"repro/internal/graph"
)

// MateFromMatching converts a matching (edge IDs) to a mate vector.
func MateFromMatching(g *graph.Graph, matching []int) []int {
	return g.MatchedMates(matching)
}

// MatchingFromMate converts a mate vector back to edge IDs.
func MatchingFromMate(g *graph.Graph, mate []int) ([]int, error) {
	var out []int
	for v, u := range mate {
		if u < 0 || u < v {
			continue
		}
		if mate[u] != v {
			return nil, fmt.Errorf("augment: asymmetric mate vector at %d↔%d", v, u)
		}
		id, ok := g.EdgeID(v, u)
		if !ok {
			return nil, fmt.Errorf("augment: mate pair {%d,%d} is not an edge", v, u)
		}
		out = append(out, id)
	}
	return out, nil
}

// EnumerateAugmentingPaths returns every augmenting path with exactly length
// edges with respect to mate, restricted to active nodes. A path is returned
// once (canonical direction: smaller endpoint first). The search aborts with
// an error if more than cap paths exist, to keep the ∆^length blowup of the
// conflict structure in check.
func EnumerateAugmentingPaths(g *graph.Graph, mate []int, length int, active []bool, cap int) ([][]int, error) {
	if length < 1 || length%2 == 0 {
		return nil, fmt.Errorf("augment: augmenting paths have odd length, got %d", length)
	}
	var out [][]int
	inPath := make([]bool, g.N())
	path := make([]int, 0, length+1)

	var extend func(v int, depth int) error
	extend = func(v int, depth int) error {
		if depth == length {
			if mate[v] == -1 && path[0] < v {
				cp := make([]int, len(path), len(path)+1)
				copy(cp, path)
				out = append(out, append(cp, v))
				if len(out) > cap {
					return fmt.Errorf("augment: more than %d augmenting paths of length %d; raise the cap or lower ∆", cap, length)
				}
			}
			return nil
		}
		// Odd depth steps use non-matching edges; even ones follow the
		// matching edge.
		if depth%2 == 0 {
			for _, u32 := range g.Neighbors(v) {
				u := int(u32)
				if !active[u] || inPath[u] || mate[v] == u {
					continue
				}
				if depth+1 == length {
					// Final hop: endpoint must be unmatched.
					if mate[u] != -1 {
						continue
					}
				} else if mate[u] == -1 {
					continue // interior nodes on this side must be matched
				}
				path = append(path, v)
				inPath[v] = true
				if err := extend(u, depth+1); err != nil {
					return err
				}
				inPath[v] = false
				path = path[:len(path)-1]
			}
			return nil
		}
		u := mate[v]
		if u == -1 || !active[u] || inPath[u] {
			return nil
		}
		path = append(path, v)
		inPath[v] = true
		err := extend(u, depth+1)
		inPath[v] = false
		path = path[:len(path)-1]
		return err
	}

	for v := 0; v < g.N(); v++ {
		if mate[v] != -1 || !active[v] {
			continue
		}
		if err := extend(v, 0); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// FlipPath augments the matching with the given augmenting path, mutating
// mate. The path must alternate correctly; FlipPath validates and reports
// violations.
func FlipPath(g *graph.Graph, mate []int, path []int) error {
	if len(path)%2 != 0 {
		return fmt.Errorf("augment: augmenting path must have an even node count, got %d", len(path))
	}
	if mate[path[0]] != -1 || mate[path[len(path)-1]] != -1 {
		return fmt.Errorf("augment: path endpoints must be unmatched")
	}
	for i := 0; i+1 < len(path); i++ {
		u, v := path[i], path[i+1]
		if !g.HasEdge(u, v) {
			return fmt.Errorf("augment: path step {%d,%d} is not an edge", u, v)
		}
		if i%2 == 1 && mate[u] != v {
			return fmt.Errorf("augment: path step {%d,%d} should be a matching edge", u, v)
		}
	}
	// Unmatch the old pairs, then match the new ones.
	for i := 1; i+1 < len(path); i += 2 {
		mate[path[i]], mate[path[i+1]] = -1, -1
	}
	for i := 0; i+1 < len(path); i += 2 {
		mate[path[i]], mate[path[i+1]] = path[i+1], path[i]
	}
	return nil
}
