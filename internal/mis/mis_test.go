package mis

import (
	"testing"

	"repro/internal/agg"
	"repro/internal/graph"
	"repro/internal/rng"
	"repro/internal/simul"
)

var allAlgos = []string{Luby, Ghaffari, GreedyID}

func TestMISCorrectOnRandomGraphs(t *testing.T) {
	r := rng.New(1)
	for _, name := range allAlgos {
		name := name
		t.Run(name, func(t *testing.T) {
			for trial := 0; trial < 15; trial++ {
				g := graph.GNP(40, 0.15, r.Split(uint64(trial)))
				res, err := Compute(g, name, simul.Config{Seed: uint64(trial)})
				if err != nil {
					t.Fatalf("trial %d: %v", trial, err)
				}
				if !g.IsMaximalIndependentSet(res.InSet) {
					t.Fatalf("trial %d: output is not a maximal independent set", trial)
				}
			}
		})
	}
}

func TestMISOnStructuredGraphs(t *testing.T) {
	graphs := map[string]*graph.Graph{
		"star":     graph.Star(20),
		"path":     graph.Path(25),
		"cycle":    graph.Cycle(24),
		"complete": graph.Complete(12),
		"edgeless": graph.NewBuilder(10).MustBuild(),
		"single":   graph.NewBuilder(1).MustBuild(),
	}
	for _, name := range allAlgos {
		for gname, g := range graphs {
			res, err := Compute(g, name, simul.Config{Seed: 7})
			if err != nil {
				t.Fatalf("%s on %s: %v", name, gname, err)
			}
			if !g.IsMaximalIndependentSet(res.InSet) {
				t.Fatalf("%s on %s: not a maximal IS", name, gname)
			}
		}
	}
	// Sharp structural checks.
	star := graphs["star"]
	res, _ := Compute(star, Luby, simul.Config{Seed: 3})
	count := 0
	for _, in := range res.InSet {
		if in {
			count++
		}
	}
	if count != 1 && count != 19 {
		t.Fatalf("star MIS has %d members, want 1 (center) or 19 (leaves)", count)
	}
	comp, _ := Compute(graphs["complete"], Ghaffari, simul.Config{Seed: 3})
	count = 0
	for _, in := range comp.InSet {
		if in {
			count++
		}
	}
	if count != 1 {
		t.Fatalf("complete-graph MIS has %d members, want 1", count)
	}
}

func TestGreedyIDPicksLowestIDs(t *testing.T) {
	// Deterministic: on a path 0-1-2-3-4, greedy-by-ID yields {0,2,4}.
	g := graph.Path(5)
	res, err := Compute(g, GreedyID, simul.Config{})
	if err != nil {
		t.Fatal(err)
	}
	want := []bool{true, false, true, false, true}
	for v, w := range want {
		if res.InSet[v] != w {
			t.Fatalf("InSet = %v, want %v", res.InSet, want)
		}
	}
}

func TestMISOnLineGraphIsMaximalMatching(t *testing.T) {
	r := rng.New(2)
	for _, name := range allAlgos {
		for trial := 0; trial < 8; trial++ {
			g := graph.GNP(18, 0.25, r.Split(uint64(trial)))
			if g.M() == 0 {
				continue
			}
			res, err := ComputeOnLine(g, name, simul.Config{Seed: uint64(50 + trial)})
			if err != nil {
				t.Fatalf("%s trial %d: %v", name, trial, err)
			}
			var matching []int
			for id, in := range res.InSet {
				if in {
					matching = append(matching, id)
				}
			}
			if !g.IsMaximalMatching(matching) {
				t.Fatalf("%s trial %d: MIS of L(G) is not a maximal matching", name, trial)
			}
		}
	}
}

func TestMISRoundScaling(t *testing.T) {
	// Luby and Ghaffari must finish in O(log n)-ish rounds; far under the
	// window budget. Use a generous explicit constant as the regression line.
	r := rng.New(3)
	for _, name := range []string{Luby, Ghaffari} {
		for _, n := range []int{32, 128, 512} {
			g := graph.GNP(n, 8.0/float64(n), r.Split(uint64(n)))
			res, err := Compute(g, name, simul.Config{Seed: uint64(n)})
			if err != nil {
				t.Fatal(err)
			}
			bound := 12 * (ceilLog2(n+1) + 4)
			if res.VirtualRounds > bound {
				t.Errorf("%s on n=%d took %d virtual rounds (> %d)", name, n, res.VirtualRounds, bound)
			}
		}
	}
}

func TestMISDeterministicGivenSeed(t *testing.T) {
	g := graph.GNP(30, 0.2, rng.New(4))
	a, err := Compute(g, Luby, simul.Config{Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Compute(g, Luby, simul.Config{Seed: 9, Parallel: true})
	if err != nil {
		t.Fatal(err)
	}
	for v := range a.InSet {
		if a.InSet[v] != b.InSet[v] {
			t.Fatal("sequential and parallel engines disagree for the same seed")
		}
	}
}

func TestMISRunsInCongest(t *testing.T) {
	// The whole point of the aggregate formulation: O(log n)-bit messages.
	g := graph.GNP(64, 0.15, rng.New(5))
	for _, name := range allAlgos {
		res, err := Compute(g, name, simul.Config{Seed: 11, Model: simul.CONGEST})
		if err != nil {
			t.Fatalf("%s violated CONGEST: %v", name, err)
		}
		if res.Metrics.BitBudget == 0 {
			t.Fatal("CONGEST budget not enforced")
		}
	}
	// And on the line graph through the Theorem 2.8 simulation.
	for _, name := range allAlgos {
		if _, err := ComputeOnLine(g, name, simul.Config{Seed: 11, Model: simul.CONGEST}); err != nil {
			t.Fatalf("%s on L(G) violated CONGEST: %v", name, err)
		}
	}
}

func TestFactoryRejectsUnknown(t *testing.T) {
	if _, err := Factory("quantum"); err == nil {
		t.Fatal("unknown algorithm accepted")
	}
	if _, err := NewMachine(""); err == nil {
		t.Fatal("empty algorithm accepted")
	}
}

func TestSubWindowBudgets(t *testing.T) {
	for _, name := range allAlgos {
		f, err := Factory(name)
		if err != nil {
			t.Fatal(err)
		}
		s := f(0, func(agg.Data) bool { return true })
		if s.WindowRounds(1024) <= 0 || s.Fields() <= 0 {
			t.Fatalf("%s: degenerate window or fields", name)
		}
		if s.WindowRounds(1<<20) < s.WindowRounds(4) {
			t.Fatalf("%s: window budget not monotone in n", name)
		}
	}
}
