// Package mis implements the maximal independent set algorithms used as the
// black box "MIS(G)" inside the paper's Algorithm 2 (§2.2): Luby's classic
// algorithm [Lub86], a Ghaffari-style marking algorithm [Gha16], and a
// deterministic greedy-by-ID protocol.
//
// Every algorithm is expressed in two forms built from the same core:
//
//   - a Sub — an embeddable sub-protocol that a host machine (Algorithm 2)
//     drives inside a window of rounds, over a host-designated subset of
//     participating neighbors; and
//   - a standalone agg.Machine that runs the protocol to completion on a
//     graph (or, through agg.RunLine, on a line graph, where an MIS is a
//     maximal matching).
//
// All three are local aggregation algorithms (§2.4): they touch their
// neighborhoods only through Max/Min/Or/Sum aggregates, which is what lets
// Algorithm 2 run on the line graph in CONGEST without congestion overhead.
// Per the agg arena contract, every sub-protocol builds its query plans —
// including the Proj closures — once at construction and appends them in
// Queries, so driving a Sub allocates nothing per round.
//
// Layer (DESIGN.md §2): mis is a black-box layer beside internal/coloring,
// above internal/agg and internal/simul, below internal/core.
//
// Concurrency and ownership: factories return fresh protocol state per
// invocation; the Machines and Subs they build keep all per-node state in
// their Data arena views and are owned by (and confined to) the run that
// drives them. Input graphs are read-only and shareable.
package mis

import (
	"math/bits"

	"repro/internal/agg"
)

// Sub-protocol states stored in the state field.
const (
	subInactive  = 0 // not participating in the current instance
	subCompeting = 1 // participating, undecided
	subInMIS     = 2 // joined the independent set
	subOut       = 3 // has a neighbor in the independent set
)

// Sub is an MIS protocol embeddable inside a host machine's data layout.
// The host owns rounds and data; it calls Begin at the start of an instance,
// then alternates Queries/Update for WindowRounds(n) rounds (or until every
// participant it cares about is Decided). participates tells the sub-protocol
// which neighbors' data belong to the current instance.
type Sub interface {
	// Fields is the number of data fields the sub-protocol owns.
	Fields() int
	// WindowRounds is the round budget for one instance on n virtual nodes —
	// the "MIS(G)" quantity of Theorem 2.3. Randomized protocols finish
	// within it w.h.p.; stragglers simply stay undecided and rejoin the next
	// instance, which preserves correctness (footnote 3 of the paper).
	WindowRounds(n int) int
	// Begin (re)initializes the sub-fields at offset for a new instance.
	Begin(info *agg.NodeInfo, d agg.Data, active bool)
	// Queries appends the round's precomputed query plan to qs, following the
	// agg.Machine contract.
	Queries(info *agg.NodeInfo, t int, d agg.Data, qs []agg.Query) []agg.Query
	Update(info *agg.NodeInfo, t int, d agg.Data, results []int64)
	// Decided reports whether this node settled in the current instance.
	Decided(d agg.Data) bool
	// InMIS reports whether this node joined the set (valid once Decided).
	InMIS(d agg.Data) bool
}

// SubFactory builds a Sub whose fields live at data[off:off+Fields()] and
// which aggregates only over neighbors for which participates returns true.
// participates receives the neighbor's full data vector.
type SubFactory func(off int, participates func(agg.Data) bool) Sub

func ceilLog2(n int) int {
	if n <= 1 {
		return 0
	}
	return bits.Len(uint(n - 1))
}

// ---------------------------------------------------------------------------
// Luby's algorithm (permutation variant): in each two-round phase every
// competing node draws a random key; a node whose key beats all competing
// neighbors' keys joins the set, and its neighbors retire in the notify
// round. Finishes in O(log n) rounds w.h.p.

type lubySub struct {
	off          int
	participates func(agg.Data) bool
	compete      [1]agg.Query // even rounds: compare keys
	notify       [1]agg.Query // odd rounds: did a neighbor join?
}

// NewLubySub returns the Luby sub-protocol factory.
func NewLubySub() SubFactory {
	return func(off int, participates func(agg.Data) bool) Sub {
		s := &lubySub{off: off, participates: participates}
		s.compete[0] = agg.Query{Agg: agg.Max, Proj: func(nd agg.Data) int64 {
			if s.participates(nd) && s.state(nd) == subCompeting {
				return s.key(nd)
			}
			return -1
		}}
		s.notify[0] = agg.Query{Agg: agg.Or, Proj: func(nd agg.Data) int64 {
			if s.participates(nd) && s.state(nd) == subInMIS {
				return 1
			}
			return 0
		}}
		return s
	}
}

func (s *lubySub) Fields() int { return 2 } // state, key

func (s *lubySub) WindowRounds(n int) int {
	// 2 rounds per phase; 2·log₂n + 8 phases suffice w.h.p. for the
	// permutation variant (each phase removes ≥ half the edges in
	// expectation).
	return 2 * (2*ceilLog2(n+1) + 8)
}

func (s *lubySub) state(d agg.Data) int64       { return d[s.off] }
func (s *lubySub) setState(d agg.Data, v int64) { d[s.off] = v }
func (s *lubySub) key(d agg.Data) int64         { return d[s.off+1] }

// drawKey returns a priority key: ~2·log n random bits concatenated with the
// node ID, so keys are distinct across nodes (ID tie-break) and O(log n) bits
// as CONGEST requires.
func drawKey(info *agg.NodeInfo) int64 {
	r := info.Rand.Intn(info.N*info.N + 1)
	return int64(r)*int64(info.N) + int64(info.ID) + 1
}

func (s *lubySub) Begin(info *agg.NodeInfo, d agg.Data, active bool) {
	if active {
		s.setState(d, subCompeting)
		d[s.off+1] = drawKey(info)
	} else {
		s.setState(d, subInactive)
		d[s.off+1] = 0
	}
}

func (s *lubySub) Queries(info *agg.NodeInfo, t int, d agg.Data, qs []agg.Query) []agg.Query {
	if t%2 == 0 {
		return append(qs, s.compete[:]...)
	}
	return append(qs, s.notify[:]...)
}

func (s *lubySub) Update(info *agg.NodeInfo, t int, d agg.Data, results []int64) {
	if s.state(d) != subCompeting {
		return
	}
	if t%2 == 0 {
		if s.key(d) > results[0] {
			s.setState(d, subInMIS)
		}
		return
	}
	if results[0] != 0 {
		s.setState(d, subOut)
		return
	}
	// Still competing: fresh key for the next phase.
	d[s.off+1] = drawKey(info)
}

func (s *lubySub) Decided(d agg.Data) bool {
	return s.state(d) == subInMIS || s.state(d) == subOut
}

func (s *lubySub) InMIS(d agg.Data) bool { return s.state(d) == subInMIS }

// ---------------------------------------------------------------------------
// Ghaffari-style MIS [Gha16]: every node holds a marking probability
// p_t ∈ {2⁻¹, 2⁻², …}; it doubles (capped at ½) when the effective degree
// Σ_{u∈N(v)} p_t(u) is below 2 and halves otherwise. A marked node with no
// marked neighbor joins. One virtual round per iteration.

const pFixShift = 20 // fixed-point denominator 2²⁰ for probability sums

type ghaffariSub struct {
	off          int
	participates func(agg.Data) bool
	maxExp       int64
	plan         [3]agg.Query
}

// NewGhaffariSub returns the Ghaffari-style sub-protocol factory.
func NewGhaffariSub() SubFactory {
	return func(off int, participates func(agg.Data) bool) Sub {
		s := &ghaffariSub{off: off, participates: participates, maxExp: pFixShift - 1}
		s.plan = [3]agg.Query{
			{Agg: agg.Or, Proj: func(nd agg.Data) int64 { // a marked competing neighbor?
				if s.participates(nd) && s.state(nd) == subCompeting && s.marked(nd) {
					return 1
				}
				return 0
			}},
			{Agg: agg.Sum, Proj: func(nd agg.Data) int64 { // effective degree
				if s.participates(nd) && s.state(nd) == subCompeting {
					return pFix(s.pexp(nd))
				}
				return 0
			}},
			{Agg: agg.Or, Proj: func(nd agg.Data) int64 { // a neighbor already in the set?
				if s.participates(nd) && s.state(nd) == subInMIS {
					return 1
				}
				return 0
			}},
		}
		return s
	}
}

func (s *ghaffariSub) Fields() int { return 3 } // state, pexp, marked

func (s *ghaffariSub) WindowRounds(n int) int {
	return 4*ceilLog2(n+1) + 16
}

func (s *ghaffariSub) state(d agg.Data) int64 { return d[s.off] }
func (s *ghaffariSub) pexp(d agg.Data) int64  { return d[s.off+1] }
func (s *ghaffariSub) marked(d agg.Data) bool { return d[s.off+2] != 0 }

// pFix returns the fixed-point value of 2^-pexp.
func pFix(exp int64) int64 { return int64(1) << (pFixShift - uint(exp)) }

func (s *ghaffariSub) draw(info *agg.NodeInfo, d agg.Data) {
	p := 1.0 / float64(int64(1)<<uint(s.pexp(d)))
	if info.Rand.Bernoulli(p) {
		d[s.off+2] = 1
	} else {
		d[s.off+2] = 0
	}
}

func (s *ghaffariSub) Begin(info *agg.NodeInfo, d agg.Data, active bool) {
	if active {
		d[s.off] = subCompeting
		d[s.off+1] = 1 // p = 1/2
		s.draw(info, d)
	} else {
		d[s.off] = subInactive
		d[s.off+1] = 1
		d[s.off+2] = 0
	}
}

func (s *ghaffariSub) Queries(info *agg.NodeInfo, t int, d agg.Data, qs []agg.Query) []agg.Query {
	return append(qs, s.plan[:]...)
}

func (s *ghaffariSub) Update(info *agg.NodeInfo, t int, d agg.Data, results []int64) {
	if s.state(d) != subCompeting {
		return
	}
	neighborMarked, effDeg, neighborInMIS := results[0], results[1], results[2]
	if neighborInMIS != 0 {
		d[s.off] = subOut
		return
	}
	if s.marked(d) && neighborMarked == 0 {
		d[s.off] = subInMIS
		d[s.off+2] = 0
		return
	}
	// Probability adjustment: halve when crowded, double when sparse.
	if effDeg >= 2<<pFixShift {
		if s.pexp(d) < s.maxExp {
			d[s.off+1]++
		}
	} else if s.pexp(d) > 1 {
		d[s.off+1]--
	}
	s.draw(info, d)
}

func (s *ghaffariSub) Decided(d agg.Data) bool {
	return s.state(d) == subInMIS || s.state(d) == subOut
}

func (s *ghaffariSub) InMIS(d agg.Data) bool { return s.state(d) == subInMIS }

// ---------------------------------------------------------------------------
// Deterministic greedy-by-ID: a competing node whose ID is smaller than every
// competing neighbor's joins. Θ(n) rounds in the worst case (a path), but a
// deterministic black box for Algorithm 2.

type greedyIDSub struct {
	off          int
	participates func(agg.Data) bool
	compete      [1]agg.Query
	notify       [1]agg.Query
}

// NewGreedyIDSub returns the deterministic greedy-by-ID factory.
func NewGreedyIDSub() SubFactory {
	return func(off int, participates func(agg.Data) bool) Sub {
		s := &greedyIDSub{off: off, participates: participates}
		s.compete[0] = agg.Query{Agg: agg.Min, Proj: func(nd agg.Data) int64 {
			if s.participates(nd) && s.state(nd) == subCompeting {
				return nd[s.off+1]
			}
			// Non-participant sentinel above any real ID but cheap to encode.
			return int64(1) << 40
		}}
		s.notify[0] = agg.Query{Agg: agg.Or, Proj: func(nd agg.Data) int64 {
			if s.participates(nd) && s.state(nd) == subInMIS {
				return 1
			}
			return 0
		}}
		return s
	}
}

func (s *greedyIDSub) Fields() int { return 2 } // state, id

func (s *greedyIDSub) WindowRounds(n int) int { return 2 * (n + 1) }

func (s *greedyIDSub) state(d agg.Data) int64 { return d[s.off] }

func (s *greedyIDSub) Begin(info *agg.NodeInfo, d agg.Data, active bool) {
	if active {
		d[s.off] = subCompeting
	} else {
		d[s.off] = subInactive
	}
	d[s.off+1] = int64(info.ID)
}

func (s *greedyIDSub) Queries(info *agg.NodeInfo, t int, d agg.Data, qs []agg.Query) []agg.Query {
	if t%2 == 0 {
		return append(qs, s.compete[:]...)
	}
	return append(qs, s.notify[:]...)
}

func (s *greedyIDSub) Update(info *agg.NodeInfo, t int, d agg.Data, results []int64) {
	if s.state(d) != subCompeting {
		return
	}
	if t%2 == 0 {
		if int64(info.ID) < results[0] {
			d[s.off] = subInMIS
		}
		return
	}
	if results[0] != 0 {
		d[s.off] = subOut
	}
}

func (s *greedyIDSub) Decided(d agg.Data) bool {
	return s.state(d) == subInMIS || s.state(d) == subOut
}

func (s *greedyIDSub) InMIS(d agg.Data) bool { return s.state(d) == subInMIS }
