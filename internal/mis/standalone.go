package mis

import (
	"fmt"

	"repro/internal/agg"
	"repro/internal/graph"
	"repro/internal/simul"
)

// Algorithm names accepted by New and the public facade.
const (
	Luby     = "luby"
	Ghaffari = "ghaffari"
	GreedyID = "greedyid"
)

// Factory returns the sub-protocol factory for the named algorithm.
func Factory(name string) (SubFactory, error) {
	switch name {
	case Luby:
		return NewLubySub(), nil
	case Ghaffari:
		return NewGhaffariSub(), nil
	case GreedyID:
		return NewGreedyIDSub(), nil
	default:
		return nil, fmt.Errorf("mis: unknown algorithm %q (want %s, %s or %s)", name, Luby, Ghaffari, GreedyID)
	}
}

// standalone drives a Sub to completion on its own: every live node
// participates, and nodes halt once decided (set members linger one round to
// announce themselves, per the agg.Machine visibility contract).
type standalone struct {
	sub      Sub
	announce bool // joined the set; halting next round
}

// NewMachine returns a standalone agg.Machine for the named algorithm. Run it
// with agg.RunDirect for an MIS of a graph, or agg.RunLine for a maximal
// matching (an MIS of the line graph). Outputs are bool (in the set or not).
func NewMachine(name string) (func(v int) agg.Machine, error) {
	factory, err := Factory(name)
	if err != nil {
		return nil, err
	}
	return func(v int) agg.Machine {
		m := &standalone{}
		m.sub = factory(0, func(agg.Data) bool { return true })
		return m
	}, nil
}

func (m *standalone) Fields() int { return m.sub.Fields() }

func (m *standalone) Init(info *agg.NodeInfo, d agg.Data) {
	m.sub.Begin(info, d, true)
}

func (m *standalone) Queries(info *agg.NodeInfo, t int, data agg.Data, qs []agg.Query) []agg.Query {
	return m.sub.Queries(info, t, data, qs)
}

func (m *standalone) Update(info *agg.NodeInfo, t int, data agg.Data, results []int64) (bool, any) {
	if m.announce {
		// Membership was published in the previous round; leave now.
		return true, true
	}
	m.sub.Update(info, t, data, results)
	if !m.sub.Decided(data) {
		return false, nil
	}
	if m.sub.InMIS(data) {
		m.announce = true // stay one more round so neighbors observe us
		return false, nil
	}
	return true, false
}

// Result of a standalone MIS computation.
type Result struct {
	InSet         []bool
	VirtualRounds int
	Metrics       simul.Metrics
}

// Compute runs the named MIS algorithm on g and returns the set.
func Compute(g *graph.Graph, name string, cfg simul.Config) (*Result, error) {
	build, err := NewMachine(name)
	if err != nil {
		return nil, err
	}
	res, err := agg.RunDirect(g, cfg, build)
	if err != nil {
		return nil, err
	}
	return toResult(res, g.N())
}

// ComputeOnLine runs the named MIS algorithm on L(g) through the Theorem 2.8
// simulation, yielding a maximal matching of g: InSet is indexed by edge ID.
func ComputeOnLine(g *graph.Graph, name string, cfg simul.Config) (*Result, error) {
	build, err := NewMachine(name)
	if err != nil {
		return nil, err
	}
	res, err := agg.RunLine(g, cfg, func(e int) agg.Machine { return build(e) })
	if err != nil {
		return nil, err
	}
	return toResult(res, g.M())
}

func toResult(res *agg.Result, n int) (*Result, error) {
	out := &Result{
		InSet:         make([]bool, n),
		VirtualRounds: res.VirtualRounds,
		Metrics:       res.Metrics,
	}
	for i, o := range res.Outputs {
		b, ok := o.(bool)
		if !ok {
			return nil, fmt.Errorf("mis: node %d produced output %v, want bool", i, o)
		}
		out.InSet[i] = b
	}
	return out, nil
}
