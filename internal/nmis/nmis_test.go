package nmis

import (
	"testing"

	"repro/internal/graph"
	"repro/internal/rng"
	"repro/internal/simul"
)

func TestParamsValidation(t *testing.T) {
	if _, err := NewMachine(Params{K: 1, Delta: 0.1}); err == nil {
		t.Fatal("K=1 accepted")
	}
	if _, err := NewMachine(Params{K: 2, Delta: 0}); err == nil {
		t.Fatal("δ=0 accepted")
	}
	if _, err := NewMachine(Params{K: 2, Delta: 1.5}); err == nil {
		t.Fatal("δ>1 accepted")
	}
}

func TestRoundsFormula(t *testing.T) {
	// The budget must grow with K² log(1/δ) and shrink in the log∆/logK term
	// as K grows; it must always be positive.
	a := Params{K: 2, Delta: 0.1, MaxDegree: 64}.Rounds()
	b := Params{K: 2, Delta: 0.01, MaxDegree: 64}.Rounds()
	if a <= 0 || b <= a {
		t.Fatalf("rounds not increasing in log(1/δ): %d vs %d", a, b)
	}
	c := Params{K: 2, Delta: 0.1, MaxDegree: 4096}.Rounds()
	if c <= a {
		t.Fatalf("rounds not increasing in ∆: %d vs %d", c, a)
	}
}

func TestOutputIsIndependentSet(t *testing.T) {
	r := rng.New(1)
	for trial := 0; trial < 10; trial++ {
		g := graph.GNP(50, 0.12, r.Split(uint64(trial)))
		res, err := Run(g, Params{K: 2, Delta: 0.05}, simul.Config{Seed: uint64(trial)})
		if err != nil {
			t.Fatal(err)
		}
		if !g.IsIndependentSet(res.InSetVector()) {
			t.Fatalf("trial %d: output not independent", trial)
		}
		// Outcome consistency: every Covered node has an InSet neighbor.
		for v, o := range res.Outcomes {
			if o != Covered {
				continue
			}
			ok := false
			for _, u := range g.Neighbors(v) {
				if res.Outcomes[u] == InSet {
					ok = true
					break
				}
			}
			if !ok {
				t.Fatalf("trial %d: node %d Covered without an InSet neighbor", trial, v)
			}
		}
	}
}

func TestTheorem31CoverageBound(t *testing.T) {
	// E6: after β(log∆/logK + K²log(1/δ)) rounds, the fraction of uncovered
	// nodes should be at most δ (in expectation; we allow 2δ slack across
	// the sampled instances).
	const delta = 0.1
	r := rng.New(2)
	total, uncovered := 0, 0
	for trial := 0; trial < 20; trial++ {
		g := graph.GNP(60, 0.1, r.Split(uint64(trial)))
		res, err := Run(g, Params{K: 2, Delta: delta}, simul.Config{Seed: uint64(100 + trial)})
		if err != nil {
			t.Fatal(err)
		}
		total += g.N()
		uncovered += res.UncoveredCount()
	}
	frac := float64(uncovered) / float64(total)
	if frac > 2*delta {
		t.Fatalf("uncovered fraction %.4f exceeds 2δ = %.2f", frac, 2*delta)
	}
}

func TestRoundBudgetRespected(t *testing.T) {
	g := graph.GNP(80, 0.15, rng.New(3))
	params := Params{K: 3, Delta: 0.1, MaxDegree: g.MaxDegree()}
	res, err := Run(g, params, simul.Config{Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	// +2 slack: the announce round of the final joiners and the halt round.
	if res.VirtualRounds > params.Rounds()+2 {
		t.Fatalf("used %d rounds, budget %d", res.VirtualRounds, params.Rounds())
	}
}

func TestNearlyMaximalMatchingOnLine(t *testing.T) {
	r := rng.New(5)
	for trial := 0; trial < 6; trial++ {
		g := graph.GNP(24, 0.2, r.Split(uint64(trial)))
		if g.M() == 0 {
			continue
		}
		res, err := RunOnLine(g, Params{K: 2, Delta: 0.05}, simul.Config{Seed: uint64(trial)})
		if err != nil {
			t.Fatal(err)
		}
		var matching []int
		for e, o := range res.Outcomes {
			if o == InSet {
				matching = append(matching, e)
			}
		}
		if !g.IsMatching(matching) {
			t.Fatalf("trial %d: line-graph NMIS output is not a matching", trial)
		}
	}
}

func TestCongestCompliance(t *testing.T) {
	g := graph.GNP(64, 0.1, rng.New(6))
	if _, err := Run(g, Params{K: 2, Delta: 0.1}, simul.Config{Seed: 7, Model: simul.CONGEST}); err != nil {
		t.Fatalf("CONGEST violation: %v", err)
	}
	if _, err := RunOnLine(g, Params{K: 2, Delta: 0.1}, simul.Config{Seed: 8, Model: simul.CONGEST}); err != nil {
		t.Fatalf("CONGEST violation on L(G): %v", err)
	}
}

func TestKSweepChangesRounds(t *testing.T) {
	// E11: larger K shortens the log∆/logK term but inflates K²log(1/δ);
	// the budget formula must reflect the tradeoff.
	base := Params{K: 2, Delta: 0.01, MaxDegree: 1 << 16}.Rounds()
	mid := Params{K: 4, Delta: 0.01, MaxDegree: 1 << 16}.Rounds()
	if mid >= base*4 {
		t.Fatalf("K=4 budget (%d) did not benefit from faster decay vs K=2 (%d)", mid, base)
	}
}

func TestEdgelessAndSingleton(t *testing.T) {
	for _, g := range []*graph.Graph{graph.NewBuilder(0).MustBuild(), graph.NewBuilder(1).MustBuild(), graph.NewBuilder(5).MustBuild()} {
		res, err := Run(g, Params{K: 2, Delta: 0.1}, simul.Config{})
		if err != nil {
			t.Fatal(err)
		}
		for v, o := range res.Outcomes {
			if o != InSet {
				t.Fatalf("isolated node %d finished %v, want InSet", v, o)
			}
		}
	}
}
