// Package nmis implements the paper's modified nearly-maximal independent set
// algorithm (§3.1, Appendix B.1) — the key ingredient of the time-optimal
// matching approximations.
//
// Every node v holds a marking probability p_t(v), initially 1/K. With
// d_t(v) = Σ_{u∈N(v)} p_t(u) the effective degree,
//
//	p_{t+1}(v) = p_t(v)/K          if d_t(v) ≥ 2
//	p_{t+1}(v) = min(K·p_t(v), 1/K) otherwise.
//
// Each iteration v is marked with probability p_t(v); a marked node with no
// marked neighbor joins the set and removes its neighborhood. Theorem 3.1:
// after β(log∆/log K + K²·log(1/δ)) iterations each node fails to be covered
// with probability at most δ, even against adversarial randomness outside
// its 2-neighborhood. The paper sets K = Θ(log^0.1 ∆); K is a parameter here
// (it is ≤ 2 for every ∆ a simulation can hold, and experiment E11 sweeps
// it).
//
// The algorithm is a local aggregation algorithm, so running it on the line
// graph via agg.RunLine yields the nearly-maximal matching behind the
// (2+ε)-approximation of Theorem 3.2.
//
// Layer (DESIGN.md §2): nmis is part of the §3/§B algorithm layer, above
// internal/agg, below internal/fastmatch and internal/registry.
//
// Concurrency and ownership: Run/RunOnLine are synchronous runs on the
// calling goroutine; input graphs are read-only and shareable, Results are
// owned by the caller.
package nmis

import (
	"fmt"
	"math"

	"repro/internal/agg"
	"repro/internal/graph"
	"repro/internal/simul"
)

// Outcome of one node after the fixed round budget.
type Outcome int

const (
	// Uncovered: not in the set and no neighbor in the set (probability ≤ δ
	// by Theorem 3.1).
	Uncovered Outcome = iota
	// InSet: joined the independent set.
	InSet
	// Covered: a neighbor joined the set.
	Covered
)

func (o Outcome) String() string {
	switch o {
	case InSet:
		return "InSet"
	case Covered:
		return "Covered"
	default:
		return "Uncovered"
	}
}

// Params configures the algorithm.
type Params struct {
	// K is the probability adjustment factor (≥ 2; the paper's
	// Θ(log^0.1 ∆)).
	K int
	// Delta is the failure probability target δ ∈ (0, 1).
	Delta float64
	// Beta is the constant β in the round budget; 0 means the default 3.
	Beta int
	// MaxDegree is ∆ of the (virtual) graph the machine will run on.
	MaxDegree int
}

func (p Params) validate() error {
	if p.K < 2 {
		return fmt.Errorf("nmis: K must be ≥ 2, got %d", p.K)
	}
	if p.Delta <= 0 || p.Delta >= 1 {
		return fmt.Errorf("nmis: δ must be in (0,1), got %v", p.Delta)
	}
	return nil
}

// Rounds returns the Theorem 3.1 round budget
// β(log∆/logK + K²·log(1/δ)).
func (p Params) Rounds() int {
	beta := p.Beta
	if beta == 0 {
		beta = 3
	}
	logDelta := math.Log(float64(p.MaxDegree) + 2)
	logK := math.Log(float64(p.K))
	r := float64(beta) * (logDelta/logK + float64(p.K*p.K)*math.Log(1/p.Delta))
	return int(math.Ceil(r)) + 1
}

// Machine states.
const (
	stCompeting = 0
	stInSet     = 1 // announcing membership; halts next round
	stCovered   = 2
)

// machine implements the NMIS as an agg.Machine.
// Data: [state, pNum (fixed-point probability), marked].
type machine struct {
	params Params
	rounds int
	pCap   float64 // 1/K
	shift  uint    // fixed-point scale, set from n at Init (CONGEST: O(log n) bits)
}

// NewMachine returns a builder for NMIS machines with the given parameters.
func NewMachine(params Params) (func(v int) agg.Machine, error) {
	if err := params.validate(); err != nil {
		return nil, err
	}
	rounds := params.Rounds()
	return func(v int) agg.Machine {
		return &machine{params: params, rounds: rounds, pCap: 1 / float64(params.K)}
	}, nil
}

func (m *machine) Fields() int { return 3 }

func (m *machine) pToFix(p float64) int64 { return int64(p * float64(int64(1)<<m.shift)) }

// fixShiftFor picks a fixed-point precision that keeps the probability field
// within the O(log n)-bit CONGEST budget while leaving enough resolution for
// the K-factor dynamics. All nodes derive it from the global n.
func fixShiftFor(n int) uint {
	s := 4 * uint(simul.BitsForRange(int64(n)))
	if s < 10 {
		s = 10
	}
	if s > 30 {
		s = 30
	}
	return s
}

func (m *machine) Init(info *agg.NodeInfo, d agg.Data) {
	m.shift = fixShiftFor(info.N)
	d[0] = stCompeting
	d[1] = m.pToFix(m.pCap)
	d[2] = 0
	m.draw(info, d)
}

func (m *machine) draw(info *agg.NodeInfo, d agg.Data) {
	p := float64(d[1]) / float64(int64(1)<<m.shift)
	if info.Rand.Bernoulli(p) {
		d[2] = 1
	} else {
		d[2] = 0
	}
}

// queryPlan is the machine's fixed query set. The projections close over
// nothing, so one package-level plan serves every node and round.
var queryPlan = [3]agg.Query{
	{Agg: agg.Or, Proj: func(nd agg.Data) int64 { // marked competing neighbor?
		if nd[0] == stCompeting && nd[2] != 0 {
			return 1
		}
		return 0
	}},
	{Agg: agg.Sum, Proj: func(nd agg.Data) int64 { // effective degree
		if nd[0] == stCompeting {
			return nd[1]
		}
		return 0
	}},
	{Agg: agg.Or, Proj: func(nd agg.Data) int64 { // neighbor joined?
		if nd[0] == stInSet {
			return 1
		}
		return 0
	}},
}

func (m *machine) Queries(info *agg.NodeInfo, t int, data agg.Data, qs []agg.Query) []agg.Query {
	return append(qs, queryPlan[:]...)
}

func (m *machine) Update(info *agg.NodeInfo, t int, data agg.Data, results []int64) (bool, any) {
	if data[0] == stInSet {
		return true, InSet // membership announced last round
	}
	neighborMarked, effDeg, neighborJoined := results[0], results[1], results[2]
	if neighborJoined != 0 {
		return true, Covered
	}
	if data[2] != 0 && neighborMarked == 0 {
		data[0] = stInSet
		data[1] = 0
		data[2] = 0
		return false, nil // stay visible one round to announce
	}
	if t >= m.rounds-1 {
		// Budget exhausted without being covered: Theorem 3.1 bounds the
		// probability of reaching here by δ.
		return true, Uncovered
	}
	// Probability adjustment (§3.1).
	p := float64(data[1]) / float64(int64(1)<<m.shift)
	if effDeg >= 2<<m.shift {
		p /= float64(m.params.K)
	} else {
		p = math.Min(p*float64(m.params.K), m.pCap)
	}
	// Keep a floor so fixed-point truncation cannot zero the probability.
	if floor := 1.0 / float64(int64(1)<<(m.shift-2)); p < floor {
		p = floor
	}
	data[1] = m.pToFix(p)
	m.draw(info, data)
	return false, nil
}

// Result of an NMIS run.
type Result struct {
	Outcomes      []Outcome
	VirtualRounds int
	Metrics       simul.Metrics
	// Memo carries the line runtime's exchange-folding hit/miss counts
	// (zero under Run, which uses the direct runtime).
	Memo agg.MemoStats
}

// InSetVector returns the indicator of set membership.
func (r *Result) InSetVector() []bool {
	out := make([]bool, len(r.Outcomes))
	for i, o := range r.Outcomes {
		out[i] = o == InSet
	}
	return out
}

// UncoveredCount returns how many virtual nodes finished uncovered.
func (r *Result) UncoveredCount() int {
	c := 0
	for _, o := range r.Outcomes {
		if o == Uncovered {
			c++
		}
	}
	return c
}

// Run executes the NMIS on g. If params.MaxDegree is 0 it is filled from g.
func Run(g *graph.Graph, params Params, cfg simul.Config) (*Result, error) {
	if params.MaxDegree == 0 {
		params.MaxDegree = g.MaxDegree()
	}
	build, err := NewMachine(params)
	if err != nil {
		return nil, err
	}
	res, err := agg.RunDirect(g, cfg, build)
	if err != nil {
		return nil, err
	}
	return toResult(res, g.N())
}

// RunOnLine executes the NMIS on L(g) through the Theorem 2.8 simulation,
// producing a nearly-maximal matching (outcomes indexed by edge ID). If
// params.MaxDegree is 0 it is filled with ∆(L(g)) ≤ 2∆(g)-2.
func RunOnLine(g *graph.Graph, params Params, cfg simul.Config) (*Result, error) {
	if params.MaxDegree == 0 {
		d := 0
		for _, e := range g.Edges() {
			if ld := g.Degree(e.U) + g.Degree(e.V) - 2; ld > d {
				d = ld
			}
		}
		params.MaxDegree = d
	}
	build, err := NewMachine(params)
	if err != nil {
		return nil, err
	}
	res, err := agg.RunLine(g, cfg, func(e int) agg.Machine { return build(e) })
	if err != nil {
		return nil, err
	}
	return toResult(res, g.M())
}

func toResult(res *agg.Result, n int) (*Result, error) {
	out := &Result{
		Outcomes:      make([]Outcome, n),
		VirtualRounds: res.VirtualRounds,
		Metrics:       res.Metrics,
		Memo:          res.Memo,
	}
	for i, o := range res.Outputs {
		oc, ok := o.(Outcome)
		if !ok {
			return nil, fmt.Errorf("nmis: node %d output %v, want Outcome", i, o)
		}
		out.Outcomes[i] = oc
	}
	return out, nil
}
