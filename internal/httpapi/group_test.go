package httpapi

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"reflect"
	"testing"
	"time"

	"repro"
	"repro/internal/graph"
	"repro/internal/service"
)

// pollGroup polls GET /v1/jobgroups/{id} through the client (which negotiates
// the binary rendering) until the group is terminal.
func pollGroup(t *testing.T, c *Client, id string) JobGroupResponse {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for time.Now().Before(deadline) {
		gv, err := c.GetJobGroup(context.Background(), id)
		if err != nil {
			t.Fatal(err)
		}
		if gv.Terminal() {
			return gv
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("group %s never finished", id)
	return JobGroupResponse{}
}

// TestJobGroupLifecycleHTTP is the end-to-end jobgroup path over HTTP:
// submit a seed group against a stored graph, poll to done through the binary
// rendering, check per-seed results and trace alignment, observe the result
// cache on resubmission, and hit the 404/409 error surface.
func TestJobGroupLifecycleHTTP(t *testing.T) {
	ts, _, _ := newFullServer(t, service.Config{Workers: 2}, service.BatchConfig{})
	c := NewClient(ts.URL, nil)
	ctx := context.Background()

	if _, err := c.PutGraphGen(ctx, "gg", GenRequest{Gen: "gnp", N: 48, P: 0.1, Seed: 3, MaxW: 32}); err != nil {
		t.Fatal(err)
	}

	seeds := []uint64{1, 2, 3, 4, 5, 6}
	traces := make([]string, len(seeds))
	for i := range traces {
		traces[i] = fmt.Sprintf("trace-cell-%d", i)
	}
	sub, err := c.SubmitJobGroup(ctx, JobGroupRequest{
		Algo: "mwm2", GraphName: "gg", Seeds: seeds, Traces: traces,
	})
	if err != nil {
		t.Fatal(err)
	}
	if sub.ID == "" || sub.Total != len(seeds) {
		t.Fatalf("submit response %+v", sub)
	}

	gv := pollGroup(t, c, sub.ID)
	if gv.State != "done" || gv.Done != len(seeds) || len(gv.Cells) != len(seeds) {
		t.Fatalf("terminal group %s: state=%s done=%d cells=%d", gv.ID, gv.State, gv.Done, len(gv.Cells))
	}
	if gv.WireBytes <= 0 {
		t.Fatalf("WireBytes %d, want body size", gv.WireBytes)
	}
	for i, cell := range gv.Cells {
		if cell.Seed != seeds[i] || cell.TraceID != traces[i] {
			t.Fatalf("cell %d: seed=%d trace=%q, want seed=%d trace=%q",
				i, cell.Seed, cell.TraceID, seeds[i], traces[i])
		}
		if cell.State != "done" || cell.Error != "" || cell.Result == nil {
			t.Fatalf("cell %d: %+v", i, cell)
		}
		res, err := cell.Result.ToResult()
		if err != nil {
			t.Fatalf("cell %d result: %v", i, err)
		}
		if res.Weight <= 0 || len(res.Edges) == 0 {
			t.Fatalf("cell %d: implausible mwm2 result %+v", i, res)
		}
	}

	// Same group again: every seed's result is already cached.
	re, err := c.SubmitJobGroup(ctx, JobGroupRequest{Algo: "mwm2", GraphName: "gg", Seeds: seeds})
	if err != nil {
		t.Fatal(err)
	}
	rv := pollGroup(t, c, re.ID)
	for i, cell := range rv.Cells {
		if !cell.CacheHit {
			t.Fatalf("resubmitted cell %d not a cache hit: %+v", i, cell)
		}
	}

	// Error surface: unknown id and canceling a finished group.
	_, err = c.GetJobGroup(ctx, "nope")
	wantStatus(t, err, http.StatusNotFound)
	_, err = c.CancelJobGroup(ctx, sub.ID)
	wantStatus(t, err, http.StatusConflict)
	_, err = c.SubmitJobGroup(ctx, JobGroupRequest{Algo: "mwm2", GraphName: "nope", Seeds: seeds})
	wantStatus(t, err, http.StatusNotFound)
}

// TestJobGroupCancelHTTP cancels a group waiting on the group semaphore
// behind a long-running group and checks the whole victim lands canceled.
// Groups do not ride the job queue, so the blocker must itself be a group;
// its cells park on a channel barrier until the victim's cancel is asserted,
// so no graph sizing against the runner's speed is involved.
func TestJobGroupCancelHTTP(t *testing.T) {
	ts, _, _ := newFullServer(t, service.Config{Workers: 1}, service.BatchConfig{})
	started, release := registerBlocker(t, "park-group")
	c := NewClient(ts.URL, nil)
	ctx := context.Background()

	if _, err := c.PutGraphGen(ctx, "big", GenRequest{Gen: "gnp", N: 32, P: 0.1, Seed: 1, MaxW: 16}); err != nil {
		t.Fatal(err)
	}
	if _, err := c.PutGraphGen(ctx, "gg", GenRequest{Gen: "gnp", N: 32, P: 0.1, Seed: 9, MaxW: 16}); err != nil {
		t.Fatal(err)
	}
	blocker, err := c.SubmitJobGroup(ctx, JobGroupRequest{Algo: "park-group", GraphName: "big", Seeds: []uint64{1, 2, 3}})
	if err != nil {
		t.Fatal(err)
	}
	<-started // the blocker group owns the worker before the victim arrives
	sub, err := c.SubmitJobGroup(ctx, JobGroupRequest{Algo: "maxis", GraphName: "gg", Seeds: []uint64{1, 2, 3}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.CancelJobGroup(ctx, sub.ID); err != nil {
		t.Fatal(err)
	}
	gv := pollGroup(t, c, sub.ID)
	if gv.State != "canceled" {
		t.Fatalf("group state %s, want canceled", gv.State)
	}
	for i, cell := range gv.Cells {
		if cell.State != "canceled" {
			t.Fatalf("cell %d state %s, want canceled", i, cell.State)
		}
	}
	release()
	if bv := pollGroup(t, c, blocker.ID); bv.State != "done" {
		t.Fatalf("blocker group state %s, want done", bv.State)
	}
}

// TestGroupBinaryMatchesJSON pins the codec contract stated in bincodec.go:
// the binary and JSON renderings of the same group snapshot decode to
// identical JobGroupResponse structs, and the binary body is substantially
// smaller.
func TestGroupBinaryMatchesJSON(t *testing.T) {
	ts, _, _ := newFullServer(t, service.Config{Workers: 2}, service.BatchConfig{})
	c := NewClient(ts.URL, nil)
	ctx := context.Background()

	if _, err := c.PutGraphGen(ctx, "gg", GenRequest{Gen: "gnp", N: 64, P: 0.1, Seed: 11, MaxW: 64}); err != nil {
		t.Fatal(err)
	}
	seeds := make([]uint64, 16)
	for i := range seeds {
		seeds[i] = uint64(i + 1)
	}
	sub, err := c.SubmitJobGroup(ctx, JobGroupRequest{
		Algo: "maxis", GraphName: "gg", Seeds: seeds, TraceID: "trace-group-codec",
	})
	if err != nil {
		t.Fatal(err)
	}
	pollGroup(t, c, sub.ID)

	fetch := func(accept string) (body []byte, contentType string) {
		t.Helper()
		req, err := http.NewRequest(http.MethodGet, ts.URL+"/v1/jobgroups/"+sub.ID, nil)
		if err != nil {
			t.Fatal(err)
		}
		req.Header.Set("Accept", accept)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, err = io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET with Accept %q: status %d", accept, resp.StatusCode)
		}
		return body, resp.Header.Get("Content-Type")
	}

	binBody, binType := fetch(GroupBinaryContentType)
	if binType != GroupBinaryContentType {
		t.Fatalf("binary Content-Type %q", binType)
	}
	jsonBody, jsonType := fetch("application/json")
	if jsonType != "application/json" {
		t.Fatalf("json Content-Type %q", jsonType)
	}

	var fromJSON JobGroupResponse
	if err := json.Unmarshal(jsonBody, &fromJSON); err != nil {
		t.Fatal(err)
	}
	fromBin, err := decodeGroupBinary(binBody)
	if err != nil {
		t.Fatal(err)
	}

	// Timestamps compare by instant (the two decoders land in different
	// time.Location representations), the rest by deep equality.
	if !fromBin.SubmittedAt.Equal(fromJSON.SubmittedAt) {
		t.Fatalf("submitted_at: binary %v, json %v", fromBin.SubmittedAt, fromJSON.SubmittedAt)
	}
	if (fromBin.FinishedAt == nil) != (fromJSON.FinishedAt == nil) ||
		(fromBin.FinishedAt != nil && !fromBin.FinishedAt.Equal(*fromJSON.FinishedAt)) {
		t.Fatalf("finished_at: binary %v, json %v", fromBin.FinishedAt, fromJSON.FinishedAt)
	}
	fromBin.SubmittedAt, fromJSON.SubmittedAt = time.Time{}, time.Time{}
	fromBin.FinishedAt, fromJSON.FinishedAt = nil, nil
	if !reflect.DeepEqual(fromBin, fromJSON) {
		t.Fatalf("renderings diverge:\nbinary: %+v\njson:   %+v", fromBin, fromJSON)
	}

	if len(binBody)*2 >= len(jsonBody) {
		t.Fatalf("binary body %d bytes vs json %d: expected at least 2x compaction", len(binBody), len(jsonBody))
	}
}

// TestBinaryGraphUploadParity pins the fingerprint contract of the binary
// upload path: PUT with the graph.EncodeBinary body registers the same graph
// — same fingerprint, deduplicated payload — as the text upload.
func TestBinaryGraphUploadParity(t *testing.T) {
	ts, _, _ := newFullServer(t, service.Config{Workers: 1}, service.BatchConfig{})
	c := NewClient(ts.URL, nil)
	ctx := context.Background()

	g := repro.GNP(40, 0.12, 77)
	repro.AssignUniformEdgeWeights(g, 30, 78)

	var text bytes.Buffer
	if err := repro.WriteGraph(&text, g); err != nil {
		t.Fatal(err)
	}
	txtInfo, err := c.PutGraph(ctx, "as-text", text.String())
	if err != nil {
		t.Fatal(err)
	}

	var bin bytes.Buffer
	if err := graph.EncodeBinary(&bin, g); err != nil {
		t.Fatal(err)
	}
	binInfo, sent, err := c.PutGraphBinary(ctx, "as-binary", bin.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if sent != bin.Len() {
		t.Fatalf("reported %d wire bytes, sent %d", sent, bin.Len())
	}
	if binInfo.Fingerprint != txtInfo.Fingerprint {
		t.Fatalf("fingerprints diverge: binary %s, text %s", binInfo.Fingerprint, txtInfo.Fingerprint)
	}
	if !binInfo.Dedup || binInfo.Shared != 2 {
		t.Fatalf("binary upload not deduplicated against text twin: %+v", binInfo)
	}
	if binInfo.Nodes != 40 || binInfo.Edges != txtInfo.Edges {
		t.Fatalf("binary info %+v vs text %+v", binInfo, txtInfo)
	}

	// And the registered graph is runnable.
	sub, err := c.SubmitJobGroup(ctx, JobGroupRequest{Algo: "mwm2", GraphName: "as-binary", Seeds: []uint64{5}})
	if err != nil {
		t.Fatal(err)
	}
	if gv := pollGroup(t, c, sub.ID); gv.State != "done" {
		t.Fatalf("group over binary-registered graph: %s", gv.State)
	}
}
