package httpapi

import (
	"bufio"
	"context"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"time"

	"repro/internal/service"
	"repro/internal/tenant"
)

// This file is the incremental batch-result stream (DESIGN.md §9): GET
// /v1/batches/{id}/stream emits each cell exactly once, in index order, as
// soon as it settles, instead of making clients poll whole-batch snapshots
// whose size grows with the batch. Two renderings share the endpoint:
//
//   - Server-Sent Events (default): "id: <index>" / "event: cell" / JSON
//     data lines, keepalive comments while cells run, and a final
//     "event: batch" summary. Works with curl -N and EventSource.
//   - Binary (Accept: application/x-repro-batchstream): an "RBS1" magic
//     then length-prefixed frames; cell payloads reuse the RJG1-style
//     varint/bitset codec from bincodec.go, the final batch summary is a
//     JSON payload. ~6× smaller than SSE for result-heavy cells.
//
// Both renderings resume: Last-Event-ID (the SSE convention — the last cell
// index the client saw) or ?from= (the first index still wanted) restart a
// broken stream without re-sending settled cells. The cursor is ordinal, so
// a stream survives a server restart: the PR 9 ledger restores settled cells
// under the same indices and the handler replays them immediately.

// BatchStreamContentType negotiates the binary batch-result stream on
// GET /v1/batches/{id}/stream.
const BatchStreamContentType = "application/x-repro-batchstream"

// streamMagic brands a binary batch stream; the trailing 1 is the version.
const streamMagic = "RBS1"

// Stream frame types. A frame is one type byte, a 4-byte big-endian payload
// length, then the payload.
const (
	// StreamFrameKeepalive is an empty liveness frame sent while the next
	// cell is still running.
	StreamFrameKeepalive byte = 0
	// StreamFrameCell carries one settled cell in the binary cell codec.
	StreamFrameCell byte = 1
	// StreamFrameBatch carries the final batch summary as JSON (cells
	// omitted — they were already streamed) and ends the stream.
	StreamFrameBatch byte = 2
)

// maxStreamFrame bounds a frame payload a client will buffer; a settled
// cell for the largest admissible graph stays far below it.
const maxStreamFrame = 256 << 20

// streamSlice is how long one server-side cell wait parks before emitting a
// keepalive. Short enough that client disconnects and proxy idle timeouts
// are noticed; long enough that an idle stream costs a few wakeups a minute.
const streamSlice = 10 * time.Second

// Cell-frame flag bits: which optional payloads follow.
const (
	sfCacheHit = 1 << iota
	sfError
	sfResult
	sfTrace
	sfParams
)

// handleStreamBatch serves GET /v1/batches/{id}/stream.
func handleStreamBatch(cfg *handlerConfig, b Backend, w http.ResponseWriter, r *http.Request) {
	t := tenantFrom(r)
	id := r.PathValue("id")
	v, ok := b.GetBatch(id)
	if !ok || !cfg.ownsBatch(t, v) {
		writeErr(w, http.StatusNotFound, "no such batch")
		return
	}
	from := 0
	if s := r.URL.Query().Get("from"); s != "" {
		n, err := strconv.Atoi(s)
		if err != nil || n < 0 {
			writeErr(w, http.StatusBadRequest, "bad from: want a non-negative cell index")
			return
		}
		from = n
	} else if s := r.Header.Get("Last-Event-ID"); s != "" {
		last, err := strconv.Atoi(s)
		if err != nil || last < -1 {
			writeErr(w, http.StatusBadRequest, "bad Last-Event-ID: want the last received cell index")
			return
		}
		from = last + 1
	}
	if from > v.Total {
		writeErr(w, http.StatusBadRequest,
			fmt.Sprintf("from %d beyond batch of %d cells", from, v.Total))
		return
	}
	// Streams park a connection like ?wait= long-polls do and share the
	// same per-tenant bound; over it, clients get a fast 429 instead of the
	// server a goroutine pile-up.
	if !cfg.waiters.acquire(t) {
		w.Header().Set("Retry-After", "1")
		writeErrCode(w, http.StatusTooManyRequests, CodeRateLimited,
			"too many concurrent waiters; retry later")
		return
	}
	defer cfg.waiters.release(t)

	bin := strings.Contains(r.Header.Get("Accept"), BatchStreamContentType)
	flusher, _ := w.(http.Flusher)
	flush := func() {
		if flusher != nil {
			flusher.Flush()
		}
	}
	if bin {
		w.Header().Set("Content-Type", BatchStreamContentType)
	} else {
		w.Header().Set("Content-Type", "text/event-stream")
		w.Header().Set("Cache-Control", "no-store")
	}
	w.WriteHeader(http.StatusOK)
	if bin {
		if _, err := io.WriteString(w, streamMagic); err != nil {
			return
		}
	}
	flush()

	emitCell := func(i int, cv BatchCellView) error {
		if bin {
			return writeStreamFrame(w, StreamFrameCell, encodeStreamCell(cv))
		}
		data, err := json.Marshal(cv)
		if err != nil {
			return err
		}
		_, err = fmt.Fprintf(w, "id: %d\nevent: cell\ndata: %s\n\n", i, data)
		return err
	}
	emitKeepalive := func() error {
		if bin {
			return writeStreamFrame(w, StreamFrameKeepalive, nil)
		}
		_, err := io.WriteString(w, ": keepalive\n\n")
		return err
	}

	ctx := r.Context()
	for i := from; i < v.Total; i++ {
		for {
			if ctx.Err() != nil {
				return
			}
			cv, ok := b.WaitCell(id, i, streamSlice)
			if !ok {
				return // batch evicted mid-stream
			}
			settled := cv.State.Terminal()
			if !settled {
				// Distinguish "still running" from "batch went terminal
				// with this cell frozen non-terminal" (cancel, drain): the
				// latter emits the frozen snapshot so the stream matches
				// the terminal GET exactly.
				if bv, ok := b.GetBatch(id); ok && bv.State.Terminal() {
					settled = true
				} else if !ok {
					return
				}
			}
			if settled {
				wc := toStreamCellWire(cfg, t, cv)
				if err := emitCell(i, wc); err != nil {
					return
				}
				flush()
				break
			}
			if err := emitKeepalive(); err != nil {
				return
			}
			flush()
		}
	}

	// All cells are out; wait for the batch itself to finalize, then close
	// with the summary (groups included, cells omitted).
	for {
		if ctx.Err() != nil {
			return
		}
		bv, ok := b.WaitBatch(id, streamSlice)
		if !ok {
			return
		}
		if bv.State.Terminal() {
			out := toBatchResponse(bv, true)
			cfg.stripBatchTenant(t, &out)
			out.Cells = nil
			data, err := json.Marshal(out)
			if err != nil {
				return
			}
			if bin {
				_ = writeStreamFrame(w, StreamFrameBatch, data)
			} else {
				_, _ = fmt.Fprintf(w, "event: batch\ndata: %s\n\n", data)
			}
			flush()
			return
		}
		if err := emitKeepalive(); err != nil {
			return
		}
		flush()
	}
}

// toStreamCellWire renders one settled service cell in its wire form with
// the tenant's graph prefix stripped — identical to the cell's rendering
// inside a terminal GET /v1/batches/{id}.
func toStreamCellWire(cfg *handlerConfig, t tenant.Tenant, c service.BatchCellView) BatchCellView {
	return BatchCellView{
		Index:    c.Index,
		Graph:    cfg.unscopeGraph(t, c.Graph),
		Algo:     c.Algo,
		Params:   ParamsWire(c.Params),
		JobID:    c.JobID,
		TraceID:  c.TraceID,
		State:    string(c.State),
		CacheHit: c.CacheHit,
		Error:    c.Error,
		Result:   toJobResult(c.Result),
	}
}

// writeStreamFrame writes one length-prefixed frame.
func writeStreamFrame(w io.Writer, typ byte, payload []byte) error {
	var hdr [5]byte
	hdr[0] = typ
	binary.BigEndian.PutUint32(hdr[1:], uint32(len(payload)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	if len(payload) > 0 {
		if _, err := w.Write(payload); err != nil {
			return err
		}
	}
	return nil
}

// ReadStreamFrame reads one frame from a binary batch stream (after the
// magic). It bounds the payload so a corrupt length prefix cannot force a
// huge allocation.
func ReadStreamFrame(r io.Reader) (typ byte, payload []byte, err error) {
	var hdr [5]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return 0, nil, err
	}
	n := binary.BigEndian.Uint32(hdr[1:])
	if n > maxStreamFrame {
		return 0, nil, fmt.Errorf("httpapi: stream frame of %d bytes exceeds limit", n)
	}
	if n == 0 {
		return hdr[0], nil, nil
	}
	payload = make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		return 0, nil, err
	}
	return hdr[0], payload, nil
}

// encodeStreamCell renders one settled cell in the binary cell codec:
// index, graph/algo/job/trace strings, state and flag bytes, then the
// optional params/error/result payloads the flags announce, reusing the
// RJG1 result encoding. Like encodeGroupBinary it can only fail on a state
// outside the lifecycle enum — a programming error — hence the panic.
func encodeStreamCell(c BatchCellView) []byte {
	code, err := stateCode(c.State)
	if err != nil {
		panic(err)
	}
	var flags byte
	if c.CacheHit {
		flags |= sfCacheHit
	}
	if c.Error != "" {
		flags |= sfError
	}
	if c.Result != nil {
		flags |= sfResult
		if c.Result.Trace != nil {
			flags |= sfTrace
		}
	}
	if c.Params != nil {
		flags |= sfParams
	}
	buf := make([]byte, 0, 64)
	buf = binary.AppendUvarint(buf, uint64(c.Index))
	buf = appendString(buf, c.Graph)
	buf = appendString(buf, c.Algo)
	buf = appendString(buf, c.JobID)
	buf = appendString(buf, c.TraceID)
	buf = append(buf, code, flags)
	if c.Params != nil {
		buf = appendF64(buf, c.Params.Eps)
		buf = binary.AppendVarint(buf, int64(c.Params.K))
		buf = appendF64(buf, c.Params.Delta)
		buf = appendString(buf, c.Params.MIS)
		buf = appendString(buf, c.Params.Model)
		buf = binary.AppendUvarint(buf, c.Params.Seed)
		var det byte
		if c.Params.DetColoring {
			det = 1
		}
		buf = append(buf, det)
	}
	if c.Error != "" {
		buf = appendString(buf, c.Error)
	}
	if c.Result != nil {
		buf = appendResult(buf, c.Result)
	}
	return buf
}

func appendF64(buf []byte, v float64) []byte {
	return binary.BigEndian.AppendUint64(buf, math.Float64bits(v))
}

func (r *groupReader) f64(what string) float64 {
	if r.err != nil {
		return 0
	}
	if len(r.data)-r.off < 8 {
		r.fail("truncated %s at offset %d", what, r.off)
		return 0
	}
	v := math.Float64frombits(binary.BigEndian.Uint64(r.data[r.off:]))
	r.off += 8
	return v
}

// DecodeStreamCell parses a StreamFrameCell payload — the inverse of
// encodeStreamCell. It is exported for clients of the binary stream and is
// the fuzzing surface of the stream codec.
func DecodeStreamCell(data []byte) (BatchCellView, error) {
	r := &groupReader{data: data}
	c := BatchCellView{
		Index:   int(r.uvarint("index")),
		Graph:   r.str("graph"),
		Algo:    r.str("algo"),
		JobID:   r.str("job id"),
		TraceID: r.str("trace id"),
	}
	code := r.byte("state code")
	flags := r.byte("flags")
	if r.err == nil {
		if int(code) >= len(stateCodes) {
			r.fail("unknown state code %d", code)
		} else {
			c.State = stateCodes[code]
		}
	}
	c.CacheHit = flags&sfCacheHit != 0
	if flags&sfParams != 0 {
		p := &ParamsRequest{
			Eps:   r.f64("params eps"),
			K:     int(r.varint("params k")),
			Delta: r.f64("params delta"),
			MIS:   r.str("params mis"),
			Model: r.str("params model"),
			Seed:  r.uvarint("params seed"),
		}
		p.DetColoring = r.byte("params det_coloring") != 0
		c.Params = p
	}
	if flags&sfError != 0 {
		c.Error = r.str("cell error")
	}
	if flags&sfResult != 0 {
		c.Result = readResult(r, flags&sfTrace != 0)
	}
	if r.err != nil {
		return BatchCellView{}, r.err
	}
	if r.off != len(data) {
		return BatchCellView{}, fmt.Errorf("httpapi: stream cell: %d trailing bytes", len(data)-r.off)
	}
	return c, nil
}

// StreamBatch consumes GET /v1/batches/{id}/stream from cell index `from`
// (0 streams the whole batch), invoking fn for each settled cell in index
// order and returning the final batch summary. It negotiates the compact
// binary stream and falls back to SSE by the response's Content-Type, so it
// works against both renderings. fn returning an error aborts the stream
// and surfaces that error. StreamBatch issues ONE request; callers wanting
// resume-on-disconnect loop around it, passing the next unseen index.
func (c *Client) StreamBatch(ctx context.Context, id string, from int, fn func(BatchCellView) error) (BatchResponse, error) {
	path := c.base + "/v1/batches/" + url.PathEscape(id) + "/stream"
	if from > 0 {
		path += "?from=" + strconv.Itoa(from)
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, path, nil)
	if err != nil {
		return BatchResponse{}, err
	}
	req.Header.Set("Accept", BatchStreamContentType+", text/event-stream")
	if from > 0 {
		req.Header.Set("Last-Event-ID", strconv.Itoa(from-1))
	}
	c.auth(req)
	resp, err := c.hc.Do(req)
	if err != nil {
		return BatchResponse{}, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		var env struct {
			Error string `json:"error"`
			Code  string `json:"code"`
		}
		_ = json.NewDecoder(resp.Body).Decode(&env)
		return BatchResponse{}, &APIError{Status: resp.StatusCode, Code: env.Code, Message: env.Error}
	}
	if strings.Contains(resp.Header.Get("Content-Type"), BatchStreamContentType) {
		return readBinaryStream(resp.Body, fn)
	}
	return readSSEStream(resp.Body, fn)
}

func readBinaryStream(body io.Reader, fn func(BatchCellView) error) (BatchResponse, error) {
	br := bufio.NewReader(body)
	magic := make([]byte, len(streamMagic))
	if _, err := io.ReadFull(br, magic); err != nil {
		return BatchResponse{}, err
	}
	if string(magic) != streamMagic {
		return BatchResponse{}, fmt.Errorf("httpapi: batch stream: bad magic (want %q)", streamMagic)
	}
	for {
		typ, payload, err := ReadStreamFrame(br)
		if err != nil {
			return BatchResponse{}, err
		}
		switch typ {
		case StreamFrameKeepalive:
		case StreamFrameCell:
			cv, err := DecodeStreamCell(payload)
			if err != nil {
				return BatchResponse{}, err
			}
			if err := fn(cv); err != nil {
				return BatchResponse{}, err
			}
		case StreamFrameBatch:
			var out BatchResponse
			if err := json.Unmarshal(payload, &out); err != nil {
				return BatchResponse{}, err
			}
			return out, nil
		default:
			return BatchResponse{}, fmt.Errorf("httpapi: batch stream: unknown frame type %d", typ)
		}
	}
}

func readSSEStream(body io.Reader, fn func(BatchCellView) error) (BatchResponse, error) {
	sc := bufio.NewScanner(body)
	sc.Buffer(make([]byte, 64<<10), maxStreamFrame)
	event, data := "", ""
	for sc.Scan() {
		line := sc.Text()
		switch {
		case line == "":
			// Blank line dispatches the accumulated event.
			switch event {
			case "cell":
				var cv BatchCellView
				if err := json.Unmarshal([]byte(data), &cv); err != nil {
					return BatchResponse{}, err
				}
				if err := fn(cv); err != nil {
					return BatchResponse{}, err
				}
			case "batch":
				var out BatchResponse
				if err := json.Unmarshal([]byte(data), &out); err != nil {
					return BatchResponse{}, err
				}
				return out, nil
			}
			event, data = "", ""
		case strings.HasPrefix(line, ":"): // comment / keepalive
		case strings.HasPrefix(line, "event:"):
			event = strings.TrimSpace(strings.TrimPrefix(line, "event:"))
		case strings.HasPrefix(line, "data:"):
			data = strings.TrimSpace(strings.TrimPrefix(line, "data:"))
		}
	}
	if err := sc.Err(); err != nil {
		return BatchResponse{}, err
	}
	return BatchResponse{}, errors.New("httpapi: batch stream ended without a batch summary")
}
