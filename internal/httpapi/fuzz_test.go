package httpapi

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/service"
	"repro/internal/store"
)

// fuzzGenCap bounds fuzzed generator sizes: resolveGraph builds generator
// specs synchronously in the handler, so the fuzzer must probe the decoding
// and validation paths, not the graph generators' throughput.
const fuzzGenCap = 4096

// fuzzBodyTooExpensive reports whether a body, if it decodes at all, asks
// for work beyond what a fuzz iteration should pay for.
func fuzzBodyTooExpensive(body string) bool {
	if len(body) > 1<<16 {
		return true
	}
	var req SubmitRequest
	if err := json.Unmarshal([]byte(body), &req); err != nil {
		return false // the handler must reject it cheaply; let it through
	}
	if g := req.Gen; g != nil {
		if g.N > fuzzGenCap || g.N2 > fuzzGenCap || g.Rows > 256 || g.Cols > 256 ||
			g.Spine > fuzzGenCap || g.Legs > 256 || g.D > 256 {
			return true
		}
	}
	return false
}

// FuzzHandleJobSubmit fuzzes POST /v1/jobs with arbitrary (mostly malformed)
// bodies: the handler must never panic and must answer every body with one
// of its documented statuses. Accepted jobs are canceled immediately so the
// fuzzer never waits on algorithm execution. The committed seed corpus lives
// in testdata/fuzz/FuzzHandleJobSubmit.
func FuzzHandleJobSubmit(f *testing.F) {
	f.Add(`{"algo":"mwm2","gen":{"gen":"gnp","n":8,"p":0.5,"seed":1,"maxw":8}}`)
	f.Add(`{"algo":"maxis","graph":"3 2\n1 2 3\n0 1 5\n1 2 7\n"}`)
	f.Add(`{"algo":"maxis","graph_name":"missing"}`)
	f.Add(`{"algo":"quantum"}`)
	f.Add(`{{{`)
	f.Add(`{"algo":"maxis","gne":{"gen":"gnp","n":4,"p":0.5}}`)
	f.Add(`{"algo":"maxis","graph":"1000000000 0\n"}`)
	f.Add(`{"algo":"fastmcm","gen":{"gen":"gnp","n":8,"p":0.5},"params":{"eps":-1}}`)
	f.Add(`{"algo":"nmis","gen":{"gen":"grid","rows":3,"cols":3},"params":{"k":2,"delta":0.5}}`)
	f.Add(`{"algo":"maxis","graph":"1 0\n1\n","gen":{"gen":"gnp","n":4,"p":0.5}}`)

	svc := service.New(service.Config{Workers: 1, QueueSize: 16, DefaultTimeout: 50 * time.Millisecond})
	f.Cleanup(svc.Close)
	st := store.New(store.Config{})
	handler := NewHandler(svc, st, service.NewBatches(svc, st, service.BatchConfig{}))

	f.Fuzz(func(t *testing.T, body string) {
		if fuzzBodyTooExpensive(body) {
			t.Skip("body beyond the fuzz work cap")
		}
		rr := httptest.NewRecorder()
		req := httptest.NewRequest(http.MethodPost, "/v1/jobs", strings.NewReader(body))
		req.Header.Set("Content-Type", "application/json")
		handler.ServeHTTP(rr, req)

		switch rr.Code {
		case http.StatusAccepted:
			// Valid submission: cancel it so the worker pool stays free.
			var jr JobResponse
			if err := json.Unmarshal(rr.Body.Bytes(), &jr); err != nil || jr.ID == "" {
				t.Fatalf("202 with undecodable body %q: %v", rr.Body.String(), err)
			}
			cancel := httptest.NewRequest(http.MethodDelete, "/v1/jobs/"+jr.ID, nil)
			crr := httptest.NewRecorder()
			handler.ServeHTTP(crr, cancel)
			if crr.Code != http.StatusOK && crr.Code != http.StatusConflict {
				t.Fatalf("cancel of fuzz job %s: status %d", jr.ID, crr.Code)
			}
		case http.StatusBadRequest, http.StatusNotFound, http.StatusServiceUnavailable:
			// Documented rejections; the error envelope must be JSON.
			var env struct {
				Error string `json:"error"`
			}
			if err := json.Unmarshal(rr.Body.Bytes(), &env); err != nil || env.Error == "" {
				t.Fatalf("status %d with bad error envelope %q", rr.Code, rr.Body.String())
			}
		default:
			t.Fatalf("undocumented status %d for body %q", rr.Code, body)
		}
	})
}
