package httpapi

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"testing"
	"time"

	"repro/internal/service"
	"repro/internal/store"
)

// streamCells drains one StreamBatch call into a slice.
func streamCells(t *testing.T, c *Client, id string, from int) ([]BatchCellView, BatchResponse) {
	t.Helper()
	var cells []BatchCellView
	fin, err := c.StreamBatch(context.Background(), id, from, func(cv BatchCellView) error {
		cells = append(cells, cv)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return cells, fin
}

// TestStreamMatchesTerminalGet is the equivalence contract: the cells a
// stream delivers are exactly the cells of the terminal GET, field for
// field, and the closing summary agrees with the terminal snapshot.
func TestStreamMatchesTerminalGet(t *testing.T) {
	ts, _, _ := newFullServer(t, service.Config{Workers: 4}, service.BatchConfig{})
	c := NewClient(ts.URL, nil)
	ctx := context.Background()

	if _, err := c.PutGraphGen(ctx, "g", GenRequest{Gen: "gnp", N: 24, P: 0.2, Seed: 7, MaxW: 32}); err != nil {
		t.Fatal(err)
	}
	b, err := c.SubmitBatch(ctx, BatchRequest{Graphs: []string{"g"}, Algos: []string{"mwm2", "fastmcm"}, Seeds: []uint64{1, 2}})
	if err != nil {
		t.Fatal(err)
	}
	fin, err := c.WaitBatch(ctx, b.ID, 60*time.Second)
	if err != nil {
		t.Fatal(err)
	}

	cells, sum := streamCells(t, c, b.ID, 0)
	if len(cells) != len(fin.Cells) {
		t.Fatalf("streamed %d cells, terminal GET has %d", len(cells), len(fin.Cells))
	}
	for i := range cells {
		if !reflect.DeepEqual(cells[i], fin.Cells[i]) {
			t.Errorf("cell %d differs:\nstream: %+v\nget:    %+v", i, cells[i], fin.Cells[i])
		}
	}
	if sum.State != fin.State || sum.Done != fin.Done || sum.Total != fin.Total || sum.ID != fin.ID {
		t.Fatalf("summary %+v disagrees with terminal GET %+v", sum, fin)
	}
	if len(sum.Cells) != 0 {
		t.Fatalf("summary carries %d cells; they were already streamed", len(sum.Cells))
	}
	if len(sum.Groups) != len(fin.Groups) {
		t.Fatalf("summary has %d groups, terminal GET %d", len(sum.Groups), len(fin.Groups))
	}

	// Every streamed cell must round-trip the binary cell codec unchanged —
	// the frames on the wire already did, but pin the property directly.
	for i, cv := range cells {
		dec, err := DecodeStreamCell(encodeStreamCell(cv))
		if err != nil {
			t.Fatalf("cell %d: %v", i, err)
		}
		if !reflect.DeepEqual(dec, cv) {
			t.Fatalf("cell %d codec round trip:\nin:  %+v\nout: %+v", i, cv, dec)
		}
	}
}

// TestStreamIncrementalDelivery pins the point of the endpoint: a settled
// cell arrives while the rest of the batch is still running, not after.
func TestStreamIncrementalDelivery(t *testing.T) {
	ts, _, _ := newFullServer(t, service.Config{Workers: 2}, service.BatchConfig{})
	started, release := registerBlocker(t, "park-stream")
	defer release()
	c := NewClient(ts.URL, nil)
	ctx := context.Background()

	if _, err := c.PutGraphGen(ctx, "g", GenRequest{Gen: "gnp", N: 16, P: 0.25, Seed: 3, MaxW: 8}); err != nil {
		t.Fatal(err)
	}
	b, err := c.SubmitBatch(ctx, BatchRequest{Cells: []BatchCell{
		{Graph: "g", Algo: "mwm2", Params: &ParamsRequest{Seed: 1}},
		{Graph: "g", Algo: "park-stream", Params: &ParamsRequest{Seed: 2}},
	}})
	if err != nil {
		t.Fatal(err)
	}
	<-started // cell 1 is parked on the blocker

	got := make(chan BatchCellView, 4)
	done := make(chan error, 1)
	go func() {
		_, err := c.StreamBatch(ctx, b.ID, 0, func(cv BatchCellView) error {
			got <- cv
			return nil
		})
		done <- err
	}()

	// Cell 0 must arrive while cell 1 is still parked.
	select {
	case cv := <-got:
		if cv.Index != 0 || cv.State != "done" {
			t.Fatalf("first streamed cell %+v", cv)
		}
	case err := <-done:
		t.Fatalf("stream ended early: %v", err)
	case <-time.After(30 * time.Second):
		t.Fatal("cell 0 never streamed while the batch was running")
	}
	if v, err := c.GetBatch(ctx, b.ID, 0); err != nil || v.Terminal() {
		t.Fatalf("batch should still be running when cell 0 streams: %+v, %v", v, err)
	}

	release()
	select {
	case cv := <-got:
		if cv.Index != 1 {
			t.Fatalf("second streamed cell %+v", cv)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("cell 1 never streamed after release")
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
}

// TestStreamResume covers both resume spellings: ?from= (the client helper)
// and the SSE Last-Event-ID header replay only the still-unseen suffix.
func TestStreamResume(t *testing.T) {
	ts, _, _ := newFullServer(t, service.Config{Workers: 2}, service.BatchConfig{})
	c := NewClient(ts.URL, nil)
	ctx := context.Background()

	if _, err := c.PutGraphGen(ctx, "g", GenRequest{Gen: "gnp", N: 16, P: 0.25, Seed: 4, MaxW: 8}); err != nil {
		t.Fatal(err)
	}
	b, err := c.SubmitBatch(ctx, BatchRequest{Graphs: []string{"g"}, Algos: []string{"mwm2"}, Seeds: []uint64{1, 2, 3}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.WaitBatch(ctx, b.ID, 60*time.Second); err != nil {
		t.Fatal(err)
	}

	cells, _ := streamCells(t, c, b.ID, 2)
	if len(cells) != 1 || cells[0].Index != 2 {
		t.Fatalf("resume from 2 streamed %+v, want exactly cell 2", cells)
	}
	// from == total is a valid resume: no cells, straight to the summary.
	cells, sum := streamCells(t, c, b.ID, 3)
	if len(cells) != 0 || sum.State != "done" {
		t.Fatalf("resume at end streamed %d cells, summary %+v", len(cells), sum)
	}

	// Raw SSE with Last-Event-ID: the server must start after the given id.
	req, _ := http.NewRequest(http.MethodGet, ts.URL+"/v1/batches/"+b.ID+"/stream", nil)
	req.Header.Set("Last-Event-ID", "0")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "text/event-stream") {
		t.Fatalf("SSE content type %q", ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	text := string(body)
	if strings.Contains(text, "id: 0\n") {
		t.Fatal("Last-Event-ID: 0 replayed cell 0")
	}
	for _, want := range []string{"id: 1\n", "id: 2\n", "event: cell\n", "event: batch\n"} {
		if !strings.Contains(text, want) {
			t.Fatalf("SSE body missing %q:\n%s", want, text)
		}
	}

	// The SSE rendering feeds the same client-side decoder as binary.
	sseReq, _ := http.NewRequest(http.MethodGet, ts.URL+"/v1/batches/"+b.ID+"/stream", nil)
	sseResp, err := http.DefaultClient.Do(sseReq)
	if err != nil {
		t.Fatal(err)
	}
	defer sseResp.Body.Close()
	var sseCells []BatchCellView
	sum2, err := readSSEStream(sseResp.Body, func(cv BatchCellView) error {
		sseCells = append(sseCells, cv)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(sseCells) != 3 || sum2.State != "done" {
		t.Fatalf("SSE decode: %d cells, summary %+v", len(sseCells), sum2)
	}
	binCells, _ := streamCells(t, c, b.ID, 0) // client negotiates binary
	if !reflect.DeepEqual(sseCells, binCells) {
		t.Fatalf("SSE and binary renderings disagree:\nsse: %+v\nbin: %+v", sseCells, binCells)
	}
}

// TestStreamBadRequests pins the stream endpoint's error surface.
func TestStreamBadRequests(t *testing.T) {
	ts, _, _ := newFullServer(t, service.Config{Workers: 1}, service.BatchConfig{})
	c := NewClient(ts.URL, nil)
	ctx := context.Background()
	if _, err := c.PutGraphGen(ctx, "g", GenRequest{Gen: "gnp", N: 12, P: 0.3, Seed: 1, MaxW: 4}); err != nil {
		t.Fatal(err)
	}
	b, err := c.SubmitBatch(ctx, BatchRequest{Graphs: []string{"g"}, Algos: []string{"mwm2"}, Seeds: []uint64{1}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.WaitBatch(ctx, b.ID, 60*time.Second); err != nil {
		t.Fatal(err)
	}

	for name, path := range map[string]string{
		"negative from":   "/v1/batches/" + b.ID + "/stream?from=-1",
		"garbage from":    "/v1/batches/" + b.ID + "/stream?from=banana",
		"from past total": "/v1/batches/" + b.ID + "/stream?from=2",
	} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400", name, resp.StatusCode)
		}
	}
	resp, err := http.Get(ts.URL + "/v1/batches/b999999/stream")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown batch stream: status %d", resp.StatusCode)
	}

	req, _ := http.NewRequest(http.MethodGet, ts.URL+"/v1/batches/"+b.ID+"/stream", nil)
	req.Header.Set("Last-Event-ID", "banana")
	lresp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	lresp.Body.Close()
	if lresp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad Last-Event-ID: status %d", lresp.StatusCode)
	}
}

// TestStreamCellCodecEdges exercises the decoder against hand-made
// corruption the fuzzer also hunts for: truncation, trailing bytes, bad
// state codes, and oversized frame lengths.
func TestStreamCellCodecEdges(t *testing.T) {
	good := encodeStreamCell(BatchCellView{
		Index: 3, Graph: "g", Algo: "mwm2", JobID: "j1", TraceID: "t1",
		State: "failed", Error: "boom", CacheHit: true,
		Params: &ParamsRequest{Eps: 0.5, K: 2, Delta: 0.1, MIS: "maxis", Model: "congest", Seed: 9, DetColoring: true},
	})
	cv, err := DecodeStreamCell(good)
	if err != nil {
		t.Fatal(err)
	}
	if cv.State != "failed" || cv.Error != "boom" || !cv.CacheHit || cv.Params == nil || cv.Params.Seed != 9 {
		t.Fatalf("decoded %+v", cv)
	}
	for i := 1; i < len(good); i++ {
		if _, err := DecodeStreamCell(good[:i]); err == nil {
			t.Fatalf("truncation at %d decoded", i)
		}
	}
	if _, err := DecodeStreamCell(append(append([]byte{}, good...), 0)); err == nil {
		t.Fatal("trailing byte accepted")
	}
	// A state outside the lifecycle enum is a programming error: the encoder
	// panics rather than emitting an undecodable frame.
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("encodeStreamCell accepted an unknown state")
			}
		}()
		encodeStreamCell(BatchCellView{State: "quantum"})
	}()

	// A corrupt frame length must be bounded, not allocated.
	frame := []byte{StreamFrameCell, 0xff, 0xff, 0xff, 0xff}
	if _, _, err := ReadStreamFrame(strings.NewReader(string(frame))); err == nil {
		t.Fatal("oversized frame length accepted")
	}
	var sb strings.Builder
	if err := writeStreamFrame(&sb, StreamFrameCell, good); err != nil {
		t.Fatal(err)
	}
	typ, payload, err := ReadStreamFrame(bufio.NewReader(strings.NewReader(sb.String())))
	if err != nil || typ != StreamFrameCell || !reflect.DeepEqual(payload, good) {
		t.Fatalf("frame round trip: typ %d err %v", typ, err)
	}
}

// TestBodyTooLargeIs413 is the oversized-body bugfix: a body over the cap
// answers 413 with the machine-readable body_too_large code (it used to
// surface as a generic 400), on both the JSON and the streaming upload
// paths.
func TestBodyTooLargeIs413(t *testing.T) {
	svc := service.New(service.Config{Workers: 1})
	t.Cleanup(svc.Close)
	st := store.New(store.Config{})
	h := NewHandler(svc, st, service.NewBatches(svc, st, service.BatchConfig{}), WithMaxBodyBytes(512))
	ts := httptest.NewServer(h)
	t.Cleanup(ts.Close)

	big := strings.Repeat("x", 2048)
	// Valid fixed-width edge-list lines (8 bytes each, so the 512-byte cap
	// cuts on a line boundary): the parser must hit the size cap, not a
	// malformed truncated line, for the 413 to be attributable to the cap.
	var edges strings.Builder
	for i := 1; edges.Len() < 2048; i++ {
		fmt.Fprintf(&edges, "%03d %03d\n", 0, i)
	}
	cases := map[string]struct {
		method, path, ctype, body string
	}{
		"json job submit":  {http.MethodPost, "/v1/jobs", "application/json", `{"algo":"maxis","graph":"` + big + `"}`},
		"json graph put":   {http.MethodPut, "/v1/graphs/big", "application/json", `{"graph":"` + big + `"}`},
		"edge list upload": {http.MethodPut, "/v1/graphs/el", GraphEdgeListContentType, edges.String()},
	}
	for name, tc := range cases {
		req, _ := http.NewRequest(tc.method, ts.URL+tc.path, strings.NewReader(tc.body))
		req.Header.Set("Content-Type", tc.ctype)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		raw, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusRequestEntityTooLarge {
			t.Errorf("%s: status %d, want 413 (body %s)", name, resp.StatusCode, raw)
			continue
		}
		var env struct {
			Error string `json:"error"`
			Code  string `json:"code"`
		}
		if err := json.Unmarshal(raw, &env); err != nil || env.Code != CodeBodyTooLarge {
			t.Errorf("%s: envelope %s, want code %q", name, raw, CodeBodyTooLarge)
		}
	}

	// A body under the cap still works.
	req, _ := http.NewRequest(http.MethodPut, ts.URL+"/v1/graphs/ok", strings.NewReader(`{"gen":{"gen":"gnp","n":8,"p":0.5,"seed":1}}`))
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode >= 300 {
		t.Fatalf("small body: status %d", resp.StatusCode)
	}
}

// TestWriteJSONNeverTearsA200 is the torn-body bugfix: an unencodable value
// must produce a clean 500 envelope, never a 200 status line with a
// truncated body.
func TestWriteJSONNeverTearsA200(t *testing.T) {
	rr := httptest.NewRecorder()
	writeJSON(rr, http.StatusOK, map[string]float64{"x": math.Inf(1)})
	if rr.Code != http.StatusInternalServerError {
		t.Fatalf("status %d, want 500", rr.Code)
	}
	var env struct {
		Error string `json:"error"`
	}
	if err := json.Unmarshal(rr.Body.Bytes(), &env); err != nil || env.Error == "" {
		t.Fatalf("500 body %q is not a clean error envelope", rr.Body.String())
	}

	rr2 := httptest.NewRecorder()
	writeJSON(rr2, http.StatusCreated, map[string]int{"ok": 1})
	if rr2.Code != http.StatusCreated || !strings.Contains(rr2.Body.String(), `"ok":1`) {
		t.Fatalf("happy path: %d %q", rr2.Code, rr2.Body.String())
	}
}

// FuzzStreamChunkDecode fuzzes the binary stream cell decoder: arbitrary
// payloads must never panic, and anything that decodes must re-encode and
// decode back to the same cell (the codec is self-consistent on its own
// output).
func FuzzStreamChunkDecode(f *testing.F) {
	f.Add([]byte{})
	f.Add(encodeStreamCell(BatchCellView{State: "queued"}))
	f.Add(encodeStreamCell(BatchCellView{
		Index: 2, Graph: "g", Algo: "mwm2", JobID: "j7", TraceID: "abc",
		State: "done", CacheHit: true,
		Params: &ParamsRequest{Eps: 0.25, K: 3, Delta: 0.5, MIS: "maxis", Model: "local", Seed: 11},
	}))
	f.Add(encodeStreamCell(BatchCellView{State: "failed", Error: "timeout"}))
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff})

	f.Fuzz(func(t *testing.T, data []byte) {
		cv, err := DecodeStreamCell(data)
		if err != nil {
			return
		}
		re := encodeStreamCell(cv)
		cv2, err := DecodeStreamCell(re)
		if err != nil {
			t.Fatalf("re-encoded cell failed to decode: %v", err)
		}
		// Compare the two cells through their encodings: the codec is
		// bit-faithful for floats, and byte equality (unlike DeepEqual)
		// treats a round-tripped NaN as equal to itself.
		if re2 := encodeStreamCell(cv2); !bytes.Equal(re, re2) {
			t.Fatalf("codec not self-consistent:\nfirst:  %+v (%x)\nsecond: %+v (%x)", cv, re, cv2, re2)
		}
	})
}
