package httpapi

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/obs"
	"repro/internal/registry"
	"repro/internal/service"
	"repro/internal/store"
)

// fetchMetrics GETs /metrics with the given Accept header and returns body
// and content type.
func fetchMetrics(t *testing.T, url, accept string) (string, string) {
	t.Helper()
	req, err := http.NewRequest(http.MethodGet, url+"/metrics", nil)
	if err != nil {
		t.Fatal(err)
	}
	if accept != "" {
		req.Header.Set("Accept", accept)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /metrics (accept %q): status %d: %s", accept, resp.StatusCode, body)
	}
	return string(body), resp.Header.Get("Content-Type")
}

// TestMetricsContentNegotiation is the exposition acceptance test: JSON stays
// the default, Accept: text/plain switches to valid Prometheus text including
// the required engine families, and the engine telemetry reflects a live run.
func TestMetricsContentNegotiation(t *testing.T) {
	ts, _ := newTestServer(t, service.Config{Workers: 2})

	// Before any job: default stays JSON and decodes into the wire struct.
	body, ctype := fetchMetrics(t, ts.URL, "")
	if !strings.HasPrefix(ctype, "application/json") {
		t.Fatalf("default /metrics content type = %q, want JSON", ctype)
	}
	var mr MetricsResponse
	if err := json.Unmarshal([]byte(body), &mr); err != nil {
		t.Fatalf("default /metrics is not the JSON document: %v", err)
	}

	// Run one live job so the engine telemetry has a sample.
	jr, code := postJob(t, ts, `{"algo":"maxis","gen":{"gen":"gnp","n":24,"p":0.2,"seed":1,"maxw":50}}`)
	if code != http.StatusAccepted {
		t.Fatalf("submit: status %d", code)
	}
	if jr.TraceID == "" {
		t.Fatal("job response carries no trace_id")
	}
	done := pollDone(t, ts, jr.ID)
	if done.State != "done" {
		t.Fatalf("job state %q, error %q", done.State, done.Error)
	}
	if done.Result == nil || done.Result.Trace == nil {
		t.Fatal("live result carries no trace")
	}
	if done.Result.Trace.Rounds <= 0 || done.Result.Trace.Messages <= 0 {
		t.Fatalf("trace has rounds=%d messages=%d, want both > 0",
			done.Result.Trace.Rounds, done.Result.Trace.Messages)
	}

	prom, ctype := fetchMetrics(t, ts.URL, "text/plain")
	if ctype != obs.PromContentType {
		t.Fatalf("prom /metrics content type = %q, want %q", ctype, obs.PromContentType)
	}
	if err := obs.LintProm(prom); err != nil {
		t.Fatalf("prom exposition fails lint: %v\n%s", err, prom)
	}
	for _, family := range []string{
		"# TYPE repro_engine_rounds histogram",
		"# TYPE repro_engine_messages_total counter",
		"# TYPE repro_jobs_completed_total counter",
	} {
		if !strings.Contains(prom, family) {
			t.Errorf("prom exposition missing %q", family)
		}
	}
	if strings.Contains(prom, "repro_engine_messages_total 0\n") {
		t.Error("repro_engine_messages_total still 0 after a live run")
	}
	if !strings.Contains(prom, "repro_engine_rounds_count 1") {
		t.Errorf("repro_engine_rounds_count should be 1 after one live run:\n%s", prom)
	}

	// JSON must be unchanged by the negotiation — re-fetch and compare the
	// decoded structure is still the plain counters document.
	body2, ctype2 := fetchMetrics(t, ts.URL, "application/json")
	if !strings.HasPrefix(ctype2, "application/json") {
		t.Fatalf("Accept: application/json got content type %q", ctype2)
	}
	if err := json.Unmarshal([]byte(body2), &mr); err != nil {
		t.Fatalf("JSON document broke after prom exposition: %v", err)
	}
	if mr.Completed != 1 {
		t.Fatalf("JSON metrics completed = %d, want 1", mr.Completed)
	}
}

// TestSubmitEchoesTraceHeader pins the header contract: a client-supplied
// X-Repro-Trace is adopted and echoed on the submit response.
func TestSubmitEchoesTraceHeader(t *testing.T) {
	ts, _ := newTestServer(t, service.Config{Workers: 1})
	req, err := http.NewRequest(http.MethodPost, ts.URL+"/v1/jobs",
		strings.NewReader(`{"algo":"seq-maxis","gen":{"gen":"gnp","n":8,"p":0.3,"seed":1}}`))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(TraceHeader, "cafe0123deadbeef")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: status %d", resp.StatusCode)
	}
	if got := resp.Header.Get(TraceHeader); got != "cafe0123deadbeef" {
		t.Fatalf("echoed trace header = %q, want the submitted one", got)
	}
	var jr JobResponse
	if err := json.NewDecoder(resp.Body).Decode(&jr); err != nil {
		t.Fatal(err)
	}
	if jr.TraceID != "cafe0123deadbeef" {
		t.Fatalf("job trace_id = %q, want the submitted one", jr.TraceID)
	}
}

// fakeClusterBackend serves canned cluster metrics/views for exposition
// tests; the Backend surface is never hit by /metrics.
type fakeClusterBackend struct {
	Backend
	m ClusterMetrics
	v ClusterView
}

func (f fakeClusterBackend) View() ClusterView       { return f.v }
func (f fakeClusterBackend) Metrics() ClusterMetrics { return f.m }

func TestClusterPromExposition(t *testing.T) {
	b := fakeClusterBackend{
		m: ClusterMetrics{
			WorkersTotal:    2,
			WorkersHealthy:  1,
			CellsDispatched: 9,
			CellRetries:     2,
			WorkerFailures:  1,
		},
		v: ClusterView{Workers: []ClusterWorker{
			{URL: "http://w2:8080", Healthy: false, InFlight: 0, Dispatched: 3, Failures: 1},
			{URL: "http://w1:8080", Healthy: true, InFlight: 2, Graphs: 4, Dispatched: 6},
		}},
	}
	ts := httptest.NewServer(NewClusterHandler(b))
	defer ts.Close()

	prom, ctype := fetchMetrics(t, ts.URL, "text/plain")
	if ctype != obs.PromContentType {
		t.Fatalf("content type = %q", ctype)
	}
	if err := obs.LintProm(prom); err != nil {
		t.Fatalf("cluster exposition fails lint: %v\n%s", err, prom)
	}
	for _, line := range []string{
		`repro_cluster_worker_healthy{worker="http://w1:8080"} 1`,
		`repro_cluster_worker_healthy{worker="http://w2:8080"} 0`,
		`repro_cluster_worker_in_flight{worker="http://w1:8080"} 2`,
		`repro_cluster_cell_retries_total 2`,
		`repro_cluster_workers_healthy 1`,
	} {
		if !strings.Contains(prom, line+"\n") {
			t.Errorf("cluster exposition missing %q:\n%s", line, prom)
		}
	}
	// Per-worker samples must come out in sorted URL order regardless of the
	// view's order, so scrapes diff cleanly.
	if strings.Index(prom, `worker="http://w1:8080"`) > strings.Index(prom, `worker="http://w2:8080"`) {
		t.Error("per-worker samples not in sorted URL order")
	}

	// JSON default still serves the ClusterMetrics document.
	body, ctype := fetchMetrics(t, ts.URL, "")
	if !strings.HasPrefix(ctype, "application/json") {
		t.Fatalf("default cluster /metrics content type = %q", ctype)
	}
	var cm ClusterMetrics
	if err := json.Unmarshal([]byte(body), &cm); err != nil {
		t.Fatal(err)
	}
	if cm.CellsDispatched != 9 {
		t.Fatalf("JSON cluster metrics dispatched = %d, want 9", cm.CellsDispatched)
	}
}

// TestBatchGroupsCarryMessagesAndTrace pins the batch aggregation additions:
// terminal groups summarize messages and sum member traces.
func TestBatchGroupsCarryMessagesAndTrace(t *testing.T) {
	ts, _, st := newFullServer(t, service.Config{Workers: 2}, service.BatchConfig{})
	src := store.Source{Gen: "gnp", GenParams: registry.GenParams{N: 20, P: 0.3, Seed: 1, MaxW: 32}}
	if _, _, err := st.Put("g1", src); err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+"/v1/batches", "application/json",
		strings.NewReader(`{"graphs":["g1"],"algos":["maxis"],"seeds":[1,2,3]}`))
	if err != nil {
		t.Fatal(err)
	}
	var br BatchResponse
	if err := json.NewDecoder(resp.Body).Decode(&br); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("batch submit: status %d", resp.StatusCode)
	}
	if br.TraceID == "" {
		t.Fatal("batch response carries no trace_id")
	}

	deadline := time.Now().Add(60 * time.Second)
	for {
		resp, err := http.Get(ts.URL + "/v1/batches/" + br.ID)
		if err != nil {
			t.Fatal(err)
		}
		err = json.NewDecoder(resp.Body).Decode(&br)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if br.Terminal() {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("batch never finished")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if br.State != "done" || len(br.Groups) != 1 {
		t.Fatalf("batch state %q groups %d", br.State, len(br.Groups))
	}
	g := br.Groups[0]
	if g.Messages.N != 3 || g.Messages.Mean <= 0 {
		t.Fatalf("group messages summary = %+v, want 3 samples with positive mean", g.Messages)
	}
	if g.Trace == nil || g.Trace.Rounds <= 0 || g.Trace.Messages <= 0 {
		t.Fatalf("group trace = %+v, want summed rounds and messages", g.Trace)
	}
	for _, c := range br.Cells {
		if c.TraceID == "" || !strings.HasPrefix(c.TraceID, br.TraceID+".") {
			t.Fatalf("cell %d trace %q is not a child of batch trace %q", c.Index, c.TraceID, br.TraceID)
		}
	}
}
