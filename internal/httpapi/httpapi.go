// Package httpapi is the HTTP JSON transport over the job service, the
// named graph store and the batch-sweep engine. cmd/reprod mounts the
// handler as its entire surface; cmd/sweep and examples/batchsweep drive the
// same handler in-process through the typed Client, so the CLI, the
// examples and the served API share one engine and one wire format.
//
// Layer (DESIGN.md §2): httpapi sits above internal/service and
// internal/store and below the cmd binaries; it owns every wire type
// (requests and responses) so no other layer marshals JSON.
//
// Concurrency and ownership: the handler returned by NewHandler is a plain
// stateless http.Handler — all state lives in the Service, Store and
// Batches it wraps, each of which is safe for concurrent use. Request
// bodies are bounded by maxBodyBytes before decoding.
//
// Endpoints:
//
//	POST   /v1/jobs            submit a job (inline graph, stored graph, or generator spec)
//	GET    /v1/jobs/{id}       poll a job
//	DELETE /v1/jobs/{id}       cancel a queued or running job
//	POST   /v1/jobgroups       run one algorithm over N seeds against one stored graph
//	GET    /v1/jobgroups/{id}  poll a job group (binary with Accept: application/x-repro-jobgroup)
//	DELETE /v1/jobgroups/{id}  cancel a job group
//	PUT    /v1/graphs/{name}   register a named graph (text, generator spec, or
//	                           Content-Type: application/x-repro-graph binary)
//	GET    /v1/graphs          list named graphs
//	GET    /v1/graphs/{name}   inspect a named graph
//	DELETE /v1/graphs/{name}   delete a named graph (409 while pinned)
//	POST   /v1/batches         submit a batch (stored graphs × parameter grid)
//	GET    /v1/batches         list batches
//	GET    /v1/batches/{id}    poll a batch; ?wait=5s long-polls until terminal
//	GET    /v1/batches/{id}/stream  stream cell results incrementally (SSE, or
//	                           binary with Accept: application/x-repro-batchstream;
//	                           resumable via Last-Event-ID)
//	DELETE /v1/batches/{id}    cancel a batch (fans out to member jobs)
//	GET    /v1/algorithms      list registered algorithms and generators
//	GET    /healthz            liveness
//	GET    /metrics            service + batch counters and latency percentiles
//
// Multi-tenant mode (tenant.go): WithKeyring turns on API-key auth, token-
// bucket rate limits, tenant-scoped graph/batch visibility and per-tenant
// admission; without it the surface is byte-identical to the single-tenant
// server.
package httpapi

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"log"
	"net/http"
	"strings"
	"time"

	"repro/internal/graph"
	"repro/internal/obs"
	"repro/internal/registry"
	"repro/internal/service"
	"repro/internal/stats"
	"repro/internal/store"
	"repro/internal/tenant"
)

// DefaultMaxBodyBytes is the request-body bound (inline graphs included)
// applied when no WithMaxBodyBytes option overrides it.
const DefaultMaxBodyBytes = 64 << 20

// HandlerOption configures NewHandler / NewClusterHandler.
type HandlerOption func(*handlerConfig)

type handlerConfig struct {
	maxBody int64
	keyring *tenant.Keyring
	waiters *waiterGate
}

func buildHandlerConfig(opts []HandlerOption) *handlerConfig {
	cfg := &handlerConfig{maxBody: DefaultMaxBodyBytes, waiters: newWaiterGate()}
	for _, o := range opts {
		o(cfg)
	}
	return cfg
}

// WithMaxBodyBytes overrides the request-body size bound (default
// DefaultMaxBodyBytes). Deployments ingesting million-node graphs raise it;
// the streaming upload decoders keep memory proportional to the graph, not
// the bound.
func WithMaxBodyBytes(n int64) HandlerOption {
	return func(c *handlerConfig) {
		if n > 0 {
			c.maxBody = n
		}
	}
}

// WithKeyring turns on multi-tenant mode: every request (except GET
// /healthz) must carry a valid API key, mutating requests spend the tenant's
// token bucket, and graphs/jobs/batches are scoped to the submitting tenant.
// A nil keyring keeps the open single-tenant behavior.
func WithKeyring(kr *tenant.Keyring) HandlerOption {
	return func(c *handlerConfig) {
		c.keyring = kr
	}
}

// limitBody caps every request body once, at the edge, so the decoders
// below can consume r.Body directly — streaming ones included.
func limitBody(h http.Handler, limit int64) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Body != nil {
			r.Body = http.MaxBytesReader(w, r.Body, limit)
		}
		h.ServeHTTP(w, r)
	})
}

// maxWait caps the ?wait= long-poll duration.
const maxWait = 60 * time.Second

// TraceHeader is the HTTP header carrying a request's trace ID. Clients may
// set it instead of (or in addition to) the body's trace_id field — the body
// wins when both are present — and every job/batch response echoes the
// effective trace ID back in the same header.
const TraceHeader = "X-Repro-Trace"

// SubmitRequest is the POST /v1/jobs body. Exactly one of Graph (the
// graph.Encode text format), GraphName (a stored graph) and Gen (a
// generator spec) must be set.
type SubmitRequest struct {
	Algo      string         `json:"algo"`
	Graph     string         `json:"graph,omitempty"`
	GraphName string         `json:"graph_name,omitempty"`
	Gen       *GenRequest    `json:"gen,omitempty"`
	Params    *ParamsRequest `json:"params,omitempty"`
	TimeoutMs int64          `json:"timeout_ms,omitempty"`
	// TraceID propagates an existing trace (e.g. a coordinator-assigned cell
	// trace) into the job; empty means the service mints one.
	TraceID string `json:"trace_id,omitempty"`
}

// TraceHeaderValue reports the trace ID Client.do should send as the
// TraceHeader header.
func (r SubmitRequest) TraceHeaderValue() string { return r.TraceID }

// GenRequest mirrors registry.GenParams with the generator name inline:
// {"gen":"gnp","n":64,"p":0.1,"seed":1}.
type GenRequest struct {
	Gen   string  `json:"gen"`
	N     int     `json:"n,omitempty"`
	N2    int     `json:"n2,omitempty"`
	D     int     `json:"d,omitempty"`
	P     float64 `json:"p,omitempty"`
	Rows  int     `json:"rows,omitempty"`
	Cols  int     `json:"cols,omitempty"`
	Spine int     `json:"spine,omitempty"`
	Legs  int     `json:"legs,omitempty"`
	Seed  uint64  `json:"seed,omitempty"`
	MaxW  int64   `json:"maxw,omitempty"`
}

func (g *GenRequest) genParams() registry.GenParams {
	return registry.GenParams{
		N: g.N, N2: g.N2, D: g.D, P: g.P,
		Rows: g.Rows, Cols: g.Cols,
		Spine: g.Spine, Legs: g.Legs,
		Seed: g.Seed, MaxW: g.MaxW,
	}
}

// ParamsRequest is the wire form of registry.Params.
type ParamsRequest struct {
	Eps         float64 `json:"eps,omitempty"`
	K           int     `json:"k,omitempty"`
	Delta       float64 `json:"delta,omitempty"`
	MIS         string  `json:"mis,omitempty"`
	Model       string  `json:"model,omitempty"`
	Seed        uint64  `json:"seed,omitempty"`
	DetColoring bool    `json:"det_coloring,omitempty"`
}

func (p *ParamsRequest) params() (registry.Params, error) {
	if p == nil {
		return registry.Params{}, nil
	}
	mdl, err := registry.ParseModel(p.Model)
	if err != nil {
		return registry.Params{}, err
	}
	return registry.Params{
		Eps: p.Eps, K: p.K, Delta: p.Delta, MIS: p.MIS,
		Model: mdl, Seed: p.Seed, DeterministicColoring: p.DetColoring,
	}, nil
}

// ParamsWire renders registry params in their wire form; it is the inverse
// of ParamsRequest.params and is shared with the cluster coordinator, which
// re-submits expanded cells to workers over the same wire format.
func ParamsWire(p registry.Params) *ParamsRequest {
	model := ""
	if p.Model != 0 {
		model = p.Model.String()
	}
	return &ParamsRequest{
		Eps: p.Eps, K: p.K, Delta: p.Delta, MIS: p.MIS,
		Model: model, Seed: p.Seed, DetColoring: p.DeterministicColoring,
	}
}

// JobResponse is the wire form of a job snapshot.
type JobResponse struct {
	ID          string     `json:"id"`
	Algo        string     `json:"algo"`
	State       string     `json:"state"`
	TraceID     string     `json:"trace_id,omitempty"`
	CacheHit    bool       `json:"cache_hit"`
	Error       string     `json:"error,omitempty"`
	Result      *JobResult `json:"result,omitempty"`
	SubmittedAt time.Time  `json:"submitted_at"`
	StartedAt   *time.Time `json:"started_at,omitempty"`
	FinishedAt  *time.Time `json:"finished_at,omitempty"`
}

// JobResult is the wire form of a registry.Result.
type JobResult struct {
	Kind      string          `json:"kind"`
	Size      int             `json:"size"`
	Weight    int64           `json:"weight"`
	Uncovered int             `json:"uncovered,omitempty"`
	InSet     []bool          `json:"in_set,omitempty"`
	Edges     []int           `json:"edges,omitempty"`
	Cost      registry.Cost   `json:"cost"`
	Trace     *obs.RoundTrace `json:"trace,omitempty"`
}

// GraphRequest is the PUT /v1/graphs/{name} body: exactly one of Graph (the
// graph.Encode text format) and Gen must be set.
type GraphRequest struct {
	Graph string      `json:"graph,omitempty"`
	Gen   *GenRequest `json:"gen,omitempty"`
}

// GraphInfo is the wire form of a stored graph's metadata.
type GraphInfo struct {
	Name        string    `json:"name"`
	Fingerprint string    `json:"fingerprint"`
	Nodes       int       `json:"nodes"`
	Edges       int       `json:"edges"`
	Gen         string    `json:"gen,omitempty"`
	Pins        int       `json:"pins"`
	Shared      int       `json:"shared"`
	CreatedAt   time.Time `json:"created_at"`
	// Dedup is true on PUT responses whose content was already stored
	// (under this or another name).
	Dedup bool `json:"dedup,omitempty"`
}

// BatchRequest is the POST /v1/batches body: either explicit cells, or a
// grid of stored graphs × algorithms × parameter axes.
type BatchRequest struct {
	Graphs    []string    `json:"graphs,omitempty"`
	Algos     []string    `json:"algos,omitempty"`
	Eps       []float64   `json:"eps,omitempty"`
	K         []int       `json:"k,omitempty"`
	Delta     []float64   `json:"delta,omitempty"`
	MIS       []string    `json:"mis,omitempty"`
	Seeds     []uint64    `json:"seeds,omitempty"`
	Cells     []BatchCell `json:"cells,omitempty"`
	TimeoutMs int64       `json:"timeout_ms,omitempty"`
	// TraceID propagates an existing trace into the batch; cell i runs under
	// its child trace "<trace>.<i>". Empty means the engine mints one.
	TraceID string `json:"trace_id,omitempty"`
}

// TraceHeaderValue reports the trace ID Client.do should send as the
// TraceHeader header.
func (r BatchRequest) TraceHeaderValue() string { return r.TraceID }

// BatchCell is one explicit (stored graph, algorithm, params) cell.
type BatchCell struct {
	Graph  string         `json:"graph"`
	Algo   string         `json:"algo"`
	Params *ParamsRequest `json:"params,omitempty"`
}

// BatchResponse is the wire form of a batch snapshot. Cells and Groups are
// only present on single-batch GETs; Groups only once the batch is
// terminal.
type BatchResponse struct {
	ID         string          `json:"id"`
	State      string          `json:"state"`
	TraceID    string          `json:"trace_id,omitempty"`
	Total      int             `json:"total"`
	Submitted  int             `json:"submitted"`
	Done       int             `json:"done"`
	Failed     int             `json:"failed"`
	Canceled   int             `json:"canceled"`
	CacheHits  int             `json:"cache_hits"`
	CreatedAt  time.Time       `json:"created_at"`
	FinishedAt *time.Time      `json:"finished_at,omitempty"`
	Cells      []BatchCellView `json:"cells,omitempty"`
	Groups     []BatchGroup    `json:"groups,omitempty"`
}

// Terminal reports whether the batch snapshot is final.
func (b *BatchResponse) Terminal() bool {
	return service.BatchState(b.State).Terminal()
}

// BatchCellView is the wire form of one member run.
type BatchCellView struct {
	Index    int            `json:"index"`
	Graph    string         `json:"graph"`
	Algo     string         `json:"algo"`
	Params   *ParamsRequest `json:"params,omitempty"`
	JobID    string         `json:"job_id,omitempty"`
	TraceID  string         `json:"trace_id,omitempty"`
	State    string         `json:"state"`
	CacheHit bool           `json:"cache_hit,omitempty"`
	Error    string         `json:"error,omitempty"`
	Result   *JobResult     `json:"result,omitempty"`
}

// BatchGroup is the wire form of one aggregated grid cell: the done members
// sharing (graph, algo, params modulo seed), summarized.
type BatchGroup struct {
	Graph    string         `json:"graph"`
	Algo     string         `json:"algo"`
	Params   *ParamsRequest `json:"params,omitempty"`
	Runs     int            `json:"runs"`
	Done     int            `json:"done"`
	Failed   int            `json:"failed"`
	Rounds   stats.Summary  `json:"rounds"`
	Weight   stats.Summary  `json:"weight"`
	Size     stats.Summary  `json:"size"`
	Messages stats.Summary  `json:"messages"`
	// Trace sums the round traces of the group's done members; nil when no
	// member carried one (telemetry disabled).
	Trace *obs.RoundTrace `json:"trace,omitempty"`
}

// MetricsResponse merges the job-service and batch-engine counters into one
// /metrics document. The cluster coordinator decodes it from each worker's
// /metrics and sums the counters into its fleet view.
type MetricsResponse struct {
	service.Metrics
	service.BatchMetrics
}

// Backend is the graph-store + batch surface a handler serves. Two
// implementations exist: the single-node engine (engineBackend over a Store
// and a Batches) and the cluster coordinator (internal/cluster.Coordinator).
// Both are routed by registerBackendRoutes, so the two server modes cannot
// drift apart on the shared wire format.
type Backend interface {
	// PutGraph registers a graph under name; see store.Store.Put.
	PutGraph(name string, src store.Source) (store.Info, bool, error)
	// GetGraph, ListGraphs and DeleteGraph mirror store.Get/List/Delete.
	GetGraph(name string) (store.Info, bool)
	ListGraphs() []store.Info
	DeleteGraph(name string) error
	// SubmitBatch, GetBatch, WaitBatch, ListBatches and CancelBatch mirror
	// the service.Batches surface.
	SubmitBatch(spec service.BatchSpec) (service.BatchView, error)
	GetBatch(id string) (service.BatchView, bool)
	WaitBatch(id string, d time.Duration) (service.BatchView, bool)
	ListBatches() []service.BatchView
	CancelBatch(id string) (service.BatchView, error)
	// WaitCell long-polls one cell until it (or the whole batch) is
	// terminal or d elapses — the primitive behind the streaming endpoint.
	WaitCell(id string, index int, d time.Duration) (service.BatchCellView, bool)
}

// engineBackend adapts the single-node store + batch engine to Backend.
type engineBackend struct {
	st      *store.Store
	batches *service.Batches
}

func (e engineBackend) PutGraph(name string, src store.Source) (store.Info, bool, error) {
	return e.st.Put(name, src)
}
func (e engineBackend) GetGraph(name string) (store.Info, bool) { return e.st.Get(name) }
func (e engineBackend) ListGraphs() []store.Info                { return e.st.List() }
func (e engineBackend) DeleteGraph(name string) error           { return e.st.Delete(name) }
func (e engineBackend) SubmitBatch(spec service.BatchSpec) (service.BatchView, error) {
	return e.batches.Submit(spec)
}
func (e engineBackend) GetBatch(id string) (service.BatchView, bool) { return e.batches.Get(id) }
func (e engineBackend) WaitBatch(id string, d time.Duration) (service.BatchView, bool) {
	return e.batches.Wait(id, d)
}
func (e engineBackend) ListBatches() []service.BatchView { return e.batches.List() }
func (e engineBackend) CancelBatch(id string) (service.BatchView, error) {
	return e.batches.Cancel(id)
}
func (e engineBackend) WaitCell(id string, index int, d time.Duration) (service.BatchCellView, bool) {
	return e.batches.WaitCell(id, index, d)
}

// NewHandler wires the HTTP API around the job service, the graph store and
// the batch engine. It is a plain http.Handler so tests and in-process
// clients can drive it through httptest.
func NewHandler(svc *service.Service, st *store.Store, batches *service.Batches, opts ...HandlerOption) http.Handler {
	cfg := buildHandlerConfig(opts)
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
	})
	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, r *http.Request) {
		if wantsProm(r) {
			writePromEngine(w, svc.Metrics(), batches.Metrics(), svc.Telemetry(), st, batches)
			return
		}
		writeJSON(w, http.StatusOK, MetricsResponse{svc.Metrics(), batches.Metrics()})
	})
	mux.HandleFunc("GET /v1/algorithms", handleAlgorithms)

	mux.HandleFunc("POST /v1/jobs", func(w http.ResponseWriter, r *http.Request) {
		handleSubmit(cfg, svc, st, w, r)
	})
	mux.HandleFunc("GET /v1/jobs/{id}", func(w http.ResponseWriter, r *http.Request) {
		t := tenantFrom(r)
		v, ok := svc.Get(r.PathValue("id"))
		if !ok || (cfg.keyring != nil && v.Tenant != t.ID) {
			writeErr(w, http.StatusNotFound, "no such job")
			return
		}
		writeJSON(w, http.StatusOK, toJobResponse(v))
	})
	mux.HandleFunc("DELETE /v1/jobs/{id}", func(w http.ResponseWriter, r *http.Request) {
		t := tenantFrom(r)
		if cfg.keyring != nil {
			// Cross-tenant cancels 404 before touching the job, so DELETE
			// leaks no more than GET does.
			if v, ok := svc.Get(r.PathValue("id")); !ok || v.Tenant != t.ID {
				writeErr(w, http.StatusNotFound, "no such job")
				return
			}
		}
		v, err := svc.Cancel(r.PathValue("id"))
		switch {
		case errors.Is(err, service.ErrNotFound):
			writeErr(w, http.StatusNotFound, "no such job")
		case errors.Is(err, service.ErrFinished):
			writeErr(w, http.StatusConflict, "job already finished")
		case err != nil:
			writeErr(w, http.StatusInternalServerError, err.Error())
		default:
			writeJSON(w, http.StatusOK, toJobResponse(v))
		}
	})

	registerGroupRoutes(mux, cfg, svc, st)
	registerBackendRoutes(mux, cfg, engineBackend{st: st, batches: batches})
	return cfg.tenantMiddleware(limitBody(mux, cfg.maxBody))
}

// registerBackendRoutes mounts the graph-store and batch routes over a
// Backend — the one wire surface shared verbatim by the single-node handler
// and the cluster coordinator handler.
func registerBackendRoutes(mux *http.ServeMux, cfg *handlerConfig, b Backend) {
	mux.HandleFunc("PUT /v1/graphs/{name}", func(w http.ResponseWriter, r *http.Request) {
		handlePutGraph(cfg, b, w, r)
	})
	mux.HandleFunc("GET /v1/graphs", func(w http.ResponseWriter, r *http.Request) {
		t := tenantFrom(r)
		infos := b.ListGraphs()
		out := struct {
			Graphs []GraphInfo `json:"graphs"`
		}{Graphs: make([]GraphInfo, 0, len(infos))}
		for _, info := range infos {
			if cfg.scoped(t) && !strings.HasPrefix(info.Name, t.ID+"/") {
				continue
			}
			gi := toGraphInfo(info, false)
			gi.Name = cfg.unscopeGraph(t, gi.Name)
			out.Graphs = append(out.Graphs, gi)
		}
		writeJSON(w, http.StatusOK, out)
	})
	mux.HandleFunc("GET /v1/graphs/{name}", func(w http.ResponseWriter, r *http.Request) {
		t := tenantFrom(r)
		info, ok := b.GetGraph(cfg.scopeGraph(t, r.PathValue("name")))
		if !ok {
			writeErr(w, http.StatusNotFound, "no such graph")
			return
		}
		gi := toGraphInfo(info, false)
		gi.Name = cfg.unscopeGraph(t, gi.Name)
		writeJSON(w, http.StatusOK, gi)
	})
	mux.HandleFunc("DELETE /v1/graphs/{name}", func(w http.ResponseWriter, r *http.Request) {
		t := tenantFrom(r)
		err := b.DeleteGraph(cfg.scopeGraph(t, r.PathValue("name")))
		switch {
		case errors.Is(err, store.ErrNotFound):
			writeErr(w, http.StatusNotFound, "no such graph")
		case errors.Is(err, store.ErrPinned):
			writeErr(w, http.StatusConflict, err.Error())
		case err != nil:
			writeErr(w, http.StatusInternalServerError, err.Error())
		default:
			w.WriteHeader(http.StatusNoContent)
		}
	})

	mux.HandleFunc("POST /v1/batches", func(w http.ResponseWriter, r *http.Request) {
		handleSubmitBatch(cfg, b, w, r)
	})
	mux.HandleFunc("GET /v1/batches", func(w http.ResponseWriter, r *http.Request) {
		t := tenantFrom(r)
		views := b.ListBatches()
		out := struct {
			Batches []BatchResponse `json:"batches"`
		}{Batches: make([]BatchResponse, 0, len(views))}
		for _, v := range views {
			if !cfg.ownsBatch(t, v) {
				continue
			}
			out.Batches = append(out.Batches, toBatchResponse(v, false))
		}
		writeJSON(w, http.StatusOK, out)
	})
	mux.HandleFunc("GET /v1/batches/{id}", func(w http.ResponseWriter, r *http.Request) {
		t := tenantFrom(r)
		id := r.PathValue("id")
		wait, err := parseWait(r.URL.Query().Get("wait"))
		if err != nil {
			writeErr(w, http.StatusBadRequest, err.Error())
			return
		}
		if cfg.keyring != nil {
			if v, ok := b.GetBatch(id); !ok || !cfg.ownsBatch(t, v) {
				writeErr(w, http.StatusNotFound, "no such batch")
				return
			}
		}
		// The waiter gate bounds parked long-polls per tenant: over the
		// bound the request degrades to an immediate snapshot with
		// Retry-After, so a waiter flood costs fast polls, not goroutines.
		if wait > 0 {
			if cfg.waiters.acquire(t) {
				defer cfg.waiters.release(t)
			} else {
				wait = 0
				w.Header().Set("Retry-After", "1")
			}
		}
		v, ok := b.WaitBatch(id, wait)
		if !ok {
			writeErr(w, http.StatusNotFound, "no such batch")
			return
		}
		out := toBatchResponse(v, true)
		cfg.stripBatchTenant(t, &out)
		writeJSON(w, http.StatusOK, out)
	})
	mux.HandleFunc("GET /v1/batches/{id}/stream", func(w http.ResponseWriter, r *http.Request) {
		handleStreamBatch(cfg, b, w, r)
	})
	mux.HandleFunc("DELETE /v1/batches/{id}", func(w http.ResponseWriter, r *http.Request) {
		t := tenantFrom(r)
		if cfg.keyring != nil {
			if v, ok := b.GetBatch(r.PathValue("id")); !ok || !cfg.ownsBatch(t, v) {
				writeErr(w, http.StatusNotFound, "no such batch")
				return
			}
		}
		v, err := b.CancelBatch(r.PathValue("id"))
		switch {
		case errors.Is(err, service.ErrBatchNotFound):
			writeErr(w, http.StatusNotFound, "no such batch")
		case errors.Is(err, service.ErrBatchFinished):
			writeErr(w, http.StatusConflict, "batch already finished")
		case err != nil:
			writeErr(w, http.StatusInternalServerError, err.Error())
		default:
			out := toBatchResponse(v, true)
			cfg.stripBatchTenant(t, &out)
			writeJSON(w, http.StatusOK, out)
		}
	})
}

// parseWait parses the ?wait= long-poll duration, capped at maxWait.
func parseWait(s string) (time.Duration, error) {
	if s == "" {
		return 0, nil
	}
	d, err := time.ParseDuration(s)
	if err != nil {
		return 0, fmt.Errorf("bad wait %q: %v", s, err)
	}
	if d < 0 {
		return 0, fmt.Errorf("bad wait %q: must be non-negative", s)
	}
	return min(d, maxWait), nil
}

func handleAlgorithms(w http.ResponseWriter, r *http.Request) {
	type algoJSON struct {
		Name    string   `json:"name"`
		Kind    string   `json:"kind"`
		Summary string   `json:"summary"`
		Params  []string `json:"params"`
	}
	type genJSON struct {
		Name    string   `json:"name"`
		Summary string   `json:"summary"`
		Params  []string `json:"params"`
	}
	var out struct {
		Algorithms []algoJSON `json:"algorithms"`
		Generators []genJSON  `json:"generators"`
	}
	for _, s := range registry.All() {
		out.Algorithms = append(out.Algorithms, algoJSON{s.Name, s.Kind.String(), s.Summary, s.Params})
	}
	for _, s := range registry.Generators() {
		out.Generators = append(out.Generators, genJSON{s.Name, s.Summary, s.Params})
	}
	writeJSON(w, http.StatusOK, out)
}

func handleSubmit(cfg *handlerConfig, svc *service.Service, st *store.Store, w http.ResponseWriter, r *http.Request) {
	t := tenantFrom(r)
	var req SubmitRequest
	if !decodeBody(w, r, &req) {
		return
	}
	if req.Algo == "" {
		writeErr(w, http.StatusBadRequest, "missing algo (see GET /v1/algorithms)")
		return
	}

	name := req.GraphName
	if name != "" {
		name = cfg.scopeGraph(t, name)
	}
	g, release, err := resolveGraph(st, req.Graph, name, req.Gen)
	if err != nil {
		code := http.StatusBadRequest
		if errors.Is(err, store.ErrNotFound) {
			code = http.StatusNotFound
		}
		writeErr(w, code, err.Error())
		return
	}
	// A single job may finish long after this handler returns; the stored
	// graph stays pinned only for the duration of the submission. The job
	// holds its own reference to the immutable graph, so eviction of the
	// name cannot invalidate a running job.
	defer release()

	params, err := req.Params.params()
	if err != nil {
		writeErr(w, http.StatusBadRequest, err.Error())
		return
	}

	trace := req.TraceID
	if trace == "" {
		trace = r.Header.Get(TraceHeader)
	}
	v, err := svc.Submit(service.Request{
		Algo:    req.Algo,
		Graph:   g,
		Params:  params,
		Timeout: time.Duration(req.TimeoutMs) * time.Millisecond,
		TraceID: trace,
		Tenant:  t.ID,
	})
	switch {
	case errors.Is(err, service.ErrQueueFull):
		// The code lets clients (the cluster coordinator) distinguish queue
		// saturation — retryable on this server — from other 5xx without
		// parsing the message text. With a keyring the bound is the
		// tenant's own fair-queue slice, so one tenant's saturation never
		// 503s another.
		writeErrCode(w, http.StatusServiceUnavailable, CodeQueueFull, err.Error())
	case errors.Is(err, service.ErrDraining):
		writeErrCode(w, http.StatusServiceUnavailable, CodeDraining, err.Error())
	case errors.Is(err, service.ErrClosed):
		writeErr(w, http.StatusServiceUnavailable, err.Error())
	case err != nil:
		writeErr(w, http.StatusBadRequest, err.Error())
	default:
		w.Header().Set(TraceHeader, v.TraceID)
		writeJSON(w, http.StatusAccepted, toJobResponse(v))
	}
}

// streamReadOptions are the ingestion bounds every streamed graph upload
// shares: the registry's untrusted-input caps, plus the cleanup steps
// (self-loop and duplicate tolerance) that real-world edge dumps need.
var streamReadOptions = graph.ReadOptions{
	MaxNodes:      registry.MaxGraphNodes,
	MaxEdges:      registry.MaxGraphEdges,
	SkipSelfLoops: true,
	DedupEdges:    true,
}

func handlePutGraph(cfg *handlerConfig, b Backend, w http.ResponseWriter, r *http.Request) {
	t := tenantFrom(r)
	// "/" is the store's internal namespace separator (tenant scoping);
	// user-supplied names never contain it, keyed mode or not.
	if strings.Contains(r.PathValue("name"), "/") {
		writeErr(w, http.StatusBadRequest, "graph name may only contain [A-Za-z0-9._-]")
		return
	}
	var src store.Source
	ctype := r.Header.Get("Content-Type")
	// The non-JSON uploads all stream: the body decodes through a fixed
	// I/O buffer straight into a Builder (size caps enforced against the
	// declared header or during the scan), so a large upload costs the
	// graph, never body + graph. limitBody has already capped raw size.
	switch {
	case strings.Contains(ctype, GraphBinaryContentType):
		g, err := graph.DecodeBinaryStream(r.Body, registry.MaxGraphNodes, registry.MaxGraphEdges)
		if err != nil {
			writeBodyErr(w, err, "malformed graph")
			return
		}
		src = store.Source{Graph: g}
	case strings.Contains(ctype, GraphEdgeListContentType):
		g, err := graph.ReadEdgeList(r.Body, streamReadOptions)
		if err != nil {
			writeBodyErr(w, err, "malformed edge list")
			return
		}
		src = store.Source{Graph: g}
	case strings.Contains(ctype, GraphMatrixMarketContentType):
		g, err := graph.ReadMatrixMarket(r.Body, streamReadOptions)
		if err != nil {
			writeBodyErr(w, err, "malformed matrix market file")
			return
		}
		src = store.Source{Graph: g}
	default:
		var req GraphRequest
		if !decodeBody(w, r, &req) {
			return
		}
		var err error
		if src, err = toSource(req.Graph, req.Gen); err != nil {
			writeErr(w, http.StatusBadRequest, err.Error())
			return
		}
	}
	info, dedup, err := b.PutGraph(cfg.scopeGraph(t, r.PathValue("name")), src)
	switch {
	case errors.Is(err, store.ErrExists):
		writeErr(w, http.StatusConflict, err.Error())
	case errors.Is(err, store.ErrFull):
		writeErr(w, http.StatusInsufficientStorage, err.Error())
	case err != nil:
		writeErr(w, http.StatusBadRequest, err.Error())
	default:
		code := http.StatusCreated
		if dedup {
			code = http.StatusOK
		}
		gi := toGraphInfo(info, dedup)
		gi.Name = cfg.unscopeGraph(t, gi.Name)
		writeJSON(w, code, gi)
	}
}

func handleSubmitBatch(cfg *handlerConfig, b Backend, w http.ResponseWriter, r *http.Request) {
	t := tenantFrom(r)
	var req BatchRequest
	if !decodeBody(w, r, &req) {
		return
	}
	trace := req.TraceID
	if trace == "" {
		trace = r.Header.Get(TraceHeader)
	}
	graphs := req.Graphs
	if cfg.scoped(t) {
		graphs = make([]string, len(req.Graphs))
		for i, g := range req.Graphs {
			graphs[i] = cfg.scopeGraph(t, g)
		}
	}
	spec := service.BatchSpec{
		Graphs:  graphs,
		Algos:   req.Algos,
		Eps:     req.Eps,
		K:       req.K,
		Delta:   req.Delta,
		MIS:     req.MIS,
		Seeds:   req.Seeds,
		Timeout: time.Duration(req.TimeoutMs) * time.Millisecond,
		TraceID: trace,
		Tenant:  t.ID,
	}
	for i, c := range req.Cells {
		params, err := c.Params.params()
		if err != nil {
			writeErr(w, http.StatusBadRequest, fmt.Sprintf("cell %d: %v", i, err))
			return
		}
		spec.Cells = append(spec.Cells, service.BatchCell{
			Graph: cfg.scopeGraph(t, c.Graph), Algo: c.Algo, Params: params})
	}
	v, err := b.SubmitBatch(spec)
	switch {
	case errors.Is(err, store.ErrNotFound):
		writeErr(w, http.StatusNotFound, err.Error())
	case errors.Is(err, service.ErrDraining):
		writeErrCode(w, http.StatusServiceUnavailable, CodeDraining, err.Error())
	case err != nil:
		writeErr(w, http.StatusBadRequest, err.Error())
	default:
		w.Header().Set(TraceHeader, v.TraceID)
		out := toBatchResponse(v, true)
		cfg.stripBatchTenant(t, &out)
		writeJSON(w, http.StatusAccepted, out)
	}
}

// decodeInlineGraph validates and decodes an inline text graph — the one
// path every inline submission (job or store upload) goes through.
func decodeInlineGraph(text string) (*graph.Graph, error) {
	if err := checkGraphHeader(text); err != nil {
		return nil, err
	}
	g, err := graph.Decode(strings.NewReader(text))
	if err != nil {
		return nil, fmt.Errorf("malformed graph: %v", err)
	}
	return g, nil
}

// toSource validates and converts an upload body to a store source.
func toSource(text string, gen *GenRequest) (store.Source, error) {
	switch {
	case text != "" && gen != nil:
		return store.Source{}, errors.New("set exactly one of graph and gen, not both")
	case text != "":
		g, err := decodeInlineGraph(text)
		if err != nil {
			return store.Source{}, err
		}
		return store.Source{Graph: g}, nil
	case gen != nil:
		return store.Source{Gen: gen.Gen, GenParams: gen.genParams()}, nil
	default:
		return store.Source{}, errors.New("missing graph: set graph (text format) or gen (generator spec)")
	}
}

// resolveGraph produces the input graph of a job submission from exactly one
// of: an inline text graph, a stored graph name, or a generator spec. The
// release function is a no-op except for stored graphs, which stay pinned
// until it runs.
func resolveGraph(st *store.Store, text, name string, gen *GenRequest) (*graph.Graph, func(), error) {
	nop := func() {}
	set := 0
	for _, ok := range []bool{text != "", name != "", gen != nil} {
		if ok {
			set++
		}
	}
	if set > 1 {
		return nil, nop, errors.New("set exactly one of graph, graph_name and gen")
	}
	switch {
	case name != "":
		return st.Acquire(name)
	case text != "":
		g, err := decodeInlineGraph(text)
		if err != nil {
			return nil, nop, err
		}
		return g, nop, nil
	case gen != nil:
		spec, ok := registry.GetGenerator(gen.Gen)
		if !ok {
			return nil, nop, fmt.Errorf("unknown generator %q (have: %s)",
				gen.Gen, strings.Join(registry.GeneratorNames(), ", "))
		}
		g, err := spec.Build(gen.genParams())
		if err != nil {
			return nil, nop, err
		}
		return g, nop, nil
	default:
		return nil, nop, errors.New("missing graph: set graph (text format), graph_name (stored) or gen (generator spec)")
	}
}

// checkGraphHeader bounds the declared sizes of an inline graph before
// graph.Decode allocates for them: the n/m header is attacker-controlled,
// and Decode trusts it. Lines that don't parse are left for Decode to
// reject with its own error.
func checkGraphHeader(text string) error {
	for _, line := range strings.Split(text, "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		var n, m int
		if _, err := fmt.Sscanf(line, "%d %d", &n, &m); err != nil {
			return nil
		}
		if n > registry.MaxGraphNodes {
			return fmt.Errorf("graph declares %d nodes, cap %d", n, registry.MaxGraphNodes)
		}
		if m > registry.MaxGraphEdges {
			return fmt.Errorf("graph declares %d edges, cap %d", m, registry.MaxGraphEdges)
		}
		return nil
	}
	return nil
}

// bodyTooLarge reports whether err is the limitBody cap firing. The typed
// *http.MaxBytesError is the contract; the string fallback covers decoders
// that flatten the cause into their own error text (fmt.Errorf("...: %v")).
func bodyTooLarge(err error) bool {
	var mbe *http.MaxBytesError
	if errors.As(err, &mbe) {
		return true
	}
	return err != nil && strings.Contains(err.Error(), "request body too large")
}

// writeBodyErr writes the error for a failed body decode: a machine-readable
// 413 when the size cap fired — deterministic for the payload, so clients
// must not retry and the cluster coordinator fails the cell rather than the
// worker — and a 400 otherwise.
func writeBodyErr(w http.ResponseWriter, err error, what string) {
	if bodyTooLarge(err) {
		writeErrCode(w, http.StatusRequestEntityTooLarge, CodeBodyTooLarge,
			"request body exceeds the server's size limit")
		return
	}
	writeErr(w, http.StatusBadRequest, what+": "+err.Error())
}

// decodeBody decodes a JSON request body, writing the error response itself
// when it reports false. The body arrives pre-capped by the limitBody
// middleware both handler constructors install; overruns surface as 413, not
// 400, so clients can tell a permanent payload problem from a malformed one.
func decodeBody(w http.ResponseWriter, r *http.Request, dst any) bool {
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(dst); err != nil {
		writeBodyErr(w, err, "bad request body")
		return false
	}
	return true
}

func toJobResponse(v service.JobView) JobResponse {
	out := JobResponse{
		ID:          v.ID,
		Algo:        v.Algo,
		State:       string(v.State),
		TraceID:     v.TraceID,
		CacheHit:    v.CacheHit,
		Error:       v.Error,
		SubmittedAt: v.SubmittedAt,
	}
	if !v.StartedAt.IsZero() {
		t := v.StartedAt
		out.StartedAt = &t
	}
	if !v.FinishedAt.IsZero() {
		t := v.FinishedAt
		out.FinishedAt = &t
	}
	out.Result = toJobResult(v.Result)
	return out
}

func toJobResult(res *registry.Result) *JobResult {
	if res == nil {
		return nil
	}
	return &JobResult{
		Kind:      res.Kind.String(),
		Size:      res.Size(),
		Weight:    res.Weight,
		Uncovered: res.Uncovered,
		InSet:     res.InSet,
		Edges:     res.Edges,
		Cost:      res.Cost,
		Trace:     res.Trace,
	}
}

func toGraphInfo(info store.Info, dedup bool) GraphInfo {
	return GraphInfo{
		Name:        info.Name,
		Fingerprint: info.Fingerprint,
		Nodes:       info.Nodes,
		Edges:       info.Edges,
		Gen:         info.Gen,
		Pins:        info.Pins,
		Shared:      info.Shared,
		CreatedAt:   info.CreatedAt,
		Dedup:       dedup,
	}
}

func toBatchResponse(v service.BatchView, detail bool) BatchResponse {
	out := BatchResponse{
		ID:        v.ID,
		State:     string(v.State),
		TraceID:   v.TraceID,
		Total:     v.Total,
		Submitted: v.Submitted,
		Done:      v.Done,
		Failed:    v.Failed,
		Canceled:  v.Canceled,
		CacheHits: v.CacheHits,
		CreatedAt: v.CreatedAt,
	}
	if !v.FinishedAt.IsZero() {
		t := v.FinishedAt
		out.FinishedAt = &t
	}
	if !detail {
		return out
	}
	for _, c := range v.Cells {
		out.Cells = append(out.Cells, BatchCellView{
			Index:    c.Index,
			Graph:    c.Graph,
			Algo:     c.Algo,
			Params:   ParamsWire(c.Params),
			JobID:    c.JobID,
			TraceID:  c.TraceID,
			State:    string(c.State),
			CacheHit: c.CacheHit,
			Error:    c.Error,
			Result:   toJobResult(c.Result),
		})
	}
	for _, g := range v.Groups {
		out.Groups = append(out.Groups, BatchGroup{
			Graph:    g.Graph,
			Algo:     g.Algo,
			Params:   ParamsWire(g.Params),
			Runs:     g.Runs,
			Done:     g.Done,
			Failed:   g.Failed,
			Rounds:   g.Rounds,
			Weight:   g.Weight,
			Size:     g.Size,
			Messages: g.Messages,
			Trace:    g.Trace,
		})
	}
	return out
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	// Pre-encode to a buffer so an encoding failure surfaces as a clean 500
	// instead of a 200 status line followed by a torn body: WriteHeader is
	// only called once the full payload exists. Streaming responses (SSE,
	// binary chunks) bypass writeJSON by design — they commit to the status
	// before the payload is known.
	var buf bytes.Buffer
	if err := json.NewEncoder(&buf).Encode(v); err != nil {
		log.Printf("httpapi: encoding response: %v", err)
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusInternalServerError)
		_, _ = w.Write([]byte(`{"error":"internal: response encoding failed"}` + "\n"))
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	if _, err := w.Write(buf.Bytes()); err != nil {
		log.Printf("httpapi: writing response: %v", err)
	}
}

// CodeQueueFull marks a 503 caused by job-queue saturation: the one 5xx a
// client should retry against the same server instead of failing it over.
const CodeQueueFull = "queue_full"

func writeErr(w http.ResponseWriter, code int, msg string) {
	writeJSON(w, code, map[string]string{"error": msg})
}

// writeErrCode writes an error envelope with a machine-readable code beside
// the human-readable message.
func writeErrCode(w http.ResponseWriter, status int, errCode, msg string) {
	writeJSON(w, status, map[string]string{"error": msg, "code": errCode})
}
