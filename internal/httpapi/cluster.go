package httpapi

import (
	"net/http"

	"repro/internal/registry"
)

// This file is the HTTP surface of the cluster coordinator
// (internal/cluster). The coordinator serves the same /v1/graphs and
// /v1/batches wire format as a single-node reprod — clients such as
// cmd/sweep -server cannot tell the difference — plus GET /v1/cluster, the
// health/placement view. The handler lives here (not in internal/cluster) so
// httpapi keeps its contract of owning every wire type; the coordinator
// plugs in through the ClusterBackend interface, which keeps the import
// direction cluster → httpapi (the coordinator dials workers through Client).

// ClusterBackend is the engine behind a coordinator-mode server;
// internal/cluster.Coordinator implements it: the shared graph/batch
// Backend surface plus the cluster-only health/placement and merged-metrics
// views.
type ClusterBackend interface {
	Backend
	// View reports worker health and graph placement.
	View() ClusterView
	// Metrics merges coordinator counters with the fleet's summed counters.
	Metrics() ClusterMetrics
}

// ClusterWorker is the health/usage snapshot of one worker in the
// GET /v1/cluster response.
type ClusterWorker struct {
	URL     string `json:"url"`
	Healthy bool   `json:"healthy"`
	// Graphs counts names this coordinator has uploaded to the worker.
	Graphs int `json:"graphs"`
	// InFlight counts cells currently dispatched to the worker.
	InFlight int `json:"in_flight"`
	// QueueDepth counts dispatch attempts waiting behind the worker's
	// in-flight window.
	QueueDepth int `json:"queue_depth"`
	// Dispatched and Failures count cell dispatches and observed worker
	// failures over the coordinator's lifetime; LastError is the most
	// recent failure observed against the worker.
	Dispatched uint64 `json:"dispatched"`
	Failures   uint64 `json:"failures"`
	LastError  string `json:"last_error,omitempty"`
}

// ClusterPlacement maps one stored graph to the worker that owns it on the
// consistent-hash ring ("" when no worker is healthy).
type ClusterPlacement struct {
	Graph       string `json:"graph"`
	Fingerprint string `json:"fingerprint"`
	Worker      string `json:"worker"`
}

// ClusterView is the GET /v1/cluster response.
type ClusterView struct {
	Workers    []ClusterWorker    `json:"workers"`
	Placements []ClusterPlacement `json:"placements"`
}

// ClusterMetrics is the coordinator-mode /metrics document: coordinator
// counters plus the summed counters of every reachable worker. Fleet rates
// are recomputed from the summed counters; fleet latency percentiles are the
// per-worker maxima (summing percentiles is meaningless).
type ClusterMetrics struct {
	WorkersTotal     int    `json:"workers_total"`
	WorkersHealthy   int    `json:"workers_healthy"`
	BatchesSubmitted uint64 `json:"batches_submitted"`
	BatchesDone      uint64 `json:"batches_done"`
	BatchesCanceled  uint64 `json:"batches_canceled"`
	BatchCells       uint64 `json:"batch_cells"`
	CellsDispatched  uint64 `json:"cells_dispatched"`
	CellRetries      uint64 `json:"cell_retries"`
	WorkerFailures   uint64 `json:"worker_failures"`
	// GroupsDispatched counts job-group dispatches (hedges and retries
	// included); HedgesFired/Won/Wasted account for speculative re-dispatch:
	// fired when a straggling group was hedged, won when the hedge produced
	// the winning result, wasted when the primary still won.
	GroupsDispatched uint64 `json:"groups_dispatched"`
	HedgesFired      uint64 `json:"hedges_fired"`
	HedgesWon        uint64 `json:"hedges_won"`
	HedgesWasted     uint64 `json:"hedges_wasted"`
	// WireBytesTotal counts body bytes shipped to and from workers over the
	// binary codecs (graph uploads and group poll responses).
	WireBytesTotal uint64 `json:"wire_bytes_total"`
	// Fleet sums the /metrics counters of every worker that answered.
	Fleet MetricsResponse `json:"fleet"`
}

// ToResult rebuilds the registry result a worker serialized — the inverse of
// the JobResult conversion the worker's handler applied. Size is derived, so
// only the stored fields round-trip.
func (r *JobResult) ToResult() (*registry.Result, error) {
	if r == nil {
		return nil, nil
	}
	kind, err := registry.ParseKind(r.Kind)
	if err != nil {
		return nil, err
	}
	return &registry.Result{
		Kind:      kind,
		InSet:     r.InSet,
		Edges:     r.Edges,
		Weight:    r.Weight,
		Uncovered: r.Uncovered,
		Cost:      r.Cost,
		Trace:     r.Trace,
	}, nil
}

// NewClusterHandler wires the coordinator-mode HTTP API around a
// ClusterBackend. Single-job endpoints are not served in coordinator mode
// (submit a one-cell batch instead); everything else matches NewHandler's
// wire format exactly.
func NewClusterHandler(b ClusterBackend, opts ...HandlerOption) http.Handler {
	cfg := buildHandlerConfig(opts)
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
	})
	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, r *http.Request) {
		if wantsProm(r) {
			writePromCluster(w, b.Metrics(), b.View())
			return
		}
		writeJSON(w, http.StatusOK, b.Metrics())
	})
	mux.HandleFunc("GET /v1/algorithms", handleAlgorithms)
	mux.HandleFunc("GET /v1/cluster", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, b.View())
	})

	unsupported := func(w http.ResponseWriter, r *http.Request) {
		writeErr(w, http.StatusNotImplemented,
			"single-job endpoints are not served in coordinator mode; submit a one-cell batch")
	}
	mux.HandleFunc("POST /v1/jobs", unsupported)
	mux.HandleFunc("GET /v1/jobs/{id}", unsupported)
	mux.HandleFunc("DELETE /v1/jobs/{id}", unsupported)

	registerBackendRoutes(mux, cfg, b)
	return cfg.tenantMiddleware(limitBody(mux, cfg.maxBody))
}
