package httpapi

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strings"
	"time"
)

// Client is a typed client for the httpapi surface. cmd/sweep and
// examples/batchsweep use it against either a remote server or an
// in-process httptest server, so every consumer exercises the same wire
// format the service serves. The zero Client is not usable; construct with
// NewClient. A Client is safe for concurrent use.
//
// Every method takes a context as its first argument and abandons the HTTP
// round trip when it is canceled — the cluster coordinator relies on this to
// cut losing hedge attempts loose promptly.
type Client struct {
	base   string
	hc     *http.Client
	apiKey string
}

// NewClient returns a client for the API rooted at base (e.g.
// "http://localhost:8080"). hc may be nil for http.DefaultClient.
func NewClient(base string, hc *http.Client) *Client {
	if hc == nil {
		hc = http.DefaultClient
	}
	return &Client{base: base, hc: hc}
}

// WithAPIKey returns a copy of the client that sends key with every request
// (multi-tenant servers; see WithKeyring). An empty key returns the
// receiver unchanged.
func (c *Client) WithAPIKey(key string) *Client {
	if key == "" {
		return c
	}
	cp := *c
	cp.apiKey = key
	return &cp
}

// auth stamps the client's API key onto req; a no-op without one.
func (c *Client) auth(req *http.Request) {
	if c.apiKey != "" {
		req.Header.Set(APIKeyHeader, c.apiKey)
	}
}

// APIError is a non-2xx response decoded from the server's error envelope.
// Code carries the machine-readable error code when the server set one
// (e.g. CodeQueueFull on a saturation 503).
type APIError struct {
	Status  int
	Code    string
	Message string
}

func (e *APIError) Error() string {
	return fmt.Sprintf("httpapi: %d: %s", e.Status, e.Message)
}

// do round-trips one JSON request. A nil out discards the response body.
func (c *Client) do(ctx context.Context, method, path string, in, out any) error {
	var body io.Reader
	if in != nil {
		buf, err := json.Marshal(in)
		if err != nil {
			return err
		}
		body = bytes.NewReader(buf)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.base+path, body)
	if err != nil {
		return err
	}
	if in != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	// Requests that carry a trace ID (job and batch submissions) also send it
	// as the TraceHeader header, so access logs and proxies see the trace
	// without parsing bodies.
	if t, ok := in.(interface{ TraceHeaderValue() string }); ok {
		if id := t.TraceHeaderValue(); id != "" {
			req.Header.Set(TraceHeader, id)
		}
	}
	c.auth(req)
	resp, err := c.hc.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode < 200 || resp.StatusCode > 299 {
		var env struct {
			Error string `json:"error"`
			Code  string `json:"code"`
		}
		_ = json.NewDecoder(resp.Body).Decode(&env)
		return &APIError{Status: resp.StatusCode, Code: env.Code, Message: env.Error}
	}
	if out == nil {
		return nil
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

// PutGraph registers a graph in the graph.Encode text format under name.
func (c *Client) PutGraph(ctx context.Context, name, text string) (GraphInfo, error) {
	var out GraphInfo
	err := c.do(ctx, http.MethodPut, "/v1/graphs/"+url.PathEscape(name), GraphRequest{Graph: text}, &out)
	return out, err
}

// PutGraphBinary registers a graph from its graph.EncodeBinary stream under
// name, sending the bytes raw under the binary graph content type. It
// returns how many body bytes went on the wire beside the stored metadata.
func (c *Client) PutGraphBinary(ctx context.Context, name string, data []byte) (GraphInfo, int, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodPut,
		c.base+"/v1/graphs/"+url.PathEscape(name), bytes.NewReader(data))
	if err != nil {
		return GraphInfo{}, 0, err
	}
	req.Header.Set("Content-Type", GraphBinaryContentType)
	c.auth(req)
	resp, err := c.hc.Do(req)
	if err != nil {
		return GraphInfo{}, 0, err
	}
	defer resp.Body.Close()
	if resp.StatusCode < 200 || resp.StatusCode > 299 {
		var env struct {
			Error string `json:"error"`
			Code  string `json:"code"`
		}
		_ = json.NewDecoder(resp.Body).Decode(&env)
		return GraphInfo{}, 0, &APIError{Status: resp.StatusCode, Code: env.Code, Message: env.Error}
	}
	var out GraphInfo
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return GraphInfo{}, 0, err
	}
	return out, len(data), nil
}

// PutGraphGen registers a generated graph under name.
func (c *Client) PutGraphGen(ctx context.Context, name string, gen GenRequest) (GraphInfo, error) {
	var out GraphInfo
	err := c.do(ctx, http.MethodPut, "/v1/graphs/"+url.PathEscape(name), GraphRequest{Gen: &gen}, &out)
	return out, err
}

// GetGraph fetches a stored graph's metadata.
func (c *Client) GetGraph(ctx context.Context, name string) (GraphInfo, error) {
	var out GraphInfo
	err := c.do(ctx, http.MethodGet, "/v1/graphs/"+url.PathEscape(name), nil, &out)
	return out, err
}

// ListGraphs lists every stored graph.
func (c *Client) ListGraphs(ctx context.Context) ([]GraphInfo, error) {
	var out struct {
		Graphs []GraphInfo `json:"graphs"`
	}
	err := c.do(ctx, http.MethodGet, "/v1/graphs", nil, &out)
	return out.Graphs, err
}

// DeleteGraph removes a stored graph; pinned graphs refuse with a 409
// APIError.
func (c *Client) DeleteGraph(ctx context.Context, name string) error {
	return c.do(ctx, http.MethodDelete, "/v1/graphs/"+url.PathEscape(name), nil, nil)
}

// Health probes GET /healthz.
func (c *Client) Health(ctx context.Context) error {
	return c.do(ctx, http.MethodGet, "/healthz", nil, nil)
}

// Metrics fetches the merged service and batch counters.
func (c *Client) Metrics(ctx context.Context) (MetricsResponse, error) {
	var out MetricsResponse
	err := c.do(ctx, http.MethodGet, "/metrics", nil, &out)
	return out, err
}

// PromMetrics fetches /metrics in the Prometheus text exposition format by
// negotiating text/plain. It works against both server modes.
func (c *Client) PromMetrics(ctx context.Context) (string, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/metrics", nil)
	if err != nil {
		return "", err
	}
	req.Header.Set("Accept", "text/plain")
	c.auth(req)
	resp, err := c.hc.Do(req)
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return "", err
	}
	if resp.StatusCode != http.StatusOK {
		return "", &APIError{Status: resp.StatusCode, Message: string(body)}
	}
	return string(body), nil
}

// GetCluster fetches the coordinator's health/placement view. Only
// coordinator-mode servers (cmd/reprod -workers) serve it.
func (c *Client) GetCluster(ctx context.Context) (ClusterView, error) {
	var out ClusterView
	err := c.do(ctx, http.MethodGet, "/v1/cluster", nil, &out)
	return out, err
}

// ClusterMetrics fetches the coordinator-mode /metrics document (coordinator
// counters plus summed fleet counters).
func (c *Client) ClusterMetrics(ctx context.Context) (ClusterMetrics, error) {
	var out ClusterMetrics
	err := c.do(ctx, http.MethodGet, "/metrics", nil, &out)
	return out, err
}

// SubmitJob submits one job.
func (c *Client) SubmitJob(ctx context.Context, req SubmitRequest) (JobResponse, error) {
	var out JobResponse
	err := c.do(ctx, http.MethodPost, "/v1/jobs", req, &out)
	return out, err
}

// GetJob polls one job.
func (c *Client) GetJob(ctx context.Context, id string) (JobResponse, error) {
	var out JobResponse
	err := c.do(ctx, http.MethodGet, "/v1/jobs/"+url.PathEscape(id), nil, &out)
	return out, err
}

// CancelJob cancels a queued or running job.
func (c *Client) CancelJob(ctx context.Context, id string) (JobResponse, error) {
	var out JobResponse
	err := c.do(ctx, http.MethodDelete, "/v1/jobs/"+url.PathEscape(id), nil, &out)
	return out, err
}

// SubmitJobGroup submits one job group (N seeds of one algorithm against a
// stored graph).
func (c *Client) SubmitJobGroup(ctx context.Context, req JobGroupRequest) (JobGroupResponse, error) {
	var out JobGroupResponse
	err := c.do(ctx, http.MethodPost, "/v1/jobgroups", req, &out)
	return out, err
}

// GetJobGroup polls one job group. It asks for the compact binary rendering
// and falls back to JSON by the response's Content-Type, so it works against
// both current and older servers; WireBytes reports the body size either
// way.
func (c *Client) GetJobGroup(ctx context.Context, id string) (JobGroupResponse, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet,
		c.base+"/v1/jobgroups/"+url.PathEscape(id), nil)
	if err != nil {
		return JobGroupResponse{}, err
	}
	req.Header.Set("Accept", GroupBinaryContentType+", application/json")
	c.auth(req)
	resp, err := c.hc.Do(req)
	if err != nil {
		return JobGroupResponse{}, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return JobGroupResponse{}, err
	}
	if resp.StatusCode < 200 || resp.StatusCode > 299 {
		var env struct {
			Error string `json:"error"`
			Code  string `json:"code"`
		}
		_ = json.Unmarshal(body, &env)
		return JobGroupResponse{}, &APIError{Status: resp.StatusCode, Code: env.Code, Message: env.Error}
	}
	var out JobGroupResponse
	if strings.Contains(resp.Header.Get("Content-Type"), GroupBinaryContentType) {
		out, err = decodeGroupBinary(body)
	} else {
		err = json.Unmarshal(body, &out)
	}
	if err != nil {
		return JobGroupResponse{}, err
	}
	out.WireBytes = len(body)
	return out, nil
}

// CancelJobGroup cancels a queued or running job group.
func (c *Client) CancelJobGroup(ctx context.Context, id string) (JobGroupResponse, error) {
	var out JobGroupResponse
	err := c.do(ctx, http.MethodDelete, "/v1/jobgroups/"+url.PathEscape(id), nil, &out)
	return out, err
}

// SubmitBatch submits a batch.
func (c *Client) SubmitBatch(ctx context.Context, req BatchRequest) (BatchResponse, error) {
	var out BatchResponse
	err := c.do(ctx, http.MethodPost, "/v1/batches", req, &out)
	return out, err
}

// GetBatch polls a batch; wait > 0 long-polls server-side until the batch
// is terminal or wait has elapsed.
func (c *Client) GetBatch(ctx context.Context, id string, wait time.Duration) (BatchResponse, error) {
	path := "/v1/batches/" + url.PathEscape(id)
	if wait > 0 {
		path += "?wait=" + url.QueryEscape(wait.String())
	}
	var out BatchResponse
	err := c.do(ctx, http.MethodGet, path, nil, &out)
	return out, err
}

// CancelBatch cancels a running batch.
func (c *Client) CancelBatch(ctx context.Context, id string) (BatchResponse, error) {
	var out BatchResponse
	err := c.do(ctx, http.MethodDelete, "/v1/batches/"+url.PathEscape(id), nil, &out)
	return out, err
}

// WaitBatch long-polls the batch until it is terminal or timeout elapses
// (timeout <= 0 waits indefinitely), re-issuing bounded server-side waits so
// proxies with idle limits stay happy.
func (c *Client) WaitBatch(ctx context.Context, id string, timeout time.Duration) (BatchResponse, error) {
	deadline := time.Now().Add(timeout)
	for {
		wait := 10 * time.Second
		if timeout > 0 {
			left := time.Until(deadline)
			if left <= 0 {
				return BatchResponse{}, fmt.Errorf("httpapi: batch %s not terminal after %s", id, timeout)
			}
			wait = min(wait, left)
		}
		v, err := c.GetBatch(ctx, id, wait)
		if err != nil {
			return v, err
		}
		if v.Terminal() {
			return v, nil
		}
	}
}
