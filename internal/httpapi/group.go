package httpapi

import (
	"errors"
	"log"
	"net/http"
	"strings"
	"time"

	"repro/internal/service"
	"repro/internal/store"
)

// This file is the wire surface of the worker-side job-group path
// (DESIGN.md §6a): POST /v1/jobgroups runs one algorithm over N seeds
// against a single stored-graph lookup, and GET /v1/jobgroups/{id}
// content-negotiates between JSON and the compact binary result stream in
// bincodec.go (Accept: application/x-repro-jobgroup). The cluster
// coordinator is the primary client; curl with JSON works the same way.

// JobGroupRequest is the POST /v1/jobgroups body. Groups always run against
// a stored graph (graph_name): the uploading-coordinator use case has the
// graph registered already, and inline graphs would re-pay exactly the
// per-cell wire cost the endpoint exists to amortize.
type JobGroupRequest struct {
	Algo      string `json:"algo"`
	GraphName string `json:"graph_name"`
	// Params is the shared base; its seed field is ignored in favor of
	// Seeds, one run per entry.
	Params *ParamsRequest `json:"params,omitempty"`
	Seeds  []uint64       `json:"seeds"`
	// Traces optionally carries one trace ID per seed (the coordinator's
	// batch-cell child IDs), aligned with Seeds.
	Traces []string `json:"traces,omitempty"`
	// TimeoutMs bounds each seed's run, not the whole group.
	TimeoutMs int64 `json:"timeout_ms,omitempty"`
	// TraceID propagates an existing trace into the group; empty means the
	// service mints one.
	TraceID string `json:"trace_id,omitempty"`
}

// TraceHeaderValue reports the trace ID Client.do should send as the
// TraceHeader header.
func (r JobGroupRequest) TraceHeaderValue() string { return r.TraceID }

// GroupCellWire is the wire form of one seed's run inside a job group.
type GroupCellWire struct {
	Seed     uint64     `json:"seed"`
	TraceID  string     `json:"trace_id,omitempty"`
	State    string     `json:"state"`
	CacheHit bool       `json:"cache_hit,omitempty"`
	Error    string     `json:"error,omitempty"`
	Result   *JobResult `json:"result,omitempty"`
}

// JobGroupResponse is the wire form of a job-group snapshot.
type JobGroupResponse struct {
	ID          string          `json:"id"`
	Algo        string          `json:"algo"`
	State       string          `json:"state"`
	TraceID     string          `json:"trace_id,omitempty"`
	Total       int             `json:"total"`
	Done        int             `json:"done"`
	Cells       []GroupCellWire `json:"cells"`
	SubmittedAt time.Time       `json:"submitted_at"`
	FinishedAt  *time.Time      `json:"finished_at,omitempty"`
	// WireBytes reports how many body bytes the response arrived as; the
	// client fills it for the coordinator's bytes-on-wire accounting. Never
	// serialized.
	WireBytes int `json:"-"`
}

// Terminal reports whether the group snapshot is final.
func (g *JobGroupResponse) Terminal() bool {
	return service.State(g.State).Terminal()
}

// registerGroupRoutes mounts the job-group endpoints. Only the single-node
// handler serves them: in coordinator mode groups are an internal dispatch
// unit, not a client surface.
func registerGroupRoutes(mux *http.ServeMux, cfg *handlerConfig, svc *service.Service, st *store.Store) {
	mux.HandleFunc("POST /v1/jobgroups", func(w http.ResponseWriter, r *http.Request) {
		handleSubmitGroup(cfg, svc, st, w, r)
	})
	mux.HandleFunc("GET /v1/jobgroups/{id}", func(w http.ResponseWriter, r *http.Request) {
		t := tenantFrom(r)
		v, ok := svc.GetGroup(r.PathValue("id"))
		if !ok || (cfg.keyring != nil && v.Tenant != t.ID) {
			writeErr(w, http.StatusNotFound, "no such job group")
			return
		}
		writeGroup(w, r, http.StatusOK, toGroupResponse(v))
	})
	mux.HandleFunc("DELETE /v1/jobgroups/{id}", func(w http.ResponseWriter, r *http.Request) {
		t := tenantFrom(r)
		if cfg.keyring != nil {
			if v, ok := svc.GetGroup(r.PathValue("id")); !ok || v.Tenant != t.ID {
				writeErr(w, http.StatusNotFound, "no such job group")
				return
			}
		}
		v, err := svc.CancelGroup(r.PathValue("id"))
		switch {
		case errors.Is(err, service.ErrGroupNotFound):
			writeErr(w, http.StatusNotFound, "no such job group")
		case errors.Is(err, service.ErrFinished):
			writeErr(w, http.StatusConflict, "job group already finished")
		case err != nil:
			writeErr(w, http.StatusInternalServerError, err.Error())
		default:
			writeGroup(w, r, http.StatusOK, toGroupResponse(v))
		}
	})
}

func handleSubmitGroup(cfg *handlerConfig, svc *service.Service, st *store.Store, w http.ResponseWriter, r *http.Request) {
	t := tenantFrom(r)
	var req JobGroupRequest
	if !decodeBody(w, r, &req) {
		return
	}
	if req.Algo == "" {
		writeErr(w, http.StatusBadRequest, "missing algo (see GET /v1/algorithms)")
		return
	}
	if req.GraphName == "" {
		writeErr(w, http.StatusBadRequest, "missing graph_name: job groups run against stored graphs")
		return
	}
	g, release, err := st.Acquire(cfg.scopeGraph(t, req.GraphName))
	if err != nil {
		code := http.StatusBadRequest
		if errors.Is(err, store.ErrNotFound) {
			code = http.StatusNotFound
		}
		writeErr(w, code, err.Error())
		return
	}
	// As with single jobs, the name stays pinned only for the submission:
	// the group holds its own reference to the immutable graph.
	defer release()

	params, err := req.Params.params()
	if err != nil {
		writeErr(w, http.StatusBadRequest, err.Error())
		return
	}
	trace := req.TraceID
	if trace == "" {
		trace = r.Header.Get(TraceHeader)
	}
	v, err := svc.SubmitGroup(service.GroupRequest{
		Algo:    req.Algo,
		Graph:   g,
		Params:  params,
		Seeds:   req.Seeds,
		Traces:  req.Traces,
		Timeout: time.Duration(req.TimeoutMs) * time.Millisecond,
		TraceID: trace,
		Tenant:  t.ID,
	})
	switch {
	case errors.Is(err, service.ErrDraining):
		writeErrCode(w, http.StatusServiceUnavailable, CodeDraining, err.Error())
	case errors.Is(err, service.ErrClosed):
		writeErr(w, http.StatusServiceUnavailable, err.Error())
	case err != nil:
		writeErr(w, http.StatusBadRequest, err.Error())
	default:
		w.Header().Set(TraceHeader, v.TraceID)
		writeGroup(w, r, http.StatusAccepted, toGroupResponse(v))
	}
}

// writeGroup writes a group response in the representation the request's
// Accept header asks for: the compact binary stream when it names
// GroupBinaryContentType, JSON otherwise.
func writeGroup(w http.ResponseWriter, r *http.Request, code int, v JobGroupResponse) {
	if strings.Contains(r.Header.Get("Accept"), GroupBinaryContentType) {
		w.Header().Set("Content-Type", GroupBinaryContentType)
		w.WriteHeader(code)
		if _, err := w.Write(encodeGroupBinary(v)); err != nil {
			log.Printf("httpapi: writing group response: %v", err)
		}
		return
	}
	writeJSON(w, code, v)
}

func toGroupResponse(v service.GroupView) JobGroupResponse {
	out := JobGroupResponse{
		ID:          v.ID,
		Algo:        v.Algo,
		State:       string(v.State),
		TraceID:     v.TraceID,
		Total:       v.Total,
		Done:        v.Done,
		Cells:       make([]GroupCellWire, len(v.Cells)),
		SubmittedAt: v.SubmittedAt,
	}
	if !v.FinishedAt.IsZero() {
		t := v.FinishedAt
		out.FinishedAt = &t
	}
	for i, c := range v.Cells {
		out.Cells[i] = GroupCellWire{
			Seed:     c.Seed,
			TraceID:  c.TraceID,
			State:    string(c.State),
			CacheHit: c.CacheHit,
			Error:    c.Error,
			Result:   toJobResult(c.Result),
		}
	}
	return out
}
