package httpapi

import (
	"encoding/binary"
	"fmt"
	"time"

	"repro/internal/obs"
	"repro/internal/registry"
)

// This file is the compact binary rendering of a JobGroupResponse
// (DESIGN.md §6a), content-negotiated on GET /v1/jobgroups/{id} via the
// Accept header. A 64-seed group of maxis results is ~6× smaller than its
// JSON form (InSet travels as a bitset, Edges/Cost/Trace as varints), which
// is the bulk of the coordinator's poll traffic. JSON stays the default and
// the debug path; both renderings decode to identical structs, pinned by
// TestGroupBinaryMatchesJSON.
//
// Layout: magic "RJG1", then the group header (len-prefixed strings, varint
// counts, unix-nano timestamps), then one cell record per cell — seed,
// state byte, flags byte, trace, and the optional error/result payloads the
// flags announce. All varints are the encoding/binary Uvarint/Varint
// formats; signed fields (weights, Edges entries, which use -1 for
// unmatched) travel zigzagged via Varint.

// GraphEdgeListContentType negotiates streamed whitespace edge-list (SNAP
// dump) graph uploads on PUT /v1/graphs/{name}: the body is the file itself,
// decoded by graph.ReadEdgeList.
const GraphEdgeListContentType = "application/x-repro-edgelist"

// GraphMatrixMarketContentType negotiates streamed Matrix Market coordinate
// uploads on PUT /v1/graphs/{name}, decoded by graph.ReadMatrixMarket.
const GraphMatrixMarketContentType = "application/x-matrix-market"

// GraphBinaryContentType negotiates the graph.EncodeBinary format on
// PUT /v1/graphs/{name}.
const GraphBinaryContentType = "application/x-repro-graph"

// GroupBinaryContentType negotiates the binary job-group rendering on
// GET /v1/jobgroups/{id} (and the jobgroup POST/DELETE responses).
const GroupBinaryContentType = "application/x-repro-jobgroup"

// groupMagic brands a binary group stream; the trailing 1 is the version.
const groupMagic = "RJG1"

// Cell-record flag bits: which optional payloads follow.
const (
	gfCacheHit = 1 << iota
	gfError
	gfResult
	gfTrace
)

// stateCodes maps service states to wire bytes and back. Order is the wire
// contract — append only.
var stateCodes = []string{"queued", "running", "done", "failed", "canceled"}

func stateCode(s string) (byte, error) {
	for i, name := range stateCodes {
		if name == s {
			return byte(i), nil
		}
	}
	return 0, fmt.Errorf("httpapi: unencodable state %q", s)
}

// appendString appends a uvarint length prefix and the bytes.
func appendString(buf []byte, s string) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(s)))
	return append(buf, s...)
}

// appendTime appends a timestamp as unix nanoseconds, zero for the zero
// time (time.Time zero values predate the unix epoch and would not survive
// a UnixNano round trip).
func appendTime(buf []byte, t time.Time) []byte {
	if t.IsZero() {
		return binary.AppendVarint(buf, 0)
	}
	return binary.AppendVarint(buf, t.UnixNano())
}

// encodeGroupBinary renders v in the binary job-group format. Encoding a
// snapshot cannot fail except for a state string outside the lifecycle
// enum, which would be a programming error — hence the panic, mirroring
// what writeJSON does on an unmarshalable value (logs and truncates).
func encodeGroupBinary(v JobGroupResponse) []byte {
	buf := make([]byte, 0, 64+len(v.Cells)*48)
	buf = append(buf, groupMagic...)
	buf = appendString(buf, v.ID)
	buf = appendString(buf, v.Algo)
	buf = appendString(buf, v.State)
	buf = appendString(buf, v.TraceID)
	buf = binary.AppendUvarint(buf, uint64(v.Total))
	buf = binary.AppendUvarint(buf, uint64(v.Done))
	buf = appendTime(buf, v.SubmittedAt)
	if v.FinishedAt != nil {
		buf = appendTime(buf, *v.FinishedAt)
	} else {
		buf = binary.AppendVarint(buf, 0)
	}
	buf = binary.AppendUvarint(buf, uint64(len(v.Cells)))
	for _, c := range v.Cells {
		code, err := stateCode(c.State)
		if err != nil {
			panic(err)
		}
		var flags byte
		if c.CacheHit {
			flags |= gfCacheHit
		}
		if c.Error != "" {
			flags |= gfError
		}
		if c.Result != nil {
			flags |= gfResult
			if c.Result.Trace != nil {
				flags |= gfTrace
			}
		}
		buf = binary.AppendUvarint(buf, c.Seed)
		buf = append(buf, code, flags)
		buf = appendString(buf, c.TraceID)
		if c.Error != "" {
			buf = appendString(buf, c.Error)
		}
		if c.Result != nil {
			buf = appendResult(buf, c.Result)
		}
	}
	return buf
}

func appendResult(buf []byte, r *JobResult) []byte {
	buf = appendString(buf, r.Kind)
	buf = binary.AppendVarint(buf, int64(r.Size))
	buf = binary.AppendVarint(buf, r.Weight)
	buf = binary.AppendVarint(buf, int64(r.Uncovered))
	buf = binary.AppendUvarint(buf, uint64(len(r.InSet)))
	buf = appendBitset(buf, r.InSet)
	buf = binary.AppendUvarint(buf, uint64(len(r.Edges)))
	for _, e := range r.Edges {
		buf = binary.AppendVarint(buf, int64(e)) // -1 marks unmatched nodes
	}
	for _, c := range []int{r.Cost.Rounds, r.Cost.RealRounds, r.Cost.Messages,
		r.Cost.Bits, r.Cost.MaxMessageBits, r.Cost.BitBudget} {
		buf = binary.AppendVarint(buf, int64(c))
	}
	if t := r.Trace; t != nil {
		for _, f := range []int64{int64(t.Rounds), int64(t.VirtualRounds), t.Messages,
			t.Bits, t.PeakRoundMessages, t.PeakRoundBits, int64(t.PeakActive), t.CompactMoves} {
			buf = binary.AppendVarint(buf, f)
		}
		buf = binary.AppendUvarint(buf, t.MemoHits)
		buf = binary.AppendUvarint(buf, t.MemoMisses)
	}
	return buf
}

// appendBitset packs bools LSB-first, eight per byte.
func appendBitset(buf []byte, bits []bool) []byte {
	var cur byte
	for i, b := range bits {
		if b {
			cur |= 1 << (i % 8)
		}
		if i%8 == 7 {
			buf = append(buf, cur)
			cur = 0
		}
	}
	if len(bits)%8 != 0 {
		buf = append(buf, cur)
	}
	return buf
}

// groupReader walks a binary group stream, latching the first error so the
// decode body reads linearly without per-field error plumbing.
type groupReader struct {
	data []byte
	off  int
	err  error
}

func (r *groupReader) fail(format string, args ...any) {
	if r.err == nil {
		r.err = fmt.Errorf("httpapi: binary group: "+format, args...)
	}
}

func (r *groupReader) uvarint(what string) uint64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Uvarint(r.data[r.off:])
	if n <= 0 {
		r.fail("truncated %s at offset %d", what, r.off)
		return 0
	}
	r.off += n
	return v
}

func (r *groupReader) varint(what string) int64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Varint(r.data[r.off:])
	if n <= 0 {
		r.fail("truncated %s at offset %d", what, r.off)
		return 0
	}
	r.off += n
	return v
}

func (r *groupReader) count(what string) int {
	v := r.uvarint(what)
	// Every counted element occupies at least one byte, so a count beyond
	// the remaining input is malformed — reject before allocating for it.
	if r.err == nil && v > uint64(len(r.data)-r.off) {
		r.fail("%s %d exceeds remaining input", what, v)
		return 0
	}
	return int(v)
}

func (r *groupReader) str(what string) string {
	n := r.count(what + " length")
	if r.err != nil {
		return ""
	}
	s := string(r.data[r.off : r.off+n])
	r.off += n
	return s
}

func (r *groupReader) byte(what string) byte {
	if r.err != nil {
		return 0
	}
	if r.off >= len(r.data) {
		r.fail("truncated %s at offset %d", what, r.off)
		return 0
	}
	b := r.data[r.off]
	r.off++
	return b
}

func (r *groupReader) time(what string) time.Time {
	ns := r.varint(what)
	if ns == 0 {
		return time.Time{}
	}
	return time.Unix(0, ns)
}

// decodeGroupBinary parses the format written by encodeGroupBinary.
func decodeGroupBinary(data []byte) (JobGroupResponse, error) {
	if len(data) < len(groupMagic) || string(data[:len(groupMagic)]) != groupMagic {
		return JobGroupResponse{}, fmt.Errorf("httpapi: binary group: bad magic (want %q)", groupMagic)
	}
	r := &groupReader{data: data, off: len(groupMagic)}
	v := JobGroupResponse{
		ID:      r.str("id"),
		Algo:    r.str("algo"),
		State:   r.str("state"),
		TraceID: r.str("trace id"),
		Total:   int(r.uvarint("total")),
		Done:    int(r.uvarint("done")),
	}
	v.SubmittedAt = r.time("submitted_at")
	if t := r.time("finished_at"); !t.IsZero() {
		v.FinishedAt = &t
	}
	n := r.count("cell count")
	if r.err != nil {
		return JobGroupResponse{}, r.err
	}
	v.Cells = make([]GroupCellWire, 0, n)
	for i := 0; i < n; i++ {
		c := GroupCellWire{Seed: r.uvarint("seed")}
		code := r.byte("state code")
		flags := r.byte("flags")
		if r.err == nil {
			if int(code) >= len(stateCodes) {
				r.fail("cell %d: unknown state code %d", i, code)
			} else {
				c.State = stateCodes[code]
			}
		}
		c.CacheHit = flags&gfCacheHit != 0
		c.TraceID = r.str("cell trace id")
		if flags&gfError != 0 {
			c.Error = r.str("cell error")
		}
		if flags&gfResult != 0 {
			c.Result = readResult(r, flags&gfTrace != 0)
		}
		if r.err != nil {
			return JobGroupResponse{}, r.err
		}
		v.Cells = append(v.Cells, c)
	}
	if r.off != len(data) {
		return JobGroupResponse{}, fmt.Errorf("httpapi: binary group: %d trailing bytes", len(data)-r.off)
	}
	return v, nil
}

func readResult(r *groupReader, hasTrace bool) *JobResult {
	res := &JobResult{
		Kind:      r.str("result kind"),
		Size:      int(r.varint("result size")),
		Weight:    r.varint("result weight"),
		Uncovered: int(r.varint("result uncovered")),
	}
	if n := r.uvarint("in_set length"); n > 0 && r.err == nil {
		res.InSet = readBitset(r, n)
	}
	if n := r.count("edges length"); n > 0 && r.err == nil {
		res.Edges = make([]int, n)
		for i := range res.Edges {
			res.Edges[i] = int(r.varint("edge entry"))
		}
	}
	res.Cost = registry.Cost{
		Rounds:         int(r.varint("cost rounds")),
		RealRounds:     int(r.varint("cost real rounds")),
		Messages:       int(r.varint("cost messages")),
		Bits:           int(r.varint("cost bits")),
		MaxMessageBits: int(r.varint("cost max message bits")),
		BitBudget:      int(r.varint("cost bit budget")),
	}
	if hasTrace {
		res.Trace = &obs.RoundTrace{
			Rounds:            int(r.varint("trace rounds")),
			VirtualRounds:     int(r.varint("trace virtual rounds")),
			Messages:          r.varint("trace messages"),
			Bits:              r.varint("trace bits"),
			PeakRoundMessages: r.varint("trace peak round messages"),
			PeakRoundBits:     r.varint("trace peak round bits"),
			PeakActive:        int(r.varint("trace peak active")),
			CompactMoves:      r.varint("trace compact moves"),
			MemoHits:          r.uvarint("trace memo hits"),
			MemoMisses:        r.uvarint("trace memo misses"),
		}
	}
	return res
}

// readBitset reads n bools packed LSB-first. A bitset packs eight entries
// per byte, so the generic count() one-byte-per-element bound does not
// apply; bound n against the remaining bytes × 8 before allocating.
func readBitset(r *groupReader, n uint64) []bool {
	if r.err != nil {
		return nil
	}
	if n > uint64(len(r.data)-r.off)*8 {
		r.fail("bitset of %d entries exceeds remaining input", n)
		return nil
	}
	need := (int(n) + 7) / 8
	bits := make([]bool, n)
	for i := range bits {
		bits[i] = r.data[r.off+i/8]&(1<<(i%8)) != 0
	}
	r.off += need
	return bits
}
