package httpapi

// This file is the Prometheus text exposition of /metrics. JSON stays the
// default; a scraper opts in through standard content negotiation (an Accept
// header naming text/plain, which Prometheus sends by default). Both server
// modes expose it: the single-node handler renders the engine-telemetry
// histograms beside the service and batch counters, and the coordinator
// handler renders its fleet counters plus one gauge set per worker.

import (
	"net/http"
	"strings"

	"repro/internal/obs"
	"repro/internal/service"
	"repro/internal/store"
	"repro/internal/wal"
)

// wantsProm reports whether the request negotiates the Prometheus text
// format: any Accept clause naming text/plain (or the openmetrics type, which
// the 0.0.4 text format satisfies for our counter/gauge/histogram families).
// No Accept header, */* alone, or application/json keep the JSON default.
func wantsProm(r *http.Request) bool {
	accept := r.Header.Get("Accept")
	for clause := range strings.SplitSeq(accept, ",") {
		mt, _, _ := strings.Cut(strings.TrimSpace(clause), ";")
		switch strings.TrimSpace(mt) {
		case "text/plain", "application/openmetrics-text":
			return true
		}
	}
	return false
}

// writePromEngine renders the single-node /metrics document: service + batch
// counters, the engine-telemetry aggregates, and — on durable servers — the
// WAL families of both logs.
func writePromEngine(w http.ResponseWriter, m service.Metrics, bm service.BatchMetrics, t service.EngineTelemetry,
	st *store.Store, batches *service.Batches) {
	p := obs.NewPromWriter()

	// Engine telemetry: per-run distributions plus lifetime totals over live
	// (non-cached) completions.
	p.Histogram("repro_engine_rounds", "Real communication rounds per live run.", t.Rounds)
	p.Histogram("repro_engine_messages", "Messages delivered per live run.", t.Messages)
	p.Counter("repro_engine_runs_total", "Live (non-cached) runs folded into the engine telemetry.", float64(t.Observed))
	p.Counter("repro_engine_rounds_total", "Total real rounds across live runs.", float64(t.RoundsTotal))
	p.Counter("repro_engine_messages_total", "Total messages delivered across live runs.", float64(t.MessagesTotal))
	p.Counter("repro_engine_bits_total", "Total payload bits across live runs.", float64(t.BitsTotal))
	p.Counter("repro_engine_memo_hits_total", "Exchange-folding memo hits across live runs.", float64(t.MemoHits))
	p.Counter("repro_engine_memo_misses_total", "Exchange-folding memo misses across live runs.", float64(t.MemoMisses))

	// Job-service counters.
	p.Counter("repro_jobs_submitted_total", "Jobs submitted.", float64(m.Submitted))
	p.Counter("repro_jobs_completed_total", "Jobs completed.", float64(m.Completed))
	p.Counter("repro_jobs_failed_total", "Jobs failed.", float64(m.Failed))
	p.Counter("repro_jobs_canceled_total", "Jobs canceled.", float64(m.Canceled))
	p.Counter("repro_cache_hits_total", "Single-job result-cache hits.", float64(m.CacheHits))
	p.Counter("repro_cache_misses_total", "Single-job result-cache misses.", float64(m.CacheMisses))
	p.Counter("repro_batch_cache_hits_total", "Batch-member result-cache hits.", float64(m.BatchCacheHits))
	p.Counter("repro_batch_cache_misses_total", "Batch-member result-cache misses.", float64(m.BatchCacheMisses))
	p.Gauge("repro_cache_size", "Entries in the result cache.", float64(m.CacheSize))
	p.Gauge("repro_jobs_queued", "Jobs waiting in the queue.", float64(m.Queued))
	p.Gauge("repro_jobs_running", "Jobs currently executing.", float64(m.Running))
	p.Gauge("repro_workers", "Service worker goroutines.", float64(m.Workers))
	p.Gauge("repro_job_latency_ms", "Job latency percentiles over the recent window.",
		m.LatencyP50Ms, "quantile", "0.5")
	p.Gauge("repro_job_latency_ms", "", m.LatencyP90Ms, "quantile", "0.9")
	p.Gauge("repro_job_latency_ms", "", m.LatencyP99Ms, "quantile", "0.99")

	// Per-tenant families (multi-tenant servers only; the anonymous tenant
	// is never tracked). One label set per tenant, in sorted ID order so
	// the exposition is deterministic.
	for _, id := range obs.SortedKeys(m.Tenants) {
		tm := m.Tenants[id]
		p.Counter("repro_tenant_jobs_submitted_total", "Jobs submitted by the tenant.", float64(tm.Submitted), "tenant", id)
		p.Counter("repro_tenant_jobs_completed_total", "Tenant jobs completed.", float64(tm.Completed), "tenant", id)
		p.Counter("repro_tenant_jobs_failed_total", "Tenant jobs failed.", float64(tm.Failed), "tenant", id)
		p.Counter("repro_tenant_jobs_canceled_total", "Tenant jobs canceled.", float64(tm.Canceled), "tenant", id)
		p.Counter("repro_tenant_jobs_rejected_total", "Tenant submissions refused by the tenant's queue bound.", float64(tm.Rejected), "tenant", id)
		p.Gauge("repro_tenant_jobs_queued", "Tenant jobs waiting in the fair queue.", float64(tm.Queued), "tenant", id)
		p.Gauge("repro_tenant_jobs_running", "Tenant jobs currently executing.", float64(tm.Running), "tenant", id)
	}

	// Batch-engine counters.
	p.Counter("repro_batches_submitted_total", "Batches submitted.", float64(bm.BatchesSubmitted))
	p.Counter("repro_batches_done_total", "Batches finished.", float64(bm.BatchesDone))
	p.Counter("repro_batches_canceled_total", "Batches canceled.", float64(bm.BatchesCanceled))
	p.Counter("repro_batch_cells_total", "Batch member cells expanded.", float64(bm.BatchCells))

	// WAL counters, one label set per log ("store" and "batches"); absent
	// entirely on non-durable servers.
	if st != nil {
		if wm, ok := st.WALMetrics(); ok {
			writePromWAL(p, "store", wm)
		}
	}
	if batches != nil {
		if lm, ok := batches.LedgerMetrics(); ok {
			writePromWAL(p, "batches", lm.Metrics)
			p.Counter("repro_wal_batches_resumed_total", "Incomplete batches resumed from the ledger at boot.", float64(lm.BatchesResumed), "log", "batches")
			p.Counter("repro_wal_cells_restored_total", "Finished cells restored from the ledger at boot (never re-executed).", float64(lm.CellsRestored), "log", "batches")
			p.Counter("repro_wal_records_dropped_total", "Async ledger records dropped on backpressure (re-run after a crash, never lost correctness).", float64(lm.RecordsDropped), "log", "batches")
		}
	}

	flushProm(w, p)
}

// writePromWAL renders one internal/wal log's counter families under a log
// label, shared by the store WAL and the batch ledger.
func writePromWAL(p *obs.PromWriter, log string, m wal.Metrics) {
	p.Counter("repro_wal_appends_total", "Records appended to the WAL.", float64(m.AppendsTotal), "log", log)
	p.Counter("repro_wal_appended_bytes_total", "Bytes appended to the WAL.", float64(m.AppendedBytes), "log", log)
	p.Counter("repro_wal_syncs_total", "WAL fsync group commits.", float64(m.SyncsTotal), "log", log)
	p.Counter("repro_wal_snapshots_total", "WAL snapshots written.", float64(m.SnapshotsTotal), "log", log)
	p.Counter("repro_wal_segments_created_total", "WAL segments opened.", float64(m.SegmentsCreated), "log", log)
	p.Counter("repro_wal_replayed_records_total", "Records replayed at boot.", float64(m.ReplayedRecords), "log", log)
	p.Counter("repro_wal_replayed_snapshots_total", "Snapshots replayed at boot.", float64(m.ReplayedSnapshots), "log", log)
	p.Counter("repro_wal_replay_torn_tails_total", "Torn segment tails tolerated during replay.", float64(m.ReplayTornTails), "log", log)
	p.Gauge("repro_wal_records_since_snapshot", "Records appended since the last snapshot.", float64(m.SinceSnapshot), "log", log)
}

// writePromCluster renders the coordinator-mode /metrics document:
// coordinator counters, the summed fleet counters, and one gauge set per
// worker (emitted in sorted URL order, so output is deterministic).
func writePromCluster(w http.ResponseWriter, m ClusterMetrics, v ClusterView) {
	p := obs.NewPromWriter()

	p.Gauge("repro_cluster_workers", "Configured workers.", float64(m.WorkersTotal))
	p.Gauge("repro_cluster_workers_healthy", "Workers passing health checks.", float64(m.WorkersHealthy))
	p.Counter("repro_cluster_batches_submitted_total", "Batches accepted by the coordinator.", float64(m.BatchesSubmitted))
	p.Counter("repro_cluster_batches_done_total", "Batches finished by the coordinator.", float64(m.BatchesDone))
	p.Counter("repro_cluster_batches_canceled_total", "Batches canceled on the coordinator.", float64(m.BatchesCanceled))
	p.Counter("repro_cluster_batch_cells_total", "Cells expanded across coordinator batches.", float64(m.BatchCells))
	p.Counter("repro_cluster_cells_dispatched_total", "Cell dispatches to workers (retries included).", float64(m.CellsDispatched))
	p.Counter("repro_cluster_cell_retries_total", "Cell re-dispatches after a worker failure.", float64(m.CellRetries))
	p.Counter("repro_cluster_worker_failures_total", "Worker failures observed by the coordinator.", float64(m.WorkerFailures))
	p.Counter("repro_cluster_groups_dispatched_total", "Job-group dispatches to workers (hedges and retries included).", float64(m.GroupsDispatched))
	p.Counter("repro_cluster_hedges_fired_total", "Straggling groups speculatively re-dispatched.", float64(m.HedgesFired))
	p.Counter("repro_cluster_hedges_won_total", "Hedge attempts that produced the winning result.", float64(m.HedgesWon))
	p.Counter("repro_cluster_hedges_wasted_total", "Hedge attempts beaten by their primary.", float64(m.HedgesWasted))
	p.Counter("repro_cluster_wire_bytes_total", "Body bytes shipped over the binary wire codecs.", float64(m.WireBytesTotal))

	// Fleet: the summed counters of every worker that answered /metrics.
	p.Counter("repro_fleet_jobs_submitted_total", "Jobs submitted across the fleet.", float64(m.Fleet.Submitted))
	p.Counter("repro_fleet_jobs_completed_total", "Jobs completed across the fleet.", float64(m.Fleet.Completed))
	p.Counter("repro_fleet_jobs_failed_total", "Jobs failed across the fleet.", float64(m.Fleet.Failed))
	p.Counter("repro_fleet_cache_hits_total", "Result-cache hits across the fleet (single-job and batch).",
		float64(m.Fleet.CacheHits+m.Fleet.BatchCacheHits))

	// Per-worker gauges, one label set per worker in sorted URL order.
	byURL := make(map[string]ClusterWorker, len(v.Workers))
	for _, cw := range v.Workers {
		byURL[cw.URL] = cw
	}
	for _, url := range obs.SortedKeys(byURL) {
		cw := byURL[url]
		healthy := 0.0
		if cw.Healthy {
			healthy = 1
		}
		p.Gauge("repro_cluster_worker_healthy", "Worker health (1 healthy, 0 down).", healthy, "worker", url)
		p.Gauge("repro_cluster_worker_in_flight", "Cells currently dispatched to the worker.", float64(cw.InFlight), "worker", url)
		p.Gauge("repro_cluster_inflight", "In-flight window occupancy of the worker, in cells.", float64(cw.InFlight), "worker", url)
		p.Gauge("repro_cluster_queue_depth", "Dispatch attempts waiting behind the worker's window.", float64(cw.QueueDepth), "worker", url)
		p.Gauge("repro_cluster_worker_graphs", "Graphs this coordinator has uploaded to the worker.", float64(cw.Graphs), "worker", url)
		p.Counter("repro_cluster_worker_dispatched_total", "Cell dispatches to the worker.", float64(cw.Dispatched), "worker", url)
		p.Counter("repro_cluster_worker_failures_total", "Failures observed against the worker.", float64(cw.Failures), "worker", url)
	}

	flushProm(w, p)
}

func flushProm(w http.ResponseWriter, p *obs.PromWriter) {
	// WriteTo refuses to write anything on a rendering error (an odd label
	// list is a programming error), so the 500 below still owns the response.
	w.Header().Set("Content-Type", obs.PromContentType)
	if _, err := p.WriteTo(w); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}
