package httpapi

import (
	"bytes"
	"context"
	"errors"
	"net/http"
	"testing"
	"time"

	"repro"
	"repro/internal/service"
)

func wantStatus(t *testing.T, err error, code int) {
	t.Helper()
	var apiErr *APIError
	if !errors.As(err, &apiErr) || apiErr.Status != code {
		t.Fatalf("error %v, want API status %d", err, code)
	}
}

// TestGraphLifecycleAndDedup covers PUT/GET/DELETE /v1/graphs: upload,
// generator registration, fingerprint dedup across names, idempotent
// re-put, conflicting re-put, and list.
func TestGraphLifecycleAndDedup(t *testing.T) {
	ts, _, _ := newFullServer(t, service.Config{Workers: 1}, service.BatchConfig{})
	c := NewClient(ts.URL, nil)

	g := repro.GNP(16, 0.25, 42)
	repro.AssignUniformEdgeWeights(g, 30, 43)
	var buf bytes.Buffer
	if err := repro.WriteGraph(&buf, g); err != nil {
		t.Fatal(err)
	}

	up, err := c.PutGraph(context.Background(), "uploaded", buf.String())
	if err != nil {
		t.Fatal(err)
	}
	if up.Dedup || up.Nodes != 16 || up.Fingerprint == "" {
		t.Fatalf("upload info %+v", up)
	}

	gen, err := c.PutGraphGen(context.Background(), "generated", GenRequest{Gen: "gnp", N: 24, P: 0.2, Seed: 7, MaxW: 32})
	if err != nil {
		t.Fatal(err)
	}
	if gen.Gen != "gnp" || gen.Nodes != 24 {
		t.Fatalf("generated info %+v", gen)
	}

	// Same generator spec under a second name: deduplicated payload.
	alias, err := c.PutGraphGen(context.Background(), "generated-alias", GenRequest{Gen: "gnp", N: 24, P: 0.2, Seed: 7, MaxW: 32})
	if err != nil {
		t.Fatal(err)
	}
	if !alias.Dedup || alias.Fingerprint != gen.Fingerprint || alias.Shared != 2 {
		t.Fatalf("alias info %+v", alias)
	}

	// Idempotent re-put of the same name and content.
	again, err := c.PutGraphGen(context.Background(), "generated", GenRequest{Gen: "gnp", N: 24, P: 0.2, Seed: 7, MaxW: 32})
	if err != nil || !again.Dedup {
		t.Fatalf("re-put: info %+v err %v", again, err)
	}
	// Conflicting content under an existing name: 409.
	_, err = c.PutGraphGen(context.Background(), "generated", GenRequest{Gen: "gnp", N: 24, P: 0.2, Seed: 8, MaxW: 32})
	wantStatus(t, err, http.StatusConflict)

	ls, err := c.ListGraphs(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(ls) != 3 {
		t.Fatalf("listed %d graphs, want 3", len(ls))
	}

	if err := c.DeleteGraph(context.Background(), "generated-alias"); err != nil {
		t.Fatal(err)
	}
	info, err := c.GetGraph(context.Background(), "generated")
	if err != nil || info.Shared != 1 {
		t.Fatalf("survivor after alias delete: %+v err %v", info, err)
	}
	_, err = c.GetGraph(context.Background(), "generated-alias")
	wantStatus(t, err, http.StatusNotFound)
	err = c.DeleteGraph(context.Background(), "generated-alias")
	wantStatus(t, err, http.StatusNotFound)
}

// TestBatchGridLongPollAndAggregate covers POST /v1/batches grid expansion,
// the ?wait= long-poll, per-cell results and the aggregated groups.
func TestBatchGridLongPollAndAggregate(t *testing.T) {
	ts, _, _ := newFullServer(t, service.Config{Workers: 4}, service.BatchConfig{})
	c := NewClient(ts.URL, nil)

	if _, err := c.PutGraphGen(context.Background(), "g", GenRequest{Gen: "gnp", N: 24, P: 0.2, Seed: 7, MaxW: 32}); err != nil {
		t.Fatal(err)
	}
	b, err := c.SubmitBatch(context.Background(), BatchRequest{
		Graphs: []string{"g"},
		Algos:  []string{"mwm2", "fastmcm"},
		Seeds:  []uint64{1, 2, 3},
	})
	if err != nil {
		t.Fatal(err)
	}
	if b.Total != 6 || b.State != "running" && b.State != "done" {
		t.Fatalf("submit response %+v", b)
	}

	fin, err := c.WaitBatch(context.Background(), b.ID, 60*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if fin.State != "done" || fin.Done != 6 {
		t.Fatalf("final batch %+v", fin)
	}
	if len(fin.Cells) != 6 {
		t.Fatalf("%d cells, want 6", len(fin.Cells))
	}
	for _, cell := range fin.Cells {
		if cell.State != "done" || cell.Result == nil || cell.Result.Weight <= 0 {
			t.Fatalf("cell %+v", cell)
		}
	}
	if len(fin.Groups) != 2 {
		t.Fatalf("%d groups, want 2", len(fin.Groups))
	}
	for _, gr := range fin.Groups {
		if gr.Runs != 3 || gr.Done != 3 || gr.Rounds.N != 3 || gr.Weight.Mean <= 0 {
			t.Fatalf("group %+v", gr)
		}
	}

	// The batch results came from the same registry the single-job path
	// uses: re-running one cell directly must agree exactly.
	g := repro.GNP(24, 0.2, 7)
	repro.AssignUniformNodeWeights(g, 32, 8)
	repro.AssignUniformEdgeWeights(g, 32, 9)
	direct, err := repro.Run("mwm2", g, repro.WithSeed(1))
	if err != nil {
		t.Fatal(err)
	}
	var cellWeight int64
	for _, cell := range fin.Cells {
		if cell.Algo == "mwm2" && cell.Params.Seed == 1 {
			cellWeight = cell.Result.Weight
		}
	}
	if cellWeight != direct.Weight {
		t.Fatalf("batch cell weight %d, direct run weight %d", cellWeight, direct.Weight)
	}

	// An identical batch is answered from the result cache.
	b2, err := c.SubmitBatch(context.Background(), BatchRequest{
		Graphs: []string{"g"},
		Algos:  []string{"mwm2", "fastmcm"},
		Seeds:  []uint64{1, 2, 3},
	})
	if err != nil {
		t.Fatal(err)
	}
	fin2, err := c.WaitBatch(context.Background(), b2.ID, 60*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if fin2.CacheHits != 6 {
		t.Fatalf("resubmitted batch cache hits %d, want 6", fin2.CacheHits)
	}
}

// TestBatchPinBlocksGraphDelete covers ref-counted eviction refusal over
// HTTP: a graph pinned by a running batch returns 409 on DELETE and deletes
// fine once the batch is done.
func TestBatchPinBlocksGraphDelete(t *testing.T) {
	ts, _, _ := newFullServer(t, service.Config{Workers: 1}, service.BatchConfig{})
	c := NewClient(ts.URL, nil)

	if _, err := c.PutGraphGen(context.Background(), "pinned", GenRequest{Gen: "gnp", N: 800, P: 0.02, Seed: 3}); err != nil {
		t.Fatal(err)
	}
	b, err := c.SubmitBatch(context.Background(), BatchRequest{
		Graphs: []string{"pinned"},
		Algos:  []string{"maxis"},
		Seeds:  []uint64{1, 2, 3, 4},
	})
	if err != nil {
		t.Fatal(err)
	}
	err = c.DeleteGraph(context.Background(), "pinned")
	wantStatus(t, err, http.StatusConflict)

	if _, err := c.WaitBatch(context.Background(), b.ID, 60*time.Second); err != nil {
		t.Fatal(err)
	}
	if err := c.DeleteGraph(context.Background(), "pinned"); err != nil {
		t.Fatalf("delete after batch: %v", err)
	}
}

// TestBatchCancelFanOutHTTP covers DELETE /v1/batches/{id}: members are
// canceled, the batch terminates as canceled, and a second cancel conflicts.
func TestBatchCancelFanOutHTTP(t *testing.T) {
	ts, _, _ := newFullServer(t, service.Config{Workers: 1, QueueSize: 4}, service.BatchConfig{})
	c := NewClient(ts.URL, nil)

	if _, err := c.PutGraphGen(context.Background(), "slow", GenRequest{Gen: "gnp", N: 1200, P: 0.01, Seed: 11}); err != nil {
		t.Fatal(err)
	}
	seeds := make([]uint64, 12)
	for i := range seeds {
		seeds[i] = uint64(i + 1)
	}
	b, err := c.SubmitBatch(context.Background(), BatchRequest{Graphs: []string{"slow"}, Algos: []string{"maxis"}, Seeds: seeds})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.CancelBatch(context.Background(), b.ID); err != nil {
		t.Fatal(err)
	}
	fin, err := c.WaitBatch(context.Background(), b.ID, 60*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if fin.State != "canceled" {
		t.Fatalf("state %s, want canceled", fin.State)
	}
	if fin.Canceled == 0 || fin.Done+fin.Failed+fin.Canceled != fin.Total {
		t.Fatalf("member accounting %+v", fin)
	}
	_, err = c.CancelBatch(context.Background(), b.ID)
	wantStatus(t, err, http.StatusConflict)
}

// TestBatchAndGraphBadRequests covers the error surface of the new
// endpoints.
func TestBatchAndGraphBadRequests(t *testing.T) {
	ts, _, _ := newFullServer(t, service.Config{Workers: 1}, service.BatchConfig{MaxCells: 4})
	c := NewClient(ts.URL, nil)

	// Graph registration.
	_, err := c.PutGraph(context.Background(), "bad", "this is not a graph")
	wantStatus(t, err, http.StatusBadRequest)
	_, err = c.PutGraphGen(context.Background(), "bad", GenRequest{Gen: "hypercube", N: 4})
	wantStatus(t, err, http.StatusBadRequest)
	if err := c.do(context.Background(), http.MethodPut, "/v1/graphs/empty", GraphRequest{}, nil); err == nil {
		t.Fatal("empty graph body accepted")
	}
	_, err = c.GetGraph(context.Background(), "missing")
	wantStatus(t, err, http.StatusNotFound)

	// Batches.
	if _, err := c.PutGraphGen(context.Background(), "g", GenRequest{Gen: "gnp", N: 12, P: 0.3, Seed: 1}); err != nil {
		t.Fatal(err)
	}
	_, err = c.SubmitBatch(context.Background(), BatchRequest{Algos: []string{"mwm2"}})
	wantStatus(t, err, http.StatusBadRequest) // no graphs
	_, err = c.SubmitBatch(context.Background(), BatchRequest{Graphs: []string{"missing"}, Algos: []string{"mwm2"}})
	wantStatus(t, err, http.StatusNotFound)
	_, err = c.SubmitBatch(context.Background(), BatchRequest{Graphs: []string{"g"}, Algos: []string{"quantum"}})
	wantStatus(t, err, http.StatusBadRequest)
	_, err = c.SubmitBatch(context.Background(), BatchRequest{Graphs: []string{"g"}, Algos: []string{"mwm2"}, Seeds: []uint64{1, 2, 3, 4, 5}})
	wantStatus(t, err, http.StatusBadRequest) // over MaxCells
	_, err = c.GetBatch(context.Background(), "b999999", 0)
	wantStatus(t, err, http.StatusNotFound)
	_, err = c.CancelBatch(context.Background(), "b999999")
	wantStatus(t, err, http.StatusNotFound)

	// Bad ?wait= values.
	resp, err := http.Get(ts.URL + "/v1/batches/b000001?wait=banana")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad wait status %d", resp.StatusCode)
	}
}

// TestJobByStoredGraphName covers POST /v1/jobs with graph_name: the job
// runs against the stored graph and pins it only for the submission.
func TestJobByStoredGraphName(t *testing.T) {
	ts, _, _ := newFullServer(t, service.Config{Workers: 2}, service.BatchConfig{})
	c := NewClient(ts.URL, nil)

	if _, err := c.PutGraphGen(context.Background(), "g", GenRequest{Gen: "gnp", N: 20, P: 0.25, Seed: 5, MaxW: 16}); err != nil {
		t.Fatal(err)
	}
	jr, err := c.SubmitJob(context.Background(), SubmitRequest{Algo: "mwm2", GraphName: "g", Params: &ParamsRequest{Seed: 3}})
	if err != nil {
		t.Fatal(err)
	}
	done := pollDone(t, ts, jr.ID)
	if done.State != "done" || done.Result == nil {
		t.Fatalf("job %+v", done)
	}
	_, err = c.SubmitJob(context.Background(), SubmitRequest{Algo: "mwm2", GraphName: "missing"})
	wantStatus(t, err, http.StatusNotFound)
	_, err = c.SubmitJob(context.Background(), SubmitRequest{Algo: "mwm2", GraphName: "g", Graph: "1 0\n1\n"})
	wantStatus(t, err, http.StatusBadRequest)
}

// TestMetricsSplitsBatchTraffic verifies /metrics reports batch cache
// traffic and expansions separately from single jobs.
func TestMetricsSplitsBatchTraffic(t *testing.T) {
	ts, _, _ := newFullServer(t, service.Config{Workers: 2}, service.BatchConfig{})
	c := NewClient(ts.URL, nil)

	if _, err := c.PutGraphGen(context.Background(), "g", GenRequest{Gen: "gnp", N: 16, P: 0.25, Seed: 2, MaxW: 8}); err != nil {
		t.Fatal(err)
	}
	req := BatchRequest{Graphs: []string{"g"}, Algos: []string{"mwm2"}, Seeds: []uint64{1, 2}}
	b1, err := c.SubmitBatch(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.WaitBatch(context.Background(), b1.ID, 60*time.Second); err != nil {
		t.Fatal(err)
	}
	b2, err := c.SubmitBatch(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.WaitBatch(context.Background(), b2.ID, 60*time.Second); err != nil {
		t.Fatal(err)
	}

	var m struct {
		Submitted        uint64 `json:"submitted"`
		CacheHits        uint64 `json:"cache_hits"`
		CacheMisses      uint64 `json:"cache_misses"`
		BatchMembers     uint64 `json:"batch_members"`
		BatchCacheHits   uint64 `json:"batch_cache_hits"`
		BatchCacheMisses uint64 `json:"batch_cache_misses"`
		BatchesSubmitted uint64 `json:"batches_submitted"`
		BatchesDone      uint64 `json:"batches_done"`
		BatchCells       uint64 `json:"batch_cells"`
	}
	if err := c.do(context.Background(), http.MethodGet, "/metrics", nil, &m); err != nil {
		t.Fatal(err)
	}
	if m.BatchMembers != 4 || m.BatchCacheHits != 2 || m.BatchCacheMisses != 2 {
		t.Fatalf("batch member metrics %+v", m)
	}
	if m.CacheHits != 0 || m.CacheMisses != 0 {
		t.Fatalf("single-job cache metrics polluted by batch traffic: %+v", m)
	}
	if m.BatchesSubmitted != 2 || m.BatchesDone != 2 || m.BatchCells != 4 {
		t.Fatalf("batch engine metrics %+v", m)
	}
}
