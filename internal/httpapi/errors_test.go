package httpapi

import (
	"context"
	"errors"
	"net/http"
	"strings"
	"testing"
	"time"

	"repro/internal/service"
)

// TestParseWaitClampsAndRejects pins the ?wait= contract: empty is zero,
// oversized values clamp to the 60s cap instead of holding connections open
// arbitrarily, and negatives or garbage are rejected.
func TestParseWaitClampsAndRejects(t *testing.T) {
	cases := []struct {
		in      string
		want    time.Duration
		wantErr bool
	}{
		{in: "", want: 0},
		{in: "5s", want: 5 * time.Second},
		{in: "60s", want: maxWait},
		{in: "61s", want: maxWait},
		{in: "999h", want: maxWait},
		{in: "0s", want: 0},
		{in: "-1s", wantErr: true},
		{in: "banana", wantErr: true},
		{in: "5", wantErr: true}, // bare numbers are not durations
	}
	for _, tc := range cases {
		got, err := parseWait(tc.in)
		if tc.wantErr {
			if err == nil {
				t.Errorf("parseWait(%q): no error", tc.in)
			}
			continue
		}
		if err != nil || got != tc.want {
			t.Errorf("parseWait(%q) = %v, %v; want %v", tc.in, got, err, tc.want)
		}
	}
}

// TestErrorStatusSurface is the table-driven status-code contract of the
// HTTP API: every documented 400/404/405/409 path answers with exactly the
// documented status.
func TestErrorStatusSurface(t *testing.T) {
	ts, _, _ := newFullServer(t, service.Config{Workers: 1}, service.BatchConfig{})
	c := NewClient(ts.URL, nil)
	if _, err := c.PutGraphGen(context.Background(), "err-g", GenRequest{Gen: "gnp", N: 12, P: 0.3, Seed: 1, MaxW: 8}); err != nil {
		t.Fatal(err)
	}

	cases := []struct {
		name   string
		method string
		path   string
		body   string
		want   int
	}{
		{"job by unknown stored graph", "POST", "/v1/jobs", `{"algo":"mwm2","graph_name":"missing"}`, 404},
		{"job by known stored graph", "POST", "/v1/jobs", `{"algo":"mwm2","graph_name":"err-g"}`, 202},
		{"unknown job", "GET", "/v1/jobs/j99999999", "", 404},
		{"cancel unknown job", "DELETE", "/v1/jobs/j99999999", "", 404},
		{"unknown graph", "GET", "/v1/graphs/missing", "", 404},
		{"delete unknown graph", "DELETE", "/v1/graphs/missing", "", 404},
		{"unknown batch", "GET", "/v1/batches/b999999", "", 404},
		{"cancel unknown batch", "DELETE", "/v1/batches/b999999", "", 404},
		{"unrouted path", "GET", "/v1/nonsense", "", 404},
		{"wrong method on jobs collection", "DELETE", "/v1/jobs", "", 405},
		{"wrong method on graph resource", "POST", "/v1/graphs/err-g", `{}`, 405},
		{"wrong method on batches collection", "PUT", "/v1/batches", `{}`, 405},
		{"wrong method on metrics", "POST", "/metrics", "", 405},
		{"bad wait duration", "GET", "/v1/batches/b000001?wait=banana", "", 400},
		{"negative wait duration", "GET", "/v1/batches/b000001?wait=-5s", "", 400},
		{"bad batch body", "POST", "/v1/batches", `{{{`, 400},
		{"batch without graphs", "POST", "/v1/batches", `{"algos":["mwm2"]}`, 400},
		{"batch cells and grid mixed", "POST", "/v1/batches",
			`{"graphs":["err-g"],"algos":["mwm2"],"cells":[{"graph":"err-g","algo":"mwm2"}]}`, 400},
		{"batch with unknown stored graph", "POST", "/v1/batches", `{"graphs":["missing"],"algos":["mwm2"]}`, 404},
		{"graph upload without source", "PUT", "/v1/graphs/empty", `{}`, 400},
		{"graph name with bad characters", "PUT", "/v1/graphs/bad%2Fname", `{"gen":{"gen":"gnp","n":4,"p":0.5}}`, 400},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var body *strings.Reader
			if tc.body != "" {
				body = strings.NewReader(tc.body)
			} else {
				body = strings.NewReader("")
			}
			req, err := http.NewRequest(tc.method, ts.URL+tc.path, body)
			if err != nil {
				t.Fatal(err)
			}
			resp, err := http.DefaultClient.Do(req)
			if err != nil {
				t.Fatal(err)
			}
			resp.Body.Close()
			if resp.StatusCode != tc.want {
				t.Fatalf("%s %s: status %d, want %d", tc.method, tc.path, resp.StatusCode, tc.want)
			}
		})
	}
}

// TestQueueFullCarriesErrorCode saturates a 1-worker, 1-slot queue and
// asserts the 503 envelope carries the machine-readable queue_full code the
// cluster coordinator keys its retry-on-same-worker decision on.
func TestQueueFullCarriesErrorCode(t *testing.T) {
	ts, _, _ := newFullServer(t, service.Config{Workers: 1, QueueSize: 1}, service.BatchConfig{})
	c := NewClient(ts.URL, nil)
	if _, err := c.PutGraphGen(context.Background(), "full-g", GenRequest{Gen: "gnp", N: 1500, P: 0.013, Seed: 2}); err != nil {
		t.Fatal(err)
	}
	var sawCode bool
	for i := 0; i < 32 && !sawCode; i++ {
		_, err := c.SubmitJob(context.Background(), SubmitRequest{Algo: "maxis", GraphName: "full-g", Params: &ParamsRequest{Seed: uint64(i)}})
		var apiErr *APIError
		if errors.As(err, &apiErr) {
			if apiErr.Status != http.StatusServiceUnavailable {
				t.Fatalf("unexpected error %v", err)
			}
			if apiErr.Code != CodeQueueFull {
				t.Fatalf("503 with code %q, want %q", apiErr.Code, CodeQueueFull)
			}
			sawCode = true
		}
	}
	if !sawCode {
		t.Fatal("never saturated the queue")
	}
}

// TestOversizedWaitClampedEndToEnd submits a real batch and long-polls it
// with a wait far beyond the cap: the request must be accepted (clamped
// server-side), not rejected, and must return once the batch is done.
func TestOversizedWaitClampedEndToEnd(t *testing.T) {
	ts, _, _ := newFullServer(t, service.Config{Workers: 2}, service.BatchConfig{})
	c := NewClient(ts.URL, nil)
	if _, err := c.PutGraphGen(context.Background(), "wait-g", GenRequest{Gen: "gnp", N: 16, P: 0.25, Seed: 3, MaxW: 8}); err != nil {
		t.Fatal(err)
	}
	b, err := c.SubmitBatch(context.Background(), BatchRequest{Graphs: []string{"wait-g"}, Algos: []string{"mwm2"}, Seeds: []uint64{1}})
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	fin, err := c.GetBatch(context.Background(), b.ID, 24*time.Hour) // clamped to 60s server-side
	if err != nil {
		t.Fatal(err)
	}
	if !fin.Terminal() {
		t.Fatalf("batch not terminal after clamped long-poll: %+v", fin)
	}
	if elapsed := time.Since(start); elapsed > maxWait {
		t.Fatalf("long-poll held for %v, beyond the %v cap", elapsed, maxWait)
	}
}

// TestDeleteRunningBatch covers DELETE of a batch that is genuinely
// mid-flight: the cancel succeeds with 200, the batch drains to canceled,
// and a repeat DELETE conflicts with 409.
func TestDeleteRunningBatch(t *testing.T) {
	ts, _, _ := newFullServer(t, service.Config{Workers: 1, QueueSize: 4}, service.BatchConfig{})
	c := NewClient(ts.URL, nil)
	if _, err := c.PutGraphGen(context.Background(), "running-g", GenRequest{Gen: "gnp", N: 1200, P: 0.01, Seed: 7}); err != nil {
		t.Fatal(err)
	}
	seeds := make([]uint64, 8)
	for i := range seeds {
		seeds[i] = uint64(i + 1)
	}
	b, err := c.SubmitBatch(context.Background(), BatchRequest{Graphs: []string{"running-g"}, Algos: []string{"maxis"}, Seeds: seeds})
	if err != nil {
		t.Fatal(err)
	}
	v, err := c.CancelBatch(context.Background(), b.ID)
	if err != nil {
		t.Fatalf("cancel of running batch: %v", err)
	}
	if v.State != "running" && v.State != "canceled" {
		t.Fatalf("post-cancel state %q", v.State)
	}
	fin, err := c.WaitBatch(context.Background(), b.ID, 60*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if fin.State != "canceled" {
		t.Fatalf("final state %q, want canceled", fin.State)
	}
	_, err = c.CancelBatch(context.Background(), b.ID)
	wantStatus(t, err, http.StatusConflict)
}
