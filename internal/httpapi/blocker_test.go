package httpapi

import (
	"sync"
	"testing"

	"repro/internal/graph"
	"repro/internal/registry"
)

// registerBlocker registers a test algorithm whose every run signals started
// and then parks until release is called. It replaces the old "big graph is
// hopefully slow" blockers with a barrier the test controls, so nothing here
// depends on wall-clock job duration (which a recovery replay, a race build,
// or a slow runner would stretch). release is idempotent and also runs in
// t.Cleanup, before the server fixture's svc.Close — call registerBlocker
// AFTER newTestServer/newFullServer so the cleanup order works out: a
// canceled or timed-out parked run keeps its worker occupied until the
// abandoned computation returns, and Close waits for the workers.
func registerBlocker(t *testing.T, name string) (started chan struct{}, release func()) {
	t.Helper()
	started = make(chan struct{}, 64)
	gate := make(chan struct{})
	var once sync.Once
	release = func() { once.Do(func() { close(gate) }) }
	unregister := registry.Register(name, registry.IS, func(g *graph.Graph, p registry.Params) (*registry.Result, error) {
		started <- struct{}{}
		<-gate
		return &registry.Result{Kind: registry.IS, InSet: make([]bool, g.N())}, nil
	})
	t.Cleanup(func() {
		release()
		unregister()
	})
	return started, release
}
