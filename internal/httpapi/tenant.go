package httpapi

import (
	"context"
	"net/http"
	"strings"
	"sync"

	"repro/internal/service"
	"repro/internal/tenant"
)

// This file is the multi-tenant front door (DESIGN.md §9): API-key
// authentication, per-tenant token-bucket rate limiting, tenant-scoped graph
// and batch visibility, and the bounded long-poll waiter gate. Tenancy is
// opt-in: without WithKeyring every request runs as tenant.Anonymous and the
// wire surface is byte-identical to the single-tenant server, so existing
// clients and the sweep CSVs see no difference.
//
// Scoping model: a tenant's graphs are stored under "<tenant>/<name>" — the
// tenant charset excludes "/", so scoped names cannot collide across tenants
// — and every response strips the prefix back off, making each tenant see a
// private namespace. Jobs, job groups and batches are tagged with the
// submitting tenant and GET/DELETE return 404 (not 403) across tenants, so
// the API does not leak which IDs exist.

// APIKeyHeader is the simple API-key request header. Authorization: Bearer
// works too; the header wins when both are set.
const APIKeyHeader = "X-API-Key"

// Machine-readable error codes beside CodeQueueFull. Clients switch on the
// code, not the message text.
const (
	// CodeUnauthorized marks a 401: the server runs with -keys and the
	// request carried no valid API key.
	CodeUnauthorized = "unauthorized"
	// CodeRateLimited marks a 429 from the tenant's token bucket; the
	// Retry-After header says when to try again.
	CodeRateLimited = "rate_limited"
	// CodeBodyTooLarge marks a 413: the request body exceeded the server's
	// byte bound. Deterministic for a given payload — clients must not
	// retry or fail over, and the cluster coordinator fails the cell, not
	// the worker.
	CodeBodyTooLarge = "body_too_large"
	// CodeDraining marks a 503 from a server in graceful drain: admission
	// is closed but in-flight work is finishing. Retry against another
	// replica.
	CodeDraining = "draining"
)

// defaultMaxWaiters bounds concurrent ?wait= long-polls and result streams
// per tenant (and for the anonymous tenant in open mode) when the key file
// sets no waiters= override. Each waiter parks a goroutine and a connection;
// the bound turns a waiter flood into fast snapshot responses instead of
// resource exhaustion.
const defaultMaxWaiters = 256

type tenantCtxKey struct{}

// tenantFrom returns the tenant the middleware authenticated, or Anonymous.
func tenantFrom(r *http.Request) tenant.Tenant {
	if t, ok := r.Context().Value(tenantCtxKey{}).(tenant.Tenant); ok {
		return t
	}
	return tenant.Anonymous
}

// apiKeyFrom extracts the request's API key: X-API-Key first, then
// Authorization: Bearer.
func apiKeyFrom(r *http.Request) string {
	if k := r.Header.Get(APIKeyHeader); k != "" {
		return k
	}
	auth := r.Header.Get("Authorization")
	if rest, ok := strings.CutPrefix(auth, "Bearer "); ok {
		return strings.TrimSpace(rest)
	}
	return ""
}

// tenantMiddleware authenticates and rate-limits every request when a
// keyring is configured, and stamps the resolved tenant into the request
// context either way. GET /healthz stays open so liveness probes need no
// key.
func (cfg *handlerConfig) tenantMiddleware(h http.Handler) http.Handler {
	if cfg.keyring == nil {
		return h
	}
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/healthz" {
			h.ServeHTTP(w, r)
			return
		}
		key := apiKeyFrom(r)
		if key == "" {
			writeErrCode(w, http.StatusUnauthorized, CodeUnauthorized,
				"missing API key: set "+APIKeyHeader+" or Authorization: Bearer")
			return
		}
		t, ok := cfg.keyring.Lookup(key)
		if !ok {
			writeErrCode(w, http.StatusUnauthorized, CodeUnauthorized, "invalid API key")
			return
		}
		// Only mutating methods spend rate-limit tokens: polling a batch to
		// completion is the normal client loop and must not starve the
		// tenant's own submissions.
		switch r.Method {
		case http.MethodPost, http.MethodPut, http.MethodDelete:
			if !cfg.keyring.Allow(t.ID) {
				w.Header().Set("Retry-After", "1")
				writeErrCode(w, http.StatusTooManyRequests, CodeRateLimited,
					"rate limit exceeded for tenant "+t.ID)
				return
			}
		}
		h.ServeHTTP(w, r.WithContext(context.WithValue(r.Context(), tenantCtxKey{}, t)))
	})
}

// scoped reports whether tenant scoping is active for this handler (a
// keyring is configured and the request authenticated as a named tenant).
func (cfg *handlerConfig) scoped(t tenant.Tenant) bool {
	return cfg.keyring != nil && t.ID != ""
}

// scopeGraph maps a tenant-visible graph name to its stored name.
func (cfg *handlerConfig) scopeGraph(t tenant.Tenant, name string) string {
	if !cfg.scoped(t) {
		return name
	}
	return t.ID + "/" + name
}

// unscopeGraph strips the tenant prefix off a stored graph name for
// responses. Names outside the tenant's namespace come back unchanged, but
// scoping guarantees handlers never leak them in the first place.
func (cfg *handlerConfig) unscopeGraph(t tenant.Tenant, name string) string {
	if !cfg.scoped(t) {
		return name
	}
	return strings.TrimPrefix(name, t.ID+"/")
}

// ownsBatch reports whether the request's tenant may see the batch. In open
// mode everything is visible; in keyed mode a batch is visible only to the
// tenant that submitted it.
func (cfg *handlerConfig) ownsBatch(t tenant.Tenant, v service.BatchView) bool {
	if cfg.keyring == nil {
		return true
	}
	return v.Tenant == t.ID
}

// stripBatchTenant rewrites the stored (scoped) graph names inside a batch
// response back to the tenant-visible names.
func (cfg *handlerConfig) stripBatchTenant(t tenant.Tenant, out *BatchResponse) {
	if !cfg.scoped(t) {
		return
	}
	prefix := t.ID + "/"
	for i := range out.Cells {
		out.Cells[i].Graph = strings.TrimPrefix(out.Cells[i].Graph, prefix)
	}
	for i := range out.Groups {
		out.Groups[i].Graph = strings.TrimPrefix(out.Groups[i].Graph, prefix)
	}
}

// waiterGate bounds concurrent long-poll waiters (and result streams) per
// tenant. Acquire failing means the tenant already parks its full allowance
// of connections; the caller degrades to an immediate snapshot (?wait=) or a
// 429 (streams) with Retry-After so clients back off instead of piling on.
type waiterGate struct {
	mu     sync.Mutex
	counts map[string]int
}

func newWaiterGate() *waiterGate {
	return &waiterGate{counts: make(map[string]int)}
}

func (g *waiterGate) acquire(t tenant.Tenant) bool {
	limit := t.MaxWaiters
	if limit <= 0 {
		limit = defaultMaxWaiters
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.counts[t.ID] >= limit {
		return false
	}
	g.counts[t.ID]++
	return true
}

func (g *waiterGate) release(t tenant.Tenant) {
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.counts[t.ID]--; g.counts[t.ID] <= 0 {
		delete(g.counts, t.ID)
	}
}
