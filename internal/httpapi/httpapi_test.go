package httpapi

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro"
	"repro/internal/service"
	"repro/internal/store"
)

func newTestServer(t *testing.T, cfg service.Config) (*httptest.Server, *service.Service) {
	t.Helper()
	ts, svc, _ := newFullServer(t, cfg, service.BatchConfig{})
	return ts, svc
}

func newFullServer(t *testing.T, cfg service.Config, bcfg service.BatchConfig) (*httptest.Server, *service.Service, *store.Store) {
	t.Helper()
	svc := service.New(cfg)
	st := store.New(store.Config{})
	batches := service.NewBatches(svc, st, bcfg)
	ts := httptest.NewServer(NewHandler(svc, st, batches))
	t.Cleanup(func() {
		ts.Close()
		svc.Close()
	})
	return ts, svc, st
}

func postJob(t *testing.T, ts *httptest.Server, body string) (JobResponse, int) {
	t.Helper()
	resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var jr JobResponse
	if resp.StatusCode == http.StatusAccepted {
		if err := json.NewDecoder(resp.Body).Decode(&jr); err != nil {
			t.Fatal(err)
		}
	}
	return jr, resp.StatusCode
}

func pollDone(t *testing.T, ts *httptest.Server, id string) JobResponse {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for time.Now().Before(deadline) {
		resp, err := http.Get(ts.URL + "/v1/jobs/" + id)
		if err != nil {
			t.Fatal(err)
		}
		var jr JobResponse
		err = json.NewDecoder(resp.Body).Decode(&jr)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		switch jr.State {
		case "done", "failed", "canceled":
			return jr
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("job %s never finished", id)
	return JobResponse{}
}

// encodeGraph renders g in the text format the service accepts inline.
func encodeGraph(t *testing.T, g *repro.Graph) string {
	t.Helper()
	var buf bytes.Buffer
	if err := repro.WriteGraph(&buf, g); err != nil {
		t.Fatal(err)
	}
	return buf.String()
}

// TestConcurrentJobsAcrossKinds is the acceptance scenario: ≥ 8 jobs
// submitted in parallel across the three algorithm kinds (IS, matching,
// NMIS), polled to completion, results verified against the facade checkers,
// and a cache hit observed on an identical resubmission.
func TestConcurrentJobsAcrossKinds(t *testing.T) {
	ts, _ := newTestServer(t, service.Config{Workers: 4})

	type spec struct {
		algo string
		seed uint64
	}
	jobs := []spec{
		{"maxis", 1}, {"maxis-det", 2}, {"seq-maxis", 3}, // kind: is
		{"mwm2", 4}, {"fastmcm", 5}, {"proposal", 6}, {"oneeps", 7}, // kind: matching
		{"nmis", 8}, {"nmis", 9}, // kind: nmis
	}
	// Reconstruct each input graph locally to verify the returned sets.
	buildGraph := func(seed uint64) *repro.Graph {
		g := repro.GNP(24, 0.2, seed)
		repro.AssignUniformNodeWeights(g, 50, seed+1)
		repro.AssignUniformEdgeWeights(g, 50, seed+2)
		return g
	}

	ids := make([]string, len(jobs))
	var wg sync.WaitGroup
	for i, sp := range jobs {
		i, sp := i, sp
		wg.Add(1)
		go func() {
			defer wg.Done()
			body := fmt.Sprintf(
				`{"algo":%q,"gen":{"gen":"gnp","n":24,"p":0.2,"seed":%d,"maxw":50},"params":{"seed":%d}}`,
				sp.algo, sp.seed, sp.seed)
			jr, code := postJob(t, ts, body)
			if code != http.StatusAccepted {
				t.Errorf("%s: status %d", sp.algo, code)
				return
			}
			ids[i] = jr.ID
		}()
	}
	wg.Wait()

	kinds := map[string]bool{}
	for i, sp := range jobs {
		if ids[i] == "" {
			t.Fatalf("job %d (%s) was not accepted", i, sp.algo)
		}
		jr := pollDone(t, ts, ids[i])
		if jr.State != "done" {
			t.Fatalf("%s: state %s, error %q", sp.algo, jr.State, jr.Error)
		}
		if jr.Result == nil {
			t.Fatalf("%s: done with no result", sp.algo)
		}
		kinds[jr.Result.Kind] = true

		g := buildGraph(sp.seed)
		switch jr.Result.Kind {
		case "is", "nmis":
			if err := repro.CheckIndependentSet(g, jr.Result.InSet); err != nil {
				t.Fatalf("%s: %v", sp.algo, err)
			}
		case "matching":
			if err := repro.CheckMatching(g, jr.Result.Edges); err != nil {
				t.Fatalf("%s: %v", sp.algo, err)
			}
		default:
			t.Fatalf("%s: unknown kind %q", sp.algo, jr.Result.Kind)
		}
	}
	for _, k := range []string{"is", "matching", "nmis"} {
		if !kinds[k] {
			t.Fatalf("no completed job of kind %q", k)
		}
	}

	// Identical resubmission of the first job must be a cache hit.
	body := `{"algo":"maxis","gen":{"gen":"gnp","n":24,"p":0.2,"seed":1,"maxw":50},"params":{"seed":1}}`
	jr, code := postJob(t, ts, body)
	if code != http.StatusAccepted {
		t.Fatalf("resubmission status %d", code)
	}
	if !jr.CacheHit || jr.State != "done" {
		t.Fatalf("resubmission cacheHit=%t state=%s, want true/done", jr.CacheHit, jr.State)
	}

	// The metrics endpoint must agree.
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var m service.Metrics
	if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
		t.Fatal(err)
	}
	if m.CacheHits < 1 {
		t.Fatalf("metrics report %d cache hits, want ≥ 1", m.CacheHits)
	}
	if m.Completed < uint64(len(jobs)) {
		t.Fatalf("metrics report %d completed, want ≥ %d", m.Completed, len(jobs))
	}
}

func TestSubmitInlineGraph(t *testing.T) {
	ts, _ := newTestServer(t, service.Config{Workers: 2})
	g := repro.GNP(16, 0.25, 42)
	repro.AssignUniformEdgeWeights(g, 30, 43)

	req := map[string]any{
		"algo":   "mwm2",
		"graph":  encodeGraph(t, g),
		"params": map[string]any{"seed": 5},
	}
	body, _ := json.Marshal(req)
	jr, code := postJob(t, ts, string(body))
	if code != http.StatusAccepted {
		t.Fatalf("status %d", code)
	}
	done := pollDone(t, ts, jr.ID)
	if done.State != "done" {
		t.Fatalf("state %s, error %q", done.State, done.Error)
	}
	if err := repro.CheckMatching(g, done.Result.Edges); err != nil {
		t.Fatal(err)
	}

	// The HTTP result must agree with the direct facade call for the same
	// seed — the whole stack dispatches through one registry.
	direct, err := repro.MWM2(g, repro.WithSeed(5))
	if err != nil {
		t.Fatal(err)
	}
	if done.Result.Weight != direct.Weight {
		t.Fatalf("service weight %d, facade weight %d", done.Result.Weight, direct.Weight)
	}
}

func TestCancellation(t *testing.T) {
	ts, _ := newTestServer(t, service.Config{Workers: 1})
	started, release := registerBlocker(t, "park-cancel")

	// Park the lone worker on a channel-gated blocker, then cancel a job
	// queued behind it. The barrier replaces the old "four big graphs are
	// hopefully slow enough" sizing: the victim provably cannot run until
	// release, on any runner.
	b, code := postJob(t, ts, `{"algo":"park-cancel","gen":{"gen":"gnp","n":20,"p":0.2,"seed":1}}`)
	if code != http.StatusAccepted {
		t.Fatalf("busy job status %d", code)
	}
	blockers := []string{b.ID}
	<-started // the worker is parked
	victim := `{"algo":"mwm2","gen":{"gen":"gnp","n":20,"p":0.2,"seed":99}}`
	v, code := postJob(t, ts, victim)
	if code != http.StatusAccepted {
		t.Fatalf("victim status %d", code)
	}

	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/"+v.ID, nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("cancel status %d", resp.StatusCode)
	}
	if jr := pollDone(t, ts, v.ID); jr.State != "canceled" {
		t.Fatalf("victim state %s, want canceled", jr.State)
	}
	release()
	for _, id := range blockers {
		pollDone(t, ts, id)
	}

	// Canceling a finished job conflicts.
	req2, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/"+v.ID, nil)
	resp2, err := http.DefaultClient.Do(req2)
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusConflict {
		t.Fatalf("re-cancel status %d, want 409", resp2.StatusCode)
	}
}

func TestBadRequests(t *testing.T) {
	ts, _ := newTestServer(t, service.Config{Workers: 1})
	cases := map[string]string{
		"malformed graph":       `{"algo":"maxis","graph":"this is not a graph"}`,
		"truncated graph":       `{"algo":"maxis","graph":"3 5\n1 1 1\n0 1 1\n"}`,
		"missing graph":         `{"algo":"maxis"}`,
		"both graph and gen":    `{"algo":"maxis","graph":"1 0\n1\n","gen":{"gen":"gnp","n":4,"p":0.5}}`,
		"unknown algo":          `{"algo":"quantum","gen":{"gen":"gnp","n":4,"p":0.5}}`,
		"unknown generator":     `{"algo":"maxis","gen":{"gen":"hypercube","n":4}}`,
		"bad generator param":   `{"algo":"maxis","gen":{"gen":"gnp","n":-4,"p":0.5}}`,
		"bad algo param":        `{"algo":"fastmcm","gen":{"gen":"gnp","n":8,"p":0.5},"params":{"eps":-1}}`,
		"bad model":             `{"algo":"maxis","gen":{"gen":"gnp","n":8,"p":0.5},"params":{"model":"quantum"}}`,
		"not json":              `{{{`,
		"unknown field":         `{"algo":"maxis","gne":{"gen":"gnp","n":4,"p":0.5}}`,
		"oversized node header": `{"algo":"maxis","graph":"1000000000 0\n"}`,
		"oversized edge header": `{"algo":"maxis","graph":"4 999999999\n1 1 1 1\n"}`,
	}
	for name, body := range cases {
		if _, code := postJob(t, ts, body); code != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400", name, code)
		}
	}

	resp, err := http.Get(ts.URL + "/v1/jobs/j99999999")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown job status %d, want 404", resp.StatusCode)
	}
}

func TestListingAndHealth(t *testing.T) {
	ts, _ := newTestServer(t, service.Config{Workers: 1})

	resp, err := http.Get(ts.URL + "/v1/algorithms")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var listing struct {
		Algorithms []struct {
			Name string `json:"name"`
			Kind string `json:"kind"`
		} `json:"algorithms"`
		Generators []struct {
			Name string `json:"name"`
		} `json:"generators"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&listing); err != nil {
		t.Fatal(err)
	}
	if len(listing.Algorithms) != 11 {
		t.Fatalf("listed %d algorithms, want 11", len(listing.Algorithms))
	}
	if len(listing.Generators) != 11 {
		t.Fatalf("listed %d generators, want 11", len(listing.Generators))
	}

	hr, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	hr.Body.Close()
	if hr.StatusCode != http.StatusOK {
		t.Fatalf("healthz status %d", hr.StatusCode)
	}
}
