package httpapi

import (
	"context"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/service"
	"repro/internal/store"
	"repro/internal/tenant"
)

// newTenantServer builds a keyed single-node server the way cmd/reprod does:
// the keyring gates the HTTP surface and feeds the service's fair-share
// admission limits. keyLines is the key-file body (use tenant.HashKey).
func newTenantServer(t *testing.T, keyLines string, cfg service.Config) (*httptest.Server, *tenant.Keyring) {
	t.Helper()
	path := filepath.Join(t.TempDir(), "keys")
	if err := os.WriteFile(path, []byte(keyLines), 0o600); err != nil {
		t.Fatal(err)
	}
	kr, err := tenant.Load(path)
	if err != nil {
		t.Fatal(err)
	}
	cfg.TenantLimits = func(id string) service.TenantLimits {
		tn, ok := kr.ByID(id)
		if !ok {
			return service.TenantLimits{}
		}
		return service.TenantLimits{Weight: tn.Weight, MaxRunning: tn.MaxCells, QueueSize: tn.QueueSize}
	}
	svc := service.New(cfg)
	st := store.New(store.Config{})
	batches := service.NewBatches(svc, st, service.BatchConfig{})
	ts := httptest.NewServer(NewHandler(svc, st, batches, WithKeyring(kr)))
	t.Cleanup(func() {
		ts.Close()
		svc.Close()
	})
	return ts, kr
}

// doRaw issues one request with an optional API key and returns the response
// with its body drained into a decoded error envelope (nil for 2xx).
func doRaw(t *testing.T, method, url, key, body string) (*http.Response, map[string]any) {
	t.Helper()
	req, err := http.NewRequest(method, url, strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	if key != "" {
		req.Header.Set(APIKeyHeader, key)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	var env map[string]any
	_ = json.Unmarshal(raw, &env)
	return resp, env
}

func TestTenantAuthRequired(t *testing.T) {
	keys := "alice " + tenant.HashKey("alice-key") + "\n"
	ts, _ := newTenantServer(t, keys, service.Config{Workers: 1})

	resp, env := doRaw(t, http.MethodGet, ts.URL+"/v1/graphs", "", "")
	if resp.StatusCode != http.StatusUnauthorized || env["code"] != CodeUnauthorized {
		t.Fatalf("no key: status %d, envelope %v", resp.StatusCode, env)
	}
	resp, env = doRaw(t, http.MethodGet, ts.URL+"/v1/graphs", "wrong-key", "")
	if resp.StatusCode != http.StatusUnauthorized || env["code"] != CodeUnauthorized {
		t.Fatalf("bad key: status %d, envelope %v", resp.StatusCode, env)
	}
	resp, _ = doRaw(t, http.MethodGet, ts.URL+"/v1/graphs", "alice-key", "")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("valid key: status %d", resp.StatusCode)
	}

	// Authorization: Bearer is the alternative spelling.
	req, _ := http.NewRequest(http.MethodGet, ts.URL+"/v1/graphs", nil)
	req.Header.Set("Authorization", "Bearer alice-key")
	bresp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	bresp.Body.Close()
	if bresp.StatusCode != http.StatusOK {
		t.Fatalf("bearer key: status %d", bresp.StatusCode)
	}

	// Liveness stays open for probes.
	hr, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	hr.Body.Close()
	if hr.StatusCode != http.StatusOK {
		t.Fatalf("healthz without key: status %d", hr.StatusCode)
	}
}

// TestTenantIsolation is the cross-tenant visibility contract: each tenant
// sees a private graph namespace (with unscoped names on the wire) and
// another tenant's batches and jobs answer 404, not 403.
func TestTenantIsolation(t *testing.T) {
	keys := "alice " + tenant.HashKey("alice-key") + "\nbob " + tenant.HashKey("bob-key") + "\n"
	ts, _ := newTenantServer(t, keys, service.Config{Workers: 2})
	ctx := context.Background()
	alice := NewClient(ts.URL, nil).WithAPIKey("alice-key")
	bob := NewClient(ts.URL, nil).WithAPIKey("bob-key")

	info, err := alice.PutGraphGen(ctx, "g", GenRequest{Gen: "gnp", N: 20, P: 0.25, Seed: 5, MaxW: 16})
	if err != nil {
		t.Fatal(err)
	}
	if info.Name != "g" {
		t.Fatalf("upload echoed name %q, want the tenant-visible %q", info.Name, "g")
	}

	// Bob uploads a graph under the SAME name: both live side by side.
	if _, err := bob.PutGraphGen(ctx, "g", GenRequest{Gen: "gnp", N: 12, P: 0.4, Seed: 9, MaxW: 8}); err != nil {
		t.Fatalf("same name in another tenant's namespace: %v", err)
	}
	bg, err := bob.GetGraph(ctx, "g")
	if err != nil || bg.Nodes != 12 {
		t.Fatalf("bob's g = %+v, %v (want his 12-node graph)", bg, err)
	}
	ag, err := alice.GetGraph(ctx, "g")
	if err != nil || ag.Nodes != 20 {
		t.Fatalf("alice's g = %+v, %v (want her 20-node graph)", ag, err)
	}
	als, err := alice.ListGraphs(ctx)
	if err != nil || len(als) != 1 || als[0].Name != "g" {
		t.Fatalf("alice's listing %+v, %v", als, err)
	}

	// Alice runs a batch; bob cannot see, cancel, or stream it.
	b, err := alice.SubmitBatch(ctx, BatchRequest{Graphs: []string{"g"}, Algos: []string{"mwm2"}, Seeds: []uint64{1, 2}})
	if err != nil {
		t.Fatal(err)
	}
	fin, err := alice.WaitBatch(ctx, b.ID, 60*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if fin.State != "done" {
		t.Fatalf("batch %+v", fin)
	}
	for _, cell := range fin.Cells {
		if cell.Graph != "g" {
			t.Fatalf("cell leaks scoped graph name %q", cell.Graph)
		}
	}
	_, err = bob.GetBatch(ctx, b.ID, 0)
	wantStatus(t, err, http.StatusNotFound)
	_, err = bob.CancelBatch(ctx, b.ID)
	wantStatus(t, err, http.StatusNotFound)
	_, err = bob.StreamBatch(ctx, b.ID, 0, func(BatchCellView) error { return nil })
	wantStatus(t, err, http.StatusNotFound)

	// Same for single jobs.
	jr, err := alice.SubmitJob(ctx, SubmitRequest{Algo: "mwm2", GraphName: "g", Params: &ParamsRequest{Seed: 3}})
	if err != nil {
		t.Fatal(err)
	}
	_, err = bob.GetJob(ctx, jr.ID)
	wantStatus(t, err, http.StatusNotFound)
	_, err = bob.CancelJob(ctx, jr.ID)
	wantStatus(t, err, http.StatusNotFound)
	if _, err := alice.GetJob(ctx, jr.ID); err != nil {
		t.Fatalf("owner blocked from own job: %v", err)
	}

	// Bob deleting alice's graph 404s and leaves it intact.
	err = bob.DeleteGraph(ctx, "missing-name")
	wantStatus(t, err, http.StatusNotFound)
	if _, err := alice.GetGraph(ctx, "g"); err != nil {
		t.Fatalf("alice's graph gone: %v", err)
	}
}

// TestTenantRateLimit429 pins the token-bucket surface: mutating requests
// beyond the burst answer 429 with the machine-readable code and a
// Retry-After, while reads stay unmetered.
func TestTenantRateLimit429(t *testing.T) {
	keys := "rl " + tenant.HashKey("rl-key") + " rate=0.001 burst=2\n"
	ts, _ := newTenantServer(t, keys, service.Config{Workers: 1})

	body := `{"gen":{"gen":"gnp","n":8,"p":0.5,"seed":1}}`
	for i := 0; i < 2; i++ {
		resp, env := doRaw(t, http.MethodPut, ts.URL+"/v1/graphs/g"+string(rune('a'+i)), "rl-key", body)
		if resp.StatusCode >= 300 {
			t.Fatalf("burst request %d: status %d %v", i, resp.StatusCode, env)
		}
	}
	resp, env := doRaw(t, http.MethodPut, ts.URL+"/v1/graphs/gc", "rl-key", body)
	if resp.StatusCode != http.StatusTooManyRequests || env["code"] != CodeRateLimited {
		t.Fatalf("over burst: status %d, envelope %v", resp.StatusCode, env)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("429 without Retry-After")
	}
	// Reads are not metered: polling must keep working while the bucket is
	// empty.
	for i := 0; i < 5; i++ {
		resp, _ := doRaw(t, http.MethodGet, ts.URL+"/v1/graphs", "rl-key", "")
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("read %d rate limited: status %d", i, resp.StatusCode)
		}
	}
}

// TestTenantQueueBackpressure saturates one tenant's private queue bound and
// asserts the 503 is per-tenant: the capped tenant sees queue_full while the
// other keeps submitting.
func TestTenantQueueBackpressure(t *testing.T) {
	keys := "lim " + tenant.HashKey("lim-key") + " queue=1\n" +
		"big " + tenant.HashKey("big-key") + "\n"
	ts, _ := newTenantServer(t, keys, service.Config{Workers: 1, QueueSize: 64})
	started, release := registerBlocker(t, "park-tenant-queue")
	ctx := context.Background()
	lim := NewClient(ts.URL, nil).WithAPIKey("lim-key")
	big := NewClient(ts.URL, nil).WithAPIKey("big-key")

	// Park the lone worker with big's job so later submissions stay queued.
	if _, err := big.SubmitJob(ctx, SubmitRequest{Algo: "park-tenant-queue", Gen: &GenRequest{Gen: "gnp", N: 8, P: 0.5, Seed: 1}}); err != nil {
		t.Fatal(err)
	}
	<-started

	submit := func(c *Client, seed uint64) error {
		_, err := c.SubmitJob(ctx, SubmitRequest{Algo: "mwm2", Gen: &GenRequest{Gen: "gnp", N: 8, P: 0.5, Seed: seed, MaxW: 4}, Params: &ParamsRequest{Seed: seed}})
		return err
	}
	if err := submit(lim, 1); err != nil {
		t.Fatalf("first queued job within the bound: %v", err)
	}
	err := submit(lim, 2)
	wantStatus(t, err, http.StatusServiceUnavailable)
	var apiErr *APIError
	if !errors.As(err, &apiErr) || apiErr.Code != CodeQueueFull {
		t.Fatalf("over-bound submit error %v, want code %q", err, CodeQueueFull)
	}
	// The shared server is nowhere near full: the other tenant still admits.
	for seed := uint64(10); seed < 14; seed++ {
		if err := submit(big, seed); err != nil {
			t.Fatalf("uncapped tenant rejected: %v", err)
		}
	}
	release()
}

// TestTenantFairShareUnderSaturation is the acceptance scenario: one worker,
// a big tenant with a deep backlog, a small tenant with one batch — the
// small tenant's batch completes while the big tenant still has most of its
// cells pending, instead of waiting behind the whole backlog.
func TestTenantFairShareUnderSaturation(t *testing.T) {
	keys := "big " + tenant.HashKey("big-key") + "\n" +
		"small " + tenant.HashKey("small-key") + "\n"
	ts, _ := newTenantServer(t, keys, service.Config{Workers: 1, QueueSize: 64})
	started, release := registerBlocker(t, "park-fair-share")
	ctx := context.Background()
	big := NewClient(ts.URL, nil).WithAPIKey("big-key")
	small := NewClient(ts.URL, nil).WithAPIKey("small-key")

	// Park the worker so both tenants' batches queue up behind it, then
	// submit big's saturating batch first and small's single cell second.
	if _, err := big.SubmitJob(ctx, SubmitRequest{Algo: "park-fair-share", Gen: &GenRequest{Gen: "gnp", N: 8, P: 0.5, Seed: 1}}); err != nil {
		t.Fatal(err)
	}
	<-started
	if _, err := big.PutGraphGen(ctx, "bg", GenRequest{Gen: "gnp", N: 600, P: 0.02, Seed: 2}); err != nil {
		t.Fatal(err)
	}
	if _, err := small.PutGraphGen(ctx, "sg", GenRequest{Gen: "gnp", N: 24, P: 0.2, Seed: 3, MaxW: 8}); err != nil {
		t.Fatal(err)
	}
	bigSeeds := make([]uint64, 8)
	for i := range bigSeeds {
		bigSeeds[i] = uint64(i + 1)
	}
	bb, err := big.SubmitBatch(ctx, BatchRequest{Graphs: []string{"bg"}, Algos: []string{"maxis"}, Seeds: bigSeeds})
	if err != nil {
		t.Fatal(err)
	}
	sb, err := small.SubmitBatch(ctx, BatchRequest{Graphs: []string{"sg"}, Algos: []string{"mwm2"}, Seeds: []uint64{1}})
	if err != nil {
		t.Fatal(err)
	}

	release()
	sfin, err := small.WaitBatch(ctx, sb.ID, 60*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if sfin.State != "done" {
		t.Fatalf("small batch %+v", sfin)
	}
	bview, err := big.GetBatch(ctx, bb.ID, 0)
	if err != nil {
		t.Fatal(err)
	}
	if bview.Done >= bview.Total {
		t.Fatalf("small tenant's batch finished only after big's %d-cell backlog — admission is FIFO, not fair-share", bview.Total)
	}
	if _, err := big.WaitBatch(ctx, bb.ID, 120*time.Second); err != nil {
		t.Fatal(err)
	}
}

// TestWaiterGateDegrades pins the bounded long-poll contract: a tenant at
// its waiter allowance gets an immediate snapshot with Retry-After on
// ?wait= (not an error), and a clean 429 on a new stream.
func TestWaiterGateDegrades(t *testing.T) {
	keys := "w " + tenant.HashKey("w-key") + " waiters=1\n"
	ts, _ := newTenantServer(t, keys, service.Config{Workers: 1})
	started, release := registerBlocker(t, "park-waiters")
	defer release()
	ctx := context.Background()
	c := NewClient(ts.URL, nil).WithAPIKey("w-key")

	if _, err := c.PutGraphGen(ctx, "g", GenRequest{Gen: "gnp", N: 8, P: 0.5, Seed: 1}); err != nil {
		t.Fatal(err)
	}
	b, err := c.SubmitBatch(ctx, BatchRequest{Graphs: []string{"g"}, Algos: []string{"park-waiters"}, Seeds: []uint64{1}})
	if err != nil {
		t.Fatal(err)
	}
	<-started // the batch is genuinely mid-flight; ?wait= would park

	// Occupy the single waiter slot with a stream: its 200 header is written
	// only after the slot is acquired, so once Do returns the gate is
	// provably engaged.
	sreq, _ := http.NewRequest(http.MethodGet, ts.URL+"/v1/batches/"+b.ID+"/stream", nil)
	sreq.Header.Set(APIKeyHeader, "w-key")
	sresp, err := http.DefaultClient.Do(sreq)
	if err != nil {
		t.Fatal(err)
	}
	defer sresp.Body.Close()
	if sresp.StatusCode != http.StatusOK {
		t.Fatalf("first stream status %d", sresp.StatusCode)
	}

	// ?wait= beyond the allowance degrades to an immediate snapshot with a
	// Retry-After hint, not an error.
	start := time.Now()
	resp, _ := doRaw(t, http.MethodGet, ts.URL+"/v1/batches/"+b.ID+"?wait=10s", "w-key", "")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("degraded long-poll status %d, want 200 snapshot", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("degraded long-poll carries no Retry-After")
	}
	if took := time.Since(start); took > 5*time.Second {
		t.Fatalf("degraded long-poll still parked for %v", took)
	}

	// A second stream beyond the allowance is an explicit 429.
	s2, env := doRaw(t, http.MethodGet, ts.URL+"/v1/batches/"+b.ID+"/stream", "w-key", "")
	if s2.StatusCode != http.StatusTooManyRequests || env["code"] != CodeRateLimited {
		t.Fatalf("stream over waiter bound: status %d, envelope %v", s2.StatusCode, env)
	}

	release()
	if _, err := c.WaitBatch(ctx, b.ID, 60*time.Second); err != nil {
		t.Fatal(err)
	}
}

// TestTenantPromMetrics checks the per-tenant Prometheus families appear
// with tenant labels once keyed traffic has flowed.
func TestTenantPromMetrics(t *testing.T) {
	keys := "alice " + tenant.HashKey("alice-key") + "\n"
	ts, _ := newTenantServer(t, keys, service.Config{Workers: 2})
	ctx := context.Background()
	alice := NewClient(ts.URL, nil).WithAPIKey("alice-key")
	if _, err := alice.PutGraphGen(ctx, "g", GenRequest{Gen: "gnp", N: 16, P: 0.25, Seed: 2, MaxW: 8}); err != nil {
		t.Fatal(err)
	}
	b, err := alice.SubmitBatch(ctx, BatchRequest{Graphs: []string{"g"}, Algos: []string{"mwm2"}, Seeds: []uint64{1, 2}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := alice.WaitBatch(ctx, b.ID, 60*time.Second); err != nil {
		t.Fatal(err)
	}
	text, err := alice.PromMetrics(ctx)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		`repro_tenant_jobs_submitted_total{tenant="alice"} 2`,
		`repro_tenant_jobs_completed_total{tenant="alice"} 2`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("prometheus text missing %q", want)
		}
	}
}
