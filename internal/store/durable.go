package store

// Durability (DESIGN.md §8): when Config.WALDir is set the store journals
// every name binding to an internal/wal log so a restart recovers the full
// registry. The discipline is write-ahead with spill-at-put: Put first
// ensures the graph's content-addressed RGD1 spill file exists (the bytes),
// then appends a put record (the binding), then mutates memory; Delete
// appends its record before unbinding. On boot every recovered name is
// indexed as spilled — nothing is eagerly loaded — and the first Acquire
// revives it by mmapping the spill file, so recovery cost is O(names), not
// O(bytes).
//
// Replay idempotence: put records overwrite any previous binding of the same
// name (last write wins), delete records of unknown names are no-ops, and
// records of unknown types are skipped, so a prefix interrupted anywhere
// re-applies cleanly.

import (
	"encoding/json"
	"fmt"
	"log/slog"
	"time"

	"repro/internal/wal"
)

// Store WAL record types. Payloads are JSON so records stay debuggable with
// od/jq and new fields are backward compatible.
const (
	recPut    = 1 // putPayload: bind a name to a fingerprint
	recDelete = 2 // deletePayload: unbind a name
)

type putPayload struct {
	Name    string    `json:"name"`
	FP      string    `json:"fp"`
	Gen     string    `json:"gen,omitempty"`
	Nodes   int       `json:"n"`
	Edges   int       `json:"m"`
	Created time.Time `json:"created"`
}

type deletePayload struct {
	Name string `json:"name"`
}

// snapshotPayload is the full registry state: one entry per live name. A
// snapshot with N entries replaces replaying the records that built them.
type snapshotPayload struct {
	Entries []putPayload `json:"entries"`
}

// Open is New plus durability: when cfg.WALDir is set it replays the
// directory's log into the spilled index (graphs revive lazily from
// cfg.SpillDir on first Acquire) and journals every subsequent Put and
// Delete. SpillDir defaults to <WALDir>/spill when unset, because the spill
// files ARE the durable graph bytes the log's bindings point at.
func Open(cfg Config) (*Store, error) {
	if cfg.WALDir != "" && cfg.SpillDir == "" {
		cfg.SpillDir = cfg.WALDir + "/spill"
	}
	s := New(cfg)
	if cfg.WALDir == "" {
		return s, nil
	}
	l, rec, err := wal.Open(cfg.WALDir, wal.Options{
		SegmentBytes: cfg.WALSegmentBytes,
		Hooks:        cfg.WALHooks,
	})
	if err != nil {
		return nil, err
	}
	s.wal = l
	if rec.Snapshot != nil {
		var snap snapshotPayload
		if err := json.Unmarshal(rec.Snapshot, &snap); err != nil {
			l.Close()
			return nil, fmt.Errorf("store: corrupt wal snapshot: %w", err)
		}
		for _, e := range snap.Entries {
			s.applyPut(e)
		}
	}
	for _, r := range rec.Records {
		switch r.Type {
		case recPut:
			var p putPayload
			if err := json.Unmarshal(r.Data, &p); err != nil {
				continue // malformed but CRC-valid: skip, keep the rest
			}
			s.applyPut(p)
		case recDelete:
			var p deletePayload
			if err := json.Unmarshal(r.Data, &p); err != nil {
				continue
			}
			delete(s.spilled, p.Name)
		default:
			// A record from a newer store version: skipping is the
			// compatibility contract.
		}
	}
	if s.logger() != nil && (len(s.spilled) > 0 || rec.TornTail) {
		s.logger().Info("wal_replay",
			"component", "store",
			"names", len(s.spilled),
			"records", len(rec.Records),
			"segments", rec.Segments,
			"torn_tail", rec.TornTail,
			"had_snapshot", rec.Snapshot != nil)
	}
	return s, nil
}

func (s *Store) logger() *slog.Logger { return s.cfg.Logger }

// applyPut indexes one recovered binding as spilled. Last write wins so a
// put record after a delete of the same name rebinds it.
func (s *Store) applyPut(p putPayload) {
	if ValidName(p.Name) != nil || p.FP == "" {
		return
	}
	s.spilled[p.Name] = spillRec{fp: p.FP, gen: p.Gen, n: p.Nodes, m: p.Edges, created: p.Created}
}

// journalPutLocked makes a new binding durable before it lands in memory:
// spill file first (content), then a synced put record (binding). A failed
// spill write degrades the name to non-durable — in-memory registration
// still succeeds, matching the spill-on-evict best-effort contract — while a
// failed log append (crashed or closed log) fails the Put, because the
// caller was promised durability. Must be called with s.mu held.
func (s *Store) journalPutLocked(name string, pl *payload, gen string, created time.Time) error {
	if s.wal == nil {
		return nil
	}
	if err := s.spillFileLocked(pl); err != nil {
		if s.logger() != nil {
			s.logger().Warn("wal_spill_failed", "name", name, "err", err)
		}
		return nil
	}
	data, err := json.Marshal(putPayload{
		Name: name, FP: pl.fp, Gen: gen,
		Nodes: pl.g.N(), Edges: pl.g.M(), Created: created,
	})
	if err != nil {
		return err
	}
	if err := s.wal.AppendSync(recPut, data); err != nil {
		return fmt.Errorf("store: wal append: %w", err)
	}
	// No snapshot here: the binding is not in the maps yet, and a snapshot
	// supersedes the segment holding the record just appended — compacting
	// now would drop an acknowledged put. The caller snapshots after the
	// mutation (the crash-point harness caught exactly this ordering).
	return nil
}

// journalDeleteLocked appends the unbinding before it happens (write-ahead:
// a crash between append and map mutation replays the delete). Must be
// called with s.mu held.
func (s *Store) journalDeleteLocked(name string) error {
	if s.wal == nil {
		return nil
	}
	data, _ := json.Marshal(deletePayload{Name: name})
	if err := s.wal.AppendSync(recDelete, data); err != nil {
		return fmt.Errorf("store: wal append: %w", err)
	}
	return nil
}

// maybeSnapshotLocked compacts the log once SnapshotEvery records have
// accumulated. It must run only AFTER the journaled mutation is applied to
// the maps — a snapshot serializes the maps and supersedes the segments, so
// snapshotting between append and apply loses the acknowledged record.
// Failure is logged and retried after the next record: the log is longer
// than ideal, never wrong. Must be called with s.mu held.
func (s *Store) maybeSnapshotLocked() {
	if s.wal == nil || s.cfg.SnapshotEvery <= 0 || s.wal.RecordsSinceSnapshot() < uint64(s.cfg.SnapshotEvery) {
		return
	}
	if err := s.snapshotLocked(); err != nil && s.logger() != nil {
		s.logger().Warn("wal_snapshot_failed", "component", "store", "err", err)
	}
}

func (s *Store) snapshotLocked() error {
	snap := snapshotPayload{Entries: make([]putPayload, 0, len(s.names)+len(s.spilled))}
	for name, rec := range s.names {
		// A resident name without a spill file (spill failed at Put) was
		// never durable; keep it out of the snapshot too.
		if err := s.spillFileLocked(rec.pl); err != nil {
			continue
		}
		snap.Entries = append(snap.Entries, putPayload{
			Name: name, FP: rec.pl.fp, Gen: rec.gen,
			Nodes: rec.pl.g.N(), Edges: rec.pl.g.M(), Created: rec.created,
		})
	}
	for name, sp := range s.spilled {
		snap.Entries = append(snap.Entries, putPayload{
			Name: name, FP: sp.fp, Gen: sp.gen,
			Nodes: sp.n, Edges: sp.m, Created: sp.created,
		})
	}
	data, err := json.Marshal(snap)
	if err != nil {
		return err
	}
	return s.wal.WriteSnapshot(data)
}

// Close flushes a final snapshot (so the next Open replays one record-free
// snapshot instead of the whole log) and closes the WAL. Stores opened
// without a WALDir close trivially.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.wal == nil {
		return nil
	}
	snapErr := s.snapshotLocked()
	closeErr := s.wal.Close()
	s.wal = nil
	if snapErr != nil && snapErr != wal.ErrCrashed {
		return snapErr
	}
	return closeErr
}

// WALMetrics returns the underlying log's counters; ok is false when the
// store was opened without durability.
func (s *Store) WALMetrics() (wal.Metrics, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.wal == nil {
		return wal.Metrics{}, false
	}
	return s.wal.Metrics(), true
}
