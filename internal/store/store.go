// Package store is the named graph registry behind the batch-sweep
// subsystem: clients register a graph once — uploaded in the graph.Encode
// text format or described by a registry generator spec — under a name, and
// every later job or batch references it by that name instead of re-shipping
// the adjacency list.
//
// Layer (DESIGN.md §2): store sits beside internal/service, above
// internal/registry and internal/graph; it imports only those substrates and
// is imported by the service's batch engine and the HTTP front-end.
//
// Concurrency and ownership: a Store is safe for concurrent use (one
// internal mutex guards all state). Stored graphs are deduplicated by
// registry.Fingerprint — two names whose contents hash identically share one
// *graph.Graph payload — so every graph handed out by Acquire is shared and
// MUST be treated as read-only (topology is immutable by construction;
// callers must not touch weights either). Acquire pins a name against
// Delete and capacity eviction until its release function is called; pins
// are how a running batch keeps its input alive.
package store

import (
	"errors"
	"fmt"
	"log/slog"
	"os"
	"path/filepath"
	"slices"
	"strings"
	"sync"
	"time"

	"repro/internal/graph"
	"repro/internal/registry"
	"repro/internal/wal"
)

// Store errors surfaced to clients.
var (
	ErrNotFound = errors.New("store: no such graph")
	ErrPinned   = errors.New("store: graph is pinned by a running batch")
	ErrExists   = errors.New("store: name already bound to a different graph")
	ErrFull     = errors.New("store: at capacity and every graph is pinned")
)

// Config sizes the store. Zero values select defaults.
type Config struct {
	// MaxGraphs bounds how many names the store holds resident (default
	// 256). At capacity, Put evicts the least-recently-used unpinned name;
	// if every name is pinned, Put fails with ErrFull.
	MaxGraphs int
	// SpillDir, when non-empty, turns capacity eviction into spill: the
	// victim's graph is written once as <fingerprint>.rgd1 (skipped if the
	// file already exists) and the name moves to a spilled index instead of
	// vanishing. Get still answers from the index; Acquire transparently
	// revives the name by mmapping the RGD1 file, so resident cost after
	// revival is page-cache-managed rather than heap. The directory is a
	// content-addressed cache: files are never deleted by the store and are
	// safe to share between store instances or wipe between runs.
	SpillDir string
	// WALDir, when non-empty, makes the registry durable: name bindings are
	// journaled to an internal/wal log there and replayed by Open on the
	// next boot (see durable.go). Requires spill files for the graph bytes,
	// so SpillDir defaults to <WALDir>/spill when unset. New ignores this;
	// use Open.
	WALDir string
	// SnapshotEvery compacts the WAL after this many records (0 = only the
	// final snapshot written by Close).
	SnapshotEvery int
	// WALSegmentBytes overrides the WAL segment rotation size (testing).
	WALSegmentBytes int64
	// WALHooks injects crash points into the WAL (testing).
	WALHooks *wal.TestHooks
	// Logger, when set, receives wal_replay / wal_snapshot_failed events.
	Logger *slog.Logger
}

func (c Config) withDefaults() Config {
	if c.MaxGraphs <= 0 {
		c.MaxGraphs = 256
	}
	return c
}

// Source describes the graph being registered: exactly one of Graph (an
// already-decoded upload) or Gen (a registered generator name, with
// GenParams) must be set.
type Source struct {
	Graph     *graph.Graph
	Gen       string
	GenParams registry.GenParams
}

// Info is an immutable snapshot of one named graph.
type Info struct {
	Name        string
	Fingerprint string
	Nodes       int
	Edges       int
	// Gen is the generator that produced the graph, "" for uploads.
	Gen string
	// Pins counts outstanding Acquires; a pinned name cannot be deleted
	// or evicted.
	Pins int
	// Shared counts how many names (this one included) share the
	// deduplicated payload. 0 for spilled names.
	Shared    int
	CreatedAt time.Time
	// Spilled marks a name whose graph currently lives in SpillDir rather
	// than memory; Acquire revives it on demand.
	Spilled bool
}

// payload is one deduplicated graph shared by refs names.
type payload struct {
	g    *graph.Graph
	fp   string
	refs int
}

type record struct {
	name     string
	pl       *payload
	gen      string
	pins     int
	created  time.Time
	lastUsed uint64 // store tick, for LRU eviction
}

// spillRec is the on-disk index entry for a spilled name: enough metadata
// to answer Get without touching the file, plus the fingerprint that names
// the RGD1 file to revive from.
type spillRec struct {
	fp      string
	gen     string
	n, m    int
	created time.Time
}

// Store is the named graph registry. Create with New.
type Store struct {
	mu      sync.Mutex
	cfg     Config
	names   map[string]*record
	byFP    map[string]*payload
	spilled map[string]spillRec
	// mapped caches revived mmap-backed graphs by fingerprint so one file
	// is mapped at most once per process. Entries are never unmapped: a
	// revived graph may be retained by jobs past any store bookkeeping, and
	// an idle MAP_PRIVATE mapping costs only reclaimable page cache.
	mapped map[string]*graph.Graph
	clock  uint64
	// wal is the durability journal, nil for stores built with New or
	// opened without a WALDir. Guarded by mu like everything else.
	wal *wal.Log
}

// New returns an empty store. When cfg.SpillDir is set, the directory is
// created on first use.
func New(cfg Config) *Store {
	return &Store{
		cfg:     cfg.withDefaults(),
		names:   make(map[string]*record),
		byFP:    make(map[string]*payload),
		spilled: make(map[string]spillRec),
		mapped:  make(map[string]*graph.Graph),
	}
}

// ValidName reports whether name is usable as a graph handle: 1–128
// characters of "/"-separated non-empty segments from [A-Za-z0-9._-], so
// names embed safely in URLs and logs. The "/" is reserved for namespace
// prefixes (the multi-tenant front door stores tenant graphs as
// "<tenant>/<name>"); the HTTP layer rejects it in user-supplied names, so
// only internal callers create multi-segment handles. Names never become
// filesystem paths — spill files are keyed by fingerprint — so the
// separator carries no traversal risk.
func ValidName(name string) error {
	if name == "" || len(name) > 128 {
		return fmt.Errorf("store: name must be 1–128 characters, got %d", len(name))
	}
	prev := '/'
	for _, r := range name {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9',
			r == '.', r == '_', r == '-':
		case r == '/':
			if prev == '/' {
				return fmt.Errorf("store: name %q has an empty segment", name)
			}
		default:
			return fmt.Errorf("store: name %q may only contain [A-Za-z0-9._-] and /", name)
		}
		prev = r
	}
	if prev == '/' {
		return fmt.Errorf("store: name %q has an empty segment", name)
	}
	return nil
}

// Put registers src under name and returns its info plus whether the bytes
// were already present (deduplicated against another name, or an idempotent
// re-put of the same name with identical content). Re-putting a name with
// different content fails with ErrExists: names are stable handles, not
// mutable slots — delete first to rebind.
func (s *Store) Put(name string, src Source) (Info, bool, error) {
	if err := ValidName(name); err != nil {
		return Info{}, false, err
	}
	g, gen, err := buildSource(src)
	if err != nil {
		return Info{}, false, err
	}
	fp := registry.Fingerprint(g)

	s.mu.Lock()
	defer s.mu.Unlock()
	s.clock++
	if rec, ok := s.names[name]; ok {
		if rec.pl.fp != fp {
			return Info{}, false, fmt.Errorf("%w: %s holds %s", ErrExists, name, rec.pl.fp)
		}
		rec.lastUsed = s.clock
		return s.infoLocked(rec), true, nil
	}
	wasSpilled := false
	if sp, ok := s.spilled[name]; ok {
		if sp.fp != fp {
			return Info{}, false, fmt.Errorf("%w: %s holds %s (spilled)", ErrExists, name, sp.fp)
		}
		// Idempotent re-put of a spilled name: the caller just handed us
		// the resident bytes back, so un-spill with them. The binding is
		// already journaled, so no new WAL record below.
		delete(s.spilled, name)
		wasSpilled = true
	}
	if err := s.makeRoomLocked(); err != nil {
		return Info{}, false, err
	}
	pl, dedup := s.byFP[fp]
	if !dedup {
		pl = &payload{g: g, fp: fp}
	}
	created := time.Now()
	if !wasSpilled {
		// Write-ahead: the binding is durable before it is visible.
		if err := s.journalPutLocked(name, pl, gen, created); err != nil {
			return Info{}, false, err
		}
	}
	if !dedup {
		s.byFP[fp] = pl
	}
	pl.refs++
	rec := &record{name: name, pl: pl, gen: gen, created: created, lastUsed: s.clock}
	s.names[name] = rec
	if s.wal != nil && !wasSpilled {
		s.maybeSnapshotLocked()
	}
	return s.infoLocked(rec), dedup, nil
}

func buildSource(src Source) (*graph.Graph, string, error) {
	switch {
	case src.Graph != nil && src.Gen != "":
		return nil, "", errors.New("store: set exactly one of Graph and Gen, not both")
	case src.Graph != nil:
		return src.Graph, "", nil
	case src.Gen != "":
		spec, ok := registry.GetGenerator(src.Gen)
		if !ok {
			return nil, "", fmt.Errorf("store: unknown generator %q (have: %s)",
				src.Gen, strings.Join(registry.GeneratorNames(), ", "))
		}
		g, err := spec.Build(src.GenParams)
		if err != nil {
			return nil, "", err
		}
		return g, src.Gen, nil
	default:
		return nil, "", errors.New("store: empty source: set Graph or Gen")
	}
}

// makeRoomLocked evicts the least-recently-used unpinned name when the store
// is at capacity, spilling it to disk first when a SpillDir is configured.
// Must be called with s.mu held.
func (s *Store) makeRoomLocked() error {
	if len(s.names) < s.cfg.MaxGraphs {
		return nil
	}
	var victim *record
	for _, rec := range s.names {
		if rec.pins > 0 {
			continue
		}
		if victim == nil || rec.lastUsed < victim.lastUsed {
			victim = rec
		}
	}
	if victim == nil {
		return ErrFull
	}
	if s.cfg.SpillDir != "" {
		// Best effort: a failed spill (disk full, permissions) degrades to
		// the pre-spill behavior — plain eviction of a cache entry — rather
		// than wedging every Put behind a broken directory.
		if err := s.spillFileLocked(victim.pl); err == nil {
			s.spilled[victim.name] = spillRec{
				fp:      victim.pl.fp,
				gen:     victim.gen,
				n:       victim.pl.g.N(),
				m:       victim.pl.g.M(),
				created: victim.created,
			}
		}
	}
	s.removeLocked(victim)
	return nil
}

func (s *Store) spillPath(fp string) string {
	return filepath.Join(s.cfg.SpillDir, fp+".rgd1")
}

// spillFileLocked ensures <SpillDir>/<fp>.rgd1 holds pl's graph. The file is
// content-addressed, so an existing file is already correct and the write is
// skipped; revived mmap-backed payloads skip it the same way (their bytes
// came from that very file).
func (s *Store) spillFileLocked(pl *payload) error {
	if _, mappedAlready := s.mapped[pl.fp]; mappedAlready {
		return nil
	}
	path := s.spillPath(pl.fp)
	if _, err := os.Stat(path); err == nil {
		return nil
	}
	if err := os.MkdirAll(s.cfg.SpillDir, 0o755); err != nil {
		return err
	}
	return graph.WriteDisk(path, pl.g, graph.DiskOptions{})
}

// reviveLocked brings a spilled name back into the resident map and returns
// its record. Cheapest source wins: a still-resident payload with the same
// fingerprint, then an already-mapped file, then a fresh OpenDisk.
func (s *Store) reviveLocked(name string, sp spillRec) (*record, error) {
	g := (*graph.Graph)(nil)
	if pl, ok := s.byFP[sp.fp]; ok {
		g = pl.g
	} else if mg, ok := s.mapped[sp.fp]; ok {
		g = mg
	} else {
		d, err := graph.OpenDisk(s.spillPath(sp.fp))
		if err != nil {
			return nil, fmt.Errorf("store: revive %q: %w", name, err)
		}
		s.mapped[sp.fp] = d.Graph
		g = d.Graph
	}
	if err := s.makeRoomLocked(); err != nil {
		return nil, err
	}
	pl, dedup := s.byFP[sp.fp]
	if !dedup {
		pl = &payload{g: g, fp: sp.fp}
		s.byFP[sp.fp] = pl
	}
	pl.refs++
	rec := &record{name: name, pl: pl, gen: sp.gen, created: sp.created, lastUsed: s.clock}
	s.names[name] = rec
	delete(s.spilled, name)
	return rec, nil
}

func (s *Store) removeLocked(rec *record) {
	delete(s.names, rec.name)
	rec.pl.refs--
	if rec.pl.refs == 0 {
		delete(s.byFP, rec.pl.fp)
	}
}

// Get returns the info of the named graph. Spilled names answer from the
// spill index without touching the file.
func (s *Store) Get(name string) (Info, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if rec, ok := s.names[name]; ok {
		return s.infoLocked(rec), true
	}
	if sp, ok := s.spilled[name]; ok {
		return spillInfo(name, sp), true
	}
	return Info{}, false
}

func spillInfo(name string, sp spillRec) Info {
	return Info{
		Name:        name,
		Fingerprint: sp.fp,
		Nodes:       sp.n,
		Edges:       sp.m,
		Gen:         sp.gen,
		CreatedAt:   sp.created,
		Spilled:     true,
	}
}

// List returns every named graph, sorted by name.
func (s *Store) List() []Info {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]Info, 0, len(s.names)+len(s.spilled))
	for _, rec := range s.names {
		out = append(out, s.infoLocked(rec))
	}
	for name, sp := range s.spilled {
		out = append(out, spillInfo(name, sp))
	}
	slices.SortFunc(out, func(a, b Info) int { return strings.Compare(a.Name, b.Name) })
	return out
}

// Len returns the number of names held.
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.names)
}

// Acquire pins the named graph and returns it with a release function. The
// graph is shared: callers must treat it as strictly read-only. The release
// function is idempotent and must be called exactly when the caller is done,
// or the name can never be deleted or evicted.
func (s *Store) Acquire(name string) (*graph.Graph, func(), error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	rec, ok := s.names[name]
	if !ok {
		sp, wasSpilled := s.spilled[name]
		if !wasSpilled {
			return nil, nil, fmt.Errorf("%w: %q", ErrNotFound, name)
		}
		var err error
		if rec, err = s.reviveLocked(name, sp); err != nil {
			return nil, nil, err
		}
	}
	s.clock++
	rec.lastUsed = s.clock
	rec.pins++
	var once sync.Once
	release := func() {
		once.Do(func() {
			s.mu.Lock()
			rec.pins--
			s.mu.Unlock()
		})
	}
	return rec.pl.g, release, nil
}

// Delete removes the named graph. Pinned names refuse with ErrPinned; the
// deduplicated payload is freed when its last name goes.
func (s *Store) Delete(name string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	rec, ok := s.names[name]
	if !ok {
		if _, wasSpilled := s.spilled[name]; wasSpilled {
			if err := s.journalDeleteLocked(name); err != nil {
				return err
			}
			// The spill file stays: it is content-addressed and may back
			// other names (or a future re-put of identical content).
			delete(s.spilled, name)
			s.maybeSnapshotLocked()
			return nil
		}
		return fmt.Errorf("%w: %q", ErrNotFound, name)
	}
	if rec.pins > 0 {
		return fmt.Errorf("%w: %q has %d pins", ErrPinned, name, rec.pins)
	}
	if err := s.journalDeleteLocked(name); err != nil {
		return err
	}
	s.removeLocked(rec)
	if s.wal != nil {
		s.maybeSnapshotLocked()
	}
	return nil
}

// infoLocked must be called with s.mu held.
func (s *Store) infoLocked(rec *record) Info {
	return Info{
		Name:        rec.name,
		Fingerprint: rec.pl.fp,
		Nodes:       rec.pl.g.N(),
		Edges:       rec.pl.g.M(),
		Gen:         rec.gen,
		Pins:        rec.pins,
		Shared:      rec.pl.refs,
		CreatedAt:   rec.created,
	}
}
