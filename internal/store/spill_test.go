package store

import (
	"errors"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/graph"
	"repro/internal/registry"
	"repro/internal/rng"
)

// spillStore builds a 2-slot store spilling into a fresh temp dir.
func spillStore(t *testing.T) (*Store, string) {
	t.Helper()
	dir := t.TempDir()
	return New(Config{MaxGraphs: 2, SpillDir: dir}), dir
}

// fillSpill puts g1..g3 into a 2-slot store so g1 (LRU) spills.
func fillSpill(t *testing.T, s *Store) {
	t.Helper()
	for i, name := range []string{"g1", "g2", "g3"} {
		if _, _, err := s.Put(name, gnpSource(16, uint64(i+1))); err != nil {
			t.Fatalf("put %s: %v", name, err)
		}
	}
}

func TestSpillOnEviction(t *testing.T) {
	s, dir := spillStore(t)
	fillSpill(t, s)

	info, ok := s.Get("g1")
	if !ok {
		t.Fatal("evicted name vanished despite SpillDir")
	}
	if !info.Spilled || info.Nodes != 16 || info.Gen != "gnp" {
		t.Fatalf("bad spilled info %+v", info)
	}
	if _, err := os.Stat(filepath.Join(dir, info.Fingerprint+".rgd1")); err != nil {
		t.Fatalf("spill file missing: %v", err)
	}
	// List carries both resident and spilled names.
	if got := len(s.List()); got != 3 {
		t.Fatalf("List has %d names, want 3", got)
	}
	// Len counts resident only.
	if s.Len() != 2 {
		t.Fatalf("Len = %d, want 2 resident", s.Len())
	}
}

func TestSpillReviveRoundTrip(t *testing.T) {
	s, _ := spillStore(t)
	// Build the same graph the generator will produce, for comparison.
	spec, _ := registry.GetGenerator("gnp")
	want, err := spec.Build(registry.GenParams{N: 16, P: 0.2, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	fillSpill(t, s)

	g, release, err := s.Acquire("g1")
	if err != nil {
		t.Fatalf("reviving acquire: %v", err)
	}
	defer release()
	if registry.Fingerprint(g) != registry.Fingerprint(want) {
		t.Fatal("revived graph differs from the original")
	}
	info, _ := s.Get("g1")
	if info.Spilled {
		t.Fatal("revived name still marked spilled")
	}
	// The revival evicted another LRU name into the spill index.
	spilled := 0
	for _, in := range s.List() {
		if in.Spilled {
			spilled++
		}
	}
	if spilled != 1 {
		t.Fatalf("%d names spilled after revive, want 1", spilled)
	}
}

func TestSpillReviveUsesResidentPayload(t *testing.T) {
	// A spilled name whose fingerprint is still resident under another name
	// revives by sharing that payload, no disk I/O.
	dir := t.TempDir()
	s := New(Config{MaxGraphs: 2, SpillDir: dir})
	if _, _, err := s.Put("a", gnpSource(16, 7)); err != nil {
		t.Fatal(err)
	}
	if _, _, err := s.Put("b", gnpSource(16, 8)); err != nil {
		t.Fatal(err)
	}
	// "alias" shares a's content; spill a first, then the alias revives from
	// the duplicate payload even with the file gone.
	if _, _, err := s.Put("c", gnpSource(16, 9)); err != nil { // evicts "a" (LRU)
		t.Fatal(err)
	}
	info, _ := s.Get("a")
	if !info.Spilled {
		t.Fatal("a should be spilled")
	}
	if _, _, err := s.Put("alias", gnpSource(16, 7)); err != nil { // evicts "b"
		t.Fatal(err)
	}
	if err := os.RemoveAll(dir); err != nil {
		t.Fatal(err)
	}
	g, release, err := s.Acquire("a")
	if err != nil {
		t.Fatalf("revive from resident payload: %v", err)
	}
	defer release()
	ga, release2, err := s.Acquire("alias")
	if err != nil {
		t.Fatal(err)
	}
	defer release2()
	if g != ga {
		t.Fatal("revived name does not share the resident payload")
	}
}

func TestSpillPutCollision(t *testing.T) {
	s, _ := spillStore(t)
	fillSpill(t, s)
	// Re-putting g1 with different content must fail even while spilled.
	if _, _, err := s.Put("g1", gnpSource(32, 99)); !errors.Is(err, ErrExists) {
		t.Fatalf("got %v, want ErrExists", err)
	}
	// Idempotent re-put with identical content un-spills.
	if _, dedup, err := s.Put("g1", gnpSource(16, 1)); err != nil || dedup {
		t.Fatalf("re-put of spilled name: dedup=%t err=%v", dedup, err)
	}
	info, _ := s.Get("g1")
	if info.Spilled {
		t.Fatal("re-put name still spilled")
	}
}

func TestSpillDeleteKeepsFile(t *testing.T) {
	s, dir := spillStore(t)
	fillSpill(t, s)
	info, _ := s.Get("g1")
	if err := s.Delete("g1"); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Get("g1"); ok {
		t.Fatal("deleted spilled name still present")
	}
	// Content-addressed cache: the file must survive the name.
	if _, err := os.Stat(filepath.Join(dir, info.Fingerprint+".rgd1")); err != nil {
		t.Fatalf("spill file deleted with the name: %v", err)
	}
}

func TestSpillFailureDegradesToEviction(t *testing.T) {
	// An unusable SpillDir must not wedge Put: the victim is plainly evicted.
	bad := filepath.Join(t.TempDir(), "file-not-dir")
	if err := os.WriteFile(bad, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	s := New(Config{MaxGraphs: 2, SpillDir: filepath.Join(bad, "sub")})
	fillSpill(t, s)
	if _, ok := s.Get("g1"); ok {
		t.Fatal("victim survived a failed spill")
	}
	if _, ok := s.Get("g3"); !ok {
		t.Fatal("put failed behind a broken spill dir")
	}
}

func TestSpillUploadedGraphKeepsWeights(t *testing.T) {
	// Spill/revive must preserve weights byte-exactly for uploaded graphs too
	// (the RGD1 file stores them; fingerprints hash them).
	g := graph.GNP(24, 0.3, rng.New(3))
	graph.AssignUniformNodeWeights(g, 100, rng.New(4))
	graph.AssignUniformEdgeWeights(g, 100, rng.New(5))
	fp := registry.Fingerprint(g)

	s, _ := spillStore(t)
	if _, _, err := s.Put("up", Source{Graph: g}); err != nil {
		t.Fatal(err)
	}
	if _, _, err := s.Put("f1", gnpSource(16, 1)); err != nil {
		t.Fatal(err)
	}
	if _, _, err := s.Put("f2", gnpSource(16, 2)); err != nil {
		t.Fatal(err)
	}
	info, _ := s.Get("up")
	if !info.Spilled {
		t.Fatal("up should be spilled")
	}
	got, release, err := s.Acquire("up")
	if err != nil {
		t.Fatal(err)
	}
	defer release()
	if registry.Fingerprint(got) != fp {
		t.Fatal("revived uploaded graph lost content")
	}
}
