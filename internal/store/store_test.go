package store

import (
	"errors"
	"fmt"
	"sync"
	"testing"

	"repro/internal/graph"
	"repro/internal/registry"
	"repro/internal/rng"
)

func gnpSource(n int, seed uint64) Source {
	return Source{Gen: "gnp", GenParams: registry.GenParams{N: n, P: 0.2, Seed: seed}}
}

func TestPutGetDelete(t *testing.T) {
	s := New(Config{})
	info, dedup, err := s.Put("g1", gnpSource(16, 1))
	if err != nil {
		t.Fatal(err)
	}
	if dedup {
		t.Fatal("first put reported dedup")
	}
	if info.Name != "g1" || info.Nodes != 16 || info.Gen != "gnp" || info.Shared != 1 {
		t.Fatalf("bad info %+v", info)
	}
	got, ok := s.Get("g1")
	if !ok || got.Fingerprint != info.Fingerprint {
		t.Fatalf("Get mismatch: %+v vs %+v", got, info)
	}
	if err := s.Delete("g1"); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Get("g1"); ok {
		t.Fatal("deleted name still present")
	}
	if err := s.Delete("g1"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("double delete: %v", err)
	}
}

func TestUploadedGraphRoundTrip(t *testing.T) {
	s := New(Config{})
	g := graph.GNP(12, 0.3, rng.New(7))
	if _, _, err := s.Put("up", Source{Graph: g}); err != nil {
		t.Fatal(err)
	}
	got, release, err := s.Acquire("up")
	if err != nil {
		t.Fatal(err)
	}
	defer release()
	if got != g {
		t.Fatal("Acquire returned a different graph object")
	}
}

func TestFingerprintDedup(t *testing.T) {
	s := New(Config{})
	a, _, err := s.Put("a", gnpSource(16, 1))
	if err != nil {
		t.Fatal(err)
	}
	b, dedup, err := s.Put("b", gnpSource(16, 1)) // identical content
	if err != nil {
		t.Fatal(err)
	}
	if !dedup {
		t.Fatal("identical content not deduplicated")
	}
	if a.Fingerprint != b.Fingerprint {
		t.Fatal("same content, different fingerprints")
	}
	if b.Shared != 2 {
		t.Fatalf("Shared = %d, want 2", b.Shared)
	}
	// The payload is literally shared.
	ga, rela, _ := s.Acquire("a")
	gb, relb, _ := s.Acquire("b")
	defer rela()
	defer relb()
	if ga != gb {
		t.Fatal("deduplicated names hold different graph objects")
	}
	// Deleting one name keeps the other alive.
	rela()
	relb()
	if err := s.Delete("a"); err != nil {
		t.Fatal(err)
	}
	if info, ok := s.Get("b"); !ok || info.Shared != 1 {
		t.Fatalf("surviving name: ok=%t info=%+v", ok, info)
	}
}

func TestIdempotentRePutAndConflict(t *testing.T) {
	s := New(Config{})
	if _, _, err := s.Put("g", gnpSource(16, 1)); err != nil {
		t.Fatal(err)
	}
	if _, dedup, err := s.Put("g", gnpSource(16, 1)); err != nil || !dedup {
		t.Fatalf("idempotent re-put: dedup=%t err=%v", dedup, err)
	}
	if _, _, err := s.Put("g", gnpSource(16, 2)); !errors.Is(err, ErrExists) {
		t.Fatalf("conflicting re-put: %v", err)
	}
}

func TestPinnedDeleteRefusalAndRelease(t *testing.T) {
	s := New(Config{})
	if _, _, err := s.Put("g", gnpSource(16, 1)); err != nil {
		t.Fatal(err)
	}
	_, release, err := s.Acquire("g")
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Delete("g"); !errors.Is(err, ErrPinned) {
		t.Fatalf("pinned delete: %v", err)
	}
	if info, _ := s.Get("g"); info.Pins != 1 {
		t.Fatalf("Pins = %d, want 1", info.Pins)
	}
	release()
	release() // idempotent
	if err := s.Delete("g"); err != nil {
		t.Fatal(err)
	}
}

func TestCapacityEvictsLRUButNeverPinned(t *testing.T) {
	s := New(Config{MaxGraphs: 2})
	if _, _, err := s.Put("old", gnpSource(8, 1)); err != nil {
		t.Fatal(err)
	}
	if _, _, err := s.Put("young", gnpSource(8, 2)); err != nil {
		t.Fatal(err)
	}
	// Touch "old" so "young" becomes the LRU victim.
	_, release, err := s.Acquire("old")
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := s.Put("new", gnpSource(8, 3)); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Get("young"); ok {
		t.Fatal("LRU name survived eviction")
	}
	if _, ok := s.Get("old"); !ok {
		t.Fatal("recently used name was evicted")
	}
	// With both remaining names pinned, Put must refuse rather than evict.
	_, release2, err := s.Acquire("new")
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := s.Put("overflow", gnpSource(8, 4)); !errors.Is(err, ErrFull) {
		t.Fatalf("all-pinned put: %v", err)
	}
	release()
	release2()
	if _, _, err := s.Put("overflow", gnpSource(8, 4)); err != nil {
		t.Fatal(err)
	}
}

func TestNameValidation(t *testing.T) {
	s := New(Config{})
	for _, bad := range []string{"", "has space", "ünicode", "/lead", "trail/", "a//b", string(make([]byte, 200))} {
		if _, _, err := s.Put(bad, gnpSource(8, 1)); err == nil {
			t.Errorf("name %q accepted", bad)
		}
	}
	// "/"-separated segments are legal store handles: the multi-tenant front
	// door scopes graphs as "<tenant>/<name>" (the HTTP layer keeps "/" out
	// of user-supplied names).
	for _, ok := range []string{"ok-Name_1.v2", "tenant/graph"} {
		if _, _, err := s.Put(ok, gnpSource(8, 1)); err != nil {
			t.Fatalf("name %q rejected: %v", ok, err)
		}
	}
}

func TestBadSources(t *testing.T) {
	s := New(Config{})
	cases := map[string]Source{
		"empty":             {},
		"both":              {Graph: graph.Path(3), Gen: "gnp", GenParams: registry.GenParams{N: 4, P: 0.5}},
		"unknown generator": {Gen: "hypercube", GenParams: registry.GenParams{N: 4}},
		"bad gen params":    {Gen: "gnp", GenParams: registry.GenParams{N: -1}},
	}
	for name, src := range cases {
		if _, _, err := s.Put("g", src); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestConcurrentPutAcquireDelete(t *testing.T) {
	s := New(Config{MaxGraphs: 64})
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for k := 0; k < 50; k++ {
				name := fmt.Sprintf("g%d", k%16)
				_, _, _ = s.Put(name, gnpSource(8, uint64(k%16)))
				if g, release, err := s.Acquire(name); err == nil {
					_ = g.N()
					release()
				}
				if k%7 == 0 {
					_ = s.Delete(name)
				}
			}
		}(i)
	}
	wg.Wait()
	// Invariant: every surviving name resolves and payload refs are sane.
	for _, info := range s.List() {
		if info.Shared < 1 {
			t.Fatalf("%s has Shared=%d", info.Name, info.Shared)
		}
	}
}
