package store

import (
	"path/filepath"
	"testing"

	"repro/internal/graph"
	"repro/internal/registry"
	"repro/internal/rng"
)

func durableCfg(t *testing.T) Config {
	t.Helper()
	dir := t.TempDir()
	return Config{
		WALDir:   filepath.Join(dir, "wal"),
		SpillDir: filepath.Join(dir, "spill"),
	}
}

func TestDurableStoreRecoversBindings(t *testing.T) {
	cfg := durableCfg(t)
	st, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	g := graph.GNP(60, 0.2, rng.New(7))
	if _, _, err := st.Put("uploaded", Source{Graph: g}); err != nil {
		t.Fatal(err)
	}
	if _, _, err := st.Put("generated", Source{Gen: "gnp", GenParams: registry.GenParams{N: 40, P: 0.3, Seed: 11}}); err != nil {
		t.Fatal(err)
	}
	if _, _, err := st.Put("doomed", Source{Graph: graph.GNP(10, 0.5, rng.New(3))}); err != nil {
		t.Fatal(err)
	}
	if err := st.Delete("doomed"); err != nil {
		t.Fatal(err)
	}
	wantFP := registry.Fingerprint(g)
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	st2, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	if _, ok := st2.Get("doomed"); ok {
		t.Fatal("deleted name survived recovery")
	}
	info, ok := st2.Get("uploaded")
	if !ok || !info.Spilled || info.Fingerprint != wantFP || info.Nodes != 60 {
		t.Fatalf("uploaded recovered wrong: ok=%v info=%+v", ok, info)
	}
	gi, ok := st2.Get("generated")
	if !ok || gi.Gen != "gnp" || gi.Nodes != 40 {
		t.Fatalf("generated recovered wrong: ok=%v info=%+v", ok, gi)
	}

	// Acquire must revive the graph bit-identically from the spill file.
	rg, release, err := st2.Acquire("uploaded")
	if err != nil {
		t.Fatal(err)
	}
	defer release()
	if registry.Fingerprint(rg) != wantFP {
		t.Fatal("revived graph fingerprint differs from original")
	}
}

func TestDurableStoreSnapshotCompaction(t *testing.T) {
	cfg := durableCfg(t)
	cfg.SnapshotEvery = 4
	st, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	names := []string{"a", "b", "c", "d", "e", "f", "g"}
	for i, n := range names {
		if _, _, err := st.Put(n, Source{Gen: "gnp", GenParams: registry.GenParams{N: 12 + i, P: 0.4, Seed: uint64(i)}}); err != nil {
			t.Fatal(err)
		}
	}
	m, ok := st.WALMetrics()
	if !ok || m.SnapshotsTotal == 0 {
		t.Fatalf("expected automatic snapshot after %d puts, metrics=%+v ok=%v", len(names), m, ok)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	st2, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	for _, n := range names {
		if _, ok := st2.Get(n); !ok {
			t.Fatalf("name %q lost across snapshot compaction", n)
		}
	}
	m2, _ := st2.WALMetrics()
	if m2.ReplayedSnapshots != 1 {
		t.Fatalf("ReplayedSnapshots = %d, want 1 (Close snapshot supersedes the log)", m2.ReplayedSnapshots)
	}
	if m2.ReplayedRecords != 0 {
		t.Fatalf("ReplayedRecords = %d, want 0 after a clean Close snapshot", m2.ReplayedRecords)
	}
}

func TestNonDurableStoreUnaffected(t *testing.T) {
	st, err := Open(Config{MaxGraphs: 4})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := st.Put("x", Source{Graph: graph.GNP(10, 0.5, rng.New(1))}); err != nil {
		t.Fatal(err)
	}
	if _, ok := st.WALMetrics(); ok {
		t.Fatal("WALMetrics reported a log on a non-durable store")
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
}
