// Pin-leak regression tests: every Acquire a batch takes must be released
// by the time the batch is terminal, whatever path it took there —
// completion, mid-flight cancellation, or cluster-side worker failure (the
// cluster variant lives in internal/cluster, which this package must not
// import). A leaked pin makes the graph undeletable forever, so the check
// is Delete succeeding after the batch ends.
package store_test

import (
	"testing"
	"time"

	"repro/internal/registry"
	"repro/internal/service"
	"repro/internal/store"
)

func newBatchStack(t *testing.T, workers, queue int) (*service.Service, *store.Store, *service.Batches) {
	t.Helper()
	svc := service.New(service.Config{Workers: workers, QueueSize: queue})
	t.Cleanup(svc.Close)
	st := store.New(store.Config{})
	return svc, st, service.NewBatches(svc, st, service.BatchConfig{})
}

func putGen(t *testing.T, st *store.Store, name string, n int, p float64, seed uint64) {
	t.Helper()
	src := store.Source{Gen: "gnp", GenParams: registry.GenParams{N: n, P: p, Seed: seed}}
	if _, _, err := st.Put(name, src); err != nil {
		t.Fatal(err)
	}
}

func waitTerminal(t *testing.T, batches *service.Batches, id string) service.BatchView {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for time.Now().Before(deadline) {
		v, ok := batches.Wait(id, time.Second)
		if !ok {
			t.Fatalf("batch %s disappeared", id)
		}
		if v.State.Terminal() {
			return v
		}
	}
	t.Fatalf("batch %s never finished", id)
	return service.BatchView{}
}

// TestBatchCancelMidFlightReleasesPins cancels a batch whose members are
// genuinely in flight on a saturated one-worker pool and asserts the pin
// count returns to zero: Delete succeeds, where it conflicted mid-batch.
func TestBatchCancelMidFlightReleasesPins(t *testing.T) {
	_, st, batches := newBatchStack(t, 1, 4)
	putGen(t, st, "pinned", 1200, 0.01, 5)

	seeds := make([]uint64, 8)
	for i := range seeds {
		seeds[i] = uint64(i + 1)
	}
	v, err := batches.Submit(service.BatchSpec{
		Graphs: []string{"pinned"},
		Algos:  []string{"maxis"},
		Seeds:  seeds,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Mid-flight the graph must be pinned and undeletable.
	if info, _ := st.Get("pinned"); info.Pins == 0 {
		t.Fatal("running batch holds no pin")
	}
	if err := st.Delete("pinned"); err == nil {
		t.Fatal("delete succeeded while the batch pinned the graph")
	}

	if _, err := batches.Cancel(v.ID); err != nil {
		t.Fatal(err)
	}
	fin := waitTerminal(t, batches, v.ID)
	if fin.State != service.BatchCanceled {
		t.Fatalf("state %s, want canceled", fin.State)
	}

	info, ok := st.Get("pinned")
	if !ok {
		t.Fatal("graph vanished")
	}
	if info.Pins != 0 {
		t.Fatalf("%d pins leaked after cancel", info.Pins)
	}
	if err := st.Delete("pinned"); err != nil {
		t.Fatalf("delete after canceled batch: %v", err)
	}
}

// TestBatchCompletionReleasesPins is the happy-path counterpart: a batch
// that runs to completion leaves zero pins behind.
func TestBatchCompletionReleasesPins(t *testing.T) {
	_, st, batches := newBatchStack(t, 2, 16)
	putGen(t, st, "done-g", 32, 0.2, 9)

	v, err := batches.Submit(service.BatchSpec{
		Graphs: []string{"done-g"},
		Algos:  []string{"mwm2"},
		Seeds:  []uint64{1, 2, 3},
	})
	if err != nil {
		t.Fatal(err)
	}
	fin := waitTerminal(t, batches, v.ID)
	if fin.State != service.BatchDone || fin.Done != 3 {
		t.Fatalf("batch %+v", fin)
	}
	if info, _ := st.Get("done-g"); info.Pins != 0 {
		t.Fatalf("%d pins leaked after completion", info.Pins)
	}
	if err := st.Delete("done-g"); err != nil {
		t.Fatalf("delete after done batch: %v", err)
	}
}
