package fastmatch

import (
	"testing"

	"repro/internal/exact"
	"repro/internal/graph"
	"repro/internal/rng"
	"repro/internal/simul"
)

func TestMCM2EpsApproximation(t *testing.T) {
	r := rng.New(1)
	for trial := 0; trial < 10; trial++ {
		g := graph.GNP(24, 0.2, r.Split(uint64(trial)))
		if g.M() == 0 {
			continue
		}
		res, err := MCM2Eps(g, 0.5, 2, simul.Config{Seed: uint64(trial)})
		if err != nil {
			t.Fatal(err)
		}
		opt := len(exact.MaxCardinalityMatching(g))
		// Theorem 3.2 guarantee with the δ = ε/4 slack folded in.
		if float64(len(res.Edges))*(2+0.5) < float64(opt)*(1-0.5) {
			t.Fatalf("trial %d: |M|=%d vs OPT=%d — (2+ε) grossly violated", trial, len(res.Edges), opt)
		}
	}
}

func TestMCM2EpsNearlyMaximalInPractice(t *testing.T) {
	// Empirically the nearly-maximal matching is a true 2-approximation on
	// most instances; verify the aggregate ratio over several graphs.
	r := rng.New(2)
	var got, opt int
	for trial := 0; trial < 10; trial++ {
		g := graph.GNP(30, 0.15, r.Split(uint64(trial)))
		res, err := MCM2Eps(g, 0.25, 2, simul.Config{Seed: uint64(50 + trial)})
		if err != nil {
			t.Fatal(err)
		}
		got += len(res.Edges)
		opt += len(exact.MaxCardinalityMatching(g))
	}
	if float64(got)*2.5 < float64(opt) {
		t.Fatalf("aggregate ratio too weak: got %d vs opt %d", got, opt)
	}
}

func TestMCM2EpsRoundsDependOnDeltaNotN(t *testing.T) {
	// The Theorem 3.2 round bound is a function of ∆ (and ε), not n: growing
	// n at fixed degree must not blow up the virtual round count.
	r := rng.New(3)
	rounds := map[int]int{}
	for _, n := range []int{64, 256} {
		g, err := graph.RandomRegular(n, 4, r.Split(uint64(n)))
		if err != nil {
			t.Fatal(err)
		}
		res, err := MCM2Eps(g, 0.5, 2, simul.Config{Seed: uint64(n)})
		if err != nil {
			t.Fatal(err)
		}
		rounds[n] = res.VirtualRounds
	}
	if rounds[256] > 2*rounds[64]+4 {
		t.Fatalf("rounds grew with n at fixed ∆: %v", rounds)
	}
}

func TestMCM2EpsValidation(t *testing.T) {
	g := graph.Path(3)
	if _, err := MCM2Eps(g, 0, 2, simul.Config{}); err == nil {
		t.Fatal("ε=0 accepted")
	}
	if _, err := MCM2Eps(g, 0.5, 1, simul.Config{}); err == nil {
		t.Fatal("K=1 accepted")
	}
}

func TestMWM2EpsApproximation(t *testing.T) {
	r := rng.New(4)
	for trial := 0; trial < 8; trial++ {
		g := graph.GNP(14, 0.3, r.Split(uint64(trial)))
		if g.M() == 0 {
			continue
		}
		graph.AssignUniformEdgeWeights(g, 200, r.Split(uint64(600+trial)))
		res, err := MWM2Eps(g, 0.5, 2, simul.Config{Seed: uint64(trial)})
		if err != nil {
			t.Fatal(err)
		}
		if !g.IsMatching(res.Edges) {
			t.Fatalf("trial %d: not a matching", trial)
		}
		if g.MatchingWeight(res.Edges) != res.Weight {
			t.Fatalf("trial %d: weight mismatch", trial)
		}
		_, opt, err := exact.MaxWeightMatchingBrute(g)
		if err != nil {
			t.Fatal(err)
		}
		if res.Weight*3 < opt { // 2+ε with ε=0.5 plus δ slack
			t.Fatalf("trial %d: weight %d vs OPT %d — (2+ε) violated", trial, res.Weight, opt)
		}
	}
}

func TestMWM2EpsRefinementImproves(t *testing.T) {
	// A path whose middle edge is heavy: greedy-by-bucket alone can lock in
	// the outer edges, the length-3 refinement must recover the heavy one
	// when beneficial.
	g := graph.Path(4)
	g.SetEdgeWeight(0, 4)
	g.SetEdgeWeight(1, 9)
	g.SetEdgeWeight(2, 4)
	res, err := MWM2Eps(g, 0.5, 2, simul.Config{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	// OPT = 9 (middle) vs 8 (outer); (2+ε) requires ≥ 9/2.5 = 3.6 → any
	// non-empty answer passes, but the refinement should reach ≥ 8.
	if res.Weight < 8 {
		t.Fatalf("refined weight %d, want ≥ 8", res.Weight)
	}
}

func TestProposalBipartite(t *testing.T) {
	r := rng.New(6)
	for trial := 0; trial < 8; trial++ {
		g, _ := graph.RandomBipartite(12, 12, 0.3, r.Split(uint64(trial)))
		if g.M() == 0 {
			continue
		}
		res, err := Proposal(g, 0.5, 2, r.Split(uint64(300+trial)))
		if err != nil {
			t.Fatal(err)
		}
		if !g.IsMatching(res.Edges) {
			t.Fatalf("trial %d: not a matching", trial)
		}
		opt := len(exact.MaxCardinalityMatching(g))
		if float64(len(res.Edges))*(2+0.5) < float64(opt)*(1-0.5) {
			t.Fatalf("trial %d: |M|=%d vs OPT=%d", trial, len(res.Edges), opt)
		}
	}
}

func TestProposalGeneralGraphs(t *testing.T) {
	r := rng.New(7)
	var got, opt int
	for trial := 0; trial < 10; trial++ {
		g := graph.GNP(30, 0.15, r.Split(uint64(trial)))
		res, err := Proposal(g, 0.25, 2, r.Split(uint64(800+trial)))
		if err != nil {
			t.Fatal(err)
		}
		if !g.IsMatching(res.Edges) {
			t.Fatal("not a matching")
		}
		got += len(res.Edges)
		opt += len(exact.MaxCardinalityMatching(g))
	}
	if float64(got)*2.5 < float64(opt) {
		t.Fatalf("aggregate proposal ratio too weak: %d vs %d", got, opt)
	}
}

func TestProposalValidation(t *testing.T) {
	g := graph.Path(3)
	if _, err := Proposal(g, 0, 2, rng.New(8)); err == nil {
		t.Fatal("ε=0 accepted")
	}
	if _, err := Proposal(g, 0.5, 1, rng.New(9)); err == nil {
		t.Fatal("K=1 accepted")
	}
}

func TestProposalRoundAccounting(t *testing.T) {
	// More stages and proposal rounds for smaller ε.
	g := graph.GNP(40, 0.1, rng.New(10))
	coarse, err := Proposal(g, 1, 2, rng.New(11))
	if err != nil {
		t.Fatal(err)
	}
	fine, err := Proposal(g, 0.125, 2, rng.New(11))
	if err != nil {
		t.Fatal(err)
	}
	if fine.VirtualRounds <= coarse.VirtualRounds {
		t.Fatalf("ε=0.125 (%d rounds) should cost more than ε=1 (%d rounds)",
			fine.VirtualRounds, coarse.VirtualRounds)
	}
}

func TestMWM2EpsEmptyAndTrivial(t *testing.T) {
	res, err := MWM2Eps(graph.NewBuilder(5).MustBuild(), 0.5, 2, simul.Config{})
	if err != nil || len(res.Edges) != 0 {
		t.Fatalf("edgeless graph: %v %v", res, err)
	}
	g := graph.Path(2)
	g.SetEdgeWeight(0, 7)
	res, err = MWM2Eps(g, 0.5, 2, simul.Config{Seed: 12})
	if err != nil {
		t.Fatal(err)
	}
	if res.Weight != 7 {
		t.Fatalf("single edge not matched: %+v", res)
	}
}
