// Package fastmatch assembles the paper's time-optimal matching
// approximations (§3, Appendix B):
//
//   - MCM2Eps (Theorem 3.2): a (2+ε)-approximation of maximum cardinality
//     matching — the modified nearly-maximal independent set run on the line
//     graph in O(log∆/loglog∆) rounds.
//   - MWM2Eps (§B.1): the weighted extension via Lotker-style weight buckets
//     [LPSR09] plus O(1/ε) rounds of length-≤3 augmenting refinement
//     [LPSP15].
//   - OneEps (Theorem B.4): the (1+ε)-approximation of maximum cardinality
//     matching via Hopcroft–Karp phases with nearly-maximal hypergraph
//     matchings (re-exported from internal/augment).
//   - Proposal (Appendix B.4): the alternative simple (2+ε) algorithm —
//     left nodes propose along random remaining edges, right nodes accept
//     the highest ID, generalized to arbitrary graphs by random
//     bipartitions.
//
// Layer (DESIGN.md §2): fastmatch is part of the §3/§B algorithm layer,
// above internal/agg, internal/nmis and internal/augment, below
// internal/registry.
//
// Concurrency and ownership: every entry point is a synchronous run on the
// calling goroutine; input graphs are read-only and shareable, returned
// Results are owned by the caller.
package fastmatch

import (
	"fmt"
	"math"
	"slices"

	"repro/internal/agg"
	"repro/internal/graph"
	"repro/internal/nmis"
	"repro/internal/simul"
)

// Result of a fast matching computation.
type Result struct {
	Edges  []int
	Weight int64
	// VirtualRounds is the algorithm's round complexity (virtual rounds on
	// the line graph where applicable).
	VirtualRounds int
	// Metrics totals the engine costs over every sub-run the algorithm
	// performed (all buckets and refinement iterations for MWM2Eps); Memo
	// totals the line runtime's exchange-folding hit/miss counts.
	Metrics simul.Metrics
	Memo    agg.MemoStats
}

// MCM2Eps computes a (2+ε)-approximate maximum cardinality matching by
// running the §3.1 nearly-maximal independent set on L(g) through the
// Theorem 2.8 simulation (Theorem 3.2). K ≥ 2 is the probability factor
// (the paper's Θ(log^0.1 ∆)).
func MCM2Eps(g *graph.Graph, eps float64, k int, cfg simul.Config) (*Result, error) {
	if eps <= 0 || eps > 2 {
		return nil, fmt.Errorf("fastmatch: ε must be in (0,2], got %v", eps)
	}
	res, err := nmis.RunOnLine(g, nmis.Params{K: k, Delta: eps / 4}, cfg)
	if err != nil {
		return nil, err
	}
	out := &Result{VirtualRounds: res.VirtualRounds, Metrics: res.Metrics, Memo: res.Memo}
	for e, o := range res.Outcomes {
		if o == nmis.InSet {
			out.Edges = append(out.Edges, e)
			out.Weight += g.EdgeWeight(e)
		}
	}
	if !g.IsMatching(out.Edges) {
		return nil, fmt.Errorf("fastmatch: NMIS on L(G) produced a non-matching")
	}
	return out, nil
}

// bucketSubgraph builds the subgraph of g containing exactly the given edge
// IDs (all nodes retained) and a map from its edge IDs back to g's.
func bucketSubgraph(g *graph.Graph, ids []int) (*graph.Graph, []int) {
	sb := graph.NewBuilder(g.N())
	sb.Grow(len(ids))
	back := make([]int, 0, len(ids))
	for _, id := range ids {
		e := g.EdgeByID(id)
		if err := sb.AddWeightedEdge(e.U, e.V, g.EdgeWeight(id)); err != nil {
			panic(err) // ids come from g; cannot collide
		}
		back = append(back, id)
	}
	return sb.MustBuild(), back
}

// MWM2Eps computes a (2+ε)-approximate maximum weight matching following
// §B.1's weighted extension:
//
//  1. Bucket edges by weight into big buckets (powers of betaBucket) split
//     into small buckets (powers of 1+ε). Big buckets run in parallel
//     (simulated: rounds are the maximum over big buckets); small buckets
//     run highest-first, each one solved by the unweighted (2+ε) matcher,
//     removing incident edges within the big bucket afterwards.
//  2. Cross-bucket cleanup: keep a chosen edge iff it carries the largest
//     weight among chosen edges sharing an endpoint (ties by edge ID). This
//     yields Lotker et al.'s O(1)-approximation.
//  3. O(1/ε) iterations of length-≤3 augmentation: every non-matching edge
//     computes its auxiliary gain, the O(1)-approximate matcher runs on the
//     positive-gain edges, and the matching is augmented [LPSP15 §4].
func MWM2Eps(g *graph.Graph, eps float64, k int, cfg simul.Config) (*Result, error) {
	if eps <= 0 || eps > 2 {
		return nil, fmt.Errorf("fastmatch: ε must be in (0,2], got %v", eps)
	}
	refinements := int(math.Ceil(2 / eps))
	mate := make([]int, g.N())
	for v := range mate {
		mate[v] = -1
	}
	totalRounds := 0
	var metrics simul.Metrics
	var memo agg.MemoStats
	seed := cfg.Seed
	for iter := 0; iter <= refinements; iter++ {
		// Auxiliary gains relative to the current matching M: adding e and
		// dropping the matched edges at its endpoints changes the weight by
		// gain(e); on the first iteration M = ∅ and gain = weight.
		gains := make(map[int]int64, g.M())
		for id, e := range g.Edges() {
			if mate[e.U] == e.V {
				continue
			}
			gain := g.EdgeWeight(id)
			for _, end := range []int{e.U, e.V} {
				if m := mate[end]; m != -1 {
					mid, _ := g.EdgeID(end, m)
					gain -= g.EdgeWeight(mid)
				}
			}
			if gain > 0 {
				gains[id] = gain
			}
		}
		if len(gains) == 0 {
			break
		}
		sb := graph.NewBuilder(g.N())
		sb.Grow(len(gains))
		var back []int
		ids := make([]int, 0, len(gains))
		for id := range gains {
			ids = append(ids, id)
		}
		slices.Sort(ids)
		for _, id := range ids {
			e := g.EdgeByID(id)
			if err := sb.AddWeightedEdge(e.U, e.V, gains[id]); err != nil {
				return nil, err
			}
			back = append(back, id)
		}
		sub, err := sb.Build()
		if err != nil {
			return nil, err
		}
		chosen, rounds, m, err := bucketedConstApprox(sub, eps, k, cfg, seed+uint64(iter)*7919)
		if err != nil {
			return nil, err
		}
		totalRounds += rounds + 2 // +2: computing gains and applying flips
		metrics.Merge(m.Metrics)
		memo.Add(m.Memo)
		// Augment: add each chosen edge, dropping conflicting matched edges.
		for _, subID := range chosen {
			id := back[subID]
			e := g.EdgeByID(id)
			for _, end := range []int{e.U, e.V} {
				if m := mate[end]; m != -1 {
					mate[m] = -1
					mate[end] = -1
				}
			}
			mate[e.U], mate[e.V] = e.V, e.U
		}
	}
	out := &Result{VirtualRounds: totalRounds, Metrics: metrics, Memo: memo}
	for v, u := range mate {
		if u > v {
			id, ok := g.EdgeID(v, u)
			if !ok {
				return nil, fmt.Errorf("fastmatch: mate pair {%d,%d} is not an edge", v, u)
			}
			out.Edges = append(out.Edges, id)
			out.Weight += g.EdgeWeight(id)
		}
	}
	if !g.IsMatching(out.Edges) {
		return nil, fmt.Errorf("fastmatch: refinement produced a non-matching")
	}
	return out, nil
}

// telem accumulates engine metrics and memo counts over sub-runs.
type telem struct {
	Metrics simul.Metrics
	Memo    agg.MemoStats
}

// bucketedConstApprox is step 1+2 of MWM2Eps: the bucketed O(1)-approximate
// maximum weight matching of Lotker et al. It returns chosen edge IDs of g,
// the simulated round cost (max over big buckets of the sum over their
// small buckets), and the telemetry totals over every per-bucket sub-run
// (message/bit counts sum even though rounds are a max: the messages are
// all really sent, just in parallel).
func bucketedConstApprox(g *graph.Graph, eps float64, k int, cfg simul.Config, seed uint64) ([]int, int, telem, error) {
	const betaBucket = 8.0
	var tel telem
	if g.M() == 0 {
		return nil, 0, tel, nil
	}
	// big bucket index i: weight ∈ [β^i, β^{i+1}).
	big := make(map[int][]int)
	for id := 0; id < g.M(); id++ {
		i := int(math.Floor(math.Log(float64(g.EdgeWeight(id))) / math.Log(betaBucket)))
		big[i] = append(big[i], id)
	}
	smallOf := func(w int64, i int) int {
		rel := float64(w) / math.Pow(betaBucket, float64(i))
		return int(math.Floor(math.Log(rel) / math.Log(1+eps)))
	}
	chosenPerNode := make(map[int][]int) // node -> chosen edges (pre-cleanup)
	var allChosen []int
	maxRounds := 0
	bigKeys := make([]int, 0, len(big))
	for i := range big {
		bigKeys = append(bigKeys, i)
	}
	slices.Sort(bigKeys)
	for _, i := range bigKeys {
		ids := big[i]
		// Split into small buckets, processed highest first.
		smalls := make(map[int][]int)
		for _, id := range ids {
			s := smallOf(g.EdgeWeight(id), i)
			smalls[s] = append(smalls[s], id)
		}
		keys := make([]int, 0, len(smalls))
		for s := range smalls {
			keys = append(keys, s)
		}
		slices.SortFunc(keys, func(a, b int) int { return b - a }) // descending
		blocked := make(map[int]bool)                              // nodes matched within this big bucket
		bucketRounds := 0
		for ki, s := range keys {
			var free []int
			for _, id := range smalls[s] {
				e := g.EdgeByID(id)
				if !blocked[e.U] && !blocked[e.V] {
					free = append(free, id)
				}
			}
			if len(free) == 0 {
				bucketRounds++ // the emptiness check costs a round
				continue
			}
			sub, back := bucketSubgraph(g, free)
			subCfg := cfg
			subCfg.Seed = seed ^ (uint64(i)<<32 + uint64(ki)*104729)
			m, err := MCM2Eps(sub, eps, k, subCfg)
			if err != nil {
				return nil, 0, tel, err
			}
			bucketRounds += m.VirtualRounds
			tel.Metrics.Merge(m.Metrics)
			tel.Memo.Add(m.Memo)
			for _, subID := range m.Edges {
				id := back[subID]
				e := g.EdgeByID(id)
				blocked[e.U], blocked[e.V] = true, true
				allChosen = append(allChosen, id)
				chosenPerNode[e.U] = append(chosenPerNode[e.U], id)
				chosenPerNode[e.V] = append(chosenPerNode[e.V], id)
			}
		}
		if bucketRounds > maxRounds {
			maxRounds = bucketRounds
		}
	}
	// Cleanup: keep a chosen edge iff it is the heaviest chosen edge at both
	// endpoints (ties by edge ID).
	beats := func(a, b int) bool {
		wa, wb := g.EdgeWeight(a), g.EdgeWeight(b)
		return wa > wb || (wa == wb && a > b)
	}
	var kept []int
	for _, id := range allChosen {
		e := g.EdgeByID(id)
		best := true
		for _, other := range append(append([]int(nil), chosenPerNode[e.U]...), chosenPerNode[e.V]...) {
			if other != id && beats(other, id) {
				best = false
				break
			}
		}
		if best {
			kept = append(kept, id)
		}
	}
	// The winners-only set can still conflict pairwise at a shared endpoint
	// when each beats the other's alternatives; resolve greedily by weight.
	slices.SortFunc(kept, func(a, b int) int {
		if a == b {
			return 0
		}
		if beats(a, b) {
			return -1
		}
		return 1
	})
	used := make(map[int]bool)
	var final []int
	for _, id := range kept {
		e := g.EdgeByID(id)
		if used[e.U] || used[e.V] {
			continue
		}
		used[e.U], used[e.V] = true, true
		final = append(final, id)
	}
	return final, maxRounds + 1, tel, nil
}
