package fastmatch

import (
	"fmt"
	"math"

	"repro/internal/graph"
	"repro/internal/rng"
)

// Proposal implements the alternative (2+ε)-approximation of Appendix B.4.
//
// Bipartite core (B.4.1): in each round every unmatched left node proposes
// along a uniformly random remaining edge; every right node accepts the
// proposal with the highest ID. Lemma B.13: O(K·log(1/ε) + log∆/logK)
// rounds leave each left OPT-node unlucky with probability ≤ ε/2.
//
// General graphs (B.4.2): O(log 1/ε) stages; each stage randomly colors the
// nodes left/right, runs the bipartite core on the bichromatic remainder,
// and removes the matched nodes. Lemma B.14 gives a (2+ε)-approximation
// w.h.p.
//
// The execution is a faithful synchronous simulation with explicit round
// accounting (each proposal round costs 2 network rounds: propose, then
// accept-and-notify).
func Proposal(g *graph.Graph, eps float64, k int, r *rng.Stream) (*Result, error) {
	if eps <= 0 || eps > 2 {
		return nil, fmt.Errorf("fastmatch: ε must be in (0,2], got %v", eps)
	}
	if k < 2 {
		return nil, fmt.Errorf("fastmatch: K must be ≥ 2, got %d", k)
	}
	n := g.N()
	mate := make([]int, n)
	for v := range mate {
		mate[v] = -1
	}
	delta := float64(g.MaxDegree())
	if delta < 2 {
		delta = 2
	}
	perStage := int(math.Ceil(float64(k)*math.Log(2/eps)+math.Log(delta)/math.Log(float64(k)))) + 1
	stages := int(math.Ceil(math.Log2(2/eps))) + 1

	rounds := 0
	side := make([]int, n)
	for s := 0; s < stages; s++ {
		// Random bipartition (1 round to agree locally — free, it is a local
		// coin flip).
		for v := 0; v < n; v++ {
			if r.Bernoulli(0.5) {
				side[v] = 0 // left
			} else {
				side[v] = 1
			}
		}
		rounds++ // announcing colors to neighbors
		for round := 0; round < perStage; round++ {
			rounds += 2 // propose + accept
			// Left proposals along random remaining (bichromatic, unmatched)
			// edges.
			proposals := make(map[int]int) // right node -> best proposer
			idle := true
			for v := 0; v < n; v++ {
				if side[v] != 0 || mate[v] != -1 {
					continue
				}
				var options []int
				for _, u32 := range g.Neighbors(v) {
					if u := int(u32); side[u] == 1 && mate[u] == -1 {
						options = append(options, u)
					}
				}
				if len(options) == 0 {
					continue
				}
				idle = false
				target := options[r.Intn(len(options))]
				if best, ok := proposals[target]; !ok || v > best {
					proposals[target] = v
				}
			}
			if idle {
				break // stage exhausted early; no further progress possible
			}
			for right, left := range proposals {
				mate[right], mate[left] = left, right
			}
		}
	}

	out := &Result{VirtualRounds: rounds}
	for v, u := range mate {
		if u > v {
			id, ok := g.EdgeID(v, u)
			if !ok {
				return nil, fmt.Errorf("fastmatch: proposal matched non-edge {%d,%d}", v, u)
			}
			out.Edges = append(out.Edges, id)
			out.Weight += g.EdgeWeight(id)
		}
	}
	if !g.IsMatching(out.Edges) {
		return nil, fmt.Errorf("fastmatch: proposal produced a non-matching")
	}
	return out, nil
}
