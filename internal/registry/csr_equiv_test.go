package registry

// Property tests pinning the CSR graph core to the reference semantics of
// the original adjacency-list implementation: for every registered generator
// and several seeds, the CSR adjacency must agree with an independent
// reconstruction from the edge list, edge-ID lookups must be consistent, and
// the text encoding must round-trip without loss.

import (
	"bytes"
	"cmp"
	"fmt"
	"slices"
	"testing"

	"repro/internal/graph"
)

// genCase returns workable params for each registered generator at a seed.
func genCase(name string, seed uint64) GenParams {
	p := GenParams{Seed: seed, MaxW: 32}
	switch name {
	case "gnp":
		p.N, p.P = 40, 0.15
	case "regular":
		p.N, p.D = 30, 4
	case "bipartite":
		p.N, p.N2, p.P = 16, 20, 0.2
	case "tree":
		p.N = 45
	case "star", "path", "cycle":
		p.N = 25
	case "complete":
		p.N = 12
	case "grid":
		p.Rows, p.Cols = 5, 7
	case "caterpillar":
		p.Spine, p.Legs = 6, 4
	default:
		p.N = 20
	}
	return p
}

// referenceAdjacency rebuilds sorted neighbor lists and incident edge sets
// from the edge list alone — the old graph core's source of truth.
func referenceAdjacency(g *graph.Graph) (adj [][]int, inc [][]int) {
	adj = make([][]int, g.N())
	inc = make([][]int, g.N())
	for id, e := range g.Edges() {
		adj[e.U] = append(adj[e.U], e.V)
		adj[e.V] = append(adj[e.V], e.U)
		inc[e.U] = append(inc[e.U], id)
		inc[e.V] = append(inc[e.V], id)
	}
	for v := range adj {
		ids := inc[v]
		slices.SortFunc(ids, func(a, b int) int {
			return cmp.Compare(g.EdgeByID(a).Other(v), g.EdgeByID(b).Other(v))
		})
		slices.Sort(adj[v])
	}
	return adj, inc
}

func TestCSRMatchesReferenceSemanticsOnAllGenerators(t *testing.T) {
	for _, spec := range Generators() {
		for seed := uint64(1); seed <= 3; seed++ {
			t.Run(fmt.Sprintf("%s/seed=%d", spec.Name, seed), func(t *testing.T) {
				g, err := spec.Build(genCase(spec.Name, seed))
				if err != nil {
					t.Fatal(err)
				}
				if err := g.Validate(); err != nil {
					t.Fatalf("Validate: %v", err)
				}

				adj, inc := referenceAdjacency(g)
				degSum := 0
				for v := 0; v < g.N(); v++ {
					nbrs := g.Neighbors(v)
					ids := g.IncidentEdges(v)
					if g.Degree(v) != len(adj[v]) || len(nbrs) != len(adj[v]) || len(ids) != len(inc[v]) {
						t.Fatalf("node %d: degree %d, want %d", v, g.Degree(v), len(adj[v]))
					}
					degSum += len(nbrs)
					for i := range nbrs {
						if int(nbrs[i]) != adj[v][i] {
							t.Fatalf("node %d: neighbors %v, want %v", v, nbrs, adj[v])
						}
						if int(ids[i]) != inc[v][i] {
							t.Fatalf("node %d: incident edges %v, want %v", v, ids, inc[v])
						}
						// EdgeID agrees with the alignment contract.
						id, ok := g.EdgeID(v, int(nbrs[i]))
						if !ok || id != int(ids[i]) {
							t.Fatalf("EdgeID(%d,%d) = %d,%v, want %d", v, nbrs[i], id, ok, ids[i])
						}
						if !g.HasEdge(v, int(nbrs[i])) || !g.HasEdge(int(nbrs[i]), v) {
							t.Fatalf("HasEdge(%d,%d) false for an edge", v, nbrs[i])
						}
					}
				}
				if degSum != 2*g.M() {
					t.Fatalf("handshake: Σdeg=%d, 2m=%d", degSum, 2*g.M())
				}
				// Negative adjacency: a few non-edges must stay non-edges.
				for v := 0; v < g.N() && v < 10; v++ {
					next := map[int]bool{}
					for _, u := range adj[v] {
						next[u] = true
					}
					for u := 0; u < g.N() && u < 10; u++ {
						if u != v && !next[u] {
							if g.HasEdge(v, u) {
								t.Fatalf("HasEdge(%d,%d) true for a non-edge", v, u)
							}
							if _, ok := g.EdgeID(v, u); ok {
								t.Fatalf("EdgeID(%d,%d) found a non-edge", v, u)
							}
						}
					}
				}

				// Weighted encode/decode round-trip preserves everything.
				var buf bytes.Buffer
				if err := graph.Encode(&buf, g); err != nil {
					t.Fatal(err)
				}
				h, err := graph.Decode(&buf)
				if err != nil {
					t.Fatal(err)
				}
				if h.N() != g.N() || h.M() != g.M() {
					t.Fatalf("round trip changed sizes")
				}
				for v := 0; v < g.N(); v++ {
					if h.NodeWeight(v) != g.NodeWeight(v) {
						t.Fatalf("node %d weight changed", v)
					}
				}
				for id, e := range g.Edges() {
					hid, ok := h.EdgeID(e.U, e.V)
					if !ok || h.EdgeWeight(hid) != g.EdgeWeight(id) {
						t.Fatalf("edge %v lost or weight changed", e)
					}
				}
				if Fingerprint(g) != Fingerprint(h) {
					t.Fatal("fingerprint not stable across encode/decode round trip")
				}

				// Line-graph degrees satisfy deg_L(e) = deg(u)+deg(v)-2.
				lg := g.LineGraph()
				if lg.N() != g.M() {
					t.Fatalf("L(G) has %d nodes, want %d", lg.N(), g.M())
				}
				for id, e := range g.Edges() {
					if lg.Degree(id) != g.Degree(e.U)+g.Degree(e.V)-2 {
						t.Fatalf("line degree of edge %d wrong", id)
					}
					if lg.NodeWeight(id) != g.EdgeWeight(id) {
						t.Fatalf("line node weight of edge %d wrong", id)
					}
				}
			})
		}
	}
}

func TestFingerprintSensitivity(t *testing.T) {
	p := genCase("gnp", 7)
	gen, _ := GetGenerator("gnp")
	g1, err := gen.Build(p)
	if err != nil {
		t.Fatal(err)
	}
	g2, err := gen.Build(p)
	if err != nil {
		t.Fatal(err)
	}
	if Fingerprint(g1) != Fingerprint(g2) {
		t.Fatal("equal builds fingerprint differently")
	}
	g2.SetNodeWeight(0, g2.NodeWeight(0)+1)
	if Fingerprint(g1) == Fingerprint(g2) {
		t.Fatal("node-weight change not reflected in fingerprint")
	}
	g3 := g1.Clone()
	g3.SetEdgeWeight(0, g3.EdgeWeight(0)+1)
	if Fingerprint(g1) == Fingerprint(g3) {
		t.Fatal("edge-weight change not reflected in fingerprint")
	}
}
