package registry

// Telemetry must be observationally free: the obs.Enabled switch gates only
// Trace *attachment*, never the computation, so disabling it cannot change a
// single output bit. This test enforces that for every registered algorithm,
// and pins the attachment contract itself — every live run with telemetry on
// carries a trace with at least one round and the run's message totals.

import (
	"reflect"
	"testing"

	"repro/internal/graph"
	"repro/internal/obs"
	"repro/internal/rng"
)

func TestTelemetryOnOffBitIdenticalForAllAlgorithms(t *testing.T) {
	g := graph.GNP(40, 0.15, rng.New(21))
	graph.AssignUniformNodeWeights(g, 64, rng.New(22))
	graph.AssignUniformEdgeWeights(g, 64, rng.New(23))

	for _, spec := range All() {
		t.Run(spec.Name, func(t *testing.T) {
			run := func(enabled bool) *Result {
				prev := obs.SetEnabled(enabled)
				defer obs.SetEnabled(prev)
				res, err := spec.Run(g, Params{Seed: 5})
				if err != nil {
					t.Fatalf("telemetry=%v: %v", enabled, err)
				}
				return res
			}
			on := run(true)
			off := run(false)

			if on.Trace == nil {
				t.Fatal("telemetry-on run carries no trace")
			}
			if on.Trace.Rounds <= 0 {
				t.Fatalf("trace rounds = %d, want > 0", on.Trace.Rounds)
			}
			if int(on.Trace.Messages) != on.Cost.Messages {
				t.Fatalf("trace messages %d != cost messages %d", on.Trace.Messages, on.Cost.Messages)
			}
			if int(on.Trace.Bits) != on.Cost.Bits {
				t.Fatalf("trace bits %d != cost bits %d", on.Trace.Bits, on.Cost.Bits)
			}
			if off.Trace != nil {
				t.Fatal("telemetry-off run still attached a trace")
			}

			// Everything except the trace pointer must be bit-identical.
			onStripped := *on
			onStripped.Trace = nil
			if !reflect.DeepEqual(&onStripped, off) {
				t.Fatalf("telemetry changed the result:\non:  %+v\noff: %+v", &onStripped, off)
			}
		})
	}
}
